package iatf

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§6) plus the design ablations of DESIGN.md and native
// wall-clock comparisons. The Figure benchmarks run the cycle-level
// machine models and attach the modeled results as benchmark metrics;
// `go run ./cmd/iatf-bench` prints the full series tables.

import (
	"math/rand"
	"testing"

	"iatf/internal/bench"
	"iatf/internal/core"
	"iatf/internal/kopt"
	"iatf/internal/ktmpl"
	"iatf/internal/machine"
	"iatf/internal/matrix"
	"iatf/internal/vec"
)

var benchSizes = []int{2, 4, 8, 16, 32}

func benchCfg() bench.Config {
	return bench.Config{Matrices: 32, Sizes: benchSizes}
}

func findSeries(b *testing.B, ss []bench.Series, lib string) bench.Series {
	b.Helper()
	for _, s := range ss {
		if s.Lib == lib {
			return s
		}
	}
	b.Fatalf("series %q missing", lib)
	return bench.Series{}
}

// BenchmarkFigure4_Tiling compares the tile decompositions of a 15×15
// SGEMM: traditional M-vectorized strips versus the compact layout's
// small full-SIMD kernels (paper Figure 4).
func BenchmarkFigure4_Tiling(b *testing.B) {
	var compact, traditional int
	for i := 0; i < b.N; i++ {
		cm := ktmpl.SplitDim(15, ktmpl.MTiles(vec.S))
		cn := ktmpl.SplitDim(15, ktmpl.NTiles(vec.S))
		tm := ktmpl.SplitDim(15, []int{12, 8, 4, 2, 1})
		tn := ktmpl.SplitDim(15, []int{8, 4, 2, 1})
		compact = len(cm) * len(cn)
		traditional = len(tm) * len(tn)
	}
	b.ReportMetric(float64(compact), "compact-kernels")
	b.ReportMetric(float64(traditional), "traditional-kernels")
}

// BenchmarkFigure5_Optimizer measures the modeled cycle gain of the
// kernel optimizer on the 4×4 DGEMM kernel (paper Figure 5).
func BenchmarkFigure5_Optimizer(b *testing.B) {
	spec := ktmpl.GEMMSpec{DT: vec.D, MC: 4, NC: 4, K: 16, StrideC: 16}
	opts := kopt.Options{Prof: machine.Kunpeng920(), ElemBytes: 8, Prefetch: true}
	var raw, opt int64
	for i := 0; i < b.N; i++ {
		prog, err := ktmpl.GenGEMM(spec)
		if err != nil {
			b.Fatal(err)
		}
		raw = kopt.Cost(prog, opts)
		opt = kopt.Cost(kopt.Optimize(prog, opts), opts)
	}
	b.ReportMetric(float64(raw), "raw-cycles")
	b.ReportMetric(float64(opt), "optimized-cycles")
}

// BenchmarkFigure7_GEMM_NN regenerates the Figure 7 comparison per data
// type and reports the modeled IATF throughput and headline speedups.
func BenchmarkFigure7_GEMM_NN(b *testing.B) {
	for _, dt := range vec.DTypes {
		b.Run(dt.String()+"gemm", func(b *testing.B) {
			var ss []bench.Series
			var err error
			for i := 0; i < b.N; i++ {
				ss, err = bench.GEMMFigure(dt, matrix.NoTrans, matrix.NoTrans, benchCfg())
				if err != nil {
					b.Fatal(err)
				}
			}
			iatf := findSeries(b, ss, "IATF")
			if p, ok := iatf.At(8); ok {
				b.ReportMetric(p.GFLOPS, "model-GFLOPS@8")
			}
			s1, _ := bench.MaxSpeedup(iatf, findSeries(b, ss, "OpenBLAS-loop"))
			b.ReportMetric(s1, "max-speedup-vs-OpenBLAS")
			s2, _ := bench.MaxSpeedup(iatf, findSeries(b, ss, "ARMPL-batch"))
			b.ReportMetric(s2, "max-speedup-vs-ARMPL")
		})
	}
}

// BenchmarkFigure8_GEMM_Modes regenerates the Figure 8 mode comparison
// (NN/NT/TN/TT) for dgemm.
func BenchmarkFigure8_GEMM_Modes(b *testing.B) {
	modes := []struct {
		name   string
		ta, tb matrix.Trans
	}{
		{"NN", matrix.NoTrans, matrix.NoTrans},
		{"NT", matrix.NoTrans, matrix.Transpose},
		{"TN", matrix.Transpose, matrix.NoTrans},
		{"TT", matrix.Transpose, matrix.Transpose},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			var ss []bench.Series
			var err error
			for i := 0; i < b.N; i++ {
				ss, err = bench.GEMMFigure(vec.D, m.ta, m.tb, benchCfg())
				if err != nil {
					b.Fatal(err)
				}
			}
			iatf := findSeries(b, ss, "IATF")
			if p, ok := iatf.At(16); ok {
				b.ReportMetric(p.GFLOPS, "model-GFLOPS@16")
			}
		})
	}
}

// BenchmarkFigure9_TRSM_LNLN regenerates Figure 9 per data type.
func BenchmarkFigure9_TRSM_LNLN(b *testing.B) {
	for _, dt := range vec.DTypes {
		b.Run(dt.String()+"trsm", func(b *testing.B) {
			var ss []bench.Series
			var err error
			for i := 0; i < b.N; i++ {
				ss, err = bench.TRSMFigure(dt, matrix.Lower, matrix.NoTrans, matrix.NonUnit, benchCfg())
				if err != nil {
					b.Fatal(err)
				}
			}
			iatf := findSeries(b, ss, "IATF")
			s1, _ := bench.MaxSpeedup(iatf, findSeries(b, ss, "OpenBLAS-loop"))
			b.ReportMetric(s1, "max-speedup-vs-OpenBLAS")
			s2, _ := bench.MaxSpeedup(iatf, findSeries(b, ss, "ARMPL-loop"))
			b.ReportMetric(s2, "max-speedup-vs-ARMPL")
		})
	}
}

// BenchmarkFigure10_TRSM_Modes regenerates the Figure 10 mode comparison
// (LNLN/LNUN/LTLN/LTUN) for strsm.
func BenchmarkFigure10_TRSM_Modes(b *testing.B) {
	modes := []struct {
		name string
		uplo matrix.Uplo
		ta   matrix.Trans
		diag matrix.Diag
	}{
		{"LNLN", matrix.Lower, matrix.NoTrans, matrix.NonUnit},
		{"LNUN", matrix.Upper, matrix.NoTrans, matrix.NonUnit},
		{"LTLN", matrix.Lower, matrix.Transpose, matrix.NonUnit},
		{"LTUN", matrix.Upper, matrix.Transpose, matrix.NonUnit},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			var ss []bench.Series
			var err error
			for i := 0; i < b.N; i++ {
				ss, err = bench.TRSMFigure(vec.S, m.uplo, m.ta, m.diag, benchCfg())
				if err != nil {
					b.Fatal(err)
				}
			}
			iatf := findSeries(b, ss, "IATF")
			if p, ok := iatf.At(16); ok {
				b.ReportMetric(p.GFLOPS, "model-GFLOPS@16")
			}
		})
	}
}

// BenchmarkFigure11_GEMM_PctPeak regenerates the percent-of-peak
// comparison against the MKL-compact stand-in on the Xeon model.
func BenchmarkFigure11_GEMM_PctPeak(b *testing.B) {
	for _, dt := range vec.DTypes {
		b.Run(dt.String()+"gemm", func(b *testing.B) {
			var ss []bench.Series
			var err error
			for i := 0; i < b.N; i++ {
				ss, err = bench.PctPeakFigure(dt, false, benchCfg())
				if err != nil {
					b.Fatal(err)
				}
			}
			arm := findSeries(b, ss, "IATF (Kunpeng 920)")
			x86 := findSeries(b, ss, "MKL-compact (Xeon 6240)")
			if p, ok := arm.At(16); ok {
				b.ReportMetric(100*p.PctPeak, "kunpeng-pct-peak@16")
			}
			if p, ok := x86.At(16); ok {
				b.ReportMetric(100*p.PctPeak, "xeon-pct-peak@16")
			}
		})
	}
}

// BenchmarkFigure12_TRSM_PctPeak regenerates the TRSM percent-of-peak
// comparison.
func BenchmarkFigure12_TRSM_PctPeak(b *testing.B) {
	for _, dt := range []vec.DType{vec.D, vec.Z} {
		b.Run(dt.String()+"trsm", func(b *testing.B) {
			var ss []bench.Series
			var err error
			for i := 0; i < b.N; i++ {
				ss, err = bench.PctPeakFigure(dt, true, benchCfg())
				if err != nil {
					b.Fatal(err)
				}
			}
			arm := findSeries(b, ss, "IATF (Kunpeng 920)")
			if p, ok := arm.At(16); ok {
				b.ReportMetric(100*p.PctPeak, "kunpeng-pct-peak@16")
			}
		})
	}
}

// BenchmarkHeadlineSpeedups reproduces the §1 "up to" summary for sgemm.
func BenchmarkHeadlineSpeedups(b *testing.B) {
	var ss []bench.Series
	var err error
	for i := 0; i < b.N; i++ {
		ss, err = bench.GEMMFigure(vec.S, matrix.NoTrans, matrix.NoTrans, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	iatf := findSeries(b, ss, "IATF")
	for _, lib := range []string{"OpenBLAS-loop", "ARMPL-batch", "LIBXSMM"} {
		s, _ := bench.MaxSpeedup(iatf, findSeries(b, ss, lib))
		b.ReportMetric(s, "vs-"+lib)
	}
}

// --- Native wall-clock benchmarks: compact kernels vs naive loop ---

func nativeGEMMBench[T Scalar](b *testing.B, n int) {
	rng := rand.New(rand.NewSource(1))
	const count = 2048
	a := randBatch[T](rng, count, n, n)
	bb := randBatch[T](rng, count, n, n)
	c := randBatch[T](rng, count, n, n)
	ca, cb, cc := Pack(a), Pack(bb), Pack(c)
	var z T
	flopsPerOp := 2.0
	switch any(z).(type) {
	case complex64, complex128:
		flopsPerOp = 8.0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := GEMM(NoTrans, NoTrans, T(1), ca, cb, T(1), cc); err != nil {
			b.Fatal(err)
		}
	}
	gflops := flopsPerOp * float64(count) * float64(n*n*n) * float64(b.N) / b.Elapsed().Seconds() / 1e9
	b.ReportMetric(gflops, "GFLOPS")
}

func naiveGEMMBench[T Scalar](b *testing.B, n int) {
	rng := rand.New(rand.NewSource(1))
	const count = 2048
	a := randBatch[T](rng, count, n, n)
	bb := randBatch[T](rng, count, n, n)
	c := randBatch[T](rng, count, n, n)
	var z T
	flopsPerOp := 2.0
	switch any(z).(type) {
	case complex64, complex128:
		flopsPerOp = 8.0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matrix.RefGEMMBatch(NoTrans, NoTrans, T(1), a.inner, bb.inner, T(1), c.inner)
	}
	gflops := flopsPerOp * float64(count) * float64(n*n*n) * float64(b.N) / b.Elapsed().Seconds() / 1e9
	b.ReportMetric(gflops, "GFLOPS")
}

func BenchmarkNativeGEMMCompact(b *testing.B) {
	for _, n := range benchSizes {
		b.Run("sgemm-"+itoa(n), func(b *testing.B) { nativeGEMMBench[float32](b, n) })
	}
	b.Run("dgemm-8", func(b *testing.B) { nativeGEMMBench[float64](b, 8) })
	b.Run("cgemm-8", func(b *testing.B) { nativeGEMMBench[complex64](b, 8) })
	b.Run("zgemm-8", func(b *testing.B) { nativeGEMMBench[complex128](b, 8) })
}

func BenchmarkNativeGEMMNaiveLoop(b *testing.B) {
	for _, n := range benchSizes {
		b.Run("sgemm-"+itoa(n), func(b *testing.B) { naiveGEMMBench[float32](b, n) })
	}
	b.Run("dgemm-8", func(b *testing.B) { naiveGEMMBench[float64](b, 8) })
}

func BenchmarkNativeTRSMCompact(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run("strsm-"+itoa(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			const count = 2048
			a := randTriBatch[float32](rng, count, n)
			bb := randBatch[float32](rng, count, n, n)
			ca, cb := Pack(a), Pack(bb)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := TRSM(Left, Lower, NoTrans, NonUnit, float32(1), ca, cb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkNativeTRSMNaiveLoop(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run("strsm-"+itoa(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			const count = 2048
			a := randTriBatch[float32](rng, count, n)
			bb := randBatch[float32](rng, count, n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matrix.RefTRSMBatch(Left, Lower, NoTrans, NonUnit, float32(1), a.inner, bb.inner)
			}
		})
	}
}

// --- Design ablations (modeled cycles on the Kunpeng 920 profile) ---

func ablationGFLOPS(b *testing.B, tun core.Tuning, n int) float64 {
	b.Helper()
	g, err := bench.IATFGEMM(vec.D, n, matrix.NoTrans, matrix.NoTrans, tun,
		bench.Config{Matrices: 32, Sizes: []int{n}})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkAblationSchedule: instruction scheduling on versus off
// (Figure 5's point, end to end).
func BenchmarkAblationSchedule(b *testing.B) {
	var on, off float64
	for i := 0; i < b.N; i++ {
		on = ablationGFLOPS(b, core.DefaultTuning(), 16)
		t := core.DefaultTuning()
		t.DisableOptimizer = true
		off = ablationGFLOPS(b, t, 16)
	}
	b.ReportMetric(on, "scheduled-GFLOPS")
	b.ReportMetric(off, "unscheduled-GFLOPS")
}

// BenchmarkAblationPingPong: template double-buffering versus SUB-only
// kernels, as modeled static cost.
func BenchmarkAblationPingPong(b *testing.B) {
	spec := ktmpl.GEMMSpec{DT: vec.D, MC: 4, NC: 4, K: 16, StrideC: 16}
	opts := kopt.Options{Prof: machine.Kunpeng920(), ElemBytes: 8}
	var pp, sub int64
	for i := 0; i < b.N; i++ {
		a, err := ktmpl.GenGEMM(spec)
		if err != nil {
			b.Fatal(err)
		}
		c, err := ktmpl.GenGEMMNoPingPong(spec)
		if err != nil {
			b.Fatal(err)
		}
		pp = kopt.Cost(kopt.Optimize(a, opts), opts)
		sub = kopt.Cost(kopt.Optimize(c, opts), opts)
	}
	b.ReportMetric(float64(pp), "pingpong-cycles")
	b.ReportMetric(float64(sub), "sub-only-cycles")
}

// BenchmarkAblationKernelSize validates the CMAR-optimal 4×4 choice
// against alternative kernel shapes (Eq. 2).
func BenchmarkAblationKernelSize(b *testing.B) {
	for _, sz := range [][2]int{{4, 4}, {2, 4}, {4, 2}, {2, 2}, {1, 4}} {
		b.Run(itoa(sz[0])+"x"+itoa(sz[1]), func(b *testing.B) {
			var g float64
			for i := 0; i < b.N; i++ {
				p := core.GEMMProblem{DT: vec.D, M: 16, N: 16, K: 16, Alpha: 1, Beta: 1, Count: 32}
				pl, err := core.NewGEMMPlanWithKernel(p, core.DefaultTuning(), sz[0], sz[1])
				if err != nil {
					b.Fatal(err)
				}
				sim := machine.NewSim(machine.Kunpeng920(), 8)
				cycles, err := core.SimGEMM(pl, 16, sim)
				if err != nil {
					b.Fatal(err)
				}
				g = 2 * 16 * 16 * 16 * 32 / (float64(cycles) / 2.6e9) / 1e9
			}
			b.ReportMetric(g, "model-GFLOPS")
			b.ReportMetric(ktmpl.CMAR(vec.D, sz[0], sz[1]), "CMAR")
		})
	}
}

// BenchmarkAblationNoPack: the A no-packing fast path versus forced
// packing on a shape that qualifies for it.
func BenchmarkAblationNoPack(b *testing.B) {
	var nopack, packed float64
	for i := 0; i < b.N; i++ {
		nopack = ablationGFLOPS(b, core.DefaultTuning(), 4)
		t := core.DefaultTuning()
		t.ForcePackA = true
		packed = ablationGFLOPS(b, t, 4)
	}
	b.ReportMetric(nopack, "nopack-GFLOPS")
	b.ReportMetric(packed, "forced-pack-GFLOPS")
}

// BenchmarkAblationBatchCount: L1-sized super-batches versus packing the
// whole batch at once (the Batch Counter's reason to exist).
func BenchmarkAblationBatchCount(b *testing.B) {
	var l1, whole float64
	for i := 0; i < b.N; i++ {
		l1 = ablationGFLOPS(b, core.DefaultTuning(), 16)
		t := core.DefaultTuning()
		t.ForceGroupsPerBatch = 1 << 20
		whole = ablationGFLOPS(b, t, 16)
	}
	b.ReportMetric(l1, "l1-batched-GFLOPS")
	b.ReportMetric(whole, "whole-batch-GFLOPS")
}

// BenchmarkAblationTRSMRect: the FMLS rectangular kernel versus calling
// the general GEMM kernel for the TRSM update (Eq. 4's saving).
func BenchmarkAblationTRSMRect(b *testing.B) {
	opts := kopt.Options{Prof: machine.Kunpeng920(), ElemBytes: 8}
	var rect, gemm int64
	for i := 0; i < b.N; i++ {
		r, err := ktmpl.GenTRSMRect(ktmpl.RectSpec{DT: vec.D, MC: 4, NC: 4, K: 8, StrideC: 16, StrideX: 16})
		if err != nil {
			b.Fatal(err)
		}
		g, err := ktmpl.GenGEMM(ktmpl.GEMMSpec{DT: vec.D, MC: 4, NC: 4, K: 8, StrideC: 16})
		if err != nil {
			b.Fatal(err)
		}
		rect = kopt.Cost(kopt.Optimize(r, opts), opts)
		gemm = kopt.Cost(kopt.Optimize(g, opts), opts)
	}
	b.ReportMetric(float64(rect), "fmls-rect-cycles")
	b.ReportMetric(float64(gemm), "gemm-call-cycles")
}

// BenchmarkAblationRecipDiag: reciprocal-diagonal packing versus FDIV in
// the triangular kernel (§4.4's division-latency argument).
func BenchmarkAblationRecipDiag(b *testing.B) {
	opts := kopt.Options{Prof: machine.Kunpeng920(), ElemBytes: 8}
	var mul, div int64
	for i := 0; i < b.N; i++ {
		m, err := ktmpl.GenTRSMTri(ktmpl.TriSpec{DT: vec.D, M: 4, NCols: 8, StrideB: 4})
		if err != nil {
			b.Fatal(err)
		}
		d, err := ktmpl.GenTRSMTri(ktmpl.TriSpec{DT: vec.D, M: 4, NCols: 8, StrideB: 4, DivDiag: true})
		if err != nil {
			b.Fatal(err)
		}
		mul = kopt.Cost(kopt.Optimize(m, opts), opts)
		div = kopt.Cost(kopt.Optimize(d, opts), opts)
	}
	b.ReportMetric(float64(mul), "reciprocal-cycles")
	b.ReportMetric(float64(div), "division-cycles")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkExtensionTRMM reports the modeled throughput of the compact
// TRMM extension against the loop baselines.
func BenchmarkExtensionTRMM(b *testing.B) {
	var ss []bench.Series
	var err error
	for i := 0; i < b.N; i++ {
		ss, err = bench.TRMMFigure(vec.S, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	iatf := findSeries(b, ss, "IATF-ext")
	if p, ok := iatf.At(16); ok {
		b.ReportMetric(p.GFLOPS, "model-GFLOPS@16")
	}
	s1, _ := bench.MaxSpeedup(iatf, findSeries(b, ss, "OpenBLAS-loop"))
	b.ReportMetric(s1, "max-speedup-vs-OpenBLAS")
}

// BenchmarkNativeFactor measures the wall-clock batched factorizations.
func BenchmarkNativeFactor(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const count, n = 2048, 8
	b.Run("lu-d8", func(b *testing.B) {
		a := randDominantBatch[float64](rng, count, n)
		ca := Pack(a)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			work := ca.Clone()
			if _, err := LU(work); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cholesky-d8", func(b *testing.B) {
		m := randBatch[float64](rng, count, n, n)
		a := NewBatch[float64](count, n, n)
		matrix.RefGEMMBatch(Transpose, NoTrans, 1.0, m.inner, m.inner, 0.0, a.inner)
		for v := 0; v < count; v++ {
			for i := 0; i < n; i++ {
				a.Set(v, i, i, a.At(v, i, i)+float64(n))
			}
		}
		ca := Pack(a)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			work := ca.Clone()
			if _, err := Cholesky(work); err != nil {
				b.Fatal(err)
			}
		}
	})
}
