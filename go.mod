module iatf

go 1.22
