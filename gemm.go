package iatf

import (
	"fmt"

	"iatf/internal/core"
)

// GEMM computes C = alpha·op(A)·op(B) + beta·C over every matrix of the
// compact batches. op(A) must be M×K, op(B) K×N and C M×N, with equal
// batch counts.
//
// The call generates an input-aware execution plan (kernel sizes from the
// Table 1 registry for the concrete M, N, K, packing kernels or the
// no-packing fast path, and an L1-sized super-batch) and executes it with
// the native kernels. Generated, schedule-optimized kernels are memoized
// process-wide, so repeated calls with the same shape only pay for
// execution.
func GEMM[T Scalar](ta, tb Trans, alpha T, a, b *Compact[T], beta T, c *Compact[T]) error {
	return GEMMParallel(1, ta, tb, alpha, a, b, beta, c)
}

// GEMMParallel is GEMM with `workers` goroutines splitting the batch.
// Interleave groups are independent, so the speedup is near-linear until
// memory bandwidth saturates — the multi-core extension the paper lists
// as future work.
func GEMMParallel[T Scalar](workers int, ta, tb Trans, alpha T, a, b *Compact[T], beta T, c *Compact[T]) error {
	for _, chk := range []struct {
		c    *Compact[T]
		name string
	}{{a, "A"}, {b, "B"}, {c, "C"}} {
		if err := chk.c.check(chk.name); err != nil {
			return err
		}
	}
	m, n := c.Rows(), c.Cols()
	k := a.Cols()
	if ta == Transpose {
		k = a.Rows()
	}
	oaR, oaC := a.Rows(), a.Cols()
	if ta == Transpose {
		oaR, oaC = oaC, oaR
	}
	obR, obC := b.Rows(), b.Cols()
	if tb == Transpose {
		obR, obC = obC, obR
	}
	if oaR != m || oaC != k || obR != k || obC != n {
		return fmt.Errorf("iatf: GEMM shape mismatch: op(A)=%dx%d op(B)=%dx%d C=%dx%d",
			oaR, oaC, obR, obC, m, n)
	}
	if a.Count() != c.Count() || b.Count() != c.Count() {
		return fmt.Errorf("iatf: GEMM batch count mismatch: %d/%d/%d", a.Count(), b.Count(), c.Count())
	}
	p := core.GEMMProblem{
		DT: a.dt, M: m, N: n, K: k,
		TransA: ta, TransB: tb,
		Alpha: scalarToComplex(alpha),
		Beta:  scalarToComplex(beta),
		Count: c.Count(),
	}
	pl, err := core.NewGEMMPlan(p, core.DefaultTuning())
	if err != nil {
		return err
	}
	if a.f32 != nil {
		return core.ExecGEMMNativeParallel(pl, a.f32, b.f32, c.f32, workers)
	}
	return core.ExecGEMMNativeParallel(pl, a.f64, b.f64, c.f64, workers)
}

// TRSM solves op(A)·X = alpha·B (Left) or X·op(A) = alpha·B (Right) for
// every matrix of the compact batches, overwriting B with X. A must be
// square (M×M for Left, N×N for Right) and triangular per uplo/diag; the
// other triangle is never read.
func TRSM[T Scalar](side Side, uplo Uplo, ta Trans, diag Diag, alpha T, a, b *Compact[T]) error {
	return TRSMParallel(1, side, uplo, ta, diag, alpha, a, b)
}

// TRSMParallel is TRSM with `workers` goroutines splitting the batch.
func TRSMParallel[T Scalar](workers int, side Side, uplo Uplo, ta Trans, diag Diag, alpha T, a, b *Compact[T]) error {
	if err := a.check("A"); err != nil {
		return err
	}
	if err := b.check("B"); err != nil {
		return err
	}
	if a.Rows() != a.Cols() {
		return fmt.Errorf("iatf: TRSM A must be square, got %dx%d", a.Rows(), a.Cols())
	}
	p := core.TRSMProblem{
		DT: a.dt, M: b.Rows(), N: b.Cols(),
		Side: side, Uplo: uplo, TransA: ta, Diag: diag,
		Alpha: scalarToComplex(alpha),
		Count: b.Count(),
	}
	pl, err := core.NewTRSMPlan(p, core.DefaultTuning())
	if err != nil {
		return err
	}
	if a.f32 != nil {
		return core.ExecTRSMNativeParallel(pl, a.f32, b.f32, workers)
	}
	return core.ExecTRSMNativeParallel(pl, a.f64, b.f64, workers)
}

// TRMM computes B = alpha·op(A)·B (Left) or B = alpha·B·op(A) (Right)
// for every matrix of the compact batches, where A is triangular per
// uplo/diag — the compact triangular matrix multiply, this library's
// extension of the framework beyond the paper's GEMM/TRSM (its stated
// future work). B is overwritten.
func TRMM[T Scalar](side Side, uplo Uplo, ta Trans, diag Diag, alpha T, a, b *Compact[T]) error {
	return TRMMParallel(1, side, uplo, ta, diag, alpha, a, b)
}

// TRMMParallel is TRMM with `workers` goroutines splitting the batch.
func TRMMParallel[T Scalar](workers int, side Side, uplo Uplo, ta Trans, diag Diag, alpha T, a, b *Compact[T]) error {
	if err := a.check("A"); err != nil {
		return err
	}
	if err := b.check("B"); err != nil {
		return err
	}
	if a.Rows() != a.Cols() {
		return fmt.Errorf("iatf: TRMM A must be square, got %dx%d", a.Rows(), a.Cols())
	}
	p := core.TRMMProblem{
		DT: a.dt, M: b.Rows(), N: b.Cols(),
		Side: side, Uplo: uplo, TransA: ta, Diag: diag,
		Alpha: scalarToComplex(alpha),
		Count: b.Count(),
	}
	pl, err := core.NewTRMMPlan(p, core.DefaultTuning())
	if err != nil {
		return err
	}
	if a.f32 != nil {
		return core.ExecTRMMNativeParallel(pl, a.f32, b.f32, workers)
	}
	return core.ExecTRMMNativeParallel(pl, a.f64, b.f64, workers)
}

// SYRK computes the symmetric rank-k update C = alpha·op(A)·op(A)ᵀ + beta·C
// for every matrix of the compact batches, touching only the uplo
// triangle of C (diagonal included). op(A) is N×K and C is N×N. With
// Transpose the update is alpha·op(A)ᵀ·op(A) on a K×N input. Part of the
// framework's level-3 extension set.
func SYRK[T Scalar](uplo Uplo, trans Trans, alpha T, a *Compact[T], beta T, c *Compact[T]) error {
	return SYRKParallel(1, uplo, trans, alpha, a, beta, c)
}

// SYRKParallel is SYRK with `workers` goroutines splitting the batch.
func SYRKParallel[T Scalar](workers int, uplo Uplo, trans Trans, alpha T, a *Compact[T], beta T, c *Compact[T]) error {
	if err := a.check("A"); err != nil {
		return err
	}
	if err := c.check("C"); err != nil {
		return err
	}
	if c.Rows() != c.Cols() {
		return fmt.Errorf("iatf: SYRK C must be square, got %dx%d", c.Rows(), c.Cols())
	}
	k := a.Cols()
	if trans == Transpose {
		k = a.Rows()
	}
	p := core.SYRKProblem{
		DT: a.dt, N: c.Rows(), K: k,
		Uplo: uplo, Trans: trans,
		Alpha: scalarToComplex(alpha),
		Beta:  scalarToComplex(beta),
		Count: c.Count(),
	}
	pl, err := core.NewSYRKPlan(p, core.DefaultTuning())
	if err != nil {
		return err
	}
	if a.f32 != nil {
		return core.ExecSYRKNativeParallel(pl, a.f32, c.f32, workers)
	}
	return core.ExecSYRKNativeParallel(pl, a.f64, c.f64, workers)
}
