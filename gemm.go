package iatf

// The classic per-op entry points are compatibility wrappers over the
// request API: each builds a Request and runs it through the same
// synchronous dispatch path as Do. The engine does all shape checking,
// resolves the cached execution plan (planning runs once per shape, not
// once per call), and executes with pooled packing buffers on the
// persistent worker pool. New code should prefer Do/Submit, which add
// context support and async coalescing.

// GEMM computes C = alpha·op(A)·op(B) + beta·C over every matrix of the
// compact batches. op(A) must be M×K, op(B) K×N and C M×N, with equal
// batch counts.
//
// The first call on a shape generates an input-aware execution plan
// (kernel sizes from the Table 1 registry for the concrete M, N, K,
// packing kernels or the no-packing fast path, and an L1-sized
// super-batch); the plan and its schedule-optimized kernels are memoized
// process-wide, so repeated calls only pay for execution.
func GEMM[T Scalar](ta, tb Trans, alpha T, a, b *Compact[T], beta T, c *Compact[T]) error {
	return GEMMOn(DefaultEngine(), 1, ta, tb, alpha, a, b, beta, c)
}

// GEMMParallel is GEMM with `workers` participants from the persistent
// worker pool splitting the batch into super-batch chunks. workers <= 0
// means auto (one worker per GOMAXPROCS); workers == 1 runs serially on
// the caller. Interleave groups are independent, so the speedup is
// near-linear until memory bandwidth saturates — the multi-core extension
// the paper lists as future work.
func GEMMParallel[T Scalar](workers int, ta, tb Trans, alpha T, a, b *Compact[T], beta T, c *Compact[T]) error {
	return GEMMOn(DefaultEngine(), workers, ta, tb, alpha, a, b, beta, c)
}

// GEMMOn is GEMMParallel against a specific engine (its plan cache and
// counters) instead of the process-wide default.
func GEMMOn[T Scalar](e *Engine, workers int, ta, tb Trans, alpha T, a, b *Compact[T], beta T, c *Compact[T]) error {
	return doSync(e, workers, Request[T]{
		Op: OpGEMM, TransA: ta, TransB: tb, Alpha: alpha, Beta: beta, A: a, B: b, C: c,
	})
}

// TRSM solves op(A)·X = alpha·B (Left) or X·op(A) = alpha·B (Right) for
// every matrix of the compact batches, overwriting B with X. A must be
// square (M×M for Left, N×N for Right) and triangular per uplo/diag; the
// other triangle is never read.
func TRSM[T Scalar](side Side, uplo Uplo, ta Trans, diag Diag, alpha T, a, b *Compact[T]) error {
	return TRSMOn(DefaultEngine(), 1, side, uplo, ta, diag, alpha, a, b)
}

// TRSMParallel is TRSM with `workers` participants from the persistent
// worker pool splitting the batch. workers <= 0 means auto (GOMAXPROCS);
// workers == 1 runs serially.
func TRSMParallel[T Scalar](workers int, side Side, uplo Uplo, ta Trans, diag Diag, alpha T, a, b *Compact[T]) error {
	return TRSMOn(DefaultEngine(), workers, side, uplo, ta, diag, alpha, a, b)
}

// TRSMOn is TRSMParallel against a specific engine.
func TRSMOn[T Scalar](e *Engine, workers int, side Side, uplo Uplo, ta Trans, diag Diag, alpha T, a, b *Compact[T]) error {
	return doSync(e, workers, Request[T]{
		Op: OpTRSM, Side: side, Uplo: uplo, TransA: ta, Diag: diag, Alpha: alpha, A: a, B: b,
	})
}

// TRMM computes B = alpha·op(A)·B (Left) or B = alpha·B·op(A) (Right)
// for every matrix of the compact batches, where A is triangular per
// uplo/diag — the compact triangular matrix multiply, this library's
// extension of the framework beyond the paper's GEMM/TRSM (its stated
// future work). B is overwritten.
func TRMM[T Scalar](side Side, uplo Uplo, ta Trans, diag Diag, alpha T, a, b *Compact[T]) error {
	return TRMMOn(DefaultEngine(), 1, side, uplo, ta, diag, alpha, a, b)
}

// TRMMParallel is TRMM with `workers` participants from the persistent
// worker pool splitting the batch. workers <= 0 means auto (GOMAXPROCS);
// workers == 1 runs serially.
func TRMMParallel[T Scalar](workers int, side Side, uplo Uplo, ta Trans, diag Diag, alpha T, a, b *Compact[T]) error {
	return TRMMOn(DefaultEngine(), workers, side, uplo, ta, diag, alpha, a, b)
}

// TRMMOn is TRMMParallel against a specific engine.
func TRMMOn[T Scalar](e *Engine, workers int, side Side, uplo Uplo, ta Trans, diag Diag, alpha T, a, b *Compact[T]) error {
	return doSync(e, workers, Request[T]{
		Op: OpTRMM, Side: side, Uplo: uplo, TransA: ta, Diag: diag, Alpha: alpha, A: a, B: b,
	})
}

// SYRK computes the symmetric rank-k update C = alpha·op(A)·op(A)ᵀ + beta·C
// for every matrix of the compact batches, touching only the uplo
// triangle of C (diagonal included). op(A) is N×K and C is N×N. With
// Transpose the update is alpha·op(A)ᵀ·op(A) on a K×N input. Part of the
// framework's level-3 extension set.
func SYRK[T Scalar](uplo Uplo, trans Trans, alpha T, a *Compact[T], beta T, c *Compact[T]) error {
	return SYRKOn(DefaultEngine(), 1, uplo, trans, alpha, a, beta, c)
}

// SYRKParallel is SYRK with `workers` participants from the persistent
// worker pool splitting the batch. workers <= 0 means auto (GOMAXPROCS);
// workers == 1 runs serially.
func SYRKParallel[T Scalar](workers int, uplo Uplo, trans Trans, alpha T, a *Compact[T], beta T, c *Compact[T]) error {
	return SYRKOn(DefaultEngine(), workers, uplo, trans, alpha, a, beta, c)
}

// SYRKOn is SYRKParallel against a specific engine.
func SYRKOn[T Scalar](e *Engine, workers int, uplo Uplo, trans Trans, alpha T, a *Compact[T], beta T, c *Compact[T]) error {
	return doSync(e, workers, Request[T]{
		Op: OpSYRK, Uplo: uplo, TransA: trans, Alpha: alpha, Beta: beta, A: a, C: c,
	})
}
