package iatf

// Cross-op fusion: Chain executes a sequence of batched operations as
// one planned unit. The chain planner analyzes which stage produces the
// operand the next stage consumes and, where the packed layouts line
// up (adjacent triangular stages over the same B), elides the
// producer's scatter and the consumer's re-pack: the intermediate stays
// in packed interleaved form between stages and results are bit-exact
// with running the stages one by one. The analysis is cached per chain
// shape, so iterative solvers pay for it once.

import (
	"context"

	"iatf/internal/engine"
)

// ErrSingular reports that a factorization stage of a chain hit a
// singular (or non-positive-definite) matrix. It arrives wrapped in a
// *ChainError carrying the per-matrix info codes; branch with
// errors.Is(err, iatf.ErrSingular).
var ErrSingular = engine.ErrSingular

// ChainError locates a chain failure: the failing stage index, its op
// kind, and — for factorization stages — the per-matrix info codes
// (one per matrix of the batch, 0 = success). Unwrap yields the
// underlying cause. Retrieve with errors.As.
type ChainError = engine.ChainError

// Stage is one operation of a Chain. Build stages with the
// constructors below; a Stage is a value and may be rebuilt every
// iteration (the chain plan is cached by shape, not by stage identity).
type Stage[T Scalar] struct {
	inner engine.ChainStage
}

// GEMMStage is a C = alpha·op(A)·op(B) + beta·C stage — the arguments
// of GEMM.
func GEMMStage[T Scalar](ta, tb Trans, alpha T, a, b *Compact[T], beta T, c *Compact[T]) Stage[T] {
	return Stage[T]{inner: engine.ChainStage{
		Op: engine.OpDesc{Kind: engine.OpGEMM, TransA: ta, TransB: tb,
			Alpha: scalarToComplex(alpha), Beta: scalarToComplex(beta)},
		Ops:  [3]engine.Operand{operandOf(a), operandOf(b), operandOf(c)},
		NOps: 3,
	}}
}

// TRSMStage is an op(A)·X = alpha·B (Left) or X·op(A) = alpha·B (Right)
// solve stage overwriting B — the arguments of TRSM. Adjacent TRSM/TRMM
// stages over the same B are the fusable pattern: when their packed
// layouts agree, B hands off in packed form.
func TRSMStage[T Scalar](side Side, uplo Uplo, ta Trans, diag Diag, alpha T, a, b *Compact[T]) Stage[T] {
	return Stage[T]{inner: engine.ChainStage{
		Op: engine.OpDesc{Kind: engine.OpTRSM, Side: side, Uplo: uplo, TransA: ta, Diag: diag,
			Alpha: scalarToComplex(alpha)},
		Ops:  [3]engine.Operand{operandOf(a), operandOf(b)},
		NOps: 2,
	}}
}

// TRMMStage is a B = alpha·op(A)·B (Left) or alpha·B·op(A) (Right)
// multiply stage — the arguments of TRMM. Fuses with adjacent
// triangular stages like TRSMStage.
func TRMMStage[T Scalar](side Side, uplo Uplo, ta Trans, diag Diag, alpha T, a, b *Compact[T]) Stage[T] {
	return Stage[T]{inner: engine.ChainStage{
		Op: engine.OpDesc{Kind: engine.OpTRMM, Side: side, Uplo: uplo, TransA: ta, Diag: diag,
			Alpha: scalarToComplex(alpha)},
		Ops:  [3]engine.Operand{operandOf(a), operandOf(b)},
		NOps: 2,
	}}
}

// SYRKStage is a C = alpha·op(A)·op(A)ᵀ + beta·C stage — the arguments
// of SYRK.
func SYRKStage[T Scalar](uplo Uplo, trans Trans, alpha T, a *Compact[T], beta T, c *Compact[T]) Stage[T] {
	return Stage[T]{inner: engine.ChainStage{
		Op: engine.OpDesc{Kind: engine.OpSYRK, Uplo: uplo, TransA: trans,
			Alpha: scalarToComplex(alpha), Beta: scalarToComplex(beta)},
		Ops:  [3]engine.Operand{operandOf(a), operandOf(c)},
		NOps: 2,
	}}
}

// LUStage factors every matrix of A in place (unpivoted LU, unit lower
// triangle implicit) — the chain form of LU. A singular matrix aborts
// the chain with a *ChainError wrapping ErrSingular and carrying the
// per-matrix info codes. Follow with two TRSMStages over the factored A
// to solve, as LUSolve does.
func LUStage[T Scalar](a *Compact[T]) Stage[T] {
	return Stage[T]{inner: engine.ChainStage{
		Op:   engine.OpDesc{Kind: engine.OpLU},
		Ops:  [3]engine.Operand{operandOf(a)},
		NOps: 1,
	}}
}

// CholeskyStage factors every matrix of A in place (lower Cholesky) —
// the chain form of Cholesky. A non-positive-definite matrix aborts the
// chain with a *ChainError wrapping ErrSingular.
func CholeskyStage[T Scalar](a *Compact[T]) Stage[T] {
	return Stage[T]{inner: engine.ChainStage{
		Op:   engine.OpDesc{Kind: engine.OpCholesky},
		Ops:  [3]engine.Operand{operandOf(a)},
		NOps: 1,
	}}
}

// lowerStages applies the call configuration to every stage and
// returns the engine-level stage list.
func lowerStages[T Scalar](stages []Stage[T], cfg callCfg) []engine.ChainStage {
	st := make([]engine.ChainStage, len(stages))
	for i := range stages {
		st[i] = stages[i].inner
		st[i].Op.Workers = cfg.workers
		st[i].Op.Priority = cfg.priority
	}
	return st
}

// Chain executes the stages in order as one planned unit and blocks
// until the chain completes. Results are bit-identical to issuing the
// stages as individual calls; the win is that fusable handoffs skip a
// scatter + re-pack round trip per stage boundary, chain-invariant
// operands (triangular factors reused across stages) are auto-prepacked,
// and the whole analysis replays from cache on every later iteration.
//
// A failing stage aborts the chain after re-materializing the canonical
// contents of any operand held in packed form, so operands always hold
// the prefix of completed stages; the error is a *ChainError locating
// the stage. ctx is checked between stages — cancellation also
// re-materializes before returning.
//
// Options work as in Do: WithWorkers applies to every stage, WithEngine/
// WithEngineSet select the target, WithSpanSink traces the chain as one
// parent span with per-stage children, and WithAsync routes through the
// submission queue where identical concurrent chains coalesce into one
// fused execution.
//
//	err := iatf.Chain(ctx, []iatf.Stage[float64]{
//	    iatf.LUStage(a),
//	    iatf.TRSMStage(iatf.Left, iatf.Lower, iatf.NoTrans, iatf.Unit, 1, a, b),
//	    iatf.TRSMStage(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1, a, b),
//	}, iatf.WithWorkers(0))
func Chain[T Scalar](ctx context.Context, stages []Stage[T], opts ...Option) error {
	cfg := resolveOpts(opts)
	if ctx == nil {
		ctx = context.Background()
	}
	st := lowerStages(stages, cfg)
	if !cfg.async {
		if err := ctx.Err(); err != nil {
			return err
		}
		if cfg.set != nil {
			if cfg.sink != nil {
				return cfg.set.inner.RunChainSpanned(ctx, st, cfg.sink)
			}
			return cfg.set.inner.RunChain(ctx, st)
		}
		if cfg.sink != nil {
			return cfg.eng.inner.RunChainSpanned(ctx, st, cfg.sink)
		}
		return cfg.eng.inner.RunChain(ctx, st)
	}
	fut, err := submitChain(ctx, st, cfg)
	if err != nil {
		return err
	}
	return fut.Wait(ctx)
}

// SubmitChain enqueues the chain on the submission queue and returns a
// Future resolving when it completes. The whole chain occupies one
// queue slot and coalesces only with identical chains; its stage
// operands must not be mutated until the future resolves. A full queue
// returns ErrQueueFull.
func SubmitChain[T Scalar](ctx context.Context, stages []Stage[T], opts ...Option) (*Future, error) {
	cfg := resolveOpts(opts)
	return submitChain(ctx, lowerStages(stages, cfg), cfg)
}

func submitChain(ctx context.Context, st []engine.ChainStage, cfg callCfg) (*Future, error) {
	var fut *engine.Future
	var err error
	if cfg.set != nil {
		fut, err = cfg.set.inner.SubmitChain(ctx, st, cfg.sink)
	} else {
		fut, err = cfg.eng.inner.SubmitChain(ctx, st, cfg.sink)
	}
	if err != nil {
		return nil, err
	}
	return &Future{inner: fut}, nil
}
