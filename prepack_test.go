package iatf

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// Prepack is an optimization hint, never a semantic change: every op must
// produce bit-identical results with and without it, on every batch size
// — including the padding edges around the SIMD width (1, 2^k-1, 2^k,
// 2^k+1).

var prepackEdgeCounts = []int{1, 7, 8, 9}

// prepackParity runs `call` against two identical operand sets — one
// plain, one opted into Prepack — three times back to back (so the
// second and third prepacked calls are warm cache hits) and requires
// bit-equal outputs after every call.
func prepackParity[T Scalar](t *testing.T, label string,
	operands func() (ins []*Compact[T], out *Compact[T]),
	call func(e *Engine, ins []*Compact[T], out *Compact[T]) error) {
	t.Helper()
	plainIns, plainOut := operands()
	preIns, preOut := operands()
	for _, in := range preIns {
		in.Prepack()
	}
	plainEng, preEng := NewEngine(), NewEngine()
	for callNo := 1; callNo <= 3; callNo++ {
		if err := call(plainEng, plainIns, plainOut); err != nil {
			t.Fatalf("%s call %d (plain): %v", label, callNo, err)
		}
		if err := call(preEng, preIns, preOut); err != nil {
			t.Fatalf("%s call %d (prepacked): %v", label, callNo, err)
		}
		want, got := plainOut.Unpack().Data(), preOut.Unpack().Data()
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s call %d: prepacked diverges at element %d: want %v got %v",
					label, callNo, i, want[i], got[i])
			}
		}
	}
}

func testPrepackParityOps[T Scalar](t *testing.T, dtype string) {
	for _, count := range prepackEdgeCounts {
		for _, workers := range []int{1, 2} {
			label := fmt.Sprintf("%s count=%d workers=%d", dtype, count, workers)
			rng := rand.New(rand.NewSource(int64(601 + count)))

			prepackParity(t, "GEMM "+label,
				func() ([]*Compact[T], *Compact[T]) {
					rng := rand.New(rand.NewSource(int64(7 + count)))
					a := Pack(randBatch[T](rng, count, 6, 5))
					b := Pack(randBatch[T](rng, count, 5, 7))
					c := Pack(randBatch[T](rng, count, 6, 7))
					return []*Compact[T]{a, b}, c
				},
				func(e *Engine, ins []*Compact[T], out *Compact[T]) error {
					return GEMMOn(e, workers, NoTrans, NoTrans, T(2), ins[0], ins[1], T(1), out)
				})

			// TRSM/TRMM write B, so B is both input and output; only the
			// reused triangle is prepacked.
			tri := randTriBatch[T](rng, count, 6)
			prepackParity(t, "TRSM "+label,
				func() ([]*Compact[T], *Compact[T]) {
					rng := rand.New(rand.NewSource(int64(13 + count)))
					b := Pack(randBatch[T](rng, count, 6, 4))
					return []*Compact[T]{Pack(tri)}, b
				},
				func(e *Engine, ins []*Compact[T], out *Compact[T]) error {
					return TRSMOn(e, workers, Left, Lower, NoTrans, NonUnit, T(1), ins[0], out)
				})
			prepackParity(t, "TRMM "+label,
				func() ([]*Compact[T], *Compact[T]) {
					rng := rand.New(rand.NewSource(int64(17 + count)))
					b := Pack(randBatch[T](rng, count, 6, 4))
					return []*Compact[T]{Pack(tri)}, b
				},
				func(e *Engine, ins []*Compact[T], out *Compact[T]) error {
					return TRMMOn(e, workers, Left, Lower, NoTrans, NonUnit, T(1), ins[0], out)
				})

			prepackParity(t, "SYRK "+label,
				func() ([]*Compact[T], *Compact[T]) {
					rng := rand.New(rand.NewSource(int64(19 + count)))
					a := Pack(randBatch[T](rng, count, 6, 5))
					c := Pack(randBatch[T](rng, count, 6, 6))
					return []*Compact[T]{a}, c
				},
				func(e *Engine, ins []*Compact[T], out *Compact[T]) error {
					return SYRKOn(e, workers, Lower, NoTrans, T(1), ins[0], T(1), out)
				})
		}
	}
}

func TestPrepackParityFloat32(t *testing.T) { testPrepackParityOps[float32](t, "s") }
func TestPrepackParityFloat64(t *testing.T) { testPrepackParityOps[float64](t, "d") }

// An op that writes an operand must invalidate its cached packed images:
// using B as a GEMM input, solving into it with TRSM, then using it as a
// GEMM input again has to see the post-solve contents, not the cached
// pre-solve image.
func TestPrepackInvalidatedByWritingOp(t *testing.T) {
	const count = 9
	rng := rand.New(rand.NewSource(88))
	eng := NewEngine()

	tri := Pack(randTriBatch[float64](rng, count, 6))
	b := Pack(randBatch[float64](rng, count, 6, 6))
	b.Prepack()
	tri.Prepack()
	c := Pack(NewBatch[float64](count, 6, 6))

	run := func() []float64 {
		if err := GEMMOn(eng, 1, NoTrans, NoTrans, 1.0, b, b, 0.0, c); err != nil {
			t.Fatal(err)
		}
		return c.Unpack().Data()
	}
	before := run()

	// TRSM writes B in place — its cached GEMM images are now stale.
	if err := TRSMOn(eng, 1, Left, Lower, NoTrans, NonUnit, 1.0, tri, b); err != nil {
		t.Fatal(err)
	}
	after := run()

	// Reference: a fresh, never-prepacked copy of the post-solve B.
	fresh := Pack(b.Unpack())
	cRef := Pack(NewBatch[float64](count, 6, 6))
	if err := GEMMOn(eng, 1, NoTrans, NoTrans, 1.0, fresh, fresh, 0.0, cRef); err != nil {
		t.Fatal(err)
	}
	want := cRef.Unpack().Data()
	for i := range want {
		if after[i] != want[i] {
			t.Fatalf("stale packed image served after write: element %d want %v got %v", i, want[i], after[i])
		}
	}
	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("solve left B unchanged; invalidation test is vacuous")
	}

	// Explicit Invalidate is the escape hatch for out-of-band mutation;
	// here it must at worst force a harmless re-pack.
	b.Invalidate()
	again := run()
	for i := range after {
		if again[i] != after[i] {
			t.Fatalf("Invalidate changed results: element %d %v vs %v", i, after[i], again[i])
		}
	}
}

// Many goroutines sharing one prepacked operand through one engine must
// race neither on the pack cache nor on the image itself (run under
// -race by make stress), and every call must still be bit-exact.
func TestPrepackConcurrentShared(t *testing.T) {
	const (
		count      = 33
		goroutines = 8
		calls      = 6
	)
	rng := rand.New(rand.NewSource(89))
	eng := NewEngine()
	a := Pack(randBatch[float32](rng, count, 8, 8))
	b := Pack(randBatch[float32](rng, count, 8, 8))
	a.Prepack()
	b.Prepack()

	// Reference from a plain engine without reuse.
	cRef := Pack(NewBatch[float32](count, 8, 8))
	if err := GEMMOn(NewEngine(), 1, NoTrans, NoTrans, 1.5, a, b, 0.0, cRef); err != nil {
		t.Fatal(err)
	}
	want := cRef.Unpack().Data()

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := Pack(NewBatch[float32](count, 8, 8))
			for n := 0; n < calls; n++ {
				if err := GEMMOn(eng, 2, NoTrans, NoTrans, 1.5, a, b, 0.0, c); err != nil {
					errs <- fmt.Errorf("goroutine %d call %d: %w", g, n, err)
					return
				}
				got := c.Unpack().Data()
				for i := range want {
					if got[i] != want[i] {
						errs <- fmt.Errorf("goroutine %d call %d: element %d want %v got %v",
							g, n, i, want[i], got[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
