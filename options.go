// Construction-time configuration for engines and engine sets. Options
// replace the old post-construction setters for everything that is
// really a property of how the engine is built — queue capacity, drain
// order, batch window, machine profile, and the persistent autotune
// store — so configuration races (SetQueueCapacity after the dispatcher
// started, a store attached after the first cold miss) cannot happen by
// construction.
//
//	eng := iatf.NewEngine(
//	    iatf.WithMachineProfile(iatf.Kunpeng920()),
//	    iatf.WithQueueCapacity(4096),
//	    iatf.WithPlanStore(""), // default dir; loads a matching store if present
//	)

package iatf

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"iatf/internal/core"
	"iatf/internal/engine"
	"iatf/internal/machine"
	"iatf/internal/store"
)

// MachineProfile describes the modeled CPU an engine tunes for:
// frequency, vector width, port counts, instruction latencies and the
// cache hierarchy. It drives install-time kernel selection (CMAR + list
// scheduling) and the run-time cost model.
type MachineProfile = machine.Profile

// Kunpeng920 is the paper's primary target: an ARMv8 (TaiShan v110)
// profile. It is the default profile.
func Kunpeng920() MachineProfile { return machine.Kunpeng920() }

// Graviton2 is an ARMv8 (Neoverse N1) profile.
func Graviton2() MachineProfile { return machine.Graviton2() }

// XeonGold6240 is an x86 (Cascade Lake) comparison profile.
func XeonGold6240() MachineProfile { return machine.XeonGold6240() }

// ProfileNamed resolves a profile by its canonical name — the CLI
// surface of the built-in profiles ("kunpeng920", "graviton2",
// "xeon6240"). ok is false for unknown names.
func ProfileNamed(name string) (p MachineProfile, ok bool) {
	switch name {
	case "kunpeng920", "kunpeng-920", "kunpeng":
		return machine.Kunpeng920(), true
	case "graviton2", "graviton-2", "graviton":
		return machine.Graviton2(), true
	case "xeon6240", "xeon-gold-6240", "xeon":
		return machine.XeonGold6240(), true
	}
	return MachineProfile{}, false
}

// ProfileNames lists the names ProfileNamed accepts, for CLI usage
// strings.
func ProfileNames() []string { return []string{"kunpeng920", "graviton2", "xeon6240"} }

// engineConfig is the resolved option set NewEngine/NewEngineSet build
// from.
type engineConfig struct {
	tun       core.Tuning
	queueCap  int  // 0 = keep default
	edf       bool // applied only when edfSet
	edfSet    bool
	window    time.Duration // applied only when windowSet
	windowSet bool
	storeDir  string // applied only when storeSet; "" = store.DefaultDir()
	storeSet  bool
}

// EngineOption configures NewEngine and NewEngineSet at construction
// time.
type EngineOption func(*engineConfig)

// WithMachineProfile tunes the engine for profile p instead of the
// default Kunpeng 920 model. The profile is folded into the engine's
// store fingerprint, so engines built for different profiles never
// share persisted plans.
func WithMachineProfile(p MachineProfile) EngineOption {
	return func(c *engineConfig) { c.tun.Prof = p }
}

// WithQueueCapacity bounds the async submission queue (default 1024
// requests; values below 1 clamp to 1). Submissions beyond the bound
// fail fast with ErrQueueFull. Unlike the deprecated SetQueueCapacity,
// the bound is in place before the dispatcher can start, so it cannot
// race with the first Submit.
func WithQueueCapacity(n int) EngineOption {
	return func(c *engineConfig) { c.queueCap = n }
}

// WithEDF sets the async queue's drain order: true (the default)
// executes each drained batch in earliest-deadline-first order, false
// restores FIFO.
func WithEDF(on bool) EngineOption {
	return func(c *engineConfig) { c.edf, c.edfSet = on, true }
}

// WithBatchWindow sets the dispatcher's max-batch-window: after a
// batch's first request arrives the drain stays open for d, trading
// queue latency for larger fused bundles. 0 (the default) drains only
// what already accumulated.
func WithBatchWindow(d time.Duration) EngineOption {
	return func(c *engineConfig) { c.window, c.windowSet = d, true }
}

// WithPlanStore attaches the persistent autotune store under dir and
// loads it during construction: if dir holds a store file whose
// fingerprint matches this engine's tuning, its kernel schedules and
// plans are hydrated before the first call, so the cold process starts
// warm. dir == "" uses DefaultStoreDir(). The store file within dir is
// always named by the engine's fingerprint, so engines with different
// profiles or tuning coexist in one directory.
//
// Loading is fail-soft: an absent, stale (fingerprint/version
// mismatch) or corrupt file leaves the engine cold and is counted in
// Stats().Store — it never fails construction. Pre-bake stores with
// the iatf-tune command; flush a live engine's state with SaveStore.
func WithPlanStore(dir string) EngineOption {
	return func(c *engineConfig) { c.storeDir, c.storeSet = dir, true }
}

// DefaultStoreDir returns the default persistent-store directory:
// $IATF_STORE_DIR when set, else the user cache dir ("~/.cache/iatf" on
// Linux), else a temp-dir fallback.
func DefaultStoreDir() string { return store.DefaultDir() }

func resolveConfig(opts []EngineOption) engineConfig {
	cfg := engineConfig{tun: core.DefaultTuning()}
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	return cfg
}

// storePathFor resolves the config's store file path for a fingerprint.
func (c *engineConfig) storePathFor(fp string) string {
	dir := c.storeDir
	if dir == "" {
		dir = store.DefaultDir()
	}
	return store.PathFor(dir, fp)
}

// apply configures a freshly constructed engine. The queue cannot have
// started yet, so SetQueueCapacity cannot fail; store loading is
// fail-soft by design.
func (c *engineConfig) apply(e *engine.Engine) {
	if c.queueCap > 0 {
		_ = e.SetQueueCapacity(c.queueCap)
	}
	if c.edfSet {
		e.SetEDF(c.edf)
	}
	if c.windowSet {
		e.SetBatchWindow(c.window)
	}
	if c.storeSet {
		e.SetStorePath(c.storePathFor(e.Fingerprint()))
		_ = e.LoadStore()
	}
}

// applySet configures a freshly constructed set: per-shard queue
// options, then one set-level store load that hydrates each stored plan
// into its identity's home shard.
func (c *engineConfig) applySet(s *engine.Set) {
	for i := 0; i < s.Shards(); i++ {
		sh := s.Shard(i)
		if c.queueCap > 0 {
			_ = sh.SetQueueCapacity(c.queueCap)
		}
	}
	if c.edfSet {
		s.SetEDF(c.edf)
	}
	if c.windowSet {
		s.SetBatchWindow(c.window)
	}
	if c.storeSet {
		s.SetStorePath(c.storePathFor(s.Fingerprint()))
		_ = s.LoadStore()
	}
}

// Fingerprint returns the engine's tuning fingerprint: the stable,
// filesystem-safe hash of its machine profile, tuning knobs and data-
// layout version that keys the persistent autotune store.
func (e *Engine) Fingerprint() string { return e.inner.Fingerprint() }

// StorePath returns the engine's attached store file ("" = no store).
func (e *Engine) StorePath() string { return e.inner.StorePath() }

// SaveStore atomically writes the engine's tuned state — every cached
// plan descriptor plus its profile's kernel schedules — to the attached
// store file, so the next process constructed with WithPlanStore starts
// warm. No-op without an attached store.
func (e *Engine) SaveStore() error { return e.inner.SaveStore() }

// Fingerprint returns the set's tuning fingerprint (all shards share
// one tuning); see Engine.Fingerprint.
func (s *EngineSet) Fingerprint() string { return s.inner.Fingerprint() }

// StorePath returns the set's attached store file ("" = no store).
func (s *EngineSet) StorePath() string { return s.inner.StorePath() }

// SaveStore writes the union of every shard's tuned state to the set's
// attached store file; see Engine.SaveStore.
func (s *EngineSet) SaveStore() error { return s.inner.SaveStore() }

// ParseTenantSpec parses one tenant CLI spec — the shared syntax of the
// iatf-serve/iatf-monitor -tenant flags:
//
//	name=class[:objective_ms[:target]]
//
// class is the EDF dispatch class (higher drains first on deadline
// ties), objective_ms the per-request latency objective in milliseconds,
// and target the SLO attainment fraction in (0,1) — defaulting to 0.99
// when an objective is given without one. "rt=5:10:0.999" reads as
// "tenant rt, class 5, 10ms objective, 99.9% target".
func ParseTenantSpec(s string) (name string, obj TenantObjective, err error) {
	name, spec, ok := strings.Cut(s, "=")
	if !ok || name == "" || spec == "" {
		return "", obj, fmt.Errorf("iatf: tenant spec %q: want name=class[:objective_ms[:target]]", s)
	}
	parts := strings.Split(spec, ":")
	if len(parts) > 3 {
		return "", obj, fmt.Errorf("iatf: tenant spec %q: too many fields", s)
	}
	if obj.Class, err = strconv.Atoi(parts[0]); err != nil {
		return "", obj, fmt.Errorf("iatf: tenant spec %q: bad class %q", s, parts[0])
	}
	if len(parts) >= 2 {
		ms, ferr := strconv.ParseFloat(parts[1], 64)
		if ferr != nil || ms < 0 {
			return "", obj, fmt.Errorf("iatf: tenant spec %q: bad objective_ms %q", s, parts[1])
		}
		obj.Objective = time.Duration(ms * float64(time.Millisecond))
		if obj.Objective > 0 {
			obj.Target = 0.99
		}
	}
	if len(parts) == 3 {
		t, ferr := strconv.ParseFloat(parts[2], 64)
		if ferr != nil || t <= 0 || t >= 1 {
			return "", obj, fmt.Errorf("iatf: tenant spec %q: target %q must be in (0,1)", s, parts[2])
		}
		obj.Target = t
	}
	return name, obj, nil
}
