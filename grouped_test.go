package iatf

import (
	"errors"
	"math/rand"
	"testing"

	"iatf/internal/matrix"
)

// Grouped GEMM over heterogeneous shapes must match per-group oracles.
func TestGEMMGrouped(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	type shape struct{ count, n int }
	shapes := []shape{{10, 3}, {6, 8}, {4, 15}}
	var groups []GEMMGroup[float64]
	var wants []*Batch[float64]
	for _, s := range shapes {
		a := randBatch[float64](rng, s.count, s.n, s.n)
		b := randBatch[float64](rng, s.count, s.n, s.n)
		c := randBatch[float64](rng, s.count, s.n, s.n)
		want := &Batch[float64]{inner: c.inner.Clone()}
		matrix.RefGEMMBatch(NoTrans, NoTrans, 2.0, a.inner, b.inner, 1.0, want.inner)
		wants = append(wants, want)
		groups = append(groups, GEMMGroup[float64]{
			TransA: NoTrans, TransB: NoTrans, Alpha: 2, Beta: 1,
			A: Pack(a), B: Pack(b), C: Pack(c),
		})
	}
	if err := GEMMGrouped(2, groups); err != nil {
		t.Fatal(err)
	}
	for i, g := range groups {
		got := g.C.Unpack()
		if !matrix.WithinTol(got.Data(), wants[i].Data(), 1e-10) {
			t.Errorf("group %d: max diff %g", i, matrix.MaxAbsDiff(got.Data(), wants[i].Data()))
		}
	}
}

func TestTRSMGrouped(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type shape struct{ count, m, n int }
	shapes := []shape{{8, 4, 4}, {5, 9, 3}}
	var groups []TRSMGroup[float32]
	var wants []*Batch[float32]
	for _, s := range shapes {
		a := randTriBatch[float32](rng, s.count, s.m)
		b := randBatch[float32](rng, s.count, s.m, s.n)
		want := &Batch[float32]{inner: b.inner.Clone()}
		matrix.RefTRSMBatch(Left, Lower, NoTrans, NonUnit, float32(1), a.inner, want.inner)
		wants = append(wants, want)
		groups = append(groups, TRSMGroup[float32]{
			Side: Left, Uplo: Lower, TransA: NoTrans, Diag: NonUnit, Alpha: 1,
			A: Pack(a), B: Pack(b),
		})
	}
	if err := TRSMGrouped(1, groups); err != nil {
		t.Fatal(err)
	}
	for i, g := range groups {
		got := g.B.Unpack()
		if !matrix.WithinTol(got.Data(), wants[i].Data(), 1e-3) {
			t.Errorf("group %d: max diff %g", i, matrix.MaxAbsDiff(got.Data(), wants[i].Data()))
		}
	}
}

// A broken group must be reported with its index, as a typed *GroupError
// wrapping the engine-taxonomy cause.
func TestGroupedErrorReportsIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	good := GEMMGroup[float64]{
		TransA: NoTrans, TransB: NoTrans, Alpha: 1, Beta: 1,
		A: Pack(randBatch[float64](rng, 2, 2, 2)),
		B: Pack(randBatch[float64](rng, 2, 2, 2)),
		C: Pack(randBatch[float64](rng, 2, 2, 2)),
	}
	bad := good
	bad.B = Pack(randBatch[float64](rng, 2, 5, 2)) // shape mismatch
	err := GEMMGrouped(1, []GEMMGroup[float64]{good, bad})
	if err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if want := "group 1"; !contains(err.Error(), want) {
		t.Errorf("error %q lacks %q", err, want)
	}
	var ge *GroupError
	if !errors.As(err, &ge) {
		t.Fatalf("error %T is not a *GroupError", err)
	}
	if ge.Op != "GEMM" || ge.Index != 1 {
		t.Errorf("GroupError{Op: %q, Index: %d}, want {GEMM, 1}", ge.Op, ge.Index)
	}
	if !errors.Is(err, ErrShape) {
		t.Errorf("GroupError does not unwrap to ErrShape: %v", err)
	}
}

// Grouped TRMM over heterogeneous shapes must match per-group oracles.
func TestTRMMGrouped(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	type shape struct{ count, m, n int }
	shapes := []shape{{7, 4, 6}, {3, 9, 2}}
	var groups []TRMMGroup[float64]
	var wants []*Batch[float64]
	for _, s := range shapes {
		a := randTriBatch[float64](rng, s.count, s.m)
		b := randBatch[float64](rng, s.count, s.m, s.n)
		want := &Batch[float64]{inner: b.inner.Clone()}
		matrix.RefTRMMBatch(Left, Lower, NoTrans, NonUnit, 1.5, a.inner, want.inner)
		wants = append(wants, want)
		groups = append(groups, TRMMGroup[float64]{
			Side: Left, Uplo: Lower, TransA: NoTrans, Diag: NonUnit, Alpha: 1.5,
			A: Pack(a), B: Pack(b),
		})
	}
	if err := TRMMGrouped(1, groups); err != nil {
		t.Fatal(err)
	}
	for i, g := range groups {
		got := g.B.Unpack()
		if !matrix.WithinTol(got.Data(), wants[i].Data(), 1e-10) {
			t.Errorf("group %d: max diff %g", i, matrix.MaxAbsDiff(got.Data(), wants[i].Data()))
		}
	}
}

// Grouped SYRK over heterogeneous shapes must match per-group oracles,
// and a failing group must carry its index and taxonomy.
func TestSYRKGrouped(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	type shape struct{ count, n, k int }
	shapes := []shape{{6, 5, 3}, {4, 7, 7}}
	var groups []SYRKGroup[float64]
	var wants []*Batch[float64]
	for _, s := range shapes {
		a := randBatch[float64](rng, s.count, s.n, s.k)
		c := randBatch[float64](rng, s.count, s.n, s.n)
		want := &Batch[float64]{inner: c.inner.Clone()}
		matrix.RefSYRKBatch(Lower, NoTrans, 2.0, a.inner, 1.0, want.inner)
		wants = append(wants, want)
		groups = append(groups, SYRKGroup[float64]{
			Uplo: Lower, Trans: NoTrans, Alpha: 2, Beta: 1,
			A: Pack(a), C: Pack(c),
		})
	}
	if err := SYRKGrouped(1, groups); err != nil {
		t.Fatal(err)
	}
	for i, g := range groups {
		got := g.C.Unpack()
		if !matrix.WithinTol(got.Data(), wants[i].Data(), 1e-10) {
			t.Errorf("group %d: max diff %g", i, matrix.MaxAbsDiff(got.Data(), wants[i].Data()))
		}
	}

	bad := groups[0]
	bad.C = Pack(randBatch[float64](rng, 6, 4, 4)) // C rows disagree with op(A)
	err := SYRKGrouped(1, []SYRKGroup[float64]{groups[0], bad})
	var ge *GroupError
	if !errors.As(err, &ge) || ge.Index != 1 || ge.Op != "SYRK" {
		t.Errorf("bad SYRK group: err = %v, want *GroupError{SYRK, 1}", err)
	}
	if !errors.Is(err, ErrShape) {
		t.Errorf("bad SYRK group does not unwrap to ErrShape: %v", err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
