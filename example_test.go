package iatf_test

import (
	"fmt"

	"iatf"
)

// ExampleGEMM multiplies a batch of 2×2 matrices.
func ExampleGEMM() {
	const count = 3
	a := iatf.NewBatch[float64](count, 2, 2)
	b := iatf.NewBatch[float64](count, 2, 2)
	c := iatf.NewBatch[float64](count, 2, 2)
	for m := 0; m < count; m++ {
		// A = [[1, 0], [0, 2]] scaled by the matrix index + 1; B = I.
		s := float64(m + 1)
		a.Set(m, 0, 0, s)
		a.Set(m, 1, 1, 2*s)
		b.Set(m, 0, 0, 1)
		b.Set(m, 1, 1, 1)
	}
	ca, cb, cc := iatf.Pack(a), iatf.Pack(b), iatf.Pack(c)
	if err := iatf.GEMM(iatf.NoTrans, iatf.NoTrans, 1.0, ca, cb, 0.0, cc); err != nil {
		panic(err)
	}
	out := cc.Unpack()
	fmt.Println(out.At(0, 0, 0), out.At(1, 0, 0), out.At(2, 1, 1))
	// Output: 1 2 6
}

// ExampleTRSM solves a batch of lower-triangular systems in place.
func ExampleTRSM() {
	a := iatf.NewBatch[float64](1, 2, 2)
	a.Set(0, 0, 0, 2) // [[2, 0], [1, 4]]
	a.Set(0, 1, 0, 1)
	a.Set(0, 1, 1, 4)
	b := iatf.NewBatch[float64](1, 2, 1)
	b.Set(0, 0, 0, 4) // rhs (4, 9)ᵀ → x = (2, 1.75)ᵀ
	b.Set(0, 1, 0, 9)
	ca, cb := iatf.Pack(a), iatf.Pack(b)
	if err := iatf.TRSM(iatf.Left, iatf.Lower, iatf.NoTrans, iatf.NonUnit, 1.0, ca, cb); err != nil {
		panic(err)
	}
	x := cb.Unpack()
	fmt.Println(x.At(0, 0, 0), x.At(0, 1, 0))
	// Output: 2 1.75
}

// ExampleLU factors and solves a batch of small systems.
func ExampleLU() {
	a := iatf.NewBatch[float64](1, 2, 2)
	a.Set(0, 0, 0, 4) // [[4, 3], [6, 3]]
	a.Set(0, 0, 1, 3)
	a.Set(0, 1, 0, 6)
	a.Set(0, 1, 1, 3)
	b := iatf.NewBatch[float64](1, 2, 1)
	b.Set(0, 0, 0, 10) // rhs (10, 12)ᵀ → x = (1, 2)ᵀ
	b.Set(0, 1, 0, 12)
	ca, cb := iatf.Pack(a), iatf.Pack(b)
	info, err := iatf.LU(ca)
	if err != nil || info[0] != 0 {
		panic("factorization failed")
	}
	if err := iatf.LUSolve(ca, cb); err != nil {
		panic(err)
	}
	x := cb.Unpack()
	fmt.Printf("%.0f %.0f\n", x.At(0, 0, 0), x.At(0, 1, 0))
	// Output: 1 2
}
