// Command iatf-bench regenerates the paper's evaluation (§6) on the cycle
// models: every figure's series as text tables, the headline speedup
// summary, and the design ablations. Output is suitable for pasting into
// EXPERIMENTS.md.
//
// Usage:
//
//	iatf-bench                 # everything
//	iatf-bench -fig 7          # one figure (7, 8, 9, 10, 11, 12)
//	iatf-bench -headline       # §1 speedup summary
//	iatf-bench -ablations      # design ablations
//	iatf-bench -ext            # TRMM extension figure
//	iatf-bench -matrices 128   # simulated batch per point
//	iatf-bench -maxsize 33     # largest square size
//	iatf-bench -wallclock      # real native-path timings, pack vs Prepack
//	iatf-bench -wallclock -json  # also write BENCH_wallclock.json
//	iatf-bench -wallclock -json -out /tmp/wc.json  # write elsewhere
//	iatf-bench -wallclock -shards 1,2,4,8 -json
//	                           # sharded mixed-traffic scaling rows
//	iatf-bench -diff -base BENCH_wallclock.json -new /tmp/wc.json
//	                           # compare runs; exit 1 on >15% regression
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"iatf/internal/bench"
	"iatf/internal/core"
	"iatf/internal/machine"
	"iatf/internal/matrix"
	"iatf/internal/vec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("iatf-bench: ")
	var (
		fig      = flag.Int("fig", 0, "regenerate one figure (7–12); 0 = all")
		headline = flag.Bool("headline", false, "print the §1 headline speedups")
		ablation = flag.Bool("ablations", false, "print the design ablations")
		ext      = flag.Bool("ext", false, "print the TRMM extension figure")
		matrices = flag.Int("matrices", 64, "simulated batch per point")
		maxSize  = flag.Int("maxsize", 33, "largest square size")
		step     = flag.Int("step", 1, "size step")

		wallclock = flag.Bool("wallclock", false, "time the real native path, pack-per-call vs prepacked")
		jsonOut   = flag.Bool("json", false, "with -wallclock, also write the rows as JSON (see -out)")
		outFile   = flag.String("out", wallclockFile, "with -wallclock -json: JSON output path")
		wcCount   = flag.Int("wcount", 2048, "wallclock batch size (matrices per call)")
		wcCalls   = flag.Int("wcalls", 128, "wallclock timed calls per variant")
		wcShards  = flag.String("shards", "", "with -wallclock: run the sharded mixed-traffic scaling benchmark at these shard counts (e.g. 1,2,4,8) instead of the pairwise table")

		diff       = flag.Bool("diff", false, "compare two wallclock JSON files and flag regressions")
		baseFile   = flag.String("base", wallclockFile, "with -diff: baseline wallclock JSON")
		newFile    = flag.String("new", "", "with -diff: candidate wallclock JSON")
		maxRegress = flag.Float64("maxregress", 15, "with -diff: fail when any row's ns_op regresses more than this percentage")
	)
	flag.Parse()

	if *diff {
		if *newFile == "" {
			log.Fatal("-diff requires -new FILE")
		}
		runBenchDiff(*baseFile, *newFile, *maxRegress)
		return
	}
	if *wallclock {
		if *wcShards != "" {
			var counts []int
			for _, f := range strings.Split(*wcShards, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil || n < 1 {
					log.Fatalf("-shards: bad shard count %q", f)
				}
				counts = append(counts, n)
			}
			runWallclockShards(counts, *jsonOut, *outFile, *wcCount, *wcCalls)
			return
		}
		runWallclock(*jsonOut, *outFile, *wcCount, *wcCalls, *maxSize)
		return
	}

	cfg := bench.Config{Matrices: *matrices}
	for n := 1; n <= *maxSize; n += *step {
		cfg.Sizes = append(cfg.Sizes, n)
	}

	all := *fig == 0 && !*headline && !*ablation && !*ext
	if all || *fig == 7 {
		figure7(cfg)
	}
	if all || *fig == 8 {
		figure8(cfg)
	}
	if all || *fig == 9 {
		figure9(cfg)
	}
	if all || *fig == 10 {
		figure10(cfg)
	}
	if all || *fig == 11 {
		figure11(cfg)
	}
	if all || *fig == 12 {
		figure12(cfg)
	}
	if all || *headline {
		printHeadline(cfg)
	}
	if all || *ablation {
		printAblations(cfg)
	}
	if all || *ext {
		printExtension(cfg)
	}
}

func printExtension(cfg bench.Config) {
	for _, dt := range vec.DTypes {
		ss, err := bench.TRMMFigure(dt, cfg)
		check(err)
		fmt.Print(bench.FormatTable(
			fmt.Sprintf("Extension: %strmm LNLN, GFLOPS (compact TRMM, not in the paper)", dt), ss, false))
		fmt.Println()
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func figure7(cfg bench.Config) {
	for _, dt := range vec.DTypes {
		ss, err := bench.GEMMFigure(dt, matrix.NoTrans, matrix.NoTrans, cfg)
		check(err)
		fmt.Print(bench.FormatTable(
			fmt.Sprintf("Figure 7: %sgemm NN, GFLOPS (Kunpeng 920 model)", dt), ss, false))
		fmt.Println()
	}
}

func figure8(cfg bench.Config) {
	modes := [][2]matrix.Trans{
		{matrix.NoTrans, matrix.NoTrans},
		{matrix.NoTrans, matrix.Transpose},
		{matrix.Transpose, matrix.NoTrans},
		{matrix.Transpose, matrix.Transpose},
	}
	for _, dt := range vec.DTypes {
		for _, m := range modes {
			ss, err := bench.GEMMFigure(dt, m[0], m[1], cfg)
			check(err)
			fmt.Print(bench.FormatTable(
				fmt.Sprintf("Figure 8: %sgemm %v%v, GFLOPS", dt, m[0], m[1]), ss, false))
			fmt.Println()
		}
	}
}

func figure9(cfg bench.Config) {
	for _, dt := range vec.DTypes {
		ss, err := bench.TRSMFigure(dt, matrix.Lower, matrix.NoTrans, matrix.NonUnit, cfg)
		check(err)
		fmt.Print(bench.FormatTable(
			fmt.Sprintf("Figure 9: %strsm LNLN, GFLOPS (Kunpeng 920 model)", dt), ss, false))
		fmt.Println()
	}
}

func figure10(cfg bench.Config) {
	modes := []struct {
		name string
		uplo matrix.Uplo
		ta   matrix.Trans
		diag matrix.Diag
	}{
		{"LNLN", matrix.Lower, matrix.NoTrans, matrix.NonUnit},
		{"LNUN", matrix.Upper, matrix.NoTrans, matrix.NonUnit},
		{"LTLN", matrix.Lower, matrix.Transpose, matrix.NonUnit},
		{"LTUN", matrix.Upper, matrix.Transpose, matrix.NonUnit},
	}
	for _, dt := range vec.DTypes {
		for _, m := range modes {
			ss, err := bench.TRSMFigure(dt, m.uplo, m.ta, m.diag, cfg)
			check(err)
			fmt.Print(bench.FormatTable(
				fmt.Sprintf("Figure 10: %strsm %s, GFLOPS", dt, m.name), ss, false))
			fmt.Println()
		}
	}
}

func figure11(cfg bench.Config) {
	for _, dt := range vec.DTypes {
		ss, err := bench.PctPeakFigure(dt, false, cfg)
		check(err)
		fmt.Print(bench.FormatTable(
			fmt.Sprintf("Figure 11: %sgemm NN, percent of machine peak", dt), ss, true))
		fmt.Println()
	}
}

func figure12(cfg bench.Config) {
	for _, dt := range vec.DTypes {
		ss, err := bench.PctPeakFigure(dt, true, cfg)
		check(err)
		fmt.Print(bench.FormatTable(
			fmt.Sprintf("Figure 12: %strsm LNLN, percent of machine peak", dt), ss, true))
		fmt.Println()
	}
}

func printHeadline(cfg bench.Config) {
	// Size 1 is a degenerate point (pure overhead ratio on both sides);
	// report "up to" over sizes ≥ 2 as the meaningful range.
	var sizes []int
	for _, n := range cfg.Sizes {
		if n >= 2 {
			sizes = append(sizes, n)
		}
	}
	cfg.Sizes = sizes
	fmt.Println("# Headline speedups (paper §1: 'up to' across sizes ≥ 2)")
	fmt.Printf("%-8s %-16s %-14s %-14s\n", "routine", "vs OpenBLAS-loop", "vs ARMPL", "vs LIBXSMM")
	find := func(ss []bench.Series, lib string) bench.Series {
		for _, s := range ss {
			if s.Lib == lib {
				return s
			}
		}
		return bench.Series{}
	}
	for _, dt := range vec.DTypes {
		ss, err := bench.GEMMFigure(dt, matrix.NoTrans, matrix.NoTrans, cfg)
		check(err)
		iatf := find(ss, "IATF")
		vsO, atO := bench.MaxSpeedup(iatf, find(ss, "OpenBLAS-loop"))
		vsA, atA := bench.MaxSpeedup(iatf, find(ss, "ARMPL-batch"))
		line := fmt.Sprintf("%-8s %6.1fx (n=%2d) %6.1fx (n=%2d)", dt.String()+"gemm", vsO, atO, vsA, atA)
		if !dt.IsComplex() {
			vsX, atX := bench.MaxSpeedup(iatf, find(ss, "LIBXSMM"))
			line += fmt.Sprintf(" %6.1fx (n=%2d)", vsX, atX)
		}
		fmt.Println(line)
	}
	for _, dt := range vec.DTypes {
		ss, err := bench.TRSMFigure(dt, matrix.Lower, matrix.NoTrans, matrix.NonUnit, cfg)
		check(err)
		iatf := find(ss, "IATF")
		vsO, atO := bench.MaxSpeedup(iatf, find(ss, "OpenBLAS-loop"))
		vsA, atA := bench.MaxSpeedup(iatf, find(ss, "ARMPL-loop"))
		fmt.Printf("%-8s %6.1fx (n=%2d) %6.1fx (n=%2d)\n", dt.String()+"trsm", vsO, atO, vsA, atA)
	}
	fmt.Println()
}

func printAblations(cfg bench.Config) {
	fmt.Println("# Design ablations (dgemm NN, GFLOPS on the Kunpeng 920 model)")
	sizes := []int{4, 8, 16, 32}
	configs := []struct {
		name string
		tun  core.Tuning
	}{
		{"full IATF", core.DefaultTuning()},
		{"no instruction scheduling", func() core.Tuning {
			t := core.DefaultTuning()
			t.DisableOptimizer = true
			return t
		}()},
		{"no C prefetch", func() core.Tuning {
			t := core.DefaultTuning()
			t.DisablePrefetch = true
			return t
		}()},
		{"forced A packing", func() core.Tuning {
			t := core.DefaultTuning()
			t.ForcePackA = true
			return t
		}()},
		{"whole-batch packing", func() core.Tuning {
			t := core.DefaultTuning()
			t.ForceGroupsPerBatch = 1 << 20
			return t
		}()},
	}
	fmt.Printf("%-28s", "configuration")
	for _, n := range sizes {
		fmt.Printf(" %8s", fmt.Sprintf("n=%d", n))
	}
	fmt.Println()
	acfg := bench.Config{Matrices: cfg.Matrices, Sizes: sizes}
	for _, c := range configs {
		fmt.Printf("%-28s", c.name)
		for _, n := range sizes {
			g, err := bench.IATFGEMM(vec.D, n, matrix.NoTrans, matrix.NoTrans, c.tun, acfg)
			check(err)
			fmt.Printf(" %8.3f", g)
		}
		fmt.Println()
	}

	fmt.Println("\n# Kernel-size ablation (dgemm 16x16x16, CMAR validation)")
	fmt.Printf("%-10s %10s %10s\n", "kernel", "CMAR", "GFLOPS")
	for _, sz := range [][2]int{{4, 4}, {4, 2}, {2, 4}, {3, 3}, {2, 2}, {1, 4}} {
		g := kernelSizeGFLOPS(sz[0], sz[1], acfg)
		fmt.Printf("%dx%-8d %10.3f %10.3f\n", sz[0], sz[1],
			float64(sz[0]*sz[1])/float64(sz[0]+sz[1]), g)
	}
	fmt.Println()
}

// kernelSizeGFLOPS forces a specific main kernel by tiling M and N with
// that size only (via a synthetic problem whose dims are multiples of it).
func kernelSizeGFLOPS(mc, nc int, cfg bench.Config) float64 {
	tun := core.DefaultTuning()
	const dim = 16
	p := core.GEMMProblem{DT: vec.D, M: dim, N: dim, K: dim, Alpha: 1, Beta: 1, Count: cfg.Matrices}
	pl, err := core.NewGEMMPlanWithKernel(p, tun, mc, nc)
	check(err)
	sim := machine.NewSim(tun.Prof, 8)
	groups := (cfg.Matrices + 1) / 2
	cycles, err := core.SimGEMM(pl, groups, sim)
	check(err)
	flops := 2.0 * dim * dim * dim * float64(groups*2)
	return flops / (float64(cycles) / (tun.Prof.FreqGHz * 1e9)) / 1e9
}
