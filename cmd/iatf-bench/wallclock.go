package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"iatf"
	"iatf/internal/core"
	"iatf/internal/kopt"
	"iatf/internal/vec"
)

// Wall-clock mode: unlike the figure tables (cycle models), -wallclock
// times the real native execution path through the public API, pairing
// every shape with a pack-per-call and a prepacked (Prepack, warm
// packed-operand cache) variant — the reuse-heavy serving pattern the
// pack-once optimization targets. -json additionally writes the rows to
// BENCH_wallclock.json so the perf trajectory is machine-readable
// across PRs.

const wallclockFile = "BENCH_wallclock.json"

// wcResult is one benchmark row of BENCH_wallclock.json.
type wcResult struct {
	Op      string  `json:"op"`
	DType   string  `json:"dtype"`
	Shape   string  `json:"shape"`
	Count   int     `json:"count"`
	Variant string  `json:"variant"` // "pack-per-call"/"prepacked", or "unchained"/"chained" on chain rows
	Calls   int     `json:"calls"`
	NsOp    float64 `json:"ns_op"`
	GFLOPS  float64 `json:"gflops"`
	Speedup float64 `json:"speedup,omitempty"` // vs pack-per-call, on prepacked rows
}

// wcScalar converts a float64 to any supported scalar type.
func wcScalar[T iatf.Scalar](x float64) T {
	var z T
	switch any(z).(type) {
	case float32:
		return any(float32(x)).(T)
	case float64:
		return any(x).(T)
	case complex64:
		return any(complex(float32(x), 0)).(T)
	default:
		return any(complex(x, 0)).(T)
	}
}

// wcFill writes a deterministic pseudo-random pattern in (-0.5, 0.5).
func wcFill[T iatf.Scalar](data []T, seed uint64) {
	s := seed*2862933555777941757 + 3037000493
	for i := range data {
		s = s*6364136223846793005 + 1442695040888963407
		data[i] = wcScalar[T](float64(s>>11)/float64(1<<53) - 0.5)
	}
}

// wcTriBatch builds a well-conditioned lower-triangular batch: unit-size
// diagonal and small off-diagonal entries, so repeated solves/multiplies
// in the timed loop stay O(1) instead of drifting into denormals.
func wcTriBatch[T iatf.Scalar](count, n int) *iatf.Batch[T] {
	b := iatf.NewBatch[T](count, n, n)
	data := b.Data()
	wcFill(data, 42)
	for m := 0; m < count; m++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				switch {
				case i == j:
					b.Set(m, i, j, T(1))
				case i > j:
					b.Set(m, i, j, b.At(m, i, j)*T(0.01))
				default:
					b.Set(m, i, j, 0)
				}
			}
		}
	}
	return b
}

// wcTime warms the call up and then times `calls` invocations, split
// into a few equal chunks; the reported ns/op is the best chunk's rate.
// The work is deterministic and noise (GC pauses, scheduler stalls on a
// shared host) is strictly additive, so the fastest chunk estimates the
// uncontended rate — one mean over all calls lets a single ~100ms stall
// shift a mid-size row by 25%+ and flake the benchdiff gate.
func wcTime(calls int, call func() error) (float64, error) {
	for i := 0; i < 8; i++ {
		if err := call(); err != nil {
			return 0, err
		}
	}
	const chunks = 4
	per := (calls + chunks - 1) / chunks
	best := math.Inf(1)
	for c := 0; c < chunks; c++ {
		start := time.Now()
		for i := 0; i < per; i++ {
			if err := call(); err != nil {
				return 0, err
			}
		}
		best = math.Min(best, float64(time.Since(start).Nanoseconds())/float64(per))
	}
	return best, nil
}

func wcGEMM[T iatf.Scalar](dt vec.DType, n, count, calls int, prepack bool) (float64, float64, error) {
	ab := iatf.NewBatch[T](count, n, n)
	bb := iatf.NewBatch[T](count, n, n)
	wcFill(ab.Data(), 1)
	wcFill(bb.Data(), 2)
	a, b, c := iatf.Pack(ab), iatf.Pack(bb), iatf.Pack(iatf.NewBatch[T](count, n, n))
	eng := iatf.NewEngine()
	if prepack {
		a.Prepack()
		b.Prepack()
	}
	nsOp, err := wcTime(calls, func() error {
		return iatf.GEMMOn(eng, 0, iatf.NoTrans, iatf.NoTrans, T(1), a, b, T(0), c)
	})
	if err != nil {
		return 0, 0, err
	}
	flops := core.GEMMProblem{DT: dt, M: n, N: n, K: n, Count: count}.FLOPs()
	return nsOp, flops / nsOp, nil
}

func wcTRSM[T iatf.Scalar](dt vec.DType, n, count, calls int, prepack bool) (float64, float64, error) {
	a := iatf.Pack(wcTriBatch[T](count, n))
	bb := iatf.NewBatch[T](count, n, n)
	wcFill(bb.Data(), 3)
	b := iatf.Pack(bb)
	eng := iatf.NewEngine()
	if prepack {
		a.Prepack()
	}
	nsOp, err := wcTime(calls, func() error {
		return iatf.TRSMOn(eng, 0, iatf.Left, iatf.Lower, iatf.NoTrans, iatf.NonUnit, T(1), a, b)
	})
	if err != nil {
		return 0, 0, err
	}
	flops := core.TRSMProblem{DT: dt, M: n, N: n, Count: count}.FLOPs()
	return nsOp, flops / nsOp, nil
}

func wcTRMM[T iatf.Scalar](dt vec.DType, n, count, calls int, prepack bool) (float64, float64, error) {
	a := iatf.Pack(wcTriBatch[T](count, n))
	bb := iatf.NewBatch[T](count, n, n)
	wcFill(bb.Data(), 4)
	b := iatf.Pack(bb)
	eng := iatf.NewEngine()
	if prepack {
		a.Prepack()
	}
	nsOp, err := wcTime(calls, func() error {
		return iatf.TRMMOn(eng, 0, iatf.Left, iatf.Lower, iatf.NoTrans, iatf.NonUnit, T(1), a, b)
	})
	if err != nil {
		return 0, 0, err
	}
	flops := core.TRMMProblem{DT: dt, M: n, N: n, Count: count}.FLOPs()
	return nsOp, flops / nsOp, nil
}

// wcTriBatchU is the upper-triangular mirror of wcTriBatch: unit-size
// diagonal, small entries above it, zeros below.
func wcTriBatchU[T iatf.Scalar](count, n int) *iatf.Batch[T] {
	b := iatf.NewBatch[T](count, n, n)
	wcFill(b.Data(), 43)
	for m := 0; m < count; m++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				switch {
				case i == j:
					b.Set(m, i, j, T(1))
				case i < j:
					b.Set(m, i, j, b.At(m, i, j)*T(0.01))
				default:
					b.Set(m, i, j, 0)
				}
			}
		}
	}
	return b
}

// wcChainFused times the canonical fusable pair — TRMM(Left,Upper) then
// TRSM(Left,Upper) over the same B — as two separate engine calls
// ("unchained") or as one iatf.Chain ("chained"): the chain plan keeps
// B packed across the stage boundary, eliding stage 0's scatter and
// stage 1's repack. U⁻¹(U·B) = B exactly, so the timed loop is stable.
func wcChainFused(n, count, calls int, chained bool) (float64, float64, error) {
	a := iatf.Pack(wcTriBatchU[float64](count, n))
	bb := iatf.NewBatch[float64](count, n, n)
	wcFill(bb.Data(), 5)
	b := iatf.Pack(bb)
	eng := iatf.NewEngine()
	call := func() error {
		if err := iatf.TRMMOn(eng, 0, iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1.0, a, b); err != nil {
			return err
		}
		return iatf.TRSMOn(eng, 0, iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1.0, a, b)
	}
	if chained {
		ctx := context.Background()
		stages := []iatf.Stage[float64]{
			iatf.TRMMStage(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1, a, b),
			iatf.TRSMStage(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1, a, b),
		}
		call = func() error { return iatf.Chain(ctx, stages, iatf.WithEngine(eng)) }
	}
	nsOp, err := wcTime(calls, call)
	if err != nil {
		return 0, 0, err
	}
	flops := core.TRMMProblem{DT: vec.D, M: n, N: n, Count: count}.FLOPs() +
		core.TRSMProblem{DT: vec.D, M: n, N: n, Count: count}.FLOPs()
	return nsOp, flops / nsOp, nil
}

// wcChainSolve times the forward/backward solve pair — TRSM with L then
// TRSM with Lᵀ, the CholeskySolve shape. The two stages want B in
// different packed forms, so the handoff is NOT elided; the chain's win
// here is recognizing L as chain-invariant (read by both stages, written
// by neither) and auto-prepacking its triangle image.
func wcChainSolve(n, count, calls int, chained bool) (float64, float64, error) {
	a := iatf.Pack(wcTriBatch[float64](count, n))
	bb := iatf.NewBatch[float64](count, n, n)
	wcFill(bb.Data(), 6)
	b := iatf.Pack(bb)
	eng := iatf.NewEngine()
	call := func() error {
		if err := iatf.TRSMOn(eng, 0, iatf.Left, iatf.Lower, iatf.NoTrans, iatf.NonUnit, 1.0, a, b); err != nil {
			return err
		}
		return iatf.TRSMOn(eng, 0, iatf.Left, iatf.Lower, iatf.Transpose, iatf.NonUnit, 1.0, a, b)
	}
	if chained {
		ctx := context.Background()
		stages := []iatf.Stage[float64]{
			iatf.TRSMStage(iatf.Left, iatf.Lower, iatf.NoTrans, iatf.NonUnit, 1, a, b),
			iatf.TRSMStage(iatf.Left, iatf.Lower, iatf.Transpose, iatf.NonUnit, 1, a, b),
		}
		call = func() error { return iatf.Chain(ctx, stages, iatf.WithEngine(eng)) }
	}
	nsOp, err := wcTime(calls, call)
	if err != nil {
		return 0, 0, err
	}
	flops := 2 * core.TRSMProblem{DT: vec.D, M: n, N: n, Count: count}.FLOPs()
	return nsOp, flops / nsOp, nil
}

// runWallclock runs every (op, dtype, shape) pair in both variants and
// prints the comparison; writeJSON additionally writes the rows to
// outFile (BENCH_wallclock.json by default).
func runWallclock(writeJSON bool, outFile string, count, calls, maxSize int) {
	type benchFn func(prepack bool) (float64, float64, error)
	type benchCase struct {
		op, dtype, shape string
		fn               benchFn
	}
	var sizes []int
	for n := 4; n <= maxSize; n *= 2 {
		sizes = append(sizes, n)
	}
	var cases []benchCase
	for _, n := range sizes {
		n := n
		shape := fmt.Sprintf("%dx%d", n, n)
		cases = append(cases,
			benchCase{"GEMM", "s", shape, func(p bool) (float64, float64, error) {
				return wcGEMM[float32](vec.S, n, count, calls, p)
			}},
			benchCase{"GEMM", "d", shape, func(p bool) (float64, float64, error) {
				return wcGEMM[float64](vec.D, n, count, calls, p)
			}},
			benchCase{"TRSM", "s", shape, func(p bool) (float64, float64, error) {
				return wcTRSM[float32](vec.S, n, count, calls, p)
			}},
			benchCase{"TRSM", "d", shape, func(p bool) (float64, float64, error) {
				return wcTRSM[float64](vec.D, n, count, calls, p)
			}},
			benchCase{"TRMM", "s", shape, func(p bool) (float64, float64, error) {
				return wcTRMM[float32](vec.S, n, count, calls, p)
			}},
			benchCase{"TRMM", "d", shape, func(p bool) (float64, float64, error) {
				return wcTRMM[float64](vec.D, n, count, calls, p)
			}},
		)
	}

	fmt.Printf("# Wall-clock, native path, count=%d, %d warm calls per variant\n", count, calls)
	fmt.Printf("%-5s %-3s %-8s %14s %10s %14s %10s %8s\n",
		"op", "dt", "shape", "pack ns/op", "GFLOPS", "prepack ns/op", "GFLOPS", "speedup")
	var rows []wcResult
	for _, bc := range cases {
		nsPack, gfPack, err := bc.fn(false)
		check(err)
		nsPre, gfPre, err := bc.fn(true)
		check(err)
		speedup := nsPack / nsPre
		fmt.Printf("%-5s %-3s %-8s %14.0f %10.3f %14.0f %10.3f %7.2fx\n",
			bc.op, bc.dtype, bc.shape, nsPack, gfPack, nsPre, gfPre, speedup)
		rows = append(rows,
			wcResult{Op: bc.op, DType: bc.dtype, Shape: bc.shape, Count: count,
				Variant: "pack-per-call", Calls: calls, NsOp: math.Round(nsPack), GFLOPS: gfPack},
			wcResult{Op: bc.op, DType: bc.dtype, Shape: bc.shape, Count: count,
				Variant: "prepacked", Calls: calls, NsOp: math.Round(nsPre), GFLOPS: gfPre,
				Speedup: math.Round(speedup*100) / 100})
	}
	// Cross-op chains: the same stages issued as separate calls vs one
	// iatf.Chain, so the packed-handoff elision and chain auto-prepack
	// show up in the committed perf trajectory (and benchdiff gates them).
	type chainFn func(chained bool) (float64, float64, error)
	type chainCase struct {
		op, shape string
		fn        chainFn
	}
	var chains []chainCase
	for _, n := range sizes {
		n := n
		shape := fmt.Sprintf("%dx%d", n, n)
		chains = append(chains,
			chainCase{"TRMM+TRSM", shape, func(c bool) (float64, float64, error) {
				return wcChainFused(n, count, calls, c)
			}},
			chainCase{"TRSM+TRSM", shape, func(c bool) (float64, float64, error) {
				return wcChainSolve(n, count, calls, c)
			}},
		)
	}
	fmt.Printf("\n# Cross-op chains: separate calls vs one iatf.Chain (packed handoff, auto-prepack)\n")
	fmt.Printf("%-10s %-3s %-8s %14s %10s %14s %10s %8s\n",
		"chain", "dt", "shape", "unchain ns/op", "GFLOPS", "chain ns/op", "GFLOPS", "speedup")
	for _, cc := range chains {
		nsUn, gfUn, err := cc.fn(false)
		check(err)
		nsCh, gfCh, err := cc.fn(true)
		check(err)
		speedup := nsUn / nsCh
		fmt.Printf("%-10s %-3s %-8s %14.0f %10.3f %14.0f %10.3f %7.2fx\n",
			cc.op, "d", cc.shape, nsUn, gfUn, nsCh, gfCh, speedup)
		rows = append(rows,
			wcResult{Op: cc.op, DType: "d", Shape: cc.shape, Count: count,
				Variant: "unchained", Calls: calls, NsOp: math.Round(nsUn), GFLOPS: gfUn},
			wcResult{Op: cc.op, DType: "d", Shape: cc.shape, Count: count,
				Variant: "chained", Calls: calls, NsOp: math.Round(nsCh), GFLOPS: gfCh,
				Speedup: math.Round(speedup*100) / 100})
	}

	// Cold-start: the very first call of a fresh engine with an empty
	// process-wide kernel memo — plan construction, kernel generation and
	// list scheduling all on the critical path — with and without a
	// pre-baked persistent autotune store. This is the warm-start claim
	// behind iatf-tune, kept honest by the benchdiff gate.
	rows = append(rows, runWallclockColdStart(sizes)...)

	if writeJSON {
		mergeWallclock(outFile, rows)
	}
}

// wcColdCount is the batch size of the cold-start rows: deliberately
// small, so the measurement is dominated by the install-time work on the
// first call's critical path (kernel generation, list scheduling, plan
// construction) rather than by executing a large batch — the "first
// request into a fresh replica" latency the persistent store targets.
const wcColdCount = 16

// wcColdFirstCall times one cold start end to end: construct a fresh
// engine (loading the store when warm is set) and issue the first dgemm
// call. The process-wide kernel memo is swapped for an empty one around
// the measurement — the in-process equivalent of a brand-new process —
// so repetitions don't inherit schedules from earlier ones.
func wcColdFirstCall(n int, warm bool, dir string) (float64, error) {
	ab := iatf.NewBatch[float64](wcColdCount, n, n)
	bb := iatf.NewBatch[float64](wcColdCount, n, n)
	wcFill(ab.Data(), 7)
	wcFill(bb.Data(), 8)
	a, b, c := iatf.Pack(ab), iatf.Pack(bb), iatf.Pack(iatf.NewBatch[float64](wcColdCount, n, n))

	old := core.SwapKernelMemo(kopt.NewMemo())
	defer core.SwapKernelMemo(old)
	start := time.Now()
	var eng *iatf.Engine
	if warm {
		eng = iatf.NewEngine(iatf.WithPlanStore(dir))
	} else {
		eng = iatf.NewEngine()
	}
	if err := iatf.GEMMOn(eng, 0, iatf.NoTrans, iatf.NoTrans, 1.0, a, b, 0.0, c); err != nil {
		return 0, err
	}
	return float64(time.Since(start).Nanoseconds()), nil
}

// runWallclockColdStart produces the cold-start rows: for each size, the
// median over several repetitions of the first-call wall time on a fresh
// engine, as "cold-start" (everything tuned on the critical path) and
// "warm-store" (engine constructed over a store pre-baked the way
// iatf-tune would, so construction hydrates the plan and imports kernel
// schedules). Each size gets its own store, baked on its own empty
// kernel memo — a tuner process baking exactly the deployment's shape —
// so one row's store does not carry another row's kernels. Speedup on
// the warm-store row is cold/warm.
func runWallclockColdStart(sizes []int) []wcResult {
	const reps = 5
	root, err := os.MkdirTemp("", "iatf-wc-store-")
	check(err)
	defer os.RemoveAll(root)

	bakeFor := func(n int) string {
		dir := fmt.Sprintf("%s/n%d", root, n)
		oldMemo := core.SwapKernelMemo(kopt.NewMemo())
		defer core.SwapKernelMemo(oldMemo)
		bake := iatf.NewEngine(iatf.WithPlanStore(dir))
		ab := iatf.NewBatch[float64](wcColdCount, n, n)
		bb := iatf.NewBatch[float64](wcColdCount, n, n)
		wcFill(ab.Data(), 7)
		wcFill(bb.Data(), 8)
		a, b, c := iatf.Pack(ab), iatf.Pack(bb), iatf.Pack(iatf.NewBatch[float64](wcColdCount, n, n))
		check(iatf.GEMMOn(bake, 0, iatf.NoTrans, iatf.NoTrans, 1.0, a, b, 0.0, c))
		check(bake.SaveStore())
		return dir
	}

	// Min over repetitions, not median: the work is deterministic and
	// every noise source (GC pause, scheduler preemption) is additive,
	// so the minimum is the stable estimator — one-shot latencies would
	// otherwise swing run to run and flake the benchdiff gate.
	best := func(n int, warm bool, dir string) float64 {
		lo := math.Inf(1)
		for i := 0; i < reps; i++ {
			runtime.GC()
			v, err := wcColdFirstCall(n, warm, dir)
			check(err)
			lo = math.Min(lo, v)
		}
		return lo
	}

	fmt.Printf("\n# Cold start: first dgemm call on a fresh engine, empty kernel memo, count=%d (best of %d)\n",
		wcColdCount, reps)
	fmt.Printf("%-5s %-3s %-8s %14s %14s %8s\n",
		"op", "dt", "shape", "cold ns", "warm-store ns", "speedup")
	var rows []wcResult
	for _, n := range sizes {
		shape := fmt.Sprintf("%dx%d", n, n)
		flops := core.GEMMProblem{DT: vec.D, M: n, N: n, K: n, Count: wcColdCount}.FLOPs()
		dir := bakeFor(n)
		nsCold := best(n, false, dir)
		nsWarm := best(n, true, dir)
		speedup := nsCold / nsWarm
		fmt.Printf("%-5s %-3s %-8s %14.0f %14.0f %7.2fx\n", "GEMM", "d", shape, nsCold, nsWarm, speedup)
		rows = append(rows,
			wcResult{Op: "GEMM", DType: "d", Shape: shape, Count: wcColdCount,
				Variant: "cold-start", Calls: reps, NsOp: math.Round(nsCold), GFLOPS: flops / nsCold},
			wcResult{Op: "GEMM", DType: "d", Shape: shape, Count: wcColdCount,
				Variant: "warm-store", Calls: reps, NsOp: math.Round(nsWarm), GFLOPS: flops / nsWarm,
				Speedup: math.Round(speedup*100) / 100})
	}
	return rows
}

// mergeWallclock writes rows into outFile, replacing rows with the same
// (op, dtype, shape, variant) key and keeping everything else — so the
// pairwise table and the sharded scaling rows coexist in one file across
// separate runs.
func mergeWallclock(outFile string, rows []wcResult) {
	key := func(r wcResult) string { return r.Op + "|" + r.DType + "|" + r.Shape + "|" + r.Variant }
	fresh := make(map[string]wcResult, len(rows))
	for _, r := range rows {
		fresh[key(r)] = r
	}
	var out []wcResult
	if data, err := os.ReadFile(outFile); err == nil {
		var old []wcResult
		if err := json.Unmarshal(data, &old); err == nil {
			for _, r := range old {
				if _, replaced := fresh[key(r)]; !replaced {
					out = append(out, r)
				}
			}
		}
	}
	out = append(out, rows...)
	f, err := os.Create(outFile)
	check(err)
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	check(enc.Encode(out))
	check(f.Close())
	fmt.Printf("\nwrote %s (%d rows, %d updated)\n", outFile, len(out), len(rows))
}

// wcMixed drives a mixed-traffic serving workload — concurrent
// submitters of several distinct problem identities — through an
// EngineSet of the given shard count, and returns the mean wall-clock
// per request and the aggregate GFLOPS. shards == 1 is the single-
// dispatcher baseline the scaling rows are normalized against.
func wcMixed(shards, count, callsPerSubmitter int) (float64, float64, error) {
	set := iatf.NewEngineSet(shards)
	shapes := [][3]int{{8, 8, 8}, {6, 5, 7}, {12, 12, 4}, {4, 16, 8}, {16, 4, 4}, {8, 12, 12}, {10, 10, 10}, {4, 4, 12}}
	const submitters = 8
	type job struct {
		req   iatf.Request[float32]
		flops float64
	}
	jobs := make([]job, submitters)
	for g := range jobs {
		m, n, k := shapes[g%len(shapes)][0], shapes[g%len(shapes)][1], shapes[g%len(shapes)][2]
		ab := iatf.NewBatch[float32](count, m, k)
		bb := iatf.NewBatch[float32](count, k, n)
		wcFill(ab.Data(), uint64(g)+1)
		wcFill(bb.Data(), uint64(g)+100)
		a, b, c := iatf.Pack(ab), iatf.Pack(bb), iatf.Pack(iatf.NewBatch[float32](count, m, n))
		jobs[g] = job{
			req:   iatf.Request[float32]{Op: iatf.OpGEMM, Alpha: 1, Beta: 0, A: a, B: b, C: c},
			flops: core.GEMMProblem{DT: vec.S, M: m, N: n, K: k, Count: count}.FLOPs(),
		}
	}
	ctx := context.Background()
	run := func(calls int) error {
		var wg sync.WaitGroup
		errs := make(chan error, submitters)
		for g := range jobs {
			wg.Add(1)
			go func(j job) {
				defer wg.Done()
				for i := 0; i < calls; i++ {
					if err := iatf.Do(ctx, j.req, iatf.WithEngineSet(set), iatf.WithAsync()); err != nil {
						errs <- err
						return
					}
				}
			}(jobs[g])
		}
		wg.Wait()
		close(errs)
		return <-errs
	}
	// Warm every identity's plan and route before timing.
	if err := run(4); err != nil {
		return 0, 0, err
	}
	start := time.Now()
	if err := run(callsPerSubmitter); err != nil {
		return 0, 0, err
	}
	wall := time.Since(start)
	totalCalls := submitters * callsPerSubmitter
	var totalFlops float64
	for _, j := range jobs {
		totalFlops += j.flops * float64(callsPerSubmitter)
	}
	nsOp := float64(wall.Nanoseconds()) / float64(totalCalls)
	return nsOp, totalFlops / float64(wall.Nanoseconds()), nil
}

// runWallclockShards is the sharded mixed-traffic scaling benchmark:
// one row per shard count, speedup normalized to the single-shard
// baseline, merged into the wallclock JSON next to the pairwise rows.
func runWallclockShards(shardCounts []int, writeJSON bool, outFile string, count, calls int) {
	fmt.Printf("# Sharded mixed-traffic scaling: 8 submitters x 8 GEMM identities, count=%d, %d calls each\n", count, calls)
	fmt.Printf("%-8s %14s %10s %8s\n", "shards", "ns/req", "GFLOPS", "scaling")
	var rows []wcResult
	var baseNs float64
	for _, n := range shardCounts {
		nsOp, gf, err := wcMixed(n, count, calls)
		check(err)
		if baseNs == 0 {
			baseNs = nsOp
		}
		scaling := baseNs / nsOp
		fmt.Printf("%-8d %14.0f %10.3f %7.2fx\n", n, nsOp, gf, scaling)
		rows = append(rows, wcResult{
			Op: "MIXED", DType: "s", Shape: "mixed-8", Count: count,
			Variant: fmt.Sprintf("shards-%d", n), Calls: calls,
			NsOp: math.Round(nsOp), GFLOPS: gf,
			Speedup: math.Round(scaling*100) / 100,
		})
	}
	if writeJSON {
		mergeWallclock(outFile, rows)
	}
}

// loadWallclock reads one wallclock JSON file into a row map keyed by
// op|dtype|shape|variant.
func loadWallclock(path string) (map[string]wcResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []wcResult
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]wcResult, len(rows))
	for _, r := range rows {
		m[r.Op+"|"+r.DType+"|"+r.Shape+"|"+r.Variant] = r
	}
	return m, nil
}

// runBenchDiff joins two wallclock JSON files on (op, dtype, shape,
// variant), prints the per-row ns_op delta, and exits nonzero when any
// row regresses by more than maxRegress percent — the perf gate behind
// `make benchdiff`. Rows present on only one side are reported but never
// fail the gate (shape sets may differ across configurations).
func runBenchDiff(basePath, newPath string, maxRegress float64) {
	base, err := loadWallclock(basePath)
	check(err)
	cand, err := loadWallclock(newPath)
	check(err)

	keys := make([]string, 0, len(base))
	for k := range base {
		if _, ok := cand[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	fmt.Printf("# Wallclock diff: base=%s new=%s (fail > +%.0f%% ns/op)\n",
		basePath, newPath, maxRegress)
	fmt.Printf("%-5s %-3s %-8s %-14s %14s %14s %9s\n",
		"op", "dt", "shape", "variant", "base ns/op", "new ns/op", "delta")
	var failed []string
	for _, k := range keys {
		b, n := base[k], cand[k]
		// Compare per-matrix time so runs with different -wcount still
		// line up (identical counts reduce to the plain ns_op ratio).
		bPer := b.NsOp / float64(b.Count)
		nPer := n.NsOp / float64(n.Count)
		delta := (nPer - bPer) / bPer * 100
		mark := ""
		if b.Count != n.Count {
			mark = fmt.Sprintf("  (count %d vs %d, per-matrix)", b.Count, n.Count)
		}
		if delta > maxRegress {
			mark += "  << REGRESSION"
			failed = append(failed, fmt.Sprintf("%s %s %s %s %+.1f%%",
				b.Op, b.DType, b.Shape, b.Variant, delta))
		}
		fmt.Printf("%-5s %-3s %-8s %-14s %14.0f %14.0f %+8.1f%%%s\n",
			b.Op, b.DType, b.Shape, b.Variant, b.NsOp, n.NsOp, delta, mark)
	}
	for k, r := range base {
		if _, ok := cand[k]; !ok {
			fmt.Printf("# only in base: %s %s %s %s\n", r.Op, r.DType, r.Shape, r.Variant)
		}
	}
	for k, r := range cand {
		if _, ok := base[k]; !ok {
			fmt.Printf("# only in new:  %s %s %s %s\n", r.Op, r.DType, r.Shape, r.Variant)
		}
	}
	if len(keys) == 0 {
		check(fmt.Errorf("no common rows between %s and %s", basePath, newPath))
	}
	if len(failed) > 0 {
		fmt.Printf("\n%d row(s) regressed beyond %.0f%%:\n", len(failed), maxRegress)
		for _, f := range failed {
			fmt.Println("  " + f)
		}
		os.Exit(1)
	}
	fmt.Printf("\nOK: %d rows compared, none beyond +%.0f%%\n", len(keys), maxRegress)
}
