// iatf-serve is the SLO-aware serving front-end: it mounts the
// internal/serve HTTP tier (POST /v1/do plus /healthz, /stats, /tenants
// and /metrics) over one engine or a sharded engine set, with EDF
// dispatch, a tunable max-batch-window, admission control driven by the
// queue's depth high-water mark and wait histogram, W3C traceparent
// propagation (every response echoes X-IATF-Trace), and per-tenant SLO
// accounting.
//
//	iatf-serve -addr :8080 -shards 4 -window 2ms \
//	    -tenant batch=-1:50:0.9 -tenant rt=5:10:0.999 -access-log -
//
// -once runs the self-contained smoke: the server comes up on an
// ephemeral port, one traceparent-tagged GEMM round-trips through it
// over real HTTP, the result, trace echo and tenant accounting are
// verified and the process exits — the CI liveness check.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"iatf"
	"iatf/internal/serve"
)

// tenantFlag accumulates repeated -tenant name=class[:objective_ms[:target]]
// specs (iatf.ParseTenantSpec syntax).
type tenantFlag map[string]iatf.TenantObjective

func (t tenantFlag) String() string {
	parts := make([]string, 0, len(t))
	for k, v := range t {
		parts = append(parts, fmt.Sprintf("%s=%d:%g:%g", k, v.Class,
			float64(v.Objective)/float64(time.Millisecond), v.Target))
	}
	return strings.Join(parts, ",")
}

func (t tenantFlag) Set(s string) error {
	name, obj, err := iatf.ParseTenantSpec(s)
	if err != nil {
		return err
	}
	t[name] = obj
	return nil
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		shards    = flag.Int("shards", 0, "engine-set shard count (0 = one private engine)")
		window    = flag.Duration("window", 2*time.Millisecond, "dispatcher max-batch-window (0 = drain immediately)")
		edf       = flag.Bool("edf", true, "deadline-ordered dispatch (false = FIFO drain)")
		queueCap  = flag.Int("queue-cap", 0, "submission-queue capacity per shard (0 = engine default)")
		deadline  = flag.Duration("deadline", 0, "default request deadline when the body carries none (0 = none)")
		planStore = flag.String("plan-store", "", "warm-start from a persistent autotune store directory (\"default\" = the default dir; pre-bake with iatf-tune)")
		accessLog = flag.String("access-log", "", "structured JSON access log destination (\"-\" = stdout, else a file path; empty = off)")
		once      = flag.Bool("once", false, "serve on an ephemeral port, run one GEMM through it, exit")
		tenants   = tenantFlag{}
	)
	flag.Var(tenants, "tenant", "tenant SLO spec name=class[:objective_ms[:target]] (repeatable)")
	flag.Parse()

	opts := []iatf.EngineOption{
		iatf.WithEDF(*edf),
		iatf.WithBatchWindow(*window),
	}
	if *queueCap > 0 {
		opts = append(opts, iatf.WithQueueCapacity(*queueCap))
	}
	if *planStore != "" {
		dir := *planStore
		if dir == "default" {
			dir = ""
		}
		opts = append(opts, iatf.WithPlanStore(dir))
	}

	// Tenants is always non-nil here (the zero tenantFlag is an empty
	// map), so per-tenant accounting is on even before the first -tenant
	// flag: unknown origins land in zero-objective series.
	cfg := serve.Config{DefaultDeadline: *deadline, Tenants: tenants}
	switch *accessLog {
	case "":
	case "-":
		cfg.AccessLog = os.Stdout
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("access-log: %v", err)
		}
		defer f.Close()
		cfg.AccessLog = f
	}
	if *shards > 0 {
		set := iatf.NewEngineSet(*shards, opts...)
		if *planStore != "" {
			st := set.Stats().Aggregate
			log.Printf("plan store %s: %d plans hydrated", set.StorePath(), st.PlanHydrated)
		}
		cfg.Set = set
	} else {
		eng := iatf.NewEngine(opts...)
		if *planStore != "" {
			log.Printf("plan store %s: %d plans hydrated", eng.StorePath(), eng.Stats().PlanHydrated)
		}
		cfg.Engine = eng
	}
	srv := serve.New(cfg)

	if *once {
		if err := smoke(srv); err != nil {
			log.Fatalf("smoke: %v", err)
		}
		fmt.Println("iatf-serve smoke ok")
		return
	}

	log.Printf("iatf-serve listening on %s (shards=%d edf=%v window=%v)",
		*addr, *shards, *edf, *window)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}

// smoke round-trips one 2-matrix GEMM over real HTTP and verifies the
// result numerically (identity × A must return A), the traceparent echo
// on X-IATF-Trace, and the /tenants accounting for the tagged request.
func smoke(srv *serve.Server) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// healthz first: the tier must be up before we push work.
	hr, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: %s", hr.Status)
	}

	const count, n = 2, 4
	ident := make([]float64, count*n*n)
	data := make([]float64, count*n*n)
	for m := 0; m < count; m++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				if i == j {
					ident[m*n*n+j*n+i] = 1
				}
				data[m*n*n+j*n+i] = float64(m*100 + j*n + i)
			}
		}
	}
	req := serve.DoRequest{
		Op: "gemm", DType: "f64", Alpha: 1, Beta: 0, Count: count,
		A:          &serve.WireOperand{Rows: n, Cols: n, Data: ident},
		B:          &serve.WireOperand{Rows: n, Cols: n, Data: data},
		C:          &serve.WireOperand{Rows: n, Cols: n, Data: make([]float64, count*n*n)},
		DeadlineMs: 5000,
	}
	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	body, _ := json.Marshal(req)
	hreq, _ := http.NewRequest(http.MethodPost, base+"/v1/do", bytes.NewReader(body))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	hreq.Header.Set("X-IATF-Tenant", "smoke")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-IATF-Trace"); got != traceID {
		return fmt.Errorf("X-IATF-Trace = %q, want %q", got, traceID)
	}
	if resp.StatusCode != http.StatusOK {
		var eb map[string]any
		json.NewDecoder(resp.Body).Decode(&eb)
		return fmt.Errorf("/v1/do: %s: %v", resp.Status, eb)
	}
	var out serve.DoResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return err
	}
	if len(out.Result) != len(data) {
		return fmt.Errorf("result length %d, want %d", len(out.Result), len(data))
	}
	for i := range data {
		if math.Abs(out.Result[i]-data[i]) > 1e-12 {
			return fmt.Errorf("result[%d] = %g, want %g", i, out.Result[i], data[i])
		}
	}

	sr, err := http.Get(base + "/stats")
	if err != nil {
		return err
	}
	defer sr.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
		return err
	}
	if st.Done != 1 {
		return fmt.Errorf("stats done = %d, want 1", st.Done)
	}

	tr, err := http.Get(base + "/tenants")
	if err != nil {
		return err
	}
	defer tr.Body.Close()
	var ts []iatf.TenantStats
	if err := json.NewDecoder(tr.Body).Decode(&ts); err != nil {
		return fmt.Errorf("/tenants: %w", err)
	}
	for _, t := range ts {
		if t.Name == "smoke" && t.Requests == 1 {
			return nil
		}
	}
	return fmt.Errorf("/tenants: no series for tenant %q with 1 request (got %v)", "smoke", ts)
}
