// Command iatf-info inspects the install-time artifacts and run-time
// decisions of the framework: the Table 1 kernel registry, the Table 2
// machine models, the Figure 4 tiling comparison, CMAR analysis (Eq. 2/3)
// and concrete execution-plan decisions for a given problem.
package main

import (
	"flag"
	"fmt"
	"log"

	"iatf"
	"iatf/internal/core"
	"iatf/internal/ktmpl"
	"iatf/internal/machine"
	"iatf/internal/matrix"
	"iatf/internal/vec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("iatf-info: ")
	var (
		kernelsF  = flag.Bool("kernels", false, "print the Table 1 kernel registry")
		machinesF = flag.Bool("machines", false, "print the Table 2 machine models")
		cmarF     = flag.Bool("cmar", false, "print the CMAR kernel-size analysis (Eq. 2/3)")
		tilingF   = flag.Int("tiling", 0, "print the Figure 4 tiling comparison for an N×N SGEMM")
		planM     = flag.Int("m", 0, "with -plan*: matrix rows")
		planN     = flag.Int("n", 0, "with -plan*: matrix cols")
		planK     = flag.Int("k", 0, "with -plan-gemm: reduction length")
		planType  = flag.String("type", "s", "with -plan*: data type")
		planGEMM  = flag.Bool("plan-gemm", false, "print the execution-plan decisions for a GEMM problem")
		planTRSM  = flag.Bool("plan-trsm", false, "print the execution-plan decisions for a TRSM problem")
		planTRMM  = flag.Bool("plan-trmm", false, "print the execution-plan decisions for a TRMM problem (extension)")
		tuneF     = flag.Bool("tune", false, "empirically autotune the GEMM tiling for -m/-n/-k on the cycle model")
		engineF   = flag.Bool("engine", false, "run a demo workload through the default engine and print its counters")
		count     = flag.Int("count", 16384, "batch size for plan queries")
	)
	flag.Parse()

	any := false
	if *kernelsF {
		printKernels()
		any = true
	}
	if *machinesF {
		printMachines()
		any = true
	}
	if *cmarF {
		printCMAR()
		any = true
	}
	if *tilingF > 0 {
		printTiling(*tilingF)
		any = true
	}
	if *planGEMM || *planTRSM || *planTRMM || *tuneF {
		dt, err := vec.ParseDType(*planType)
		if err != nil {
			log.Fatal(err)
		}
		if *planGEMM {
			printGEMMPlan(dt, *planM, *planN, *planK, *count)
		}
		if *planTRSM {
			printTRSMPlan(dt, *planM, *planN, *count)
		}
		if *planTRMM {
			printTRMMPlan(dt, *planM, *planN, *count)
		}
		if *tuneF {
			printTune(dt, *planM, *planN, *planK, *count)
		}
		any = true
	}
	if *engineF {
		printEngine()
		any = true
	}
	if !any {
		printKernels()
		fmt.Println()
		printMachines()
	}
}

// printEngine drives the default engine with a small mixed workload —
// repeated GEMM and TRSM on a handful of shapes — and prints the engine
// counters, demonstrating plan-cache hits, pooled-buffer reuse and the
// persistent worker pool.
func printEngine() {
	const count = 16384
	gemm := func(m, n, k int) {
		a := iatf.NewBatch[float32](count, m, k)
		b := iatf.NewBatch[float32](count, k, n)
		c := iatf.NewBatch[float32](count, m, n)
		for mi := 0; mi < count; mi++ {
			for i := 0; i < m; i++ {
				for j := 0; j < k && j < m; j++ {
					a.Set(mi, i, j, float32(i+j+1))
				}
			}
		}
		ca, cb, cc := iatf.Pack(a), iatf.Pack(b), iatf.Pack(c)
		// Auto workers (GOMAXPROCS), then an explicit 2-worker pass so the
		// persistent pool shows up in the counters even on one CPU.
		for _, w := range []int{0, 0, 0, 0, 0, 0, 0, 2} {
			if err := iatf.GEMMParallel(w, iatf.NoTrans, iatf.NoTrans, 1, ca, cb, 1, cc); err != nil {
				log.Fatal(err)
			}
		}
	}
	trsm := func(m, n int) {
		a := iatf.NewBatch[float32](count, m, m)
		b := iatf.NewBatch[float32](count, m, n)
		for mi := 0; mi < count; mi++ {
			for i := 0; i < m; i++ {
				a.Set(mi, i, i, 2)
			}
		}
		ca, cb := iatf.Pack(a), iatf.Pack(b)
		for _, w := range []int{0, 0, 0, 0, 0, 0, 0, 2} {
			if err := iatf.TRSMParallel(w, iatf.Left, iatf.Lower, iatf.NoTrans, iatf.NonUnit, 1, ca, cb); err != nil {
				log.Fatal(err)
			}
		}
	}
	gemm(8, 8, 8)
	gemm(8, 8, 8) // same shape: pure cache hits
	gemm(6, 5, 7)
	trsm(8, 4)
	trsm(8, 4)

	s := iatf.DefaultEngine().Stats()
	fmt.Println("# Default engine after a mixed GEMM/TRSM demo workload")
	fmt.Println("plan cache:")
	fmt.Printf("  hits %d, misses %d, evictions %d, entries %d\n",
		s.PlanHits, s.PlanMisses, s.PlanEvictions, s.PlanEntries)
	fmt.Println("packing-buffer pools:")
	fmt.Printf("  gets %d (reused %d, allocated %d, oversize %d), puts %d\n",
		s.Buffers.Gets, s.Buffers.Reuses, s.Buffers.Allocs, s.Buffers.Oversize, s.Buffers.Puts)
	fmt.Println("persistent worker pool:")
	fmt.Printf("  workers %d, parallel calls %d, inline calls %d, chunks %d, pool shares %d, overflow runs %d\n",
		s.Sched.Workers, s.Sched.ParallelCalls, s.Sched.InlineCalls, s.Sched.Chunks, s.Sched.PoolShares, s.Sched.OverflowRuns)
}

func printKernels() {
	fmt.Println("# Generated kernel registry (paper Table 1)")
	fmt.Printf("%-8s %-12s %-10s %s\n", "type", "routine", "main", "all sizes")
	for _, dt := range vec.DTypes {
		main := ktmpl.MainGEMMKernel(dt)
		fmt.Printf("%-8s %-12s %dx%-8d", dt.String()+"gemm", "GEMM", main.MC, main.NC)
		for _, s := range ktmpl.GEMMKernelSizes(dt) {
			fmt.Printf(" %dx%d", s.MC, s.NC)
		}
		fmt.Println()
	}
	for _, dt := range vec.DTypes {
		main := ktmpl.MainTRSMKernel(dt)
		fmt.Printf("%-8s %-12s %dx%-8d", dt.String()+"trsm", "TRSM-rect", main.MC, main.NC)
		for _, s := range ktmpl.TRSMRectSizes(dt) {
			fmt.Printf(" %dx%d", s.MC, s.NC)
		}
		fmt.Printf("   (triangular: M ≤ %d register-resident)\n", ktmpl.MaxTriM(dt))
	}
}

func printMachines() {
	fmt.Println("# Machine models (paper Table 2)")
	for _, p := range []machine.Profile{machine.Kunpeng920(), machine.XeonGold6240(), machine.Graviton2()} {
		fmt.Printf("%s:\n", p.Name)
		fmt.Printf("  freq %.1f GHz, SIMD %d bits\n", p.FreqGHz, p.VectorBits)
		fmt.Printf("  peak FP64 %.1f GFLOPS, FP32 %.1f GFLOPS\n",
			p.PeakGFLOPS(vec.D), p.PeakGFLOPS(vec.S))
		fmt.Printf("  issue: %d mem, %d FP32 / %d FP64 ports", p.MemPorts, p.FPPorts32, p.FPPorts64)
		if p.GroupWidth > 0 {
			fmt.Printf(" (coupled: mem+FP ≤ %d per cycle)", p.GroupWidth)
		}
		fmt.Println()
		for _, l := range p.Cache.Levels {
			fmt.Printf("  %s: %d KB, %d-way, %d B lines, %d cycles\n",
				l.Name, l.SizeBytes>>10, l.Ways, l.LineBytes, l.HitCycles)
		}
		fmt.Printf("  memory: %d cycles, %d prefetch streams\n", p.Cache.MemoryCycles, p.Cache.StreamSlots)
	}
}

func printCMAR() {
	fmt.Println("# CMAR kernel-size analysis (Eq. 2/3, 32 vector registers)")
	for _, dt := range []vec.DType{vec.D, vec.Z} {
		kind := "real"
		if dt.IsComplex() {
			kind = "complex"
		}
		fmt.Printf("%s (%s): mc x nc -> registers, CMAR\n", dt, kind)
		for mcv := 1; mcv <= 6; mcv++ {
			for ncv := 1; ncv <= 6; ncv++ {
				regs := ktmpl.RegistersNeeded(dt, mcv, ncv)
				if regs > 32 {
					continue
				}
				fmt.Printf("  %dx%d -> %2d regs, CMAR %.3f\n", mcv, ncv, regs, ktmpl.CMAR(dt, mcv, ncv))
			}
		}
		mc, nc := ktmpl.OptimalKernel(dt)
		fmt.Printf("  optimal: %dx%d\n", mc, nc)
	}
}

func printTiling(n int) {
	fmt.Printf("# Tiling of a %dx%d SGEMM C matrix (paper Figure 4)\n", n, n)
	// Traditional: M-vectorized 12-row and 4-row strips, 8/4-wide tiles.
	fmt.Println("traditional (per-matrix, M-vectorized):")
	tradM := ktmpl.SplitDim(n, []int{12, 8, 4, 2, 1})
	tradN := ktmpl.SplitDim(n, []int{8, 4, 2, 1})
	fmt.Printf("  row strips %v × col tiles %v = %d kernels, %d full-SIMD\n",
		tradM, tradN, len(tradM)*len(tradN), countFull(tradM, 4)*len(tradN))
	fmt.Println("compact (SIMD-friendly layout):")
	cm := ktmpl.SplitDim(n, ktmpl.MTiles(vec.S))
	cn := ktmpl.SplitDim(n, ktmpl.NTiles(vec.S))
	fmt.Printf("  row tiles %v × col tiles %v = %d kernels, all full-SIMD\n",
		cm, cn, len(cm)*len(cn))
}

func countFull(tiles []int, vl int) int {
	c := 0
	for _, t := range tiles {
		if t%vl == 0 {
			c++
		}
	}
	return c
}

func printGEMMPlan(dt vec.DType, m, n, k, count int) {
	if m < 1 || n < 1 || k < 1 {
		log.Fatal("-plan-gemm requires -m, -n, -k")
	}
	p := core.GEMMProblem{DT: dt, M: m, N: n, K: k, Alpha: 1, Beta: 1, Count: count}
	pl, err := core.NewGEMMPlan(p, core.DefaultTuning())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# Execution plan: %sgemm %dx%dx%d, batch %d\n", dt, m, n, k, count)
	fmt.Printf("  M tiles: %v\n", pl.MTiles)
	fmt.Printf("  N tiles: %v\n", pl.NTiles)
	fmt.Printf("  pack A: %v (no-packing fast path when false)\n", pl.PackA)
	fmt.Printf("  super-batch: %d interleave groups (%d matrices)\n",
		pl.GroupsPerBatch, pl.GroupsPerBatch*dt.Pack())
	fmt.Printf("  kernel instructions per group: %d\n", pl.Instructions())
}

func printTRMMPlan(dt vec.DType, m, n, count int) {
	if m < 1 || n < 1 {
		log.Fatal("-plan-trmm requires -m, -n")
	}
	p := core.TRMMProblem{DT: dt, M: m, N: n, Side: matrix.Left, Uplo: matrix.Lower,
		TransA: matrix.NoTrans, Diag: matrix.NonUnit, Alpha: 1, Count: count}
	pl, err := core.NewTRMMPlan(p, core.DefaultTuning())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# Execution plan: %strmm LNLN %dx%d, batch %d (extension)\n", dt, m, n, count)
	fmt.Printf("  panels: %v\n", pl.Panels)
	fmt.Printf("  column tiles: %v\n", pl.ColTiles)
	fmt.Printf("  pack B: %v, reverse: %v, transpose: %v\n", pl.PackB, pl.ReverseB, pl.TransposeB)
	fmt.Printf("  super-batch: %d interleave groups\n", pl.GroupsPerBatch)
}

func printTune(dt vec.DType, m, n, k, count int) {
	if m < 1 || n < 1 || k < 1 {
		log.Fatal("-tune requires -m, -n, -k")
	}
	p := core.GEMMProblem{DT: dt, M: m, N: n, K: k, Alpha: 1, Beta: 1, Count: count}
	pl, err := core.AutotuneGEMM(p, core.DefaultTuning())
	if err != nil {
		log.Fatal(err)
	}
	def, err := core.NewGEMMPlan(p, core.DefaultTuning())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# Autotuned plan: %sgemm %dx%dx%d\n", dt, m, n, k)
	fmt.Printf("  analytic tiling:  M %v × N %v\n", def.MTiles, def.NTiles)
	fmt.Printf("  empirical tiling: M %v × N %v\n", pl.MTiles, pl.NTiles)
}

func printTRSMPlan(dt vec.DType, m, n, count int) {
	if m < 1 || n < 1 {
		log.Fatal("-plan-trsm requires -m, -n")
	}
	p := core.TRSMProblem{DT: dt, M: m, N: n, Side: matrix.Left, Uplo: matrix.Lower,
		TransA: matrix.NoTrans, Diag: matrix.NonUnit, Alpha: 1, Count: count}
	pl, err := core.NewTRSMPlan(p, core.DefaultTuning())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# Execution plan: %strsm LNLN %dx%d, batch %d\n", dt, m, n, count)
	fmt.Printf("  panels: %v (register-resident triangle ≤ %d)\n", pl.Panels, ktmpl.MaxTriM(dt))
	fmt.Printf("  column tiles: %v\n", pl.ColTiles)
	fmt.Printf("  pack B: %v, reverse: %v, transpose: %v\n", pl.PackB, pl.ReverseB, pl.TransposeB)
	fmt.Printf("  super-batch: %d interleave groups\n", pl.GroupsPerBatch)
}
