// Command iatf-info inspects the install-time artifacts and run-time
// decisions of the framework: the Table 1 kernel registry, the Table 2
// machine models, the Figure 4 tiling comparison, CMAR analysis (Eq. 2/3)
// and concrete execution-plan decisions for a given problem.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"time"

	"iatf"
	"iatf/internal/core"
	"iatf/internal/ktmpl"
	"iatf/internal/machine"
	"iatf/internal/matrix"
	"iatf/internal/vec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("iatf-info: ")
	var (
		kernelsF  = flag.Bool("kernels", false, "print the Table 1 kernel registry")
		machinesF = flag.Bool("machines", false, "print the Table 2 machine models")
		cmarF     = flag.Bool("cmar", false, "print the CMAR kernel-size analysis (Eq. 2/3)")
		tilingF   = flag.Int("tiling", 0, "print the Figure 4 tiling comparison for an N×N SGEMM")
		planM     = flag.Int("m", 0, "with -plan*: matrix rows")
		planN     = flag.Int("n", 0, "with -plan*: matrix cols")
		planK     = flag.Int("k", 0, "with -plan-gemm: reduction length")
		planType  = flag.String("type", "s", "with -plan*: data type")
		planGEMM  = flag.Bool("plan-gemm", false, "print the execution-plan decisions for a GEMM problem")
		planTRSM  = flag.Bool("plan-trsm", false, "print the execution-plan decisions for a TRSM problem")
		planTRMM  = flag.Bool("plan-trmm", false, "print the execution-plan decisions for a TRMM problem (extension)")
		tuneF     = flag.Bool("tune", false, "empirically autotune the GEMM tiling for -m/-n/-k on the cycle model")
		engineF   = flag.Bool("engine", false, "run a demo workload through the default engine and print its counters")
		jsonF     = flag.Bool("json", false, "with -engine: emit the snapshot as JSON instead of a table")
		metricsF  = flag.Bool("metrics", false, "run the demo workload and emit the engine state as OpenMetrics text")
		tenantsF  = flag.Bool("tenants", false, "run a tenant-tagged demo workload and print the per-tenant SLO table")
		shardsF   = flag.Int("shards", 0, "with -engine/-metrics: route the demo through a sharded EngineSet of N shards")
		count     = flag.Int("count", 16384, "batch size for plan queries")
	)
	flag.Parse()

	any := false
	if *kernelsF {
		printKernels()
		any = true
	}
	if *machinesF {
		printMachines()
		any = true
	}
	if *cmarF {
		printCMAR()
		any = true
	}
	if *tilingF > 0 {
		printTiling(*tilingF)
		any = true
	}
	if *planGEMM || *planTRSM || *planTRMM || *tuneF {
		dt, err := vec.ParseDType(*planType)
		if err != nil {
			log.Fatal(err)
		}
		if *planGEMM {
			printGEMMPlan(dt, *planM, *planN, *planK, *count)
		}
		if *planTRSM {
			printTRSMPlan(dt, *planM, *planN, *count)
		}
		if *planTRMM {
			printTRMMPlan(dt, *planM, *planN, *count)
		}
		if *tuneF {
			printTune(dt, *planM, *planN, *planK, *count)
		}
		any = true
	}
	if *engineF {
		if *shardsF > 0 {
			printEngineSet(*shardsF, *jsonF)
		} else {
			printEngine(*jsonF)
		}
		any = true
	}
	if *metricsF {
		if *shardsF > 0 {
			set := iatf.NewEngineSet(*shardsF)
			demoSetWorkload(set)
			if err := set.WriteMetrics(os.Stdout); err != nil {
				log.Fatal(err)
			}
		} else {
			demoWorkload()
			if err := iatf.DefaultEngine().WriteMetrics(os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
		any = true
	}
	if *tenantsF {
		printTenants(*jsonF)
		any = true
	}
	if !any {
		printKernels()
		fmt.Println()
		printMachines()
	}
}

// demoWorkload drives the default engine with a mixed workload covering
// all four engine ops — repeated GEMM, TRSM, TRMM and SYRK on a handful
// of shapes — plus a batched factorization and an async coalescing
// burst, so every counter surface has traffic. Shared by -engine and
// -metrics.
func demoWorkload() {
	const count = 16384
	gemm := func(m, n, k int, prepack bool) {
		a := iatf.NewBatch[float32](count, m, k)
		b := iatf.NewBatch[float32](count, k, n)
		c := iatf.NewBatch[float32](count, m, n)
		for mi := 0; mi < count; mi++ {
			for i := 0; i < m; i++ {
				for j := 0; j < k && j < m; j++ {
					a.Set(mi, i, j, float32(i+j+1))
				}
			}
		}
		ca, cb, cc := iatf.Pack(a), iatf.Pack(b), iatf.Pack(c)
		if prepack {
			// A and B are reused across every call: opt into packed-operand
			// reuse so the pack cache shows up in the counters.
			ca.Prepack()
			cb.Prepack()
		}
		// Auto workers (GOMAXPROCS), then an explicit 2-worker pass so the
		// persistent pool shows up in the counters even on one CPU.
		for _, w := range []int{0, 0, 0, 0, 0, 0, 0, 2} {
			if err := iatf.GEMMParallel(w, iatf.NoTrans, iatf.NoTrans, 1, ca, cb, 1, cc); err != nil {
				log.Fatal(err)
			}
		}
	}
	diagBatch := func(m int) *iatf.Compact[float32] {
		a := iatf.NewBatch[float32](count, m, m)
		for mi := 0; mi < count; mi++ {
			for i := 0; i < m; i++ {
				a.Set(mi, i, i, 2)
			}
		}
		return iatf.Pack(a)
	}
	tri := func(solve bool, m, n int) {
		ca := diagBatch(m)
		ca.Prepack() // the triangle is reused across calls
		cb := iatf.Pack(iatf.NewBatch[float32](count, m, n))
		for _, w := range []int{0, 0, 0, 0, 0, 0, 0, 2} {
			var err error
			if solve {
				err = iatf.TRSMParallel(w, iatf.Left, iatf.Lower, iatf.NoTrans, iatf.NonUnit, 1, ca, cb)
			} else {
				err = iatf.TRMMParallel(w, iatf.Left, iatf.Lower, iatf.NoTrans, iatf.NonUnit, 1, ca, cb)
			}
			if err != nil {
				log.Fatal(err)
			}
		}
	}
	syrk := func(n, k int) {
		ca := iatf.Pack(iatf.NewBatch[float32](count, n, k))
		cc := iatf.Pack(iatf.NewBatch[float32](count, n, n))
		for _, w := range []int{0, 0, 0, 2} {
			if err := iatf.SYRKParallel(w, iatf.Lower, iatf.NoTrans, 1, ca, 1, cc); err != nil {
				log.Fatal(err)
			}
		}
	}
	// Batched factorization through the factor dispatch path: LU shows up
	// in the plan cache and the per-shape series like the level-3 ops.
	factor := func(n int) {
		a := iatf.NewBatch[float32](count, n, n)
		for mi := 0; mi < count; mi++ {
			for i := 0; i < n; i++ {
				for j := 0; j <= i; j++ {
					a.Set(mi, i, j, 1)
				}
				a.Set(mi, i, i, float32(n+1))
			}
		}
		ca := iatf.Pack(a)
		for i := 0; i < 4; i++ {
			if _, err := iatf.LU(ca); err != nil {
				log.Fatal(err)
			}
		}
	}
	// Async burst: 8 concurrent submitters of one problem through the
	// request API's queue, so the coalescing counters move under load.
	burst := func(m int) {
		const submitters = 8
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(submitters))
		var wg sync.WaitGroup
		for g := 0; g < submitters; g++ {
			a := iatf.Pack(iatf.NewBatch[float32](count/8, m, m))
			b := iatf.Pack(iatf.NewBatch[float32](count/8, m, m))
			c := iatf.Pack(iatf.NewBatch[float32](count/8, m, m))
			wg.Add(1)
			go func() {
				defer wg.Done()
				req := iatf.Request[float32]{Op: iatf.OpGEMM, Alpha: 1, Beta: 1, A: a, B: b, C: c}
				for i := 0; i < 16; i++ {
					if err := iatf.Do(context.Background(), req, iatf.WithAsync()); err != nil {
						log.Fatal(err)
					}
				}
			}()
		}
		wg.Wait()
	}
	// Chained dispatch: a fusable TRMM→TRSM pair over one B, iterated so
	// the chain-plan cache and the scatter/pack elision counters move.
	chain := func(m, n int) {
		ca := diagBatch(m)
		cb := iatf.Pack(iatf.NewBatch[float32](count, m, n))
		for i := 0; i < 4; i++ {
			err := iatf.Chain(context.Background(), []iatf.Stage[float32]{
				iatf.TRMMStage(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1, ca, cb),
				iatf.TRSMStage(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1, ca, cb),
			})
			if err != nil {
				log.Fatal(err)
			}
		}
	}
	gemm(8, 8, 8, true)
	gemm(8, 8, 8, true)  // same shape: pure plan- and pack-cache hits
	gemm(6, 5, 7, false) // pack-per-call: exercises the streaming pipeline
	tri(true, 8, 4)
	tri(true, 8, 4)
	tri(false, 8, 4)
	syrk(8, 6)
	factor(8)
	chain(8, 4)
	burst(8)
}

// printEngine runs the demo workload and prints the engine counters plus
// the per-shape observability table. The snapshot is also published as
// the expvar "iatf.engine", so a process embedding the library can
// expose the same view over /debug/vars.
func printEngine(asJSON bool) {
	expvar.Publish("iatf.engine", expvar.Func(func() any {
		return iatf.DefaultEngine().Stats()
	}))
	demoWorkload()

	s := iatf.DefaultEngine().Stats()
	if asJSON {
		// The JSON form leads with the build identity so exported dumps
		// are self-describing.
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			BuildInfo iatf.BuildInfo   `json:"build_info"`
			Stats     iatf.EngineStats `json:"stats"`
		}{iatf.Build(), s}); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Println("# Default engine after a mixed GEMM/TRSM/TRMM/SYRK demo workload")
	fmt.Println("plan cache:")
	fmt.Printf("  hits %d, misses %d (shared %d), evictions %d, entries %d, hydrated %d\n",
		s.PlanHits, s.PlanMisses, s.PlanShared, s.PlanEvictions, s.PlanEntries, s.PlanHydrated)
	fmt.Println("persistent autotune store:")
	path := s.Store.Path
	if path == "" {
		path = "(not attached)"
	}
	fmt.Printf("  path %s\n  fingerprint %s\n", path, s.Store.Fingerprint)
	fmt.Printf("  loads %d (mismatches %d, errors %d), saves %d (errors %d), kernels imported %d\n",
		s.Store.Loads, s.Store.LoadMismatches, s.Store.LoadErrors,
		s.Store.Saves, s.Store.SaveErrors, s.Store.KernelsImported)
	fmt.Println("packing-buffer pools:")
	fmt.Printf("  gets %d (reused %d, allocated %d, oversize %d), puts %d\n",
		s.Buffers.Gets, s.Buffers.Reuses, s.Buffers.Allocs, s.Buffers.Oversize, s.Buffers.Puts)
	for _, cl := range s.Buffers.Classes {
		fmt.Printf("    class %7d elems: gets %d, reused %d, puts %d\n",
			cl.SizeElems, cl.Gets, cl.Reuses, cl.Puts)
	}
	fmt.Println("persistent worker pool:")
	fmt.Printf("  workers %d (resizes %d), parallel calls %d, inline calls %d, chunks %d, pool shares %d, overflow runs %d\n",
		s.Sched.Workers, s.Sched.Resizes, s.Sched.ParallelCalls, s.Sched.InlineCalls,
		s.Sched.Chunks, s.Sched.PoolShares, s.Sched.OverflowRuns)
	fmt.Println("packed-operand cache:")
	fmt.Printf("  hits %d, builds %d, evictions %d, stale %d, entries %d\n",
		s.PackCache.Hits, s.PackCache.Builds, s.PackCache.Evictions,
		s.PackCache.Stale, s.PackCache.Entries)
	fmt.Println("pack/compute pipeline:")
	fmt.Printf("  chunks %d, stalls %d, sync fallbacks %d, packers %d\n",
		s.Pipeline.Chunks, s.Pipeline.Stalls, s.Pipeline.Fallbacks, s.Pipeline.Packers)
	fmt.Println("chain dispatch:")
	fmt.Printf("  runs %d, plan hits %d, misses %d, entries %d; scatter elided %d, pack elided %d\n",
		s.Chain.Runs, s.Chain.PlanHits, s.Chain.PlanMisses, s.Chain.PlanEntries,
		s.Chain.ScatterElided, s.Chain.PackElided)
	fmt.Println("async submission queue:")
	fmt.Printf("  submitted %d (inline %d), dispatches %d, coalesced %d (max fused %d)\n",
		s.Queue.Submitted, s.Queue.Inline, s.Queue.Dispatches, s.Queue.Coalesced, s.Queue.MaxFused)
	fmt.Printf("  cancelled %d, rejected %d, depth %d (high-water %d) / capacity %d\n",
		s.Queue.Cancelled, s.Queue.Rejected, s.Queue.Depth, s.Queue.DepthHighWater, s.Queue.Capacity)
	order := "fifo"
	if s.Queue.EDF {
		order = "edf"
	}
	fmt.Printf("  order %s, batch window %v, wait p99 %v\n",
		order, s.Queue.Window, s.Queue.Wait.P99)

	fmt.Println("per-shape series (by call count):")
	fmt.Printf("  %-5s %-2s %-4s %-11s %6s %9s %9s %7s %7s %7s %5s %-6s %4s %3s\n",
		"op", "dt", "mode", "shape", "calls", "p50", "p99",
		"avgGF", "bestGF", "ceilGF", "hit%", "pack", "gpb", "wrk")
	for _, sh := range s.Shapes {
		shape := fmt.Sprintf("%dx%d", sh.M, sh.N)
		if sh.K > 0 {
			shape += fmt.Sprintf("x%d", sh.K)
		}
		fmt.Printf("  %-5s %-2s %-4s %-11s %6d %9v %9v %7.1f %7.1f %7.1f %5.1f %-6s %4d %3d\n",
			sh.Op, sh.DType, sh.Mode, shape, sh.Calls, sh.P50, sh.P99,
			sh.AvgGFLOPS, sh.BestGFLOPS, sh.CeilingGFLOPS, 100*sh.HitRatio(),
			sh.Pack, sh.GroupsPerBatch, sh.Workers)
	}
}

// printTenants drives a tenant-tagged workload through a private engine
// and prints the resulting per-tenant SLO table: "rt" carries a generous
// objective (every request hits), "slow" an intentionally impossible one
// (every request misses, so the burn-rate gauge is visibly non-zero),
// and "batch" no objective at all (tracked, never burned).
func printTenants(asJSON bool) {
	eng := iatf.NewEngine()
	eng.SetTenants(map[string]iatf.TenantObjective{
		"rt":    {Class: 5, Objective: 10 * time.Second, Target: 0.99},
		"slow":  {Class: 0, Objective: time.Nanosecond, Target: 0.999},
		"batch": {Class: -1},
	})

	const count = 4096
	ctx := context.Background()
	run := func(tenant string, m, n int, calls int) {
		a := iatf.Pack(iatf.NewBatch[float32](count, m, n))
		b := iatf.Pack(iatf.NewBatch[float32](count, n, m))
		c := iatf.Pack(iatf.NewBatch[float32](count, m, m))
		req := iatf.Request[float32]{Op: iatf.OpGEMM, Alpha: 1, Beta: 1, A: a, B: b, C: c}
		for i := 0; i < calls; i++ {
			trace := fmt.Sprintf("%016x%016x", len(tenant), i)
			if err := iatf.Do(ctx, req, iatf.WithEngine(eng),
				iatf.WithTenant(tenant), iatf.WithTrace(trace)); err != nil {
				log.Fatal(err)
			}
		}
	}
	run("rt", 8, 8, 16)
	run("slow", 8, 8, 8)
	run("batch", 6, 5, 32)

	ts := eng.TenantStats()
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			BuildInfo iatf.BuildInfo     `json:"build_info"`
			Tenants   []iatf.TenantStats `json:"tenants"`
		}{iatf.Build(), ts}); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Println("# Per-tenant SLO series after a tagged demo workload")
	fmt.Printf("%-8s %5s %12s %7s %8s %6s %5s %6s %6s %10s %10s %6s\n",
		"tenant", "class", "objective", "target", "requests", "errors", "sheds", "hits", "misses", "p50", "p99", "burn")
	for _, t := range ts {
		obj := "-"
		if t.Objective > 0 {
			obj = t.Objective.String()
		}
		fmt.Printf("%-8s %5d %12s %7.3f %8d %6d %5d %6d %6d %10v %10v %6.2f\n",
			t.Name, t.Class, obj, t.Target, t.Requests, t.Errors, t.Sheds,
			t.DeadlineHits, t.DeadlineMisses,
			time.Duration(t.Latency.P50), time.Duration(t.Latency.P99), t.BurnRate)
	}
}

func printKernels() {
	fmt.Println("# Generated kernel registry (paper Table 1)")
	fmt.Printf("%-8s %-12s %-10s %s\n", "type", "routine", "main", "all sizes")
	for _, dt := range vec.DTypes {
		main := ktmpl.MainGEMMKernel(dt)
		fmt.Printf("%-8s %-12s %dx%-8d", dt.String()+"gemm", "GEMM", main.MC, main.NC)
		for _, s := range ktmpl.GEMMKernelSizes(dt) {
			fmt.Printf(" %dx%d", s.MC, s.NC)
		}
		fmt.Println()
	}
	for _, dt := range vec.DTypes {
		main := ktmpl.MainTRSMKernel(dt)
		fmt.Printf("%-8s %-12s %dx%-8d", dt.String()+"trsm", "TRSM-rect", main.MC, main.NC)
		for _, s := range ktmpl.TRSMRectSizes(dt) {
			fmt.Printf(" %dx%d", s.MC, s.NC)
		}
		fmt.Printf("   (triangular: M ≤ %d register-resident)\n", ktmpl.MaxTriM(dt))
	}
}

func printMachines() {
	fmt.Println("# Machine models (paper Table 2)")
	for _, p := range []machine.Profile{machine.Kunpeng920(), machine.XeonGold6240(), machine.Graviton2()} {
		fmt.Printf("%s:\n", p.Name)
		fmt.Printf("  freq %.1f GHz, SIMD %d bits\n", p.FreqGHz, p.VectorBits)
		fmt.Printf("  peak FP64 %.1f GFLOPS, FP32 %.1f GFLOPS\n",
			p.PeakGFLOPS(vec.D), p.PeakGFLOPS(vec.S))
		fmt.Printf("  issue: %d mem, %d FP32 / %d FP64 ports", p.MemPorts, p.FPPorts32, p.FPPorts64)
		if p.GroupWidth > 0 {
			fmt.Printf(" (coupled: mem+FP ≤ %d per cycle)", p.GroupWidth)
		}
		fmt.Println()
		for _, l := range p.Cache.Levels {
			fmt.Printf("  %s: %d KB, %d-way, %d B lines, %d cycles\n",
				l.Name, l.SizeBytes>>10, l.Ways, l.LineBytes, l.HitCycles)
		}
		fmt.Printf("  memory: %d cycles, %d prefetch streams\n", p.Cache.MemoryCycles, p.Cache.StreamSlots)
	}
}

func printCMAR() {
	fmt.Println("# CMAR kernel-size analysis (Eq. 2/3, 32 vector registers)")
	for _, dt := range []vec.DType{vec.D, vec.Z} {
		kind := "real"
		if dt.IsComplex() {
			kind = "complex"
		}
		fmt.Printf("%s (%s): mc x nc -> registers, CMAR\n", dt, kind)
		for mcv := 1; mcv <= 6; mcv++ {
			for ncv := 1; ncv <= 6; ncv++ {
				regs := ktmpl.RegistersNeeded(dt, mcv, ncv)
				if regs > 32 {
					continue
				}
				fmt.Printf("  %dx%d -> %2d regs, CMAR %.3f\n", mcv, ncv, regs, ktmpl.CMAR(dt, mcv, ncv))
			}
		}
		mc, nc := ktmpl.OptimalKernel(dt)
		fmt.Printf("  optimal: %dx%d\n", mc, nc)
	}
}

func printTiling(n int) {
	fmt.Printf("# Tiling of a %dx%d SGEMM C matrix (paper Figure 4)\n", n, n)
	// Traditional: M-vectorized 12-row and 4-row strips, 8/4-wide tiles.
	fmt.Println("traditional (per-matrix, M-vectorized):")
	tradM := ktmpl.SplitDim(n, []int{12, 8, 4, 2, 1})
	tradN := ktmpl.SplitDim(n, []int{8, 4, 2, 1})
	fmt.Printf("  row strips %v × col tiles %v = %d kernels, %d full-SIMD\n",
		tradM, tradN, len(tradM)*len(tradN), countFull(tradM, 4)*len(tradN))
	fmt.Println("compact (SIMD-friendly layout):")
	cm := ktmpl.SplitDim(n, ktmpl.MTiles(vec.S))
	cn := ktmpl.SplitDim(n, ktmpl.NTiles(vec.S))
	fmt.Printf("  row tiles %v × col tiles %v = %d kernels, all full-SIMD\n",
		cm, cn, len(cm)*len(cn))
}

func countFull(tiles []int, vl int) int {
	c := 0
	for _, t := range tiles {
		if t%vl == 0 {
			c++
		}
	}
	return c
}

func printGEMMPlan(dt vec.DType, m, n, k, count int) {
	if m < 1 || n < 1 || k < 1 {
		log.Fatal("-plan-gemm requires -m, -n, -k")
	}
	p := core.GEMMProblem{DT: dt, M: m, N: n, K: k, Alpha: 1, Beta: 1, Count: count}
	pl, err := core.NewGEMMPlan(p, core.DefaultTuning())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# Execution plan: %sgemm %dx%dx%d, batch %d\n", dt, m, n, k, count)
	fmt.Printf("  M tiles: %v\n", pl.MTiles)
	fmt.Printf("  N tiles: %v\n", pl.NTiles)
	fmt.Printf("  pack A: %v (no-packing fast path when false)\n", pl.PackA)
	fmt.Printf("  super-batch: %d interleave groups (%d matrices)\n",
		pl.GroupsPerBatch, pl.GroupsPerBatch*dt.Pack())
	fmt.Printf("  kernel instructions per group: %d\n", pl.Instructions())
}

func printTRMMPlan(dt vec.DType, m, n, count int) {
	if m < 1 || n < 1 {
		log.Fatal("-plan-trmm requires -m, -n")
	}
	p := core.TRMMProblem{DT: dt, M: m, N: n, Side: matrix.Left, Uplo: matrix.Lower,
		TransA: matrix.NoTrans, Diag: matrix.NonUnit, Alpha: 1, Count: count}
	pl, err := core.NewTRMMPlan(p, core.DefaultTuning())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# Execution plan: %strmm LNLN %dx%d, batch %d (extension)\n", dt, m, n, count)
	fmt.Printf("  panels: %v\n", pl.Panels)
	fmt.Printf("  column tiles: %v\n", pl.ColTiles)
	fmt.Printf("  pack B: %v, reverse: %v, transpose: %v\n", pl.PackB, pl.ReverseB, pl.TransposeB)
	fmt.Printf("  super-batch: %d interleave groups\n", pl.GroupsPerBatch)
}

func printTune(dt vec.DType, m, n, k, count int) {
	if m < 1 || n < 1 || k < 1 {
		log.Fatal("-tune requires -m, -n, -k")
	}
	p := core.GEMMProblem{DT: dt, M: m, N: n, K: k, Alpha: 1, Beta: 1, Count: count}
	pl, err := core.AutotuneGEMM(p, core.DefaultTuning())
	if err != nil {
		log.Fatal(err)
	}
	def, err := core.NewGEMMPlan(p, core.DefaultTuning())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# Autotuned plan: %sgemm %dx%dx%d\n", dt, m, n, k)
	fmt.Printf("  analytic tiling:  M %v × N %v\n", def.MTiles, def.NTiles)
	fmt.Printf("  empirical tiling: M %v × N %v\n", pl.MTiles, pl.NTiles)
}

func printTRSMPlan(dt vec.DType, m, n, count int) {
	if m < 1 || n < 1 {
		log.Fatal("-plan-trsm requires -m, -n")
	}
	p := core.TRSMProblem{DT: dt, M: m, N: n, Side: matrix.Left, Uplo: matrix.Lower,
		TransA: matrix.NoTrans, Diag: matrix.NonUnit, Alpha: 1, Count: count}
	pl, err := core.NewTRSMPlan(p, core.DefaultTuning())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# Execution plan: %strsm LNLN %dx%d, batch %d\n", dt, m, n, count)
	fmt.Printf("  panels: %v (register-resident triangle ≤ %d)\n", pl.Panels, ktmpl.MaxTriM(dt))
	fmt.Printf("  column tiles: %v\n", pl.ColTiles)
	fmt.Printf("  pack B: %v, reverse: %v, transpose: %v\n", pl.PackB, pl.ReverseB, pl.TransposeB)
	fmt.Printf("  super-batch: %d interleave groups\n", pl.GroupsPerBatch)
}

// demoSetWorkload drives a sharded EngineSet with mixed traffic: several
// distinct problem identities (each consistently routed to its home
// shard) run synchronously and through an async burst, so routing,
// stealing and per-shard counters all carry traffic.
func demoSetWorkload(set *iatf.EngineSet) {
	const count = 4096
	ctx := context.Background()
	shapes := [][3]int{{8, 8, 8}, {6, 5, 7}, {12, 12, 4}, {4, 16, 8}, {16, 4, 4}, {8, 12, 12}}
	for _, sh := range shapes {
		m, n, k := sh[0], sh[1], sh[2]
		a := iatf.Pack(iatf.NewBatch[float32](count, m, k))
		b := iatf.Pack(iatf.NewBatch[float32](count, k, n))
		c := iatf.Pack(iatf.NewBatch[float32](count, m, n))
		req := iatf.Request[float32]{Op: iatf.OpGEMM, Alpha: 1, Beta: 1, A: a, B: b, C: c}
		for i := 0; i < 8; i++ {
			if err := iatf.Do(ctx, req, iatf.WithEngineSet(set), iatf.WithWorkers(0)); err != nil {
				log.Fatal(err)
			}
		}
	}
	// Async burst: concurrent submitters across identities, so queues
	// deepen unevenly and the steal/fallback paths see traffic.
	var wg sync.WaitGroup
	for g := 0; g < 2*set.Shards(); g++ {
		m := 4 + 2*(g%len(shapes))
		a := iatf.Pack(iatf.NewBatch[float32](count/8, m, m))
		b := iatf.Pack(iatf.NewBatch[float32](count/8, m, m))
		c := iatf.Pack(iatf.NewBatch[float32](count/8, m, m))
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := iatf.Request[float32]{Op: iatf.OpGEMM, Alpha: 1, Beta: 1, A: a, B: b, C: c}
			for i := 0; i < 16; i++ {
				if err := iatf.Do(ctx, req, iatf.WithEngineSet(set), iatf.WithAsync()); err != nil {
					log.Fatal(err)
				}
			}
		}()
	}
	wg.Wait()
}

// printEngineSet runs the sharded demo and prints a per-shard table plus
// the cross-shard aggregate. The JSON form nests the full SetStats: a
// shards array and an aggregate block, led by the build identity.
func printEngineSet(n int, asJSON bool) {
	set := iatf.NewEngineSet(n)
	demoSetWorkload(set)
	st := set.Stats()

	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			BuildInfo iatf.BuildInfo      `json:"build_info"`
			Set       iatf.EngineSetStats `json:"set"`
		}{iatf.Build(), st}); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("# EngineSet of %d shards after a mixed sharded demo workload\n", len(st.Shards))
	fmt.Printf("routing: fallbacks %d (rejected %d)\n", st.Fallbacks, st.FallbackRejects)
	fmt.Printf("%-5s %8s %8s %8s %8s %8s %8s %8s %8s %6s\n",
		"shard", "routed", "planHit", "planMiss", "submit", "inline", "dispatch", "stolenB", "stolenR", "shapes")
	for _, sh := range st.Shards {
		fmt.Printf("%-5d %8d %8d %8d %8d %8d %8d %8d %8d %6d\n",
			sh.Shard, sh.Routed, sh.PlanHits, sh.PlanMisses,
			sh.Queue.Submitted, sh.Queue.Inline, sh.Queue.Dispatches,
			sh.Queue.StolenBatches, sh.Queue.StolenReqs, len(sh.Shapes))
	}
	ag := st.Aggregate
	fmt.Println("aggregate:")
	fmt.Printf("  plan cache: hits %d, misses %d (shared %d), entries %d\n",
		ag.PlanHits, ag.PlanMisses, ag.PlanShared, ag.PlanEntries)
	fmt.Printf("  queue: submitted %d (inline %d), dispatches %d, coalesced %d, stolen %d/%d, rejected %d\n",
		ag.Queue.Submitted, ag.Queue.Inline, ag.Queue.Dispatches, ag.Queue.Coalesced,
		ag.Queue.StolenBatches, ag.Queue.StolenReqs, ag.Queue.Rejected)
	fmt.Printf("  buffers: gets %d (reused %d), sched parallel calls %d\n",
		ag.Buffers.Gets, ag.Buffers.Reuses, ag.Sched.ParallelCalls)
	fmt.Println("  merged per-shape series (by call count):")
	for _, sh := range ag.Shapes {
		shape := fmt.Sprintf("%dx%d", sh.M, sh.N)
		if sh.K > 0 {
			shape += fmt.Sprintf("x%d", sh.K)
		}
		fmt.Printf("    %-5s %-2s %-4s %-11s calls %6d  p50 %9v  avgGF %7.1f\n",
			sh.Op, sh.DType, sh.Mode, shape, sh.Calls, sh.P50, sh.AvgGFLOPS)
	}
}
