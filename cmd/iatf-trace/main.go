// Command iatf-trace renders the cycle-by-cycle issue timeline of a
// generated kernel on the Kunpeng 920 pipeline model — making the effect
// of the kernel optimizer (Figure 5) directly visible: the raw kernel
// shows serialized load bursts and stalled multiply blocks, the optimized
// kernel shows one memory and one calculation instruction retiring per
// cycle.
//
// With -engine it instead traces one dispatch through the run-time
// engine: the trace hook receives the assembled command queue — packing
// kernels chosen by the Pack Selector, the tile/kernel sequence, the
// Batch Counter's super-batch size and the worker split — and prints it,
// followed by the request's lifecycle span (where the dispatch's time
// went, phase by phase). -chrome FILE additionally writes the span as
// Chrome trace-event JSON for chrome://tracing.
//
// Usage:
//
//	iatf-trace -type d -mc 4 -nc 4 -k 4            # optimized kernel
//	iatf-trace -type d -mc 4 -nc 4 -k 4 -raw       # unoptimized
//	iatf-trace -cycles 40                          # limit rows
//	iatf-trace -engine -m 8 -n 8 -k 8 -count 4096  # engine command queue
//	iatf-trace -engine -chrome trace.json          # + trace-event dump
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"iatf"
	"iatf/internal/asm"
	"iatf/internal/kopt"
	"iatf/internal/ktmpl"
	"iatf/internal/machine"
	"iatf/internal/vec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("iatf-trace: ")
	var (
		dtype   = flag.String("type", "d", "data type: s, d, c, z")
		mc      = flag.Int("mc", 4, "kernel rows")
		nc      = flag.Int("nc", 4, "kernel columns")
		k       = flag.Int("k", 4, "reduction length")
		raw     = flag.Bool("raw", false, "trace the unoptimized kernel")
		cycles  = flag.Int("cycles", 64, "maximum cycles to print")
		engineF = flag.Bool("engine", false, "trace one engine dispatch instead of a kernel pipeline")
		mF      = flag.Int("m", 8, "with -engine: GEMM rows")
		nF      = flag.Int("n", 8, "with -engine: GEMM cols")
		countF  = flag.Int("count", 4096, "with -engine: batch size")
		chrome  = flag.String("chrome", "", "with -engine: also write the span as Chrome trace-event JSON to this file")
	)
	flag.Parse()

	dt, err := vec.ParseDType(*dtype)
	if err != nil {
		log.Fatal(err)
	}
	if *engineF {
		traceEngine(*mF, *nF, *k, *countF, *chrome)
		return
	}
	spec := ktmpl.GEMMSpec{DT: dt, MC: *mc, NC: *nc, K: *k, StrideC: *mc}
	prog, err := ktmpl.GenGEMM(spec)
	if err != nil {
		log.Fatal(err)
	}
	if !*raw {
		prog = kopt.Optimize(prog, kopt.Options{
			Prof: machine.Kunpeng920(), ElemBytes: dt.ElemBytes(), Prefetch: true})
	}

	// Execute on the VM with a synthetic arena, tracing issues.
	bl := dt.Pack()
	if dt.IsComplex() {
		bl *= 2
	}
	lenA := *k * *mc * bl
	lenB := *k * *nc * bl
	lenC := *nc * *mc * bl
	sim := machine.NewSim(machine.Kunpeng920(), dt.ElemBytes())

	type slotEv struct {
		text string
		mem  bool
	}
	events := map[int64][]slotEv{}
	syn := asm.SyntaxFor(dt.ElemBytes())
	sim.OnIssue = func(cycle int64, in asm.Instr, lat int) {
		txt := syn.Format(in)
		if i := strings.Index(txt, "//"); i >= 0 {
			txt = strings.TrimSpace(txt[:i])
		}
		events[cycle] = append(events[cycle], slotEv{text: txt, mem: in.Op.IsMem()})
	}

	// Warm-up pass: run once untraced so the trace shows the steady
	// state (L1-resident packed operands, as in the paper's measurement).
	warm := true
	run := func(mem64 bool) error {
		trace := func(in asm.Instr, addr int) {
			if !warm {
				sim.Exec(in, addr)
			} else {
				// Warm the cache without recording issue events.
				saved := sim.OnIssue
				sim.OnIssue = nil
				sim.Exec(in, addr)
				sim.OnIssue = saved
			}
		}
		if mem64 {
			vm := &asm.VM[float64]{Mem: make([]float64, lenA+lenB+lenC+2)}
			for i := range vm.Mem {
				vm.Mem[i] = 0.5
			}
			vm.P[asm.PB] = lenA
			vm.P[asm.PC] = lenA + lenB
			vm.P[asm.PAlpha] = lenA + lenB + lenC
			vm.Trace = trace
			return vm.Run(prog)
		}
		vm := &asm.VM[float32]{Mem: make([]float32, lenA+lenB+lenC+2)}
		for i := range vm.Mem {
			vm.Mem[i] = 0.5
		}
		vm.P[asm.PB] = lenA
		vm.P[asm.PC] = lenA + lenB
		vm.P[asm.PAlpha] = lenA + lenB + lenC
		vm.Trace = trace
		return vm.Run(prog)
	}
	if err := run(dt.ElemBytes() == 8); err != nil {
		log.Fatal(err)
	}
	warm = false
	sim.Reset() // keep the cache, clear the pipeline and statistics
	if err := run(dt.ElemBytes() == 8); err != nil {
		log.Fatal(err)
	}

	kind := "optimized"
	if *raw {
		kind = "raw"
	}
	fmt.Printf("# %sgemm %dx%d K=%d (%s): %d instructions in %d cycles\n",
		dt, *mc, *nc, *k, kind, sim.Instrs, sim.Cycles())
	fmt.Printf("%6s  %-42s %-42s %s\n", "cycle", "memory pipe", "fp pipe(s)", "other")
	last := sim.Cycles()
	if int64(*cycles) < last {
		last = int64(*cycles)
	}
	for c := int64(0); c <= last; c++ {
		evs := events[c]
		if len(evs) == 0 {
			continue
		}
		var mem, fp, other []string
		for _, e := range evs {
			switch {
			case e.mem:
				mem = append(mem, e.text)
			case strings.HasPrefix(e.text, "f") || strings.HasPrefix(e.text, "movi") || strings.HasPrefix(e.text, "mov "):
				fp = append(fp, e.text)
			default:
				other = append(other, e.text)
			}
		}
		fmt.Printf("%6d  %-42s %-42s %s\n", c,
			strings.Join(mem, "; "), strings.Join(fp, "; "), strings.Join(other, "; "))
	}
	if last < sim.Cycles() {
		fmt.Printf("... (%d more cycles)\n", sim.Cycles()-last)
	}
}

// traceEngine installs a trace hook on a private engine, forces the next
// call to be traced, runs one batched GEMM and pretty-prints the command
// queue the dispatcher assembled for it, then the request's lifecycle
// span. chromeFile != "" additionally writes the span as Chrome
// trace-event JSON.
func traceEngine(m, n, k, count int, chromeFile string) {
	a := iatf.NewBatch[float32](count, m, k)
	b := iatf.NewBatch[float32](count, k, n)
	c := iatf.NewBatch[float32](count, m, n)
	for mi := 0; mi < count; mi++ {
		for i := 0; i < m; i++ {
			for j := 0; j < k; j++ {
				a.Set(mi, i, j, float32(i+j+1))
			}
		}
	}
	ca, cb, cc := iatf.Pack(a), iatf.Pack(b), iatf.Pack(c)

	eng := iatf.NewEngine()
	var ev iatf.TraceEvent
	got := false
	eng.SetTrace(func(e iatf.TraceEvent) { ev, got = e, true }, 0)
	eng.ForceTrace(1)
	var sp iatf.Span
	err := iatf.Do(context.Background(), iatf.Request[float32]{
		Op: iatf.OpGEMM, Alpha: 1, Beta: 1, A: ca, B: cb, C: cc,
	}, iatf.WithEngine(eng), iatf.WithSpanSink(func(s *iatf.Span) { sp = *s }))
	if err != nil {
		log.Fatal(err)
	}
	if !got {
		log.Fatal("trace hook did not fire")
	}

	fmt.Printf("# Engine dispatch: %s %s %s, %dx%dx%d, batch %d (plan %s)\n",
		ev.DType, ev.Op, ev.Mode, ev.M, ev.N, ev.K, ev.Count, ev.CacheOutcome)
	fmt.Printf("# worker split: %d interleave groups in %d super-batch chunks of %d, %d workers\n",
		ev.Groups, ev.Chunks, ev.GroupsPerBatch, ev.Workers)
	fmt.Printf("%4s  %-10s %-14s %s\n", "#", "stage", "kernel", "detail")
	for i, cmd := range ev.Queue {
		fmt.Printf("%4d  %-10s %-14s %s\n", i, cmd.Stage, cmd.Kernel, cmd.Detail)
	}

	fmt.Printf("\n# Lifecycle span %d: end-to-end %v (prepack %d hit / %d built)\n",
		sp.ID, sp.Duration(), sp.PrepackHits, sp.PrepackBuilds)
	for p := iatf.PhaseQueueWait; p < iatf.SpanPhase(len(sp.Phases)); p++ {
		if d := sp.Phases[p]; d > 0 {
			fmt.Printf("%12s  %v\n", p, d)
		}
	}
	if unattr := sp.Duration() - sp.PhaseTotal(); unattr > 0 {
		fmt.Printf("%12s  %v\n", "(dispatch)", unattr)
	}

	if chromeFile != "" {
		f, err := os.Create(chromeFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := iatf.WriteChromeTrace(f, []iatf.Span{sp}); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# wrote %s — open in chrome://tracing or ui.perfetto.dev\n", chromeFile)
	}
}
