// iatf-tune pre-bakes the persistent autotune store for a machine
// profile: it resolves every requested problem identity through the
// engine's planning path — install-time kernel generation + list
// scheduling, run-time plan construction — without executing any FLOPs,
// and writes the resulting kernel/plan set to the profile's store file.
// A later process constructed with iatf.WithPlanStore on the same
// profile then starts warm: no first-call tuning latency for any baked
// shape.
//
//	iatf-tune                                 # default sweep, default store dir
//	iatf-tune -profile graviton2 -counts 1,64
//	iatf-tune -shapes gemm:f64:64x64x64,trsm:f32:32x16 -store /tmp/iatf
//
// Concurrent tuners are safe: each merges with the existing store file
// before an atomic rename, so parallel invocations converge on the
// union of their shape sets.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"iatf"
	"iatf/internal/core"
	"iatf/internal/engine"
	"iatf/internal/store"
	"iatf/internal/vec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("iatf-tune: ")

	storeDir := flag.String("store", "", "store directory (default: $IATF_STORE_DIR or the user cache dir)")
	profile := flag.String("profile", "kunpeng920",
		"machine profile to tune for: "+strings.Join(iatf.ProfileNames(), ", "))
	shapes := flag.String("shapes", "",
		"comma-separated shape list op:dtype:MxNxK[:flags] (default: built-in sweep);\n"+
			"ops gemm, trsm, trmm, syrk, cholesky, lu, lupiv; dtypes f32, f64;\n"+
			"flags tA tB (transpose), R (right side), U (upper), u (unit diagonal)")
	counts := flag.String("counts", "1,64", "comma-separated batch counts to bake (bucketed to powers of two)")
	dry := flag.Bool("dry", false, "resolve and report, but do not write the store")
	flag.Parse()

	prof, ok := iatf.ProfileNamed(*profile)
	if !ok {
		log.Fatalf("unknown profile %q (have %s)", *profile, strings.Join(iatf.ProfileNames(), ", "))
	}
	countList, err := parseCounts(*counts)
	if err != nil {
		log.Fatal(err)
	}
	var descs []store.PlanDesc
	if *shapes != "" {
		if descs, err = parseShapes(*shapes, countList); err != nil {
			log.Fatal(err)
		}
	} else {
		descs = defaultSweep(countList)
	}

	tun := core.Tuning{Prof: prof}
	eng := engine.New(tun)
	dir := *storeDir
	if dir == "" {
		dir = store.DefaultDir()
	}
	path := store.PathFor(dir, eng.Fingerprint())

	start := time.Now()
	baked, failed := 0, 0
	for _, d := range descs {
		if err := eng.Warm(d); err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "iatf-tune: skip %+v: %v\n", d, err)
			continue
		}
		baked++
	}
	f := eng.Export("iatf-tune")
	if prev, err := store.Load(path, eng.Fingerprint()); err == nil {
		f.Merge(prev)
	} else if !errors.Is(err, fs.ErrNotExist) {
		// Stale or corrupt files are replaced, not merged; anything else
		// (e.g. permissions) will surface again at write time.
		if errors.Is(err, store.ErrMismatch) || errors.Is(err, store.ErrCorrupt) {
			fmt.Fprintf(os.Stderr, "iatf-tune: replacing existing store: %v\n", err)
		}
	}

	fmt.Printf("profile      %s\n", prof.Name)
	fmt.Printf("fingerprint  %s\n", eng.Fingerprint())
	fmt.Printf("store        %s\n", path)
	fmt.Printf("baked        %d plans (%d requested, %d rejected) in %v\n",
		baked, len(descs), failed, time.Since(start).Round(time.Millisecond))
	fmt.Printf("writing      %d plans, %d kernel schedules\n", len(f.Plans), len(f.Kernels))
	if *dry {
		fmt.Println("dry run: store not written")
		return
	}
	if err := f.WriteAtomic(path); err != nil {
		log.Fatalf("write store: %v", err)
	}
}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no counts in %q", s)
	}
	return out, nil
}

var opKinds = map[string]engine.OpKind{
	"gemm": engine.OpGEMM, "trsm": engine.OpTRSM, "trmm": engine.OpTRMM,
	"syrk": engine.OpSYRK, "cholesky": engine.OpCholesky, "lu": engine.OpLU,
	"lupiv": engine.OpLUPiv,
}

var dtypes = map[string]vec.DType{"f32": vec.S, "f64": vec.D, "s": vec.S, "d": vec.D}

// parseShapes decodes the -shapes syntax into one descriptor per
// (shape, count): op:dtype:MxNxK[:flags].
func parseShapes(s string, countList []int) ([]store.PlanDesc, error) {
	var out []store.PlanDesc
	for _, spec := range strings.Split(s, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		parts := strings.Split(spec, ":")
		if len(parts) < 3 {
			return nil, fmt.Errorf("bad shape %q: want op:dtype:MxNxK[:flags]", spec)
		}
		kind, ok := opKinds[parts[0]]
		if !ok {
			return nil, fmt.Errorf("bad shape %q: unknown op %q", spec, parts[0])
		}
		dt, ok := dtypes[parts[1]]
		if !ok {
			return nil, fmt.Errorf("bad shape %q: unknown dtype %q", spec, parts[1])
		}
		var dims []int
		for _, ds := range strings.Split(parts[2], "x") {
			n, err := strconv.Atoi(ds)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad shape %q: dimension %q", spec, ds)
			}
			dims = append(dims, n)
		}
		d := store.PlanDesc{Kind: int(kind), DType: int(dt)}
		switch kind {
		case engine.OpGEMM:
			if len(dims) != 3 {
				return nil, fmt.Errorf("bad shape %q: gemm wants MxNxK", spec)
			}
			d.M, d.N, d.K = dims[0], dims[1], dims[2]
		case engine.OpTRSM, engine.OpTRMM:
			if len(dims) != 2 {
				return nil, fmt.Errorf("bad shape %q: %s wants MxN", spec, parts[0])
			}
			d.M, d.N = dims[0], dims[1]
		case engine.OpSYRK:
			if len(dims) != 2 {
				return nil, fmt.Errorf("bad shape %q: syrk wants NxK", spec)
			}
			d.M, d.K = dims[0], dims[1]
		default: // factorizations: one square dimension
			if len(dims) != 1 {
				return nil, fmt.Errorf("bad shape %q: %s wants N", spec, parts[0])
			}
			d.M = dims[0]
		}
		for _, fl := range parts[3:] {
			switch fl {
			case "tA":
				d.TransA = 1
			case "tB":
				d.TransB = 1
			case "R":
				d.Side = 1
			case "U":
				d.Uplo = 1
			case "u":
				d.Diag = 1
			default:
				return nil, fmt.Errorf("bad shape %q: unknown flag %q", spec, fl)
			}
		}
		for _, c := range countList {
			dc := d
			dc.CountBucket = bucket(c)
			out = append(out, dc)
		}
	}
	return out, nil
}

// defaultSweep covers the compact-BLAS working set: small square-ish
// problems across both dtypes, every op family, default mode flags.
func defaultSweep(countList []int) []store.PlanDesc {
	dims := []int{4, 8, 16, 32, 64}
	var out []store.PlanDesc
	for _, dt := range []vec.DType{vec.S, vec.D} {
		for _, n := range dims {
			for _, c := range countList {
				cb := bucket(c)
				out = append(out,
					store.PlanDesc{Kind: int(engine.OpGEMM), DType: int(dt), M: n, N: n, K: n, CountBucket: cb},
					store.PlanDesc{Kind: int(engine.OpTRSM), DType: int(dt), M: n, N: n, CountBucket: cb},
					store.PlanDesc{Kind: int(engine.OpTRMM), DType: int(dt), M: n, N: n, CountBucket: cb},
					store.PlanDesc{Kind: int(engine.OpSYRK), DType: int(dt), M: n, K: n, CountBucket: cb},
					store.PlanDesc{Kind: int(engine.OpCholesky), DType: int(dt), M: n, CountBucket: cb},
					store.PlanDesc{Kind: int(engine.OpLU), DType: int(dt), M: n, CountBucket: cb},
				)
			}
		}
	}
	return out
}

// bucket mirrors the engine's batch-count bucketing (next power of two).
func bucket(c int) int {
	b := 1
	for b < c {
		b <<= 1
	}
	return b
}
