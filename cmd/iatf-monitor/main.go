// Command iatf-monitor is the live monitoring surface of the serving
// engine: a small admin HTTP server exposing
//
//	/metrics      OpenMetrics text for Prometheus-style scraping
//	/debug/vars   expvar JSON (engine stats published as "iatf.engine")
//	/debug/pprof  the standard pprof profiles; with -labels, CPU samples
//	              carry {op, dtype, shape} labels
//	/trace?n=K    the K most recent request spans as Chrome trace-event
//	              JSON (load in chrome://tracing or ui.perfetto.dev)
//	/spans?n=K    the same spans as plain JSON
//
// With -demo the process drives a continuous mixed workload through the
// default engine so every surface has live traffic; without it, the
// server monitors whatever workload the embedding process runs (this
// command is then mostly a reference for wiring the handlers into your
// own server).
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"iatf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("iatf-monitor: ")
	var (
		addr      = flag.String("addr", "localhost:9090", "listen address")
		demo      = flag.Bool("demo", false, "drive a continuous demo workload so every surface has traffic")
		ring      = flag.Int("ring", 512, "spans retained for /trace and /spans")
		labels    = flag.Bool("labels", false, "apply pprof labels (op/dtype/shape) around compute")
		once      = flag.Bool("once", false, "with -demo: run one workload round, print the surfaces, exit (smoke test)")
		shards    = flag.Int("shards", 0, "serve a sharded EngineSet of N shards instead of the default engine")
		planStore = flag.String("plan-store", "", "sharded mode: warm-start from a persistent autotune store directory (\"default\" = the default dir)")
	)
	flag.Parse()

	var setOpts []iatf.EngineOption
	if *planStore != "" {
		dir := *planStore
		if dir == "default" {
			dir = ""
		}
		setOpts = append(setOpts, iatf.WithPlanStore(dir))
	}

	eng := iatf.DefaultEngine()
	spans := iatf.NewSpanRing(*ring)
	var set *iatf.EngineSet
	metrics := eng.MetricsHandler()
	if *shards > 0 {
		// Sharded mode: every surface covers the whole set — spans from
		// every shard land in one ring, /metrics carries per-shard +
		// aggregate families, expvar publishes the SetStats.
		set = iatf.NewEngineSet(*shards, setOpts...)
		for i := 0; i < set.Shards(); i++ {
			set.Shard(i).SetSpanSink(spans.Add)
		}
		set.SetProfileLabels(*labels)
		metrics = set.MetricsHandler()
		expvar.Publish("iatf.engineset", expvar.Func(func() any { return set.Stats() }))
	} else {
		eng.SetSpanSink(spans.Add)
		eng.SetProfileLabels(*labels)
		expvar.Publish("iatf.engine", expvar.Func(func() any { return eng.Stats() }))
	}

	if *demo {
		if *once {
			demoRound(set)
			smoke(eng, set, spans)
			return
		}
		go func() {
			for {
				demoRound(set)
				time.Sleep(200 * time.Millisecond)
			}
		}()
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "iatf-monitor — %+v\n\n", iatf.Build())
		fmt.Fprintln(w, "/metrics      OpenMetrics scrape")
		fmt.Fprintln(w, "/debug/vars   expvar JSON")
		fmt.Fprintln(w, "/debug/pprof  pprof profiles")
		fmt.Fprintln(w, "/trace?n=K    Chrome trace-event JSON of recent spans")
		fmt.Fprintln(w, "/spans?n=K    recent spans as JSON")
	})
	mux.Handle("/metrics", metrics)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := iatf.WriteChromeTrace(w, spans.Spans(queryN(r))); err != nil {
			log.Printf("/trace: %v", err)
		}
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(spans.Spans(queryN(r))); err != nil {
			log.Printf("/spans: %v", err)
		}
	})

	log.Printf("listening on http://%s (demo=%v, labels=%v, ring=%d, shards=%d)", *addr, *demo, *labels, *ring, *shards)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// queryN parses the ?n= span-count parameter; 0 means everything
// retained.
func queryN(r *http.Request) int {
	n, err := strconv.Atoi(r.URL.Query().Get("n"))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// demoRound runs one burst of mixed traffic: a few sync GEMMs with
// prepacked operands, a triangular solve, and a concurrent async burst
// that exercises queueing and coalescing. A non-nil set routes the
// burst through the sharded path instead of the default engine.
func demoRound(set *iatf.EngineSet) {
	var opts []iatf.Option
	if set != nil {
		opts = []iatf.Option{iatf.WithEngineSet(set)}
	}
	const count = 4096
	a := iatf.Pack(iatf.NewBatch[float32](count, 8, 8))
	b := iatf.Pack(iatf.NewBatch[float32](count, 8, 8))
	c := iatf.Pack(iatf.NewBatch[float32](count, 8, 8))
	a.Prepack()
	b.Prepack()
	greq := iatf.Request[float32]{Op: iatf.OpGEMM, Alpha: 1, Beta: 1, A: a, B: b, C: c}
	for i := 0; i < 4; i++ {
		if err := iatf.Do(context.Background(), greq, append(opts, iatf.WithWorkers(0))...); err != nil {
			log.Fatal(err)
		}
	}

	tri := iatf.NewBatch[float32](count, 8, 8)
	for mi := 0; mi < count; mi++ {
		for i := 0; i < 8; i++ {
			tri.Set(mi, i, i, 2)
		}
	}
	ct, cb := iatf.Pack(tri), iatf.Pack(iatf.NewBatch[float32](count, 8, 4))
	treq := iatf.Request[float32]{Op: iatf.OpTRSM, Side: iatf.Left, Uplo: iatf.Lower,
		TransA: iatf.NoTrans, Diag: iatf.NonUnit, Alpha: 1, A: ct, B: cb}
	if err := iatf.Do(context.Background(), treq, opts...); err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		ga := iatf.Pack(iatf.NewBatch[float32](count/4, 6, 6))
		gb := iatf.Pack(iatf.NewBatch[float32](count/4, 6, 6))
		gc := iatf.Pack(iatf.NewBatch[float32](count/4, 6, 6))
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := iatf.Request[float32]{Op: iatf.OpGEMM, Alpha: 1, Beta: 1, A: ga, B: gb, C: gc}
			for i := 0; i < 8; i++ {
				if err := iatf.Do(context.Background(), req, iatf.WithAsync()); err != nil {
					log.Fatal(err)
				}
			}
		}()
	}
	wg.Wait()
}

// smoke prints each surface once to stdout — the -demo -once form used
// as a no-network sanity check.
func smoke(eng *iatf.Engine, set *iatf.EngineSet, spans *iatf.SpanRing) {
	fmt.Printf("# build: %+v\n", iatf.Build())
	var err error
	if set != nil {
		err = set.WriteMetrics(log.Writer())
	} else {
		err = eng.WriteMetrics(log.Writer())
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# spans captured: %d (ring %d)\n", spans.Total(), len(spans.Spans(0)))
	if err := iatf.WriteChromeTrace(log.Writer(), spans.Spans(8)); err != nil {
		log.Fatal(err)
	}
}
