// Command iatf-monitor is the live monitoring surface of the serving
// engine: a small admin HTTP server exposing
//
//	/metrics      OpenMetrics text for Prometheus-style scraping
//	/debug/vars   expvar JSON (engine stats published as "iatf.engine")
//	/debug/pprof  the standard pprof profiles; with -labels, CPU samples
//	              carry {op, dtype, shape} labels
//	/trace?n=K    the K most recent request spans as Chrome trace-event
//	              JSON (load in chrome://tracing or ui.perfetto.dev)
//	/trace?id=X   only the spans belonging to trace/span id X
//	/spans?n=K    the same spans as plain JSON (?id= works here too)
//	/tenants      per-tenant SLO series as JSON (requests, sheds,
//	              deadline hits/misses, latency quantiles, burn rate)
//
// With -demo the process drives a continuous mixed workload through the
// default engine so every surface has live traffic — the demo requests
// are tagged with rt/batch tenants and carry trace ids, so /tenants and
// /trace?id= have data out of the box; without it, the server monitors
// whatever workload the embedding process runs (this command is then
// mostly a reference for wiring the handlers into your own server).
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"iatf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("iatf-monitor: ")
	var (
		addr      = flag.String("addr", "localhost:9090", "listen address")
		demo      = flag.Bool("demo", false, "drive a continuous demo workload so every surface has traffic")
		ring      = flag.Int("ring", 512, "spans retained for /trace and /spans")
		labels    = flag.Bool("labels", false, "apply pprof labels (op/dtype/shape) around compute")
		once      = flag.Bool("once", false, "with -demo: run one workload round, print the surfaces, exit (smoke test)")
		shards    = flag.Int("shards", 0, "serve a sharded EngineSet of N shards instead of the default engine")
		planStore = flag.String("plan-store", "", "sharded mode: warm-start from a persistent autotune store directory (\"default\" = the default dir)")
		tenants   = tenantFlag{}
	)
	flag.Var(tenants, "tenant", "tenant SLO spec name=class[:objective_ms[:target]] (repeatable; default rt/batch demo objectives)")
	flag.Parse()

	// Accounting is always on: with no -tenant flags the demo classes
	// get sensible default objectives so the burn-rate surfaces are live.
	if len(tenants) == 0 {
		tenants["rt"] = iatf.TenantObjective{Class: 5, Objective: 50 * time.Millisecond, Target: 0.99}
		tenants["batch"] = iatf.TenantObjective{Class: -1}
	}

	var setOpts []iatf.EngineOption
	if *planStore != "" {
		dir := *planStore
		if dir == "default" {
			dir = ""
		}
		setOpts = append(setOpts, iatf.WithPlanStore(dir))
	}

	eng := iatf.DefaultEngine()
	spans := iatf.NewSpanRing(*ring)
	var set *iatf.EngineSet
	metrics := eng.MetricsHandler()
	tenantStats := eng.TenantStats
	if *shards > 0 {
		// Sharded mode: every surface covers the whole set — spans from
		// every shard land in one ring, /metrics carries per-shard +
		// aggregate families, expvar publishes the SetStats.
		set = iatf.NewEngineSet(*shards, setOpts...)
		for i := 0; i < set.Shards(); i++ {
			set.Shard(i).SetSpanSink(spans.Add)
		}
		set.SetProfileLabels(*labels)
		set.SetTenants(tenants)
		metrics = set.MetricsHandler()
		tenantStats = set.TenantStats
		expvar.Publish("iatf.engineset", expvar.Func(func() any { return set.Stats() }))
	} else {
		eng.SetSpanSink(spans.Add)
		eng.SetProfileLabels(*labels)
		eng.SetTenants(tenants)
		expvar.Publish("iatf.engine", expvar.Func(func() any { return eng.Stats() }))
	}

	if *demo {
		if *once {
			demoRound(set)
			smoke(eng, set, spans, tenantStats)
			return
		}
		go func() {
			for {
				demoRound(set)
				time.Sleep(200 * time.Millisecond)
			}
		}()
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "iatf-monitor — %+v\n\n", iatf.Build())
		fmt.Fprintln(w, "/metrics      OpenMetrics scrape")
		fmt.Fprintln(w, "/debug/vars   expvar JSON")
		fmt.Fprintln(w, "/debug/pprof  pprof profiles")
		fmt.Fprintln(w, "/trace?n=K    Chrome trace-event JSON of recent spans (?id=X filters one trace)")
		fmt.Fprintln(w, "/spans?n=K    recent spans as JSON (?id=X filters one trace)")
		fmt.Fprintln(w, "/tenants      per-tenant SLO series as JSON")
	})
	mux.Handle("/metrics", metrics)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := iatf.WriteChromeTrace(w, querySpans(spans, r)); err != nil {
			log.Printf("/trace: %v", err)
		}
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(querySpans(spans, r)); err != nil {
			log.Printf("/spans: %v", err)
		}
	})
	mux.HandleFunc("/tenants", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		ts := tenantStats()
		if ts == nil {
			ts = []iatf.TenantStats{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(ts); err != nil {
			log.Printf("/tenants: %v", err)
		}
	})

	log.Printf("listening on http://%s (demo=%v, labels=%v, ring=%d, shards=%d)", *addr, *demo, *labels, *ring, *shards)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// queryN parses the ?n= span-count parameter; 0 means everything
// retained.
func queryN(r *http.Request) int {
	n, err := strconv.Atoi(r.URL.Query().Get("n"))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// querySpans resolves a /trace or /spans request: ?id=X returns every
// retained span belonging to that trace (request trace id, span id, or
// fused-parent id), else the most recent ?n= spans.
func querySpans(spans *iatf.SpanRing, r *http.Request) []iatf.Span {
	if id := r.URL.Query().Get("id"); id != "" {
		return spans.Trace(id)
	}
	return spans.Spans(queryN(r))
}

// tenantFlag accumulates repeated -tenant name=class[:objective_ms[:target]]
// specs (iatf.ParseTenantSpec syntax).
type tenantFlag map[string]iatf.TenantObjective

func (t tenantFlag) String() string {
	parts := make([]string, 0, len(t))
	for k, v := range t {
		parts = append(parts, fmt.Sprintf("%s=%d:%g:%g", k, v.Class,
			float64(v.Objective)/float64(time.Millisecond), v.Target))
	}
	return strings.Join(parts, ",")
}

func (t tenantFlag) Set(s string) error {
	name, obj, err := iatf.ParseTenantSpec(s)
	if err != nil {
		return err
	}
	t[name] = obj
	return nil
}

// demoTrace counts demo requests so each carries a distinct, greppable
// 32-hex trace id ("00000000000000000000000000000001", ...) — /trace?id=
// then resolves any of them.
var demoTrace atomic.Uint64

func nextTrace() string {
	return fmt.Sprintf("%032x", demoTrace.Add(1))
}

// demoRound runs one burst of mixed traffic: a few sync GEMMs with
// prepacked operands and a triangular solve as tenant "rt" (with a
// 50 ms deadline so deadline accounting is live), and a concurrent
// async burst as tenant "batch" that exercises queueing and coalescing.
// Every request carries a trace id. A non-nil set routes the burst
// through the sharded path instead of the default engine.
func demoRound(set *iatf.EngineSet) {
	var opts []iatf.Option
	if set != nil {
		opts = []iatf.Option{iatf.WithEngineSet(set)}
	}
	rt := func() []iatf.Option {
		return append(append([]iatf.Option{}, opts...),
			iatf.WithTenant("rt"), iatf.WithTrace(nextTrace()))
	}
	rtCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	const count = 4096
	a := iatf.Pack(iatf.NewBatch[float32](count, 8, 8))
	b := iatf.Pack(iatf.NewBatch[float32](count, 8, 8))
	c := iatf.Pack(iatf.NewBatch[float32](count, 8, 8))
	a.Prepack()
	b.Prepack()
	greq := iatf.Request[float32]{Op: iatf.OpGEMM, Alpha: 1, Beta: 1, A: a, B: b, C: c}
	for i := 0; i < 4; i++ {
		if err := iatf.Do(rtCtx, greq, append(rt(), iatf.WithWorkers(0))...); err != nil {
			log.Fatal(err)
		}
	}

	tri := iatf.NewBatch[float32](count, 8, 8)
	for mi := 0; mi < count; mi++ {
		for i := 0; i < 8; i++ {
			tri.Set(mi, i, i, 2)
		}
	}
	ct, cb := iatf.Pack(tri), iatf.Pack(iatf.NewBatch[float32](count, 8, 4))
	treq := iatf.Request[float32]{Op: iatf.OpTRSM, Side: iatf.Left, Uplo: iatf.Lower,
		TransA: iatf.NoTrans, Diag: iatf.NonUnit, Alpha: 1, A: ct, B: cb}
	if err := iatf.Do(rtCtx, treq, rt()...); err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		ga := iatf.Pack(iatf.NewBatch[float32](count/4, 6, 6))
		gb := iatf.Pack(iatf.NewBatch[float32](count/4, 6, 6))
		gc := iatf.Pack(iatf.NewBatch[float32](count/4, 6, 6))
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := iatf.Request[float32]{Op: iatf.OpGEMM, Alpha: 1, Beta: 1, A: ga, B: gb, C: gc}
			for i := 0; i < 8; i++ {
				if err := iatf.Do(context.Background(), req, iatf.WithAsync(),
					iatf.WithTenant("batch"), iatf.WithTrace(nextTrace())); err != nil {
					log.Fatal(err)
				}
			}
		}()
	}
	wg.Wait()
}

// smoke prints each surface once to stdout — the -demo -once form used
// as a no-network sanity check.
func smoke(eng *iatf.Engine, set *iatf.EngineSet, spans *iatf.SpanRing, tenantStats func() []iatf.TenantStats) {
	fmt.Printf("# build: %+v\n", iatf.Build())
	var err error
	if set != nil {
		err = set.WriteMetrics(log.Writer())
	} else {
		err = eng.WriteMetrics(log.Writer())
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# spans captured: %d (ring %d)\n", spans.Total(), len(spans.Spans(0)))
	if err := iatf.WriteChromeTrace(log.Writer(), spans.Spans(8)); err != nil {
		log.Fatal(err)
	}
	for _, t := range tenantStats() {
		fmt.Printf("# tenant %s: requests=%d sheds=%d hits=%d misses=%d p99=%v burn=%.3f\n",
			t.Name, t.Requests, t.Sheds, t.DeadlineHits, t.DeadlineMisses,
			time.Duration(t.Latency.P99), t.BurnRate)
	}
	if id := fmt.Sprintf("%032x", uint64(1)); len(spans.Trace(id)) == 0 {
		log.Fatalf("trace lookup: no spans for demo trace %s", id)
	}
}
