// Command iatf-asm prints generated computing kernels as ARMv8-style
// assembly, before and after the kernel optimizer — the transformation the
// paper's Figure 5 illustrates on the 4×4 DGEMM TEMPLATE_I.
//
// Usage:
//
//	iatf-asm -op gemm -type d -mc 4 -nc 4 -k 4 [-template I] [-stages]
//	iatf-asm -op trsm-tri -type s -m 4 -ncols 4
//	iatf-asm -op trsm-rect -type d -mc 4 -nc 4 -k 8
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"iatf/internal/asm"
	"iatf/internal/kopt"
	"iatf/internal/ktmpl"
	"iatf/internal/machine"
	"iatf/internal/vec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("iatf-asm: ")
	var (
		op     = flag.String("op", "gemm", "kernel kind: gemm, trsm-tri, trsm-rect")
		dtype  = flag.String("type", "d", "data type: s, d, c, z")
		mc     = flag.Int("mc", 4, "kernel rows")
		nc     = flag.Int("nc", 4, "kernel columns")
		k      = flag.Int("k", 4, "reduction length")
		m      = flag.Int("m", 4, "triangular kernel size")
		ncols  = flag.Int("ncols", 4, "triangular kernel column count")
		tplStr = flag.String("template", "", "print a single GEMM template: I, M1, M2, E, SUB, SAVE")
		stages = flag.Bool("stages", false, "show raw and optimized stages side by side info")
	)
	flag.Parse()

	dt, err := vec.ParseDType(*dtype)
	if err != nil {
		log.Fatal(err)
	}
	syn := asm.SyntaxFor(dt.ElemBytes())

	var prog asm.Prog
	switch *op {
	case "gemm":
		spec := ktmpl.GEMMSpec{DT: dt, MC: *mc, NC: *nc, K: *k, StrideC: *mc}
		if *tplStr != "" {
			tpl, err := parseTemplate(*tplStr)
			if err != nil {
				log.Fatal(err)
			}
			prog, err = ktmpl.GenGEMMTemplate(spec, tpl)
			if err != nil {
				log.Fatal(err)
			}
		} else {
			prog, err = ktmpl.GenGEMM(spec)
			if err != nil {
				log.Fatal(err)
			}
		}
	case "trsm-tri":
		prog, err = ktmpl.GenTRSMTri(ktmpl.TriSpec{DT: dt, M: *m, NCols: *ncols, StrideB: *m})
		if err != nil {
			log.Fatal(err)
		}
	case "trsm-rect":
		prog, err = ktmpl.GenTRSMRect(ktmpl.RectSpec{DT: dt, MC: *mc, NC: *nc, K: *k, StrideC: *mc, StrideX: *k})
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -op %q", *op)
	}

	opts := kopt.Options{Prof: machine.Kunpeng920(), ElemBytes: dt.ElemBytes(), Prefetch: true}
	if !*stages {
		fmt.Print(syn.FormatProg(kopt.Optimize(prog, opts)))
		return
	}

	fmt.Fprintf(os.Stdout, "=== original code (%d instructions, modeled %d cycles) ===\n",
		len(prog), kopt.Cost(prog, opts))
	fmt.Print(syn.FormatProg(prog))

	reordered := kopt.Optimize(prog, kopt.Options{Prof: opts.Prof, ElemBytes: opts.ElemBytes})
	fmt.Fprintf(os.Stdout, "\n=== after reordering + load interleaving (%d cycles) ===\n",
		kopt.Cost(reordered, opts))
	fmt.Print(syn.FormatProg(reordered))

	final := kopt.Optimize(prog, opts)
	fmt.Fprintf(os.Stdout, "\n=== with C prefetch (%d instructions, %d cycles) ===\n",
		len(final), kopt.Cost(final, opts))
	fmt.Print(syn.FormatProg(final))
}

func parseTemplate(s string) (ktmpl.TemplateID, error) {
	switch s {
	case "I":
		return ktmpl.TplI, nil
	case "M1":
		return ktmpl.TplM1, nil
	case "M2":
		return ktmpl.TplM2, nil
	case "E":
		return ktmpl.TplE, nil
	case "SUB":
		return ktmpl.TplSUB, nil
	case "SAVE":
		return ktmpl.TplSAVE, nil
	}
	return 0, fmt.Errorf("unknown template %q", s)
}
