package iatf

import (
	"math/rand"
	"testing"

	"iatf/internal/matrix"
)

func randBatch[T Scalar](rng *rand.Rand, count, rows, cols int) *Batch[T] {
	b := NewBatch[T](count, rows, cols)
	matrix.Fill(rng, b.Data())
	return b
}

func randTriBatch[T Scalar](rng *rand.Rand, count, n int) *Batch[T] {
	b := &Batch[T]{inner: matrix.RandTriangularBatch[T](rng, count, n)}
	return b
}

func TestBatchAccessors(t *testing.T) {
	b := NewBatch[float64](3, 2, 4)
	if b.Count() != 3 || b.Rows() != 2 || b.Cols() != 4 {
		t.Fatalf("dims: %d %d %d", b.Count(), b.Rows(), b.Cols())
	}
	b.Set(2, 1, 3, 42)
	if b.At(2, 1, 3) != 42 {
		t.Error("At/Set")
	}
	if len(b.Data()) != 3*2*4 {
		t.Error("Data length")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	testRoundTrip[float32](t, rng)
	testRoundTrip[float64](t, rng)
	testRoundTrip[complex64](t, rng)
	testRoundTrip[complex128](t, rng)
}

func testRoundTrip[T Scalar](t *testing.T, rng *rand.Rand) {
	t.Helper()
	b := randBatch[T](rng, 5, 3, 4)
	c := Pack(b)
	if c.Count() != 5 || c.Rows() != 3 || c.Cols() != 4 {
		t.Fatalf("compact dims wrong: %d %d %d", c.Count(), c.Rows(), c.Cols())
	}
	got := c.Unpack()
	if matrix.MaxAbsDiff(got.Data(), b.Data()) != 0 {
		t.Errorf("%T round trip failed", b.Data()[0])
	}
}

func TestGEMMAgainstOracle(t *testing.T) {
	testGEMMOracle[float32](t, 1e-4)
	testGEMMOracle[float64](t, 1e-12)
	testGEMMOracle[complex64](t, 1e-4)
	testGEMMOracle[complex128](t, 1e-12)
}

func testGEMMOracle[T Scalar](t *testing.T, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	const count, m, n, k = 9, 6, 5, 7
	for _, ta := range []Trans{NoTrans, Transpose} {
		for _, tb := range []Trans{NoTrans, Transpose} {
			ar, ac := m, k
			if ta == Transpose {
				ar, ac = k, m
			}
			br, bc := k, n
			if tb == Transpose {
				br, bc = n, k
			}
			a := randBatch[T](rng, count, ar, ac)
			b := randBatch[T](rng, count, br, bc)
			c := randBatch[T](rng, count, m, n)
			alpha, beta := T(2), T(1)

			want := &Batch[T]{inner: c.inner.Clone()}
			matrix.RefGEMMBatch(ta, tb, alpha, a.inner, b.inner, beta, want.inner)

			ca, cb, cc := Pack(a), Pack(b), Pack(c)
			if err := GEMM(ta, tb, alpha, ca, cb, beta, cc); err != nil {
				t.Fatalf("%v%v: %v", ta, tb, err)
			}
			got := cc.Unpack()
			if !matrix.WithinTol(got.Data(), want.Data(), tol*float64(k)) {
				t.Errorf("%v%v: max diff %g", ta, tb,
					matrix.MaxAbsDiff(got.Data(), want.Data()))
			}
		}
	}
}

func TestTRSMAgainstOracle(t *testing.T) {
	testTRSMOracle[float32](t, 1e-3)
	testTRSMOracle[float64](t, 1e-10)
	testTRSMOracle[complex64](t, 1e-3)
	testTRSMOracle[complex128](t, 1e-10)
}

func testTRSMOracle[T Scalar](t *testing.T, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	const count, m, n = 7, 6, 4
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Lower, Upper} {
			for _, ta := range []Trans{NoTrans, Transpose} {
				for _, diag := range []Diag{NonUnit, Unit} {
					adim := m
					if side == Right {
						adim = n
					}
					a := randTriBatch[T](rng, count, adim)
					b := randBatch[T](rng, count, m, n)
					alpha := T(1)

					want := &Batch[T]{inner: b.inner.Clone()}
					matrix.RefTRSMBatch(side, uplo, ta, diag, alpha, a.inner, want.inner)

					ca, cb := Pack(a), Pack(b)
					if err := TRSM(side, uplo, ta, diag, alpha, ca, cb); err != nil {
						t.Fatalf("%v%v%v%v: %v", side, ta, uplo, diag, err)
					}
					got := cb.Unpack()
					if !matrix.WithinTol(got.Data(), want.Data(), tol) {
						t.Errorf("%v%v%v%v: max diff %g", side, ta, uplo, diag,
							matrix.MaxAbsDiff(got.Data(), want.Data()))
					}
				}
			}
		}
	}
}

func TestGEMMErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := Pack(randBatch[float64](rng, 4, 2, 3))
	b := Pack(randBatch[float64](rng, 4, 3, 2))
	c := Pack(randBatch[float64](rng, 4, 2, 2))
	var nilC *Compact[float64]
	if err := GEMM(NoTrans, NoTrans, 1.0, a, b, 1.0, nilC); err == nil {
		t.Error("nil C accepted")
	}
	// Mismatched K.
	bad := Pack(randBatch[float64](rng, 4, 5, 2))
	if err := GEMM(NoTrans, NoTrans, 1.0, a, bad, 1.0, c); err == nil {
		t.Error("mismatched K accepted")
	}
}

func TestTRSMErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := Pack(randBatch[float64](rng, 4, 2, 3)) // not square
	b := Pack(randBatch[float64](rng, 4, 2, 2))
	if err := TRSM(Left, Lower, NoTrans, NonUnit, 1.0, a, b); err == nil {
		t.Error("non-square A accepted")
	}
	var nilA *Compact[float64]
	if err := TRSM(Left, Lower, NoTrans, NonUnit, 1.0, nilA, b); err == nil {
		t.Error("nil A accepted")
	}
}

func TestCompactClone(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := randBatch[float32](rng, 4, 2, 2)
	c := Pack(b)
	d := c.Clone()
	// Mutate the clone via GEMM and ensure the original is untouched.
	id := NewBatch[float32](4, 2, 2)
	for m := 0; m < 4; m++ {
		id.Set(m, 0, 0, 1)
		id.Set(m, 1, 1, 1)
	}
	if err := GEMM(NoTrans, NoTrans, 1.0, Pack(id), Pack(id), 0, d); err != nil {
		t.Fatal(err)
	}
	if matrix.MaxAbsDiff(c.Unpack().Data(), b.Data()) != 0 {
		t.Error("Clone shares storage")
	}
}

// Large batch exercising super-batching through the public API.
func TestGEMMLargeBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const count = 1000
	a := randBatch[float32](rng, count, 4, 4)
	b := randBatch[float32](rng, count, 4, 4)
	c := randBatch[float32](rng, count, 4, 4)
	want := &Batch[float32]{inner: c.inner.Clone()}
	matrix.RefGEMMBatch(NoTrans, NoTrans, float32(1), a.inner, b.inner, float32(1), want.inner)
	ca, cb, cc := Pack(a), Pack(b), Pack(c)
	if err := GEMM(NoTrans, NoTrans, float32(1), ca, cb, float32(1), cc); err != nil {
		t.Fatal(err)
	}
	if !matrix.WithinTol(cc.Unpack().Data(), want.Data(), 1e-4) {
		t.Error("large batch mismatch")
	}
}

func TestTRMMAgainstOracle(t *testing.T) {
	testTRMMOracle[float32](t, 1e-3)
	testTRMMOracle[float64](t, 1e-11)
	testTRMMOracle[complex64](t, 1e-3)
	testTRMMOracle[complex128](t, 1e-11)
}

func testTRMMOracle[T Scalar](t *testing.T, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(8))
	const count, m, n = 6, 7, 5
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Lower, Upper} {
			for _, ta := range []Trans{NoTrans, Transpose} {
				for _, diag := range []Diag{NonUnit, Unit} {
					adim := m
					if side == Right {
						adim = n
					}
					a := randTriBatch[T](rng, count, adim)
					b := randBatch[T](rng, count, m, n)
					alpha := T(2)

					want := &Batch[T]{inner: b.inner.Clone()}
					matrix.RefTRMMBatch(side, uplo, ta, diag, alpha, a.inner, want.inner)

					ca, cb := Pack(a), Pack(b)
					if err := TRMM(side, uplo, ta, diag, alpha, ca, cb); err != nil {
						t.Fatalf("%v%v%v%v: %v", side, ta, uplo, diag, err)
					}
					got := cb.Unpack()
					if !matrix.WithinTol(got.Data(), want.Data(), tol) {
						t.Errorf("%v%v%v%v: max diff %g", side, ta, uplo, diag,
							matrix.MaxAbsDiff(got.Data(), want.Data()))
					}
				}
			}
		}
	}
}

func TestTRMMErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := Pack(randBatch[float64](rng, 4, 2, 3)) // not square
	b := Pack(randBatch[float64](rng, 4, 2, 2))
	if err := TRMM(Left, Lower, NoTrans, NonUnit, 1.0, a, b); err == nil {
		t.Error("non-square A accepted")
	}
	var nilA *Compact[float64]
	if err := TRMM(Left, Lower, NoTrans, NonUnit, 1.0, nilA, b); err == nil {
		t.Error("nil A accepted")
	}
}

// TRSM must invert TRMM: multiplying then solving with the same triangle
// recovers B.
func TestTRMMTRSMRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const count, m, n = 8, 9, 6
	a := randTriBatch[float64](rng, count, m)
	b := randBatch[float64](rng, count, m, n)
	orig := append([]float64(nil), b.Data()...)
	ca, cb := Pack(a), Pack(b)
	if err := TRMM(Left, Lower, NoTrans, NonUnit, 1.0, ca, cb); err != nil {
		t.Fatal(err)
	}
	if err := TRSM(Left, Lower, NoTrans, NonUnit, 1.0, ca, cb); err != nil {
		t.Fatal(err)
	}
	got := cb.Unpack()
	if !matrix.WithinTol(got.Data(), orig, 1e-10) {
		t.Errorf("TRSM did not invert TRMM: max diff %g", matrix.MaxAbsDiff(got.Data(), orig))
	}
}

// Parallel variants must agree exactly with sequential execution.
func TestParallelAPIsMatchSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const count, n = 100, 6
	a := randBatch[float32](rng, count, n, n)
	bb := randBatch[float32](rng, count, n, n)
	c := randBatch[float32](rng, count, n, n)
	ca, cb := Pack(a), Pack(bb)
	c1, c4 := Pack(c), Pack(c)
	if err := GEMM(NoTrans, NoTrans, float32(1), ca, cb, float32(1), c1); err != nil {
		t.Fatal(err)
	}
	if err := GEMMParallel(4, NoTrans, NoTrans, float32(1), ca, cb, float32(1), c4); err != nil {
		t.Fatal(err)
	}
	if matrix.MaxAbsDiff(c1.Unpack().Data(), c4.Unpack().Data()) != 0 {
		t.Error("parallel GEMM differs from sequential")
	}

	ta := randTriBatch[float32](rng, count, n)
	cta := Pack(ta)
	b1, b4 := Pack(bb), Pack(bb)
	if err := TRSM(Left, Lower, NoTrans, NonUnit, float32(1), cta, b1); err != nil {
		t.Fatal(err)
	}
	if err := TRSMParallel(4, Left, Lower, NoTrans, NonUnit, float32(1), cta, b4); err != nil {
		t.Fatal(err)
	}
	if matrix.MaxAbsDiff(b1.Unpack().Data(), b4.Unpack().Data()) != 0 {
		t.Error("parallel TRSM differs from sequential")
	}

	m1, m4 := Pack(bb), Pack(bb)
	if err := TRMM(Left, Lower, NoTrans, NonUnit, float32(1), cta, m1); err != nil {
		t.Fatal(err)
	}
	if err := TRMMParallel(4, Left, Lower, NoTrans, NonUnit, float32(1), cta, m4); err != nil {
		t.Fatal(err)
	}
	if matrix.MaxAbsDiff(m1.Unpack().Data(), m4.Unpack().Data()) != 0 {
		t.Error("parallel TRMM differs from sequential")
	}
}

func TestPackReplicated(t *testing.T) {
	// One 2×3 matrix replicated 9 times must unpack to 9 identical copies.
	src := []float64{1, 2, 3, 4, 5, 6}
	c, err := PackReplicated(src, 2, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	got := c.Unpack()
	for m := 0; m < 9; m++ {
		for j := 0; j < 3; j++ {
			for i := 0; i < 2; i++ {
				if got.At(m, i, j) != src[j*2+i] {
					t.Fatalf("matrix %d (%d,%d) = %v", m, i, j, got.At(m, i, j))
				}
			}
		}
	}
	// Complex replication.
	cs := []complex64{1 + 2i, 3 - 1i, 2, 5i}
	cc, err := PackReplicated(cs, 2, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	gotC := cc.Unpack()
	for m := 0; m < 5; m++ {
		for j := 0; j < 2; j++ {
			for i := 0; i < 2; i++ {
				if gotC.At(m, i, j) != cs[j*2+i] {
					t.Fatalf("complex matrix %d (%d,%d) = %v", m, i, j, gotC.At(m, i, j))
				}
			}
		}
	}
	// A replicated operand works in GEMM.
	rng := rand.New(rand.NewSource(61))
	b := randBatch[float64](rng, 9, 3, 2)
	out := Pack(NewBatch[float64](9, 2, 2))
	if err := GEMM(NoTrans, NoTrans, 1.0, c, Pack(b), 0.0, out); err != nil {
		t.Fatal(err)
	}
	want := NewBatch[float64](9, 2, 2)
	aConv := NewBatch[float64](9, 2, 3)
	for m := 0; m < 9; m++ {
		copy(aConv.Data()[m*6:(m+1)*6], src)
	}
	matrix.RefGEMMBatch(NoTrans, NoTrans, 1.0, aConv.inner, b.inner, 0.0, want.inner)
	if !matrix.WithinTol(out.Unpack().Data(), want.Data(), 1e-12) {
		t.Error("replicated GEMM mismatch")
	}
	// Errors.
	if _, err := PackReplicated(src[:3], 2, 3, 4); err == nil {
		t.Error("short data accepted")
	}
	if _, err := PackReplicated(src, 2, 3, 0); err == nil {
		t.Error("count 0 accepted")
	}
}

// Full evaluation-scale shape through the native public path: 33×33, the
// largest size of the paper's sweeps, exercising every tile row/column
// combination.
func TestGEMMSize33Native(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	const count, n = 9, 33
	a := randBatch[float64](rng, count, n, n)
	b := randBatch[float64](rng, count, n, n)
	c := randBatch[float64](rng, count, n, n)
	want := &Batch[float64]{inner: c.inner.Clone()}
	matrix.RefGEMMBatch(NoTrans, NoTrans, 1.0, a.inner, b.inner, 1.0, want.inner)
	ca, cb, cc := Pack(a), Pack(b), Pack(c)
	if err := GEMM(NoTrans, NoTrans, 1.0, ca, cb, 1.0, cc); err != nil {
		t.Fatal(err)
	}
	if !matrix.WithinTol(cc.Unpack().Data(), want.Data(), 1e-11) {
		t.Errorf("33×33 mismatch: %g", matrix.MaxAbsDiff(cc.Unpack().Data(), want.Data()))
	}

	ta := randTriBatch[float64](rng, count, n)
	tb := randBatch[float64](rng, count, n, n)
	wantB := &Batch[float64]{inner: tb.inner.Clone()}
	matrix.RefTRSMBatch(Left, Lower, NoTrans, NonUnit, 1.0, ta.inner, wantB.inner)
	cta, ctb := Pack(ta), Pack(tb)
	if err := TRSM(Left, Lower, NoTrans, NonUnit, 1.0, cta, ctb); err != nil {
		t.Fatal(err)
	}
	if !matrix.WithinTol(ctb.Unpack().Data(), wantB.Data(), 1e-8) {
		t.Errorf("33×33 TRSM mismatch: %g", matrix.MaxAbsDiff(ctb.Unpack().Data(), wantB.Data()))
	}
}
