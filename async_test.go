package iatf

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestAsyncDoParity drives 8 concurrent submitters through
// Do(..., WithAsync()) on one problem shape and proves the acceptance
// property: the engine coalesces concurrent same-shape requests
// (Stats.Queue.Coalesced > 0) and every result is bit-identical to the
// serial direct call. Each submitter owns private operands, so parity is
// exact equality, not tolerance. Beta is 0, making each request
// idempotent: retry rounds (coalescing needs genuine scheduling overlap)
// never move the expected values.
func TestAsyncDoParity(t *testing.T) {
	// On a single-CPU box goroutines serialize and every submission takes
	// the idle inline path; extra Ps make the submitters' OS threads
	// interleave so requests genuinely overlap in the queue.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))

	rng := rand.New(rand.NewSource(70))
	const (
		submitters = 8
		iters      = 16
		count      = 512
		n          = 8
	)
	eng := NewEngine()

	type lane struct {
		a, b, c *Compact[float32]
		want    *Compact[float32]
	}
	lanes := make([]lane, submitters)
	for i := range lanes {
		a := Pack(randBatch[float32](rng, count, n, n))
		b := Pack(randBatch[float32](rng, count, n, n))
		c := Pack(randBatch[float32](rng, count, n, n))
		want := c.Clone()
		if err := GEMMOn(NewEngine(), 1, NoTrans, NoTrans, float32(1), a, b, float32(0), want); err != nil {
			t.Fatal(err)
		}
		lanes[i] = lane{a: a, b: b, c: c, want: want}
	}

	// Retry rounds until concurrency actually produced a fused dispatch —
	// coalescing depends on scheduling, so assert over attempts, not one.
	for round := 0; ; round++ {
		var wg sync.WaitGroup
		errs := make([]error, submitters)
		start := make(chan struct{})
		for i := 0; i < submitters; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				req := Request[float32]{
					Op: OpGEMM, Alpha: 1, Beta: 0,
					A: lanes[i].a, B: lanes[i].b, C: lanes[i].c,
				}
				<-start
				for k := 0; k < iters; k++ {
					if err := Do(context.Background(), req, WithEngine(eng), WithAsync()); err != nil {
						errs[i] = err
						return
					}
				}
			}(i)
		}
		close(start)
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("submitter %d: %v", i, err)
			}
		}
		if eng.Stats().Queue.Coalesced > 0 {
			break
		}
		if round >= 100 {
			t.Fatal("no fused dispatch after 100 rounds of 8 concurrent submitters")
		}
	}

	for i := range lanes {
		got, want := lanes[i].c.Unpack(), lanes[i].want.Unpack()
		for j := range got.Data() {
			if got.Data()[j] != want.Data()[j] {
				t.Fatalf("submitter %d: coalesced result diverges from serial at element %d: %g != %g",
					i, j, got.Data()[j], want.Data()[j])
			}
		}
	}

	s := eng.Stats().Queue
	t.Logf("queue: submitted=%d inline=%d dispatches=%d coalesced=%d maxFused=%d",
		s.Submitted, s.Inline, s.Dispatches, s.Coalesced, s.MaxFused)
	if s.Dispatches+s.Inline >= s.Submitted {
		t.Errorf("no fusion happened: dispatches %d + inline %d >= submitted %d",
			s.Dispatches, s.Inline, s.Submitted)
	}
}

// TestAsyncDoHonorsContext: Do with a cancelled context returns ctx.Err()
// without executing, in both the sync and async forms.
func TestAsyncDoHonorsContext(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	a := Pack(randBatch[float32](rng, 32, 4, 4))
	b := Pack(randBatch[float32](rng, 32, 4, 4))
	c := Pack(randBatch[float32](rng, 32, 4, 4))
	before := append([]float32(nil), c.Unpack().Data()...)
	req := Request[float32]{Op: OpGEMM, Alpha: 1, Beta: 1, A: a, B: b, C: c}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Do(ctx, req); !errors.Is(err, context.Canceled) {
		t.Errorf("sync Do: err = %v, want context.Canceled", err)
	}
	if err := Do(ctx, req, WithAsync()); !errors.Is(err, context.Canceled) {
		t.Errorf("async Do: err = %v, want context.Canceled", err)
	}
	tctx, tcancel := context.WithTimeout(context.Background(), -time.Second)
	defer tcancel()
	if err := Do(tctx, req, WithAsync()); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired deadline: err = %v, want context.DeadlineExceeded", err)
	}
	after := c.Unpack().Data()
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("cancelled Do executed: C[%d] changed", i)
		}
	}
}

// TestAsyncSubmitFuture: the public Submit/Future round trip, including
// queue-full surfacing through the public wrapper.
func TestAsyncSubmitFuture(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	eng := NewEngine()
	a := Pack(randBatch[float64](rng, 64, 5, 5))
	b := Pack(randBatch[float64](rng, 64, 5, 5))
	c := Pack(randBatch[float64](rng, 64, 5, 5))
	want := c.Clone()
	if err := GEMMOn(NewEngine(), 1, NoTrans, NoTrans, 2.0, a, b, 1.0, want); err != nil {
		t.Fatal(err)
	}

	fut, err := Submit(context.Background(), Request[float64]{
		Op: OpGEMM, Alpha: 2, Beta: 1, A: a, B: b, C: c,
	}, WithEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	if err := fut.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fut.Done():
	default:
		t.Error("Done not closed after Wait returned")
	}
	got, ref := c.Unpack().Data(), want.Unpack().Data()
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("Submit result diverges at %d", i)
		}
	}

	// Malformed request fails at submission, not at resolution.
	if _, err := Submit(context.Background(), Request[float64]{Op: Op(99)}); !errors.Is(err, ErrOperand) {
		t.Errorf("unknown op: err = %v, want ErrOperand", err)
	}
}

// TestAsyncWarmDoAllocs pins the acceptance bound: the warm synchronous
// Do path on prepacked operands costs at most 2 allocations per call —
// the same as the classic entry points it replaces.
func TestAsyncWarmDoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	const count = 1024
	a := Pack(randBatch[float32](rng, count, 8, 8))
	b := Pack(randBatch[float32](rng, count, 8, 8))
	c := Pack(randBatch[float32](rng, count, 8, 8))
	a.Prepack()
	b.Prepack()
	eng := NewEngine()
	ctx := context.Background()
	req := Request[float32]{Op: OpGEMM, Alpha: 1, Beta: 1, A: a, B: b, C: c}

	call := func() {
		if err := Do(ctx, req, WithEngine(eng)); err != nil {
			t.Fatal(err)
		}
	}
	call() // warm: plan + packed images

	allocs := testing.AllocsPerRun(50, call)
	if allocs > 2 {
		t.Errorf("warm Do allocates %.0f objects/call, want <= 2", allocs)
	}
}
