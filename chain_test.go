package iatf_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"iatf"
)

// chainRand fills a packed batch with deterministic pseudo-random data,
// boosting the diagonal so triangular solves and factorizations stay
// well conditioned.
func chainRand[T float32 | float64](rng *rand.Rand, count, rows, cols int, diagBoost float64) *iatf.Compact[T] {
	b := iatf.NewBatch[T](count, rows, cols)
	d := b.Data()
	for i := range d {
		d[i] = T(rng.Float64() - 0.5)
	}
	for m := 0; m < count; m++ {
		for i := 0; i < rows && i < cols; i++ {
			b.Set(m, i, i, b.At(m, i, i)+T(diagBoost))
		}
	}
	return iatf.Pack(b)
}

// spdRand builds a batch of symmetric positive-definite matrices
// (AᵀA + n·I) for Cholesky chains.
func spdRand[T float32 | float64](rng *rand.Rand, count, n int) *iatf.Compact[T] {
	b := iatf.NewBatch[T](count, n, n)
	for m := 0; m < count; m++ {
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				v := T(rng.Float64() - 0.5)
				b.Set(m, i, j, v)
				b.Set(m, j, i, v)
			}
			b.Set(m, i, i, b.At(m, i, i)+T(n))
		}
	}
	return iatf.Pack(b)
}

// expectEqual asserts two compact batches are bitwise identical.
func expectEqual[T float32 | float64](t *testing.T, label string, got, want *iatf.Compact[T]) {
	t.Helper()
	g, w := got.Unpack().Data(), want.Unpack().Data()
	if len(g) != len(w) {
		t.Fatalf("%s: length %d vs %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: element %d: got %v want %v", label, i, g[i], w[i])
		}
	}
}

// chainCase is one chain expressed twice: as stages and as the
// equivalent serial call sequence over cloned operands.
type chainCase[T float32 | float64] struct {
	name   string
	stages func(a, b, c *iatf.Compact[T]) []iatf.Stage[T]
	serial func(workers int, a, b, c *iatf.Compact[T]) error
	// needsSPD marks cases whose A must be positive definite.
	needsSPD bool
	// square forces B to the same shape as A (GEMM/SYRK cases).
	square bool
}

func chainCases[T float32 | float64]() []chainCase[T] {
	return []chainCase[T]{
		{
			// The fusable pattern: adjacent triangular stages over one B
			// with matching packed layouts — B hands off packed.
			name: "TRMM+TRSM fused",
			stages: func(a, b, _ *iatf.Compact[T]) []iatf.Stage[T] {
				return []iatf.Stage[T]{
					iatf.TRMMStage(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 2, a, b),
					iatf.TRSMStage(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1, a, b),
				}
			},
			serial: func(w int, a, b, _ *iatf.Compact[T]) error {
				if err := iatf.TRMMParallel(w, iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 2, a, b); err != nil {
					return err
				}
				return iatf.TRSMParallel(w, iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1, a, b)
			},
		},
		{
			// Right-side pair: both stages pack B transposed; also fusable.
			name: "right-side TRSM+TRMM fused",
			stages: func(a, b, _ *iatf.Compact[T]) []iatf.Stage[T] {
				return []iatf.Stage[T]{
					iatf.TRSMStage(iatf.Right, iatf.Lower, iatf.NoTrans, iatf.NonUnit, 1, a, b),
					iatf.TRMMStage(iatf.Right, iatf.Lower, iatf.NoTrans, iatf.NonUnit, 1, a, b),
				}
			},
			serial: func(w int, a, b, _ *iatf.Compact[T]) error {
				if err := iatf.TRSMParallel(w, iatf.Right, iatf.Lower, iatf.NoTrans, iatf.NonUnit, 1, a, b); err != nil {
					return err
				}
				return iatf.TRMMParallel(w, iatf.Right, iatf.Lower, iatf.NoTrans, iatf.NonUnit, 1, a, b)
			},
			square: true,
		},
		{
			// A non-fusable stage (GEMM reading B) splits the triangular
			// pair: the producer must re-materialize B before the GEMM.
			name: "TRMM+GEMM+TRSM broken",
			stages: func(a, b, c *iatf.Compact[T]) []iatf.Stage[T] {
				return []iatf.Stage[T]{
					iatf.TRMMStage(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1, a, b),
					iatf.GEMMStage(iatf.NoTrans, iatf.NoTrans, 1, a, b, 1, c),
					iatf.TRSMStage(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1, a, b),
				}
			},
			serial: func(w int, a, b, c *iatf.Compact[T]) error {
				if err := iatf.TRMMParallel(w, iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1, a, b); err != nil {
					return err
				}
				if err := iatf.GEMMParallel(w, iatf.NoTrans, iatf.NoTrans, 1, a, b, 1, c); err != nil {
					return err
				}
				return iatf.TRSMParallel(w, iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1, a, b)
			},
		},
		{
			// The newton shape: factor once, two solves against the factors.
			name: "LU+TRSM+TRSM",
			stages: func(a, b, _ *iatf.Compact[T]) []iatf.Stage[T] {
				return []iatf.Stage[T]{
					iatf.LUStage(a),
					iatf.TRSMStage(iatf.Left, iatf.Lower, iatf.NoTrans, iatf.Unit, 1, a, b),
					iatf.TRSMStage(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1, a, b),
				}
			},
			serial: func(w int, a, b, _ *iatf.Compact[T]) error {
				if _, err := iatf.LUParallel(w, a); err != nil {
					return err
				}
				if err := iatf.TRSMParallel(w, iatf.Left, iatf.Lower, iatf.NoTrans, iatf.Unit, 1, a, b); err != nil {
					return err
				}
				return iatf.TRSMParallel(w, iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1, a, b)
			},
		},
		{
			// The blockjacobi shape: Cholesky then forward/back solves.
			name: "Cholesky+TRSM+TRSM",
			stages: func(a, b, _ *iatf.Compact[T]) []iatf.Stage[T] {
				return []iatf.Stage[T]{
					iatf.CholeskyStage(a),
					iatf.TRSMStage(iatf.Left, iatf.Lower, iatf.NoTrans, iatf.NonUnit, 1, a, b),
					iatf.TRSMStage(iatf.Left, iatf.Lower, iatf.Transpose, iatf.NonUnit, 1, a, b),
				}
			},
			serial: func(w int, a, b, _ *iatf.Compact[T]) error {
				if _, err := iatf.CholeskyParallel(w, a); err != nil {
					return err
				}
				if err := iatf.TRSMParallel(w, iatf.Left, iatf.Lower, iatf.NoTrans, iatf.NonUnit, 1, a, b); err != nil {
					return err
				}
				return iatf.TRSMParallel(w, iatf.Left, iatf.Lower, iatf.Transpose, iatf.NonUnit, 1, a, b)
			},
			needsSPD: true,
		},
		{
			// GEMM into C then SYRK reading C: covers the remaining ops and
			// a produced operand consumed through slot 0 of the next stage.
			name: "GEMM+SYRK",
			stages: func(a, b, c *iatf.Compact[T]) []iatf.Stage[T] {
				return []iatf.Stage[T]{
					iatf.GEMMStage(iatf.NoTrans, iatf.NoTrans, 1, a, b, 0, c),
					iatf.SYRKStage(iatf.Lower, iatf.NoTrans, 1, c, 1, a),
				}
			},
			serial: func(w int, a, b, c *iatf.Compact[T]) error {
				if err := iatf.GEMMParallel(w, iatf.NoTrans, iatf.NoTrans, 1, a, b, 0, c); err != nil {
					return err
				}
				return iatf.SYRKParallel(w, iatf.Lower, iatf.NoTrans, 1, c, 1, a)
			},
			square: true,
		},
	}
}

// runChainParity drives every case × count × worker setting and demands
// bitwise identity between the chain and the serial sequence.
func runChainParity[T float32 | float64](t *testing.T, async bool) {
	const n = 8
	for _, tc := range chainCases[T]() {
		for _, count := range []int{1, 7, 8, 9} {
			for _, workers := range []int{1, 0} {
				rng := rand.New(rand.NewSource(int64(count*10 + workers)))
				var a *iatf.Compact[T]
				if tc.needsSPD {
					a = spdRand[T](rng, count, n)
				} else {
					a = chainRand[T](rng, count, n, n, 4)
				}
				cols := 4
				if tc.square {
					cols = n
				}
				b := chainRand[T](rng, count, n, cols, 0)
				c := chainRand[T](rng, count, n, cols, 0)
				aRef, bRef, cRef := a.Clone(), b.Clone(), c.Clone()

				if err := tc.serial(workers, aRef, bRef, cRef); err != nil {
					t.Fatalf("%s serial: %v", tc.name, err)
				}
				e := iatf.NewEngine()
				opts := []iatf.Option{iatf.WithEngine(e), iatf.WithWorkers(workers)}
				if async {
					opts = append(opts, iatf.WithAsync())
				}
				if err := iatf.Chain(context.Background(), tc.stages(a, b, c), opts...); err != nil {
					t.Fatalf("%s chain: %v", tc.name, err)
				}
				label := tc.name
				expectEqual(t, label+" A", a, aRef)
				expectEqual(t, label+" B", b, bRef)
				expectEqual(t, label+" C", c, cRef)
			}
		}
	}
}

func TestChainParityF32(t *testing.T) { runChainParity[float32](t, false) }
func TestChainParityF64(t *testing.T) { runChainParity[float64](t, false) }
func TestChainParityAsync(t *testing.T) {
	runChainParity[float64](t, true)
}

// TestChainElision asserts the fusable pair actually skips the scatter
// and re-pack, and that the chain plan replays from cache.
func TestChainElision(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := iatf.NewEngine()
	a := chainRand[float64](rng, 7, 8, 8, 4)
	b := chainRand[float64](rng, 7, 8, 4, 0)
	const iters = 5
	for i := 0; i < iters; i++ {
		if err := iatf.Chain(context.Background(), []iatf.Stage[float64]{
			iatf.TRMMStage(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1.0, a, b),
			iatf.TRSMStage(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1.0, a, b),
		}, iatf.WithEngine(e)); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats().Chain
	if st.Runs != iters {
		t.Fatalf("runs = %d, want %d", st.Runs, iters)
	}
	if st.PlanMisses != 1 || st.PlanHits != iters-1 {
		t.Fatalf("plan cache: %d misses %d hits, want 1/%d", st.PlanMisses, st.PlanHits, iters-1)
	}
	if st.ScatterElided != iters || st.PackElided != iters {
		t.Fatalf("elision: scatter %d pack %d, want %d each", st.ScatterElided, st.PackElided, iters)
	}
}

// TestChainNoElisionAcrossBreak asserts a non-fusable middle stage
// forces the handoff to re-materialize (no elisions counted).
func TestChainNoElisionAcrossBreak(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	e := iatf.NewEngine()
	a := chainRand[float64](rng, 7, 8, 8, 4)
	b := chainRand[float64](rng, 7, 8, 4, 0)
	c := chainRand[float64](rng, 7, 8, 4, 0)
	if err := iatf.Chain(context.Background(), []iatf.Stage[float64]{
		iatf.TRMMStage(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1.0, a, b),
		iatf.GEMMStage(iatf.NoTrans, iatf.NoTrans, 1.0, a, b, 1.0, c),
		iatf.TRSMStage(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1.0, a, b),
	}, iatf.WithEngine(e)); err != nil {
		t.Fatal(err)
	}
	st := e.Stats().Chain
	if st.ScatterElided != 0 || st.PackElided != 0 {
		t.Fatalf("broken chain must not elide: %+v", st)
	}
}

// TestChainSingular asserts a factor failure surfaces as a *ChainError
// wrapping ErrSingular with per-matrix info, and that earlier stages'
// results are preserved (the chain stops at the failing stage).
func TestChainSingular(t *testing.T) {
	const count, n = 5, 4
	a := iatf.NewBatch[float64](count, n, n)
	for m := 0; m < count; m++ {
		for i := 0; i < n; i++ {
			a.Set(m, i, i, 1)
		}
	}
	// Matrix 3 is singular: zero out its last pivot.
	a.Set(3, n-1, n-1, 0)
	ac := iatf.Pack(a)
	b := chainRand[float64](rand.New(rand.NewSource(5)), count, n, 2, 0)
	err := iatf.Chain(context.Background(), []iatf.Stage[float64]{
		iatf.LUStage(ac),
		iatf.TRSMStage(iatf.Left, iatf.Lower, iatf.NoTrans, iatf.Unit, 1, ac, b),
	}, iatf.WithEngine(iatf.NewEngine()))
	if !errors.Is(err, iatf.ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
	var ce *iatf.ChainError
	if !errors.As(err, &ce) {
		t.Fatalf("want *ChainError, got %T", err)
	}
	if ce.Stage != 0 {
		t.Fatalf("failing stage = %d, want 0", ce.Stage)
	}
	if len(ce.Info) != count || ce.Info[3] == 0 {
		t.Fatalf("info = %v, want nonzero at index 3", ce.Info)
	}
}

// TestChainValidation checks chain-wide validation: mismatched counts
// and dtype-consistent stage shapes fail up front with the stage index.
func TestChainValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := chainRand[float64](rng, 7, 8, 8, 4)
	b7 := chainRand[float64](rng, 7, 8, 4, 0)
	b9 := chainRand[float64](rng, 9, 8, 4, 0)
	err := iatf.Chain(context.Background(), []iatf.Stage[float64]{
		iatf.TRMMStage(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1.0, a, b7),
		iatf.TRSMStage(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1.0, a, b9),
	})
	var ce *iatf.ChainError
	if err == nil || !errors.As(err, &ce) || ce.Stage != 1 {
		t.Fatalf("count mismatch: want ChainError at stage 1, got %v", err)
	}
	// Shape mismatch inside one stage.
	bBad := chainRand[float64](rng, 7, 6, 4, 0)
	err = iatf.Chain(context.Background(), []iatf.Stage[float64]{
		iatf.TRSMStage(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1.0, a, bBad),
	})
	if err == nil || !errors.As(err, &ce) || ce.Stage != 0 {
		t.Fatalf("shape mismatch: want ChainError at stage 0, got %v", err)
	}
	// Empty chains fail up front.
	if err := iatf.Chain[float64](context.Background(), nil); err == nil {
		t.Fatal("empty chain must fail")
	}
}

// TestChainCancel verifies an already-cancelled context aborts before
// executing and leaves operands untouched.
func TestChainCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := chainRand[float64](rng, 7, 8, 8, 4)
	b := chainRand[float64](rng, 7, 8, 4, 0)
	bRef := b.Clone()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := iatf.Chain(ctx, []iatf.Stage[float64]{
		iatf.TRMMStage(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1.0, a, b),
		iatf.TRSMStage(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1.0, a, b),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	expectEqual(t, "B untouched", b, bRef)
}

// TestChainSpans verifies WithSpanSink produces one parent CHAIN span
// whose per-stage children link back to it.
func TestChainSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := chainRand[float64](rng, 7, 8, 8, 4)
	b := chainRand[float64](rng, 7, 8, 4, 0)
	var spans []iatf.Span
	err := iatf.Chain(context.Background(), []iatf.Stage[float64]{
		iatf.TRMMStage(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1.0, a, b),
		iatf.TRSMStage(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1.0, a, b),
	}, iatf.WithEngine(iatf.NewEngine()), iatf.WithSpanSink(func(sp *iatf.Span) {
		spans = append(spans, *sp)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 {
		t.Fatalf("sink saw %d spans, want the one parent", len(spans))
	}
	if spans[0].Op != "CHAIN" || spans[0].Mode != "TRMM+TRSM" {
		t.Fatalf("parent span = %+v", spans[0])
	}
}

// TestChainSharedEngineStress hammers one engine with concurrent
// identical and distinct chains; run under -race it checks the chain
// path (plan cache, pack cache handoffs, async coalescing) for data
// races, and every caller's result must stay bit-exact.
func TestChainSharedEngineStress(t *testing.T) {
	const goroutines = 8
	const iters = 25
	e := iatf.NewEngine()
	rng := rand.New(rand.NewSource(9))
	a := chainRand[float64](rng, 7, 8, 8, 4)
	bSeed := chainRand[float64](rng, 7, 8, 4, 0)
	// Reference result of one chained round trip.
	want := bSeed.Clone()
	if err := iatf.TRMM(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1, a, want); err != nil {
		t.Fatal(err)
	}
	if err := iatf.TRSM(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1, a, want); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			async := g%2 == 1
			for i := 0; i < iters; i++ {
				b := bSeed.Clone()
				opts := []iatf.Option{iatf.WithEngine(e)}
				if async {
					opts = append(opts, iatf.WithAsync())
				}
				err := iatf.Chain(context.Background(), []iatf.Stage[float64]{
					iatf.TRMMStage(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1.0, a, b),
					iatf.TRSMStage(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1.0, a, b),
				}, opts...)
				if err != nil {
					errs[g] = err
					return
				}
				got, ref := b.Unpack().Data(), want.Unpack().Data()
				for j := range got {
					if got[j] != ref[j] {
						errs[g] = errors.New("result diverged under concurrency")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// TestChainOnSet routes chains through a sharded engine set, sync and
// async, and checks parity.
func TestChainOnSet(t *testing.T) {
	set := iatf.NewEngineSet(2)
	rng := rand.New(rand.NewSource(10))
	a := chainRand[float64](rng, 7, 8, 8, 4)
	b := chainRand[float64](rng, 7, 8, 4, 0)
	bRef := b.Clone()
	if err := iatf.TRMM(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1, a, bRef); err != nil {
		t.Fatal(err)
	}
	if err := iatf.TRSM(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1, a, bRef); err != nil {
		t.Fatal(err)
	}
	for _, async := range []bool{false, true} {
		bc := b.Clone()
		opts := []iatf.Option{iatf.WithEngineSet(set)}
		if async {
			opts = append(opts, iatf.WithAsync())
		}
		if err := iatf.Chain(context.Background(), []iatf.Stage[float64]{
			iatf.TRMMStage(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1.0, a, bc),
			iatf.TRSMStage(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1.0, a, bc),
		}, opts...); err != nil {
			t.Fatalf("async=%v: %v", async, err)
		}
		expectEqual(t, "set chain", bc, bRef)
	}
}
