// Public surface of the sharded scale-out path: an EngineSet owns N
// isolated engines and routes every call to its identity's home shard,
// so mixed traffic spreads across dispatchers while each problem
// identity keeps hitting one shard's warm plan and prepack caches. See
// internal/engine/set.go for the routing and work-stealing mechanics.

package iatf

import (
	"io"
	"net/http"
	"time"

	"iatf/internal/engine"
)

// EngineSet is a sharded group of isolated engines behind one dispatch
// surface. Calls routed through it (Do/Submit with WithEngineSet) are
// assigned a home shard by consistent hashing on the problem identity —
// op, dtype, mode flags and operand dimensions — so repeated shapes
// always land on the same shard's caches. Idle shards steal queued work
// from the deepest sibling, and a Submit whose home queue is full falls
// back to the least-loaded sibling once before returning ErrQueueFull.
//
// An EngineSet's dispatchers run for the life of the process: create one
// at startup and reuse it.
type EngineSet struct {
	inner *engine.Set
}

// EngineSetStats is a point-in-time view of a whole set: one ShardStats
// per shard (full engine counters plus routing attribution) and the
// cross-shard aggregate with shapes merged by identity.
type EngineSetStats = engine.SetStats

// ShardStats is one shard's slice of an EngineSetStats.
type ShardStats = engine.ShardStats

// DefaultShardCount returns the shard count NewEngineSet uses for
// n <= 0: min(GOMAXPROCS, NumCPU/2), floored at 1.
func DefaultShardCount() int { return engine.DefaultShards() }

// NewEngineSet builds a set of n isolated engines (n <= 0 uses
// DefaultShardCount), configured by the same options as NewEngine.
// Each shard has its own plan cache, prepack cache, buffer pools,
// worker fleet (capped at its core share) and submission queue;
// WithQueueCapacity/WithEDF/WithBatchWindow apply to every shard, and
// WithPlanStore hydrates each stored plan into its identity's home
// shard so the warm start lands exactly where live traffic routes.
func NewEngineSet(n int, opts ...EngineOption) *EngineSet {
	cfg := resolveConfig(opts)
	s := engine.NewSet(cfg.tun, n)
	cfg.applySet(s)
	return &EngineSet{inner: s}
}

// Shards returns the shard count.
func (s *EngineSet) Shards() int { return s.inner.Shards() }

// Shard returns shard i's engine for per-shard introspection (stats,
// tracing, metrics). Submitting work to it directly bypasses the
// identity router.
func (s *EngineSet) Shard(i int) *Engine {
	return &Engine{inner: s.inner.Shard(i)}
}

// Stats returns the set's current per-shard and aggregate counters.
func (s *EngineSet) Stats() EngineSetStats { return s.inner.Stats() }

// WriteMetrics renders one scrape of the whole set as OpenMetrics text:
// every family carries unlabeled aggregate samples plus one shard="k"
// sample per shard.
func (s *EngineSet) WriteMetrics(w io.Writer) error { return s.inner.WriteOpenMetrics(w) }

// MetricsHandler returns an http.Handler serving WriteMetrics with the
// OpenMetrics content type, mountable at /metrics.
func (s *EngineSet) MetricsHandler() http.Handler { return s.inner.MetricsHandler() }

// ResetShapeStats resets every shard's per-shape series and windowed
// queue state; see Engine.ResetShapeStats.
func (s *EngineSet) ResetShapeStats() { s.inner.ResetShapeStats() }

// SetProfileLabels toggles pprof goroutine labels on every shard.
func (s *EngineSet) SetProfileLabels(on bool) { s.inner.SetProfileLabels(on) }

// SetQueueCapacity bounds every shard's submission queue. Like
// Engine.SetQueueCapacity it must run before the set's first Submit;
// the first shard whose dispatcher is already live returns an error
// wrapping ErrQueueStarted and the remaining shards keep their current
// capacity.
//
// Deprecated: pass WithQueueCapacity to NewEngineSet instead.
func (s *EngineSet) SetQueueCapacity(n int) error {
	for i := 0; i < s.inner.Shards(); i++ {
		if err := s.inner.Shard(i).SetQueueCapacity(n); err != nil {
			return err
		}
	}
	return nil
}

// QueueStats returns the cross-shard aggregate of every shard's
// submission-queue counters — the cheap admission-control view of the
// whole set; see Engine.QueueStats.
func (s *EngineSet) QueueStats() QueueStats { return s.inner.QueueStats() }

// SetEDF toggles deadline-ordered dispatch on every shard; see
// Engine.SetEDF.
//
// Deprecated: prefer WithEDF at construction; SetEDF remains for
// runtime flips.
func (s *EngineSet) SetEDF(on bool) { s.inner.SetEDF(on) }

// SetBatchWindow sets every shard's max-batch-window; see
// Engine.SetBatchWindow.
//
// Deprecated: prefer WithBatchWindow at construction; SetBatchWindow
// remains for runtime adjustment.
func (s *EngineSet) SetBatchWindow(d time.Duration) { s.inner.SetBatchWindow(d) }

// WithEngineSet routes the call through a sharded engine set: the
// problem identity picks the home shard, keeping repeated shapes on one
// shard's warm caches. Overrides WithEngine when both are given.
func WithEngineSet(s *EngineSet) Option { return Option{set: s} }
