package iatf

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"iatf/internal/matrix"
)

// scenario is one op with pristine inputs and a serially computed expected
// result; run re-executes it with a given worker count and verifies the
// output matches the serial baseline exactly (the kernel sequence per
// group is identical regardless of the worker split, so results are
// bit-identical).
type scenario struct {
	name string
	run  func(workers int) error
}

func gemmScenario[T Scalar](t *testing.T, seed int64, count, m, n, k int) scenario {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a := Pack(randBatch[T](rng, count, m, k))
	b := Pack(randBatch[T](rng, count, k, n))
	c0 := Pack(randBatch[T](rng, count, m, n))
	alpha, beta := T(2), T(1)
	exp := c0.Clone()
	if err := GEMM(NoTrans, NoTrans, alpha, a, b, beta, exp); err != nil {
		t.Fatal(err)
	}
	name := fmt.Sprintf("gemm-%T-%dx%dx%d", alpha, m, n, k)
	return scenario{name: name, run: func(workers int) error {
		c := c0.Clone()
		if err := GEMMParallel(workers, NoTrans, NoTrans, alpha, a, b, beta, c); err != nil {
			return err
		}
		return compactEqual(c, exp)
	}}
}

func trsmScenario[T Scalar](t *testing.T, seed int64, count, m, n int) scenario {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a := Pack(randTriBatch[T](rng, count, m))
	b0 := Pack(randBatch[T](rng, count, m, n))
	exp := b0.Clone()
	if err := TRSM(Left, Lower, NoTrans, NonUnit, T(1), a, exp); err != nil {
		t.Fatal(err)
	}
	return scenario{name: fmt.Sprintf("trsm-%dx%d", m, n), run: func(workers int) error {
		b := b0.Clone()
		if err := TRSMParallel(workers, Left, Lower, NoTrans, NonUnit, T(1), a, b); err != nil {
			return err
		}
		return compactEqual(b, exp)
	}}
}

func luScenario[T Scalar](t *testing.T, seed int64, count, n int) scenario {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	batch := randBatch[T](rng, count, n, n)
	// Diagonal dominance keeps the unpivoted factorization stable.
	shift := scalarFromInt[T](n)
	for mi := 0; mi < count; mi++ {
		for i := 0; i < n; i++ {
			batch.Set(mi, i, i, batch.At(mi, i, i)+shift)
		}
	}
	a0 := Pack(batch)
	exp := a0.Clone()
	expInfo, err := LU(exp)
	if err != nil {
		t.Fatal(err)
	}
	return scenario{name: fmt.Sprintf("lu-%dx%d", n, n), run: func(workers int) error {
		a := a0.Clone()
		info, err := LUParallel(workers, a)
		if err != nil {
			return err
		}
		for i := range info {
			if info[i] != expInfo[i] {
				return fmt.Errorf("info[%d] = %d, want %d", i, info[i], expInfo[i])
			}
		}
		return compactEqual(a, exp)
	}}
}

func compactEqual[T Scalar](got, want *Compact[T]) error {
	g, w := got.Unpack(), want.Unpack()
	if d := matrix.MaxAbsDiff(g.Data(), w.Data()); d != 0 {
		return fmt.Errorf("result diverges from serial baseline by %g", d)
	}
	return nil
}

// TestEngineConcurrentStress hammers the default engine from many
// goroutines with mixed GEMM/TRSM/LU on shared and distinct shapes and
// every workers convention (auto, serial, oversubscribed), asserting all
// results match the serial baseline. Run under -race this exercises the
// plan cache shards, the buffer pools and the persistent worker pool for
// data races.
func TestEngineConcurrentStress(t *testing.T) {
	scenarios := []scenario{
		// Shared shapes: every goroutine contends on the same plan entries.
		gemmScenario[float32](t, 10, 300, 8, 8, 8),
		gemmScenario[float64](t, 11, 129, 6, 5, 7),
		gemmScenario[complex64](t, 12, 60, 4, 4, 4),
		trsmScenario[float64](t, 13, 200, 8, 4),
		luScenario[float32](t, 14, 150, 6),
		// Distinct shapes: concurrent cache misses and inserts.
		gemmScenario[float64](t, 15, 96, 3, 9, 2),
		gemmScenario[float32](t, 16, 80, 12, 2, 5),
		trsmScenario[float32](t, 17, 90, 5, 7),
	}
	goroutines := 12
	iters := 8
	if testing.Short() {
		goroutines, iters = 6, 3
	}
	workerChoices := []int{0, 1, 2, 4, 16, -1}
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sc := scenarios[(g+i)%len(scenarios)]
				workers := workerChoices[(g*iters+i)%len(workerChoices)]
				if err := sc.run(workers); err != nil {
					errc <- fmt.Errorf("goroutine %d, %s, workers=%d: %w", g, sc.name, workers, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestWorkersAutoConvention checks workers <= 0 means auto on every
// parallel entry point (no panic, no degenerate serial-only path, correct
// results).
func TestWorkersAutoConvention(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	const count = 64
	a := Pack(randBatch[float64](rng, count, 5, 5))
	b := Pack(randBatch[float64](rng, count, 5, 5))
	cSerial := Pack(randBatch[float64](rng, count, 5, 5))
	cAuto := cSerial.Clone()
	if err := GEMMParallel(1, NoTrans, NoTrans, 1.0, a, b, 1.0, cSerial); err != nil {
		t.Fatal(err)
	}
	if err := GEMMParallel(0, NoTrans, NoTrans, 1.0, a, b, 1.0, cAuto); err != nil {
		t.Fatal(err)
	}
	if err := compactEqual(cAuto, cSerial); err != nil {
		t.Fatal(err)
	}

	tri := Pack(randTriBatch[float64](rng, count, 6))
	rhsS := Pack(randBatch[float64](rng, count, 6, 3))
	rhsA := rhsS.Clone()
	if err := TRSMParallel(1, Left, Lower, NoTrans, NonUnit, 1.0, tri, rhsS); err != nil {
		t.Fatal(err)
	}
	if err := TRSMParallel(-2, Left, Lower, NoTrans, NonUnit, 1.0, tri, rhsA); err != nil {
		t.Fatal(err)
	}
	if err := compactEqual(rhsA, rhsS); err != nil {
		t.Fatal(err)
	}

	mm := tri.Clone()
	if err := TRMMParallel(0, Left, Lower, NoTrans, NonUnit, 1.0, tri, mm); err != nil {
		t.Fatal(err)
	}
	sk := Pack(randBatch[float64](rng, count, 5, 5))
	if err := SYRKParallel(0, Lower, NoTrans, 1.0, a, 1.0, sk); err != nil {
		t.Fatal(err)
	}
	if _, err := LUParallel(0, mm); err != nil {
		t.Fatal(err)
	}
	if _, err := CholeskyParallel(-1, skSPD(rng, count, 4)); err != nil {
		t.Fatal(err)
	}
}

// scalarFromInt converts a run-time int to the scalar type (the generic
// conversion T(n) only works for constants once complex types are in the
// constraint).
func scalarFromInt[T Scalar](n int) T {
	var z T
	switch any(z).(type) {
	case float32:
		return any(float32(n)).(T)
	case float64:
		return any(float64(n)).(T)
	case complex64:
		return any(complex64(complex(float64(n), 0))).(T)
	default:
		return any(complex(float64(n), 0)).(T)
	}
}

// skSPD builds a symmetric positive-definite batch for Cholesky.
func skSPD(rng *rand.Rand, count, n int) *Compact[float64] {
	b := randBatch[float64](rng, count, n, n)
	spd := NewBatch[float64](count, n, n)
	for m := 0; m < count; m++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += b.At(m, i, k) * b.At(m, j, k)
				}
				if i == j {
					s += float64(n)
				}
				spd.Set(m, i, j, s)
			}
		}
	}
	return Pack(spd)
}
