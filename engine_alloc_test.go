package iatf

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// TestSteadyStateAllocs proves the warm path is plan-construction free:
// after the first call on a shape, repeated calls hit the plan cache (no
// misses) and allocate only a small fixed amount (the plan stack copy and
// pool bookkeeping), independent of batch size.
func TestSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	const count = 1024
	a := Pack(randBatch[float32](rng, count, 8, 8))
	b := Pack(randBatch[float32](rng, count, 8, 8))
	c := Pack(randBatch[float32](rng, count, 8, 8))

	call := func() {
		if err := GEMM(NoTrans, NoTrans, float32(1), a, b, float32(1), c); err != nil {
			t.Fatal(err)
		}
	}
	call() // warm: build + cache the plan

	before := DefaultEngine().Stats()
	allocs := testing.AllocsPerRun(50, call)
	after := DefaultEngine().Stats()

	if after.PlanMisses != before.PlanMisses {
		t.Errorf("warm calls built plans: misses %d -> %d", before.PlanMisses, after.PlanMisses)
	}
	if after.PlanHits <= before.PlanHits {
		t.Errorf("warm calls did not hit the plan cache: hits %d -> %d", before.PlanHits, after.PlanHits)
	}
	// The serial warm path allocates only the pooled packing buffers'
	// bookkeeping and small executor fixtures — a constant, not O(count).
	// Baseline before the engine: 22 allocs and ~45 KB per call.
	if allocs > 12 {
		t.Errorf("warm GEMM allocates %.0f objects/call, want <= 12", allocs)
	}
}

// BenchmarkSteadyStateAllocs measures the warm serial path on the shape
// recorded in EXPERIMENTS.md (f32 8x8x8, count 4096). Before the engine:
// 22 allocs/op, 45224 B/op.
func BenchmarkSteadyStateAllocs(bm *testing.B) {
	rng := rand.New(rand.NewSource(31))
	const count = 4096
	a := Pack(randBatch[float32](rng, count, 8, 8))
	b := Pack(randBatch[float32](rng, count, 8, 8))
	c := Pack(randBatch[float32](rng, count, 8, 8))
	if err := GEMM(NoTrans, NoTrans, float32(1), a, b, float32(1), c); err != nil {
		bm.Fatal(err)
	}
	bm.ReportAllocs()
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		if err := GEMM(NoTrans, NoTrans, float32(1), a, b, float32(1), c); err != nil {
			bm.Fatal(err)
		}
	}
}

// BenchmarkSteadyStateAllocsAuto is the same workload with auto workers
// (the persistent pool splits the batch).
func BenchmarkSteadyStateAllocsAuto(bm *testing.B) {
	rng := rand.New(rand.NewSource(32))
	const count = 4096
	a := Pack(randBatch[float32](rng, count, 8, 8))
	b := Pack(randBatch[float32](rng, count, 8, 8))
	c := Pack(randBatch[float32](rng, count, 8, 8))
	if err := GEMMParallel(0, NoTrans, NoTrans, float32(1), a, b, float32(1), c); err != nil {
		bm.Fatal(err)
	}
	bm.ReportAllocs()
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		if err := GEMMParallel(0, NoTrans, NoTrans, float32(1), a, b, float32(1), c); err != nil {
			bm.Fatal(err)
		}
	}
}

// TestPrepackedSteadyStateAllocs proves the pack-once warm path is
// allocation-free beyond the dispatch fixtures: with both operands
// prepacked and the pack cache warm, a serial call neither packs nor
// touches the buffer pools, leaving only the plan stack copy — the PR 3
// acceptance bound of 2 allocs/call.
func TestPrepackedSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const count = 1024
	a := Pack(randBatch[float32](rng, count, 8, 8))
	b := Pack(randBatch[float32](rng, count, 8, 8))
	c := Pack(randBatch[float32](rng, count, 8, 8))
	a.Prepack()
	b.Prepack()
	eng := NewEngine()

	call := func() {
		if err := GEMMOn(eng, 1, NoTrans, NoTrans, float32(1), a, b, float32(1), c); err != nil {
			t.Fatal(err)
		}
	}
	call() // warm: build the plan and both packed images

	before := eng.Stats()
	allocs := testing.AllocsPerRun(50, call)
	after := eng.Stats()

	if after.PackCache.Builds != before.PackCache.Builds {
		t.Errorf("warm calls rebuilt packed images: builds %d -> %d",
			before.PackCache.Builds, after.PackCache.Builds)
	}
	if after.PackCache.Hits <= before.PackCache.Hits {
		t.Errorf("warm calls missed the pack cache: hits %d -> %d",
			before.PackCache.Hits, after.PackCache.Hits)
	}
	if allocs > 2 {
		t.Errorf("warm prepacked GEMM allocates %.0f objects/call, want <= 2", allocs)
	}
}

// TestTenantTracedSteadyStateAllocs proves tenant accounting and trace
// tagging ride the warm path for free: with accounting enabled and the
// request tagged (WithTenant + WithTrace), the forced lifecycle span
// comes from the pool and the ledger records through atomics, so the
// prepacked warm sync Do stays within the same 2-alloc budget as the
// untagged path.
func TestTenantTracedSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	const count = 1024
	a := Pack(randBatch[float32](rng, count, 8, 8))
	b := Pack(randBatch[float32](rng, count, 8, 8))
	c := Pack(randBatch[float32](rng, count, 8, 8))
	a.Prepack()
	b.Prepack()
	eng := NewEngine()
	eng.SetTenants(map[string]TenantObjective{
		"rt": {Class: 5, Objective: 10 * time.Second, Target: 0.99},
	})

	ctx := context.Background()
	req := Request[float32]{Op: OpGEMM, Alpha: 1, Beta: 1, A: a, B: b, C: c}
	// Hoisted options: the variadic spread of an existing slice does not
	// allocate, so the measurement sees only the call's own cost.
	opts := []Option{WithEngine(eng), WithTenant("rt"), WithTrace("4bf92f3577b34da6a3ce929d0e0e4736")}
	call := func() {
		if err := Do(ctx, req, opts...); err != nil {
			t.Fatal(err)
		}
	}
	call() // warm: plan, packed images, span pool, tenant series

	before := eng.TenantStats()
	allocs := testing.AllocsPerRun(50, call)
	after := eng.TenantStats()

	if len(before) != 1 || len(after) != 1 || after[0].Requests-before[0].Requests < 50 {
		t.Errorf("tenant ledger did not record the warm calls: %+v -> %+v", before, after)
	}
	if after[0].DeadlineMisses != 0 {
		t.Errorf("warm tagged calls missed their 10s objective: %+v", after[0])
	}
	if allocs > 2 {
		t.Errorf("warm tagged GEMM allocates %.0f objects/call, want <= 2", allocs)
	}
}

// BenchmarkPrepackedSteadyState is BenchmarkSteadyStateAllocs with both
// operands prepacked: the pack phase is gone, only dispatch + kernels
// remain.
func BenchmarkPrepackedSteadyState(bm *testing.B) {
	rng := rand.New(rand.NewSource(34))
	const count = 4096
	a := Pack(randBatch[float32](rng, count, 8, 8))
	b := Pack(randBatch[float32](rng, count, 8, 8))
	c := Pack(randBatch[float32](rng, count, 8, 8))
	a.Prepack()
	b.Prepack()
	eng := NewEngine()
	if err := GEMMOn(eng, 1, NoTrans, NoTrans, float32(1), a, b, float32(1), c); err != nil {
		bm.Fatal(err)
	}
	bm.ReportAllocs()
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		if err := GEMMOn(eng, 1, NoTrans, NoTrans, float32(1), a, b, float32(1), c); err != nil {
			bm.Fatal(err)
		}
	}
}
