package iatf

import (
	"context"
	"fmt"

	"iatf/internal/engine"
)

// ErrQueueFull is returned by Submit (and Do with WithAsync) when the
// engine's bounded submission queue is at capacity — the backpressure
// signal under overload. Branch with errors.Is(err, iatf.ErrQueueFull).
var ErrQueueFull = engine.ErrQueueFull

// ErrQueueStarted is returned by SetQueueCapacity once the engine's
// dispatcher is live — the queue can only be sized before the first
// Submit. Branch with errors.Is(err, iatf.ErrQueueStarted).
var ErrQueueStarted = engine.ErrQueueStarted

// Op selects the routine of a Request.
type Op int

// The level-3 routines Do and Submit accept. (The factorizations keep
// their dedicated entry points: they return per-matrix info codes the
// error-only request API cannot carry.)
const (
	OpGEMM Op = iota
	OpTRSM
	OpTRMM
	OpSYRK
)

// Request describes one batched level-3 call as data: the routine, its
// mode flags and scalars, and the operands in BLAS argument order. Which
// fields are read depends on Op:
//
//	OpGEMM: TransA, TransB, Alpha, Beta, A, B, C  (C = α·op(A)·op(B) + β·C)
//	OpTRSM: Side, Uplo, TransA, Diag, Alpha, A, B (B overwritten with X)
//	OpTRMM: Side, Uplo, TransA, Diag, Alpha, A, B (B overwritten)
//	OpSYRK: Uplo, TransA, Alpha, Beta, A, C       (C = α·op(A)·op(A)ᵀ + β·C)
//
// A Request is a value: build it once and reuse it across calls.
type Request[T Scalar] struct {
	Op             Op
	TransA, TransB Trans
	Side           Side
	Uplo           Uplo
	Diag           Diag
	Alpha, Beta    T
	A, B, C        *Compact[T]
}

// callCfg is the resolved option set of one Do/Submit call.
type callCfg struct {
	workers  int
	priority int
	eng      *Engine
	set      *EngineSet
	async    bool
	sink     func(*Span)
	trace    string
	tenant   string
}

// Option configures one Do or Submit call. Options are plain values (not
// closures) so passing them never forces a heap allocation beyond the
// variadic slice itself.
type Option struct {
	workers    int
	hasWorkers bool
	priority   int
	hasPrio    bool
	eng        *Engine
	set        *EngineSet
	async      bool
	sink       func(*Span)
	trace      string
	tenant     string
}

// WithWorkers sets the worker split: n <= 0 means auto (one worker per
// GOMAXPROCS); the default is 1 (serial on the caller).
func WithWorkers(n int) Option { return Option{workers: n, hasWorkers: true} }

// WithEngine routes the call through a specific engine (its plan cache,
// submission queue and counters) instead of the process-wide default.
func WithEngine(e *Engine) Option { return Option{eng: e} }

// WithPriority sets the request's dispatch class for the async queue's
// deadline-ordered drain: when two bundles share the earliest context
// deadline (or neither carries one), the higher class executes first.
// The default class is 0; negative classes yield to it. Priority never
// changes results, shard routing or coalescing — only dispatch order —
// and is ignored on the synchronous path.
func WithPriority(class int) Option { return Option{priority: class, hasPrio: true} }

// WithAsync routes the call through the engine's async submission queue,
// where concurrent same-problem requests are coalesced into one fused
// dispatch. Do still blocks until the request completes (so concurrent
// Do(..., WithAsync()) callers form the dynamic batch); use Submit for
// the fire-now-wait-later form.
func WithAsync() Option { return Option{async: true} }

// WithSpanSink traces this one call: the request carries a lifecycle
// span (even when no engine-level sink is installed) and fn receives it
// when the request resolves — including rejection and cancellation
// outcomes. fn runs synchronously on the resolving goroutine and must
// copy the span if it retains it.
//
//	var got iatf.Span
//	err := iatf.Do(ctx, req, iatf.WithSpanSink(func(sp *iatf.Span) { got = *sp }))
func WithSpanSink(fn func(*Span)) Option { return Option{sink: fn} }

// WithTrace stamps the request's lifecycle span with an end-to-end
// correlation id (e.g. a W3C traceparent trace-id), so an access-log
// line at the serving tier and the engine span it caused share one id.
// A fused dispatch's parent span carries every traced rider's id.
// Observability-only: the id never affects routing, coalescing or
// results.
func WithTrace(id string) Option { return Option{trace: id} }

// WithTenant attributes the request to a tenant for per-tenant SLO
// accounting (Engine.SetTenants): the resolved request is classified
// into the tenant's rolling series — deadline hit/miss against the
// request's context deadline (or the tenant's configured objective),
// shed on queue-full, error otherwise. With accounting disabled the
// cost is one atomic load. Observability-only, like WithTrace.
func WithTenant(name string) Option { return Option{tenant: name} }

func resolveOpts(opts []Option) callCfg {
	cfg := callCfg{workers: 1}
	for _, o := range opts {
		if o.hasWorkers {
			cfg.workers = o.workers
		}
		if o.hasPrio {
			cfg.priority = o.priority
		}
		if o.eng != nil {
			cfg.eng = o.eng
		}
		if o.set != nil {
			cfg.set = o.set
		}
		if o.async {
			cfg.async = true
		}
		if o.sink != nil {
			cfg.sink = o.sink
		}
		if o.trace != "" {
			cfg.trace = o.trace
		}
		if o.tenant != "" {
			cfg.tenant = o.tenant
		}
	}
	if cfg.eng == nil {
		cfg.eng = DefaultEngine()
	}
	return cfg
}

// toDesc lowers a Request onto the engine's op descriptor and operand
// list. The operand array lives on the caller's stack: the warm
// synchronous path must not allocate.
func toDesc[T Scalar](req Request[T], workers int) (engine.OpDesc, [3]engine.Operand, int, error) {
	desc := engine.OpDesc{
		TransA: req.TransA, TransB: req.TransB,
		Side: req.Side, Uplo: req.Uplo, Diag: req.Diag,
		Alpha: scalarToComplex(req.Alpha), Beta: scalarToComplex(req.Beta),
		Workers: workers,
	}
	var ops [3]engine.Operand
	switch req.Op {
	case OpGEMM:
		desc.Kind = engine.OpGEMM
		ops[0], ops[1], ops[2] = operandOf(req.A), operandOf(req.B), operandOf(req.C)
		return desc, ops, 3, nil
	case OpTRSM, OpTRMM:
		desc.Kind = engine.OpTRSM
		if req.Op == OpTRMM {
			desc.Kind = engine.OpTRMM
		}
		ops[0], ops[1] = operandOf(req.A), operandOf(req.B)
		return desc, ops, 2, nil
	case OpSYRK:
		desc.Kind = engine.OpSYRK
		ops[0], ops[1] = operandOf(req.A), operandOf(req.C)
		return desc, ops, 2, nil
	}
	return desc, ops, 0, fmt.Errorf("iatf: unknown request op %d: %w", int(req.Op), ErrOperand)
}

// Do executes one request. By default it runs synchronously through the
// engine's dispatch path — the warm path costs the same two allocations
// as the classic entry points. With WithAsync it submits to the engine's
// queue and waits, so concurrent callers of the same problem are
// coalesced into one fused dispatch. ctx is honored in both forms: a
// context already done returns ctx.Err() without executing.
//
//	err := iatf.Do(ctx, iatf.Request[float32]{
//	    Op: iatf.OpGEMM, Alpha: 1, Beta: 1, A: a, B: b, C: c,
//	}, iatf.WithWorkers(0), iatf.WithAsync())
func Do[T Scalar](ctx context.Context, req Request[T], opts ...Option) error {
	cfg := resolveOpts(opts)
	if ctx == nil {
		ctx = context.Background()
	}
	if !cfg.async {
		if err := ctx.Err(); err != nil {
			return err
		}
		if cfg.set != nil {
			return doSetSync(cfg.set, &cfg, req)
		}
		if cfg.sink != nil || cfg.trace != "" || cfg.tenant != "" {
			return doSyncTagged(cfg.eng, &cfg, req)
		}
		return doSync(cfg.eng, cfg.workers, req)
	}
	var fut *Future
	var err error
	if cfg.set != nil {
		fut, err = submitSetSpanned(ctx, cfg.set, &cfg, req)
	} else {
		fut, err = submitSpanned(ctx, cfg.eng, &cfg, req)
	}
	if err != nil {
		return err
	}
	return fut.Wait(ctx)
}

// doSync is the shared synchronous path behind Do and the compatibility
// wrappers (GEMM/TRSM/... and their Parallel/On variants), kept free of
// option handling so the warm call stays allocation-minimal.
func doSync[T Scalar](e *Engine, workers int, req Request[T]) error {
	desc, ops, n, err := toDesc(req, workers)
	if err != nil {
		return err
	}
	return e.inner.Run(desc, ops[:n]...)
}

// doSyncTagged is doSync with per-call observability (WithSpanSink,
// WithTrace, WithTenant) — kept off the plain path so untagged warm
// calls stay allocation-minimal. The tagged path holds the same ≤2-alloc
// warm budget: trace/tenant ride the pooled span.
func doSyncTagged[T Scalar](e *Engine, cfg *callCfg, req Request[T]) error {
	desc, ops, n, err := toDesc(req, cfg.workers)
	if err != nil {
		return err
	}
	desc.Trace, desc.Origin = cfg.trace, cfg.tenant
	if cfg.sink == nil {
		return e.inner.Run(desc, ops[:n]...)
	}
	return e.inner.RunSpanned(desc, cfg.sink, ops[:n]...)
}

// Submit enqueues one request on the engine's submission queue and
// returns a Future resolving when it completes. The operands must not be
// mutated until then. If the queue is idle the request executes
// immediately on the caller (single-caller latency is unchanged);
// under concurrent load the dispatcher coalesces same-problem requests
// into fused dispatches. A full queue returns ErrQueueFull; a context
// already done returns ctx.Err().
func Submit[T Scalar](ctx context.Context, req Request[T], opts ...Option) (*Future, error) {
	cfg := resolveOpts(opts)
	if cfg.set != nil {
		return submitSetSpanned(ctx, cfg.set, &cfg, req)
	}
	return submitSpanned(ctx, cfg.eng, &cfg, req)
}

func submitSpanned[T Scalar](ctx context.Context, e *Engine, cfg *callCfg, req Request[T]) (*Future, error) {
	desc, ops, n, err := toDesc(req, cfg.workers)
	if err != nil {
		return nil, err
	}
	desc.Priority = cfg.priority
	desc.Trace, desc.Origin = cfg.trace, cfg.tenant
	fut, err := e.inner.SubmitSpanned(ctx, desc, cfg.sink, ops[:n]...)
	if err != nil {
		return nil, err
	}
	return &Future{inner: fut}, nil
}

// doSetSync routes a synchronous call through a sharded set: the
// problem identity picks the home shard. Same warm-path allocation
// budget as doSync — routing is hash arithmetic on the stack.
func doSetSync[T Scalar](s *EngineSet, cfg *callCfg, req Request[T]) error {
	desc, ops, n, err := toDesc(req, cfg.workers)
	if err != nil {
		return err
	}
	desc.Trace, desc.Origin = cfg.trace, cfg.tenant
	if cfg.sink != nil {
		return s.inner.RunSpanned(desc, cfg.sink, ops[:n]...)
	}
	return s.inner.Run(desc, ops[:n]...)
}

// submitSetSpanned is submitSpanned through a sharded set, with the
// set's sibling fallback on a full home queue.
func submitSetSpanned[T Scalar](ctx context.Context, s *EngineSet, cfg *callCfg, req Request[T]) (*Future, error) {
	desc, ops, n, err := toDesc(req, cfg.workers)
	if err != nil {
		return nil, err
	}
	desc.Priority = cfg.priority
	desc.Trace, desc.Origin = cfg.trace, cfg.tenant
	fut, err := s.inner.SubmitSpanned(ctx, desc, cfg.sink, ops[:n]...)
	if err != nil {
		return nil, err
	}
	return &Future{inner: fut}, nil
}

// Future is the completion handle of a submitted request.
type Future struct {
	inner *engine.Future
}

// Done returns a channel closed when the request has completed.
func (f *Future) Done() <-chan struct{} { return f.inner.Done() }

// Err blocks until the request completes and returns its outcome.
func (f *Future) Err() error { return f.inner.Err() }

// Wait blocks until the request completes or ctx is done, returning the
// request's error or ctx.Err(). Abandoning the wait does not cancel the
// request; the submission's own context governs execution.
func (f *Future) Wait(ctx context.Context) error { return f.inner.Wait(ctx) }
