// Covariance example: signal-processing and vision pipelines compute a
// small Gram/covariance matrix per window (patch, channel group, sensor
// block) and whiten the window with its Cholesky factor. Both steps are
// compact batched operations: SYRK for C = AᵀA and Cholesky + TRSM for
// the whitening transform.
//
// The demo builds thousands of feature windows, computes regularized
// covariance matrices with one batched SYRK, factors them with one
// batched Cholesky, whitens with one batched TRSM, and verifies that the
// whitened features have identity covariance.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"iatf"
)

const (
	windows  = 2048
	features = 6  // covariance is 6×6
	samples  = 24 // samples per window
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(17))

	// A: samples×features per window, correlated columns to make the
	// covariance non-trivial.
	a := iatf.NewBatch[float64](windows, samples, features)
	for w := 0; w < windows; w++ {
		base := make([]float64, samples)
		for s := range base {
			base[s] = rng.NormFloat64()
		}
		for f := 0; f < features; f++ {
			for s := 0; s < samples; s++ {
				a.Set(w, s, f, 0.5*base[s]+rng.NormFloat64())
			}
		}
	}

	// C = AᵀA/samples + λI, lower triangle, one batched SYRK.
	c := iatf.NewBatch[float64](windows, features, features)
	const lambda = 0.05
	for w := 0; w < windows; w++ {
		for f := 0; f < features; f++ {
			c.Set(w, f, f, lambda)
		}
	}
	ca, cc := iatf.Pack(a), iatf.Pack(c)
	if err := iatf.SYRK(iatf.Lower, iatf.Transpose, 1.0/samples, ca, 1.0, cc); err != nil {
		log.Fatal(err)
	}

	// Factor every covariance: C = L·Lᵀ.
	info, err := iatf.Cholesky(cc)
	if err != nil {
		log.Fatal(err)
	}
	for w, code := range info {
		if code != 0 {
			log.Fatalf("window %d covariance not SPD at column %d", w, code-1)
		}
	}

	// Whiten: W = A·L⁻ᵀ, i.e. solve W·Lᵀ = A (Right, Lower, Transposed).
	cw := iatf.Pack(a)
	if err := iatf.TRSM(iatf.Right, iatf.Lower, iatf.Transpose, iatf.NonUnit, 1.0, cc, cw); err != nil {
		log.Fatal(err)
	}

	// Verification 1: L·Lᵀ must reconstruct the covariance exactly.
	lfac := cc.Unpack() // lower triangle holds L after Cholesky
	orig := iatf.NewBatch[float64](windows, features, features)
	for w := 0; w < windows; w++ {
		for f := 0; f < features; f++ {
			orig.Set(w, f, f, lambda)
		}
	}
	co := iatf.Pack(orig)
	if err := iatf.SYRK(iatf.Lower, iatf.Transpose, 1.0/samples, ca, 1.0, co); err != nil {
		log.Fatal(err)
	}
	coB := co.Unpack()
	maxRecon := 0.0
	for w := 0; w < windows; w++ {
		for i := 0; i < features; i++ {
			for j := 0; j <= i; j++ {
				sum := 0.0
				for k := 0; k <= j; k++ {
					sum += lfac.At(w, i, k) * lfac.At(w, j, k)
				}
				if d := math.Abs(sum - coB.At(w, i, j)); d > maxRecon {
					maxRecon = d
				}
			}
		}
	}

	// Verification 2: the whitened features have identity covariance up
	// to the λ regularization — another batched SYRK.
	ccov := iatf.Pack(iatf.NewBatch[float64](windows, features, features))
	if err := iatf.SYRK(iatf.Lower, iatf.Transpose, 1.0/samples, cw, 0.0, ccov); err != nil {
		log.Fatal(err)
	}
	covOut := ccov.Unpack()
	maxOff := 0.0
	for w := 0; w < windows; w++ {
		for i := 0; i < features; i++ {
			for j := 0; j < i; j++ { // strict lower: should be ≈ 0
				if d := math.Abs(covOut.At(w, i, j)); d > maxOff {
					maxOff = d
				}
			}
		}
	}

	fmt.Printf("windows: %d, covariance %dx%d from %d samples\n", windows, features, features, samples)
	fmt.Printf("L·Lᵀ reconstruction error: %.3e\n", maxRecon)
	fmt.Printf("worst whitened off-diagonal correlation: %.3e\n", maxOff)
	// The whitened covariance is exactly I − λ·C⁻¹ (the regularizer is
	// not part of AᵀA), so off-diagonals are bounded by λ‖C⁻¹‖, not λ.
	if maxRecon > 1e-10 || maxOff > 0.5 {
		log.Fatal("whitening verification failed")
	}
	fmt.Println("OK — SYRK + Cholesky + TRSM, each one batched call")
}
