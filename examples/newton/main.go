// Newton example: solving many small independent nonlinear systems —
// chemical equilibrium cells, per-element constitutive laws, implicit
// time integrators — requires a small dense linear solve (J·dx = -F) per
// system per iteration. With thousands of systems of identical size this
// is exactly the compact batched LU + solve.
//
// The demo solves, for every cell k with parameter c_k ∈ (1, 2):
//
//	x² + y² = c_k²      (a circle of radius c_k)
//	x·y     = c_k²/4    (a hyperbola)
//
// by Newton's method with the batched LU factorization of all Jacobians
// per iteration, and verifies every residual.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"iatf"
)

const (
	systems = 4096
	dim     = 2
)

func main() {
	log.SetFlags(0)
	useChain := flag.Bool("chain", false,
		"solve each iteration as one iatf.Chain (LU + two TRSMs) instead of separate LU + LUSolve calls")
	flag.Parse()
	rng := rand.New(rand.NewSource(5))

	c := make([]float64, systems)
	x := make([]float64, systems)
	y := make([]float64, systems)
	for k := range c {
		c[k] = 1 + rng.Float64()
		// Starting point away from the solution but in the right quadrant.
		x[k] = 1.5 * c[k]
		y[k] = 0.3 * c[k]
	}

	residual := func(k int) (f1, f2 float64) {
		f1 = x[k]*x[k] + y[k]*y[k] - c[k]*c[k]
		f2 = x[k]*y[k] - c[k]*c[k]/4
		return
	}

	var iters int
	var solveTime time.Duration
	for iters = 1; iters <= 50; iters++ {
		// Assemble all Jacobians and right-hand sides.
		jac := iatf.NewBatch[float64](systems, dim, dim)
		rhs := iatf.NewBatch[float64](systems, dim, 1)
		maxRes := 0.0
		for k := 0; k < systems; k++ {
			f1, f2 := residual(k)
			if r := math.Max(math.Abs(f1), math.Abs(f2)); r > maxRes {
				maxRes = r
			}
			jac.Set(k, 0, 0, 2*x[k])
			jac.Set(k, 0, 1, 2*y[k])
			jac.Set(k, 1, 0, y[k])
			jac.Set(k, 1, 1, x[k])
			rhs.Set(k, 0, 0, -f1)
			rhs.Set(k, 1, 0, -f2)
		}
		if maxRes < 1e-12 {
			break
		}
		// One batched factorization + solve for every system at once.
		cj, cr := iatf.Pack(jac), iatf.Pack(rhs)
		tSolve := time.Now()
		if *useChain {
			// The whole iteration as one chain: the chain plan (stage
			// analysis, per-stage execution plans, handoff decisions) is
			// resolved on the first iteration and replayed from cache on
			// every later one.
			err := iatf.Chain(context.Background(), []iatf.Stage[float64]{
				iatf.LUStage(cj),
				iatf.TRSMStage(iatf.Left, iatf.Lower, iatf.NoTrans, iatf.Unit, 1, cj, cr),
				iatf.TRSMStage(iatf.Left, iatf.Upper, iatf.NoTrans, iatf.NonUnit, 1, cj, cr),
			})
			var ce *iatf.ChainError
			if errors.As(err, &ce) && errors.Is(err, iatf.ErrSingular) {
				for k, code := range ce.Info {
					if code != 0 {
						log.Fatalf("system %d: singular Jacobian at column %d", k, code-1)
					}
				}
			}
			if err != nil {
				log.Fatal(err)
			}
		} else {
			info, err := iatf.LU(cj)
			if err != nil {
				log.Fatal(err)
			}
			for k, code := range info {
				if code != 0 {
					log.Fatalf("system %d: singular Jacobian at column %d", k, code-1)
				}
			}
			if err := iatf.LUSolve(cj, cr); err != nil {
				log.Fatal(err)
			}
		}
		solveTime += time.Since(tSolve)
		dx := cr.Unpack()
		for k := 0; k < systems; k++ {
			x[k] += dx.At(k, 0, 0)
			y[k] += dx.At(k, 1, 0)
		}
	}

	worst := 0.0
	for k := 0; k < systems; k++ {
		f1, f2 := residual(k)
		worst = math.Max(worst, math.Max(math.Abs(f1), math.Abs(f2)))
	}
	fmt.Printf("Newton on %d independent %dx%d systems\n", systems, dim, dim)
	fmt.Printf("converged in %d iterations, worst residual %.3e\n", iters, worst)
	if worst > 1e-10 {
		log.Fatal("did not converge")
	}
	mode := "separate LU + LUSolve calls"
	if *useChain {
		mode = "one iatf.Chain (LU + 2 TRSMs)"
	}
	fmt.Printf("solve wallclock: %v total, %v per iteration (%s)\n",
		solveTime.Round(time.Microsecond), (solveTime / time.Duration(iters)).Round(time.Microsecond), mode)
	fmt.Println("OK — every iteration was one batched factor + solve")
}
