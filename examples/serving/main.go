// Serving: the SLO story of the serving tier, measured.
//
// Phase 1 — deadline-ordered dispatch. A mixed workload (90% heavy
// loose-deadline requests, 10% small tight-deadline requests arriving
// LAST in each burst) runs twice through the async queue: once with the
// FIFO drain (EDF off, no batch window — the pre-serving behavior) and
// once with EDF + a max-batch-window. Under FIFO the tight request
// executes after every heavy bundle that merely arrived earlier and
// blows its deadline; under EDF the dispatcher holds the drain open so
// the burst lands in one batch, orders it by deadline, and the tight
// request runs first. The example prints the SLO report — per-class
// p50/p99 against the deadline and the miss rate — for both modes.
//
// Phase 2 — admission control over HTTP. The same engine behind the
// internal/serve tier, hammered with concurrent tight-deadline posts:
// requests whose predicted queue wait exceeds their deadline are shed
// with 429 + Retry-After instead of dying in the queue, and the shed
// rate is reported from the server's own counters.
//
// Phase 3 — per-tenant SLO accounting. Two tenant classes share one
// server: "rt" (class 5, 25ms objective, 99% target) posting small
// traceparent-tagged requests and "batch" (class -1, no objective)
// posting heavy ones. Every response echoes the request's trace id on
// X-IATF-Trace, the structured access log joins each HTTP line with its
// engine span (predicted vs actual queue wait, per-phase durations),
// and the per-tenant ledger — requests, sheds, deadline hits vs misses,
// latency quantiles, SLO burn rate — is printed from the server's
// /tenants view.
//
// The workload self-calibrates: the heavy shape is sized so one heavy
// dispatch costs roughly 0.5–2ms on the host, keeping all phases
// meaningful from laptops to servers.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"iatf"
	"iatf/internal/serve"
)

const (
	rounds     = 30 // bursts per mode; tight p99 over 30 samples ≈ max
	heavyPerRt = 16 // heavy loose-deadline bundles per burst
	smallN     = 4  // tight requests: 64 4×4 matrices — microseconds of work
	smallCount = 64
	window     = 2 * time.Millisecond
)

func mkBatch(rng *rand.Rand, count, n int) *iatf.Compact[float32] {
	b := iatf.NewBatch[float32](count, n, n)
	for j, d := 0, b.Data(); j < len(d); j++ {
		d[j] = rng.Float32()
	}
	return iatf.Pack(b)
}

// calibrate sizes the heavy GEMM so one dispatch costs ~0.5–2ms here.
func calibrate(rng *rand.Rand) (count int, th time.Duration) {
	eng := iatf.NewEngine()
	const n = 8
	count = 1024
	for {
		a, b, c := mkBatch(rng, count, n), mkBatch(rng, count, n), mkBatch(rng, count, n)
		req := iatf.Request[float32]{Op: iatf.OpGEMM, Alpha: 1, Beta: 1, A: a, B: b, C: c}
		// Warm the plan cache, then time the median of three.
		if err := iatf.Do(context.Background(), req, iatf.WithEngine(eng)); err != nil {
			log.Fatal(err)
		}
		var ts []time.Duration
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			if err := iatf.Do(context.Background(), req, iatf.WithEngine(eng)); err != nil {
				log.Fatal(err)
			}
			ts = append(ts, time.Since(t0))
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		th = ts[1]
		switch {
		case th < 800*time.Microsecond && count < 1<<20:
			count *= 2
		case th > 2*time.Millisecond && count > 64:
			count /= 2
		default:
			return count, th
		}
	}
}

func quantile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)-1))
	return s[i]
}

// burstTrial runs `rounds` bursts through one engine configuration and
// returns the tight- and loose-class latencies (submit → resolved).
func burstTrial(rng *rand.Rand, edf bool, heavyCount int, tightDL time.Duration) (tight, loose []time.Duration, misses int) {
	eng := iatf.NewEngine()
	eng.SetEDF(edf)
	if edf {
		eng.SetBatchWindow(window)
	} else {
		eng.SetBatchWindow(0)
	}

	const n = 8
	// Distinct alpha per heavy client: same shape, different scalar — each
	// is its own bundle, so a burst queues heavyPerRt independent heavy
	// dispatches for the EDF pass (or FIFO) to order.
	type client struct {
		req iatf.Request[float32]
	}
	heavy := make([]client, heavyPerRt)
	for i := range heavy {
		heavy[i] = client{req: iatf.Request[float32]{
			Op: iatf.OpGEMM, Alpha: 1 + float32(i)/1000, Beta: 1,
			A: mkBatch(rng, heavyCount, n), B: mkBatch(rng, heavyCount, n), C: mkBatch(rng, heavyCount, n),
		}}
	}
	primer := iatf.Request[float32]{
		Op: iatf.OpGEMM, Alpha: 0.5, Beta: 1,
		A: mkBatch(rng, heavyCount, n), B: mkBatch(rng, heavyCount, n), C: mkBatch(rng, heavyCount, n),
	}
	tq := iatf.Request[float32]{
		Op: iatf.OpGEMM, Alpha: 1, Beta: 1,
		A: mkBatch(rng, smallCount, smallN), B: mkBatch(rng, smallCount, smallN), C: mkBatch(rng, smallCount, smallN),
	}

	for r := 0; r < rounds; r++ {
		// Prime: one inline heavy dispatch occupies the engine so the burst
		// behind it genuinely queues.
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := iatf.Do(context.Background(), primer, iatf.WithEngine(eng), iatf.WithAsync()); err != nil {
				log.Fatal(err)
			}
		}()
		time.Sleep(100 * time.Microsecond)

		// The burst: heavy loose requests first...
		type timed struct {
			fut   *iatf.Future
			start time.Time
		}
		looseT := make([]timed, heavyPerRt)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		for i := range heavy {
			looseT[i].start = time.Now()
			fut, err := iatf.Submit(ctx, heavy[i].req, iatf.WithEngine(eng))
			if err != nil {
				log.Fatal(err)
			}
			looseT[i].fut = fut
		}
		// ...then, last to arrive, the tight-deadline request.
		time.Sleep(200 * time.Microsecond)
		tctx, tcancel := context.WithTimeout(context.Background(), tightDL)
		tStart := time.Now()
		tfut, err := iatf.Submit(tctx, tq, iatf.WithEngine(eng), iatf.WithPriority(5))
		if err != nil {
			log.Fatal(err)
		}

		if err := tfut.Err(); err != nil {
			misses++ // expired in queue: an SLO miss by definition
			tight = append(tight, tightDL+time.Millisecond)
		} else {
			lat := time.Since(tStart)
			tight = append(tight, lat)
			if lat > tightDL {
				misses++
			}
		}
		for i := range looseT {
			if err := looseT[i].fut.Err(); err != nil {
				log.Fatal(err)
			}
			loose = append(loose, time.Since(looseT[i].start))
		}
		wg.Wait()
		tcancel()
		cancel()
	}
	return tight, loose, misses
}

func phase1(rng *rand.Rand) {
	heavyCount, th := calibrate(rng)
	// The tight deadline sits between the EDF outcome (~window + small
	// compute, plus this host's timer jitter) and the FIFO outcome
	// (~heavyPerRt heavy dispatches): 40% of the FIFO backlog plus two
	// windows of slack.
	tightDL := time.Duration(heavyPerRt)*th*2/5 + 2*window
	fmt.Printf("calibrated heavy shape: %d 8×8 f32 matrices ≈ %v/dispatch\n", heavyCount, th.Round(10*time.Microsecond))
	fmt.Printf("burst: %d heavy loose requests + 1 tight (deadline %v, arrives last), %d rounds\n\n",
		heavyPerRt, tightDL.Round(time.Millisecond), rounds)

	type result struct {
		mode         string
		tight, loose []time.Duration
		misses       int
	}
	var results []result
	for _, mode := range []struct {
		name string
		edf  bool
	}{{"FIFO (EDF off, window 0)", false}, {fmt.Sprintf("EDF + %v window", window), true}} {
		tight, loose, misses := burstTrial(rng, mode.edf, heavyCount, tightDL)
		results = append(results, result{mode.name, tight, loose, misses})
	}

	fmt.Printf("%-26s %12s %12s %12s %12s %8s\n", "mode", "tight p50", "tight p99", "loose p50", "loose p99", "miss")
	for _, r := range results {
		fmt.Printf("%-26s %12v %12v %12v %12v %7.0f%%\n", r.mode,
			quantile(r.tight, 0.50).Round(10*time.Microsecond),
			quantile(r.tight, 0.99).Round(10*time.Microsecond),
			quantile(r.loose, 0.50).Round(10*time.Microsecond),
			quantile(r.loose, 0.99).Round(10*time.Microsecond),
			100*float64(r.misses)/float64(rounds))
	}
	fmt.Printf("\ntight deadline %v: FIFO p99 %v (missed %d/%d), EDF p99 %v (missed %d/%d)\n\n",
		tightDL.Round(time.Millisecond),
		quantile(results[0].tight, 0.99).Round(10*time.Microsecond), results[0].misses, rounds,
		quantile(results[1].tight, 0.99).Round(10*time.Microsecond), results[1].misses, rounds)
}

func phase2(rng *rand.Rand) {
	heavyCount, th := calibrate(rng)
	eng := iatf.NewEngine()
	eng.SetBatchWindow(window)
	srv := serve.New(serve.Config{Engine: eng})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	url := "http://" + ln.Addr().String() + "/v1/do"

	// Wire bodies: distinct alpha per worker defeats coalescing, so every
	// admitted request is a full heavy dispatch and the queue-wait
	// histogram sees real backlog.
	const n = 8
	data := func() []float64 {
		d := make([]float64, heavyCount*n*n)
		for i := range d {
			d[i] = rng.Float64()
		}
		return d
	}
	a, b, c := data(), data(), data()
	body := func(alpha float64, dlMs int64) []byte {
		j, _ := json.Marshal(serve.DoRequest{
			Op: "gemm", DType: "f32", Alpha: alpha, Beta: 1, Count: heavyCount,
			A:          &serve.WireOperand{Rows: n, Cols: n, Data: a},
			B:          &serve.WireOperand{Rows: n, Cols: n, Data: b},
			C:          &serve.WireOperand{Rows: n, Cols: n, Data: c},
			DeadlineMs: dlMs,
		})
		return j
	}

	// Main-traffic deadline ≈ batch window + three heavy dispatches:
	// achievable while the queue is shallow, missed once backlog grows.
	// Every fourth post asks for a 1ms deadline — tighter than the batch
	// window itself, so the predicted wait (floored at the window) can
	// never be met and admission control sheds it up-front with a 429.
	dlMs := int64((window+3*th)/time.Millisecond) + 1
	const workers, perWorker = 16, 8
	var ok, shed, tightShed, timedOut, other int64
	var mu sync.Mutex
	var retryAfter string
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				dl, tight := dlMs, false
				if i%4 == 3 {
					dl, tight = 1, true
				}
				resp, err := http.Post(url, "application/json",
					bytes.NewReader(body(1+float64(w*perWorker+i)/1e4, dl)))
				if err != nil {
					log.Fatal(err)
				}
				mu.Lock()
				switch resp.StatusCode {
				case http.StatusOK:
					ok++
				case http.StatusTooManyRequests:
					shed++
					if tight {
						tightShed++
					}
					if ra := resp.Header.Get("Retry-After"); ra != "" {
						retryAfter = ra
					}
				case http.StatusGatewayTimeout:
					timedOut++
				default:
					other++
				}
				mu.Unlock()
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()

	st := srv.Stats()
	total := int64(workers * perWorker)
	fmt.Printf("HTTP overload: %d workers × %d posts, deadline %dms (every 4th: 1ms), heavy %d-matrix GEMMs\n",
		workers, perWorker, dlMs, heavyCount)
	fmt.Printf("  200 OK: %d   429 shed: %d (%.0f%%, Retry-After %ss; %d of them sub-window 1ms probes)   504: %d   other: %d\n",
		ok, shed, 100*float64(shed)/float64(total), retryAfter, tightShed, timedOut, other)
	fmt.Printf("  server counters: admitted %d, done %d, shed %d, queue-full %d, expired %d\n",
		st.Admitted, st.Done, st.Shed, st.QueueFull, st.Expired)
	fmt.Printf("  queue: depth HW %d, wait p99 %v, window %v\n",
		st.Queue.DepthHighWater, st.Queue.Wait.P99.Round(10*time.Microsecond), st.Queue.Window)
}

// phase3 runs two tenant classes against one server and reports the
// per-tenant SLO ledger plus the trace/access-log join.
func phase3(rng *rand.Rand) {
	heavyCount, th := calibrate(rng)
	eng := iatf.NewEngine()
	eng.SetBatchWindow(window)
	var accessLog bytes.Buffer
	srv := serve.New(serve.Config{
		Engine: eng,
		Tenants: map[string]iatf.TenantObjective{
			"rt":    {Class: 5, Objective: 25 * time.Millisecond, Target: 0.99},
			"batch": {Class: -1},
		},
		AccessLog: &accessLog,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	url := "http://" + ln.Addr().String() + "/v1/do"

	const n = 8
	data := func(count, n int) []float64 {
		d := make([]float64, count*n*n)
		for i := range d {
			d[i] = rng.Float64()
		}
		return d
	}
	mkBody := func(count, n int, alpha float64, dlMs int64) []byte {
		j, _ := json.Marshal(serve.DoRequest{
			Op: "gemm", DType: "f32", Alpha: alpha, Beta: 1, Count: count,
			A:          &serve.WireOperand{Rows: n, Cols: n, Data: data(count, n)},
			B:          &serve.WireOperand{Rows: n, Cols: n, Data: data(count, n)},
			C:          &serve.WireOperand{Rows: n, Cols: n, Data: data(count, n)},
			DeadlineMs: dlMs,
		})
		return j
	}
	post := func(body []byte, tenant, traceID string) (int, string) {
		req, _ := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-IATF-Tenant", tenant)
		if traceID != "" {
			req.Header.Set("traceparent", "00-"+traceID+"-0000000000000001-01")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("X-IATF-Trace")
	}

	// batch floods heavy no-deadline work; rt interleaves small
	// traceparent-tagged posts with a 25ms deadline. Distinct alphas
	// defeat coalescing so the batch flood builds real backlog.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				post(mkBody(heavyCount, n, 1+float64(w*8+i)/1e4, 0), "batch", "")
			}
		}(w)
	}
	sentTrace := fmt.Sprintf("%032x", 0xfeed)
	echoed := ""
	for i := 0; i < 24; i++ {
		tid := ""
		if i == 0 {
			tid = sentTrace
		}
		_, echo := post(mkBody(smallCount, smallN, 1+float64(i)/1e3, 25), "rt", tid)
		if i == 0 {
			echoed = echo
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()

	fmt.Printf("tenant workload: 48 heavy batch posts (no deadline) + 24 small rt posts (25ms deadline), heavy ≈ %v/dispatch\n",
		th.Round(10*time.Microsecond))
	fmt.Printf("traceparent 00-%s-... echoed as X-IATF-Trace: %s (match: %v)\n",
		sentTrace, echoed, echoed == sentTrace)

	fmt.Printf("%-8s %5s %10s %8s %5s %6s %6s %10s %6s\n",
		"tenant", "class", "objective", "requests", "sheds", "hits", "misses", "p99", "burn")
	for _, t := range srv.TenantStats() {
		obj := "-"
		if t.Objective > 0 {
			obj = t.Objective.String()
		}
		fmt.Printf("%-8s %5d %10s %8d %5d %6d %6d %10v %6.2f\n",
			t.Name, t.Class, obj, t.Requests, t.Sheds,
			t.DeadlineHits, t.DeadlineMisses, time.Duration(t.Latency.P99), t.BurnRate)
	}

	// The access log carries one JSON line per request, joined with its
	// engine span; show the line for the traceparent-tagged rt post.
	for _, line := range bytes.Split(accessLog.Bytes(), []byte("\n")) {
		if bytes.Contains(line, []byte(sentTrace)) {
			fmt.Printf("access-log line for that trace:\n  %s\n", line)
			break
		}
	}
}

func main() {
	log.SetFlags(0)
	runtime.GOMAXPROCS(max(runtime.GOMAXPROCS(0), 4))
	rng := rand.New(rand.NewSource(7))

	fmt.Println("== Phase 1: deadline-ordered dispatch (direct Submit) ==")
	phase1(rng)
	fmt.Println("== Phase 2: admission control over HTTP ==")
	phase2(rng)
	fmt.Println()
	fmt.Println("== Phase 3: per-tenant SLO accounting ==")
	phase3(rng)
}
