// Serving: the async submission front-end under concurrent load. Eight
// submitter goroutines push same-shape batched GEMMs through
// Do(..., WithAsync()); the engine's dispatcher coalesces whatever
// accumulates while the previous dispatch runs into ONE fused dispatch
// (compact batches concatenate at interleave-group granularity, so
// fused results are bit-identical to serial calls). The example then
// shows a deadline'd request and prints the queue counters.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"iatf"
)

func main() {
	log.SetFlags(0)
	const (
		submitters = 8
		iters      = 32
		count      = 2048
		n          = 8
	)
	// Let the submitters' threads genuinely interleave even on one CPU.
	runtime.GOMAXPROCS(max(runtime.GOMAXPROCS(0), submitters))
	rng := rand.New(rand.NewSource(7))
	eng := iatf.NewEngine()

	// Each submitter owns private operands of the same problem shape —
	// the one-model-many-clients serving pattern.
	type client struct{ a, b, c *iatf.Compact[float32] }
	clients := make([]client, submitters)
	for i := range clients {
		mk := func() *iatf.Compact[float32] {
			b := iatf.NewBatch[float32](count, n, n)
			for j, d := 0, b.Data(); j < len(d); j++ {
				d[j] = rng.Float32()
			}
			return iatf.Pack(b)
		}
		clients[i] = client{a: mk(), b: mk(), c: mk()}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := range clients {
		wg.Add(1)
		go func(cl client) {
			defer wg.Done()
			req := iatf.Request[float32]{
				Op: iatf.OpGEMM, Alpha: 1, Beta: 1, A: cl.a, B: cl.b, C: cl.c,
			}
			for k := 0; k < iters; k++ {
				if err := iatf.Do(context.Background(), req,
					iatf.WithEngine(eng), iatf.WithAsync()); err != nil {
					log.Fatal(err)
				}
			}
		}(clients[i])
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Deadlines compose with submission: a context that expires while the
	// request waits resolves with ctx.Err() without executing.
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	err := iatf.Do(ctx, iatf.Request[float32]{
		Op: iatf.OpGEMM, Alpha: 1, Beta: 1,
		A: clients[0].a, B: clients[0].b, C: clients[0].c,
	}, iatf.WithEngine(eng), iatf.WithAsync())
	fmt.Printf("deadline'd request: %v (timed out: %v)\n",
		err, errors.Is(err, context.DeadlineExceeded))

	// Submit is the fire-now-wait-later form: a Future per request.
	fut, err := iatf.Submit(context.Background(), iatf.Request[float32]{
		Op: iatf.OpGEMM, Alpha: 1, Beta: 1,
		A: clients[0].a, B: clients[0].b, C: clients[0].c,
	}, iatf.WithEngine(eng))
	if err != nil {
		log.Fatal(err)
	}
	if err := fut.Wait(context.Background()); err != nil {
		log.Fatal(err)
	}

	q := eng.Stats().Queue
	fmt.Printf("%d submitters × %d requests (%d matrices each) in %v\n",
		submitters, iters, count, elapsed.Round(time.Millisecond))
	fmt.Printf("queue: submitted %d (inline %d), dispatches %d\n",
		q.Submitted, q.Inline, q.Dispatches)
	fmt.Printf("coalesced %d requests into fused dispatches (largest bundle: %d)\n",
		q.Coalesced, q.MaxFused)
	fmt.Printf("cancelled %d, rejected %d, capacity %d\n",
		q.Cancelled, q.Rejected, q.Capacity)
}
