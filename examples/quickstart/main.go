// Quickstart: multiply a large group of fixed-size small matrices with the
// compact batched GEMM and verify the result against a naive per-matrix
// loop, comparing wall-clock time — the core workflow of the library.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"iatf"
)

func main() {
	log.SetFlags(0)
	const (
		count = 8192
		n     = 8 // 8×8 matrices
	)
	rng := rand.New(rand.NewSource(42))

	// Build three conventional batches: C = A·B + C over every matrix.
	a := iatf.NewBatch[float32](count, n, n)
	b := iatf.NewBatch[float32](count, n, n)
	c := iatf.NewBatch[float32](count, n, n)
	fill := func(batch *iatf.Batch[float32]) {
		d := batch.Data()
		for i := range d {
			d[i] = rng.Float32()
		}
	}
	fill(a)
	fill(b)
	fill(c)

	// Naive reference: triple loop per matrix.
	naive := make([]float32, len(c.Data()))
	copy(naive, c.Data())
	t0 := time.Now()
	for m := 0; m < count; m++ {
		base := m * n * n
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				sum := float32(0)
				for k := 0; k < n; k++ {
					sum += a.Data()[base+k*n+i] * b.Data()[base+j*n+k]
				}
				naive[base+j*n+i] += sum
			}
		}
	}
	naiveTime := time.Since(t0)

	// Compact batched GEMM: pack once, compute, unpack.
	t0 = time.Now()
	ca, cb, cc := iatf.Pack(a), iatf.Pack(b), iatf.Pack(c)
	packTime := time.Since(t0)
	t0 = time.Now()
	if err := iatf.GEMM(iatf.NoTrans, iatf.NoTrans, float32(1), ca, cb, float32(1), cc); err != nil {
		log.Fatal(err)
	}
	gemmTime := time.Since(t0)
	result := cc.Unpack()

	// Verify.
	maxDiff := 0.0
	for i, v := range result.Data() {
		if d := math.Abs(float64(v - naive[i])); d > maxDiff {
			maxDiff = d
		}
	}
	flops := 2.0 * float64(count) * n * n * n
	fmt.Printf("batch: %d matrices of %dx%d float32\n", count, n, n)
	fmt.Printf("naive loop:     %10v  (%6.2f GFLOP/s)\n", naiveTime, flops/naiveTime.Seconds()/1e9)
	fmt.Printf("compact GEMM:   %10v  (%6.2f GFLOP/s, + %v one-time packing)\n",
		gemmTime, flops/gemmTime.Seconds()/1e9, packTime)
	fmt.Printf("max |diff|:     %.3g\n", maxDiff)
	if maxDiff > 1e-3 {
		log.Fatal("verification FAILED")
	}
	fmt.Println("verification OK")
}
