// Block-Jacobi example: preconditioned iterative solvers factor the
// diagonal blocks of a large sparse system once and then apply
// block-local triangular solves every iteration — a large group of
// fixed-size small TRSMs, one of the paper's PDE-simulation motivations.
//
// The demo builds a block-tridiagonal SPD system (a 1-D Laplacian with
// b×b blocks), factors every diagonal block at once with the compact
// batched Cholesky, and runs block-Jacobi iterations where the
// preconditioner application is one compact batched CholeskySolve (two
// TRSMs: forward with L, backward with Lᵀ) across all blocks.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"iatf"
)

const (
	blockSize = 5
	nBlocks   = 2048
	n         = blockSize * nBlocks
)

func main() {
	log.SetFlags(0)
	useChain := flag.Bool("chain", false,
		"apply the preconditioner as one iatf.Chain (two TRSM stages) instead of CholeskySolve")
	flag.Parse()
	rng := rand.New(rand.NewSource(7))

	// System: tridiagonal Laplacian scaled so diagonal blocks dominate.
	diag := func(i, j int) float64 {
		switch {
		case i == j:
			return 4
		case i-j == 1 || j-i == 1:
			return -1
		}
		return 0
	}
	offdiag := -0.5 // coupling between neighbouring blocks (scalar band)

	// Right-hand side and unknown.
	bvec := make([]float64, n)
	for i := range bvec {
		bvec[i] = rng.Float64()
	}
	x := make([]float64, n)

	// Factor every diagonal block at once: D = L·Lᵀ via the compact
	// batched Cholesky (each block is perturbed slightly so the batch is
	// genuinely heterogeneous).
	lb := iatf.NewBatch[float64](nBlocks, blockSize, blockSize)
	perturb := make([]float64, nBlocks)
	for e := 0; e < nBlocks; e++ {
		perturb[e] = 0.1 * rng.Float64()
		for i := 0; i < blockSize; i++ {
			for j := 0; j < blockSize; j++ {
				lb.Set(e, i, j, diag(i, j))
			}
			lb.Set(e, i, i, lb.At(e, i, i)+perturb[e])
		}
	}
	cl := iatf.Pack(lb)
	info, err := iatf.Cholesky(cl)
	if err != nil {
		log.Fatal(err)
	}
	for e, code := range info {
		if code != 0 {
			log.Fatalf("block %d not SPD (column %d)", e, code-1)
		}
	}

	// matvec of the full system.
	matvec := func(v []float64) []float64 {
		out := make([]float64, n)
		for e := 0; e < nBlocks; e++ {
			for i := 0; i < blockSize; i++ {
				gi := e*blockSize + i
				sum := perturb[e] * v[gi]
				for j := 0; j < blockSize; j++ {
					sum += diag(i, j) * v[e*blockSize+j]
				}
				if gi > 0 {
					sum += offdiag * v[gi-1]
				}
				if gi < n-1 {
					sum += offdiag * v[gi+1]
				}
				out[gi] = sum
			}
		}
		return out
	}

	// Preconditioner: z = D⁻¹ r via the batched Cholesky solve — either
	// two separate TRSM calls (CholeskySolve) or one chain. The chain
	// recognizes L as chain-invariant (read by both stages, written by
	// neither) and auto-prepacks its triangle image, so every iteration
	// after the first skips packing the factors entirely.
	var precondTime time.Duration
	precond := func(r []float64) []float64 {
		rb := iatf.NewBatch[float64](nBlocks, blockSize, 1)
		copy(rb.Data(), r)
		cr := iatf.Pack(rb)
		t0 := time.Now()
		if *useChain {
			err := iatf.Chain(context.Background(), []iatf.Stage[float64]{
				iatf.TRSMStage(iatf.Left, iatf.Lower, iatf.NoTrans, iatf.NonUnit, 1, cl, cr),
				iatf.TRSMStage(iatf.Left, iatf.Lower, iatf.Transpose, iatf.NonUnit, 1, cl, cr),
			})
			if err != nil {
				log.Fatal(err)
			}
		} else if err := iatf.CholeskySolve(cl, cr); err != nil {
			log.Fatal(err)
		}
		precondTime += time.Since(t0)
		return cr.Unpack().Data()
	}

	norm := func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x * x
		}
		return math.Sqrt(s)
	}

	// Preconditioned Richardson iteration: x += D⁻¹(b - Ax).
	res0 := norm(bvec)
	var iters int
	for iters = 1; iters <= 200; iters++ {
		ax := matvec(x)
		r := make([]float64, n)
		for i := range r {
			r[i] = bvec[i] - ax[i]
		}
		if norm(r) < 1e-10*res0 {
			break
		}
		z := precond(r)
		for i := range x {
			x[i] += z[i]
		}
	}

	ax := matvec(x)
	r := make([]float64, n)
	for i := range r {
		r[i] = bvec[i] - ax[i]
	}
	rel := norm(r) / res0
	fmt.Printf("block-Jacobi solve: %d unknowns in %d blocks of %d\n", n, nBlocks, blockSize)
	fmt.Printf("converged in %d iterations, relative residual %.3e\n", iters, rel)
	if rel > 1e-8 {
		log.Fatal("did not converge")
	}
	mode := "CholeskySolve (two TRSM calls)"
	if *useChain {
		mode = "one iatf.Chain (two TRSM stages)"
	}
	fmt.Printf("preconditioner wallclock: %v total, %v per iteration (%s)\n",
		precondTime.Round(time.Microsecond), (precondTime / time.Duration(iters)).Round(time.Microsecond), mode)
	fmt.Println("OK — batched Cholesky factorization once, batched triangular solves per iteration")
}
