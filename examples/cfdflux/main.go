// CFD flux example: high-order flux-reconstruction methods (one of the
// paper's motivating workloads, cf. GiMMiK) apply the same small, fixed
// derivative operator to the solution values of every element in the
// mesh. That is exactly a compact batched GEMM: thousands of independent
// P×P by P×V multiplies of identical size.
//
// The demo advances a linear advection equation u_t + a·u_x = 0 on a
// periodic 1-D mesh of many elements with a nodal collocation scheme:
// per element, du/dx = D·u where D is the (p+1)×(p+1) differentiation
// matrix, evaluated for all elements at once with one batched GEMM per
// Runge-Kutta stage. A sine wave advected for one period must return to
// itself.
package main

import (
	"fmt"
	"log"
	"math"

	"iatf"
)

const (
	p        = 3 // polynomial degree → 4 nodes per element
	nodes    = p + 1
	elements = 4096
	a        = 1.0 // advection speed
)

// chebyshevNodes returns p+1 Chebyshev–Gauss–Lobatto points on [-1, 1].
func chebyshevNodes() [nodes]float64 {
	var x [nodes]float64
	for i := 0; i < nodes; i++ {
		x[i] = -math.Cos(math.Pi * float64(i) / float64(p))
	}
	return x
}

// diffMatrix builds the nodal differentiation matrix for the node set:
// D[i][j] = l'_j(x_i) with l_j the Lagrange basis.
func diffMatrix(x [nodes]float64) [nodes][nodes]float64 {
	var d [nodes][nodes]float64
	// Barycentric weights.
	var w [nodes]float64
	for j := 0; j < nodes; j++ {
		w[j] = 1
		for k := 0; k < nodes; k++ {
			if k != j {
				w[j] /= x[j] - x[k]
			}
		}
	}
	for i := 0; i < nodes; i++ {
		sum := 0.0
		for j := 0; j < nodes; j++ {
			if i != j {
				d[i][j] = w[j] / w[i] / (x[i] - x[j])
				sum += d[i][j]
			}
		}
		d[i][i] = -sum
	}
	return d
}

func main() {
	log.SetFlags(0)
	x := chebyshevNodes()
	d := diffMatrix(x)

	// Element width and node positions in physical space.
	h := 2 * math.Pi / elements
	pos := func(e, i int) float64 {
		return float64(e)*h + (x[i]+1)/2*h
	}

	// Batches: the differentiation operator is the same for every element,
	// so it is packed once as a replicated operand; U holds each element's
	// nodal values as a (p+1)×1 matrix.
	dFlat := make([]float64, nodes*nodes) // column-major, chain rule 2/h
	for j := 0; j < nodes; j++ {
		for i := 0; i < nodes; i++ {
			dFlat[j*nodes+i] = d[i][j] * 2 / h
		}
	}
	cd, err := iatf.PackReplicated(dFlat, nodes, nodes, elements)
	if err != nil {
		log.Fatal(err)
	}
	u := iatf.NewBatch[float64](elements, nodes, 1)
	for e := 0; e < elements; e++ {
		for i := 0; i < nodes; i++ {
			u.Set(e, i, 0, math.Sin(pos(e, i)))
		}
	}
	cu := iatf.Pack(u)

	// du = D·u via compact batched GEMM; velocity term folded into alpha.
	deriv := func(cu *iatf.Compact[float64]) *iatf.Compact[float64] {
		out := iatf.Pack(iatf.NewBatch[float64](elements, nodes, 1))
		if err := iatf.GEMM(iatf.NoTrans, iatf.NoTrans, -a, cd, cu, 0.0, out); err != nil {
			log.Fatal(err)
		}
		return out
	}
	axpy := func(y, x *iatf.Compact[float64], s float64) *iatf.Compact[float64] {
		yb, xb := y.Unpack(), x.Unpack()
		out := iatf.NewBatch[float64](elements, nodes, 1)
		for i, v := range yb.Data() {
			out.Data()[i] = v + s*xb.Data()[i]
		}
		return iatf.Pack(out)
	}

	// Periodicity correction: the collocation derivative is per element;
	// couple elements with a simple upwind replacement of the left node
	// value before differentiating (a = +1 ⇒ information flows right).
	couple := func(cu *iatf.Compact[float64]) *iatf.Compact[float64] {
		b := cu.Unpack()
		for e := 0; e < elements; e++ {
			left := (e - 1 + elements) % elements
			b.Set(e, 0, 0, b.At(left, nodes-1, 0))
		}
		return iatf.Pack(b)
	}

	// Classic RK4 for one period (t = 2π).
	steps := 4 * elements // CFL-ish
	dt := 2 * math.Pi / float64(steps)
	for s := 0; s < steps; s++ {
		k1 := deriv(couple(cu))
		k2 := deriv(couple(axpy(cu, k1, dt/2)))
		k3 := deriv(couple(axpy(cu, k2, dt/2)))
		k4 := deriv(couple(axpy(cu, k3, dt)))
		acc := axpy(cu, k1, dt/6)
		acc = axpy(acc, k2, dt/3)
		acc = axpy(acc, k3, dt/3)
		cu = axpy(acc, k4, dt/6)
	}

	// Compare with the initial condition.
	final := cu.Unpack()
	maxErr := 0.0
	for e := 0; e < elements; e++ {
		for i := 0; i < nodes; i++ {
			err := math.Abs(final.At(e, i, 0) - math.Sin(pos(e, i)))
			if err > maxErr {
				maxErr = err
			}
		}
	}
	fmt.Printf("advected sin(x) one period over %d elements (degree %d, %d RK4 steps)\n",
		elements, p, steps)
	fmt.Printf("max nodal error vs exact solution: %.3e\n", maxErr)
	if maxErr > 0.05 {
		log.Fatal("solution diverged")
	}
	fmt.Println("OK — batched small GEMMs drove the whole spatial operator")
}
