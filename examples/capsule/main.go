// Capsule-network example: matrix capsules with EM routing (Hinton et
// al., one of the paper's machine-learning motivations) transform 4×4
// pose matrices between capsule layers: every (input capsule, output
// capsule) pair multiplies a pose by a learned 4×4 weight — thousands of
// fixed-size 4×4 sgemms per forward pass, a perfect compact batch.
//
// The demo computes one layer's vote matrices V_ij = M_i · W_ij for a
// realistic layer shape and verifies against a naive loop, reporting the
// throughput of both paths.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"iatf"
)

const (
	inCaps  = 32 * 6 * 6 // input capsules in a 6×6 grid of 32 types
	outCaps = 16         // output capsule types
	pose    = 4          // pose matrices are 4×4
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(11))
	votes := inCaps * outCaps

	// One batch slot per (i, j) pair: pose M_i (repeated per j) times
	// weight W_ij.
	poses := iatf.NewBatch[float32](votes, pose, pose)
	weights := iatf.NewBatch[float32](votes, pose, pose)
	for i := 0; i < inCaps; i++ {
		var m [pose * pose]float32
		for k := range m {
			m[k] = rng.Float32()
		}
		for j := 0; j < outCaps; j++ {
			slot := i*outCaps + j
			copy(poses.Data()[slot*pose*pose:(slot+1)*pose*pose], m[:])
			for k := 0; k < pose*pose; k++ {
				weights.Set(slot, k%pose, k/pose, rng.Float32())
			}
		}
	}

	// Naive reference.
	naive := make([]float32, votes*pose*pose)
	t0 := time.Now()
	pd, wd := poses.Data(), weights.Data()
	for s := 0; s < votes; s++ {
		base := s * pose * pose
		for j := 0; j < pose; j++ {
			for i := 0; i < pose; i++ {
				var sum float32
				for k := 0; k < pose; k++ {
					sum += pd[base+k*pose+i] * wd[base+j*pose+k]
				}
				naive[base+j*pose+i] = sum
			}
		}
	}
	naiveTime := time.Since(t0)

	// Compact batched path.
	cp, cw := iatf.Pack(poses), iatf.Pack(weights)
	cv := iatf.Pack(iatf.NewBatch[float32](votes, pose, pose))
	t0 = time.Now()
	if err := iatf.GEMM(iatf.NoTrans, iatf.NoTrans, float32(1), cp, cw, float32(0), cv); err != nil {
		log.Fatal(err)
	}
	compactTime := time.Since(t0)
	got := cv.Unpack().Data()

	maxDiff := 0.0
	for i := range got {
		if d := math.Abs(float64(got[i] - naive[i])); d > maxDiff {
			maxDiff = d
		}
	}
	flops := 2.0 * float64(votes) * pose * pose * pose
	fmt.Printf("capsule votes: %d pose transforms of %dx%d (%d input × %d output capsules)\n",
		votes, pose, pose, inCaps, outCaps)
	fmt.Printf("naive loop:   %10v (%6.2f GFLOP/s)\n", naiveTime, flops/naiveTime.Seconds()/1e9)
	fmt.Printf("compact GEMM: %10v (%6.2f GFLOP/s)\n", compactTime, flops/compactTime.Seconds()/1e9)
	fmt.Printf("max |diff| = %.3g\n", maxDiff)
	if maxDiff > 1e-4 {
		log.Fatal("verification FAILED")
	}
	fmt.Println("verification OK")
}
