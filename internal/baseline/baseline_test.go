package baseline

import (
	"testing"

	"iatf/internal/machine"
	"iatf/internal/vec"
)

func newSim(dt vec.DType) *machine.Sim {
	return machine.NewSim(machine.Kunpeng920(), dt.ElemBytes())
}

// Per-call overhead must dominate looped interfaces at tiny sizes: the
// batched model with identical kernels must be faster.
func TestBatchedAmortizesOverhead(t *testing.T) {
	for _, dt := range vec.DTypes {
		loop := newSim(dt)
		OpenBLASLoop().RunGEMM(loop, dt, 2, 2, 2, 64)
		batch := newSim(dt)
		ARMPLBatch().RunGEMM(batch, dt, 2, 2, 2, 64)
		if batch.Cycles() >= loop.Cycles() {
			t.Errorf("%v: batch %d ≥ loop %d cycles", dt, batch.Cycles(), loop.Cycles())
		}
	}
}

// LIBXSMM skips packing: its model must stream fewer memory instructions
// than the packing models for the same problem.
func TestLIBXSMMSkipsPacking(t *testing.T) {
	a := newSim(vec.S)
	LIBXSMM().RunGEMM(a, vec.S, 4, 4, 4, 32)
	b := newSim(vec.S)
	ARMPLBatch().RunGEMM(b, vec.S, 4, 4, 4, 32)
	if a.MemInstrs >= b.MemInstrs {
		t.Errorf("LIBXSMM mem instrs %d ≥ ARMPL %d", a.MemInstrs, b.MemInstrs)
	}
}

// The FP instruction count must scale with the arithmetic: complex
// multiplies cost 4 vector ops.
func TestComplexCostsFourOps(t *testing.T) {
	r := newSim(vec.S)
	LIBXSMM().RunGEMM(r, vec.S, 4, 4, 4, 8)
	c := newSim(vec.C)
	LIBXSMM().RunGEMM(c, vec.C, 4, 4, 4, 8)
	// Complex: same tile structure but 4 FP per MAC and half the rows per
	// register (more strips). Expect at least 4× the FP stream.
	if c.FPInstrs < 4*r.FPInstrs {
		t.Errorf("complex FP %d < 4× real FP %d", c.FPInstrs, r.FPInstrs)
	}
}

// Partial-lane waste: M=2 and M=4 sgemm strips cost the same vector
// instructions per K step (both one strip), so modeled cycles should be
// close while useful flops differ 2× — the effect that hands IATF its
// small-size advantage.
func TestPartialLaneWaste(t *testing.T) {
	m2 := newSim(vec.S)
	LIBXSMM().RunGEMM(m2, vec.S, 2, 2, 2, 64)
	m4 := newSim(vec.S)
	LIBXSMM().RunGEMM(m4, vec.S, 4, 4, 4, 64)
	// 8× the flops for much less than 8× the cycles.
	if ratio := float64(m4.Cycles()) / float64(m2.Cycles()); ratio > 5 {
		t.Errorf("4³ costs %.1f× the 2³ cycles; lane waste not modeled", ratio)
	}
}

// The scalar OpenBLAS TRSM model pays one division per element; the
// vectorized ARMPL model hoists reciprocals — M divisions per matrix.
func TestTRSMDivisionModel(t *testing.T) {
	const M, N = 8, 8
	scalar := newSim(vec.S)
	OpenBLASLoopTRSM().RunTRSM(scalar, vec.S, M, N, 16)
	vecd := newSim(vec.S)
	ARMPLLoopTRSM().RunTRSM(vecd, vec.S, M, N, 16)
	if vecd.Cycles() >= scalar.Cycles() {
		t.Errorf("vectorized TRSM %d ≥ scalar %d cycles", vecd.Cycles(), scalar.Cycles())
	}
}

// Larger matrices must take more cycles, and the per-flop cost must fall
// (overhead amortization) for every model.
func TestModelsScaleSensibly(t *testing.T) {
	models := []GEMMModel{OpenBLASLoop(), ARMPLBatch(), LIBXSMM()}
	for _, m := range models {
		small := newSim(vec.D)
		m.RunGEMM(small, vec.D, 2, 2, 2, 32)
		large := newSim(vec.D)
		m.RunGEMM(large, vec.D, 16, 16, 16, 32)
		if large.Cycles() <= small.Cycles() {
			t.Errorf("%s: 16³ (%d) not slower than 2³ (%d)", m.Name, large.Cycles(), small.Cycles())
		}
		cpfSmall := float64(small.Cycles()) / (2 * 2 * 2 * 2)
		cpfLarge := float64(large.Cycles()) / (2 * 16 * 16 * 16)
		if cpfLarge >= cpfSmall {
			t.Errorf("%s: cycles/flop did not fall with size (%.2f → %.2f)", m.Name, cpfSmall, cpfLarge)
		}
	}
	for _, m := range []TRSMModel{OpenBLASLoopTRSM(), ARMPLLoopTRSM()} {
		small := newSim(vec.D)
		m.RunTRSM(small, vec.D, 2, 2, 32)
		large := newSim(vec.D)
		m.RunTRSM(large, vec.D, 16, 16, 32)
		if large.Cycles() <= small.Cycles() {
			t.Errorf("%s TRSM: 16 (%d) not slower than 2 (%d)", m.Name, large.Cycles(), small.Cycles())
		}
	}
}

func TestModelNames(t *testing.T) {
	if OpenBLASLoop().Name != "OpenBLAS-loop" || ARMPLBatch().Name != "ARMPL-batch" ||
		LIBXSMM().Name != "LIBXSMM" {
		t.Error("GEMM model names")
	}
	if OpenBLASLoopTRSM().Name != "OpenBLAS-loop" || ARMPLLoopTRSM().Name != "ARMPL-loop" {
		t.Error("TRSM model names")
	}
}

func TestHelperFunctions(t *testing.T) {
	if elemWidth(vec.S) != 1 || elemWidth(vec.Z) != 2 {
		t.Error("elemWidth")
	}
	if fpPerMAC(vec.D) != 1 || fpPerMAC(vec.C) != 4 {
		t.Error("fpPerMAC")
	}
	if fpPerDiv(vec.S) != 1 || fpPerDiv(vec.Z) != 2 {
		t.Error("fpPerDiv")
	}
	if min(3, 5) != 3 || min(5, 3) != 3 {
		t.Error("min")
	}
}

// The TRMM loop models must behave like the TRSM ones minus division:
// vectorized beats scalar, and both scale with size.
func TestTRMMModels(t *testing.T) {
	scalar := newSim(vec.S)
	OpenBLASLoopTRMM().RunTRMM(scalar, vec.S, 8, 8, 16)
	vecd := newSim(vec.S)
	ARMPLLoopTRMM().RunTRMM(vecd, vec.S, 8, 8, 16)
	if vecd.Cycles() >= scalar.Cycles() {
		t.Errorf("vectorized TRMM %d ≥ scalar %d cycles", vecd.Cycles(), scalar.Cycles())
	}
	small := newSim(vec.Z)
	OpenBLASLoopTRMM().RunTRMM(small, vec.Z, 2, 2, 16)
	large := newSim(vec.Z)
	OpenBLASLoopTRMM().RunTRMM(large, vec.Z, 12, 12, 16)
	if large.Cycles() <= small.Cycles() {
		t.Error("TRMM model does not scale with size")
	}
	if OpenBLASLoopTRMM().Name != "OpenBLAS-loop" || ARMPLLoopTRMM().Name != "ARMPL-loop" {
		t.Error("TRMM model names")
	}
}
