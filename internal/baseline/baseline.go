// Package baseline models the libraries the paper compares IATF against
// (§6, Figures 7–10): looped calls to OpenBLAS GEMM/TRSM, the ARMPL
// batched interface, and LIBXSMM's specialized small-matrix kernels. Each
// model streams the instruction sequence its library would execute on one
// conventional (column-major, per-matrix) batch into the pipeline model —
// it produces timing, not results; the functional semantics of every
// baseline are the matrix.Ref oracles.
//
// The models encode the structural properties the paper's analysis
// attributes the baselines' small-size weakness to (§1):
//
//  1. per-call overhead — parameter validation and dispatch paid per
//     matrix by looped interfaces, once per batch by batched ones;
//  2. partial SIMD lanes — vectorization along the M dimension of a
//     single matrix, so M < vector-length strips waste lanes while paying
//     full vector-instruction cost, and tiny tiles expose the FMA latency
//     through short accumulator chains;
//  3. edge processing — tail strips and narrow column tiles run at the
//     same instruction cost with fewer useful flops;
//  4. packing overhead — classic GEMMs pack A and B panels even when the
//     matrix is a handful of elements (LIBXSMM's selling point is
//     skipping this, which the model reflects);
//  5. unvectorized triangular solves with per-element division — the ARM
//     FDIV latency the IATF reciprocal packing avoids.
package baseline

import (
	"iatf/internal/asm"
	"iatf/internal/machine"
	"iatf/internal/vec"
)

// GEMMModel parameterizes one library's batched-GEMM behaviour.
type GEMMModel struct {
	Name string
	// CallOverhead is charged once per library call: per matrix for
	// looped interfaces, once per batch for batched ones.
	CallOverhead int64
	// PerMatrix is the light dispatch cost batched interfaces pay per
	// matrix (pointer arithmetic, size checks, kernel selection).
	PerMatrix int64
	// Batched marks batch interfaces (CallOverhead once).
	Batched bool
	// Pack emits the classic A/B panel packing copies per matrix.
	Pack bool
	// StripRegs is the height of the M-vectorized register strip (vector
	// registers per column strip of the micro-kernel).
	StripRegs int
	// TileCols is the micro-kernel width in columns.
	TileCols int
}

// OpenBLASLoop models looping over OpenBLAS sgemm/dgemm/... calls: full
// per-call overhead and per-matrix packing — the paper's weakest
// comparator on small sizes.
func OpenBLASLoop() GEMMModel {
	return GEMMModel{Name: "OpenBLAS-loop", CallOverhead: 420, Pack: true,
		StripRegs: 4, TileCols: 4}
}

// ARMPLBatch models the ARMPL batched GEMM interface: one call overhead
// for the whole batch, light per-matrix dispatch, conventional kernels
// underneath (no SIMD-friendly layout).
func ARMPLBatch() GEMMModel {
	return GEMMModel{Name: "ARMPL-batch", CallOverhead: 420, PerMatrix: 70,
		Batched: true, Pack: true, StripRegs: 4, TileCols: 4}
}

// LIBXSMM models LIBXSMM's dispatch of a JIT-specialized kernel per fixed
// shape: minimal dispatch, no packing, no parameter checks. It supports
// only real types and has no TRSM, as in the paper.
func LIBXSMM() GEMMModel {
	return GEMMModel{Name: "LIBXSMM", CallOverhead: 180, PerMatrix: 18,
		Batched: true, StripRegs: 4, TileCols: 4}
}

// geometry of a conventional (interleaved complex) matrix element in real
// components.
func elemWidth(dt vec.DType) int {
	if dt.IsComplex() {
		return 2
	}
	return 1
}

// fpPerMAC is the vector FP instructions one multiply-accumulate on one
// register strip costs (complex arithmetic on interleaved storage needs
// four).
func fpPerMAC(dt vec.DType) int {
	if dt.IsComplex() {
		return 4
	}
	return 1
}

// emitter streams synthetic instructions into the pipeline model with a
// realistic register-dependence shape.
type emitter struct {
	sim *machine.Sim
}

func (e *emitter) load(reg uint8, addr int) {
	e.sim.Exec(asm.Instr{Op: asm.LDR, D: reg, P: asm.P5}, addr)
}

func (e *emitter) store(reg uint8, addr int) {
	e.sim.Exec(asm.Instr{Op: asm.STR, D: reg, P: asm.P6}, addr)
}

func (e *emitter) fmla(d, a, b uint8) {
	e.sim.Exec(asm.Instr{Op: asm.FMLAe, D: d, A: a, B: b}, -1)
}

func (e *emitter) fmul(d, a, b uint8) {
	e.sim.Exec(asm.Instr{Op: asm.FMUL, D: d, A: a, B: b}, -1)
}

func (e *emitter) fdiv(d, a, b uint8) {
	e.sim.Exec(asm.Instr{Op: asm.FDIV, D: d, A: a, B: b}, -1)
}

// copyRegion streams a packing copy of n elements with eight-deep
// load/store waves (memcpy-grade memory-level parallelism).
func (e *emitter) copyRegion(src, dst, n, vl int) {
	for base := 0; base < n; base += 8 * vl {
		w := 0
		for off := base; off < n && w < 8; off += vl {
			e.load(uint8(w), src+off)
			w++
		}
		w = 0
		for off := base; off < n && w < 8; off += vl {
			e.store(uint8(w), dst+off)
			w++
		}
	}
}

// RunGEMM streams the model's execution of `count` M×N×K matrices through
// the pipeline model. Matrix data lives at the conventional batch layout:
// A matrices back to back from address 0, then B, then C, then the pack
// workspace (element units of the real component type).
func (m GEMMModel) RunGEMM(sim *machine.Sim, dt vec.DType, M, N, K, count int) {
	vl := sim.Prof.Lanes(dt.ElemBytes())
	s := elemWidth(dt)
	lenA, lenB, lenC := M*K*s, K*N*s, M*N*s
	aBase, bBase := 0, count*lenA
	cBase := bBase + count*lenB
	workA := cBase + count*lenC
	workB := workA + lenA

	e := &emitter{sim: sim}
	if m.Batched {
		sim.AddCycles(m.CallOverhead)
	}
	for mi := 0; mi < count; mi++ {
		if m.Batched {
			sim.AddCycles(m.PerMatrix)
		} else {
			sim.AddCycles(m.CallOverhead)
		}
		aB, bB, cB := aBase+mi*lenA, bBase+mi*lenB, cBase+mi*lenC
		if m.Pack {
			e.copyRegion(aB, workA, lenA, vl)
			e.copyRegion(bB, workB, lenB, vl)
			aB, bB = workA, workB
		}
		m.matrixGEMM(e, dt, M, N, K, aB, bB, cB, vl, s)
	}
}

// matrixGEMM streams the traditional GOTO-style micro-kernel sweep over
// one matrix: M-vectorized strips of StripRegs vector registers against
// TileCols-wide column tiles, scalar-equivalent tail strips, C update
// with alpha.
func (m GEMMModel) matrixGEMM(e *emitter, dt vec.DType, M, N, K, aB, bB, cB, vl, s int) {
	rowsPerReg := vl / s // matrix rows one vector register covers
	if rowsPerReg < 1 {
		rowsPerReg = 1
	}
	fpMAC := fpPerMAC(dt)

	for j0 := 0; j0 < N; j0 += m.TileCols {
		nc := min(m.TileCols, N-j0)
		for i0 := 0; i0 < M; i0 += m.StripRegs * rowsPerReg {
			rows := min(m.StripRegs*rowsPerReg, M-i0)
			sv := (rows + rowsPerReg - 1) / rowsPerReg // strip registers
			// Accumulators: regs 8..8+sv·nc-1 (≤16).
			for k := 0; k < K; k++ {
				abuf := uint8((k % 2) * 4)
				// A strip loads.
				for r := 0; r < sv; r++ {
					e.load(abuf+uint8(r), aB+(k*M+i0+r*rowsPerReg)*s)
				}
				// B row values (by-element operands).
				bvals := nc * s
				bregs := (bvals + vl - 1) / vl
				for r := 0; r < bregs; r++ {
					e.load(24+uint8(k%2)+uint8(r)%2, bB+(j0*K+k)*s+r*vl)
				}
				// Multiply-accumulate.
				for c := 0; c < nc; c++ {
					for r := 0; r < sv; r++ {
						acc := 8 + uint8(c*sv+r)%16
						for f := 0; f < fpMAC; f++ {
							e.sim.Exec(asm.Instr{Op: asm.FMLAe, D: acc, A: abuf + uint8(r), B: 24 + uint8(k%2)}, -1)
						}
					}
				}
			}
			// C update: load, scale-accumulate, store per column.
			for c := 0; c < nc; c++ {
				for r := 0; r < sv; r++ {
					addr := cB + ((j0+c)*M+i0+r*rowsPerReg)*s
					e.load(uint8(r), addr)
					e.fmla(uint8(r), 8+uint8(c*sv+r)%16, 26)
					e.store(uint8(r), addr)
				}
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TRSMModel parameterizes one library's looped TRSM behaviour.
type TRSMModel struct {
	Name         string
	CallOverhead int64
	// VectorizeCols solves groups of vl B-columns simultaneously (the
	// better traditional implementations); otherwise the solve is scalar
	// per column, and either way every row pays an FDIV — no reciprocal
	// packing.
	VectorizeCols bool
}

// OpenBLASLoopTRSM models looping over OpenBLAS trsm calls: scalar
// column-by-column forward substitution with a division per element.
func OpenBLASLoopTRSM() TRSMModel {
	return TRSMModel{Name: "OpenBLAS-loop", CallOverhead: 420}
}

// ARMPLLoopTRSM models looping over ARMPL trsm calls: column-group
// vectorized substitution, still division-based.
func ARMPLLoopTRSM() TRSMModel {
	return TRSMModel{Name: "ARMPL-loop", CallOverhead: 420, VectorizeCols: true}
}

// RunTRSM streams the model's execution of `count` M×M lower triangular
// solves against M×N right-hand sides.
func (m TRSMModel) RunTRSM(sim *machine.Sim, dt vec.DType, M, N, count int) {
	vl := sim.Prof.Lanes(dt.ElemBytes())
	s := elemWidth(dt)
	lenA, lenB := M*M*s, M*N*s
	aBase, bBase := 0, count*lenA
	e := &emitter{sim: sim}
	fpMAC := fpPerMAC(dt)

	colGroup := 1
	if m.VectorizeCols {
		colGroup = vl / s
		if colGroup < 1 {
			colGroup = 1
		}
	}
	for mi := 0; mi < count; mi++ {
		sim.AddCycles(m.CallOverhead)
		aB, bB := aBase+mi*lenA, bBase+mi*lenB
		if m.VectorizeCols && N > 1 {
			// The optimized library hoists the diagonal reciprocals out
			// of the column loop: M divisions per matrix, serialized.
			for i := 0; i < M; i++ {
				e.load(1, aB+(i*M+i)*s)
				for f := 0; f < fpPerDiv(dt); f++ {
					e.fdiv(30, 30, 1)
				}
				e.store(30, aB+(i*M+i)*s)
			}
		}
		for j0 := 0; j0 < N; j0 += colGroup {
			for i := 0; i < M; i++ {
				// x_i accumulates in register 8 — a serial dependence
				// chain, as in the scalar substitution loop.
				e.load(8, bB+(j0*M+i)*s)
				for k := 0; k < i; k++ {
					e.load(0+uint8(k%4), aB+(k*M+i)*s)
					e.load(4+uint8(k%4), bB+(j0*M+k)*s)
					for f := 0; f < fpMAC; f++ {
						e.sim.Exec(asm.Instr{Op: asm.FMLSe, D: 8, A: uint8(k % 4), B: 4 + uint8(k%4)}, -1)
					}
				}
				if m.VectorizeCols && N > 1 {
					// Multiply by the hoisted reciprocal.
					e.load(1, aB+(i*M+i)*s)
					for f := 0; f < fpMAC; f++ {
						e.fmul(8, 8, 1)
					}
				} else {
					// Divide by the diagonal — the latency IATF's
					// reciprocal packing removes (complex division
					// expands to several).
					e.load(1, aB+(i*M+i)*s)
					for f := 0; f < fpPerDiv(dt); f++ {
						e.fdiv(8, 8, 1)
					}
				}
				e.store(8, bB+(j0*M+i)*s)
			}
		}
	}
}

// fpPerDiv returns division instructions per element solve: complex
// division expands to two real divisions plus multiplies, modeled as two
// FDIVs.
func fpPerDiv(dt vec.DType) int {
	if dt.IsComplex() {
		return 2
	}
	return 1
}

// TRMMModel parameterizes a looped triangular-multiply baseline — used by
// the TRMM extension figure (TRMM is not in the paper's evaluation; the
// model mirrors the TRSM ones minus the division).
type TRMMModel struct {
	Name          string
	CallOverhead  int64
	VectorizeCols bool
}

// OpenBLASLoopTRMM models looping over trmm calls with a scalar
// column-by-column multiply.
func OpenBLASLoopTRMM() TRMMModel {
	return TRMMModel{Name: "OpenBLAS-loop", CallOverhead: 420}
}

// ARMPLLoopTRMM models looping over vectorized trmm calls.
func ARMPLLoopTRMM() TRMMModel {
	return TRMMModel{Name: "ARMPL-loop", CallOverhead: 420, VectorizeCols: true}
}

// RunTRMM streams the model's execution of `count` M×M lower triangular
// multiplies against M×N right-hand sides (B := A·B, computed bottom-up).
func (m TRMMModel) RunTRMM(sim *machine.Sim, dt vec.DType, M, N, count int) {
	vl := sim.Prof.Lanes(dt.ElemBytes())
	s := elemWidth(dt)
	lenA, lenB := M*M*s, M*N*s
	aBase, bBase := 0, count*lenA
	e := &emitter{sim: sim}
	fpMAC := fpPerMAC(dt)
	colGroup := 1
	if m.VectorizeCols {
		colGroup = vl / s
		if colGroup < 1 {
			colGroup = 1
		}
	}
	for mi := 0; mi < count; mi++ {
		sim.AddCycles(m.CallOverhead)
		aB, bB := aBase+mi*lenA, bBase+mi*lenB
		for j0 := 0; j0 < N; j0 += colGroup {
			for i := M - 1; i >= 0; i-- {
				// acc in register 8: x_i·a_ii + Σ_{k<i} a_ik·x_k.
				e.load(8, bB+(j0*M+i)*s)
				e.load(1, aB+(i*M+i)*s)
				for f := 0; f < fpMAC; f++ {
					e.fmul(8, 8, 1)
				}
				for k := 0; k < i; k++ {
					e.load(0+uint8(k%4), aB+(k*M+i)*s)
					e.load(4+uint8(k%4), bB+(j0*M+k)*s)
					for f := 0; f < fpMAC; f++ {
						e.sim.Exec(asm.Instr{Op: asm.FMLAe, D: 8, A: uint8(k % 4), B: 4 + uint8(k%4)}, -1)
					}
				}
				e.store(8, bB+(j0*M+i)*s)
			}
		}
	}
}
