// Package bench is the evaluation harness: it regenerates the data behind
// every figure of the paper's §6 on the cycle-level machine models —
// GFLOPS-versus-size curves for compact GEMM and TRSM against the
// baseline library models (Figures 7–10), percent-of-peak comparisons
// against the MKL-compact model on the Xeon profile (Figures 11–12), and
// the headline speedup table of §1/§6.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"iatf/internal/baseline"
	"iatf/internal/core"
	"iatf/internal/machine"
	"iatf/internal/matrix"
	"iatf/internal/vec"
)

// Point is one measurement: a square size and its modeled throughput.
type Point struct {
	Size    int
	GFLOPS  float64
	PctPeak float64
}

// Series is one library's curve across sizes.
type Series struct {
	Lib    string
	Points []Point
}

// At returns the point at a size (ok=false if absent).
func (s Series) At(size int) (Point, bool) {
	for _, p := range s.Points {
		if p.Size == size {
			return p, true
		}
	}
	return Point{}, false
}

// Config fixes the evaluation scale. The paper uses batch 16384 and 100
// repetitions on hardware; the cycle model is deterministic, so Matrices
// sets the simulated steady-state batch per point instead.
type Config struct {
	Matrices int // simulated batch per point
	Sizes    []int
}

// DefaultConfig evaluates square sizes 1–33 as in §6.
func DefaultConfig() Config {
	sizes := make([]int, 0, 33)
	for n := 1; n <= 33; n++ {
		sizes = append(sizes, n)
	}
	return Config{Matrices: 64, Sizes: sizes}
}

func (c Config) groups(dt vec.DType, vl int) int {
	if vl == 0 {
		vl = dt.Pack()
	}
	g := (c.Matrices + vl - 1) / vl
	if g < 1 {
		g = 1
	}
	return g
}

// IATFGEMM runs the compact GEMM model for one size point and returns
// modeled GFLOPS. tun selects the machine model (and lane override for
// the MKL-compact configuration).
func IATFGEMM(dt vec.DType, n int, ta, tb matrix.Trans, tun core.Tuning, cfg Config) (float64, error) {
	p := core.GEMMProblem{DT: dt, M: n, N: n, K: n, TransA: ta, TransB: tb,
		Alpha: 1, Beta: 1, Count: cfg.Matrices}
	pl, err := core.NewGEMMPlan(p, tun)
	if err != nil {
		return 0, err
	}
	sim := machine.NewSim(tun.Prof, dt.ElemBytes())
	groups := cfg.groups(dt, tun.VL)
	cycles, err := core.SimGEMM(pl, groups, sim)
	if err != nil {
		return 0, err
	}
	vl := tun.VL
	if vl == 0 {
		vl = dt.Pack()
	}
	flops := dt.FlopsPerElem() * float64(n) * float64(n) * float64(n) * float64(groups*vl)
	return flops / (float64(cycles) / (tun.Prof.FreqGHz * 1e9)) / 1e9, nil
}

// IATFTRSM runs the compact TRSM model for one size point (square A and
// B, the paper's setup).
func IATFTRSM(dt vec.DType, n int, uplo matrix.Uplo, ta matrix.Trans, diag matrix.Diag, tun core.Tuning, cfg Config) (float64, error) {
	p := core.TRSMProblem{DT: dt, M: n, N: n, Side: matrix.Left, Uplo: uplo,
		TransA: ta, Diag: diag, Alpha: 1, Count: cfg.Matrices}
	pl, err := core.NewTRSMPlan(p, tun)
	if err != nil {
		return 0, err
	}
	sim := machine.NewSim(tun.Prof, dt.ElemBytes())
	groups := cfg.groups(dt, tun.VL)
	cycles, err := core.SimTRSM(pl, groups, sim)
	if err != nil {
		return 0, err
	}
	vl := tun.VL
	if vl == 0 {
		vl = dt.Pack()
	}
	flops := dt.FlopsPerElem() / 2 * float64(n) * float64(n) * float64(n) * float64(groups*vl)
	return flops / (float64(cycles) / (tun.Prof.FreqGHz * 1e9)) / 1e9, nil
}

// BaselineGEMM runs a baseline library model for one size point.
func BaselineGEMM(m baseline.GEMMModel, dt vec.DType, n int, prof machine.Profile, cfg Config) float64 {
	sim := machine.NewSim(prof, dt.ElemBytes())
	count := cfg.groups(dt, 0) * dt.Pack()
	m.RunGEMM(sim, dt, n, n, n, count)
	flops := dt.FlopsPerElem() * float64(n) * float64(n) * float64(n) * float64(count)
	return flops / (sim.Seconds()) / 1e9
}

// BaselineTRSM runs a baseline TRSM model for one size point.
func BaselineTRSM(m baseline.TRSMModel, dt vec.DType, n int, prof machine.Profile, cfg Config) float64 {
	sim := machine.NewSim(prof, dt.ElemBytes())
	count := cfg.groups(dt, 0) * dt.Pack()
	m.RunTRSM(sim, dt, n, n, count)
	flops := dt.FlopsPerElem() / 2 * float64(n) * float64(n) * float64(n) * float64(count)
	return flops / (sim.Seconds()) / 1e9
}

// GEMMFigure computes the Figure 7/8 series for one data type and mode:
// IATF against ARMPL-batch, LIBXSMM (real types only) and OpenBLAS-loop.
func GEMMFigure(dt vec.DType, ta, tb matrix.Trans, cfg Config) ([]Series, error) {
	tun := core.DefaultTuning()
	prof := tun.Prof
	peak := prof.PeakGFLOPS(dt)

	libs := []Series{{Lib: "IATF"}, {Lib: "ARMPL-batch"}, {Lib: "OpenBLAS-loop"}}
	if !dt.IsComplex() {
		libs = append(libs, Series{Lib: "LIBXSMM"})
	}
	for _, n := range cfg.Sizes {
		g, err := IATFGEMM(dt, n, ta, tb, tun, cfg)
		if err != nil {
			return nil, err
		}
		libs[0].Points = append(libs[0].Points, Point{n, g, g / peak})
		g = BaselineGEMM(baseline.ARMPLBatch(), dt, n, prof, cfg)
		libs[1].Points = append(libs[1].Points, Point{n, g, g / peak})
		g = BaselineGEMM(baseline.OpenBLASLoop(), dt, n, prof, cfg)
		libs[2].Points = append(libs[2].Points, Point{n, g, g / peak})
		if !dt.IsComplex() {
			g = BaselineGEMM(baseline.LIBXSMM(), dt, n, prof, cfg)
			libs[3].Points = append(libs[3].Points, Point{n, g, g / peak})
		}
	}
	return libs, nil
}

// TRSMFigure computes the Figure 9/10 series for one data type and mode:
// IATF against looped ARMPL and OpenBLAS TRSM.
func TRSMFigure(dt vec.DType, uplo matrix.Uplo, ta matrix.Trans, diag matrix.Diag, cfg Config) ([]Series, error) {
	tun := core.DefaultTuning()
	prof := tun.Prof
	peak := prof.PeakGFLOPS(dt)
	libs := []Series{{Lib: "IATF"}, {Lib: "ARMPL-loop"}, {Lib: "OpenBLAS-loop"}}
	for _, n := range cfg.Sizes {
		g, err := IATFTRSM(dt, n, uplo, ta, diag, tun, cfg)
		if err != nil {
			return nil, err
		}
		libs[0].Points = append(libs[0].Points, Point{n, g, g / peak})
		g = BaselineTRSM(baseline.ARMPLLoopTRSM(), dt, n, prof, cfg)
		libs[1].Points = append(libs[1].Points, Point{n, g, g / peak})
		g = BaselineTRSM(baseline.OpenBLASLoopTRSM(), dt, n, prof, cfg)
		libs[2].Points = append(libs[2].Points, Point{n, g, g / peak})
	}
	return libs, nil
}

// PctPeakFigure computes the Figure 11/12 comparison: IATF on the Kunpeng
// model versus the same compact algorithm at AVX-512 widths on the Xeon
// model (the MKL-compact stand-in), both as percent of their machine's
// peak.
func PctPeakFigure(dt vec.DType, trsm bool, cfg Config) ([]Series, error) {
	arm := core.DefaultTuning()
	x86 := core.Tuning{Prof: machine.XeonGold6240(), VL: machine.XeonGold6240().Lanes(dt.ElemBytes())}
	out := []Series{{Lib: "IATF (Kunpeng 920)"}, {Lib: "MKL-compact (Xeon 6240)"}}
	for _, n := range cfg.Sizes {
		for i, tun := range []core.Tuning{arm, x86} {
			var g float64
			var err error
			if trsm {
				g, err = IATFTRSM(dt, n, matrix.Lower, matrix.NoTrans, matrix.NonUnit, tun, cfg)
			} else {
				g, err = IATFGEMM(dt, n, matrix.NoTrans, matrix.NoTrans, tun, cfg)
			}
			if err != nil {
				return nil, err
			}
			peak := tun.Prof.PeakGFLOPS(dt)
			out[i].Points = append(out[i].Points, Point{n, g, g / peak})
		}
	}
	return out, nil
}

// MaxSpeedup returns the largest ratio a/b across common sizes and the
// size it occurs at — the headline numbers of §1.
func MaxSpeedup(a, b Series) (float64, int) {
	best, at := 0.0, 0
	for _, pa := range a.Points {
		if pb, ok := b.At(pa.Size); ok && pb.GFLOPS > 0 {
			if r := pa.GFLOPS / pb.GFLOPS; r > best {
				best, at = r, pa.Size
			}
		}
	}
	return best, at
}

// FormatTable renders series as an aligned text table, one row per size.
func FormatTable(title string, series []Series, pct bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	fmt.Fprintf(&b, "%6s", "size")
	for _, s := range series {
		fmt.Fprintf(&b, " %22s", s.Lib)
	}
	b.WriteByte('\n')
	sizes := map[int]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			sizes[p.Size] = true
		}
	}
	var order []int
	for n := range sizes {
		order = append(order, n)
	}
	sort.Ints(order)
	for _, n := range order {
		fmt.Fprintf(&b, "%6d", n)
		for _, s := range series {
			if p, ok := s.At(n); ok {
				if pct {
					fmt.Fprintf(&b, " %21.1f%%", 100*p.PctPeak)
				} else {
					fmt.Fprintf(&b, " %22.3f", p.GFLOPS)
				}
			} else {
				fmt.Fprintf(&b, " %22s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// IATFTRMM runs the compact TRMM extension model for one size point.
func IATFTRMM(dt vec.DType, n int, tun core.Tuning, cfg Config) (float64, error) {
	p := core.TRMMProblem{DT: dt, M: n, N: n, Side: matrix.Left, Uplo: matrix.Lower,
		TransA: matrix.NoTrans, Diag: matrix.NonUnit, Alpha: 1, Count: cfg.Matrices}
	pl, err := core.NewTRMMPlan(p, tun)
	if err != nil {
		return 0, err
	}
	sim := machine.NewSim(tun.Prof, dt.ElemBytes())
	groups := cfg.groups(dt, tun.VL)
	cycles, err := core.SimTRMM(pl, groups, sim)
	if err != nil {
		return 0, err
	}
	vl := tun.VL
	if vl == 0 {
		vl = dt.Pack()
	}
	flops := dt.FlopsPerElem() / 2 * float64(n) * float64(n) * float64(n) * float64(groups*vl)
	return flops / (float64(cycles) / (tun.Prof.FreqGHz * 1e9)) / 1e9, nil
}

// TRMMFigure computes the extension figure: compact TRMM against looped
// ARMPL/OpenBLAS triangular multiplies (not part of the paper's
// evaluation — this library's future-work extension).
func TRMMFigure(dt vec.DType, cfg Config) ([]Series, error) {
	tun := core.DefaultTuning()
	prof := tun.Prof
	peak := prof.PeakGFLOPS(dt)
	libs := []Series{{Lib: "IATF-ext"}, {Lib: "ARMPL-loop"}, {Lib: "OpenBLAS-loop"}}
	for _, n := range cfg.Sizes {
		g, err := IATFTRMM(dt, n, tun, cfg)
		if err != nil {
			return nil, err
		}
		libs[0].Points = append(libs[0].Points, Point{n, g, g / peak})
		count := cfg.groups(dt, 0) * dt.Pack()
		flops := dt.FlopsPerElem() / 2 * float64(n) * float64(n) * float64(n) * float64(count)
		sim := machine.NewSim(prof, dt.ElemBytes())
		baseline.ARMPLLoopTRMM().RunTRMM(sim, dt, n, n, count)
		g = flops / sim.Seconds() / 1e9
		libs[1].Points = append(libs[1].Points, Point{n, g, g / peak})
		sim = machine.NewSim(prof, dt.ElemBytes())
		baseline.OpenBLASLoopTRMM().RunTRMM(sim, dt, n, n, count)
		g = flops / sim.Seconds() / 1e9
		libs[2].Points = append(libs[2].Points, Point{n, g, g / peak})
	}
	return libs, nil
}
