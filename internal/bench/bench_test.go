package bench

import (
	"strings"
	"testing"

	"iatf/internal/core"
	"iatf/internal/matrix"
	"iatf/internal/vec"
)

// Small, fast evaluation grid for tests.
func testCfg() Config {
	return Config{Matrices: 32, Sizes: []int{2, 4, 8, 16, 32}}
}

func series(t *testing.T, ss []Series, lib string) Series {
	t.Helper()
	for _, s := range ss {
		if s.Lib == lib {
			return s
		}
	}
	t.Fatalf("series %q missing", lib)
	return Series{}
}

// Figure 7's qualitative content: for every data type under NN, IATF
// leads ARMPL-batch and OpenBLAS-loop at every small size, and
// OpenBLAS-loop (per-call overhead) trails ARMPL-batch.
func TestFigure7WhoWins(t *testing.T) {
	cfg := testCfg()
	for _, dt := range vec.DTypes {
		ss, err := GEMMFigure(dt, matrix.NoTrans, matrix.NoTrans, cfg)
		if err != nil {
			t.Fatal(err)
		}
		iatf := series(t, ss, "IATF")
		armpl := series(t, ss, "ARMPL-batch")
		obl := series(t, ss, "OpenBLAS-loop")
		for _, n := range cfg.Sizes {
			pi, _ := iatf.At(n)
			pa, _ := armpl.At(n)
			po, _ := obl.At(n)
			if pi.GFLOPS <= pa.GFLOPS {
				t.Errorf("%sgemm n=%d: IATF %.2f ≤ ARMPL %.2f", dt, n, pi.GFLOPS, pa.GFLOPS)
			}
			if pi.GFLOPS <= po.GFLOPS {
				t.Errorf("%sgemm n=%d: IATF %.2f ≤ OpenBLAS %.2f", dt, n, pi.GFLOPS, po.GFLOPS)
			}
			if n <= 8 && pa.GFLOPS <= po.GFLOPS {
				t.Errorf("%sgemm n=%d: ARMPL-batch %.2f ≤ OpenBLAS-loop %.2f (batch interface must amortize call overhead)",
					dt, n, pa.GFLOPS, po.GFLOPS)
			}
		}
	}
}

// LIBXSMM's profile from the paper: strong at mid sizes (it may approach
// or match IATF), but at particularly small sizes IATF keeps a multiple.
func TestFigure7LIBXSMMShape(t *testing.T) {
	cfg := testCfg()
	for _, dt := range []vec.DType{vec.S, vec.D} {
		ss, err := GEMMFigure(dt, matrix.NoTrans, matrix.NoTrans, cfg)
		if err != nil {
			t.Fatal(err)
		}
		iatf := series(t, ss, "IATF")
		xsmm := series(t, ss, "LIBXSMM")
		p2, _ := iatf.At(2)
		x2, _ := xsmm.At(2)
		if p2.GFLOPS < 2*x2.GFLOPS {
			t.Errorf("%sgemm n=2: IATF %.2f not ≥2× LIBXSMM %.2f", dt, p2.GFLOPS, x2.GFLOPS)
		}
		// LIBXSMM beats the packing libraries at small-mid sizes.
		a8, _ := series(t, ss, "ARMPL-batch").At(8)
		x8, _ := xsmm.At(8)
		if x8.GFLOPS <= a8.GFLOPS {
			t.Errorf("%sgemm n=8: LIBXSMM %.2f ≤ ARMPL %.2f", dt, x8.GFLOPS, a8.GFLOPS)
		}
	}
}

// Headline speedups (§1): "up to" ratios must land in the paper's order
// of magnitude — at least the paper's factor halved, at most a few times
// it (the baselines are models, not the vendors' binaries).
func TestHeadlineSpeedupRanges(t *testing.T) {
	cfg := testCfg()
	paper := map[vec.DType]struct{ vsOBL, vsARMPL float64 }{
		vec.S: {21, 8}, vec.D: {7, 4}, vec.C: {12, 8}, vec.Z: {6, 5},
	}
	for _, dt := range vec.DTypes {
		ss, err := GEMMFigure(dt, matrix.NoTrans, matrix.NoTrans, cfg)
		if err != nil {
			t.Fatal(err)
		}
		iatf := series(t, ss, "IATF")
		want := paper[dt]
		if r, at := MaxSpeedup(iatf, series(t, ss, "OpenBLAS-loop")); r < want.vsOBL/2 || r > want.vsOBL*4 {
			t.Errorf("%sgemm vs OpenBLAS: %.1fx at n=%d (paper: up to %.0fx)", dt, r, at, want.vsOBL)
		}
		if r, at := MaxSpeedup(iatf, series(t, ss, "ARMPL-batch")); r < want.vsARMPL/2 || r > want.vsARMPL*4 {
			t.Errorf("%sgemm vs ARMPL: %.1fx at n=%d (paper: up to %.0fx)", dt, r, at, want.vsARMPL)
		}
	}
}

// Figure 9: TRSM ordering IATF > ARMPL-loop > OpenBLAS-loop for every
// type, with the division-bound OpenBLAS model far behind at larger
// sizes.
func TestFigure9TRSMOrdering(t *testing.T) {
	cfg := testCfg()
	paper := map[vec.DType]struct{ vsOBL, vsARMPL float64 }{
		vec.S: {28, 7}, vec.D: {12, 5}, vec.C: {10, 4}, vec.Z: {5, 3},
	}
	for _, dt := range vec.DTypes {
		ss, err := TRSMFigure(dt, matrix.Lower, matrix.NoTrans, matrix.NonUnit, cfg)
		if err != nil {
			t.Fatal(err)
		}
		iatf := series(t, ss, "IATF")
		armpl := series(t, ss, "ARMPL-loop")
		obl := series(t, ss, "OpenBLAS-loop")
		for _, n := range cfg.Sizes {
			pi, _ := iatf.At(n)
			pa, _ := armpl.At(n)
			po, _ := obl.At(n)
			if pi.GFLOPS <= pa.GFLOPS || pi.GFLOPS <= po.GFLOPS {
				t.Errorf("%strsm n=%d: IATF %.2f vs ARMPL %.2f / OpenBLAS %.2f", dt, n, pi.GFLOPS, pa.GFLOPS, po.GFLOPS)
			}
			if n >= 8 && pa.GFLOPS <= po.GFLOPS {
				t.Errorf("%strsm n=%d: ARMPL %.2f ≤ OpenBLAS %.2f", dt, n, pa.GFLOPS, po.GFLOPS)
			}
		}
		want := paper[dt]
		if r, at := MaxSpeedup(iatf, obl); r < want.vsOBL/2.5 || r > want.vsOBL*6 {
			t.Errorf("%strsm vs OpenBLAS: %.1fx at n=%d (paper: up to %.0fx)", dt, r, at, want.vsOBL)
		}
		if r, at := MaxSpeedup(iatf, armpl); r < want.vsARMPL/2 || r > want.vsARMPL*10 {
			t.Errorf("%strsm vs ARMPL: %.1fx at n=%d (paper: up to %.0fx)", dt, r, at, want.vsARMPL)
		}
	}
}

// Figure 11's qualitative content for double precision: IATF's
// percent-of-peak on the Kunpeng model beats the MKL-compact stand-in on
// the Xeon model at most sizes (paper: "significant advantages on
// double-precision ... both real and complex").
func TestFigure11DoublePrecisionAdvantage(t *testing.T) {
	cfg := Config{Matrices: 32, Sizes: []int{4, 8, 16, 32}}
	for _, dt := range []vec.DType{vec.D, vec.Z} {
		ss, err := PctPeakFigure(dt, false, cfg)
		if err != nil {
			t.Fatal(err)
		}
		arm := series(t, ss, "IATF (Kunpeng 920)")
		x86 := series(t, ss, "MKL-compact (Xeon 6240)")
		wins := 0
		for _, n := range cfg.Sizes {
			pa, _ := arm.At(n)
			px, _ := x86.At(n)
			if pa.PctPeak > px.PctPeak {
				wins++
			}
			if pa.PctPeak > 1 || px.PctPeak > 1 {
				t.Errorf("%v n=%d: pct-peak exceeds 1 (%.2f / %.2f)", dt, n, pa.PctPeak, px.PctPeak)
			}
		}
		if wins < 3 {
			t.Errorf("%v: Kunpeng wins only %d/%d sizes in pct-of-peak", dt, wins, len(cfg.Sizes))
		}
	}
}

func TestFigure12TRSMPctPeakRuns(t *testing.T) {
	cfg := Config{Matrices: 32, Sizes: []int{4, 16}}
	ss, err := PctPeakFigure(vec.D, true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ss {
		for _, p := range s.Points {
			if p.GFLOPS <= 0 || p.PctPeak <= 0 || p.PctPeak > 1 {
				t.Errorf("%s n=%d: GFLOPS=%.2f pct=%.2f", s.Lib, p.Size, p.GFLOPS, p.PctPeak)
			}
		}
	}
}

func TestGEMMModesAllRun(t *testing.T) {
	cfg := Config{Matrices: 16, Sizes: []int{3, 5}}
	for _, mode := range [][2]matrix.Trans{
		{matrix.NoTrans, matrix.NoTrans},
		{matrix.NoTrans, matrix.Transpose},
		{matrix.Transpose, matrix.NoTrans},
		{matrix.Transpose, matrix.Transpose},
	} {
		ss, err := GEMMFigure(vec.D, mode[0], mode[1], cfg)
		if err != nil {
			t.Fatalf("mode %v%v: %v", mode[0], mode[1], err)
		}
		iatf := series(t, ss, "IATF")
		for _, p := range iatf.Points {
			if p.GFLOPS <= 0 {
				t.Errorf("mode %v%v n=%d: %.2f GFLOPS", mode[0], mode[1], p.Size, p.GFLOPS)
			}
		}
	}
}

func TestTRSMModesAllRun(t *testing.T) {
	cfg := Config{Matrices: 16, Sizes: []int{4, 7}}
	for _, m := range []struct {
		uplo matrix.Uplo
		ta   matrix.Trans
		diag matrix.Diag
	}{
		{matrix.Lower, matrix.NoTrans, matrix.NonUnit},   // LNLN
		{matrix.Upper, matrix.NoTrans, matrix.NonUnit},   // LNUN
		{matrix.Lower, matrix.Transpose, matrix.NonUnit}, // LTLN
		{matrix.Upper, matrix.Transpose, matrix.NonUnit}, // LTUN
	} {
		ss, err := TRSMFigure(vec.S, m.uplo, m.ta, m.diag, cfg)
		if err != nil {
			t.Fatal(err)
		}
		iatf := series(t, ss, "IATF")
		for _, p := range iatf.Points {
			if p.GFLOPS <= 0 {
				t.Errorf("mode %v%v%v n=%d nonpositive", m.uplo, m.ta, m.diag, p.Size)
			}
		}
	}
}

func TestFormatTable(t *testing.T) {
	ss := []Series{
		{Lib: "A", Points: []Point{{2, 1.5, 0.15}, {4, 3, 0.3}}},
		{Lib: "B", Points: []Point{{2, 0.5, 0.05}}},
	}
	out := FormatTable("demo", ss, false)
	if !strings.Contains(out, "# demo") || !strings.Contains(out, "1.500") || !strings.Contains(out, "-") {
		t.Errorf("table:\n%s", out)
	}
	pct := FormatTable("demo", ss, true)
	if !strings.Contains(pct, "15.0%") {
		t.Errorf("pct table:\n%s", pct)
	}
}

func TestMaxSpeedup(t *testing.T) {
	a := Series{Points: []Point{{2, 10, 0}, {4, 8, 0}}}
	b := Series{Points: []Point{{2, 1, 0}, {4, 4, 0}}}
	r, at := MaxSpeedup(a, b)
	if r != 10 || at != 2 {
		t.Errorf("MaxSpeedup = %.1f at %d", r, at)
	}
}

// The native-lane Kunpeng MKL-compact tuning and the AVX-512 tuning use
// different group counts; Config.groups must account for lane overrides.
func TestConfigGroups(t *testing.T) {
	cfg := Config{Matrices: 64}
	if cfg.groups(vec.S, 0) != 16 || cfg.groups(vec.D, 0) != 32 {
		t.Error("native group counts wrong")
	}
	if cfg.groups(vec.S, 16) != 4 {
		t.Error("overridden group count wrong")
	}
}

// The ablation tunings must run through the harness (used by the ablation
// benchmarks in bench_test.go at the repo root).
func TestAblationTuningsRun(t *testing.T) {
	cfg := Config{Matrices: 16, Sizes: []int{8}}
	for _, tun := range []core.Tuning{
		func() core.Tuning { t := core.DefaultTuning(); t.DisableOptimizer = true; return t }(),
		func() core.Tuning { t := core.DefaultTuning(); t.DisablePrefetch = true; return t }(),
		func() core.Tuning { t := core.DefaultTuning(); t.ForcePackA = true; return t }(),
		func() core.Tuning { t := core.DefaultTuning(); t.ForceGroupsPerBatch = 64; return t }(),
	} {
		if _, err := IATFGEMM(vec.D, 8, matrix.NoTrans, matrix.NoTrans, tun, cfg); err != nil {
			t.Fatal(err)
		}
	}
}

// The TRMM extension figure must show IATF leading both loop baselines.
func TestTRMMExtensionFigure(t *testing.T) {
	cfg := Config{Matrices: 32, Sizes: []int{2, 8, 16}}
	for _, dt := range []vec.DType{vec.S, vec.Z} {
		ss, err := TRMMFigure(dt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		iatf := series(t, ss, "IATF-ext")
		for _, n := range cfg.Sizes {
			pi, _ := iatf.At(n)
			pa, _ := series(t, ss, "ARMPL-loop").At(n)
			po, _ := series(t, ss, "OpenBLAS-loop").At(n)
			if pi.GFLOPS <= pa.GFLOPS || pi.GFLOPS <= po.GFLOPS {
				t.Errorf("%strmm n=%d: IATF %.2f vs ARMPL %.2f / OpenBLAS %.2f",
					dt, n, pi.GFLOPS, pa.GFLOPS, po.GFLOPS)
			}
		}
	}
}
