package cache

import "testing"

func tiny() Config {
	return Config{
		Levels: []LevelConfig{
			{Name: "L1", SizeBytes: 512, LineBytes: 64, Ways: 2, HitCycles: 4},   // 4 sets
			{Name: "L2", SizeBytes: 4096, LineBytes: 64, Ways: 4, HitCycles: 14}, // 16 sets
		},
		MemoryCycles: 100,
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := New(tiny())
	if lat := h.Access(0, 8, false); lat != 100 {
		t.Errorf("cold access latency = %d, want 100", lat)
	}
	if lat := h.Access(8, 8, false); lat != 4 {
		t.Errorf("warm same-line latency = %d, want 4 (L1 hit)", lat)
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	h := New(tiny())
	// Lines mapping to L1 set 0 (4 sets × 64B): addresses k*256.
	h.Access(0, 1, false)
	h.Access(256, 1, false)
	h.Access(512, 1, false) // evicts line 0 from 2-way L1 set
	if lat := h.Access(0, 1, false); lat != 14 {
		t.Errorf("latency = %d, want 14 (L2 hit after L1 eviction)", lat)
	}
}

func TestLRUOrder(t *testing.T) {
	h := New(tiny())
	h.Access(0, 1, false)   // set0: [0]
	h.Access(256, 1, false) // set0: [256, 0]
	h.Access(0, 1, false)   // touch 0 → MRU: [0, 256]
	h.Access(512, 1, false) // evicts 256, not 0
	if lat := h.Access(0, 1, false); lat != 4 {
		t.Errorf("recently used line evicted: lat=%d", lat)
	}
	if lat := h.Access(256, 1, false); lat == 4 {
		t.Error("LRU line survived eviction")
	}
}

func TestStraddlingAccessTakesWorstLine(t *testing.T) {
	h := New(tiny())
	h.Access(0, 1, false) // warm line 0
	// 8 bytes spanning lines 0 (warm) and 1 (cold): worst = memory.
	if lat := h.Access(60, 8, false); lat != 100 {
		t.Errorf("straddling latency = %d, want 100", lat)
	}
	// Both lines now warm.
	if lat := h.Access(60, 8, false); lat != 4 {
		t.Errorf("second straddling latency = %d, want 4", lat)
	}
}

func TestPrefetchWarmsLine(t *testing.T) {
	h := New(tiny())
	h.Prefetch(128)
	if lat := h.Access(128, 8, false); lat != 4 {
		t.Errorf("post-prefetch latency = %d, want 4", lat)
	}
}

func TestWriteAllocates(t *testing.T) {
	h := New(tiny())
	h.Access(64, 8, true)
	if lat := h.Access(64, 8, false); lat != 4 {
		t.Errorf("load after store latency = %d, want 4", lat)
	}
}

func TestStatsAndReset(t *testing.T) {
	h := New(tiny())
	h.Access(0, 1, false)
	h.Access(0, 1, false)
	st := h.Stats()
	if st[0].Name != "L1" || st[0].Hits != 1 || st[0].Misses != 1 {
		t.Errorf("L1 stats = %+v", st[0])
	}
	if st[1].Misses != 1 {
		t.Errorf("L2 stats = %+v", st[1])
	}
	h.Reset()
	if lat := h.Access(0, 1, false); lat != 100 {
		t.Errorf("post-reset latency = %d, want 100", lat)
	}
	if h.Stats()[0].Misses != 1 {
		t.Errorf("post-reset stats not cleared: %+v", h.Stats()[0])
	}
}

func TestNoLevelsFallsBackToMemory(t *testing.T) {
	h := New(Config{MemoryCycles: 42})
	if lat := h.Access(123, 64, false); lat != 42 {
		t.Errorf("lat = %d", lat)
	}
	h.Prefetch(0) // must not panic
	if h.LineBytes() != 64 {
		t.Errorf("default LineBytes = %d", h.LineBytes())
	}
}

func TestWorkingSetFitsL1(t *testing.T) {
	h := New(tiny())
	// 512-byte working set = exactly L1 capacity; stream it twice.
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 512; a += 64 {
			h.Access(a, 8, false)
		}
	}
	st := h.Stats()[0]
	if st.Misses != 8 || st.Hits != 8 {
		t.Errorf("L1-resident set: hits=%d misses=%d, want 8/8", st.Hits, st.Misses)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid config did not panic")
		}
	}()
	New(Config{Levels: []LevelConfig{{SizeBytes: 0, LineBytes: 64, Ways: 1}}})
}

func TestStreamPrefetcherSequential(t *testing.T) {
	cfg := tiny()
	cfg.StreamSlots = 4
	h := New(cfg)
	// Sequential sweep: after two training accesses the prefetcher covers
	// every subsequent new line at L1 latency.
	lat0 := h.Access(0, 8, false)
	lat1 := h.Access(64, 8, false)
	if lat0 != 100 || lat1 != 100 {
		t.Errorf("training accesses = %d,%d, want 100,100", lat0, lat1)
	}
	for a := uint64(128); a < 2048; a += 64 {
		if lat := h.Access(a, 8, false); lat != 4 {
			t.Fatalf("streamed access at %d = %d, want 4 (prefetched)", a, lat)
		}
	}
	if h.PrefetchedMisses == 0 {
		t.Error("no prefetched misses recorded")
	}
}

func TestStreamPrefetcherStride(t *testing.T) {
	cfg := tiny()
	cfg.StreamSlots = 4
	h := New(cfg)
	// Constant stride of 4 lines (256 B), within the trainable range.
	h.Access(0, 8, false)
	h.Access(256, 8, false)
	for a := uint64(512); a < 8192; a += 256 {
		if lat := h.Access(a, 8, false); lat != 4 && lat != 14 {
			t.Fatalf("strided access at %d = %d, want covered", a, lat)
		}
	}
}

func TestStreamPrefetcherRandomNotCovered(t *testing.T) {
	cfg := tiny()
	cfg.StreamSlots = 4
	h := New(cfg)
	// Pseudo-random far-apart lines never train a stream.
	addrs := []uint64{0, 40960, 4096, 81920, 12288, 57344}
	covered := h.PrefetchedMisses
	for _, a := range addrs {
		h.Access(a, 8, false)
	}
	if h.PrefetchedMisses != covered {
		t.Errorf("random access pattern was prefetched %d times", h.PrefetchedMisses-covered)
	}
}

func TestStreamPrefetcherInterleaved(t *testing.T) {
	cfg := tiny()
	cfg.StreamSlots = 4
	h := New(cfg)
	// Two interleaved sequential streams must both train.
	h.Access(0, 8, false)
	h.Access(1<<20, 8, false)
	h.Access(64, 8, false)
	h.Access(1<<20+64, 8, false)
	misses := 0
	for i := uint64(2); i < 20; i++ {
		if h.Access(i*64, 8, false) == 100 {
			misses++
		}
		if h.Access(1<<20+i*64, 8, false) == 100 {
			misses++
		}
	}
	if misses != 0 {
		t.Errorf("%d uncovered misses in interleaved streams", misses)
	}
}

func TestResetClearsStreams(t *testing.T) {
	cfg := tiny()
	cfg.StreamSlots = 2
	h := New(cfg)
	h.Access(0, 8, false)
	h.Access(64, 8, false)
	h.Access(128, 8, false)
	h.Reset()
	if h.PrefetchedMisses != 0 {
		t.Error("Reset did not clear PrefetchedMisses")
	}
	if lat := h.Access(192, 8, false); lat != 100 {
		t.Errorf("stream survived Reset: lat=%d", lat)
	}
}
