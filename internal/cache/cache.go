// Package cache implements a small set-associative cache hierarchy
// simulator. It supplies the load/store latencies the pipeline model
// consumes, which is how the reproduction captures the two cache effects
// the paper's design leans on: the batch counter keeping each super-batch
// L1-resident, and packing turning strided matrix walks into streaming
// line-friendly access.
package cache

import "fmt"

// LevelConfig describes one cache level.
type LevelConfig struct {
	Name      string
	SizeBytes int
	LineBytes int
	Ways      int
	HitCycles int // total access latency on a hit at this level
}

// Config describes a hierarchy: inner levels first, then main memory.
type Config struct {
	Levels       []LevelConfig
	MemoryCycles int // latency when every level misses
	// StreamSlots enables a hardware stream prefetcher with that many
	// concurrent stream trackers. A miss that continues a detected
	// ascending or descending line stream costs only the innermost hit
	// latency — the prefetch ran ahead. Zero disables the prefetcher.
	StreamSlots int
}

// Stats counts accesses per level.
type Stats struct {
	Name   string
	Hits   uint64
	Misses uint64
}

type level struct {
	cfg     LevelConfig
	sets    [][]uint64 // per-set LRU stack of line tags, front = MRU
	numSets int
	stats   Stats
}

func newLevel(cfg LevelConfig) *level {
	if cfg.LineBytes <= 0 || cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		panic(fmt.Sprintf("cache: invalid level config %+v", cfg))
	}
	numSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	if numSets < 1 {
		numSets = 1
	}
	sets := make([][]uint64, numSets)
	for i := range sets {
		sets[i] = make([]uint64, 0, cfg.Ways)
	}
	return &level{cfg: cfg, sets: sets, numSets: numSets, stats: Stats{Name: cfg.Name}}
}

// access probes one line address; returns true on hit. On miss the line is
// allocated (write-allocate for stores too), evicting LRU.
func (l *level) access(lineAddr uint64) bool {
	set := l.sets[int(lineAddr)%l.numSets]
	for i, tag := range set {
		if tag == lineAddr {
			// Move to front (MRU).
			copy(set[1:i+1], set[:i])
			set[0] = lineAddr
			l.stats.Hits++
			return true
		}
	}
	l.stats.Misses++
	if len(set) < l.cfg.Ways {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = lineAddr
	l.sets[int(lineAddr)%l.numSets] = set
	return false
}

// stream is one hardware-prefetcher tracker: the last line touched, the
// detected constant line stride, and how many times the stride repeated.
type stream struct {
	last   uint64
	stride int64
	conf   int
	live   bool
}

// Hierarchy is a simulated multi-level data cache.
type Hierarchy struct {
	cfg      Config
	levels   []*level
	streams  []stream
	nextSlot int
	// PrefetchedMisses counts misses hidden by the stream prefetcher.
	PrefetchedMisses uint64
}

// New builds a hierarchy from the configuration.
func New(cfg Config) *Hierarchy {
	h := &Hierarchy{cfg: cfg, streams: make([]stream, cfg.StreamSlots)}
	for _, lc := range cfg.Levels {
		h.levels = append(h.levels, newLevel(lc))
	}
	return h
}

// maxStride is the largest line stride (either direction) the modeled
// prefetcher trains on, matching typical hardware stride prefetchers.
const maxStride = 16

// streamAdvance updates the prefetcher state for a line access and
// reports whether the line continues a trained constant-stride stream
// (so an outstanding prefetch would already cover it).
func (h *Hierarchy) streamAdvance(lineAddr uint64) bool {
	for i := range h.streams {
		s := &h.streams[i]
		if !s.live {
			continue
		}
		d := int64(lineAddr) - int64(s.last)
		switch {
		case d == 0:
			return true
		case s.stride != 0 && d == s.stride:
			s.last = lineAddr
			s.conf++
			// The first repeat trains the stream; from then on the
			// prefetcher runs ahead.
			return s.conf >= 1
		case s.stride == 0 && d >= -maxStride && d <= maxStride:
			s.stride = d
			s.conf = 1
			s.last = lineAddr
			return false
		}
	}
	// New stream: claim a slot round-robin.
	if len(h.streams) > 0 {
		h.streams[h.nextSlot] = stream{last: lineAddr, live: true}
		h.nextSlot = (h.nextSlot + 1) % len(h.streams)
	}
	return false
}

// Access simulates a data access of size bytes at byte address addr and
// returns its latency in cycles. Accesses that straddle cache lines probe
// every line touched; the reported latency is the slowest line (the
// accesses pipeline). Misses allocate at every level they traverse.
func (h *Hierarchy) Access(addr uint64, size int, _ bool) int {
	if len(h.levels) == 0 {
		return h.cfg.MemoryCycles
	}
	if size < 1 {
		size = 1
	}
	line := uint64(h.levels[0].cfg.LineBytes)
	first := addr / line
	last := (addr + uint64(size) - 1) / line
	worst := 0
	for ln := first; ln <= last; ln++ {
		lat := h.accessLine(ln)
		if lat > worst {
			worst = lat
		}
	}
	return worst
}

func (h *Hierarchy) accessLine(lineAddr uint64) int {
	covered := false
	if len(h.streams) > 0 {
		covered = h.streamAdvance(lineAddr)
	}
	for _, l := range h.levels {
		hit := l.access(lineAddr)
		if hit {
			return l.cfg.HitCycles
		}
	}
	if covered && len(h.levels) > 0 {
		h.PrefetchedMisses++
		return h.levels[0].cfg.HitCycles
	}
	return h.cfg.MemoryCycles
}

// Prefetch warms the line containing addr without charging latency — the
// effect of PRFM issued far enough ahead.
func (h *Hierarchy) Prefetch(addr uint64) {
	if len(h.levels) == 0 {
		return
	}
	line := uint64(h.levels[0].cfg.LineBytes)
	h.accessLine(addr / line)
}

// Stats returns per-level counters, innermost first.
func (h *Hierarchy) Stats() []Stats {
	out := make([]Stats, len(h.levels))
	for i, l := range h.levels {
		out[i] = l.stats
	}
	return out
}

// Reset clears contents and statistics.
func (h *Hierarchy) Reset() {
	for i, l := range h.levels {
		h.levels[i] = newLevel(l.cfg)
	}
	h.streams = make([]stream, h.cfg.StreamSlots)
	h.nextSlot = 0
	h.PrefetchedMisses = 0
}

// LineBytes returns the innermost level's line size (64 if no levels).
func (h *Hierarchy) LineBytes() int {
	if len(h.levels) == 0 {
		return 64
	}
	return h.levels[0].cfg.LineBytes
}
