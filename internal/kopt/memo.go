// Kernel-schedule memoization with export/import: the install-time
// stage's product — generated, list-scheduled kernel programs — is pure
// data, so a Memo keyed by the generator spec and the scheduling machine
// can be serialized and reloaded by a later process. The paper's
// install-time stage then runs once per machine, not once per process.
package kopt

import (
	"sync"

	"iatf/internal/asm"
)

// MemoKey is the serializable identity of one scheduled kernel: the
// stable string rendering of the generator spec, the optimizer/prefetch
// flags, and the fingerprint of the machine profile the schedule was
// built against (schedules are profile-specific — latencies and issue
// ports shape the instruction order).
type MemoKey struct {
	Spec string `json:"spec"`
	Opt  bool   `json:"opt"`
	Pf   bool   `json:"pf"`
	Prof string `json:"prof"`
}

// MemoEntry is one exported kernel: its key and the scheduled program.
type MemoEntry struct {
	Key  MemoKey  `json:"key"`
	Prog asm.Prog `json:"prog"`
}

// memoVal pairs a cached program with the serializable key it exports
// under.
type memoVal struct {
	key  MemoKey
	prog asm.Prog
}

// Memo is a concurrency-safe kernel-schedule cache. Lookups hit a live
// map keyed by the caller's comparable spec tuple (no string rendering
// on the hit path); entries imported from a store sit in a second map
// keyed by MemoKey and are promoted to the live map on first use.
type Memo struct {
	mu       sync.Mutex
	live     map[any]memoVal
	imported map[MemoKey]asm.Prog

	hits       uint64
	misses     uint64
	importHits uint64
}

// NewMemo returns an empty memo.
func NewMemo() *Memo {
	return &Memo{live: make(map[any]memoVal), imported: make(map[MemoKey]asm.Prog)}
}

// Get returns the cached program for liveKey. On a live miss it renders
// the serializable key via mk and consults the imported set, promoting a
// hit into the live map so subsequent lookups never re-render.
func (m *Memo) Get(liveKey any, mk func() MemoKey) (asm.Prog, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if v, ok := m.live[liveKey]; ok {
		m.hits++
		return v.prog, true
	}
	key := mk()
	if p, ok := m.imported[key]; ok {
		m.importHits++
		m.live[liveKey] = memoVal{key: key, prog: p}
		delete(m.imported, key)
		return p, true
	}
	m.misses++
	return nil, false
}

// Put inserts a freshly built schedule under both key forms.
func (m *Memo) Put(liveKey any, key MemoKey, p asm.Prog) {
	m.mu.Lock()
	m.live[liveKey] = memoVal{key: key, prog: p}
	m.mu.Unlock()
}

// Len returns the number of cached kernels (live + imported-not-yet-used).
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.live) + len(m.imported)
}

// Stats returns the lookup counters: live hits, misses (schedules
// built), and lookups served by imported entries.
func (m *Memo) Stats() (hits, misses, importHits uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses, m.importHits
}

// Export returns every cached kernel whose key's profile fingerprint
// matches prof (empty prof exports everything): the live entries plus
// any imported entries not yet promoted, so re-saving a store never
// drops kernels it was loaded from.
func (m *Memo) Export(prof string) []MemoEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MemoEntry, 0, len(m.live)+len(m.imported))
	for _, v := range m.live {
		if prof == "" || v.key.Prof == prof {
			out = append(out, MemoEntry{Key: v.key, Prog: v.prog})
		}
	}
	for k, p := range m.imported {
		if prof == "" || k.Prof == prof {
			out = append(out, MemoEntry{Key: k, Prog: p})
		}
	}
	return out
}

// Import merges entries into the imported set and reports how many were
// new. Entries already present (imported or live under the same key) are
// skipped: a schedule built in-process wins over a stored copy.
func (m *Memo) Import(entries []MemoEntry) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	liveKeys := make(map[MemoKey]bool, len(m.live))
	for _, v := range m.live {
		liveKeys[v.key] = true
	}
	n := 0
	for _, e := range entries {
		if len(e.Prog) == 0 || liveKeys[e.Key] {
			continue
		}
		if _, ok := m.imported[e.Key]; ok {
			continue
		}
		m.imported[e.Key] = e.Prog
		n++
	}
	return n
}
