package kopt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"iatf/internal/asm"
	"iatf/internal/machine"
	"iatf/internal/vec"
)

type vecV = vec.V[float64]

// randProg builds a random but well-formed kernel-like program: loads
// from pA/pB into low registers, arithmetic into high registers, pointer
// bumps, and a trailing store.
func randProg(rng *rand.Rand, n int) asm.Prog {
	p := make(asm.Prog, 0, n+1)
	for i := 0; i < n; i++ {
		switch rng.Intn(6) {
		case 0:
			p = append(p, asm.Instr{Op: asm.LDR, D: uint8(rng.Intn(8)), P: asm.PA, Off: int32(rng.Intn(8))})
		case 1:
			p = append(p, asm.Instr{Op: asm.LDP, D: uint8(rng.Intn(4) * 2), D2: uint8(rng.Intn(4)*2 + 1), P: asm.PB})
		case 2:
			p = append(p, asm.Instr{Op: asm.FMUL, D: uint8(16 + rng.Intn(16)), A: uint8(rng.Intn(16)), B: uint8(rng.Intn(16))})
		case 3:
			p = append(p, asm.Instr{Op: asm.FMLA, D: uint8(16 + rng.Intn(16)), A: uint8(rng.Intn(16)), B: uint8(rng.Intn(16))})
		case 4:
			p = append(p, asm.Instr{Op: asm.ADDI, P: asm.PA, Off: int32(1 + rng.Intn(4))})
		case 5:
			p = append(p, asm.Instr{Op: asm.FMLS, D: uint8(16 + rng.Intn(16)), A: uint8(rng.Intn(16)), B: uint8(rng.Intn(16))})
		}
	}
	p = append(p, asm.Instr{Op: asm.STR, D: uint8(16 + rng.Intn(16)), P: asm.PC})
	return p
}

// Property: for arbitrary well-formed programs, the optimizer produces a
// dependence-preserving permutation that never costs more cycles.
func TestOptimizePropertyRandomPrograms(t *testing.T) {
	o := Options{Prof: machine.Kunpeng920(), ElemBytes: 8}
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + int(size)%60
		p := randProg(rng, n)
		opt := Optimize(p, o)
		if err := Verify(p, opt); err != nil {
			t.Logf("seed=%d: %v", seed, err)
			return false
		}
		return Cost(opt, o) <= Cost(p, o)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: optimized programs execute identically on the VM for random
// programs and random memory.
func TestOptimizePropertyVMEquivalence(t *testing.T) {
	o := Options{Prof: machine.Kunpeng920(), ElemBytes: 8}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randProg(rng, 40)
		opt := Optimize(p, o)
		mem := make([]float64, 256)
		for i := range mem {
			mem[i] = rng.Float64()
		}
		run := func(prog asm.Prog) ([]float64, [32]vecV) {
			m := make([]float64, len(mem))
			copy(m, mem)
			vm := &asm.VM[float64]{Mem: m}
			vm.P[asm.PB] = 32
			vm.P[asm.PC] = 128
			if err := vm.Run(prog); err != nil {
				t.Fatalf("seed=%d: %v", seed, err)
			}
			return m, vm.V
		}
		m1, v1 := run(p)
		m2, v2 := run(opt)
		for i := range m1 {
			if m1[i] != m2[i] {
				return false
			}
		}
		// Architectural register state must match too (the optimizer
		// reorders but never changes dataflow).
		return v1 == v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
