package kopt

import (
	"math/rand"
	"testing"

	"iatf/internal/asm"
	"iatf/internal/ktmpl"
	"iatf/internal/machine"
	"iatf/internal/vec"
)

func opts(dt vec.DType) Options {
	return Options{Prof: machine.Kunpeng920(), ElemBytes: dt.ElemBytes(), Prefetch: true}
}

// The optimizer must preserve the dependence structure of every generated
// GEMM kernel in the registry.
func TestOptimizePreservesDependences(t *testing.T) {
	for _, dt := range vec.DTypes {
		for _, sz := range ktmpl.GEMMKernelSizes(dt) {
			s := ktmpl.GEMMSpec{DT: dt, MC: sz.MC, NC: sz.NC, K: 7, StrideC: sz.MC}
			prog, err := ktmpl.GenGEMM(s)
			if err != nil {
				t.Fatal(err)
			}
			opt := Optimize(prog, opts(dt))
			if err := Verify(prog, opt); err != nil {
				t.Errorf("%v %dx%d: %v", dt, sz.MC, sz.NC, err)
			}
		}
	}
}

// Behavioural equivalence: the optimized kernel must compute bit-identical
// results on the VM.
func TestOptimizedKernelSameResults(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dt := range []vec.DType{vec.D, vec.C} {
		sz := ktmpl.MainGEMMKernel(dt)
		s := ktmpl.GEMMSpec{DT: dt, MC: sz.MC, NC: sz.NC, K: 9, StrideC: sz.MC + 1}
		prog, err := ktmpl.GenGEMM(s)
		if err != nil {
			t.Fatal(err)
		}
		opt := Optimize(prog, opts(dt))

		bl := dt.Pack()
		if dt.IsComplex() {
			bl *= 2
		}
		lenA := s.K * s.MC * bl
		lenB := s.K * s.NC * bl
		lenC := s.NC * s.StrideC * bl
		if dt.Real() == vec.S {
			compareRun[float32](t, prog, opt, rng, lenA, lenB, lenC)
		} else {
			compareRun[float64](t, prog, opt, rng, lenA, lenB, lenC)
		}
	}
}

func compareRun[E vec.Float](t *testing.T, a, b asm.Prog, rng *rand.Rand, lenA, lenB, lenC int) {
	t.Helper()
	mem := make([]E, lenA+lenB+lenC+2)
	for i := range mem {
		mem[i] = E(rng.Float64())
	}
	run := func(p asm.Prog) []E {
		m := make([]E, len(mem))
		copy(m, mem)
		vm := &asm.VM[E]{Mem: m}
		vm.P[asm.PA] = 0
		vm.P[asm.PB] = lenA
		vm.P[asm.PC] = lenA + lenB
		vm.P[asm.PAlpha] = lenA + lenB + lenC
		if err := vm.Run(p); err != nil {
			t.Fatal(err)
		}
		return m
	}
	ra, rb := run(a), run(b)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("memory diverges at %d: %v vs %v", i, ra[i], rb[i])
		}
	}
}

// Figure 5's point: the optimized schedule must cost fewer modeled cycles
// than the directly generated one for the 4×4 DGEMM kernel.
func TestOptimizeImprovesCost(t *testing.T) {
	s := ktmpl.GEMMSpec{DT: vec.D, MC: 4, NC: 4, K: 16, StrideC: 4}
	prog, err := ktmpl.GenGEMM(s)
	if err != nil {
		t.Fatal(err)
	}
	o := opts(vec.D)
	raw := Cost(prog, o)
	opt := Cost(Optimize(prog, o), o)
	if opt >= raw {
		t.Errorf("optimized cost %d not better than raw %d", opt, raw)
	}
	// The kernel is FP-bound at one FMA port: 16 K-steps × 16 FMAs ≥ 256
	// cycles. The optimized schedule should be within 40%% of that bound.
	if opt > 256*14/10 {
		t.Errorf("optimized cost %d too far from the 256-cycle FP bound", opt)
	}
}

// The optimizer must also improve (or at least not hurt) every other
// registry kernel.
func TestOptimizeNeverHurts(t *testing.T) {
	for _, dt := range vec.DTypes {
		for _, sz := range ktmpl.GEMMKernelSizes(dt) {
			s := ktmpl.GEMMSpec{DT: dt, MC: sz.MC, NC: sz.NC, K: 8, StrideC: sz.MC}
			prog, err := ktmpl.GenGEMM(s)
			if err != nil {
				t.Fatal(err)
			}
			o := opts(dt)
			if c, r := Cost(Optimize(prog, o), o), Cost(prog, o); c > r {
				t.Errorf("%v %dx%d: optimized %d > raw %d", dt, sz.MC, sz.NC, c, r)
			}
		}
	}
}

func TestPrefetchInsertion(t *testing.T) {
	s := ktmpl.GEMMSpec{DT: vec.D, MC: 4, NC: 4, K: 4, StrideC: 4}
	prog, err := ktmpl.GenGEMM(s)
	if err != nil {
		t.Fatal(err)
	}
	opt := Optimize(prog, opts(vec.D))
	prfm := 0
	for _, in := range opt {
		if in.Op == asm.PRFM {
			prfm++
			if in.P != asm.PC {
				t.Error("prefetch must target the C pointer")
			}
		}
	}
	// C tile: 4 columns × 4 blocks × 2 f64 = 32 doubles per column at
	// stride 4 blocks; 4 distinct 64-byte lines.
	if prfm != 4 {
		t.Errorf("prefetch count = %d, want 4", prfm)
	}
	// Without the option, none.
	noPf := Optimize(prog, Options{Prof: machine.Kunpeng920(), ElemBytes: 8})
	for _, in := range noPf {
		if in.Op == asm.PRFM {
			t.Error("prefetch inserted without Prefetch option")
		}
	}
}

// The optimizer must interleave loads among calculation instructions: in
// the optimized kernel no long run of consecutive loads should remain.
func TestLoadsAreInterleaved(t *testing.T) {
	s := ktmpl.GEMMSpec{DT: vec.D, MC: 4, NC: 4, K: 16, StrideC: 4}
	prog, err := ktmpl.GenGEMM(s)
	if err != nil {
		t.Fatal(err)
	}
	opt := Optimize(prog, opts(vec.D))
	// The TEMPLATE_I prologue legitimately streams loads before any
	// operand is computable; measure interleaving after the first FP
	// instruction, where the raw kernel still has 4-LDP runs per step.
	maxRun, run := 0, 0
	seenFP := false
	for _, in := range opt {
		switch {
		case in.Op.IsFP():
			seenFP = true
			run = 0
		case in.Op.IsLoad() && seenFP:
			run++
			if run > maxRun {
				maxRun = run
			}
		}
	}
	if maxRun > 3 {
		t.Errorf("longest post-prologue load run = %d, want ≤ 3", maxRun)
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	s := ktmpl.GEMMSpec{DT: vec.S, MC: 3, NC: 3, K: 5, StrideC: 3}
	prog, err := ktmpl.GenGEMM(s)
	if err != nil {
		t.Fatal(err)
	}
	a := Optimize(prog, opts(vec.S))
	b := Optimize(prog, opts(vec.S))
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestOptimizeTRSMKernels(t *testing.T) {
	tri, err := ktmpl.GenTRSMTri(ktmpl.TriSpec{DT: vec.D, M: 4, NCols: 8, StrideB: 4})
	if err != nil {
		t.Fatal(err)
	}
	o := opts(vec.D)
	optTri := Optimize(tri, o)
	if err := Verify(tri, optTri); err != nil {
		t.Errorf("tri: %v", err)
	}
	if Cost(optTri, o) > Cost(tri, o) {
		t.Error("tri optimization hurt")
	}
	rect, err := ktmpl.GenTRSMRect(ktmpl.RectSpec{DT: vec.D, MC: 4, NC: 4, K: 8, StrideC: 4, StrideX: 8})
	if err != nil {
		t.Fatal(err)
	}
	optRect := Optimize(rect, o)
	if err := Verify(rect, optRect); err != nil {
		t.Errorf("rect: %v", err)
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	p := asm.Prog{
		{Op: asm.LDR, D: 0, P: asm.PA},
		{Op: asm.FMUL, D: 1, A: 0, B: 0},
	}
	swapped := asm.Prog{p[1], p[0]}
	if err := Verify(p, swapped); err == nil {
		t.Error("Verify accepted a dependence violation")
	}
	if err := Verify(p, asm.Prog{p[0]}); err == nil {
		t.Error("Verify accepted a dropped instruction")
	}
	foreign := asm.Prog{p[0], {Op: asm.FMUL, D: 2, A: 2, B: 2}}
	if err := Verify(p, foreign); err == nil {
		t.Error("Verify accepted a foreign instruction")
	}
}

func TestCostEmptyAndTiny(t *testing.T) {
	o := opts(vec.D)
	if Optimize(nil, o) != nil && len(Optimize(nil, o)) != 0 {
		t.Error("Optimize(nil) not empty")
	}
	one := asm.Prog{{Op: asm.FMUL, D: 0, A: 1, B: 2}}
	if got := Optimize(one, Options{Prof: machine.Kunpeng920(), ElemBytes: 8}); len(got) != 1 {
		t.Error("single instruction lost")
	}
	if Cost(one, o) < 1 {
		t.Error("cost must be positive")
	}
}
