// Package kopt is the IATF kernel optimizer (paper §4.3, Figure 5). A
// directly generated kernel issues its loads back to back and its
// arithmetic back to back, stalling the in-order pipeline twice: dependent
// instructions sit too close together, and computation cannot hide load
// latency. The optimizer rebuilds the instruction schedule:
//
//  1. it constructs the register/memory dependence DAG of the kernel,
//  2. it list-schedules the DAG against the target machine's issue ports
//     and latencies, which both spreads dependent pairs apart and
//     interleaves loads between calculation instructions, and
//  3. it inserts PRFM prefetches for the C tile at the start of the kernel
//     (A and B are already L1-resident after packing; C is not).
//
// Every transformation preserves the dependence order, which Verify checks
// structurally and the package tests check behaviourally by executing the
// kernel before and after on the asm VM.
package kopt

import (
	"fmt"
	"sort"

	"iatf/internal/asm"
	"iatf/internal/machine"
)

// Options configure the optimizer for a target machine.
type Options struct {
	Prof      machine.Profile
	ElemBytes int
	// AssumedLoadCycles is the load latency the static scheduler plans
	// for (the L1 hit latency; packed operands are L1-resident by
	// design). Zero selects the profile's innermost cache latency.
	AssumedLoadCycles int
	// Prefetch inserts PRFM instructions for the C-tile lines.
	Prefetch bool
}

func (o Options) loadLat() int {
	if o.AssumedLoadCycles > 0 {
		return o.AssumedLoadCycles
	}
	if len(o.Prof.Cache.Levels) > 0 {
		return o.Prof.Cache.Levels[0].HitCycles
	}
	return 4
}

func (o Options) latency(in asm.Instr) int {
	switch {
	case in.Op == asm.PRFM:
		return 1
	case in.Op.IsLoad():
		return o.loadLat()
	case in.Op.IsStore():
		return 1
	case in.Op == asm.FDIV:
		if o.ElemBytes == 4 {
			return o.Prof.LatDiv32
		}
		return o.Prof.LatDiv64
	case in.Op == asm.FMLA, in.Op == asm.FMLS, in.Op == asm.FMLAe, in.Op == asm.FMLSe:
		return o.Prof.LatFMA
	case in.Op == asm.FMUL, in.Op == asm.FMULe:
		return o.Prof.LatMul
	case in.Op == asm.FADD, in.Op == asm.FSUB:
		return o.Prof.LatAdd
	}
	return 1
}

// Optimize returns a rescheduled copy of the kernel. The input program is
// not modified.
func Optimize(p asm.Prog, o Options) asm.Prog {
	if o.Prefetch {
		p = insertPrefetch(p, o)
	}
	return schedule(p, o)
}

// insertPrefetch prepends one PRFM per distinct C-tile cache line touched
// by the kernel's stores (§4.3: "matrix C is still in the memory, thus we
// use the PRFM instruction ... to prefetch it at the beginning").
func insertPrefetch(p asm.Prog, o Options) asm.Prog {
	lineElems := 64 / o.ElemBytes
	seen := map[int32]bool{}
	var lines []int32
	for _, in := range p {
		if in.P != asm.PC || !in.Op.IsMem() || in.Op == asm.PRFM {
			continue
		}
		ln := in.Off / int32(lineElems)
		if !seen[ln] {
			seen[ln] = true
			lines = append(lines, ln)
		}
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	out := make(asm.Prog, 0, len(p)+len(lines))
	for i, ln := range lines {
		cmt := ""
		if i == 0 {
			cmt = "prefetch C"
		}
		out = append(out, asm.Instr{Op: asm.PRFM, P: asm.PC, Off: ln * int32(lineElems), Comment: cmt})
	}
	return append(out, p...)
}

// schedule performs latency- and port-aware list scheduling over the
// dependence DAG.
func schedule(p asm.Prog, o Options) asm.Prog {
	n := len(p)
	if n < 2 {
		return append(asm.Prog(nil), p...)
	}

	// Dependence edges carry type-specific delays: a true (RAW) dependence
	// waits for the producer's latency; an output (WAW) dependence only
	// needs the next cycle; anti (WAR) and memory-ordering dependences
	// only constrain issue order.
	type edge struct{ to, delay int }
	succs := make([][]edge, n)
	preds := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !asm.DependsOn(p[i], p[j]) {
				continue
			}
			delay := 0
			switch {
			case p[j].Reads().Has(p[i].Writes()):
				delay = o.latency(p[i])
			case p[j].Writes().Has(p[i].Writes()):
				delay = 1
			}
			succs[i] = append(succs[i], edge{j, delay})
			preds[j] = append(preds[j], i)
		}
	}

	// Critical-path priority: longest delay-weighted path to any sink.
	prio := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		best := 0
		for _, e := range succs[i] {
			if v := prio[e.to] + e.delay; v > best {
				best = v
			}
		}
		prio[i] = best + 1
	}

	indeg := make([]int, n)
	for i := range preds {
		indeg[i] = len(preds[i])
	}
	// predDone[i]: cycle when i's operands are available.
	predDone := make([]int64, n)

	fpPorts := o.Prof.FPPorts(o.ElemBytes)
	type slot struct{ mem, fp, intg int }
	slots := map[int64]slot{}
	canIssue := func(in asm.Instr, c int64) bool {
		s := slots[c]
		switch {
		case in.Op.IsMem():
			if s.mem >= o.Prof.MemPorts {
				return false
			}
			if o.Prof.GroupWidth > 0 && s.mem+s.fp >= o.Prof.GroupWidth {
				return false
			}
		case in.Op.IsFP():
			if s.fp >= fpPorts {
				return false
			}
			if o.Prof.GroupWidth > 0 && s.mem+s.fp >= o.Prof.GroupWidth {
				return false
			}
		default:
			if s.intg >= o.Prof.IntPorts {
				return false
			}
		}
		return true
	}
	issue := func(in asm.Instr, c int64) {
		s := slots[c]
		switch {
		case in.Op.IsMem():
			s.mem++
		case in.Op.IsFP():
			s.fp++
		default:
			s.intg++
		}
		slots[c] = s
	}

	var ready []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}

	out := make(asm.Prog, 0, n)
	var clock int64
	for len(out) < n {
		// Pick the ready instruction with the earliest feasible issue
		// cycle; break ties by critical-path priority, then program order.
		bestIdx, bestPos := -1, -1
		var bestCycle int64
		for pos, i := range ready {
			c := predDone[i]
			if c < clock {
				c = clock
			}
			for !canIssue(p[i], c) {
				c++
			}
			better := bestIdx < 0 || c < bestCycle ||
				(c == bestCycle && prio[i] > prio[bestIdx]) ||
				(c == bestCycle && prio[i] == prio[bestIdx] && i < bestIdx)
			if better {
				bestIdx, bestPos, bestCycle = i, pos, c
			}
		}
		i := bestIdx
		issue(p[i], bestCycle)
		if bestCycle > clock {
			// Allow later picks to back-fill earlier cycles only up to
			// port limits already recorded; advancing the clock keeps the
			// schedule in nondecreasing cycle order per pick, which is
			// what an in-order front end can actually realize.
			clock = bestCycle
		}
		out = append(out, p[i])
		ready = append(ready[:bestPos], ready[bestPos+1:]...)
		for _, e := range succs[i] {
			if done := bestCycle + int64(e.delay); done > predDone[e.to] {
				predDone[e.to] = done
			}
			indeg[e.to]--
			if indeg[e.to] == 0 {
				ready = append(ready, e.to)
			}
		}
	}
	return out
}

// Verify checks that sched is a permutation of orig that preserves every
// dependence pair's relative order. PRFM instructions added by the
// optimizer are ignored.
func Verify(orig, sched asm.Prog) error {
	var s2 asm.Prog
	for _, in := range sched {
		if in.Op == asm.PRFM {
			continue
		}
		s2 = append(s2, in)
	}
	var o2 asm.Prog
	for _, in := range orig {
		if in.Op == asm.PRFM {
			continue
		}
		o2 = append(o2, in)
	}
	if len(o2) != len(s2) {
		return fmt.Errorf("kopt: schedule has %d instructions, original %d", len(s2), len(o2))
	}
	// Match each scheduled instruction to an original occurrence
	// (instructions may repeat; match greedily in order).
	used := make([]bool, len(o2))
	pos := make([]int, len(s2))
	for i, in := range s2 {
		found := -1
		for j, oin := range o2 {
			if !used[j] && oin == in {
				found = j
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("kopt: scheduled instruction %d not in original: %+v", i, in)
		}
		used[found] = true
		pos[i] = found
	}
	// Dependence pairs in the original must keep their order.
	where := make([]int, len(o2))
	for i, j := range pos {
		where[j] = i
	}
	for a := 0; a < len(o2); a++ {
		for b := a + 1; b < len(o2); b++ {
			if asm.DependsOn(o2[a], o2[b]) && where[a] > where[b] {
				return fmt.Errorf("kopt: dependence violated: original %d must precede %d", a, b)
			}
		}
	}
	return nil
}

// Cost statically evaluates a schedule: the cycle count of issuing the
// program in its given order under the options' port and latency model
// (loads at the assumed L1 latency). It is the objective Figure 5's
// transformation improves, and the ablation benchmarks report it.
func Cost(p asm.Prog, o Options) int64 {
	fpPorts := o.Prof.FPPorts(o.ElemBytes)
	var regReady [40]int64
	var cycle int64
	mem, fp, intg := 0, 0, 0
	advance := func(to int64) {
		if to > cycle {
			cycle = to
			mem, fp, intg = 0, 0, 0
		}
	}
	maxEnd := int64(0)
	for _, in := range p {
		ready := cycle
		m := in.Reads()
		for r := 0; m != 0 && r < 40; r++ {
			if m&1 != 0 && regReady[r] > ready {
				ready = regReady[r]
			}
			m >>= 1
		}
		advance(ready)
		for {
			ok := true
			switch {
			case in.Op.IsMem():
				ok = mem < o.Prof.MemPorts &&
					(o.Prof.GroupWidth == 0 || mem+fp < o.Prof.GroupWidth)
			case in.Op.IsFP():
				ok = fp < fpPorts &&
					(o.Prof.GroupWidth == 0 || mem+fp < o.Prof.GroupWidth)
			default:
				ok = intg < o.Prof.IntPorts
			}
			if ok {
				break
			}
			advance(cycle + 1)
		}
		switch {
		case in.Op.IsMem():
			mem++
		case in.Op.IsFP():
			fp++
		default:
			intg++
		}
		done := cycle + int64(o.latency(in))
		w := in.Writes()
		for r := 0; w != 0 && r < 40; r++ {
			if w&1 != 0 {
				regReady[r] = done
			}
			w >>= 1
		}
		if done > maxEnd {
			maxEnd = done
		}
	}
	if cycle+1 > maxEnd {
		maxEnd = cycle + 1
	}
	return maxEnd
}
