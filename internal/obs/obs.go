// Package obs is the engine's per-shape observability layer. IATF's
// premise is input-aware dispatch: every decision the run-time stage
// makes — plan reuse, packing strategy, super-batch size, worker split —
// is a function of the input descriptor, so the natural unit of
// observation is the (op, dtype, mode, shape) series, not a process-wide
// counter. A Registry keeps one rolling Series per shape: call and error
// counts, a log2 latency histogram (p50/p99 without storing samples),
// achieved GFLOPS against the plan's CMAR-predicted ceiling, plan-cache
// outcomes, and the plan's static decisions (pack-vs-nopack, groups per
// super-batch).
//
// Everything on the record path is lock-free after the first call on a
// shape: Series fields are atomics, so observation adds a few dozen
// nanoseconds and zero allocations to the warm dispatch path.
package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// CacheOutcome classifies how a call's plan was obtained.
type CacheOutcome int

const (
	// CacheMiss: this call built the plan.
	CacheMiss CacheOutcome = iota
	// CacheHit: the plan was already cached.
	CacheHit
	// CacheShared: another in-flight call was building the same plan and
	// this call waited for it (single-flight).
	CacheShared
	// CacheHydrated: first use of a plan loaded from the persistent
	// autotune store — served from cache, but this call is the one that
	// records the plan's static decisions (ceiling, packing, batch size)
	// the way a miss would.
	CacheHydrated
)

// String returns "miss", "hit", "shared" or "hydrated".
func (c CacheOutcome) String() string {
	switch c {
	case CacheHit:
		return "hit"
	case CacheShared:
		return "shared"
	case CacheHydrated:
		return "hydrated"
	}
	return "miss"
}

// ShapeKey identifies one observed series: the routine, element type,
// mode string (trans/side/uplo/diag, e.g. "NN" or "LNLN") and problem
// dimensions. The batch count is deliberately excluded — it is the axis
// calls vary along, not part of the shape.
type ShapeKey struct {
	Op    string `json:"op"`
	DType string `json:"dtype"`
	Mode  string `json:"mode"`
	M     int    `json:"m"`
	N     int    `json:"n"`
	K     int    `json:"k,omitempty"`
}

// histBuckets is the number of log2 latency buckets: bucket b holds
// durations in (2^(b-1), 2^b] nanoseconds, covering 1 ns to ~9 minutes.
const histBuckets = 40

// Series is the rolling per-shape state. All fields are atomic; Record
// and the Plan/SetPlan setters are safe for concurrent use.
type Series struct {
	calls  atomic.Uint64
	errors atomic.Uint64

	hits     atomic.Uint64
	misses   atomic.Uint64
	shared   atomic.Uint64
	hydrated atomic.Uint64

	ns    atomic.Uint64 // total latency, nanoseconds
	flops atomic.Uint64 // total useful flops
	hist  [histBuckets]atomic.Uint64

	bestGF  atomic.Uint64 // math.Float64bits of the best achieved GFLOPS
	ceiling atomic.Uint64 // math.Float64bits of the CMAR-predicted ceiling

	pack    atomic.Pointer[string] // pack-vs-nopack decision, e.g. "A+B"
	groups  atomic.Int64           // plan's groups per super-batch
	workers atomic.Int64           // last resolved worker count

	prepackHits   atomic.Uint64 // calls served from the packed-operand cache
	prepackBuilds atomic.Uint64 // calls that built a packed-operand image
}

// Prepack records one packed-operand cache interaction: hit means the
// call reused a cached packed image, otherwise it built (and cached) one.
func (s *Series) Prepack(hit bool) {
	if hit {
		s.prepackHits.Add(1)
	} else {
		s.prepackBuilds.Add(1)
	}
}

// Plan records the plan-cache outcome of one call.
func (s *Series) Plan(o CacheOutcome) {
	switch o {
	case CacheHit:
		s.hits.Add(1)
	case CacheShared:
		s.shared.Add(1)
	case CacheHydrated:
		s.hydrated.Add(1)
	default:
		s.misses.Add(1)
	}
}

// SetPlan stores the plan's static, input-aware decisions: the
// CMAR-predicted GFLOPS ceiling, the packing decision and the Batch
// Counter's groups-per-super-batch choice. Called when a plan is built
// (or rebuilt); last write wins.
func (s *Series) SetPlan(ceilingGFLOPS float64, pack string, groupsPerBatch int) {
	s.ceiling.Store(math.Float64bits(ceilingGFLOPS))
	s.pack.Store(&pack)
	s.groups.Store(int64(groupsPerBatch))
}

// SetWorkers records the resolved worker count of the latest call.
func (s *Series) SetWorkers(w int) { s.workers.Store(int64(w)) }

// Record observes one executed call: its wall latency, the useful
// floating-point work it performed, and whether it failed.
func (s *Series) Record(d time.Duration, flops float64, failed bool) {
	s.calls.Add(1)
	if failed {
		s.errors.Add(1)
		return
	}
	n := uint64(d.Nanoseconds())
	s.ns.Add(n)
	s.flops.Add(uint64(flops))
	b := bits.Len64(n)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	s.hist[b].Add(1)
	if sec := d.Seconds(); sec > 0 {
		gf := flops / sec / 1e9
		for {
			old := s.bestGF.Load()
			if gf <= math.Float64frombits(old) {
				break
			}
			if s.bestGF.CompareAndSwap(old, math.Float64bits(gf)) {
				break
			}
		}
	}
}

// quantile returns the upper bound of the histogram bucket holding the
// q-th observation (0 < q <= 1) — an approximation within 2x.
func (s *Series) quantile(q float64) time.Duration {
	var counts [histBuckets]uint64
	for i := range s.hist {
		counts[i] = s.hist[i].Load()
	}
	return histQuantile(&counts, q)
}

// histQuantile is the shared log2-bucket quantile: the upper bound of
// the bucket holding the q-th observation.
func histQuantile(counts *[histBuckets]uint64, q float64) time.Duration {
	total := uint64(0)
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	// Ceiling, not truncation: p99 of two samples must rank the larger
	// one (rank 2), not round down to the median.
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	seen := uint64(0)
	for i, c := range counts {
		seen += c
		if seen >= rank {
			if i == 0 {
				return time.Nanosecond
			}
			return time.Duration(uint64(1) << uint(i))
		}
	}
	return time.Duration(uint64(1) << (histBuckets - 1))
}

// ShapeSnapshot is a point-in-time view of one Series, JSON-exportable.
type ShapeSnapshot struct {
	ShapeKey

	// Shard is the EngineSet shard the series was recorded on
	// (-1 = not shard-attached, including the merged aggregate view).
	Shard int `json:"shard"`

	Calls  uint64 `json:"calls"`
	Errors uint64 `json:"errors,omitempty"`

	PlanHits     uint64 `json:"plan_hits"`
	PlanMisses   uint64 `json:"plan_misses"`
	PlanShared   uint64 `json:"plan_shared,omitempty"`
	PlanHydrated uint64 `json:"plan_hydrated,omitempty"` // first uses of store-loaded plans

	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`

	AvgGFLOPS     float64 `json:"avg_gflops"`
	BestGFLOPS    float64 `json:"best_gflops"`
	CeilingGFLOPS float64 `json:"ceiling_gflops"`

	Pack           string `json:"pack"`
	GroupsPerBatch int    `json:"groups_per_batch"`
	Workers        int    `json:"workers"`

	PrepackHits   uint64 `json:"prepack_hits,omitempty"`
	PrepackBuilds uint64 `json:"prepack_builds,omitempty"`
}

// HitRatio returns the fraction of calls served from the plan cache
// (live hits plus first uses of store-hydrated plans).
func (s ShapeSnapshot) HitRatio() float64 {
	tot := s.PlanHits + s.PlanMisses + s.PlanShared + s.PlanHydrated
	if tot == 0 {
		return 0
	}
	return float64(s.PlanHits+s.PlanHydrated) / float64(tot)
}

func (s *Series) snapshot(key ShapeKey) ShapeSnapshot {
	snap := ShapeSnapshot{
		ShapeKey:     key,
		Calls:        s.calls.Load(),
		Errors:       s.errors.Load(),
		PlanHits:     s.hits.Load(),
		PlanMisses:   s.misses.Load(),
		PlanShared:   s.shared.Load(),
		PlanHydrated: s.hydrated.Load(),
		P50:          s.quantile(0.50),
		P99:          s.quantile(0.99),

		BestGFLOPS:     math.Float64frombits(s.bestGF.Load()),
		CeilingGFLOPS:  math.Float64frombits(s.ceiling.Load()),
		GroupsPerBatch: int(s.groups.Load()),
		Workers:        int(s.workers.Load()),
		PrepackHits:    s.prepackHits.Load(),
		PrepackBuilds:  s.prepackBuilds.Load(),
	}
	if p := s.pack.Load(); p != nil {
		snap.Pack = *p
	}
	if ns := s.ns.Load(); ns > 0 {
		snap.AvgGFLOPS = float64(s.flops.Load()) / (float64(ns) / 1e9) / 1e9
	}
	return snap
}

// Registry holds the per-shape series of one engine plus its trace-hook
// and span-sink configuration.
type Registry struct {
	mu sync.RWMutex
	m  map[ShapeKey]*Series

	// shard is the EngineSet shard label stamped onto snapshots
	// (-1 = not shard-attached).
	shard atomic.Int64

	trace      atomic.Pointer[traceCfg]
	traceCalls atomic.Uint64
	forced     atomic.Int64

	spans atomic.Pointer[spanCfg]

	// tenants is the per-tenant SLO accounting table (tenant.go);
	// nil = accounting disabled.
	tenants atomic.Pointer[tenantTable]

	// deltaMu guards the SnapshotDelta baseline (scrape-window state).
	deltaMu sync.Mutex
	delta   map[ShapeKey]seriesCounters
}

// NewRegistry constructs an empty registry.
func NewRegistry() *Registry {
	r := &Registry{m: make(map[ShapeKey]*Series)}
	r.shard.Store(-1)
	return r
}

// SetShard labels the registry with its EngineSet shard index; every
// snapshot taken afterwards carries it, so cross-shard dumps stay
// attributable after merging.
func (r *Registry) SetShard(k int) { r.shard.Store(int64(k)) }

// Shard returns the registry's shard label (-1 = not shard-attached).
func (r *Registry) Shard() int { return int(r.shard.Load()) }

// Reset drops every per-shape series and the SnapshotDelta baseline, so
// a long-running process can bound the registry's footprint (e.g. after
// exporting a final snapshot, or when shape churn would otherwise grow
// the map unboundedly). In-flight calls holding a *Series keep recording
// into the dropped series harmlessly; new calls start fresh.
func (r *Registry) Reset() {
	r.mu.Lock()
	r.m = make(map[ShapeKey]*Series)
	r.mu.Unlock()
	r.deltaMu.Lock()
	r.delta = nil
	r.deltaMu.Unlock()
}

// Series returns the rolling series for a shape, creating it on first
// use. The lookup is a read-locked map access (no allocation) once the
// shape has been seen.
func (r *Registry) Series(key ShapeKey) *Series {
	r.mu.RLock()
	s := r.m[key]
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s = r.m[key]; s == nil {
		s = &Series{}
		r.m[key] = s
	}
	return s
}

// Snapshot returns a point-in-time view of every observed shape, ordered
// by call count descending (ties broken by key for determinism).
func (r *Registry) Snapshot() []ShapeSnapshot {
	shard := int(r.shard.Load())
	r.mu.RLock()
	out := make([]ShapeSnapshot, 0, len(r.m))
	for key, s := range r.m {
		snap := s.snapshot(key)
		snap.Shard = shard
		out = append(out, snap)
	}
	r.mu.RUnlock()
	sortSnapshots(out)
	return out
}

func sortSnapshots(out []ShapeSnapshot) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Calls != b.Calls {
			return a.Calls > b.Calls
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.DType != b.DType {
			return a.DType < b.DType
		}
		if a.M != b.M {
			return a.M < b.M
		}
		if a.N != b.N {
			return a.N < b.N
		}
		return a.K < b.K
	})
}

// seriesCounters is the monotonic-counter slice of one Series — the
// baseline SnapshotDelta subtracts to produce a scrape window.
type seriesCounters struct {
	calls, errors                  uint64
	hits, misses, shared, hydrated uint64
	ns, flops                      uint64
	prepackHits, prepackBuilds     uint64
	hist                           [histBuckets]uint64
}

func (s *Series) counters() seriesCounters {
	c := seriesCounters{
		calls: s.calls.Load(), errors: s.errors.Load(),
		hits: s.hits.Load(), misses: s.misses.Load(), shared: s.shared.Load(),
		hydrated: s.hydrated.Load(),
		ns:       s.ns.Load(), flops: s.flops.Load(),
		prepackHits: s.prepackHits.Load(), prepackBuilds: s.prepackBuilds.Load(),
	}
	for i := range s.hist {
		c.hist[i] = s.hist[i].Load()
	}
	return c
}

// SnapshotDelta returns a per-shape view of everything observed since
// the previous SnapshotDelta (or since the registry was created/Reset):
// counter fields (calls, errors, plan outcomes, prepack outcomes) are
// window deltas, P50/P99/AvgGFLOPS are computed over the window's
// observations only, and gauge-like fields (Best/Ceiling GFLOPS, pack
// decision, groups, workers) carry the current value. Rate computation
// over a scrape interval therefore needs no external state: each scrape
// calls SnapshotDelta and divides by the scrape period. Shapes with no
// activity in the window are omitted.
func (r *Registry) SnapshotDelta() []ShapeSnapshot {
	r.mu.RLock()
	type pair struct {
		key ShapeKey
		s   *Series
	}
	series := make([]pair, 0, len(r.m))
	for key, s := range r.m {
		series = append(series, pair{key, s})
	}
	r.mu.RUnlock()

	r.deltaMu.Lock()
	defer r.deltaMu.Unlock()
	if r.delta == nil {
		r.delta = make(map[ShapeKey]seriesCounters, len(series))
	}
	out := make([]ShapeSnapshot, 0, len(series))
	for _, p := range series {
		cur := p.s.counters()
		prev := r.delta[p.key]
		r.delta[p.key] = cur
		if cur.calls == prev.calls {
			continue // no activity in the window
		}
		var hist [histBuckets]uint64
		for i := range hist {
			hist[i] = cur.hist[i] - prev.hist[i]
		}
		snap := ShapeSnapshot{
			ShapeKey:     p.key,
			Shard:        int(r.shard.Load()),
			Calls:        cur.calls - prev.calls,
			Errors:       cur.errors - prev.errors,
			PlanHits:     cur.hits - prev.hits,
			PlanMisses:   cur.misses - prev.misses,
			PlanShared:   cur.shared - prev.shared,
			PlanHydrated: cur.hydrated - prev.hydrated,
			P50:          histQuantile(&hist, 0.50),
			P99:          histQuantile(&hist, 0.99),

			BestGFLOPS:     math.Float64frombits(p.s.bestGF.Load()),
			CeilingGFLOPS:  math.Float64frombits(p.s.ceiling.Load()),
			GroupsPerBatch: int(p.s.groups.Load()),
			Workers:        int(p.s.workers.Load()),
			PrepackHits:    cur.prepackHits - prev.prepackHits,
			PrepackBuilds:  cur.prepackBuilds - prev.prepackBuilds,
		}
		if pk := p.s.pack.Load(); pk != nil {
			snap.Pack = *pk
		}
		if ns := cur.ns - prev.ns; ns > 0 {
			snap.AvgGFLOPS = float64(cur.flops-prev.flops) / (float64(ns) / 1e9) / 1e9
		}
		out = append(out, snap)
	}
	sortSnapshots(out)
	return out
}

// AggregateShapes merges per-shard snapshot lists into one cross-shard
// view keyed by shape alone: counters sum, AvgGFLOPS is call-weighted,
// Best/Ceiling take the max, and the latency quantiles take the max
// across shards (conservative — per-shard histograms are not exported,
// so the merged quantile reads as "no shard was slower than this").
// The merged rows carry Shard = -1 and the plan descriptor of the
// busiest shard for each shape.
func AggregateShapes(perShard ...[]ShapeSnapshot) []ShapeSnapshot {
	type agg struct {
		snap     ShapeSnapshot
		maxCalls uint64
		flopsW   float64 // sum(AvgGFLOPS_i * calls_i)
	}
	m := make(map[ShapeKey]*agg)
	var order []ShapeKey
	for _, shard := range perShard {
		for _, s := range shard {
			a := m[s.ShapeKey]
			if a == nil {
				a = &agg{snap: s, maxCalls: s.Calls, flopsW: s.AvgGFLOPS * float64(s.Calls)}
				a.snap.Shard = -1
				m[s.ShapeKey] = a
				order = append(order, s.ShapeKey)
				continue
			}
			t := &a.snap
			t.Calls += s.Calls
			t.Errors += s.Errors
			t.PlanHits += s.PlanHits
			t.PlanMisses += s.PlanMisses
			t.PlanShared += s.PlanShared
			t.PlanHydrated += s.PlanHydrated
			t.PrepackHits += s.PrepackHits
			t.PrepackBuilds += s.PrepackBuilds
			a.flopsW += s.AvgGFLOPS * float64(s.Calls)
			if s.P50 > t.P50 {
				t.P50 = s.P50
			}
			if s.P99 > t.P99 {
				t.P99 = s.P99
			}
			if s.BestGFLOPS > t.BestGFLOPS {
				t.BestGFLOPS = s.BestGFLOPS
			}
			if s.CeilingGFLOPS > t.CeilingGFLOPS {
				t.CeilingGFLOPS = s.CeilingGFLOPS
			}
			if s.Workers > t.Workers {
				t.Workers = s.Workers
			}
			if s.Calls > a.maxCalls {
				a.maxCalls = s.Calls
				t.Pack, t.GroupsPerBatch = s.Pack, s.GroupsPerBatch
			}
		}
	}
	out := make([]ShapeSnapshot, 0, len(order))
	for _, k := range order {
		a := m[k]
		if a.snap.Calls > 0 {
			a.snap.AvgGFLOPS = a.flopsW / float64(a.snap.Calls)
		}
		out = append(out, a.snap)
	}
	sortSnapshots(out)
	return out
}
