// Per-tenant SLO accounting: the same input-aware discipline the
// per-shape series apply to problem descriptors, applied to the caller
// identity. A TenantTable keeps one rolling TenantSeries per origin —
// requests/errors/sheds, deadline hits vs misses, a log2 latency
// histogram, and a sliding-window burn rate against the tenant's
// configured objective — fed from FinishSpan, so every resolution path
// (sync, async, fused riders, fuse-time expiry, queue-full rejection)
// lands in the same ledger with zero extra plumbing at the call sites.
//
// Everything on the record path is lock-free after a tenant's first
// request (atomics behind an RLock map access), and the whole layer is
// gated on Span.Origin: untagged requests pay a nil-string check, tagged
// requests on an engine without a table pay one atomic pointer load.

package obs

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TenantObjective is one tenant's serving contract: the EDF dispatch
// class, the per-request latency objective (the deadline-miss bar for
// requests that carry no explicit context deadline), and the SLO
// attainment target the burn rate is computed against (e.g. 0.99 =
// "99% of requests in the window neither shed nor miss"). The zero
// value means "tracked, no SLO": requests are counted but the burn
// rate stays 0.
type TenantObjective struct {
	Class     int           `json:"class"`
	Objective time.Duration `json:"objective_ns,omitempty"`
	Target    float64       `json:"target,omitempty"`
}

// Sliding-window geometry for the burn-rate gauge: 15 buckets of 4s —
// a ~60s window, coarse enough that bucket turnover is cheap (one CAS
// per tenant per 4s) and fine enough that a burst's burn decays
// smoothly instead of cliff-dropping.
const (
	tenantWindowBuckets = 15
	tenantBucketSecs    = 4
)

// maxTenants bounds the table against client-controlled origin strings:
// past the cap, unknown tenants fold into the TenantOverflow series so a
// header-spraying client cannot grow the map unboundedly.
const maxTenants = 256

// TenantOverflow is the fold-in series name for origins beyond the
// maxTenants cap.
const TenantOverflow = "_other"

// tenantBucket is one sliding-window cell: an epoch stamp (unix seconds
// / tenantBucketSecs) plus the window counters recorded during it.
type tenantBucket struct {
	epoch    atomic.Int64
	requests atomic.Uint64
	bad      atomic.Uint64 // sheds + deadline misses
}

// TenantSeries is the rolling per-tenant state. All fields are atomic;
// recording is safe for concurrent use.
type TenantSeries struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	sheds    atomic.Uint64
	hits     atomic.Uint64 // deadline hits (completed within budget)
	misses   atomic.Uint64 // deadline misses (expired, or completed late)
	lat      Hist
	win      [tenantWindowBuckets]tenantBucket
}

// window records one request into the sliding window. A bucket whose
// epoch is stale is claimed by CAS and zeroed; an observation racing the
// reset may be lost, which the windowed burn gauge tolerates (same
// contract as Hist.Reset).
func (t *TenantSeries) window(now time.Time, bad bool) {
	ep := now.Unix() / tenantBucketSecs
	b := &t.win[int(ep%tenantWindowBuckets)]
	for {
		old := b.epoch.Load()
		if old == ep {
			break
		}
		if b.epoch.CompareAndSwap(old, ep) {
			b.requests.Store(0)
			b.bad.Store(0)
			break
		}
	}
	b.requests.Add(1)
	if bad {
		b.bad.Add(1)
	}
}

// windowCounts sums the live buckets of the sliding window.
func (t *TenantSeries) windowCounts(now time.Time) (requests, bad uint64) {
	ep := now.Unix() / tenantBucketSecs
	oldest := ep - tenantWindowBuckets + 1
	for i := range t.win {
		b := &t.win[i]
		if e := b.epoch.Load(); e >= oldest && e <= ep {
			requests += b.requests.Load()
			bad += b.bad.Load()
		}
	}
	return requests, bad
}

// TenantSnapshot is a point-in-time view of one tenant's series,
// JSON-exportable. BurnRate is the fraction of the tenant's SLO error
// budget being consumed in the sliding window: bad/requests divided by
// the budget (1 - Target); 1.0 means burning exactly at budget, >1
// means the SLO fails if the window's rate holds.
type TenantSnapshot struct {
	Name string `json:"tenant"`

	// Shard is the EngineSet shard the series was recorded on
	// (-1 = not shard-attached, including the merged aggregate view).
	Shard int `json:"shard"`

	Class     int           `json:"class"`
	Objective time.Duration `json:"objective_ns,omitempty"`
	Target    float64       `json:"target,omitempty"`

	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors,omitempty"`
	Sheds    uint64 `json:"sheds,omitempty"`

	DeadlineHits   uint64 `json:"deadline_hits"`
	DeadlineMisses uint64 `json:"deadline_misses"`

	Latency HistSnapshot `json:"latency"`

	WindowRequests uint64  `json:"window_requests"`
	WindowBad      uint64  `json:"window_bad"`
	BurnRate       float64 `json:"burn_rate"`
}

// burnRate computes the window's budget-consumption rate.
func burnRate(requests, bad uint64, target float64) float64 {
	if requests == 0 || target <= 0 || target >= 1 {
		return 0
	}
	return (float64(bad) / float64(requests)) / (1 - target)
}

func (t *TenantSeries) snapshot(name string, obj TenantObjective, shard int, now time.Time) TenantSnapshot {
	wr, wb := t.windowCounts(now)
	return TenantSnapshot{
		Name:           name,
		Shard:          shard,
		Class:          obj.Class,
		Objective:      obj.Objective,
		Target:         obj.Target,
		Requests:       t.requests.Load(),
		Errors:         t.errors.Load(),
		Sheds:          t.sheds.Load(),
		DeadlineHits:   t.hits.Load(),
		DeadlineMisses: t.misses.Load(),
		Latency:        t.lat.Snapshot(),
		WindowRequests: wr,
		WindowBad:      wb,
		BurnRate:       burnRate(wr, wb, obj.Target),
	}
}

// tenantEntry pairs a tenant's series with its configured objective.
type tenantEntry struct {
	series *TenantSeries
	obj    TenantObjective
}

// tenantTable maps origins to their series. Configured tenants are
// installed up front; unknown origins auto-create zero-objective series
// on first sight (capped at maxTenants, overflow folds into _other).
type tenantTable struct {
	mu sync.RWMutex
	m  map[string]*tenantEntry
}

func newTenantTable(cfg map[string]TenantObjective) *tenantTable {
	tt := &tenantTable{m: make(map[string]*tenantEntry, len(cfg)+1)}
	for name, obj := range cfg {
		tt.m[name] = &tenantEntry{series: &TenantSeries{}, obj: obj}
	}
	return tt
}

// entry returns the series for an origin, creating an untracked-tenant
// series on first sight (read-locked lookup once seen).
func (tt *tenantTable) entry(name string) *tenantEntry {
	tt.mu.RLock()
	e := tt.m[name]
	tt.mu.RUnlock()
	if e != nil {
		return e
	}
	tt.mu.Lock()
	defer tt.mu.Unlock()
	if e = tt.m[name]; e != nil {
		return e
	}
	if len(tt.m) >= maxTenants {
		if e = tt.m[TenantOverflow]; e == nil {
			e = &tenantEntry{series: &TenantSeries{}}
			tt.m[TenantOverflow] = e
		}
		return e
	}
	e = &tenantEntry{series: &TenantSeries{}}
	tt.m[name] = e
	return e
}

// shedErrs holds the sentinel errors that classify a request outcome as
// a shed (load rejected before execution) rather than a plain error.
// Registered at init time by the layers that own the sentinels (the
// engine's ErrQueueFull), so obs stays import-cycle-free.
var shedErrs struct {
	mu   sync.RWMutex
	errs []error
}

// RegisterShedError marks err (matched via errors.Is) as a shed outcome
// for tenant accounting. Intended for init-time registration.
func RegisterShedError(err error) {
	if err == nil {
		return
	}
	shedErrs.mu.Lock()
	shedErrs.errs = append(shedErrs.errs, err)
	shedErrs.mu.Unlock()
}

func isShed(err error) bool {
	shedErrs.mu.RLock()
	defer shedErrs.mu.RUnlock()
	for _, s := range shedErrs.errs {
		if errors.Is(err, s) {
			return true
		}
	}
	return false
}

// record classifies one resolved span into its origin's series:
//
//   - success within the deadline budget (the span's own deadline, or
//     the tenant's configured objective when the request carried none)
//     counts a deadline hit; success over budget counts a miss; success
//     with no budget at all counts neither;
//   - context expiry/cancellation counts a miss;
//   - a registered shed sentinel (queue full, admission shed) counts a
//     shed;
//   - anything else counts a plain error — burned requests are only
//     misses + sheds, so a validation error cannot torch an SLO.
func (tt *tenantTable) record(sp *Span, err error) {
	e := tt.entry(sp.Origin)
	ts := e.series
	ts.requests.Add(1)
	bad := false
	switch {
	case err == nil:
		d := sp.Duration()
		ts.lat.Observe(d)
		budget := sp.Deadline
		if budget == 0 {
			budget = e.obj.Objective
		}
		switch {
		case budget <= 0: // untimed request on an objective-less tenant
		case d > budget:
			ts.misses.Add(1)
			bad = true
		default:
			ts.hits.Add(1)
		}
	case isShed(err):
		ts.sheds.Add(1)
		bad = true
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		ts.misses.Add(1)
		bad = true
	default:
		ts.errors.Add(1)
	}
	ts.window(sp.End, bad)
}

// SetTenants installs (or replaces) the registry's tenant table with the
// given objectives, enabling per-tenant accounting: every finished span
// carrying an Origin is classified into its tenant's series. Unlisted
// origins are tracked with a zero objective. nil disables accounting and
// restores the one-atomic-load cost for tagged requests.
func (r *Registry) SetTenants(cfg map[string]TenantObjective) {
	if cfg == nil {
		r.tenants.Store(nil)
		return
	}
	r.tenants.Store(newTenantTable(cfg))
}

// TenantsEnabled reports whether a tenant table is installed (one
// atomic load).
func (r *Registry) TenantsEnabled() bool { return r.tenants.Load() != nil }

// RecordTenantShed accounts one admission-control shed for a tenant — a
// request rejected before it was ever submitted, so no span exists to
// carry it. No-op when accounting is disabled or name is empty.
func (r *Registry) RecordTenantShed(name string) {
	if name == "" {
		return
	}
	tt := r.tenants.Load()
	if tt == nil {
		return
	}
	ts := tt.entry(name).series
	ts.requests.Add(1)
	ts.sheds.Add(1)
	ts.window(time.Now(), true)
}

// TenantSnapshots returns a point-in-time view of every tenant series,
// sorted by request count descending (name-tied for determinism). Nil
// when accounting is disabled.
func (r *Registry) TenantSnapshots() []TenantSnapshot {
	tt := r.tenants.Load()
	if tt == nil {
		return nil
	}
	shard := int(r.shard.Load())
	now := time.Now()
	tt.mu.RLock()
	out := make([]TenantSnapshot, 0, len(tt.m))
	for name, e := range tt.m {
		out = append(out, e.series.snapshot(name, e.obj, shard, now))
	}
	tt.mu.RUnlock()
	sortTenants(out)
	return out
}

func sortTenants(out []TenantSnapshot) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Requests != out[j].Requests {
			return out[i].Requests > out[j].Requests
		}
		return out[i].Name < out[j].Name
	})
}

// AggregateTenants merges per-shard tenant snapshots into one
// cross-shard view keyed by tenant name: counters and window counts
// sum, latency histograms merge bucket-wise (so the merged p50/p99 are
// exact, unlike the shape aggregate), the burn rate is recomputed from
// the summed window, and the objective comes from any shard carrying a
// non-zero one (all shards share the configuration). Merged rows carry
// Shard = -1.
func AggregateTenants(perShard ...[]TenantSnapshot) []TenantSnapshot {
	m := make(map[string]*TenantSnapshot)
	var order []string
	for _, shard := range perShard {
		for i := range shard {
			s := &shard[i]
			t := m[s.Name]
			if t == nil {
				cp := *s
				cp.Shard = -1
				m[s.Name] = &cp
				order = append(order, s.Name)
				continue
			}
			t.Requests += s.Requests
			t.Errors += s.Errors
			t.Sheds += s.Sheds
			t.DeadlineHits += s.DeadlineHits
			t.DeadlineMisses += s.DeadlineMisses
			t.Latency.Add(s.Latency)
			t.WindowRequests += s.WindowRequests
			t.WindowBad += s.WindowBad
			if t.Objective == 0 {
				t.Objective = s.Objective
			}
			if t.Target == 0 {
				t.Target = s.Target
			}
			if s.Class != 0 && t.Class == 0 {
				t.Class = s.Class
			}
		}
	}
	out := make([]TenantSnapshot, 0, len(order))
	for _, name := range order {
		t := m[name]
		t.BurnRate = burnRate(t.WindowRequests, t.WindowBad, t.Target)
		out = append(out, *t)
	}
	sortTenants(out)
	return out
}
