package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestSpanDisabledFastPath: with no sink installed, StartSpan returns
// nil and Finish/Mark on the nil span are no-ops.
func TestSpanDisabledFastPath(t *testing.T) {
	r := NewRegistry()
	if r.SpansEnabled() {
		t.Fatal("fresh registry reports spans enabled")
	}
	sp := r.StartSpan(false)
	if sp != nil {
		t.Fatalf("StartSpan(false) with no sink = %+v, want nil", sp)
	}
	sp.Mark(PhaseCompute, time.Now()) // nil-safe
	sp.Prepack(true)
	r.FinishSpan(sp, errors.New("ignored"), nil)
}

// TestSpanSinkLifecycle: an installed sink receives every finished span
// with descriptor, phases and error intact; removing the sink restores
// the disabled path.
func TestSpanSinkLifecycle(t *testing.T) {
	r := NewRegistry()
	var got []Span
	r.SetSpanSink(func(sp *Span) { got = append(got, *sp) })
	if !r.SpansEnabled() {
		t.Fatal("sink installed but SpansEnabled is false")
	}

	sp := r.StartSpan(false)
	if sp == nil {
		t.Fatal("StartSpan returned nil with a sink installed")
	}
	sp.Op = "GEMM"
	sp.Phases[PhaseCompute] = 3 * time.Millisecond
	sp.Prepack(true)
	sp.Prepack(true)
	sp.Prepack(false)
	r.FinishSpan(sp, errors.New("boom"), nil)

	if len(got) != 1 {
		t.Fatalf("sink received %d spans, want 1", len(got))
	}
	g := got[0]
	if g.Op != "GEMM" || g.Error != "boom" {
		t.Fatalf("span = %+v, want Op=GEMM Error=boom", g)
	}
	if g.PrepackHits != 2 || g.PrepackBuilds != 1 {
		t.Fatalf("prepack hits/builds = %d/%d, want 2/1", g.PrepackHits, g.PrepackBuilds)
	}
	if g.Phases[PhaseCompute] != 3*time.Millisecond {
		t.Fatalf("compute phase = %v", g.Phases[PhaseCompute])
	}
	if g.End.Before(g.Start) {
		t.Fatal("End precedes Start")
	}

	// A per-request extra sink fires alongside the registry sink.
	extra := 0
	sp = r.StartSpan(false)
	r.FinishSpan(sp, nil, func(*Span) { extra++ })
	if extra != 1 || len(got) != 2 {
		t.Fatalf("extra=%d registry=%d, want 1/2", extra, len(got))
	}

	r.SetSpanSink(nil)
	if r.SpansEnabled() {
		t.Fatal("sink removed but SpansEnabled is true")
	}
	if sp := r.StartSpan(false); sp != nil {
		t.Fatal("StartSpan materialized a span after sink removal")
	}
	// force still materializes (the per-request WithSpanSink path).
	if sp := r.StartSpan(true); sp == nil {
		t.Fatal("StartSpan(force) returned nil")
	} else {
		r.FinishSpan(sp, nil, nil)
	}
}

// TestSpanRecycleResetsState: pooled spans must not leak a previous
// request's descriptor or phases into the next one.
func TestSpanRecycleResetsState(t *testing.T) {
	r := NewRegistry()
	r.SetSpanSink(func(*Span) {})
	sp := r.StartSpan(false)
	sp.Op, sp.Error = "GEMM", "stale"
	sp.ParentID, sp.Fused = 7, 3
	sp.Phases[PhasePack] = time.Second
	r.FinishSpan(sp, nil, nil)

	// The pool likely hands the same span back; whatever it hands back
	// must be zero apart from ID and Start.
	sp2 := r.StartSpan(false)
	defer r.FinishSpan(sp2, nil, nil)
	if sp2.Op != "" || sp2.Error != "" || sp2.ParentID != 0 || sp2.Fused != 0 ||
		sp2.PhaseTotal() != 0 {
		t.Fatalf("recycled span carries stale state: %+v", sp2)
	}
	if sp2.ID == 0 || !sp2.End.IsZero() {
		t.Fatalf("recycled span not restamped: id=%d end=%v", sp2.ID, sp2.End)
	}
}

// TestSpanRingEviction: the ring keeps the most recent n spans in order
// and counts everything ever added.
func TestSpanRingEviction(t *testing.T) {
	g := NewSpanRing(3)
	for i := uint64(1); i <= 5; i++ {
		g.Add(&Span{ID: i})
	}
	if g.Total() != 5 {
		t.Fatalf("Total = %d, want 5", g.Total())
	}
	ids := func(spans []Span) []uint64 {
		out := make([]uint64, len(spans))
		for i, sp := range spans {
			out[i] = sp.ID
		}
		return out
	}
	if got := ids(g.Spans(0)); len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Fatalf("Spans(0) = %v, want [3 4 5]", got)
	}
	if got := ids(g.Spans(2)); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("Spans(2) = %v, want [4 5]", got)
	}
	if got := ids(g.Spans(10)); len(got) != 3 {
		t.Fatalf("Spans(10) = %v, want all 3 retained", got)
	}
}

// TestWriteChromeTrace: the exporter emits valid JSON with one metadata
// and one enclosing complete event per span, nested phase slices, and
// epoch-relative microsecond timestamps.
func TestWriteChromeTrace(t *testing.T) {
	base := time.Now()
	parent := Span{
		ID: 10, Op: "GEMM", DType: "s", Mode: "NN", M: 8, N: 8, K: 8,
		Count: 64, Fused: 2, Workers: 1,
		Start: base, End: base.Add(10 * time.Millisecond),
	}
	parent.Phases[PhaseFuse] = time.Millisecond
	parent.Phases[PhaseCompute] = 7 * time.Millisecond
	child := Span{
		ID: 11, ParentID: 10, Op: "GEMM", DType: "s", Mode: "NN",
		M: 8, N: 8, K: 8, Count: 32,
		Start: base.Add(-2 * time.Millisecond), End: base.Add(10 * time.Millisecond),
		Error: `bad "quote"`,
	}
	child.Phases[PhaseQueueWait] = 2 * time.Millisecond

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []Span{parent, child}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// 2 metadata + 2 enclosing + 2 parent phases + 1 child phase.
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("event count = %d, want 7", len(doc.TraceEvents))
	}
	var meta, complete, phases int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name != "thread_name" {
				t.Fatalf("metadata event name = %q", ev.Name)
			}
		case "X":
			if ev.Name == PhaseFuse.String() || ev.Name == PhaseCompute.String() ||
				ev.Name == PhaseQueueWait.String() {
				phases++
			} else {
				complete++
				if ev.TID == parent.ID {
					// Child started 2ms before parent: parent's epoch-relative
					// start is +2000µs, duration 10000µs.
					if ev.TS != 2000 || ev.Dur != 10000 {
						t.Fatalf("parent event ts/dur = %v/%v, want 2000/10000", ev.TS, ev.Dur)
					}
					if !strings.Contains(ev.Name, "(fused 2)") {
						t.Fatalf("parent label %q missing fused marker", ev.Name)
					}
				}
				if ev.TID == child.ID {
					if ev.Args["parent"] != float64(parent.ID) {
						t.Fatalf("child args missing parent link: %v", ev.Args)
					}
					if ev.Args["error"] != `bad "quote"` {
						t.Fatalf("child error arg = %v", ev.Args["error"])
					}
				}
			}
		default:
			t.Fatalf("unexpected phase type %q", ev.Ph)
		}
	}
	if meta != 2 || complete != 2 || phases != 3 {
		t.Fatalf("meta/complete/phases = %d/%d/%d, want 2/2/3", meta, complete, phases)
	}
}

// TestRegistryResetAndDelta: SnapshotDelta windows counters between
// calls, omits idle shapes, and Reset clears both the series and the
// delta baseline.
func TestRegistryResetAndDelta(t *testing.T) {
	r := NewRegistry()
	key := ShapeKey{Op: "GEMM", DType: "s", Mode: "NN", M: 4, N: 4, K: 4}
	s := r.Series(key)
	s.Plan(CacheMiss)
	s.Record(time.Millisecond, 1e9, false)
	s.Record(time.Millisecond, 1e9, false)

	d1 := r.SnapshotDelta()
	if len(d1) != 1 || d1[0].Calls != 2 || d1[0].PlanMisses != 1 {
		t.Fatalf("first delta = %+v, want 2 calls / 1 miss", d1)
	}

	// No activity: the shape disappears from the window.
	if d := r.SnapshotDelta(); len(d) != 0 {
		t.Fatalf("idle delta = %+v, want empty", d)
	}

	s.Plan(CacheHit)
	s.Record(2*time.Millisecond, 1e9, false)
	d2 := r.SnapshotDelta()
	if len(d2) != 1 || d2[0].Calls != 1 || d2[0].PlanHits != 1 || d2[0].PlanMisses != 0 {
		t.Fatalf("windowed delta = %+v, want 1 call / 1 hit / 0 misses", d2)
	}
	// The window's quantiles cover only the window's observations.
	if d2[0].P50 < 2*time.Millisecond {
		t.Fatalf("window P50 = %v, want >= 2ms (only the 2ms sample is in the window)", d2[0].P50)
	}

	// Cumulative snapshot still sees everything.
	if snap := r.Snapshot(); len(snap) != 1 || snap[0].Calls != 3 {
		t.Fatalf("cumulative snapshot = %+v, want 3 calls", snap)
	}

	r.Reset()
	if snap := r.Snapshot(); len(snap) != 0 {
		t.Fatalf("snapshot after Reset = %+v, want empty", snap)
	}
	// Fresh series after Reset: the delta baseline must also be fresh,
	// so the first post-Reset window reports full counts (no negative
	// wraparound from the stale baseline).
	s = r.Series(key)
	s.Record(time.Millisecond, 1e9, false)
	if d := r.SnapshotDelta(); len(d) != 1 || d[0].Calls != 1 {
		t.Fatalf("post-Reset delta = %+v, want 1 call", d)
	}
}

// TestHistObserve: the log2 histogram buckets, counts and quantiles are
// coherent and the snapshot truncates trailing empty buckets.
func TestHistObserve(t *testing.T) {
	var h Hist
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Nanosecond)
	}
	h.Observe(100 * time.Microsecond)

	s := h.Snapshot()
	if s.Count != 11 {
		t.Fatalf("count = %d, want 11", s.Count)
	}
	if want := uint64(10*100 + 100_000); s.SumNs != want {
		t.Fatalf("sum = %d, want %d", s.SumNs, want)
	}
	if s.P50 > time.Microsecond {
		t.Fatalf("P50 = %v, want ~128ns bucket", s.P50)
	}
	if s.P99 < 50*time.Microsecond {
		t.Fatalf("P99 = %v, want the 100µs sample's bucket", s.P99)
	}
	var total uint64
	for i, b := range s.Buckets {
		total += b.Count
		if i > 0 && b.UpperNs != 2*s.Buckets[i-1].UpperNs {
			t.Fatalf("bucket bounds not log2: %v", s.Buckets)
		}
	}
	if total != s.Count {
		t.Fatalf("bucket sum %d != count %d", total, s.Count)
	}
	if last := s.Buckets[len(s.Buckets)-1]; last.Count == 0 {
		t.Fatal("snapshot retains trailing empty buckets")
	}
}
