package obs

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// finish runs one origin-tagged span through a registry's lifecycle
// with the given outcome; rewinding Start by d makes the span's
// duration ≈ d (FinishSpan stamps End = now).
func finish(r *Registry, origin string, d, deadline time.Duration, err error) {
	sp := r.StartSpan(true)
	sp.Origin = origin
	sp.Deadline = deadline
	sp.Start = sp.Start.Add(-d)
	r.FinishSpan(sp, err, nil)
}

// TestTenantRecordClassification pins the outcome→series mapping:
// success under/over budget, objective fallback, shed sentinels,
// context expiry, and plain errors.
func TestTenantRecordClassification(t *testing.T) {
	shedErr := errors.New("test shed")
	RegisterShedError(shedErr)
	r := NewRegistry()
	r.SetTenants(map[string]TenantObjective{
		"rt": {Class: 5, Objective: 10 * time.Millisecond, Target: 0.99},
	})

	finish(r, "rt", time.Millisecond, 5*time.Millisecond, nil)     // hit vs explicit deadline
	finish(r, "rt", 7*time.Millisecond, 5*time.Millisecond, nil)   // late vs explicit deadline
	finish(r, "rt", time.Millisecond, 0, nil)                      // hit vs objective fallback
	finish(r, "rt", 20*time.Millisecond, 0, nil)                   // late vs objective fallback
	finish(r, "rt", time.Millisecond, 0, shedErr)                  // registered shed
	finish(r, "rt", time.Millisecond, 0, context.DeadlineExceeded) // expiry miss
	finish(r, "rt", time.Millisecond, 0, context.Canceled)         // cancel miss
	finish(r, "rt", time.Millisecond, 0, errors.New("boom"))       // plain error
	finish(r, "untracked", time.Millisecond, 0, nil)               // auto-created, no objective

	snaps := r.TenantSnapshots()
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d, want 2", len(snaps))
	}
	rt := snaps[0] // sorted by requests desc
	if rt.Name != "rt" || rt.Requests != 8 {
		t.Fatalf("rt series = %+v", rt)
	}
	if rt.DeadlineHits != 2 || rt.DeadlineMisses != 4 || rt.Sheds != 1 || rt.Errors != 1 {
		t.Fatalf("rt classification: hits %d misses %d sheds %d errors %d, want 2/4/1/1",
			rt.DeadlineHits, rt.DeadlineMisses, rt.Sheds, rt.Errors)
	}
	// Only successes observe latency: 4 of the 8.
	if rt.Latency.Count != 4 {
		t.Fatalf("rt latency count = %d, want 4", rt.Latency.Count)
	}
	// Window: 5 bad (2 late + 1 shed + 2 context) of 8.
	if rt.WindowRequests != 8 || rt.WindowBad != 5 {
		t.Fatalf("rt window = %d/%d, want 5/8", rt.WindowBad, rt.WindowRequests)
	}
	want := (5.0 / 8.0) / 0.01
	if rt.BurnRate < want-1 || rt.BurnRate > want+1 {
		t.Fatalf("rt burn = %g, want %g", rt.BurnRate, want)
	}

	un := snaps[1]
	if un.Name != "untracked" || un.Requests != 1 || un.DeadlineHits != 0 || un.DeadlineMisses != 0 {
		t.Fatalf("untracked series = %+v (objective-less success must count neither hit nor miss)", un)
	}
	if un.BurnRate != 0 {
		t.Fatalf("untracked burn = %g, want 0 (no target)", un.BurnRate)
	}
}

// TestTenantDisabled: without a table, tagged spans record nothing and
// the snapshot surface returns nil; re-enabling starts fresh.
func TestTenantDisabled(t *testing.T) {
	r := NewRegistry()
	if r.TenantsEnabled() {
		t.Fatal("fresh registry has tenants enabled")
	}
	finish(r, "rt", time.Millisecond, 0, nil)
	if got := r.TenantSnapshots(); got != nil {
		t.Fatalf("disabled snapshots = %+v, want nil", got)
	}
	r.RecordTenantShed("rt") // must be a no-op, not a panic

	r.SetTenants(map[string]TenantObjective{})
	finish(r, "rt", time.Millisecond, 0, nil)
	if got := r.TenantSnapshots(); len(got) != 1 || got[0].Requests != 1 {
		t.Fatalf("enabled snapshots = %+v, want one rt request", got)
	}
	r.SetTenants(nil)
	if r.TenantsEnabled() {
		t.Fatal("nil config left tenants enabled")
	}
}

// TestTenantBurnWindow exercises the epoch ring directly: observations
// land in the current bucket, stale epochs are evicted from the sums,
// and a reused ring slot resets before counting.
func TestTenantBurnWindow(t *testing.T) {
	var ts TenantSeries
	base := time.Unix(1_000_000, 0)

	ts.window(base, true)
	ts.window(base, false)
	if req, bad := ts.windowCounts(base); req != 2 || bad != 1 {
		t.Fatalf("window = %d/%d, want 2 requests 1 bad", req, bad)
	}

	// Advance within the window: old bucket still visible.
	later := base.Add((tenantWindowBuckets - 1) * tenantBucketSecs * time.Second)
	ts.window(later, false)
	if req, bad := ts.windowCounts(later); req != 3 || bad != 1 {
		t.Fatalf("mid-window = %d/%d, want 3/1", req, bad)
	}

	// Advance past the window: the base bucket's epoch is stale and must
	// drop out of the sum even though its slot was never rewritten.
	expired := base.Add(tenantWindowBuckets * tenantBucketSecs * time.Second)
	if req, bad := ts.windowCounts(expired); req != 1 || bad != 0 {
		t.Fatalf("expired window = %d/%d, want 1/0", req, bad)
	}

	// A full lap later the base slot is reused: it must reset, not
	// accumulate onto the year-old counts.
	lap := base.Add(tenantWindowBuckets * tenantBucketSecs * time.Second)
	ts.window(lap, true)
	if req, bad := ts.windowCounts(lap); req != 2 || bad != 1 {
		t.Fatalf("lapped window = %d/%d, want 2/1", req, bad)
	}
}

// TestTenantBurnRate pins the gauge math and its guard rails.
func TestTenantBurnRate(t *testing.T) {
	cases := []struct {
		req, bad uint64
		target   float64
		want     float64
	}{
		{0, 0, 0.99, 0},   // no traffic
		{100, 0, 0.99, 0}, // clean window
		{100, 1, 0.99, 1}, // burning exactly at budget
		{100, 2, 0.99, 2},
		{100, 5, 0, 0}, // no target configured
		{100, 5, 1, 0}, // degenerate target
		{10, 10, 0.5, 2},
	}
	for _, tc := range cases {
		got := burnRate(tc.req, tc.bad, tc.target)
		if got < tc.want-1e-9 || got > tc.want+1e-9 {
			t.Fatalf("burnRate(%d, %d, %g) = %g, want %g", tc.req, tc.bad, tc.target, got, tc.want)
		}
	}
}

// TestTenantOverflowCap: past maxTenants distinct origins, new names
// fold into the shared overflow series instead of growing the table.
func TestTenantOverflowCap(t *testing.T) {
	r := NewRegistry()
	r.SetTenants(map[string]TenantObjective{})
	for i := 0; i < maxTenants+10; i++ {
		finish(r, fmt.Sprintf("tenant-%d", i), time.Millisecond, 0, nil)
	}
	snaps := r.TenantSnapshots()
	if len(snaps) > maxTenants+1 {
		t.Fatalf("table grew to %d series, cap is %d + overflow", len(snaps), maxTenants)
	}
	var overflow *TenantSnapshot
	for i := range snaps {
		if snaps[i].Name == TenantOverflow {
			overflow = &snaps[i]
		}
	}
	if overflow == nil {
		t.Fatalf("no %s series among %d", TenantOverflow, len(snaps))
	}
	if overflow.Requests < 10 {
		t.Fatalf("overflow requests = %d, want >= 10", overflow.Requests)
	}
}

// TestAggregateTenants: merging shard snapshots sums counters, merges
// histograms bucket-wise, recomputes burn from the combined window, and
// keeps the objective from whichever shard carries it.
func TestAggregateTenants(t *testing.T) {
	var s0, s1 TenantSeries
	s0.lat.Observe(time.Millisecond)
	s0.requests.Store(3)
	s0.hits.Store(2)
	s0.misses.Store(1)
	s1.lat.Observe(4 * time.Millisecond)
	s1.lat.Observe(16 * time.Millisecond)
	s1.requests.Store(2)
	s1.sheds.Store(1)

	now := time.Now()
	obj := TenantObjective{Class: 5, Objective: 10 * time.Millisecond, Target: 0.9}
	a := s0.snapshot("rt", obj, 0, now)
	b := s1.snapshot("rt", TenantObjective{Class: 5}, 1, now)
	a.WindowRequests, a.WindowBad = 3, 1
	b.WindowRequests, b.WindowBad = 2, 1

	merged := AggregateTenants([]TenantSnapshot{a}, []TenantSnapshot{b})
	if len(merged) != 1 {
		t.Fatalf("merged = %d rows, want 1", len(merged))
	}
	m := merged[0]
	if m.Shard != -1 || m.Requests != 5 || m.DeadlineHits != 2 || m.DeadlineMisses != 1 || m.Sheds != 1 {
		t.Fatalf("merged = %+v", m)
	}
	if m.Latency.Count != 3 {
		t.Fatalf("merged latency count = %d, want 3", m.Latency.Count)
	}
	if m.Objective != 10*time.Millisecond || m.Target != 0.9 {
		t.Fatalf("merged objective = %v/%g", m.Objective, m.Target)
	}
	// 2 bad of 5 over a 0.1 budget → burn 4.
	if m.BurnRate < 3.9 || m.BurnRate > 4.1 {
		t.Fatalf("merged burn = %g, want 4", m.BurnRate)
	}

	// Distinct tenants stay distinct rows, sorted by requests.
	c := s0.snapshot("other", TenantObjective{}, 0, now)
	out := AggregateTenants([]TenantSnapshot{a, c}, []TenantSnapshot{b})
	if len(out) != 2 || out[0].Name != "rt" || out[1].Name != "other" {
		t.Fatalf("multi-tenant merge = %+v", out)
	}
}

// TestSpanRingTraceLookup: Trace resolves a request trace id (own span
// + the fused parent listing it as a rider), a rider id seen only on
// the parent, and numeric span/parent ids.
func TestSpanRingTraceLookup(t *testing.T) {
	ring := NewSpanRing(8)
	parent := &Span{ID: 100, Riders: []string{"tr-a", "tr-b"}}
	childA := &Span{ID: 101, ParentID: 100, TraceID: "tr-a", Origin: "rt"}
	childB := &Span{ID: 102, ParentID: 100, TraceID: "tr-b"}
	other := &Span{ID: 103, TraceID: "tr-c"}
	for _, sp := range []*Span{parent, childA, childB, other} {
		ring.Add(sp)
	}

	got := ring.Trace("tr-a")
	if len(got) != 2 {
		t.Fatalf("Trace(tr-a) = %d spans, want parent + child", len(got))
	}
	ids := map[uint64]bool{got[0].ID: true, got[1].ID: true}
	if !ids[100] || !ids[101] {
		t.Fatalf("Trace(tr-a) ids = %+v, want {100, 101}", ids)
	}

	// Numeric parent id pulls the whole fused dispatch.
	if got = ring.Trace("100"); len(got) != 3 {
		t.Fatalf("Trace(100) = %d spans, want parent + 2 children", len(got))
	}
	// Numeric own id.
	if got = ring.Trace("103"); len(got) != 1 || got[0].TraceID != "tr-c" {
		t.Fatalf("Trace(103) = %+v", got)
	}
	if got = ring.Trace("no-such-id"); len(got) != 0 {
		t.Fatalf("Trace(miss) = %+v, want empty", got)
	}
	if got = ring.Trace(""); got != nil {
		t.Fatalf("Trace(\"\") = %+v, want nil", got)
	}
}
