package obs

import (
	"sync"
	"testing"
	"time"
)

func TestSeriesRecordAndSnapshot(t *testing.T) {
	r := NewRegistry()
	key := ShapeKey{Op: "GEMM", DType: "s", Mode: "NN", M: 4, N: 4, K: 4}
	s := r.Series(key)
	if r.Series(key) != s {
		t.Fatal("Series must return the same series for the same key")
	}

	s.Plan(CacheMiss)
	s.SetPlan(40, "A+B", 16)
	s.SetWorkers(4)
	// 1 GFLOP in 1 ms = 1000 GFLOPS; best must track the fastest call.
	s.Record(time.Millisecond, 1e9, false)
	s.Plan(CacheHit)
	s.Record(2*time.Millisecond, 1e9, false)
	s.Plan(CacheShared)
	s.Record(time.Millisecond, 0, true) // failed call: no latency sample

	snaps := r.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("snapshot has %d shapes, want 1", len(snaps))
	}
	snap := snaps[0]
	if snap.ShapeKey != key {
		t.Errorf("key %+v, want %+v", snap.ShapeKey, key)
	}
	if snap.Calls != 3 || snap.Errors != 1 {
		t.Errorf("calls=%d errors=%d, want 3/1", snap.Calls, snap.Errors)
	}
	if snap.PlanMisses != 1 || snap.PlanHits != 1 || snap.PlanShared != 1 {
		t.Errorf("cache outcomes %d/%d/%d, want 1/1/1", snap.PlanMisses, snap.PlanHits, snap.PlanShared)
	}
	if got := snap.HitRatio(); got != 1.0/3 {
		t.Errorf("hit ratio %v, want 1/3", got)
	}
	if snap.BestGFLOPS != 1000 {
		t.Errorf("best GFLOPS %v, want 1000 (the 1 ms call)", snap.BestGFLOPS)
	}
	// avg over 3 ms of successful wall time with 2 GFLOP total.
	if snap.AvgGFLOPS < 600 || snap.AvgGFLOPS > 700 {
		t.Errorf("avg GFLOPS %v, want ~666", snap.AvgGFLOPS)
	}
	if snap.CeilingGFLOPS != 40 || snap.Pack != "A+B" || snap.GroupsPerBatch != 16 || snap.Workers != 4 {
		t.Errorf("plan decisions %v/%q/%d/%d", snap.CeilingGFLOPS, snap.Pack, snap.GroupsPerBatch, snap.Workers)
	}
	// log2 buckets: the quantile is an upper bound within 2x.
	if snap.P50 < time.Millisecond || snap.P50 > 2*time.Millisecond {
		t.Errorf("p50 %v outside [1ms, 2ms]", snap.P50)
	}
	if snap.P99 < 2*time.Millisecond || snap.P99 > 4*time.Millisecond {
		t.Errorf("p99 %v outside [2ms, 4ms]", snap.P99)
	}
}

func TestQuantileSkew(t *testing.T) {
	var s Series
	for i := 0; i < 99; i++ {
		s.Record(100*time.Microsecond, 0, false)
	}
	s.Record(50*time.Millisecond, 0, false)
	p50, p99 := s.quantile(0.50), s.quantile(0.99)
	if p50 > time.Millisecond {
		t.Errorf("p50 %v pulled up by one outlier", p50)
	}
	if p99 > time.Millisecond {
		t.Errorf("p99 %v must not see the single 1%% outlier at rank 99", p99)
	}
	if p100 := s.quantile(1.0); p100 < 50*time.Millisecond {
		t.Errorf("p100 %v must cover the outlier", p100)
	}
}

func TestSnapshotOrdering(t *testing.T) {
	r := NewRegistry()
	hot := r.Series(ShapeKey{Op: "GEMM", DType: "s", Mode: "NN", M: 8, N: 8, K: 8})
	cold := r.Series(ShapeKey{Op: "TRSM", DType: "d", Mode: "LNLN", M: 4, N: 4})
	for i := 0; i < 5; i++ {
		hot.Record(time.Microsecond, 1, false)
	}
	cold.Record(time.Microsecond, 1, false)
	snaps := r.Snapshot()
	if len(snaps) != 2 || snaps[0].Op != "GEMM" || snaps[1].Op != "TRSM" {
		t.Fatalf("snapshot not ordered by calls desc: %+v", snaps)
	}
}

func TestTraceSampling(t *testing.T) {
	r := NewRegistry()
	if r.TraceSink() != nil {
		t.Fatal("no sink installed, TraceSink must be nil")
	}
	fired := 0
	r.SetTrace(func(TraceEvent) { fired++ }, 3)
	for i := 0; i < 9; i++ {
		if fn := r.TraceSink(); fn != nil {
			fn(TraceEvent{})
		}
	}
	if fired != 3 {
		t.Errorf("every=3 over 9 calls fired %d times, want 3", fired)
	}

	// every == 0: only forced calls trace.
	fired = 0
	r.SetTrace(func(TraceEvent) { fired++ }, 0)
	for i := 0; i < 5; i++ {
		if fn := r.TraceSink(); fn != nil {
			fn(TraceEvent{})
		}
	}
	if fired != 0 {
		t.Errorf("every=0 with no force fired %d times, want 0", fired)
	}
	r.ForceTrace(2)
	for i := 0; i < 5; i++ {
		if fn := r.TraceSink(); fn != nil {
			fn(TraceEvent{})
		}
	}
	if fired != 2 {
		t.Errorf("ForceTrace(2) fired %d times, want exactly 2", fired)
	}

	r.SetTrace(nil, 0)
	r.ForceTrace(1)
	if r.TraceSink() != nil {
		t.Error("removed sink must disable tracing even when forced")
	}
}

func TestSeriesConcurrent(t *testing.T) {
	r := NewRegistry()
	key := ShapeKey{Op: "GEMM", DType: "s", Mode: "NN", M: 2, N: 2, K: 2}
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := r.Series(key)
			for i := 0; i < per; i++ {
				s.Plan(CacheHit)
				s.Record(time.Microsecond, 1000, false)
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()[0]
	if snap.Calls != goroutines*per || snap.PlanHits != goroutines*per {
		t.Errorf("lost updates: calls=%d hits=%d, want %d", snap.Calls, snap.PlanHits, goroutines*per)
	}
}
