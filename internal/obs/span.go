// Request-lifecycle spans: where the trace hook (trace.go) answers "what
// command queue did the dispatcher assemble", a span answers "where did
// this request's time go". Every request — sync or async — can carry a
// Span recording monotonic phase durations from submission to
// completion: queue wait, coalesce/fuse, plan lookup, prepacked-operand
// resolution, native compute, and the fused writeback scatter. Fused
// bundles link the N child request spans to the parent dispatch span via
// ParentID, so a slow Do is attributable even when it executed as one
// rider of a coalesced dispatch.
//
// Spans are pooled and only materialized when a sink is installed: with
// no sink the per-request cost is one atomic pointer load. Sinks receive
// the span synchronously after the request resolves and must copy it if
// they retain it — the span returns to the pool when the sink returns
// (SpanRing does exactly that).

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Phase indexes one slice of a request's lifetime in Span.Phases.
type Phase int

// The request lifecycle phases, in submission order.
const (
	// PhaseQueueWait: from submission until the request's bundle starts
	// executing (zero on the sync and idle-inline paths).
	PhaseQueueWait Phase = iota
	// PhaseFuse: concatenating a coalesced bundle's operands into one
	// fused super-request.
	PhaseFuse
	// PhasePlan: plan-cache lookup (or build, on a cold shape).
	PhasePlan
	// PhasePack: prepacked-operand cache resolution — lookups plus any
	// packed-image builds (zero when no operand opted into Prepack).
	PhasePack
	// PhaseCompute: the native per-super-batch kernel execution.
	PhaseCompute
	// PhaseScatter: copying a fused dispatch's written operand back into
	// each rider's own storage.
	PhaseScatter

	// PhaseCount is the number of phases (the length of Span.Phases).
	PhaseCount
)

var phaseNames = [PhaseCount]string{
	"queue_wait", "fuse", "plan", "pack", "compute", "scatter",
}

// String returns the snake_case phase name used by the exporters.
func (p Phase) String() string {
	if p < 0 || p >= PhaseCount {
		return fmt.Sprintf("phase(%d)", int(p))
	}
	return phaseNames[p]
}

// Span is the lifecycle record of one request. IDs are unique per
// process; a fused dispatch yields one parent span (Fused = N) plus N
// child spans whose ParentID names it. All timestamps come from the
// monotonic clock.
type Span struct {
	ID       uint64 `json:"id"`
	ParentID uint64 `json:"parent_id,omitempty"`

	// TraceID is the end-to-end request correlation id (the W3C
	// traceparent trace-id on requests entering through the serving
	// tier), threaded from Do/Submit so an HTTP access-log line and the
	// engine span it caused share one id. Empty on untraced requests.
	TraceID string `json:"trace_id,omitempty"`
	// Origin is the tenant (or other caller identity) the request was
	// submitted on behalf of; it keys the per-tenant SLO accounting.
	Origin string `json:"origin,omitempty"`
	// Deadline is the request's end-to-end budget (ctx deadline minus
	// submission time); 0 = no deadline. Tenant accounting classifies a
	// completed request as a deadline hit or miss against it.
	Deadline time.Duration `json:"deadline_ns,omitempty"`
	// Riders holds the trace ids of every traced request a fused parent
	// dispatch executed for (nil on ordinary spans), so a trace lookup
	// by rider id also surfaces the shared dispatch it rode in.
	Riders []string `json:"riders,omitempty"`

	Op    string `json:"op"`
	DType string `json:"dtype,omitempty"`
	Mode  string `json:"mode,omitempty"`
	M     int    `json:"m,omitempty"`
	N     int    `json:"n,omitempty"`
	K     int    `json:"k,omitempty"`
	Count int    `json:"count,omitempty"`

	// Fused is the number of requests a parent dispatch span executed
	// for (0 on ordinary spans, >= 2 on fused dispatch spans).
	Fused   int `json:"fused,omitempty"`
	Workers int `json:"workers,omitempty"`

	// Prepack cache interactions of this dispatch.
	PrepackHits   int `json:"prepack_hits,omitempty"`
	PrepackBuilds int `json:"prepack_builds,omitempty"`

	Start  time.Time                 `json:"start"`
	End    time.Time                 `json:"end"`
	Phases [PhaseCount]time.Duration `json:"phases"`

	Error string `json:"error,omitempty"`
}

// Mark adds the time elapsed since `since` to phase p. Nil-safe, so call
// sites can thread an optional span without branching.
func (sp *Span) Mark(p Phase, since time.Time) {
	if sp == nil {
		return
	}
	sp.Phases[p] += time.Since(since)
}

// Prepack records one prepacked-operand cache interaction: a hit on the
// existing packed image or a build of a fresh one. Nil-safe.
func (sp *Span) Prepack(hit bool) {
	if sp == nil {
		return
	}
	if hit {
		sp.PrepackHits++
	} else {
		sp.PrepackBuilds++
	}
}

// Duration returns the span's end-to-end wall time.
func (sp *Span) Duration() time.Duration { return sp.End.Sub(sp.Start) }

// PhaseTotal returns the sum of all recorded phase durations; the
// difference to Duration is unattributed dispatch overhead.
func (sp *Span) PhaseTotal() time.Duration {
	var t time.Duration
	for _, d := range sp.Phases {
		t += d
	}
	return t
}

// SpanFunc receives completed spans. It runs synchronously on the
// resolving goroutine; the span is recycled when it returns, so retain a
// copy (*sp), never the pointer.
type SpanFunc func(*Span)

type spanCfg struct{ fn SpanFunc }

var (
	spanIDs  atomic.Uint64
	spanPool = sync.Pool{New: func() any { return new(Span) }}
)

// SetSpanSink installs the registry's span sink. With a sink installed
// every request materializes a span; fn == nil removes the sink and
// restores the one-atomic-load disabled cost.
func (r *Registry) SetSpanSink(fn SpanFunc) {
	if fn == nil {
		r.spans.Store(nil)
		return
	}
	r.spans.Store(&spanCfg{fn: fn})
}

// SpansEnabled reports whether a span sink is installed (one atomic
// load).
func (r *Registry) SpansEnabled() bool { return r.spans.Load() != nil }

// StartSpan returns a pooled span stamped with a fresh ID and Start, or
// nil when no sink is installed and force is false — the disabled fast
// path is the single atomic load of the sink pointer.
func (r *Registry) StartSpan(force bool) *Span {
	if !force && r.spans.Load() == nil {
		return nil
	}
	sp := spanPool.Get().(*Span)
	*sp = Span{ID: spanIDs.Add(1), Start: time.Now()}
	return sp
}

// FinishSpan stamps the span's end, records err, delivers it to the
// registry sink and the optional per-request extra sink, and recycles
// it. Nil-safe.
func (r *Registry) FinishSpan(sp *Span, err error, extra SpanFunc) {
	if sp == nil {
		return
	}
	sp.End = time.Now()
	if err != nil {
		sp.Error = err.Error()
	}
	if sp.Origin != "" {
		if tt := r.tenants.Load(); tt != nil {
			tt.record(sp, err)
		}
	}
	if cfg := r.spans.Load(); cfg != nil {
		cfg.fn(sp)
	}
	if extra != nil {
		extra(sp)
	}
	spanPool.Put(sp)
}

// SpanRing is a fixed-capacity ring of completed spans — the capture
// sink behind live monitoring surfaces (`/trace?n=K`). Add copies the
// span, so it is safe to install directly as a SpanFunc.
type SpanRing struct {
	mu    sync.Mutex
	buf   []Span
	next  uint64 // total spans ever added
	total uint64
}

// NewSpanRing returns a ring holding the most recent n spans (n < 1 is
// clamped to 1).
func NewSpanRing(n int) *SpanRing {
	if n < 1 {
		n = 1
	}
	return &SpanRing{buf: make([]Span, n)}
}

// Add copies sp into the ring, evicting the oldest entry when full.
// Safe for concurrent use; usable directly as a SpanFunc.
func (g *SpanRing) Add(sp *Span) {
	g.mu.Lock()
	g.buf[g.next%uint64(len(g.buf))] = *sp
	g.next++
	g.total++
	g.mu.Unlock()
}

// Total returns the number of spans ever added.
func (g *SpanRing) Total() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.total
}

// Spans returns up to n of the most recent spans, oldest first. n <= 0
// returns everything retained.
func (g *SpanRing) Spans(n int) []Span {
	g.mu.Lock()
	defer g.mu.Unlock()
	held := int(g.next)
	if held > len(g.buf) {
		held = len(g.buf)
	}
	if n <= 0 || n > held {
		n = held
	}
	out := make([]Span, 0, n)
	for i := int(g.next) - n; i < int(g.next); i++ {
		out = append(out, g.buf[uint64(i)%uint64(len(g.buf))])
	}
	return out
}

// Trace returns every retained span belonging to one request trace,
// oldest first: spans whose TraceID matches id, fused parent dispatches
// that carried id as a rider, and — when id parses as a span number —
// the span with that ID plus its children. Empty when nothing matches.
func (g *SpanRing) Trace(id string) []Span {
	if id == "" {
		return nil
	}
	num, numErr := strconv.ParseUint(id, 10, 64)
	g.mu.Lock()
	defer g.mu.Unlock()
	held := int(g.next)
	if held > len(g.buf) {
		held = len(g.buf)
	}
	var out []Span
	for i := int(g.next) - held; i < int(g.next); i++ {
		sp := &g.buf[uint64(i)%uint64(len(g.buf))]
		match := sp.TraceID == id
		if !match {
			for _, r := range sp.Riders {
				if r == id {
					match = true
					break
				}
			}
		}
		if !match && numErr == nil && (sp.ID == num || sp.ParentID == num) {
			match = true
		}
		if match {
			out = append(out, *sp)
		}
	}
	return out
}

// chromeEvent is one Chrome trace-event JSON object (the subset of the
// trace-event format about:tracing and Perfetto load).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// spanLabel renders the human-readable descriptor shown as the span's
// track name in the trace viewer.
func spanLabel(sp *Span) string {
	label := sp.Op
	if sp.DType != "" {
		label += " " + sp.DType
	}
	if sp.Mode != "" {
		label += " " + sp.Mode
	}
	if sp.M > 0 {
		label += fmt.Sprintf(" %dx%d", sp.M, sp.N)
		if sp.K > 0 {
			label += fmt.Sprintf("x%d", sp.K)
		}
	}
	if sp.Count > 0 {
		label += fmt.Sprintf(" ×%d", sp.Count)
	}
	if sp.Fused > 1 {
		label += fmt.Sprintf(" (fused %d)", sp.Fused)
	}
	return label
}

// WriteChromeTrace encodes spans as Chrome trace-event JSON, loadable in
// about:tracing or Perfetto. Each span becomes one thread track: an
// enclosing complete event for the whole request plus one nested event
// per non-zero phase, laid out sequentially from the span's start.
// Timestamps are relative to the earliest span in the set.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	var epoch time.Time
	for i := range spans {
		if epoch.IsZero() || spans[i].Start.Before(epoch) {
			epoch = spans[i].Start
		}
	}
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	events := make([]chromeEvent, 0, 3*len(spans))
	for i := range spans {
		sp := &spans[i]
		args := map[string]any{
			"id": sp.ID, "count": sp.Count, "workers": sp.Workers,
		}
		if sp.ParentID != 0 {
			args["parent"] = sp.ParentID
		}
		if sp.Fused > 1 {
			args["fused"] = sp.Fused
		}
		if sp.PrepackHits > 0 || sp.PrepackBuilds > 0 {
			args["prepack_hits"] = sp.PrepackHits
			args["prepack_builds"] = sp.PrepackBuilds
		}
		if sp.TraceID != "" {
			args["trace"] = sp.TraceID
		}
		if sp.Origin != "" {
			args["tenant"] = sp.Origin
		}
		if sp.Error != "" {
			args["error"] = sp.Error
		}
		events = append(events,
			chromeEvent{Name: "thread_name", Ph: "M", PID: 1, TID: sp.ID,
				Args: map[string]any{"name": spanLabel(sp)}},
			chromeEvent{Name: spanLabel(sp), Cat: sp.Op, Ph: "X",
				TS: us(sp.Start.Sub(epoch)), Dur: us(sp.Duration()),
				PID: 1, TID: sp.ID, Args: args})
		cursor := sp.Start.Sub(epoch)
		for p := Phase(0); p < PhaseCount; p++ {
			d := sp.Phases[p]
			if d <= 0 {
				continue
			}
			events = append(events, chromeEvent{Name: p.String(), Cat: sp.Op,
				Ph: "X", TS: us(cursor), Dur: us(d), PID: 1, TID: sp.ID})
			cursor += d
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"})
}
