// Hist is a standalone lock-free log2 latency histogram — the same
// bucket scheme the per-shape Series uses internally, exported for
// layers that need a histogram outside a Series (the async dispatcher's
// queue-wait distribution). Observation is two atomic adds and one
// atomic increment; snapshots are point-in-time and cheap.

package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is a log2 histogram of durations: bucket b holds observations in
// (2^(b-1), 2^b] nanoseconds, covering 1 ns to ~9 minutes. The zero
// value is ready to use; all methods are safe for concurrent use.
type Hist struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
}

// Observe records one duration.
func (h *Hist) Observe(d time.Duration) {
	n := uint64(d.Nanoseconds())
	b := bits.Len64(n)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(n)
}

// HistBucket is one log2 bucket of a HistSnapshot: Count observations
// with durations <= UpperNs (and above the previous bucket's bound).
type HistBucket struct {
	UpperNs uint64 `json:"upper_ns"`
	Count   uint64 `json:"count"`
}

// HistSnapshot is a point-in-time view of a Hist, JSON-exportable.
// Buckets are per-bucket (not cumulative) and truncated after the
// highest non-empty bucket.
type HistSnapshot struct {
	Count   uint64        `json:"count"`
	SumNs   uint64        `json:"sum_ns"`
	P50     time.Duration `json:"p50_ns"`
	P99     time.Duration `json:"p99_ns"`
	Buckets []HistBucket  `json:"buckets,omitempty"`
}

// Reset zeroes the histogram — used by windowed monitoring resets. It is
// not atomic with respect to concurrent Observe calls: an observation
// racing the reset may survive partially (count without its bucket),
// which windowed consumers tolerate.
func (h *Hist) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// Snapshot returns the current histogram state.
func (h *Hist) Snapshot() HistSnapshot {
	var counts [histBuckets]uint64
	last := -1
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		if counts[i] > 0 {
			last = i
		}
	}
	snap := HistSnapshot{
		Count: h.count.Load(),
		SumNs: h.sum.Load(),
		P50:   histQuantile(&counts, 0.50),
		P99:   histQuantile(&counts, 0.99),
	}
	for i := 0; i <= last; i++ {
		snap.Buckets = append(snap.Buckets, HistBucket{
			UpperNs: uint64(1) << uint(i), Count: counts[i]})
	}
	return snap
}

// Mean returns the distribution's average duration (0 when empty) — the
// serving tier's admission predictor scales it by queue depth to estimate
// a new request's wait.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNs / s.Count)
}

// Add merges another snapshot into s — the cross-shard aggregate view of
// an EngineSet's queue-wait histograms. Buckets are summed by bound and
// the quantiles recomputed from the merged distribution.
func (s *HistSnapshot) Add(o HistSnapshot) {
	var counts [histBuckets]uint64
	fill := func(h HistSnapshot) {
		for _, b := range h.Buckets {
			i := bits.Len64(b.UpperNs) - 1
			if i < 0 {
				i = 0
			}
			if i >= histBuckets {
				i = histBuckets - 1
			}
			counts[i] += b.Count
		}
	}
	fill(*s)
	fill(o)
	s.Count += o.Count
	s.SumNs += o.SumNs
	s.P50 = histQuantile(&counts, 0.50)
	s.P99 = histQuantile(&counts, 0.99)
	s.Buckets = s.Buckets[:0]
	last := -1
	for i := range counts {
		if counts[i] > 0 {
			last = i
		}
	}
	for i := 0; i <= last; i++ {
		s.Buckets = append(s.Buckets, HistBucket{UpperNs: uint64(1) << uint(i), Count: counts[i]})
	}
}
