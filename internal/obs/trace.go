// Trace hook: a pluggable sink that receives the assembled command queue
// of a dispatched call — which packing kernels the Pack Selector chose,
// the tile/kernel sequence the Execution Plan Generator emitted, the
// Batch Counter's super-batch size, and the worker split. Tracing is
// sampled (every Nth call) or forced (the next N calls), so the sink
// never sits on the common path: when disabled, the dispatch cost is one
// atomic pointer load.

package obs

// Command is one entry of a traced call's command queue.
type Command struct {
	Stage  string `json:"stage"`  // "pack", "compute", "writeback", "scale"
	Kernel string `json:"kernel"` // kernel or routine name
	Detail string `json:"detail"` // human-readable parameters
}

// TraceEvent describes one dispatched call: the problem descriptor, the
// plan-cache outcome, the worker split and the full command queue of one
// super-batch pass.
type TraceEvent struct {
	Op    string `json:"op"`
	DType string `json:"dtype"`
	Mode  string `json:"mode"`
	M     int    `json:"m"`
	N     int    `json:"n"`
	K     int    `json:"k,omitempty"`
	Count int    `json:"count"`

	CacheOutcome string `json:"cache_outcome"`

	// Worker split: Groups interleave groups are pulled in chunks of
	// ChunkGroups (the super-batch size) by up to Workers participants.
	Groups         int `json:"groups"`
	GroupsPerBatch int `json:"groups_per_batch"`
	Chunks         int `json:"chunks"`
	Workers        int `json:"workers"`

	Queue []Command `json:"queue"`
}

// TraceFunc receives traced calls. It runs synchronously on the calling
// goroutine, before execution; keep it cheap or hand off.
type TraceFunc func(TraceEvent)

type traceCfg struct {
	fn    TraceFunc
	every uint64
}

// SetTrace installs a trace sink. every == 0 disables sampling (the sink
// then only fires for ForceTrace'd calls); every == 1 traces every call;
// every == n traces each nth call. fn == nil removes the sink.
func (r *Registry) SetTrace(fn TraceFunc, every uint64) {
	if fn == nil {
		r.trace.Store(nil)
		return
	}
	r.trace.Store(&traceCfg{fn: fn, every: every})
}

// ForceTrace marks the next n dispatched calls for tracing regardless of
// the sampling interval. A sink must be installed with SetTrace.
func (r *Registry) ForceTrace(n int) {
	if n > 0 {
		r.forced.Add(int64(n))
	}
}

// TraceSink returns the sink to invoke for the current call, or nil when
// the call is not traced. Each invocation consumes one sampling tick.
func (r *Registry) TraceSink() TraceFunc {
	cfg := r.trace.Load()
	if cfg == nil {
		return nil
	}
	for {
		f := r.forced.Load()
		if f <= 0 {
			break
		}
		if r.forced.CompareAndSwap(f, f-1) {
			return cfg.fn
		}
	}
	if cfg.every > 0 && r.traceCalls.Add(1)%cfg.every == 0 {
		return cfg.fn
	}
	return nil
}
