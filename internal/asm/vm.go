package asm

import (
	"fmt"

	"iatf/internal/vec"
)

// VM interprets kernel IR against a flat memory of E elements, mirroring a
// NEON register file. It is the functional backend that proves generated
// (and optimizer-rescheduled) kernels compute the right answer, and its
// Trace hook feeds the cycle-level pipeline model.
type VM[E vec.Float] struct {
	V   [NumVRegs]vec.V[E]
	P   [NumPRegs]int // element offsets into Mem
	Mem []E

	// Trace, when non-nil, is invoked for every executed instruction.
	// addr is the element offset touched by memory operations and -1
	// otherwise.
	Trace func(in Instr, addr int)
}

// Reset clears registers and pointers (memory is left alone).
func (m *VM[E]) Reset() {
	m.V = [NumVRegs]vec.V[E]{}
	m.P = [NumPRegs]int{}
}

func (m *VM[E]) load(r uint8, addr, vl int) error {
	if addr < 0 || addr+vl > len(m.Mem) {
		return fmt.Errorf("load of %d elements at %d outside memory of %d", vl, addr, len(m.Mem))
	}
	m.V[r] = vec.Load(m.Mem[addr:], vl)
	return nil
}

func (m *VM[E]) store(r uint8, addr, vl int) error {
	if addr < 0 || addr+vl > len(m.Mem) {
		return fmt.Errorf("store of %d elements at %d outside memory of %d", vl, addr, len(m.Mem))
	}
	vec.Store(m.Mem[addr:], m.V[r], vl)
	return nil
}

// Run executes the program. Execution stops at the first fault, which is
// reported with its instruction index — a generated kernel faulting is
// always a generator bug, so the error is made easy to trace.
func (m *VM[E]) Run(p Prog) error {
	vl := vec.Lanes[E]()
	for idx, in := range p {
		addr := -1
		if in.Op.IsMem() {
			addr = m.P[in.P] + int(in.Off)
		}
		var err error
		switch in.Op {
		case NOP, PRFM:
			// no architectural effect
		case LDR:
			err = m.load(in.D, addr, vl)
		case LDP:
			if err = m.load(in.D, addr, vl); err == nil {
				err = m.load(in.D2, addr+vl, vl)
			}
		case STR:
			err = m.store(in.D, addr, vl)
		case STP:
			if err = m.store(in.D, addr, vl); err == nil {
				err = m.store(in.D2, addr+vl, vl)
			}
		case LD1R:
			if addr < 0 || addr >= len(m.Mem) {
				err = fmt.Errorf("ld1r at %d outside memory of %d", addr, len(m.Mem))
			} else {
				m.V[in.D] = vec.Dup(m.Mem[addr])
			}
		case FMUL:
			m.V[in.D] = vec.Mul(m.V[in.A], m.V[in.B])
		case FMLA:
			m.V[in.D] = vec.FMA(m.V[in.D], m.V[in.A], m.V[in.B])
		case FMLS:
			m.V[in.D] = vec.FMS(m.V[in.D], m.V[in.A], m.V[in.B])
		case FADD:
			m.V[in.D] = vec.Add(m.V[in.A], m.V[in.B])
		case FSUB:
			m.V[in.D] = vec.Sub(m.V[in.A], m.V[in.B])
		case FDIV:
			m.V[in.D] = vec.Div(m.V[in.A], m.V[in.B])
		case FMULe:
			m.V[in.D] = vec.Mul(m.V[in.A], vec.Dup(m.V[in.B][in.Lane]))
		case FMLAe:
			m.V[in.D] = vec.FMA(m.V[in.D], m.V[in.A], vec.Dup(m.V[in.B][in.Lane]))
		case FMLSe:
			m.V[in.D] = vec.FMS(m.V[in.D], m.V[in.A], vec.Dup(m.V[in.B][in.Lane]))
		case MOVI:
			m.V[in.D] = vec.Zero[E]()
		case MOVV:
			m.V[in.D] = m.V[in.A]
		case ADDI:
			m.P[in.P] += int(in.Off)
		default:
			err = fmt.Errorf("unknown op %v", in.Op)
		}
		if err != nil {
			return fmt.Errorf("asm: instr %d (%s): %w", idx, SyntaxFor(8).Format(in), err)
		}
		if m.Trace != nil {
			m.Trace(in, addr)
		}
	}
	return nil
}
