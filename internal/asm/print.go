package asm

import (
	"fmt"
	"strings"
)

// Syntax carries the per-data-type details needed to render the IR as
// ARMv8 assembly text: the lane arrangement specifier and the element size
// used to convert element offsets into byte offsets.
type Syntax struct {
	Arr       string // "4s" for float32 lanes, "2d" for float64 lanes
	LaneRef   string // "s" or "d"
	ElemBytes int
}

// SyntaxFor returns the assembly syntax for a real element width in bytes.
func SyntaxFor(elemBytes int) Syntax {
	if elemBytes == 4 {
		return Syntax{Arr: "4s", LaneRef: "s", ElemBytes: 4}
	}
	return Syntax{Arr: "2d", LaneRef: "d", ElemBytes: 8}
}

func (s Syntax) addr(p PReg, off int32) string {
	if off == 0 {
		return fmt.Sprintf("[%s]", p)
	}
	return fmt.Sprintf("[%s, #%d]", p, int(off)*s.ElemBytes)
}

// Format renders one instruction as ARMv8-style assembly.
func (s Syntax) Format(in Instr) string {
	var body string
	switch in.Op {
	case NOP:
		body = "nop"
	case LDR:
		body = fmt.Sprintf("ldr q%d, %s", in.D, s.addr(in.P, in.Off))
	case LDP:
		body = fmt.Sprintf("ldp q%d, q%d, %s", in.D, in.D2, s.addr(in.P, in.Off))
	case STR:
		body = fmt.Sprintf("str q%d, %s", in.D, s.addr(in.P, in.Off))
	case STP:
		body = fmt.Sprintf("stp q%d, q%d, %s", in.D, in.D2, s.addr(in.P, in.Off))
	case LD1R:
		body = fmt.Sprintf("ld1r {v%d.%s}, %s", in.D, s.Arr, s.addr(in.P, in.Off))
	case PRFM:
		body = fmt.Sprintf("prfm pldl1keep, %s", s.addr(in.P, in.Off))
	case FMUL, FMLA, FMLS, FADD, FSUB, FDIV:
		body = fmt.Sprintf("%s v%d.%s, v%d.%s, v%d.%s", in.Op, in.D, s.Arr, in.A, s.Arr, in.B, s.Arr)
	case FMULe, FMLAe, FMLSe:
		body = fmt.Sprintf("%s v%d.%s, v%d.%s, v%d.%s[%d]", in.Op, in.D, s.Arr, in.A, s.Arr, in.B, s.LaneRef, in.Lane)
	case MOVI:
		body = fmt.Sprintf("movi v%d.16b, #0", in.D)
	case MOVV:
		body = fmt.Sprintf("mov v%d.16b, v%d.16b", in.D, in.A)
	case ADDI:
		body = fmt.Sprintf("add %s, %s, #%d", in.P, in.P, int(in.Off)*s.ElemBytes)
	default:
		body = in.Op.String()
	}
	if in.Comment != "" {
		return fmt.Sprintf("%-40s // %s", body, in.Comment)
	}
	return body
}

// FormatProg renders a whole kernel body, one instruction per line.
func (s Syntax) FormatProg(p Prog) string {
	var b strings.Builder
	for _, in := range p {
		b.WriteString(s.Format(in))
		b.WriteByte('\n')
	}
	return b.String()
}
