package asm

import (
	"strings"
	"testing"
)

func TestOpClassification(t *testing.T) {
	cases := []struct {
		op                        Op
		mem, load, store, fp, acc bool
	}{
		{LDR, true, true, false, false, false},
		{LDP, true, true, false, false, false},
		{STR, true, false, true, false, false},
		{STP, true, false, true, false, false},
		{LD1R, true, true, false, false, false},
		{PRFM, true, false, false, false, false},
		{FMUL, false, false, false, true, false},
		{FMLA, false, false, false, true, true},
		{FMLS, false, false, false, true, true},
		{FMLAe, false, false, false, true, true},
		{FMULe, false, false, false, true, false},
		{MOVI, false, false, false, true, false},
		{ADDI, false, false, false, false, false},
		{NOP, false, false, false, false, false},
	}
	for _, c := range cases {
		if c.op.IsMem() != c.mem || c.op.IsLoad() != c.load || c.op.IsStore() != c.store ||
			c.op.IsFP() != c.fp || c.op.IsAcc() != c.acc {
			t.Errorf("%v: mem=%v load=%v store=%v fp=%v acc=%v", c.op,
				c.op.IsMem(), c.op.IsLoad(), c.op.IsStore(), c.op.IsFP(), c.op.IsAcc())
		}
	}
}

func TestReadsWrites(t *testing.T) {
	ldp := Instr{Op: LDP, D: 0, D2: 1, P: PA}
	if !ldp.Writes().Has(vbit(0)) || !ldp.Writes().Has(vbit(1)) {
		t.Error("LDP writes both destinations")
	}
	if !ldp.Reads().Has(pbit(PA)) {
		t.Error("LDP reads its base pointer")
	}
	fmla := Instr{Op: FMLA, D: 16, A: 0, B: 8}
	if !fmla.Reads().Has(vbit(16)) {
		t.Error("FMLA reads its accumulator")
	}
	if !fmla.Reads().Has(vbit(0)) || !fmla.Reads().Has(vbit(8)) {
		t.Error("FMLA reads both operands")
	}
	if !fmla.Writes().Has(vbit(16)) {
		t.Error("FMLA writes its accumulator")
	}
	fmul := Instr{Op: FMUL, D: 16, A: 0, B: 8}
	if fmul.Reads().Has(vbit(16)) {
		t.Error("FMUL must not read its destination")
	}
	addi := Instr{Op: ADDI, P: PB, Off: 4}
	if !addi.Reads().Has(pbit(PB)) || !addi.Writes().Has(pbit(PB)) {
		t.Error("ADDI reads and writes its pointer")
	}
	str := Instr{Op: STR, D: 3, P: PC}
	if !str.Reads().Has(vbit(3)) || str.Writes() != 0 {
		t.Error("STR reads its data register and writes nothing")
	}
}

func TestDependsOn(t *testing.T) {
	load := Instr{Op: LDR, D: 0, P: PA}
	use := Instr{Op: FMUL, D: 16, A: 0, B: 8}
	if !DependsOn(load, use) {
		t.Error("RAW: fmul depends on load of its operand")
	}
	if DependsOn(use, Instr{Op: FMUL, D: 17, A: 1, B: 9}) {
		t.Error("independent fmuls must not depend")
	}
	// WAR: a load overwriting a register a previous op reads.
	if !DependsOn(use, Instr{Op: LDR, D: 0, P: PA}) {
		t.Error("WAR: reload of a consumed register must stay after the consumer")
	}
	// Pointer increment orders against subsequent loads from that pointer.
	inc := Instr{Op: ADDI, P: PA, Off: 4}
	if !DependsOn(inc, load) || !DependsOn(load, inc) {
		t.Error("pointer increment must order against loads via that pointer")
	}
	// Store/load memory ordering is conservative.
	st := Instr{Op: STR, D: 5, P: PC}
	ld := Instr{Op: LDR, D: 6, P: PB}
	if !DependsOn(st, ld) || !DependsOn(ld, st) {
		t.Error("stores are memory barriers in both directions")
	}
	// Prefetch is not an ordering barrier.
	if DependsOn(Instr{Op: PRFM, P: PC}, ld) {
		t.Error("prefetch must not order against loads")
	}
	// Two loads never conflict (kernels are store-free until SAVE).
	if DependsOn(load, Instr{Op: LDR, D: 7, P: PB}) {
		t.Error("independent loads must not depend")
	}
}

func TestFormatMatchesFigure5Style(t *testing.T) {
	s := SyntaxFor(8)
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: LDP, D: 8, D2: 9, P: PB}, "ldp q8, q9, [pB]"},
		{Instr{Op: ADDI, P: PB, Off: 4}, "add pB, pB, #32"},
		{Instr{Op: FMUL, D: 16, A: 0, B: 8}, "fmul v16.2d, v0.2d, v8.2d"},
		{Instr{Op: FMLA, D: 31, A: 3, B: 11}, "fmla v31.2d, v3.2d, v11.2d"},
		{Instr{Op: FMLS, D: 20, A: 1, B: 9}, "fmls v20.2d, v1.2d, v9.2d"},
		{Instr{Op: LDR, D: 0, P: PA, Off: 2}, "ldr q0, [pA, #16]"},
		{Instr{Op: STR, D: 0, P: PC}, "str q0, [pC]"},
		{Instr{Op: STP, D: 0, D2: 1, P: PC, Off: 4}, "stp q0, q1, [pC, #32]"},
		{Instr{Op: PRFM, P: PC}, "prfm pldl1keep, [pC]"},
		{Instr{Op: LD1R, D: 30, P: PAlpha}, "ld1r {v30.2d}, [pAl]"},
		{Instr{Op: MOVI, D: 16}, "movi v16.16b, #0"},
	}
	for _, c := range cases {
		if got := s.Format(c.in); got != c.want {
			t.Errorf("Format = %q want %q", got, c.want)
		}
	}
	// float32 arrangement and by-element lane reference.
	s32 := SyntaxFor(4)
	got := s32.Format(Instr{Op: FMLAe, D: 16, A: 0, B: 8, Lane: 2})
	if got != "fmla v16.4s, v0.4s, v8.s[2]" {
		t.Errorf("by-element format = %q", got)
	}
	if got := s32.Format(Instr{Op: ADDI, P: PA, Off: 4}); got != "add pA, pA, #16" {
		t.Errorf("float32 byte offset = %q", got)
	}
}

func TestFormatProgAndComments(t *testing.T) {
	p := Prog{
		{Op: LDR, D: 0, P: PA, Comment: "For I"},
		{Op: FMUL, D: 16, A: 0, B: 8},
	}
	out := SyntaxFor(8).FormatProg(p)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "// For I") {
		t.Errorf("comment missing: %q", lines[0])
	}
}

func TestProgCounts(t *testing.T) {
	p := Prog{
		{Op: LDP, D: 0, D2: 1, P: PA},
		{Op: ADDI, P: PA, Off: 4},
		{Op: PRFM, P: PC},
		{Op: FMUL, D: 16, A: 0, B: 8},
		{Op: FMLA, D: 17, A: 1, B: 8},
		{Op: FMLS, D: 18, A: 1, B: 9},
		{Op: STR, D: 16, P: PC},
	}
	mem, fp := p.Counts()
	if mem != 2 || fp != 3 {
		t.Errorf("Counts = (%d, %d), want (2, 3)", mem, fp)
	}
	fma, other := p.FlopCount()
	if fma != 2 || other != 1 {
		t.Errorf("FlopCount = (%d, %d), want (2, 1)", fma, other)
	}
}

func TestMOVVClassification(t *testing.T) {
	mv := Instr{Op: MOVV, D: 3, A: 7}
	if !MOVV.IsFP() || MOVV.IsMem() || MOVV.IsAcc() {
		t.Error("MOVV classification")
	}
	if !mv.Reads().Has(vbit(7)) || !mv.Writes().Has(vbit(3)) {
		t.Error("MOVV reads A and writes D")
	}
	if MOVV.String() != "mov" {
		t.Errorf("MOVV name %q", MOVV)
	}
	if got := SyntaxFor(8).Format(mv); got != "mov v3.16b, v7.16b" {
		t.Errorf("MOVV format %q", got)
	}
}
