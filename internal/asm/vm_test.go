package asm

import (
	"strings"
	"testing"
)

func newVM64(mem []float64) *VM[float64] {
	return &VM[float64]{Mem: mem}
}

func TestVMLoadComputeStore(t *testing.T) {
	// mem: A = [1 2], B = [3 4], C at 4.
	m := newVM64([]float64{1, 2, 3, 4, 0, 0})
	m.P[PA] = 0
	m.P[PB] = 2
	m.P[PC] = 4
	p := Prog{
		{Op: LDR, D: 0, P: PA},
		{Op: LDR, D: 1, P: PB},
		{Op: FMUL, D: 2, A: 0, B: 1}, // [3, 8]
		{Op: FMLA, D: 2, A: 0, B: 1}, // [6, 16]
		{Op: FMLS, D: 2, A: 0, B: 0}, // [5, 12]
		{Op: STR, D: 2, P: PC},
	}
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	if m.Mem[4] != 5 || m.Mem[5] != 12 {
		t.Errorf("C = %v, want [5 12]", m.Mem[4:6])
	}
}

func TestVMLDPAndSTPPairs(t *testing.T) {
	m := newVM64([]float64{1, 2, 3, 4, 0, 0, 0, 0})
	p := Prog{
		{Op: LDP, D: 0, D2: 1, P: PA},
		{Op: STP, D: 1, D2: 0, P: PA, Off: 4}, // swapped pair
	}
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 4, 1, 2}
	for i, w := range want {
		if m.Mem[4+i] != w {
			t.Errorf("mem[%d] = %v want %v", 4+i, m.Mem[4+i], w)
		}
	}
}

func TestVMLD1RBroadcast(t *testing.T) {
	m := &VM[float32]{Mem: []float32{0, 7}}
	p := Prog{{Op: LD1R, D: 3, P: PAlpha, Off: 1}}
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < 4; lane++ {
		if m.V[3][lane] != 7 {
			t.Errorf("lane %d = %v", lane, m.V[3][lane])
		}
	}
}

func TestVMByElementForms(t *testing.T) {
	m := &VM[float32]{Mem: []float32{1, 2, 3, 4, 10, 20, 30, 40}}
	p := Prog{
		{Op: LDR, D: 0, P: PA},                 // [1 2 3 4]
		{Op: LDR, D: 1, P: PA, Off: 4},         // [10 20 30 40]
		{Op: FMULe, D: 2, A: 0, B: 1, Lane: 2}, // [30 60 90 120]
		{Op: FMLAe, D: 2, A: 0, B: 1, Lane: 0}, // +[10 20 30 40]
		{Op: FMLSe, D: 2, A: 0, B: 1, Lane: 1}, // -[20 40 60 80]
	}
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	want := [4]float32{20, 40, 60, 80}
	if m.V[2] != want {
		t.Errorf("V2 = %v want %v", m.V[2], want)
	}
}

func TestVMADDIAndOffsets(t *testing.T) {
	m := newVM64([]float64{1, 2, 3, 4})
	p := Prog{
		{Op: ADDI, P: PA, Off: 2},
		{Op: LDR, D: 0, P: PA},
	}
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	if m.V[0][0] != 3 || m.V[0][1] != 4 {
		t.Errorf("V0 = %v", m.V[0])
	}
}

func TestVMMOVIZeroesAndArith(t *testing.T) {
	m := newVM64([]float64{2, 3})
	p := Prog{
		{Op: LDR, D: 0, P: PA},
		{Op: MOVI, D: 1},
		{Op: FADD, D: 1, A: 1, B: 0}, // [2 3]
		{Op: FSUB, D: 2, A: 1, B: 0}, // [0 0]
		{Op: FDIV, D: 3, A: 1, B: 0}, // [1 1]
	}
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	if m.V[1] != ([4]float64{2, 3, 0, 0}) {
		t.Errorf("FADD = %v", m.V[1])
	}
	if m.V[2] != ([4]float64{}) {
		t.Errorf("FSUB = %v", m.V[2])
	}
	if m.V[3][0] != 1 || m.V[3][1] != 1 {
		t.Errorf("FDIV = %v", m.V[3])
	}
}

func TestVMFaultReporting(t *testing.T) {
	m := newVM64([]float64{1})
	err := m.Run(Prog{{Op: NOP}, {Op: LDR, D: 0, P: PA}})
	if err == nil {
		t.Fatal("out-of-bounds load did not error")
	}
	if !strings.Contains(err.Error(), "instr 1") {
		t.Errorf("error lacks instruction index: %v", err)
	}
	if err := m.Run(Prog{{Op: LD1R, D: 0, P: PA, Off: 5}}); err == nil {
		t.Error("out-of-bounds ld1r did not error")
	}
	if err := m.Run(Prog{{Op: STR, D: 0, P: PA, Off: -3}}); err == nil {
		t.Error("negative-address store did not error")
	}
}

func TestVMTraceHook(t *testing.T) {
	m := newVM64([]float64{1, 2, 3, 4})
	var ops []Op
	var addrs []int
	m.Trace = func(in Instr, addr int) {
		ops = append(ops, in.Op)
		addrs = append(addrs, addr)
	}
	p := Prog{
		{Op: LDR, D: 0, P: PA, Off: 2},
		{Op: FMUL, D: 1, A: 0, B: 0},
		{Op: PRFM, P: PA},
	}
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 || ops[0] != LDR || ops[1] != FMUL || ops[2] != PRFM {
		t.Errorf("trace ops = %v", ops)
	}
	if addrs[0] != 2 || addrs[1] != -1 || addrs[2] != 0 {
		t.Errorf("trace addrs = %v", addrs)
	}
}

func TestVMReset(t *testing.T) {
	m := newVM64([]float64{5, 6})
	if err := m.Run(Prog{{Op: LDR, D: 7, P: PA}, {Op: ADDI, P: PB, Off: 9}}); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if m.V[7] != ([4]float64{}) || m.P[PB] != 0 {
		t.Error("Reset did not clear state")
	}
	if m.Mem[0] != 5 {
		t.Error("Reset must not clear memory")
	}
}
