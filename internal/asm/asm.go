// Package asm defines the ARMv8-NEON-like vector instruction IR that the
// IATF install-time stage generates, optimizes and (in this reproduction)
// interprets and times. The instruction set is exactly the subset that
// appears in the paper's generated kernels (Figure 5): quad-register
// loads/stores, vector multiply and fused multiply-add/subtract (plain and
// by-element forms), pointer arithmetic, broadcast loads and prefetch.
//
// Memory operands use *element* offsets internally; the printer renders the
// byte offsets real ARMv8 assembly would carry.
package asm

import "fmt"

// Op enumerates the modeled instructions.
type Op uint8

const (
	NOP Op = iota
	// Memory.
	LDR  // ldr qD, [P, #off]          — load one 128-bit register
	LDP  // ldp qD, qD2, [P, #off]     — load a pair of registers
	STR  // str qD, [P, #off]
	STP  // stp qD, qD2, [P, #off]
	LD1R // ld1r {vD}, [P, #off]       — load scalar, broadcast to all lanes
	PRFM // prfm pldl1keep, [P, #off]  — software prefetch, no arch effect
	// Vector arithmetic.
	FMUL  // vD = vA * vB
	FMLA  // vD += vA * vB
	FMLS  // vD -= vA * vB
	FADD  // vD = vA + vB
	FSUB  // vD = vA - vB
	FDIV  // vD = vA / vB (long latency; kernels avoid it by design)
	FMULe // vD = vA * vB[lane]        — by-element form (baseline kernels)
	FMLAe // vD += vA * vB[lane]
	FMLSe // vD -= vA * vB[lane]
	MOVI  // vD = 0
	MOVV  // vD = vA (register move, NEON orr alias)
	// Scalar/pointer arithmetic.
	ADDI // P += #off (element units)
)

var opNames = map[Op]string{
	NOP: "nop", LDR: "ldr", LDP: "ldp", STR: "str", STP: "stp",
	LD1R: "ld1r", PRFM: "prfm", FMUL: "fmul", FMLA: "fmla", FMLS: "fmls",
	FADD: "fadd", FSUB: "fsub", FDIV: "fdiv", FMULe: "fmul", FMLAe: "fmla",
	FMLSe: "fmls", MOVI: "movi", MOVV: "mov", ADDI: "add",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsMem reports whether the op touches memory.
func (o Op) IsMem() bool {
	switch o {
	case LDR, LDP, STR, STP, LD1R, PRFM:
		return true
	}
	return false
}

// IsLoad reports whether the op reads memory into registers.
func (o Op) IsLoad() bool {
	switch o {
	case LDR, LDP, LD1R:
		return true
	}
	return false
}

// IsStore reports whether the op writes memory.
func (o Op) IsStore() bool { return o == STR || o == STP }

// IsFP reports whether the op executes on a floating-point pipe.
func (o Op) IsFP() bool {
	switch o {
	case FMUL, FMLA, FMLS, FADD, FSUB, FDIV, FMULe, FMLAe, FMLSe, MOVI, MOVV:
		return true
	}
	return false
}

// IsAcc reports whether the destination register is also a source
// (accumulating forms).
func (o Op) IsAcc() bool {
	switch o {
	case FMLA, FMLS, FMLAe, FMLSe:
		return true
	}
	return false
}

// PReg is a pointer (address) register. The enum fixes the calling
// convention of every generated kernel.
type PReg uint8

const (
	PA     PReg = iota // packed A panel
	PB                 // packed B panel
	PC                 // C (output) block
	PAlpha             // scalar parameter block (alpha, and re/im for complex)
	PX                 // TRSM: previously solved X panels
	P5                 // scratch
	P6                 // scratch
	P7                 // scratch
	NumPRegs
)

var pregNames = [NumPRegs]string{"pA", "pB", "pC", "pAl", "pX", "p5", "p6", "p7"}

func (p PReg) String() string {
	if int(p) < len(pregNames) {
		return pregNames[p]
	}
	return fmt.Sprintf("p?%d", uint8(p))
}

// NumVRegs is the architectural vector register count (ARMv8: V0–V31).
const NumVRegs = 32

// Instr is one IR instruction. Field use by op class:
//
//   - loads: D (and D2 for LDP) destinations, P base, Off element offset
//   - stores: D (and D2 for STP) sources, P base, Off element offset
//   - arithmetic: D destination (and source for accumulating ops), A and B
//     sources, Lane for by-element forms
//   - ADDI: P destination and source, Off element increment
type Instr struct {
	Op      Op
	D, D2   uint8
	A, B    uint8
	Lane    uint8
	P       PReg
	Off     int32
	Comment string
}

// RegMask is a dependence bitmask: bits 0–31 are V0–V31, bits 32–39 the
// pointer registers.
type RegMask uint64

func vbit(r uint8) RegMask           { return 1 << r }
func pbit(p PReg) RegMask            { return 1 << (32 + uint(p)) }
func (m RegMask) Has(r RegMask) bool { return m&r != 0 }

// Reads returns the register-read set of the instruction.
func (in Instr) Reads() RegMask {
	var m RegMask
	switch in.Op {
	case LDR, LDP, LD1R, PRFM:
		m |= pbit(in.P)
	case STR:
		m |= pbit(in.P) | vbit(in.D)
	case STP:
		m |= pbit(in.P) | vbit(in.D) | vbit(in.D2)
	case FMUL, FMLA, FMLS, FADD, FSUB, FDIV, FMULe, FMLAe, FMLSe:
		m |= vbit(in.A) | vbit(in.B)
		if in.Op.IsAcc() {
			m |= vbit(in.D)
		}
	case MOVV:
		m |= vbit(in.A)
	case ADDI:
		m |= pbit(in.P)
	}
	return m
}

// Writes returns the register-write set of the instruction.
func (in Instr) Writes() RegMask {
	var m RegMask
	switch in.Op {
	case LDR, LD1R:
		m = vbit(in.D)
	case LDP:
		m = vbit(in.D) | vbit(in.D2)
	case FMUL, FMLA, FMLS, FADD, FSUB, FDIV, FMULe, FMLAe, FMLSe, MOVI, MOVV:
		m = vbit(in.D)
	case ADDI:
		m = pbit(in.P)
	}
	return m
}

// DependsOn reports whether instruction b must stay after instruction a:
// any register RAW/WAR/WAW hazard, or a memory-ordering hazard (stores are
// ordering barriers against every other memory operation; prefetches are
// not).
func DependsOn(a, b Instr) bool {
	if b.Reads().Has(a.Writes()) || // RAW
		b.Writes().Has(a.Reads()) || // WAR
		b.Writes().Has(a.Writes()) && b.Writes() != 0 { // WAW
		return true
	}
	aMem := a.Op.IsMem() && a.Op != PRFM
	bMem := b.Op.IsMem() && b.Op != PRFM
	if aMem && bMem && (a.Op.IsStore() || b.Op.IsStore()) {
		return true
	}
	return false
}

// Prog is an instruction sequence — one generated kernel body.
type Prog []Instr

// FlopCount returns the number of lane-wise arithmetic instructions
// (multiply-accumulate counts once; the caller scales by lanes and by 2 for
// fused ops when converting to FLOPs).
func (p Prog) FlopCount() (fma, other int) {
	for _, in := range p {
		switch in.Op {
		case FMLA, FMLS, FMLAe, FMLSe:
			fma++
		case FMUL, FADD, FSUB, FDIV, FMULe:
			other++
		}
	}
	return
}

// Counts returns the number of memory and floating-point instructions —
// the quantities the paper's CMAR analysis (Eq. 2/3) reasons about.
func (p Prog) Counts() (mem, fp int) {
	for _, in := range p {
		switch {
		case in.Op == PRFM || in.Op == ADDI || in.Op == NOP:
		case in.Op.IsMem():
			mem++
		case in.Op.IsFP():
			fp++
		}
	}
	return
}
