// Package serve is the SLO-aware HTTP serving tier over the engine's
// async submission front-end — the network boundary of the ROADMAP's
// "millions of users" story. It keeps the tuned run-time stage behind a
// thin stdlib net/http surface (the IAAT-style install-time/run-time
// split: tuning happens below, admission decisions happen here) and
// drives those decisions from signals the engine already exports, the
// way tritonBLAS derives kernel selection analytically instead of by
// probing:
//
//   - POST /v1/do accepts one batched compact-BLAS request as JSON,
//     lowers it onto iatf.Submit (the coalescing, EDF-ordered queue) and
//     streams the written operand back. A context deadline comes from the
//     request body (deadline_ms) or the server default; a tenant header
//     maps to a priority class that breaks EDF ties.
//   - Admission control sheds load BEFORE enqueueing: the predicted queue
//     wait — the recent iatf_queue_wait_seconds p99 scaled by how full
//     the queue is relative to its depth high-water mark — is compared
//     against the request's deadline, and a request that would miss it
//     anyway is rejected with 429 and a Retry-After hint instead of
//     wasting a queue slot to time out inside the dispatcher.
//   - ErrQueueFull backpressure maps to the same 429 contract; a deadline
//     that expires during execution maps to 504.
//
// The admission signal is cached and refreshed at most once per
// Config.AdmitRefresh, so steady-state admission costs one atomic load
// plus a clock read, not a stats snapshot per request.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"iatf"
)

// Config configures a Server. Exactly one backend is used: Set when
// non-nil, else Engine, else the process-wide default engine.
type Config struct {
	Engine *iatf.Engine
	Set    *iatf.EngineSet

	// DefaultDeadline is applied to requests that carry no deadline_ms.
	// 0 means such requests run without a deadline (and are always
	// admitted — the predictor has nothing to compare against).
	DefaultDeadline time.Duration

	// Tenants maps the X-IATF-Tenant header to the tenant's serving
	// contract: the EDF priority class (Class breaks deadline ties,
	// overriding the body's priority field), the per-request latency
	// objective and the SLO attainment target the burn-rate gauge runs
	// against. A non-nil map — even an empty one — enables per-tenant
	// accounting on the backend (Engine/EngineSet.SetTenants): every
	// tagged request, shed, and deadline miss lands in the tenant's
	// rolling series, surfaced at /tenants and as iatf_tenant_* metrics.
	// Unknown tenants are tracked with a zero objective.
	Tenants map[string]iatf.TenantObjective

	// AdmitRefresh bounds how often the admission signal is recomputed
	// from the backend's QueueStats (default 5ms).
	AdmitRefresh time.Duration

	// MaxBodyBytes bounds a request body (default 64 MiB).
	MaxBodyBytes int64

	// AccessLog, when non-nil, receives one structured JSON line per
	// /v1/do request: method, trace id, tenant, op/shape, status,
	// predicted vs actual queue wait, and the engine span's per-phase
	// durations (joined via a per-request span sink). Writes are
	// serialized; give it an *os.File or a bytes.Buffer directly.
	AccessLog io.Writer
}

// Stats counts the server's request outcomes. Queue is the backend's
// aggregate submission-queue view at snapshot time.
type Stats struct {
	Admitted  uint64 `json:"admitted"`   // requests that passed admission and were submitted
	Done      uint64 `json:"done"`       // 200: completed within deadline
	Shed      uint64 `json:"shed"`       // 429: predicted wait exceeded the deadline
	QueueFull uint64 `json:"queue_full"` // 429: ErrQueueFull backpressure
	Expired   uint64 `json:"expired"`    // 504: deadline passed while queued or executing
	Errors    uint64 `json:"errors"`     // 400/405/500

	Queue iatf.QueueStats `json:"queue"`
}

// admitSignal is one cached admission prediction.
type admitSignal struct {
	at        time.Time
	predicted time.Duration
}

// Server is the serving tier: build one with New, mount Handler.
type Server struct {
	cfg Config

	admitted  atomic.Uint64
	done      atomic.Uint64
	shed      atomic.Uint64
	queueFull atomic.Uint64
	expired   atomic.Uint64
	errors    atomic.Uint64

	sig atomic.Pointer[admitSignal]

	logMu sync.Mutex // serializes AccessLog writes
}

// New builds a Server over cfg's backend. A non-nil Tenants map is
// installed on the backend, enabling per-tenant SLO accounting.
func New(cfg Config) *Server {
	if cfg.Set == nil && cfg.Engine == nil {
		cfg.Engine = iatf.DefaultEngine()
	}
	if cfg.AdmitRefresh <= 0 {
		cfg.AdmitRefresh = 5 * time.Millisecond
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.Tenants != nil {
		if cfg.Set != nil {
			cfg.Set.SetTenants(cfg.Tenants)
		} else {
			cfg.Engine.SetTenants(cfg.Tenants)
		}
	}
	return &Server{cfg: cfg}
}

// TenantStats returns the backend's per-tenant SLO series (aggregated
// across shards on a Set backend); empty when accounting is disabled.
func (s *Server) TenantStats() []iatf.TenantStats {
	var ts []iatf.TenantStats
	if s.cfg.Set != nil {
		ts = s.cfg.Set.TenantStats()
	} else {
		ts = s.cfg.Engine.TenantStats()
	}
	if ts == nil {
		ts = []iatf.TenantStats{}
	}
	return ts
}

// recordShed accounts an admission-control rejection in the tenant's
// SLO series: the request never reached the engine, so no span exists
// to carry it. No-op for untagged requests or disabled accounting.
func (s *Server) recordShed(tenant string) {
	if tenant == "" {
		return
	}
	if s.cfg.Set != nil {
		s.cfg.Set.RecordTenantShed(tenant)
		return
	}
	s.cfg.Engine.RecordTenantShed(tenant)
}

// queueStats returns the backend's submission-queue aggregate.
func (s *Server) queueStats() iatf.QueueStats {
	if s.cfg.Set != nil {
		return s.cfg.Set.QueueStats()
	}
	return s.cfg.Engine.QueueStats()
}

// Stats snapshots the server's outcome counters.
func (s *Server) Stats() Stats {
	return Stats{
		Admitted:  s.admitted.Load(),
		Done:      s.done.Load(),
		Shed:      s.shed.Load(),
		QueueFull: s.queueFull.Load(),
		Expired:   s.expired.Load(),
		Errors:    s.errors.Load(),
		Queue:     s.queueStats(),
	}
}

// PredictWait estimates the queue wait a request admitted now would see,
// refreshing the cached signal if it is older than Config.AdmitRefresh.
//
// The model uses exactly the two signals PR 5 exported: the queue-wait
// histogram bounds what recently queued requests actually waited (p99),
// and depth relative to the depth high-water mark says how close the
// queue is to the regime that produced that tail. An idle queue predicts
// the batch window (the floor any queued request pays); a queue at its
// historical peak predicts the full recent p99.
func (s *Server) PredictWait() time.Duration {
	if sig := s.sig.Load(); sig != nil && time.Since(sig.at) < s.cfg.AdmitRefresh {
		return sig.predicted
	}
	p := predictWait(s.queueStats())
	s.sig.Store(&admitSignal{at: time.Now(), predicted: p})
	return p
}

// predictWait is the pure admission model over one queue snapshot.
func predictWait(q iatf.QueueStats) time.Duration {
	if q.Depth == 0 {
		return q.Window
	}
	hw := q.DepthHighWater
	if hw < q.Depth {
		hw = q.Depth
	}
	pred := time.Duration(float64(q.Wait.P99) * float64(q.Depth) / float64(hw))
	// The wait distribution needs traffic before its tail means anything;
	// until then fall back to mean-wait-per-queued-request, then to the
	// window floor.
	if pred == 0 {
		pred = q.Wait.Mean() * time.Duration(q.Depth)
	}
	if pred < q.Window {
		pred = q.Window
	}
	return pred
}

// Handler returns the serving mux:
//
//	POST /v1/do   execute one batched request
//	GET  /healthz liveness
//	GET  /stats   Stats as JSON
//	GET  /tenants per-tenant SLO series as JSON
//	GET  /metrics backend OpenMetrics scrape
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/do", s.handleDo)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/tenants", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.TenantStats())
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Stats())
	})
	if s.cfg.Set != nil {
		mux.Handle("/metrics", s.cfg.Set.MetricsHandler())
	} else {
		mux.Handle("/metrics", s.cfg.Engine.MetricsHandler())
	}
	return mux
}

// WireOperand is one operand on the wire: Count (from the request)
// contiguous column-major rows×cols matrices, back to back in Data.
type WireOperand struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

// DoRequest is the /v1/do body. Mode strings follow BLAS spelling:
// trans "N"/"T", side "L"/"R", uplo "L"/"U", diag "N"/"U". DType is
// "f32" (default) or "f64"; f32 requests parse Data at float32
// precision. Which operands are read depends on Op exactly as in
// iatf.Request: gemm A,B,C — trsm/trmm A,B — syrk A,C.
type DoRequest struct {
	Op     string `json:"op"` // "gemm" | "trsm" | "trmm" | "syrk"
	DType  string `json:"dtype,omitempty"`
	TransA string `json:"trans_a,omitempty"`
	TransB string `json:"trans_b,omitempty"`
	Side   string `json:"side,omitempty"`
	Uplo   string `json:"uplo,omitempty"`
	Diag   string `json:"diag,omitempty"`

	Alpha float64 `json:"alpha"`
	Beta  float64 `json:"beta"`
	Count int     `json:"count"`

	A *WireOperand `json:"a,omitempty"`
	B *WireOperand `json:"b,omitempty"`
	C *WireOperand `json:"c,omitempty"`

	// DeadlineMs is the request's end-to-end SLO; 0 uses the server
	// default. Priority is the EDF tie-break class (overridden by a
	// mapped X-IATF-Tenant header).
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	Priority   int   `json:"priority,omitempty"`
}

// DoResponse carries the written operand (C for gemm/syrk, B for
// trsm/trmm) back as column-major data, plus the server-side latency.
type DoResponse struct {
	Result    []float64 `json:"result"`
	ElapsedUs int64     `json:"elapsed_us"`
}

// errorBody is the JSON error contract, shared by every non-200 outcome.
type errorBody struct {
	Error           string `json:"error"`
	PredictedWaitMs int64  `json:"predicted_wait_ms,omitempty"`
	RetryAfterMs    int64  `json:"retry_after_ms,omitempty"`
}

// writeError emits one JSON error response. Every non-200 outcome
// carries a Retry-After header (whole seconds, minimum 1 — the header's
// resolution) derived from the predicted queue wait, so a correlation-
// aware client never has to parse the body to back off; 429s
// additionally carry the millisecond hints in the body, the original
// backpressure contract.
func writeError(w http.ResponseWriter, status int, msg string, predicted time.Duration) {
	w.Header().Set("Content-Type", "application/json")
	body := errorBody{Error: msg}
	secs := int64((predicted + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	if status == http.StatusTooManyRequests {
		body.PredictedWaitMs = predicted.Milliseconds()
		body.RetryAfterMs = secs * 1000
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// priorityOf resolves the request's class: a mapped tenant's configured
// class wins over the body field.
func (s *Server) priorityOf(tenant string, body *DoRequest) int {
	if tenant != "" {
		if t, ok := s.cfg.Tenants[tenant]; ok {
			return t.Class
		}
	}
	return body.Priority
}

// zeroTraceID is the all-zero trace-id the W3C spec declares invalid.
const zeroTraceID = "00000000000000000000000000000000"

// traceOf resolves the request's correlation id: the trace-id field of
// a well-formed W3C traceparent header ("00-<32 hex>-<16 hex>-<2 hex>")
// when present, else a fresh random 32-hex id. The id is echoed on
// every response as X-IATF-Trace and stamped onto the engine span.
func traceOf(r *http.Request) string {
	if tp := r.Header.Get("traceparent"); tp != "" {
		parts := strings.SplitN(tp, "-", 4)
		if len(parts) >= 3 && len(parts[1]) == 32 {
			id := strings.ToLower(parts[1])
			if id != zeroTraceID && isHex(id) {
				return id
			}
		}
	}
	var b [16]byte
	if _, err := rand.Read(b[:]); err == nil {
		return hex.EncodeToString(b[:])
	}
	return strconv.FormatUint(uint64(time.Now().UnixNano()), 16)
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// reqLog captures the engine span of one request for the access log —
// filled by a per-request span sink, read after the future resolves
// (FinishSpan runs before the future is resolved, so the read is
// ordered).
type reqLog struct {
	span     iatf.Span
	haveSpan bool
}

// accessEntry is one structured access-log line.
type accessEntry struct {
	Time   string `json:"time"`
	Method string `json:"method"`
	Trace  string `json:"trace"`
	Tenant string `json:"tenant,omitempty"`
	Op     string `json:"op,omitempty"`
	DType  string `json:"dtype,omitempty"`
	Shape  string `json:"shape,omitempty"`
	Count  int    `json:"count,omitempty"`
	Status int    `json:"status"`

	DeadlineMs      int64 `json:"deadline_ms,omitempty"`
	PredictedWaitUs int64 `json:"predicted_wait_us"`
	ActualWaitUs    int64 `json:"actual_wait_us"`
	ElapsedUs       int64 `json:"elapsed_us"`

	SpanID   uint64           `json:"span_id,omitempty"`
	FusedOf  uint64           `json:"fused_of,omitempty"` // parent dispatch span id
	PhasesUs map[string]int64 `json:"phases_us,omitempty"`

	Error string `json:"error,omitempty"`
}

// logAccess emits one JSON line to the configured AccessLog.
func (s *Server) logAccess(e *accessEntry) {
	if s.cfg.AccessLog == nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	json.NewEncoder(s.cfg.AccessLog).Encode(e)
}

func (s *Server) handleDo(w http.ResponseWriter, r *http.Request) {
	trace := traceOf(r)
	w.Header().Set("X-IATF-Trace", trace)
	tenant := r.Header.Get("X-IATF-Tenant")

	start := time.Now()
	var (
		req       DoRequest
		rl        *reqLog
		deadline  time.Duration
		predicted time.Duration
	)
	status := http.StatusOK
	errMsg := ""
	if s.cfg.AccessLog != nil {
		rl = &reqLog{}
		defer func() {
			e := accessEntry{
				Time:            start.UTC().Format(time.RFC3339Nano),
				Method:          r.Method,
				Trace:           trace,
				Tenant:          tenant,
				Op:              req.Op,
				DType:           req.DType,
				Count:           req.Count,
				Status:          status,
				DeadlineMs:      deadline.Milliseconds(),
				PredictedWaitUs: predicted.Microseconds(),
				ElapsedUs:       time.Since(start).Microseconds(),
				Error:           errMsg,
			}
			if rl.haveSpan {
				sp := &rl.span
				e.SpanID = sp.ID
				e.FusedOf = sp.ParentID
				e.ActualWaitUs = sp.Phases[iatf.PhaseQueueWait].Microseconds()
				e.Shape = fmt.Sprintf("%dx%d", sp.M, sp.N)
				if sp.K > 0 {
					e.Shape += fmt.Sprintf("x%d", sp.K)
				}
				e.PhasesUs = make(map[string]int64, int(iatf.PhaseScatter)+1)
				for p := iatf.PhaseQueueWait; p <= iatf.PhaseScatter; p++ {
					if d := sp.Phases[p]; d > 0 {
						e.PhasesUs[p.String()] = d.Microseconds()
					}
				}
			}
			s.logAccess(&e)
		}()
	}
	fail := func(st int, msg string, pred time.Duration) {
		status, errMsg = st, msg
		writeError(w, st, msg, pred)
	}

	if r.Method != http.MethodPost {
		s.errors.Add(1)
		fail(http.StatusMethodNotAllowed, "POST only", 0)
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		s.errors.Add(1)
		fail(http.StatusBadRequest, "decode: "+err.Error(), 0)
		return
	}

	deadline = time.Duration(req.DeadlineMs) * time.Millisecond
	if req.DeadlineMs <= 0 {
		deadline = s.cfg.DefaultDeadline
	}

	// Admission: shed a request whose predicted queue wait already
	// exceeds its deadline — it would only occupy a slot to die in.
	// The prediction is cached (AdmitRefresh), so reading it for the
	// access log on deadline-less requests costs an atomic load.
	predicted = s.PredictWait()
	if deadline > 0 && predicted > deadline {
		s.shed.Add(1)
		s.recordShed(tenant)
		fail(http.StatusTooManyRequests,
			fmt.Sprintf("shed: predicted queue wait %v exceeds deadline %v", predicted, deadline), predicted)
		return
	}

	ctx := r.Context()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}

	var result []float64
	var err error
	switch req.DType {
	case "", "f32":
		result, err = run[float32](s, ctx, &req, s.priorityOf(tenant, &req), trace, tenant, rl)
	case "f64":
		result, err = run[float64](s, ctx, &req, s.priorityOf(tenant, &req), trace, tenant, rl)
	default:
		s.errors.Add(1)
		fail(http.StatusBadRequest, "dtype must be f32 or f64", 0)
		return
	}

	if err == nil {
		s.done.Add(1)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(DoResponse{
			Result:    result,
			ElapsedUs: time.Since(start).Microseconds(),
		})
		return
	}
	st := classify(err)
	switch st {
	case http.StatusTooManyRequests:
		s.queueFull.Add(1)
		fail(st, "queue full: "+err.Error(), s.PredictWait())
	case http.StatusGatewayTimeout:
		s.expired.Add(1)
		fail(st, "deadline exceeded: "+err.Error(), s.PredictWait())
	default:
		s.errors.Add(1)
		fail(st, err.Error(), 0)
	}
}

// classify maps a submission/execution error onto the HTTP contract:
// backpressure → 429 (retryable), deadline/cancellation → 504, the
// engine's validation taxonomy and wire-level errBadRequest → 400,
// anything else → 500.
func classify(err error) int {
	switch {
	case errors.Is(err, iatf.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, iatf.ErrShape), errors.Is(err, iatf.ErrCount),
		errors.Is(err, iatf.ErrDType), errors.Is(err, iatf.ErrOperand),
		errors.Is(err, errBadRequest):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// errBadRequest marks wire-level validation failures (missing operand,
// short data) that never reach the engine's typed taxonomy.
var errBadRequest = errors.New("bad request")

// run lowers the wire request onto one iatf.Submit and waits it out,
// threading the trace id and tenant into the engine span (and, when the
// access log wants the span back, a per-request sink). Methods cannot
// be generic, so the dtype split lives here.
func run[T float32 | float64](s *Server, ctx context.Context, req *DoRequest, priority int, trace, tenant string, rl *reqLog) ([]float64, error) {
	if req.Count < 1 {
		return nil, fmt.Errorf("%w: count must be >= 1", errBadRequest)
	}
	ir := iatf.Request[T]{Alpha: T(req.Alpha), Beta: T(req.Beta)}
	var err error
	if ir.TransA, err = parseTrans(req.TransA); err != nil {
		return nil, err
	}
	if ir.TransB, err = parseTrans(req.TransB); err != nil {
		return nil, err
	}
	if ir.Side, err = parseSide(req.Side); err != nil {
		return nil, err
	}
	if ir.Uplo, err = parseUplo(req.Uplo); err != nil {
		return nil, err
	}
	if ir.Diag, err = parseDiag(req.Diag); err != nil {
		return nil, err
	}

	var written *iatf.Compact[T]
	switch req.Op {
	case "gemm":
		ir.Op = iatf.OpGEMM
		if ir.A, err = packOperand[T]("a", req.A, req.Count); err != nil {
			return nil, err
		}
		if ir.B, err = packOperand[T]("b", req.B, req.Count); err != nil {
			return nil, err
		}
		if ir.C, err = packOperand[T]("c", req.C, req.Count); err != nil {
			return nil, err
		}
		written = ir.C
	case "trsm", "trmm":
		ir.Op = iatf.OpTRSM
		if req.Op == "trmm" {
			ir.Op = iatf.OpTRMM
		}
		if ir.A, err = packOperand[T]("a", req.A, req.Count); err != nil {
			return nil, err
		}
		if ir.B, err = packOperand[T]("b", req.B, req.Count); err != nil {
			return nil, err
		}
		written = ir.B
	case "syrk":
		ir.Op = iatf.OpSYRK
		if ir.A, err = packOperand[T]("a", req.A, req.Count); err != nil {
			return nil, err
		}
		if ir.C, err = packOperand[T]("c", req.C, req.Count); err != nil {
			return nil, err
		}
		written = ir.C
	default:
		return nil, fmt.Errorf("%w: op must be gemm, trsm, trmm or syrk", errBadRequest)
	}

	opts := make([]iatf.Option, 0, 5)
	opts = append(opts, iatf.WithPriority(priority))
	if s.cfg.Set != nil {
		opts = append(opts, iatf.WithEngineSet(s.cfg.Set))
	} else {
		opts = append(opts, iatf.WithEngine(s.cfg.Engine))
	}
	opts = append(opts, iatf.WithTrace(trace))
	if tenant != "" {
		opts = append(opts, iatf.WithTenant(tenant))
	}
	if rl != nil {
		opts = append(opts, iatf.WithSpanSink(func(sp *iatf.Span) {
			rl.span = *sp
			rl.haveSpan = true
		}))
	}
	s.admitted.Add(1)
	fut, err := iatf.Submit(ctx, ir, opts...)
	if err != nil {
		return nil, err
	}
	if err := fut.Wait(ctx); err != nil {
		return nil, err
	}

	out := written.Unpack().Data()
	res := make([]float64, len(out))
	for i, v := range out {
		res[i] = float64(v)
	}
	return res, nil
}

// parseTrans maps the wire spelling onto the BLAS mode ("" = "N").
func parseTrans(s string) (iatf.Trans, error) {
	switch s {
	case "", "N", "n":
		return iatf.NoTrans, nil
	case "T", "t":
		return iatf.Transpose, nil
	}
	return iatf.NoTrans, fmt.Errorf("%w: trans must be N or T, got %q", errBadRequest, s)
}

func parseSide(s string) (iatf.Side, error) {
	switch s {
	case "", "L", "l":
		return iatf.Left, nil
	case "R", "r":
		return iatf.Right, nil
	}
	return iatf.Left, fmt.Errorf("%w: side must be L or R, got %q", errBadRequest, s)
}

func parseUplo(s string) (iatf.Uplo, error) {
	switch s {
	case "", "L", "l":
		return iatf.Lower, nil
	case "U", "u":
		return iatf.Upper, nil
	}
	return iatf.Lower, fmt.Errorf("%w: uplo must be L or U, got %q", errBadRequest, s)
}

func parseDiag(s string) (iatf.Diag, error) {
	switch s {
	case "", "N", "n":
		return iatf.NonUnit, nil
	case "U", "u":
		return iatf.Unit, nil
	}
	return iatf.NonUnit, fmt.Errorf("%w: diag must be N or U, got %q", errBadRequest, s)
}

// packOperand converts one wire operand into the compact layout.
func packOperand[T float32 | float64](name string, o *WireOperand, count int) (*iatf.Compact[T], error) {
	if o == nil {
		return nil, fmt.Errorf("%w: operand %s missing", errBadRequest, name)
	}
	if o.Rows < 1 || o.Cols < 1 {
		return nil, fmt.Errorf("%w: operand %s: invalid dims %dx%d", errBadRequest, name, o.Rows, o.Cols)
	}
	want := count * o.Rows * o.Cols
	if len(o.Data) != want {
		return nil, fmt.Errorf("%w: operand %s: %d elements, want count*rows*cols = %d",
			errBadRequest, name, len(o.Data), want)
	}
	b := iatf.NewBatch[T](count, o.Rows, o.Cols)
	dst := b.Data()
	for i, v := range o.Data {
		dst[i] = T(v)
	}
	return iatf.Pack(b), nil
}
