// Package serve is the SLO-aware HTTP serving tier over the engine's
// async submission front-end — the network boundary of the ROADMAP's
// "millions of users" story. It keeps the tuned run-time stage behind a
// thin stdlib net/http surface (the IAAT-style install-time/run-time
// split: tuning happens below, admission decisions happen here) and
// drives those decisions from signals the engine already exports, the
// way tritonBLAS derives kernel selection analytically instead of by
// probing:
//
//   - POST /v1/do accepts one batched compact-BLAS request as JSON,
//     lowers it onto iatf.Submit (the coalescing, EDF-ordered queue) and
//     streams the written operand back. A context deadline comes from the
//     request body (deadline_ms) or the server default; a tenant header
//     maps to a priority class that breaks EDF ties.
//   - Admission control sheds load BEFORE enqueueing: the predicted queue
//     wait — the recent iatf_queue_wait_seconds p99 scaled by how full
//     the queue is relative to its depth high-water mark — is compared
//     against the request's deadline, and a request that would miss it
//     anyway is rejected with 429 and a Retry-After hint instead of
//     wasting a queue slot to time out inside the dispatcher.
//   - ErrQueueFull backpressure maps to the same 429 contract; a deadline
//     that expires during execution maps to 504.
//
// The admission signal is cached and refreshed at most once per
// Config.AdmitRefresh, so steady-state admission costs one atomic load
// plus a clock read, not a stats snapshot per request.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"iatf"
)

// Config configures a Server. Exactly one backend is used: Set when
// non-nil, else Engine, else the process-wide default engine.
type Config struct {
	Engine *iatf.Engine
	Set    *iatf.EngineSet

	// DefaultDeadline is applied to requests that carry no deadline_ms.
	// 0 means such requests run without a deadline (and are always
	// admitted — the predictor has nothing to compare against).
	DefaultDeadline time.Duration

	// Tenants maps the X-IATF-Tenant header to a priority class
	// (iatf.WithPriority). Unknown or absent tenants use the request
	// body's priority field (default class 0).
	Tenants map[string]int

	// AdmitRefresh bounds how often the admission signal is recomputed
	// from the backend's QueueStats (default 5ms).
	AdmitRefresh time.Duration

	// MaxBodyBytes bounds a request body (default 64 MiB).
	MaxBodyBytes int64
}

// Stats counts the server's request outcomes. Queue is the backend's
// aggregate submission-queue view at snapshot time.
type Stats struct {
	Admitted  uint64 `json:"admitted"`   // requests that passed admission and were submitted
	Done      uint64 `json:"done"`       // 200: completed within deadline
	Shed      uint64 `json:"shed"`       // 429: predicted wait exceeded the deadline
	QueueFull uint64 `json:"queue_full"` // 429: ErrQueueFull backpressure
	Expired   uint64 `json:"expired"`    // 504: deadline passed while queued or executing
	Errors    uint64 `json:"errors"`     // 400/405/500

	Queue iatf.QueueStats `json:"queue"`
}

// admitSignal is one cached admission prediction.
type admitSignal struct {
	at        time.Time
	predicted time.Duration
}

// Server is the serving tier: build one with New, mount Handler.
type Server struct {
	cfg Config

	admitted  atomic.Uint64
	done      atomic.Uint64
	shed      atomic.Uint64
	queueFull atomic.Uint64
	expired   atomic.Uint64
	errors    atomic.Uint64

	sig atomic.Pointer[admitSignal]
}

// New builds a Server over cfg's backend.
func New(cfg Config) *Server {
	if cfg.Set == nil && cfg.Engine == nil {
		cfg.Engine = iatf.DefaultEngine()
	}
	if cfg.AdmitRefresh <= 0 {
		cfg.AdmitRefresh = 5 * time.Millisecond
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	return &Server{cfg: cfg}
}

// queueStats returns the backend's submission-queue aggregate.
func (s *Server) queueStats() iatf.QueueStats {
	if s.cfg.Set != nil {
		return s.cfg.Set.QueueStats()
	}
	return s.cfg.Engine.QueueStats()
}

// Stats snapshots the server's outcome counters.
func (s *Server) Stats() Stats {
	return Stats{
		Admitted:  s.admitted.Load(),
		Done:      s.done.Load(),
		Shed:      s.shed.Load(),
		QueueFull: s.queueFull.Load(),
		Expired:   s.expired.Load(),
		Errors:    s.errors.Load(),
		Queue:     s.queueStats(),
	}
}

// PredictWait estimates the queue wait a request admitted now would see,
// refreshing the cached signal if it is older than Config.AdmitRefresh.
//
// The model uses exactly the two signals PR 5 exported: the queue-wait
// histogram bounds what recently queued requests actually waited (p99),
// and depth relative to the depth high-water mark says how close the
// queue is to the regime that produced that tail. An idle queue predicts
// the batch window (the floor any queued request pays); a queue at its
// historical peak predicts the full recent p99.
func (s *Server) PredictWait() time.Duration {
	if sig := s.sig.Load(); sig != nil && time.Since(sig.at) < s.cfg.AdmitRefresh {
		return sig.predicted
	}
	p := predictWait(s.queueStats())
	s.sig.Store(&admitSignal{at: time.Now(), predicted: p})
	return p
}

// predictWait is the pure admission model over one queue snapshot.
func predictWait(q iatf.QueueStats) time.Duration {
	if q.Depth == 0 {
		return q.Window
	}
	hw := q.DepthHighWater
	if hw < q.Depth {
		hw = q.Depth
	}
	pred := time.Duration(float64(q.Wait.P99) * float64(q.Depth) / float64(hw))
	// The wait distribution needs traffic before its tail means anything;
	// until then fall back to mean-wait-per-queued-request, then to the
	// window floor.
	if pred == 0 {
		pred = q.Wait.Mean() * time.Duration(q.Depth)
	}
	if pred < q.Window {
		pred = q.Window
	}
	return pred
}

// Handler returns the serving mux:
//
//	POST /v1/do   execute one batched request
//	GET  /healthz liveness
//	GET  /stats   Stats as JSON
//	GET  /metrics backend OpenMetrics scrape
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/do", s.handleDo)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Stats())
	})
	if s.cfg.Set != nil {
		mux.Handle("/metrics", s.cfg.Set.MetricsHandler())
	} else {
		mux.Handle("/metrics", s.cfg.Engine.MetricsHandler())
	}
	return mux
}

// WireOperand is one operand on the wire: Count (from the request)
// contiguous column-major rows×cols matrices, back to back in Data.
type WireOperand struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

// DoRequest is the /v1/do body. Mode strings follow BLAS spelling:
// trans "N"/"T", side "L"/"R", uplo "L"/"U", diag "N"/"U". DType is
// "f32" (default) or "f64"; f32 requests parse Data at float32
// precision. Which operands are read depends on Op exactly as in
// iatf.Request: gemm A,B,C — trsm/trmm A,B — syrk A,C.
type DoRequest struct {
	Op     string `json:"op"` // "gemm" | "trsm" | "trmm" | "syrk"
	DType  string `json:"dtype,omitempty"`
	TransA string `json:"trans_a,omitempty"`
	TransB string `json:"trans_b,omitempty"`
	Side   string `json:"side,omitempty"`
	Uplo   string `json:"uplo,omitempty"`
	Diag   string `json:"diag,omitempty"`

	Alpha float64 `json:"alpha"`
	Beta  float64 `json:"beta"`
	Count int     `json:"count"`

	A *WireOperand `json:"a,omitempty"`
	B *WireOperand `json:"b,omitempty"`
	C *WireOperand `json:"c,omitempty"`

	// DeadlineMs is the request's end-to-end SLO; 0 uses the server
	// default. Priority is the EDF tie-break class (overridden by a
	// mapped X-IATF-Tenant header).
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	Priority   int   `json:"priority,omitempty"`
}

// DoResponse carries the written operand (C for gemm/syrk, B for
// trsm/trmm) back as column-major data, plus the server-side latency.
type DoResponse struct {
	Result    []float64 `json:"result"`
	ElapsedUs int64     `json:"elapsed_us"`
}

// errorBody is the JSON error contract, shared by every non-200 outcome.
type errorBody struct {
	Error           string `json:"error"`
	PredictedWaitMs int64  `json:"predicted_wait_ms,omitempty"`
	RetryAfterMs    int64  `json:"retry_after_ms,omitempty"`
}

// writeError emits one JSON error response. For 429s, Retry-After (whole
// seconds, minimum 1 — the header's resolution) and the millisecond
// retry hint in the body both derive from the predicted wait.
func writeError(w http.ResponseWriter, status int, msg string, predicted time.Duration) {
	w.Header().Set("Content-Type", "application/json")
	body := errorBody{Error: msg}
	if status == http.StatusTooManyRequests {
		secs := int64((predicted + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		body.PredictedWaitMs = predicted.Milliseconds()
		body.RetryAfterMs = secs * 1000
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// priorityOf resolves the request's class: a mapped tenant header wins
// over the body field.
func (s *Server) priorityOf(r *http.Request, body *DoRequest) int {
	if t := r.Header.Get("X-IATF-Tenant"); t != "" {
		if p, ok := s.cfg.Tenants[t]; ok {
			return p
		}
	}
	return body.Priority
}

func (s *Server) handleDo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.errors.Add(1)
		writeError(w, http.StatusMethodNotAllowed, "POST only", 0)
		return
	}
	var req DoRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		s.errors.Add(1)
		writeError(w, http.StatusBadRequest, "decode: "+err.Error(), 0)
		return
	}

	deadline := time.Duration(req.DeadlineMs) * time.Millisecond
	if req.DeadlineMs <= 0 {
		deadline = s.cfg.DefaultDeadline
	}

	// Admission: shed a request whose predicted queue wait already
	// exceeds its deadline — it would only occupy a slot to die in.
	if deadline > 0 {
		if pred := s.PredictWait(); pred > deadline {
			s.shed.Add(1)
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("shed: predicted queue wait %v exceeds deadline %v", pred, deadline), pred)
			return
		}
	}

	ctx := r.Context()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}

	start := time.Now()
	var result []float64
	var err error
	switch req.DType {
	case "", "f32":
		result, err = run[float32](s, ctx, &req, s.priorityOf(r, &req))
	case "f64":
		result, err = run[float64](s, ctx, &req, s.priorityOf(r, &req))
	default:
		s.errors.Add(1)
		writeError(w, http.StatusBadRequest, "dtype must be f32 or f64", 0)
		return
	}

	if err == nil {
		s.done.Add(1)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(DoResponse{
			Result:    result,
			ElapsedUs: time.Since(start).Microseconds(),
		})
		return
	}
	status := classify(err)
	switch status {
	case http.StatusTooManyRequests:
		s.queueFull.Add(1)
		writeError(w, status, "queue full: "+err.Error(), s.PredictWait())
	case http.StatusGatewayTimeout:
		s.expired.Add(1)
		writeError(w, status, "deadline exceeded: "+err.Error(), 0)
	default:
		s.errors.Add(1)
		writeError(w, status, err.Error(), 0)
	}
}

// classify maps a submission/execution error onto the HTTP contract:
// backpressure → 429 (retryable), deadline/cancellation → 504, the
// engine's validation taxonomy and wire-level errBadRequest → 400,
// anything else → 500.
func classify(err error) int {
	switch {
	case errors.Is(err, iatf.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, iatf.ErrShape), errors.Is(err, iatf.ErrCount),
		errors.Is(err, iatf.ErrDType), errors.Is(err, iatf.ErrOperand),
		errors.Is(err, errBadRequest):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// errBadRequest marks wire-level validation failures (missing operand,
// short data) that never reach the engine's typed taxonomy.
var errBadRequest = errors.New("bad request")

// run lowers the wire request onto one iatf.Submit and waits it out.
// Methods cannot be generic, so the dtype split lives here.
func run[T float32 | float64](s *Server, ctx context.Context, req *DoRequest, priority int) ([]float64, error) {
	if req.Count < 1 {
		return nil, fmt.Errorf("%w: count must be >= 1", errBadRequest)
	}
	ir := iatf.Request[T]{Alpha: T(req.Alpha), Beta: T(req.Beta)}
	var err error
	if ir.TransA, err = parseTrans(req.TransA); err != nil {
		return nil, err
	}
	if ir.TransB, err = parseTrans(req.TransB); err != nil {
		return nil, err
	}
	if ir.Side, err = parseSide(req.Side); err != nil {
		return nil, err
	}
	if ir.Uplo, err = parseUplo(req.Uplo); err != nil {
		return nil, err
	}
	if ir.Diag, err = parseDiag(req.Diag); err != nil {
		return nil, err
	}

	var written *iatf.Compact[T]
	switch req.Op {
	case "gemm":
		ir.Op = iatf.OpGEMM
		if ir.A, err = packOperand[T]("a", req.A, req.Count); err != nil {
			return nil, err
		}
		if ir.B, err = packOperand[T]("b", req.B, req.Count); err != nil {
			return nil, err
		}
		if ir.C, err = packOperand[T]("c", req.C, req.Count); err != nil {
			return nil, err
		}
		written = ir.C
	case "trsm", "trmm":
		ir.Op = iatf.OpTRSM
		if req.Op == "trmm" {
			ir.Op = iatf.OpTRMM
		}
		if ir.A, err = packOperand[T]("a", req.A, req.Count); err != nil {
			return nil, err
		}
		if ir.B, err = packOperand[T]("b", req.B, req.Count); err != nil {
			return nil, err
		}
		written = ir.B
	case "syrk":
		ir.Op = iatf.OpSYRK
		if ir.A, err = packOperand[T]("a", req.A, req.Count); err != nil {
			return nil, err
		}
		if ir.C, err = packOperand[T]("c", req.C, req.Count); err != nil {
			return nil, err
		}
		written = ir.C
	default:
		return nil, fmt.Errorf("%w: op must be gemm, trsm, trmm or syrk", errBadRequest)
	}

	opts := [2]iatf.Option{iatf.WithPriority(priority)}
	if s.cfg.Set != nil {
		opts[1] = iatf.WithEngineSet(s.cfg.Set)
	} else {
		opts[1] = iatf.WithEngine(s.cfg.Engine)
	}
	s.admitted.Add(1)
	fut, err := iatf.Submit(ctx, ir, opts[:]...)
	if err != nil {
		return nil, err
	}
	if err := fut.Wait(ctx); err != nil {
		return nil, err
	}

	out := written.Unpack().Data()
	res := make([]float64, len(out))
	for i, v := range out {
		res[i] = float64(v)
	}
	return res, nil
}

// parseTrans maps the wire spelling onto the BLAS mode ("" = "N").
func parseTrans(s string) (iatf.Trans, error) {
	switch s {
	case "", "N", "n":
		return iatf.NoTrans, nil
	case "T", "t":
		return iatf.Transpose, nil
	}
	return iatf.NoTrans, fmt.Errorf("%w: trans must be N or T, got %q", errBadRequest, s)
}

func parseSide(s string) (iatf.Side, error) {
	switch s {
	case "", "L", "l":
		return iatf.Left, nil
	case "R", "r":
		return iatf.Right, nil
	}
	return iatf.Left, fmt.Errorf("%w: side must be L or R, got %q", errBadRequest, s)
}

func parseUplo(s string) (iatf.Uplo, error) {
	switch s {
	case "", "L", "l":
		return iatf.Lower, nil
	case "U", "u":
		return iatf.Upper, nil
	}
	return iatf.Lower, fmt.Errorf("%w: uplo must be L or U, got %q", errBadRequest, s)
}

func parseDiag(s string) (iatf.Diag, error) {
	switch s {
	case "", "N", "n":
		return iatf.NonUnit, nil
	case "U", "u":
		return iatf.Unit, nil
	}
	return iatf.NonUnit, fmt.Errorf("%w: diag must be N or U, got %q", errBadRequest, s)
}

// packOperand converts one wire operand into the compact layout.
func packOperand[T float32 | float64](name string, o *WireOperand, count int) (*iatf.Compact[T], error) {
	if o == nil {
		return nil, fmt.Errorf("%w: operand %s missing", errBadRequest, name)
	}
	if o.Rows < 1 || o.Cols < 1 {
		return nil, fmt.Errorf("%w: operand %s: invalid dims %dx%d", errBadRequest, name, o.Rows, o.Cols)
	}
	want := count * o.Rows * o.Cols
	if len(o.Data) != want {
		return nil, fmt.Errorf("%w: operand %s: %d elements, want count*rows*cols = %d",
			errBadRequest, name, len(o.Data), want)
	}
	b := iatf.NewBatch[T](count, o.Rows, o.Cols)
	dst := b.Data()
	for i, v := range o.Data {
		dst[i] = T(v)
	}
	return iatf.Pack(b), nil
}
