package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"iatf"
)

// newTestServer builds a Server over a private engine with EDF and a
// small batch window — the production-shaped configuration.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Engine == nil && cfg.Set == nil {
		cfg.Engine = iatf.NewEngine()
		cfg.Engine.SetBatchWindow(500 * time.Microsecond)
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends one DoRequest and decodes the raw response.
func post(t *testing.T, ts *httptest.Server, req DoRequest, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/do", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		hr.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// colMajor builds count n×n column-major matrices with f(m, i, j).
func colMajor(count, rows, cols int, f func(m, i, j int) float64) []float64 {
	out := make([]float64, count*rows*cols)
	for m := 0; m < count; m++ {
		for j := 0; j < cols; j++ {
			for i := 0; i < rows; i++ {
				out[m*rows*cols+j*rows+i] = f(m, i, j)
			}
		}
	}
	return out
}

// TestServeGEMMRoundTrip checks the full wire path against a local
// reference: the HTTP result must match iatf.Do on identical operands.
func TestServeGEMMRoundTrip(t *testing.T) {
	for _, dtype := range []string{"f32", "f64"} {
		t.Run(dtype, func(t *testing.T) {
			_, ts := newTestServer(t, Config{})
			const count, n = 3, 4
			a := colMajor(count, n, n, func(m, i, j int) float64 { return float64(m+1) * float64(i*n+j+1) / 7 })
			b := colMajor(count, n, n, func(m, i, j int) float64 { return float64(m-1) + float64(j-i)/3 })
			c := colMajor(count, n, n, func(m, i, j int) float64 { return float64(i + j) })

			resp, body := post(t, ts, DoRequest{
				Op: "gemm", DType: dtype, Alpha: 1.5, Beta: 0.5, Count: count,
				A:          &WireOperand{Rows: n, Cols: n, Data: a},
				B:          &WireOperand{Rows: n, Cols: n, Data: b},
				C:          &WireOperand{Rows: n, Cols: n, Data: c},
				DeadlineMs: 5000,
			}, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			var out DoResponse
			if err := json.Unmarshal(body, &out); err != nil {
				t.Fatal(err)
			}

			want := referenceGEMM(t, dtype, count, n, 1.5, 0.5, a, b, c)
			if len(out.Result) != len(want) {
				t.Fatalf("result length %d, want %d", len(out.Result), len(want))
			}
			for i := range want {
				if math.Abs(out.Result[i]-want[i]) > 1e-5 {
					t.Fatalf("result[%d] = %g, want %g", i, out.Result[i], want[i])
				}
			}
		})
	}
}

// referenceGEMM runs the same problem through the library's sync path at
// the same precision and returns the written C as float64.
func referenceGEMM(t *testing.T, dtype string, count, n int, alpha, beta float64, a, b, c []float64) []float64 {
	t.Helper()
	switch dtype {
	case "f32":
		return refGEMM[float32](t, count, n, alpha, beta, a, b, c)
	case "f64":
		return refGEMM[float64](t, count, n, alpha, beta, a, b, c)
	}
	t.Fatalf("dtype %q", dtype)
	return nil
}

func refGEMM[T float32 | float64](t *testing.T, count, n int, alpha, beta float64, a, b, c []float64) []float64 {
	t.Helper()
	mk := func(src []float64) *iatf.Compact[T] {
		batch := iatf.NewBatch[T](count, n, n)
		dst := batch.Data()
		for i, v := range src {
			dst[i] = T(v)
		}
		return iatf.Pack(batch)
	}
	ca, cb, cc := mk(a), mk(b), mk(c)
	err := iatf.Do(context.Background(), iatf.Request[T]{
		Op: iatf.OpGEMM, Alpha: T(alpha), Beta: T(beta), A: ca, B: cb, C: cc,
	}, iatf.WithEngine(iatf.NewEngine()))
	if err != nil {
		t.Fatal(err)
	}
	out := cc.Unpack().Data()
	res := make([]float64, len(out))
	for i, v := range out {
		res[i] = float64(v)
	}
	return res
}

// TestServeTRSMAndSYRK exercises the other op codecs end to end: the
// written operand (B for trsm, C for syrk) comes back finite and with
// the right extent, and trsm actually solves its system (A·X = α·B).
func TestServeTRSMAndSYRK(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const count, n = 2, 4

	// Well-conditioned lower-triangular A.
	a := colMajor(count, n, n, func(m, i, j int) float64 {
		switch {
		case i == j:
			return 2 + float64(m)
		case i > j:
			return 0.25
		}
		return 0
	})
	b := colMajor(count, n, n, func(m, i, j int) float64 { return float64(m*n*n + j*n + i + 1) })

	resp, body := post(t, ts, DoRequest{
		Op: "trsm", DType: "f64", Side: "L", Uplo: "L", TransA: "N", Diag: "N",
		Alpha: 1, Count: count,
		A:          &WireOperand{Rows: n, Cols: n, Data: a},
		B:          &WireOperand{Rows: n, Cols: n, Data: b},
		DeadlineMs: 5000,
	}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trsm status %d: %s", resp.StatusCode, body)
	}
	var out DoResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	// Verify A·X = B per matrix.
	for m := 0; m < count; m++ {
		am, xm, bm := a[m*n*n:], out.Result[m*n*n:], b[m*n*n:]
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				var sum float64
				for k := 0; k < n; k++ {
					sum += am[k*n+i] * xm[j*n+k]
				}
				if math.Abs(sum-bm[j*n+i]) > 1e-9 {
					t.Fatalf("matrix %d: (A·X)[%d,%d] = %g, want %g", m, i, j, sum, bm[j*n+i])
				}
			}
		}
	}

	resp, body = post(t, ts, DoRequest{
		Op: "syrk", DType: "f64", Uplo: "L", TransA: "N",
		Alpha: 1, Beta: 0, Count: count,
		A:          &WireOperand{Rows: n, Cols: n, Data: b},
		C:          &WireOperand{Rows: n, Cols: n, Data: make([]float64, count*n*n)},
		DeadlineMs: 5000,
	}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("syrk status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	// Spot-check one lower-triangle entry: C[1,0] of matrix 0 = row1·row0.
	var want float64
	for k := 0; k < n; k++ {
		want += b[k*n+1] * b[k*n+0]
	}
	if math.Abs(out.Result[1]-want) > 1e-9 {
		t.Fatalf("syrk C[1,0] = %g, want %g", out.Result[1], want)
	}
}

// TestServeValidation covers the 400 contract: each malformed body is
// rejected before (or at) the engine boundary with a JSON error.
func TestServeValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	n4 := &WireOperand{Rows: 4, Cols: 4, Data: make([]float64, 16)}
	cases := []struct {
		name string
		req  DoRequest
	}{
		{"unknown op", DoRequest{Op: "axpy", Count: 1, A: n4, B: n4, C: n4}},
		{"zero count", DoRequest{Op: "gemm", Count: 0, A: n4, B: n4, C: n4}},
		{"missing operand", DoRequest{Op: "gemm", Count: 1, A: n4, B: n4}},
		{"short data", DoRequest{Op: "gemm", Count: 2, A: n4, B: n4, C: n4}},
		{"bad trans", DoRequest{Op: "gemm", TransA: "Q", Count: 1, A: n4, B: n4, C: n4}},
		{"bad dims", DoRequest{Op: "gemm", Count: 1, A: &WireOperand{Rows: 0, Cols: 4}, B: n4, C: n4}},
		{"shape mismatch", DoRequest{Op: "gemm", Count: 1, A: n4,
			B: &WireOperand{Rows: 3, Cols: 3, Data: make([]float64, 9)}, C: n4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts, tc.req, nil)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
				t.Fatalf("error body %q (err %v)", body, err)
			}
		})
	}

	t.Run("bad dtype", func(t *testing.T) {
		resp, _ := post(t, ts, DoRequest{Op: "gemm", DType: "f16", Count: 1, A: n4, B: n4, C: n4}, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
	t.Run("method", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/do")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status %d, want 405", resp.StatusCode)
		}
	})
	t.Run("garbage body", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/do", "application/json", strings.NewReader("{nope"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
}

// TestServeShed forces the cached admission signal high and checks the
// 429 contract: Retry-After header (whole seconds, >= 1), the
// millisecond hints in the body, and the shed counter — all without the
// request ever touching the queue.
func TestServeShed(t *testing.T) {
	s, ts := newTestServer(t, Config{AdmitRefresh: time.Hour})
	s.sig.Store(&admitSignal{at: time.Now(), predicted: 3 * time.Second})

	n4 := &WireOperand{Rows: 4, Cols: 4, Data: make([]float64, 16)}
	resp, body := post(t, ts, DoRequest{
		Op: "gemm", Count: 1, A: n4, B: n4, C: n4, DeadlineMs: 10,
	}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 3 {
		t.Fatalf("Retry-After %q, want >= 3s", resp.Header.Get("Retry-After"))
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.PredictedWaitMs != 3000 {
		t.Fatalf("predicted_wait_ms = %d, want 3000", eb.PredictedWaitMs)
	}
	if eb.RetryAfterMs < 3000 {
		t.Fatalf("retry_after_ms = %d, want >= 3000", eb.RetryAfterMs)
	}
	if got := s.Stats(); got.Shed != 1 || got.Admitted != 0 {
		t.Fatalf("stats shed=%d admitted=%d, want 1/0", got.Shed, got.Admitted)
	}

	// Same load, no deadline: admission cannot shed what has no SLO.
	resp, body = post(t, ts, DoRequest{Op: "gemm", Count: 1, A: n4, B: n4, C: n4}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("no-deadline status %d, want 200: %s", resp.StatusCode, body)
	}
}

// TestServeTenantPriority checks the header→class mapping and its
// precedence over the body field.
func TestServeTenantPriority(t *testing.T) {
	s := New(Config{Engine: iatf.NewEngine(), Tenants: map[string]iatf.TenantObjective{
		"rt": {Class: 7}, "batch": {Class: -1},
	}})
	mk := func(tenant string, bodyPrio int) int {
		return s.priorityOf(tenant, &DoRequest{Priority: bodyPrio})
	}
	if got := mk("rt", 0); got != 7 {
		t.Fatalf("rt class = %d, want 7", got)
	}
	if got := mk("batch", 3); got != -1 {
		t.Fatalf("mapped tenant must win over body: got %d, want -1", got)
	}
	if got := mk("unknown", 3); got != 3 {
		t.Fatalf("unknown tenant falls back to body: got %d, want 3", got)
	}
	if got := mk("", 2); got != 2 {
		t.Fatalf("no header uses body: got %d, want 2", got)
	}
}

// TestPredictWaitModel pins the pure admission model to its contract.
func TestPredictWaitModel(t *testing.T) {
	window := 2 * time.Millisecond
	base := iatf.QueueStats{Window: window}

	q := base
	if got := predictWait(q); got != window {
		t.Fatalf("idle queue: %v, want window %v", got, window)
	}

	q = base
	q.Depth, q.DepthHighWater = 8, 8
	q.Wait.P99 = 40 * time.Millisecond
	if got := predictWait(q); got != 40*time.Millisecond {
		t.Fatalf("at high water: %v, want full p99", got)
	}

	q.Depth = 4
	if got := predictWait(q); got != 20*time.Millisecond {
		t.Fatalf("half full: %v, want p99/2", got)
	}

	// Depth above the recorded high water must not extrapolate past p99.
	q.Depth, q.DepthHighWater = 16, 8
	if got := predictWait(q); got != 40*time.Millisecond {
		t.Fatalf("above high water: %v, want clamped p99", got)
	}

	// No p99 yet: mean × depth, floored at the window.
	q = base
	q.Depth, q.DepthHighWater = 4, 8
	q.Wait.Count, q.Wait.SumNs = 2, uint64(10*time.Millisecond)/1*2
	if got := predictWait(q); got != 40*time.Millisecond {
		t.Fatalf("mean fallback: %v, want mean*depth = 40ms", got)
	}

	q.Wait = iatf.QueueStats{}.Wait
	q.Depth = 1
	if got := predictWait(q); got != window {
		t.Fatalf("floor: %v, want window %v", got, window)
	}
}

// TestClassify pins the error→status contract.
func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{iatf.ErrQueueFull, http.StatusTooManyRequests},
		{fmt.Errorf("wrap: %w", iatf.ErrQueueFull), http.StatusTooManyRequests},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{context.Canceled, http.StatusGatewayTimeout},
		{iatf.ErrShape, http.StatusBadRequest},
		{iatf.ErrCount, http.StatusBadRequest},
		{iatf.ErrDType, http.StatusBadRequest},
		{iatf.ErrOperand, http.StatusBadRequest},
		{errBadRequest, http.StatusBadRequest},
		{errors.New("boom"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := classify(tc.err); got != tc.want {
			t.Fatalf("classify(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

// TestServeEndpoints covers the sidecar endpoints: healthz, stats JSON
// (with the queue aggregate present), and an OpenMetrics scrape.
func TestServeEndpoints(t *testing.T) {
	set := iatf.NewEngineSet(2)
	s, ts := newTestServer(t, Config{Set: set})

	n4 := &WireOperand{Rows: 4, Cols: 4, Data: make([]float64, 16)}
	if resp, body := post(t, ts, DoRequest{Op: "gemm", Count: 1, A: n4, B: n4, C: n4}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("do: %d: %s", resp.StatusCode, body)
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", hr.StatusCode)
	}

	sr, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	err = json.NewDecoder(sr.Body).Decode(&st)
	sr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 || st.Admitted != 1 {
		t.Fatalf("stats done=%d admitted=%d, want 1/1", st.Done, st.Admitted)
	}
	if st.Queue.Submitted == 0 {
		t.Fatalf("stats queue aggregate missing: %+v", st.Queue)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mr.Body)
	mr.Body.Close()
	if !strings.Contains(buf.String(), "iatf_queue_depth") {
		t.Fatalf("metrics scrape missing queue families:\n%.400s", buf.String())
	}
	if !strings.Contains(buf.String(), "iatf_queue_edf") {
		t.Fatalf("metrics scrape missing iatf_queue_edf gauge")
	}
	_ = s
}

// TestServeTraceHeaderAllPaths: every response — 200, 405, 400, 429,
// 504 — carries X-IATF-Trace, a supplied well-formed traceparent is
// echoed verbatim, malformed ones are replaced with a fresh id, and
// every non-200 carries Retry-After.
func TestServeTraceHeaderAllPaths(t *testing.T) {
	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	tp := map[string]string{"traceparent": "00-" + traceID + "-00f067aa0ba902b7-01"}
	n4 := &WireOperand{Rows: 4, Cols: 4, Data: make([]float64, 16)}

	s, ts := newTestServer(t, Config{AdmitRefresh: time.Hour})

	// 200 with traceparent: exact echo.
	resp, body := post(t, ts, DoRequest{Op: "gemm", Count: 1, A: n4, B: n4, C: n4}, tp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("200 path: %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-IATF-Trace"); got != traceID {
		t.Fatalf("200 trace = %q, want %q", got, traceID)
	}

	// 200 without traceparent: a fresh 32-hex id.
	resp, _ = post(t, ts, DoRequest{Op: "gemm", Count: 1, A: n4, B: n4, C: n4}, nil)
	if got := resp.Header.Get("X-IATF-Trace"); len(got) != 32 {
		t.Fatalf("generated trace = %q, want 32 hex chars", got)
	}

	// Malformed traceparents are not echoed.
	for name, hdr := range map[string]string{
		"zero id":  "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"short id": "00-abc123-00f067aa0ba902b7-01",
		"non-hex":  "00-4bf92f3577b34da6a3ce929d0e0e473Z-00f067aa0ba902b7-01",
		"garbage":  "nope",
	} {
		resp, _ = post(t, ts, DoRequest{Op: "gemm", Count: 1, A: n4, B: n4, C: n4},
			map[string]string{"traceparent": hdr})
		got := resp.Header.Get("X-IATF-Trace")
		if len(got) != 32 || strings.Contains(hdr, got) {
			t.Fatalf("%s: trace = %q, want fresh 32-hex id", name, got)
		}
	}

	checkErr := func(name string, resp *http.Response, wantStatus int) {
		t.Helper()
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s: status %d, want %d", name, resp.StatusCode, wantStatus)
		}
		if got := resp.Header.Get("X-IATF-Trace"); got != traceID {
			t.Fatalf("%s: trace = %q, want %q", name, got, traceID)
		}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
			t.Fatalf("%s: Retry-After = %q, want >= 1", name, resp.Header.Get("Retry-After"))
		}
	}

	// 405: wrong method.
	hr, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/do", nil)
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("traceparent", tp["traceparent"])
	resp, err = http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	checkErr("405", resp, http.StatusMethodNotAllowed)

	// 400: malformed body.
	hr, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/do", strings.NewReader("{nope"))
	hr.Header.Set("traceparent", tp["traceparent"])
	resp, err = http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	checkErr("400", resp, http.StatusBadRequest)

	// 429: forced admission shed.
	s.sig.Store(&admitSignal{at: time.Now(), predicted: 3 * time.Second})
	resp, _ = post(t, ts, DoRequest{Op: "gemm", Count: 1, A: n4, B: n4, C: n4, DeadlineMs: 10}, tp)
	checkErr("429", resp, http.StatusTooManyRequests)
	s.sig.Store(&admitSignal{at: time.Now(), predicted: 0})

	// 504: a deadline far below the compute cost of a heavy batch.
	const count, n = 8192, 8
	heavy := make([]float64, count*n*n)
	resp, _ = post(t, ts, DoRequest{
		Op: "gemm", DType: "f64", Count: count,
		A:          &WireOperand{Rows: n, Cols: n, Data: heavy},
		B:          &WireOperand{Rows: n, Cols: n, Data: heavy},
		C:          &WireOperand{Rows: n, Cols: n, Data: heavy},
		DeadlineMs: 1,
	}, tp)
	checkErr("504", resp, http.StatusGatewayTimeout)
}

// TestServeTraceparentSpanPropagation: the wire trace id and tenant land
// on the engine span of the dispatched request — the join point between
// the HTTP access log and engine-level tracing.
func TestServeTraceparentSpanPropagation(t *testing.T) {
	eng := iatf.NewEngine()
	ring := iatf.NewSpanRing(32)
	eng.SetSpanSink(ring.Add)
	_, ts := newTestServer(t, Config{
		Engine:  eng,
		Tenants: map[string]iatf.TenantObjective{"rt": {Class: 5, Objective: time.Second, Target: 0.99}},
	})

	const traceID = "0af7651916cd43dd8448eb211c80319c"
	n4 := &WireOperand{Rows: 4, Cols: 4, Data: make([]float64, 16)}
	resp, body := post(t, ts, DoRequest{Op: "gemm", Count: 1, A: n4, B: n4, C: n4}, map[string]string{
		"traceparent":   "00-" + traceID + "-b7ad6b7169203331-01",
		"X-IATF-Tenant": "rt",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}

	spans := ring.Trace(traceID)
	if len(spans) != 1 {
		t.Fatalf("ring.Trace(%q) = %d spans, want 1", traceID, len(spans))
	}
	sp := spans[0]
	if sp.TraceID != traceID || sp.Origin != "rt" {
		t.Fatalf("span trace/origin = %q/%q", sp.TraceID, sp.Origin)
	}
	if sp.Op != "GEMM" || sp.Error != "" {
		t.Fatalf("span = %+v", sp)
	}
}

// TestServeTenantAccounting: the /tenants endpoint reflects a
// deterministic workload — completed requests count as deadline hits
// against the tenant objective, admission sheds burn the window, and
// unknown tenants are auto-tracked.
func TestServeTenantAccounting(t *testing.T) {
	s, ts := newTestServer(t, Config{
		AdmitRefresh: time.Hour,
		Tenants: map[string]iatf.TenantObjective{
			"rt": {Class: 5, Objective: 10 * time.Second, Target: 0.99},
		},
	})
	n4 := &WireOperand{Rows: 4, Cols: 4, Data: make([]float64, 16)}
	req := DoRequest{Op: "gemm", Count: 1, A: n4, B: n4, C: n4}

	for i := 0; i < 3; i++ {
		if resp, body := post(t, ts, req, map[string]string{"X-IATF-Tenant": "rt"}); resp.StatusCode != http.StatusOK {
			t.Fatalf("rt post %d: %d: %s", i, resp.StatusCode, body)
		}
	}
	if resp, _ := post(t, ts, req, map[string]string{"X-IATF-Tenant": "guest"}); resp.StatusCode != http.StatusOK {
		t.Fatal("guest post failed")
	}
	// Force one admission shed for rt.
	s.sig.Store(&admitSignal{at: time.Now(), predicted: 3 * time.Second})
	shedReq := req
	shedReq.DeadlineMs = 10
	if resp, _ := post(t, ts, shedReq, map[string]string{"X-IATF-Tenant": "rt"}); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatal("forced shed did not 429")
	}

	hr, err := http.Get(ts.URL + "/tenants")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if ct := hr.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("/tenants content type %q", ct)
	}
	var stats []iatf.TenantStats
	if err := json.NewDecoder(hr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	byName := map[string]iatf.TenantStats{}
	for _, st := range stats {
		byName[st.Name] = st
	}
	rt := byName["rt"]
	if rt.Requests != 4 || rt.DeadlineHits != 3 || rt.Sheds != 1 {
		t.Fatalf("rt = %+v, want 4 requests / 3 hits / 1 shed", rt)
	}
	if rt.Class != 5 || rt.Objective != 10*time.Second {
		t.Fatalf("rt objective lost: %+v", rt)
	}
	if rt.WindowBad != 1 || rt.BurnRate <= 0 {
		t.Fatalf("rt window/burn = %d/%g, want 1 bad and positive burn", rt.WindowBad, rt.BurnRate)
	}
	if g := byName["guest"]; g.Requests != 1 || g.Objective != 0 {
		t.Fatalf("guest = %+v, want 1 request, zero objective", g)
	}
	if ss := s.TenantStats(); len(ss) != len(stats) {
		t.Fatalf("TenantStats() = %d rows, endpoint %d", len(ss), len(stats))
	}
}

// TestServeAccessLogTrace: the structured access log emits one JSON
// line per request, joined with the engine span (span id, shape, phase
// durations) and carrying the wire trace id and tenant.
func TestServeAccessLogTrace(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	logW := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	_, ts := newTestServer(t, Config{
		AccessLog: logW,
		Tenants:   map[string]iatf.TenantObjective{"rt": {Class: 5}},
	})

	const traceID = "00f067aa0ba902b700f067aa0ba902b7"
	n4 := &WireOperand{Rows: 4, Cols: 4, Data: make([]float64, 16)}
	resp, body := post(t, ts, DoRequest{
		Op: "gemm", DType: "f64", Count: 1, A: n4, B: n4, C: n4, DeadlineMs: 5000,
	}, map[string]string{
		"traceparent":   "00-" + traceID + "-00f067aa0ba902b7-01",
		"X-IATF-Tenant": "rt",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}

	// The handler logs in a defer that can run after the response reaches
	// the client; wait for the line to land.
	var entry map[string]any
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		mu.Unlock()
		if len(lines) > 0 && lines[0] != "" {
			if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
				t.Fatalf("access log line not JSON: %v: %q", err, lines[0])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no access log line emitted")
		}
		time.Sleep(time.Millisecond)
	}

	for field, want := range map[string]any{
		"trace":       traceID,
		"tenant":      "rt",
		"op":          "gemm",
		"dtype":       "f64",
		"shape":       "4x4x4",
		"status":      float64(http.StatusOK),
		"deadline_ms": float64(5000),
	} {
		if got := entry[field]; got != want {
			t.Fatalf("access log %s = %v, want %v", field, got, want)
		}
	}
	if id, ok := entry["span_id"].(float64); !ok || id <= 0 {
		t.Fatalf("access log span_id = %v, want > 0 (span join missing)", entry["span_id"])
	}
	phases, ok := entry["phases_us"].(map[string]any)
	if !ok || len(phases) == 0 {
		t.Fatalf("access log phases_us = %v, want per-phase durations", entry["phases_us"])
	}
	if _, ok := phases["compute"]; !ok {
		t.Fatalf("access log phases %v missing compute", phases)
	}
	if _, ok := entry["error"]; ok {
		t.Fatalf("success line carries error: %v", entry["error"])
	}
}

// writerFunc adapts a function to io.Writer for test log capture.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestServeConcurrentLoad pushes parallel mixed-priority traffic through
// one server and requires every admitted request to complete correctly —
// the serving tier's race check (run under -race in make servestress).
func TestServeConcurrentLoad(t *testing.T) {
	eng := iatf.NewEngine()
	eng.SetBatchWindow(200 * time.Microsecond)
	_, ts := newTestServer(t, Config{Engine: eng, Tenants: map[string]iatf.TenantObjective{"rt": {Class: 5}}})

	const goroutines, per = 8, 12
	const count, n = 2, 4
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			var err error
			defer func() { errs <- err }()
			for i := 0; i < per; i++ {
				scale := float64(g*per+i) + 1
				a := colMajor(count, n, n, func(m, i, j int) float64 {
					if i == j {
						return scale
					}
					return 0
				})
				b := colMajor(count, n, n, func(m, i, j int) float64 { return float64(m*n*n + j*n + i) })
				hdr := map[string]string{}
				if g%2 == 0 {
					hdr["X-IATF-Tenant"] = "rt"
				}
				resp, body := post(t, ts, DoRequest{
					Op: "gemm", DType: "f64", Alpha: 1, Beta: 0, Count: count,
					A:          &WireOperand{Rows: n, Cols: n, Data: a},
					B:          &WireOperand{Rows: n, Cols: n, Data: b},
					C:          &WireOperand{Rows: n, Cols: n, Data: make([]float64, count*n*n)},
					DeadlineMs: 10000,
				}, hdr)
				if resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("g%d req%d: status %d: %s", g, i, resp.StatusCode, body)
					return
				}
				var out DoResponse
				if e := json.Unmarshal(body, &out); e != nil {
					err = e
					return
				}
				for k := range b {
					if math.Abs(out.Result[k]-scale*b[k]) > 1e-9 {
						err = fmt.Errorf("g%d req%d: result[%d] = %g, want %g",
							g, i, k, out.Result[k], scale*b[k])
						return
					}
				}
			}
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
