package core

import (
	"math/rand"
	"testing"

	"iatf/internal/machine"
	"iatf/internal/matrix"
	"iatf/internal/vec"
)

func checkTRMM[T matrix.Scalar, E vec.Float](t *testing.T, dt vec.DType, p TRMMProblem, tun Tuning, workers int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(p.M*1000+p.N*100) + int64(p.Side)*3 + int64(p.Uplo)*5 + int64(p.TransA)*7 + int64(p.Diag)*11))
	adim := p.M
	if p.Side == matrix.Right {
		adim = p.N
	}
	a := matrix.RandTriangularBatch[T](rng, p.Count, adim)
	b := matrix.RandBatch[T](rng, p.Count, p.M, p.N)

	want := b.Clone()
	matrix.RefTRMMBatch(p.Side, p.Uplo, p.TransA, p.Diag, scalarOf[T](p.Alpha), a, want)

	ca := toCompact[T, E](dt, a)
	cb := toCompact[T, E](dt, b)
	pl, err := NewTRMMPlan(p, tun)
	if err != nil {
		t.Fatalf("%v %s M=%d N=%d: %v", dt, p.Mode(), p.M, p.N, err)
	}
	if err := ExecTRMMNativeParallel(pl, ca, cb, workers); err != nil {
		t.Fatalf("%v %s M=%d N=%d: %v", dt, p.Mode(), p.M, p.N, err)
	}
	got := fromCompact[T, E](cb)
	dim := adim
	if !matrix.WithinTol(got.Data, want.Data, matrix.Tol[T](2*dim+4)) {
		t.Errorf("%v %s M=%d N=%d count=%d: max diff %g",
			dt, p.Mode(), p.M, p.N, p.Count, matrix.MaxAbsDiff(got.Data, want.Data))
	}
}

func TestTRMMAllModes(t *testing.T) {
	tun := DefaultTuning()
	for _, side := range []matrix.Side{matrix.Left, matrix.Right} {
		for _, uplo := range []matrix.Uplo{matrix.Lower, matrix.Upper} {
			for _, ta := range []matrix.Trans{matrix.NoTrans, matrix.Transpose} {
				for _, diag := range []matrix.Diag{matrix.NonUnit, matrix.Unit} {
					for _, mn := range [][2]int{{1, 1}, {3, 2}, {5, 4}, {9, 6}, {12, 12}} {
						p := TRMMProblem{M: mn[0], N: mn[1], Side: side, Uplo: uplo,
							TransA: ta, Diag: diag, Alpha: 1, Count: 5}
						p.DT = vec.S
						checkTRMM[float32, float32](t, vec.S, p, tun, 1)
						p.DT = vec.D
						checkTRMM[float64, float64](t, vec.D, p, tun, 1)
						p.DT = vec.C
						checkTRMM[complex64, float32](t, vec.C, p, tun, 1)
						p.DT = vec.Z
						checkTRMM[complex128, float64](t, vec.Z, p, tun, 1)
					}
				}
			}
		}
	}
}

func TestTRMMAlphaAndParallel(t *testing.T) {
	tun := DefaultTuning()
	p := TRMMProblem{DT: vec.D, M: 7, N: 5, Side: matrix.Left, Uplo: matrix.Lower,
		TransA: matrix.NoTrans, Diag: matrix.NonUnit, Alpha: 2.5, Count: 33}
	checkTRMM[float64, float64](t, vec.D, p, tun, 1)
	checkTRMM[float64, float64](t, vec.D, p, tun, 4)
	p.DT = vec.Z
	p.Alpha = 1 + 1i
	checkTRMM[complex128, float64](t, vec.Z, p, tun, 3)
}

func TestTRMMInvalid(t *testing.T) {
	tun := DefaultTuning()
	if _, err := NewTRMMPlan(TRMMProblem{DT: vec.S, M: 0, N: 1, Count: 1}, tun); err == nil {
		t.Error("M=0 accepted")
	}
	if _, err := NewTRMMPlan(TRMMProblem{DT: vec.S, M: 1, N: 1, Count: 0}, tun); err == nil {
		t.Error("count=0 accepted")
	}
}

func TestTRMMProblemDerived(t *testing.T) {
	p := TRMMProblem{DT: vec.S, M: 4, N: 8, Side: matrix.Left, Uplo: matrix.Upper,
		TransA: matrix.Transpose, Diag: matrix.Unit, Count: 10}
	if p.Mode() != "LTUU" {
		t.Errorf("Mode = %s", p.Mode())
	}
	if p.FLOPs() != 1*4*4*8*10 {
		t.Errorf("FLOPs = %v", p.FLOPs())
	}
}

// The TRMM VM backend (generated IR kernels) must agree bit for bit with
// the native kernels.
func TestTRMMBackendsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	tun := DefaultTuning()
	for _, dt := range vec.DTypes {
		for _, mode := range []struct {
			side matrix.Side
			uplo matrix.Uplo
			ta   matrix.Trans
			diag matrix.Diag
		}{
			{matrix.Left, matrix.Lower, matrix.NoTrans, matrix.NonUnit},
			{matrix.Left, matrix.Upper, matrix.NoTrans, matrix.Unit},
			{matrix.Right, matrix.Lower, matrix.Transpose, matrix.NonUnit},
		} {
			for _, mn := range [][2]int{{4, 3}, {9, 6}} {
				p := TRMMProblem{DT: dt, M: mn[0], N: mn[1], Side: mode.side,
					Uplo: mode.uplo, TransA: mode.ta, Diag: mode.diag, Alpha: 1.5, Count: 5}
				pl, err := NewTRMMPlan(p, tun)
				if err != nil {
					t.Fatal(err)
				}
				if dt.Real() == vec.S {
					compareTRMMBackends[float32](t, rng, pl)
				} else {
					compareTRMMBackends[float64](t, rng, pl)
				}
			}
		}
	}
}

func compareTRMMBackends[E vec.Float](t *testing.T, rng *rand.Rand, pl *TRMMPlan) {
	t.Helper()
	p := pl.P
	a := randCompact[E](rng, p.DT, p.Count, pl.MEff, pl.MEff)
	b := randCompact[E](rng, p.DT, p.Count, p.M, p.N)
	bVM := b.Clone()
	if err := ExecTRMM(pl, a, bVM, nil); err != nil {
		t.Fatalf("%v %s: %v", p.DT, p.Mode(), err)
	}
	bNat := b.Clone()
	if err := ExecTRMMNative(pl, a, bNat); err != nil {
		t.Fatalf("%v %s: %v", p.DT, p.Mode(), err)
	}
	for i := range bVM.Data {
		if bVM.Data[i] != bNat.Data[i] {
			t.Fatalf("%v %s: backends diverge at %d: %v vs %v",
				p.DT, p.Mode(), i, bVM.Data[i], bNat.Data[i])
		}
	}
}

// The TRMM cycle model must run and stay below machine peak.
func TestSimTRMMRuns(t *testing.T) {
	tun := DefaultTuning()
	for _, dt := range vec.DTypes {
		p := TRMMProblem{DT: dt, M: 8, N: 8, Side: matrix.Left, Uplo: matrix.Lower,
			TransA: matrix.NoTrans, Diag: matrix.NonUnit, Alpha: 1, Count: 64}
		pl, err := NewTRMMPlan(p, tun)
		if err != nil {
			t.Fatal(err)
		}
		sim := machine.NewSim(tun.Prof, dt.ElemBytes())
		cycles, err := SimTRMM(pl, 4, sim)
		if err != nil {
			t.Fatal(err)
		}
		if cycles <= 0 {
			t.Fatalf("%v: cycles = %d", dt, cycles)
		}
		flops := p.FLOPs() / float64(p.Count) * float64(4*dt.Pack())
		g := flops / (float64(cycles) / (tun.Prof.FreqGHz * 1e9)) / 1e9
		if g > tun.Prof.PeakGFLOPS(dt) {
			t.Errorf("%v TRMM model %.2f GFLOPS exceeds peak", dt, g)
		}
	}
}

// SYRK plan decisions and core-level correctness (the public API tests
// cover breadth; this pins the plan geometry).
func TestSYRKPlanAndExec(t *testing.T) {
	tun := DefaultTuning()
	pl, err := NewSYRKPlan(SYRKProblem{DT: vec.S, N: 15, K: 7, Uplo: matrix.Lower,
		Alpha: 1, Beta: 1, Count: 32}, tun)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, q := range pl.Tiles {
		sum += q
		if q > 4 {
			t.Errorf("real SYRK tile %d exceeds 4", q)
		}
	}
	if sum != 15 {
		t.Errorf("tiles %v cover %d", pl.Tiles, sum)
	}
	// Complex grid is bounded by nc ≤ 2.
	plc, err := NewSYRKPlan(SYRKProblem{DT: vec.Z, N: 7, K: 3, Uplo: matrix.Upper,
		Alpha: 1, Beta: 1, Count: 8}, tun)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range plc.Tiles {
		if q > 2 {
			t.Errorf("complex SYRK tile %d exceeds 2", q)
		}
	}
	if pl.P.FLOPs() <= 0 {
		t.Error("FLOPs must be positive")
	}
	// Invalid problems.
	if _, err := NewSYRKPlan(SYRKProblem{DT: vec.S, N: 0, K: 1, Count: 1}, tun); err == nil {
		t.Error("N=0 accepted")
	}
	// Exec-level correctness against a scalar oracle for one case.
	rng := rand.New(rand.NewSource(113))
	p := SYRKProblem{DT: vec.D, N: 6, K: 9, Uplo: matrix.Lower, Trans: matrix.NoTrans,
		Alpha: 1.5, Beta: 0.5, Count: 5}
	plan, err := NewSYRKPlan(p, tun)
	if err != nil {
		t.Fatal(err)
	}
	a := randCompact[float64](rng, vec.D, p.Count, 6, 9)
	c := randCompact[float64](rng, vec.D, p.Count, 6, 6)
	got := c.Clone()
	if err := ExecSYRKNative(plan, a, got); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < p.Count; v++ {
		for i := 0; i < 6; i++ {
			for j := 0; j <= i; j++ {
				sum := 0.0
				for k := 0; k < 9; k++ {
					ar, _ := a.At(v, i, k)
					br, _ := a.At(v, j, k)
					sum += float64(ar) * float64(br)
				}
				c0, _ := c.At(v, i, j)
				want := 1.5*sum + 0.5*float64(c0)
				gr, _ := got.At(v, i, j)
				if d := float64(gr) - want; d > 1e-10 || d < -1e-10 {
					t.Fatalf("v=%d (%d,%d): %v want %v", v, i, j, gr, want)
				}
			}
		}
	}
}
