package core

import (
	"fmt"

	"iatf/internal/bufpool"
	"iatf/internal/kernels"
	"iatf/internal/layout"
	"iatf/internal/matrix"
	"iatf/internal/pack"
	"iatf/internal/vec"
)

// The native backend executes plans with the pure-Go kernels directly on
// the compact storage — no simulation arena, no copies. Packing is done
// with the same panel orders as the pack package (the VM/native
// backend-equivalence tests pin them to each other bit for bit), but
// reads and writes separate slices so operands stay in place.
//
// Group-level parallelism implements the paper's stated future work
// (multi-core): interleave groups are fully independent, so the sched
// worker pool pulls super-batch-sized chunks of the group range, each
// chunk packing into pooled buffers. workers <= 0 means auto
// (GOMAXPROCS); see sched.Resolve.

// npackA packs the A row panels of one group (N-shape).
func npackA[E vec.Float](src []E, rows int, trans bool, mtiles []int, k, bl int, dst []E) {
	cur := 0
	i0 := 0
	for _, mc := range mtiles {
		if !trans {
			run := mc * bl
			s := i0 * bl
			for l := 0; l < k; l++ {
				copy(dst[cur:cur+run], src[s:s+run])
				s += rows * bl
				cur += run
			}
		} else {
			colStride := rows * bl
			base := i0 * colStride
			for l := 0; l < k; l++ {
				s := base + l*bl
				for r := 0; r < mc; r++ {
					copy(dst[cur:cur+bl], src[s:s+bl])
					s += colStride
					cur += bl
				}
			}
		}
		i0 += mc
	}
}

// npackB packs the B column panels of one group (Z-shape).
func npackB[E vec.Float](src []E, rows int, trans bool, ntiles []int, k, bl int, dst []E) {
	cur := 0
	j0 := 0
	for _, nc := range ntiles {
		if !trans {
			colStride := rows * bl
			base := j0 * colStride
			for l := 0; l < k; l++ {
				s := base + l*bl
				for cc := 0; cc < nc; cc++ {
					copy(dst[cur:cur+bl], src[s:s+bl])
					s += colStride
					cur += bl
				}
			}
		} else {
			run := nc * bl
			s := j0 * bl
			for l := 0; l < k; l++ {
				copy(dst[cur:cur+run], src[s:s+run])
				s += rows * bl
				cur += run
			}
		}
		j0 += nc
	}
}

// nscale scales a dense group region by a (possibly complex) scalar.
func nscale[E vec.Float](data []E, n int, cplx bool, vl int, re, im float64) {
	if !cplx {
		r := E(re)
		for i := 0; i < n*vl; i++ {
			data[i] *= r
		}
		return
	}
	for b := 0; b < n; b++ {
		off := b * 2 * vl
		for lane := 0; lane < vl; lane++ {
			x := float64(data[off+lane])
			y := float64(data[off+vl+lane])
			data[off+lane] = E(x*re - y*im)
			data[off+vl+lane] = E(x*im + y*re)
		}
	}
}

// ExecGEMMNative runs the plan with the native Go kernels, optionally
// with worker-parallel groups. C is updated in place.
func ExecGEMMNative[E vec.Float](pl *GEMMPlan, a, b, c *layout.Compact[E]) error {
	return ExecGEMMNativeParallel(pl, a, b, c, 1)
}

// ExecGEMMNativeParallel is ExecGEMMNative with `workers` participants
// from the persistent worker pool splitting the interleave groups into
// super-batch chunks. workers <= 0 means auto (GOMAXPROCS).
func ExecGEMMNativeParallel[E vec.Float](pl *GEMMPlan, a, b, c *layout.Compact[E], workers int) error {
	return ExecGEMMNativePrepacked(pl, a, b, c, nil, nil, workers)
}

// ExecGEMMNativePrepacked is ExecGEMMNativeParallel consuming prepacked
// operand images: preA/preB, when non-nil, must hold the output of
// PrepackGEMMA/PrepackGEMMB for this plan (group-indexed, per
// PrepackALen/PrepackBLen), and the corresponding pack pass is skipped.
// A nil pre-buffer falls back to packing that operand per call.
func ExecGEMMNativePrepacked[E vec.Float](pl *GEMMPlan, a, b, c *layout.Compact[E], preA, preB []E, workers int) error {
	p := pl.P
	if pl.Tun.VL != 0 && pl.Tun.VL != p.DT.Pack() {
		return fmt.Errorf("core: native execution requires the native lane count")
	}
	if a.Type != p.DT || b.Type != p.DT || c.Type != p.DT {
		return fmt.Errorf("core: dtype mismatch")
	}
	if a.Count != p.Count || b.Count != p.Count || c.Count != p.Count {
		return fmt.Errorf("core: batch count mismatch")
	}
	wantAR := p.M
	if p.TransA == matrix.Transpose {
		wantAR = p.K
	}
	wantBR := p.K
	if p.TransB == matrix.Transpose {
		wantBR = p.N
	}
	if a.Rows != wantAR || b.Rows != wantBR || c.Rows != p.M || c.Cols != p.N {
		return fmt.Errorf("core: shape mismatch A=%dx%d B=%dx%d C=%dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols)
	}
	if preA != nil && len(preA) < pl.PrepackALen(a.Groups()) {
		return fmt.Errorf("core: prepacked A has %d elements, need %d", len(preA), pl.PrepackALen(a.Groups()))
	}
	if preB != nil && len(preB) < pl.PrepackBLen(b.Groups()) {
		return fmt.Errorf("core: prepacked B has %d elements, need %d", len(preB), pl.PrepackBLen(b.Groups()))
	}
	pl.RT.or().Sched.RunLabeled(pl.Labels, a.Groups(), workers, pl.GroupsPerBatch, func(lo, hi int) {
		gemmWorker(pl, a, b, c, preA, preB, lo, hi)
	})
	return nil
}

// gemmPackChunk packs groups [sb, end) of A/B into slots starting at
// slotBase; a nil slot array means that operand needs no packing (fast
// path or prepacked image). Shared by the synchronous pack pass and the
// pipeline packers.
func gemmPackChunk[E vec.Float](pl *GEMMPlan, a, b *layout.Compact[E], packA, packB []E, sb, end, slotBase int) {
	p := pl.P
	bl := blockLen(p.DT, p.DT.Pack())
	lenA := p.M * p.K * bl
	lenB := p.K * p.N * bl
	transA := p.TransA == matrix.Transpose
	transB := p.TransB == matrix.Transpose
	for g := sb; g < end; g++ {
		slot := slotBase + (g - sb)
		if packA != nil {
			npackA(a.Data[g*lenA:(g+1)*lenA], a.Rows, transA, pl.MTiles, p.K, bl, packA[slot*lenA:])
		}
		if packB != nil {
			npackB(b.Data[g*lenB:(g+1)*lenB], b.Rows, transB, pl.NTiles, p.K, bl, packB[slot*lenB:])
		}
	}
}

func gemmWorker[E vec.Float](pl *GEMMPlan, a, b, c *layout.Compact[E], preA, preB []E, gLo, gHi int) {
	p := pl.P
	vl := p.DT.Pack()
	bl := blockLen(p.DT, vl)
	cplx := p.DT.IsComplex()
	lenA := p.M * p.K * bl
	lenB := p.K * p.N * bl
	lenC := p.M * p.N * bl

	gb := pl.GroupsPerBatch
	needPackA := pl.PackA && preA == nil
	needPackB := pl.PackB && preB == nil

	// The pipeline engages when there is a pack pass to hide and at
	// least two super-batches to overlap; the slot arrays then double in
	// width and a packer goroutine fills the half the compute pass is
	// not reading (see pipeline.go for the parity protocol).
	pipelined := (needPackA || needPackB) && gHi-gLo > gb
	nBuf := 1
	if pipelined {
		nBuf = 2
	}
	rt := pl.RT.or()
	var packA, packB []E
	if needPackA {
		bufA := bufpool.Get[E](rt.Bufs, nBuf*gb*lenA)
		defer bufpool.Put(rt.Bufs, bufA)
		packA = bufA.Slice()
	}
	if needPackB {
		bufB := bufpool.Get[E](rt.Bufs, nBuf*gb*lenB)
		defer bufpool.Put(rt.Bufs, bufB)
		packB = bufB.Slice()
	}

	var pipe *gemmPipe[E]
	if pipelined {
		pipe = getGEMMPipe[E]()
		pipe.pl, pipe.a, pipe.b = pl, a, b
		pipe.packA, pipe.packB = packA, packB
		pipe.gLo, pipe.gHi = gLo, gHi
		pipe.free <- 0
		pipe.free <- 1
		if !submitPipe(pipe) {
			<-pipe.free
			<-pipe.free
			putGEMMPipe(pipe)
			pipe, pipelined = nil, false
			pipeFallbacks.Add(1)
		}
	}

	alphaRe, alphaIm := E(real(p.Alpha)), E(imag(p.Alpha))
	nChunks := (gHi - gLo + gb - 1) / gb
	ci := 0
	for sb := gLo; sb < gHi; sb += gb {
		end := sb + gb
		if end > gHi {
			end = gHi
		}
		slotBase := 0
		if pipelined {
			var par int
			select {
			case par = <-pipe.ready:
			default:
				pipeStalls.Add(1)
				par = <-pipe.ready
			}
			slotBase = par * gb
		} else if needPackA || needPackB {
			gemmPackChunk(pl, a, b, packA, packB, sb, end, 0)
		}
		for g := sb; g < end; g++ {
			slot := slotBase + (g - sb)
			cg := c.Data[g*lenC : (g+1)*lenC]
			ovw := p.Beta == 0
			if p.Beta != 1 && !ovw {
				nscale(cg, p.M*p.N, cplx, vl, real(p.Beta), imag(p.Beta))
			}
			for _, t := range pl.tiles {
				kOff := 0
				for _, kc := range pl.KChunks {
					var pa, pb []E
					switch {
					case !pl.PackA:
						pa = a.Data[g*lenA+kOff*p.M*bl:]
					case preA != nil:
						pa = preA[g*lenA+(t.i0*p.K+kOff*t.mc)*bl:]
					default:
						pa = packA[slot*lenA+(t.i0*p.K+kOff*t.mc)*bl:]
					}
					switch {
					case !pl.PackB:
						// No-packing fast path: B is stored N×K and the
						// plan has a single N tile, so the trans pack
						// order coincides with storage order.
						pb = b.Data[g*lenB+kOff*p.N*bl:]
					case preB != nil:
						pb = preB[g*lenB+(t.j0*p.K+kOff*t.nc)*bl:]
					default:
						pb = packB[slot*lenB+(t.j0*p.K+kOff*t.nc)*bl:]
					}
					cb := cg[(t.j0*p.M+t.i0)*bl:]
					// Only the first chunk may overwrite (beta = 0);
					// later chunks always accumulate.
					chunkOvw := ovw && kOff == 0
					if cplx {
						kernels.GEMMCplx(pa, pb, cb, t.mc, t.nc, kc, p.M, vl, alphaRe, alphaIm, chunkOvw)
					} else {
						kernels.GEMM(pa, pb, cb, t.mc, t.nc, kc, p.M, vl, alphaRe, chunkOvw)
					}
					kOff += kc
				}
			}
		}
		if pipelined && ci+2 < nChunks {
			pipe.free <- slotBase / gb
		}
		ci++
	}
	if pipelined {
		putGEMMPipe(pipe)
	}
}

// npackTri packs the triangle of one group — the native twin of
// pack.Tri. recip stores the diagonal as reciprocals (TRSM); TRMM packs
// the true diagonal.
func npackTri[E vec.Float](src []E, m int, reverse, swap, unit, recip bool, panels []int, cplx bool, vl, bl int, dst []E) {
	cur := 0
	srcBlock := func(i, j int) int {
		if reverse {
			i, j = m-1-i, m-1-j
		}
		if swap {
			i, j = j, i
		}
		return (j*m + i) * bl
	}
	r0 := 0
	for _, q := range panels {
		for l := 0; l < r0; l++ {
			for r := 0; r < q; r++ {
				s := srcBlock(r0+r, l)
				copy(dst[cur:cur+bl], src[s:s+bl])
				cur += bl
			}
		}
		for i := 0; i < q; i++ {
			for j := 0; j <= i; j++ {
				s := srcBlock(r0+i, r0+j)
				switch {
				case i != j:
					copy(dst[cur:cur+bl], src[s:s+bl])
				case unit:
					for lane := 0; lane < vl; lane++ {
						dst[cur+lane] = 1
						if cplx {
							dst[cur+vl+lane] = 0
						}
					}
				case !recip:
					copy(dst[cur:cur+bl], src[s:s+bl])
				case !cplx:
					for lane := 0; lane < vl; lane++ {
						if v := src[s+lane]; v != 0 {
							dst[cur+lane] = 1 / v
						} else {
							dst[cur+lane] = 0
						}
					}
				default:
					for lane := 0; lane < vl; lane++ {
						re := float64(src[s+lane])
						im := float64(src[s+vl+lane])
						den := re*re + im*im
						if den != 0 {
							dst[cur+lane] = E(re / den)
							dst[cur+vl+lane] = E(-im / den)
						} else {
							dst[cur+lane] = 0
							dst[cur+vl+lane] = 0
						}
					}
				}
				cur += bl
			}
		}
		r0 += q
	}
}

// nBCopy/nBUncopy canonicalize B — the native twins of pack.BCopy/BUncopy.
func nBCopy[E vec.Float](src []E, rows, cols int, reverse, transpose bool, bl int, dst []E) {
	dr, dc := rows, cols
	if transpose {
		dr, dc = dc, dr
	}
	for j := 0; j < dc; j++ {
		for i := 0; i < dr; i++ {
			si, sj := i, j
			if transpose {
				si, sj = j, i
			}
			if reverse {
				if transpose {
					sj = cols - 1 - sj
				} else {
					si = rows - 1 - si
				}
			}
			s := (sj*rows + si) * bl
			d := (j*dr + i) * bl
			copy(dst[d:d+bl], src[s:s+bl])
		}
	}
}

func nBUncopy[E vec.Float](dst []E, rows, cols int, reverse, transpose bool, bl int, src []E) {
	dr, dc := rows, cols
	if transpose {
		dr, dc = dc, dr
	}
	for j := 0; j < dc; j++ {
		for i := 0; i < dr; i++ {
			si, sj := i, j
			if transpose {
				si, sj = j, i
			}
			if reverse {
				if transpose {
					sj = cols - 1 - sj
				} else {
					si = rows - 1 - si
				}
			}
			s := (j*dr + i) * bl
			d := (sj*rows + si) * bl
			copy(dst[d:d+bl], src[s:s+bl])
		}
	}
}

// ExecTRSMNative runs the TRSM plan with the native Go kernels,
// overwriting B with the solution.
func ExecTRSMNative[E vec.Float](pl *TRSMPlan, a, b *layout.Compact[E]) error {
	return ExecTRSMNativeParallel(pl, a, b, 1)
}

// ExecTRSMNativeParallel is ExecTRSMNative with worker-parallel groups.
// workers <= 0 means auto (GOMAXPROCS).
func ExecTRSMNativeParallel[E vec.Float](pl *TRSMPlan, a, b *layout.Compact[E], workers int) error {
	return ExecTRSMNativePrepacked(pl, a, b, nil, workers)
}

// ExecTRSMNativePrepacked is ExecTRSMNativeParallel consuming a
// prepacked triangle: preTri, when non-nil, must hold the output of
// PrepackTRSMTri for this plan (group-indexed, per PrepackTriLen), and
// the per-call triangle pack (including the reciprocal diagonal) is
// skipped. nil falls back to packing per call.
func ExecTRSMNativePrepacked[E vec.Float](pl *TRSMPlan, a, b *layout.Compact[E], preTri []E, workers int) error {
	p := pl.P
	if pl.Tun.VL != 0 && pl.Tun.VL != p.DT.Pack() {
		return fmt.Errorf("core: native execution requires the native lane count")
	}
	if a.Count != p.Count || b.Count != p.Count {
		return fmt.Errorf("core: batch count mismatch")
	}
	if a.Rows != pl.MEff || a.Cols != pl.MEff || b.Rows != p.M || b.Cols != p.N {
		return fmt.Errorf("core: shape mismatch A=%dx%d B=%dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if preTri != nil && len(preTri) < pl.PrepackTriLen(a.Groups()) {
		return fmt.Errorf("core: prepacked tri has %d elements, need %d", len(preTri), pl.PrepackTriLen(a.Groups()))
	}
	pl.RT.or().Sched.RunLabeled(pl.Labels, a.Groups(), workers, pl.GroupsPerBatch, func(lo, hi int) {
		trsmWorker(pl, a, b, preTri, lo, hi)
	})
	return nil
}

func trsmWorker[E vec.Float](pl *TRSMPlan, a, b *layout.Compact[E], preTri []E, gLo, gHi int) {
	p := pl.P
	vl := p.DT.Pack()
	bl := blockLen(p.DT, vl)
	cplx := p.DT.IsComplex()
	lenA := pl.MEff * pl.MEff * bl
	lenB := p.M * p.N * bl
	lenTri := pack.TriLen(bl, pl.Panels)
	transAEff := p.TransA == matrix.Transpose
	if p.Side == matrix.Right {
		transAEff = !transAEff
	}
	upper := p.Uplo == matrix.Upper
	effUpper := upper != transAEff

	gb := pl.GroupsPerBatch
	needTri := preTri == nil
	needScale := p.Alpha != 1
	needPack := needTri || pl.PackB || needScale

	pipelined := needPack && gHi-gLo > gb
	nBuf := 1
	if pipelined {
		nBuf = 2
	}
	rt := pl.RT.or()
	var packTri []E
	if needTri {
		bufTri := bufpool.Get[E](rt.Bufs, nBuf*gb*lenTri)
		defer bufpool.Put(rt.Bufs, bufTri)
		packTri = bufTri.Slice()
	}
	var packB []E
	lenPB := 0
	if pl.PackB {
		lenPB = pl.MEff * pl.NEff * bl
		bufB := bufpool.Get[E](rt.Bufs, nBuf*gb*lenPB)
		defer bufpool.Put(rt.Bufs, bufB)
		packB = bufB.Slice()
	}

	args := triPackArgs[E]{
		a: a, b: b, panels: pl.Panels, packTri: packTri, packB: packB,
		mEff: pl.MEff, nEff: pl.NEff,
		lenA: lenA, lenB: lenB, lenTri: lenTri, lenPB: lenPB,
		effUpper: effUpper, transAEff: transAEff,
		unit: p.Diag == matrix.Unit, recip: true,
		reverseB: pl.ReverseB, transposeB: pl.TransposeB,
		alphaRe: real(p.Alpha), alphaIm: imag(p.Alpha), scale: needScale,
		cplx: cplx, vl: vl, bl: bl, gb: gb,
	}

	var pipe *triPipe[E]
	if pipelined {
		pipe = getTriPipe[E]()
		pipe.args = args
		pipe.gLo, pipe.gHi = gLo, gHi
		pipe.free <- 0
		pipe.free <- 1
		if !submitPipe(pipe) {
			<-pipe.free
			<-pipe.free
			putTriPipe(pipe)
			pipe, pipelined = nil, false
			pipeFallbacks.Add(1)
		}
	}

	nChunks := (gHi - gLo + gb - 1) / gb
	ci := 0
	for sb := gLo; sb < gHi; sb += gb {
		end := sb + gb
		if end > gHi {
			end = gHi
		}
		slotBase := 0
		if pipelined {
			var par int
			select {
			case par = <-pipe.ready:
			default:
				pipeStalls.Add(1)
				par = <-pipe.ready
			}
			slotBase = par * gb
		} else if needPack {
			args.packChunk(sb, end, 0)
		}
		for g := sb; g < end; g++ {
			slot := slotBase + (g - sb)
			var tri []E
			if needTri {
				tri = packTri[slot*lenTri:]
			} else {
				tri = preTri[g*lenTri:]
			}
			var target []E
			if pl.PackB {
				target = packB[slot*lenPB:]
			} else {
				target = b.Data[g*lenB:]
			}
			j0 := 0
			for _, ct := range pl.ColTiles {
				colBase := j0 * pl.MEff * bl
				for _, st := range pl.steps {
					if st.r0 > 0 {
						if cplx {
							kernels.RectCplx(tri[st.rectOff:], target[colBase:],
								target[colBase+st.r0*bl:], st.q, ct, st.r0, pl.MEff, pl.MEff, vl)
						} else {
							kernels.Rect(tri[st.rectOff:], target[colBase:],
								target[colBase+st.r0*bl:], st.q, ct, st.r0, pl.MEff, pl.MEff, vl)
						}
					}
					if cplx {
						kernels.TriCplx(tri[st.triOff:], target[colBase+st.r0*bl:], st.q, ct, pl.MEff, vl)
					} else {
						kernels.Tri(tri[st.triOff:], target[colBase+st.r0*bl:], st.q, ct, pl.MEff, vl)
					}
				}
				j0 += ct
			}
		}
		if pl.PackB {
			// Write back before the parity is recycled: the pipeline
			// packer may only overwrite these slots once the solved
			// columns are back in B.
			for g := sb; g < end; g++ {
				slot := slotBase + (g - sb)
				nBUncopy(b.Data[g*lenB:(g+1)*lenB], p.M, p.N, pl.ReverseB, pl.TransposeB, bl, packB[slot*lenPB:])
			}
		}
		if pipelined && ci+2 < nChunks {
			pipe.free <- slotBase / gb
		}
		ci++
	}
	if pipelined {
		putTriPipe(pipe)
	}
}
