package core

import (
	"testing"

	"iatf/internal/machine"
	"iatf/internal/matrix"
	"iatf/internal/vec"
)

// gflopsOf runs the cycle model for a problem and returns modeled GFLOPS.
func gflopsOf(t *testing.T, p GEMMProblem, tun Tuning, groups int) float64 {
	t.Helper()
	pl, err := NewGEMMPlan(p, tun)
	if err != nil {
		t.Fatal(err)
	}
	sim := machine.NewSim(tun.Prof, p.DT.ElemBytes())
	cycles, err := SimGEMM(pl, groups, sim)
	if err != nil {
		t.Fatal(err)
	}
	vl := tun.lanes(p.DT)
	flops := p.DT.FlopsPerElem() * float64(p.M*p.N*p.K) * float64(groups*vl)
	sec := float64(cycles) / (tun.Prof.FreqGHz * 1e9)
	return flops / sec / 1e9
}

// The modeled dgemm must reach a sensible fraction of the Kunpeng FP64
// peak (10.4 GFLOPS) at a compute-friendly size, and never exceed it.
func TestSimGEMMReasonableThroughput(t *testing.T) {
	tun := DefaultTuning()
	p := GEMMProblem{DT: vec.D, M: 16, N: 16, K: 16, Alpha: 1, Beta: 1, Count: 1 << 14}
	g := gflopsOf(t, p, tun, 16)
	peak := tun.Prof.PeakGFLOPS(vec.D)
	if g <= 0.4*peak {
		t.Errorf("dgemm 16³ model = %.2f GFLOPS, below 40%% of peak %.1f", g, peak)
	}
	if g > peak {
		t.Errorf("dgemm 16³ model = %.2f GFLOPS exceeds peak %.1f", g, peak)
	}
	// Tiny sizes are overhead-bound and must be well below peak.
	tiny := gflopsOf(t, GEMMProblem{DT: vec.D, M: 2, N: 2, K: 2, Alpha: 1, Beta: 1, Count: 1 << 14}, tun, 16)
	if tiny >= g {
		t.Errorf("2³ (%.2f) should be slower than 16³ (%.2f)", tiny, g)
	}
}

// The sgemm model must show the dual-issue ceiling: FP32 peak needs two FP
// ops per cycle with no load co-issue, so achieved fraction-of-peak stays
// below the FP64 fraction (the paper's §6.3 observation).
func TestSimGEMMDualIssueAsymmetry(t *testing.T) {
	tun := DefaultTuning()
	pd := GEMMProblem{DT: vec.D, M: 12, N: 12, K: 12, Alpha: 1, Beta: 1, Count: 1 << 14}
	ps := GEMMProblem{DT: vec.S, M: 12, N: 12, K: 12, Alpha: 1, Beta: 1, Count: 1 << 14}
	fracD := gflopsOf(t, pd, tun, 8) / tun.Prof.PeakGFLOPS(vec.D)
	fracS := gflopsOf(t, ps, tun, 8) / tun.Prof.PeakGFLOPS(vec.S)
	if fracS >= fracD {
		t.Errorf("FP32 fraction %.3f should trail FP64 fraction %.3f on Kunpeng", fracS, fracD)
	}
}

// The AVX-512 lane override must run and show a higher absolute
// throughput model (16 matrices per register).
func TestSimGEMMXeonModel(t *testing.T) {
	tun := Tuning{Prof: machine.XeonGold6240(), VL: 16}
	p := GEMMProblem{DT: vec.S, M: 8, N: 8, K: 8, Alpha: 1, Beta: 1, Count: 1 << 14}
	g := gflopsOf(t, p, tun, 4)
	if g <= 0 || g > tun.Prof.PeakGFLOPS(vec.S) {
		t.Errorf("Xeon model sgemm = %.2f GFLOPS (peak %.1f)", g, tun.Prof.PeakGFLOPS(vec.S))
	}
}

func TestSimTRSMRuns(t *testing.T) {
	tun := DefaultTuning()
	for _, dt := range vec.DTypes {
		p := TRSMProblem{DT: dt, M: 8, N: 8, Side: matrix.Left, Uplo: matrix.Lower,
			TransA: matrix.NoTrans, Diag: matrix.NonUnit, Alpha: 1, Count: 256}
		pl, err := NewTRSMPlan(p, tun)
		if err != nil {
			t.Fatal(err)
		}
		sim := machine.NewSim(tun.Prof, dt.ElemBytes())
		cycles, err := SimTRSM(pl, 4, sim)
		if err != nil {
			t.Fatal(err)
		}
		if cycles <= 0 {
			t.Errorf("%v: cycles = %d", dt, cycles)
		}
		flops := p.FLOPs() / float64(p.Count) * float64(4*dt.Pack())
		g := flops / (float64(cycles) / (tun.Prof.FreqGHz * 1e9)) / 1e9
		if g > tun.Prof.PeakGFLOPS(dt) {
			t.Errorf("%v TRSM model %.2f GFLOPS exceeds peak", dt, g)
		}
	}
}

// Ablation hook: disabling the instruction scheduler must cost cycles at a
// compute-bound size.
func TestSimAblationOptimizer(t *testing.T) {
	base := DefaultTuning()
	off := DefaultTuning()
	off.DisableOptimizer = true
	p := GEMMProblem{DT: vec.D, M: 8, N: 8, K: 16, Alpha: 1, Beta: 1, Count: 4096}
	g1 := gflopsOf(t, p, base, 8)
	g2 := gflopsOf(t, p, off, 8)
	if g1 <= g2 {
		t.Errorf("optimizer off (%.3f) should not beat on (%.3f)", g2, g1)
	}
}

// Portability: the same plans on the Graviton2 model. Its uncoupled dual
// FP pipes mean (a) FP64 throughput roughly doubles in absolute terms and
// (b) the FP32-vs-FP64 fraction-of-peak asymmetry the Kunpeng shows
// disappears (FP32 no longer loses issue slots to loads).
func TestGraviton2Portability(t *testing.T) {
	kun := DefaultTuning()
	grav := Tuning{Prof: machine.Graviton2()}
	p := GEMMProblem{DT: vec.D, M: 16, N: 16, K: 16, Alpha: 1, Beta: 1, Count: 1 << 12}
	gk := gflopsOf(t, p, kun, 8)
	gg := gflopsOf(t, p, grav, 8)
	if gg <= gk {
		t.Errorf("Graviton2 dgemm %.2f ≤ Kunpeng %.2f GFLOPS", gg, gk)
	}
	ps := p
	ps.DT = vec.S
	fracS := gflopsOf(t, ps, grav, 8) / grav.Prof.PeakGFLOPS(vec.S)
	fracD := gg / grav.Prof.PeakGFLOPS(vec.D)
	// Without the issue coupling the FP32 fraction should be at least
	// comparable to FP64's (on Kunpeng it trails clearly).
	if fracS < 0.75*fracD {
		t.Errorf("Graviton2 FP32 fraction %.3f far below FP64 %.3f", fracS, fracD)
	}
}
