package core

import (
	"fmt"

	"iatf/internal/bufpool"
	"iatf/internal/kernels"
	"iatf/internal/layout"
	"iatf/internal/matrix"
	"iatf/internal/pack"
	"iatf/internal/vec"
)

// Chained executor variants for cross-op fusion: when two adjacent
// triangular stages of a chain canonicalize B the same way (equal
// ReverseB and TransposeB), the producer's nBUncopy and the consumer's
// nBCopy are inverse block permutations — BUncopy∘BCopy is the identity
// on every group, so the pair can be elided bit-exactly by handing the
// canonical image straight across the stage boundary.
//
// The donated image is a full-batch, group-indexed canonical array of
// exactly len(b.Data) elements (MEff·NEff == M·N, so the canonical
// group length equals the compact group length). Ownership stays with
// the caller (the chain executor), which must either hand the buffer to
// the next stage or re-materialize it into B with ScatterCanonicalB —
// while an image is live, b.Data is stale.
//
// These workers skip the double-buffered pack pipeline: fused chain
// stages are replayed steady-state with auto-prepacked triangles, so
// the per-call pack pass they would hide is usually already gone.

// ExecTRSMNativeChained is ExecTRSMNativePrepacked with the B operand's
// canonical image donated across stage boundaries. inB, when non-nil,
// holds B's canonical image (per ScatterCanonicalB geometry) and the
// per-group nBCopy is skipped; outB, when non-nil, receives the solved
// canonical image and the per-group nBUncopy back into B is skipped.
// When both are given they must be the same buffer (the solve runs in
// place on the donated image). Both nil falls back to the prepacked
// path. Requires a plan with PackB.
func ExecTRSMNativeChained[E vec.Float](pl *TRSMPlan, a, b *layout.Compact[E], preTri, inB, outB []E, workers int) error {
	if inB == nil && outB == nil {
		return ExecTRSMNativePrepacked(pl, a, b, preTri, workers)
	}
	p := pl.P
	if err := checkChainedB(pl.Tun, p.DT, p.Count, pl.MEff, p.M, p.N, pl.PackB, a, b, inB, outB); err != nil {
		return err
	}
	if preTri != nil && len(preTri) < pl.PrepackTriLen(a.Groups()) {
		return fmt.Errorf("core: prepacked tri has %d elements, need %d", len(preTri), pl.PrepackTriLen(a.Groups()))
	}
	pl.RT.or().Sched.RunLabeled(pl.Labels, a.Groups(), workers, pl.GroupsPerBatch, func(lo, hi int) {
		trsmChainWorker(pl, a, b, preTri, inB, outB, lo, hi)
	})
	return nil
}

// ExecTRMMNativeChained is the TRMM twin of ExecTRSMNativeChained.
func ExecTRMMNativeChained[E vec.Float](pl *TRMMPlan, a, b *layout.Compact[E], preTri, inB, outB []E, workers int) error {
	if inB == nil && outB == nil {
		return ExecTRMMNativePrepacked(pl, a, b, preTri, workers)
	}
	p := pl.P
	if err := checkChainedB(pl.Tun, p.DT, p.Count, pl.MEff, p.M, p.N, pl.PackB, a, b, inB, outB); err != nil {
		return err
	}
	if preTri != nil && len(preTri) < pl.PrepackTriLen(a.Groups()) {
		return fmt.Errorf("core: prepacked tri has %d elements, need %d", len(preTri), pl.PrepackTriLen(a.Groups()))
	}
	pl.RT.or().Sched.RunLabeled(pl.Labels, a.Groups(), workers, pl.GroupsPerBatch, func(lo, hi int) {
		trmmChainWorker(pl, a, b, preTri, inB, outB, lo, hi)
	})
	return nil
}

// ScatterCanonicalB re-materializes a donated canonical image into B —
// the per-group nBUncopy a producer stage elided. The chain executor
// calls it when a fused handoff is abandoned (stage error, context
// cancellation) so B is left exactly as the serial sequence would have
// left it after the producer stage.
func ScatterCanonicalB[E vec.Float](b *layout.Compact[E], reverse, transpose bool, canon []E) {
	bl := b.BlockLen()
	lenB := b.Rows * b.Cols * bl
	for g := 0; g < b.Groups(); g++ {
		nBUncopy(b.Data[g*lenB:(g+1)*lenB], b.Rows, b.Cols, reverse, transpose, bl, canon[g*lenB:])
	}
}

func checkChainedB[E vec.Float](tun Tuning, dt vec.DType, count, mEff, m, n int, packB bool, a, b *layout.Compact[E], inB, outB []E) error {
	if tun.VL != 0 && tun.VL != dt.Pack() {
		return fmt.Errorf("core: native execution requires the native lane count")
	}
	if !packB {
		return fmt.Errorf("core: chained B handoff requires a canonicalizing plan (PackB)")
	}
	if a.Count != count || b.Count != count {
		return fmt.Errorf("core: batch count mismatch")
	}
	if a.Rows != mEff || a.Cols != mEff || b.Rows != m || b.Cols != n {
		return fmt.Errorf("core: shape mismatch A=%dx%d B=%dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if inB != nil && outB != nil && &inB[0] != &outB[0] {
		return fmt.Errorf("core: chained in/out images must alias (in-place handoff)")
	}
	if inB != nil && len(inB) < len(b.Data) {
		return fmt.Errorf("core: donated canonical B has %d elements, need %d", len(inB), len(b.Data))
	}
	if outB != nil && len(outB) < len(b.Data) {
		return fmt.Errorf("core: canonical B out has %d elements, need %d", len(outB), len(b.Data))
	}
	return nil
}

func trsmChainWorker[E vec.Float](pl *TRSMPlan, a, b *layout.Compact[E], preTri, inB, outB []E, gLo, gHi int) {
	p := pl.P
	vl := p.DT.Pack()
	bl := blockLen(p.DT, vl)
	cplx := p.DT.IsComplex()
	lenA := pl.MEff * pl.MEff * bl
	lenB := p.M * p.N * bl
	lenTri := pack.TriLen(bl, pl.Panels)
	transAEff := p.TransA == matrix.Transpose
	if p.Side == matrix.Right {
		transAEff = !transAEff
	}
	effUpper := (p.Uplo == matrix.Upper) != transAEff

	canon := inB
	if canon == nil {
		canon = outB
	}
	donated := inB != nil
	keep := outB != nil

	gb := pl.GroupsPerBatch
	needTri := preTri == nil
	rt := pl.RT.or()
	var packTri []E
	if needTri {
		bufTri := bufpool.Get[E](rt.Bufs, gb*lenTri)
		defer bufpool.Put(rt.Bufs, bufTri)
		packTri = bufTri.Slice()
	}

	for sb := gLo; sb < gHi; sb += gb {
		end := sb + gb
		if end > gHi {
			end = gHi
		}
		for g := sb; g < end; g++ {
			slot := g - sb
			var tri []E
			if needTri {
				tri = packTri[slot*lenTri:]
				npackTri(a.Data[g*lenA:(g+1)*lenA], pl.MEff, effUpper, transAEff,
					p.Diag == matrix.Unit, true, pl.Panels, cplx, vl, bl, tri)
			} else {
				tri = preTri[g*lenTri:]
			}
			target := canon[g*lenB:]
			if !donated {
				nBCopy(b.Data[g*lenB:(g+1)*lenB], b.Rows, b.Cols, pl.ReverseB, pl.TransposeB, bl, target)
			}
			if p.Alpha != 1 {
				nscale(target, pl.MEff*pl.NEff, cplx, vl, real(p.Alpha), imag(p.Alpha))
			}
			j0 := 0
			for _, ct := range pl.ColTiles {
				colBase := j0 * pl.MEff * bl
				for _, st := range pl.steps {
					if st.r0 > 0 {
						if cplx {
							kernels.RectCplx(tri[st.rectOff:], target[colBase:],
								target[colBase+st.r0*bl:], st.q, ct, st.r0, pl.MEff, pl.MEff, vl)
						} else {
							kernels.Rect(tri[st.rectOff:], target[colBase:],
								target[colBase+st.r0*bl:], st.q, ct, st.r0, pl.MEff, pl.MEff, vl)
						}
					}
					if cplx {
						kernels.TriCplx(tri[st.triOff:], target[colBase+st.r0*bl:], st.q, ct, pl.MEff, vl)
					} else {
						kernels.Tri(tri[st.triOff:], target[colBase+st.r0*bl:], st.q, ct, pl.MEff, vl)
					}
				}
				j0 += ct
			}
			if !keep {
				nBUncopy(b.Data[g*lenB:(g+1)*lenB], p.M, p.N, pl.ReverseB, pl.TransposeB, bl, target)
			}
		}
	}
}

func trmmChainWorker[E vec.Float](pl *TRMMPlan, a, b *layout.Compact[E], preTri, inB, outB []E, gLo, gHi int) {
	p := pl.P
	vl := p.DT.Pack()
	bl := blockLen(p.DT, vl)
	cplx := p.DT.IsComplex()
	lenA := pl.MEff * pl.MEff * bl
	lenB := p.M * p.N * bl
	lenTri := pack.TriLen(bl, pl.Panels)
	transAEff := p.TransA == matrix.Transpose
	if p.Side == matrix.Right {
		transAEff = !transAEff
	}
	effUpper := (p.Uplo == matrix.Upper) != transAEff

	canon := inB
	if canon == nil {
		canon = outB
	}
	donated := inB != nil
	keep := outB != nil

	gb := pl.GroupsPerBatch
	needTri := preTri == nil
	rt := pl.RT.or()
	var packTri []E
	if needTri {
		bufTri := bufpool.Get[E](rt.Bufs, gb*lenTri)
		defer bufpool.Put(rt.Bufs, bufTri)
		packTri = bufTri.Slice()
	}

	for sb := gLo; sb < gHi; sb += gb {
		end := sb + gb
		if end > gHi {
			end = gHi
		}
		for g := sb; g < end; g++ {
			slot := g - sb
			var tri []E
			if needTri {
				tri = packTri[slot*lenTri:]
				npackTri(a.Data[g*lenA:(g+1)*lenA], pl.MEff, effUpper, transAEff,
					p.Diag == matrix.Unit, false, pl.Panels, cplx, vl, bl, tri)
			} else {
				tri = preTri[g*lenTri:]
			}
			target := canon[g*lenB:]
			if !donated {
				nBCopy(b.Data[g*lenB:(g+1)*lenB], b.Rows, b.Cols, pl.ReverseB, pl.TransposeB, bl, target)
			}
			if p.Alpha != 1 {
				nscale(target, pl.MEff*pl.NEff, cplx, vl, real(p.Alpha), imag(p.Alpha))
			}
			j0 := 0
			for _, ct := range pl.ColTiles {
				colBase := j0 * pl.MEff * bl
				// Bottom-up, matching trmmWorker: each panel multiplies its
				// own rows before any panel above it reads them.
				for s := len(pl.steps) - 1; s >= 0; s-- {
					st := pl.steps[s]
					if cplx {
						kernels.TriMulCplx(tri[st.triOff:], target[colBase+st.r0*bl:], st.q, ct, pl.MEff, vl)
					} else {
						kernels.TriMul(tri[st.triOff:], target[colBase+st.r0*bl:], st.q, ct, pl.MEff, vl)
					}
					if st.r0 > 0 {
						if cplx {
							kernels.RectAddCplx(tri[st.rectOff:], target[colBase:],
								target[colBase+st.r0*bl:], st.q, ct, st.r0, pl.MEff, pl.MEff, vl)
						} else {
							kernels.RectAdd(tri[st.rectOff:], target[colBase:],
								target[colBase+st.r0*bl:], st.q, ct, st.r0, pl.MEff, pl.MEff, vl)
						}
					}
				}
				j0 += ct
			}
			if !keep {
				nBUncopy(b.Data[g*lenB:(g+1)*lenB], p.M, p.N, pl.ReverseB, pl.TransposeB, bl, target)
			}
		}
	}
}
