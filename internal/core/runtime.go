package core

import (
	"iatf/internal/bufpool"
	"iatf/internal/sched"
)

// Runtime bundles the per-engine execution resources of the run-time
// stage: the persistent worker pool parallel executors fan out on and
// the size-class buffer pools the packing arenas are recycled through.
// Neither layer has package-level state anymore — every engine instance
// owns one Runtime, so a sharded EngineSet gets strict per-shard
// isolation: one shard's packing churn cannot evict another shard's
// warm buffers and each shard's worker fleet can be capped to its core
// budget (sched.Pool.SetMaxWorkers).
//
// Plans carry the Runtime of the engine that dispatched them (stamped
// into the per-call stack copy next to Labels, never onto the cached
// plan); a nil Runtime on a plan falls back to the process-wide default
// so direct core callers — tests, the reference VM comparisons, the
// analysis CLIs — keep working without owning an engine.
type Runtime struct {
	Sched *sched.Pool
	Bufs  *bufpool.Pool
}

// NewRuntime returns an isolated Runtime: a fresh worker pool (started
// lazily) and empty buffer pools.
func NewRuntime() *Runtime {
	return &Runtime{Sched: sched.NewPool(), Bufs: bufpool.NewPool()}
}

// defaultRuntime serves plans with no stamped Runtime (direct core use).
var defaultRuntime = NewRuntime()

// DefaultRuntime returns the process-wide fallback Runtime used by plans
// that were not dispatched through an engine.
func DefaultRuntime() *Runtime { return defaultRuntime }

// or resolves the nil fallback on the execution path.
func (rt *Runtime) or() *Runtime {
	if rt == nil {
		return defaultRuntime
	}
	return rt
}
