package core

import (
	"math/rand"
	"testing"

	"iatf/internal/layout"
	"iatf/internal/machine"
	"iatf/internal/matrix"
	"iatf/internal/vec"
)

// checkGEMM runs the full plan pipeline for one scalar type and compares
// against the reference oracle.
func checkGEMM[T matrix.Scalar, E vec.Float](t *testing.T, dt vec.DType, p GEMMProblem, tun Tuning) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(p.M*1000 + p.N*100 + p.K*10 + int(p.TransA) + 2*int(p.TransB))))
	ar, ac := p.M, p.K
	if p.TransA == matrix.Transpose {
		ar, ac = p.K, p.M
	}
	br, bc := p.K, p.N
	if p.TransB == matrix.Transpose {
		br, bc = p.N, p.K
	}
	a := matrix.RandBatch[T](rng, p.Count, ar, ac)
	b := matrix.RandBatch[T](rng, p.Count, br, bc)
	c := matrix.RandBatch[T](rng, p.Count, p.M, p.N)

	want := c.Clone()
	matrix.RefGEMMBatch(p.TransA, p.TransB, scalarOf[T](p.Alpha), a, b, scalarOf[T](p.Beta), want)

	ca := toCompact[T, E](dt, a)
	cb := toCompact[T, E](dt, b)
	cc := toCompact[T, E](dt, c)
	pl, err := NewGEMMPlan(p, tun)
	if err != nil {
		t.Fatalf("%v %s %dx%dx%d: %v", dt, p.Mode(), p.M, p.N, p.K, err)
	}
	if err := ExecGEMM(pl, ca, cb, cc, nil); err != nil {
		t.Fatalf("%v %s %dx%dx%d: %v", dt, p.Mode(), p.M, p.N, p.K, err)
	}
	got := fromCompact[T, E](cc)
	if !matrix.WithinTol(got.Data, want.Data, matrix.Tol[T](p.K+2)) {
		t.Errorf("%v %s M=%d N=%d K=%d count=%d: max diff %g",
			dt, p.Mode(), p.M, p.N, p.K, p.Count, matrix.MaxAbsDiff(got.Data, want.Data))
	}
}

// scalarOf narrows a complex128 parameter to the scalar type under test.
func scalarOf[T matrix.Scalar](c complex128) T {
	var z T
	switch any(z).(type) {
	case float32:
		return any(float32(real(c))).(T)
	case float64:
		return any(real(c)).(T)
	case complex64:
		return any(complex64(c)).(T)
	default:
		return any(c).(T)
	}
}

// toCompact/fromCompact bridge the generic scalar and component types.
func toCompact[T matrix.Scalar, E vec.Float](dt vec.DType, b *matrix.Batch[T]) *layout.Compact[E] {
	switch bb := any(b).(type) {
	case *matrix.Batch[float32]:
		return any(layout.FromBatch(dt, bb)).(*layout.Compact[E])
	case *matrix.Batch[float64]:
		return any(layout.FromBatch(dt, bb)).(*layout.Compact[E])
	case *matrix.Batch[complex64]:
		return any(layout.FromBatchComplex[complex64, float32](dt, bb)).(*layout.Compact[E])
	case *matrix.Batch[complex128]:
		return any(layout.FromBatchComplex[complex128, float64](dt, bb)).(*layout.Compact[E])
	}
	panic("unreachable")
}

func fromCompact[T matrix.Scalar, E vec.Float](c *layout.Compact[E]) *matrix.Batch[T] {
	if !c.Type.IsComplex() {
		switch cc := any(c).(type) {
		case *layout.Compact[float32]:
			return any(layout.ToBatch(cc)).(*matrix.Batch[T])
		case *layout.Compact[float64]:
			return any(layout.ToBatch(cc)).(*matrix.Batch[T])
		}
	}
	switch cc := any(c).(type) {
	case *layout.Compact[float32]:
		return any(layout.ToBatchComplex[complex64](cc)).(*matrix.Batch[T])
	case *layout.Compact[float64]:
		return any(layout.ToBatchComplex[complex128](cc)).(*matrix.Batch[T])
	}
	panic("unreachable")
}

func checkGEMMAllTypes(t *testing.T, m, n, k int, ta, tb matrix.Trans, alpha, beta complex128, count int, tun Tuning) {
	t.Helper()
	p := GEMMProblem{M: m, N: n, K: k, TransA: ta, TransB: tb, Alpha: alpha, Beta: beta, Count: count}
	p.DT = vec.S
	checkGEMM[float32, float32](t, vec.S, p, tun)
	p.DT = vec.D
	checkGEMM[float64, float64](t, vec.D, p, tun)
	p.DT = vec.C
	checkGEMM[complex64, float32](t, vec.C, p, tun)
	p.DT = vec.Z
	checkGEMM[complex128, float64](t, vec.Z, p, tun)
}

func TestGEMMAllModesAndSizes(t *testing.T) {
	tun := DefaultTuning()
	for _, mode := range [][2]matrix.Trans{
		{matrix.NoTrans, matrix.NoTrans},
		{matrix.NoTrans, matrix.Transpose},
		{matrix.Transpose, matrix.NoTrans},
		{matrix.Transpose, matrix.Transpose},
	} {
		for _, mnk := range [][3]int{
			{1, 1, 1}, {2, 3, 4}, {4, 4, 4}, {5, 5, 5}, {7, 3, 2},
			{8, 8, 8}, {9, 7, 5}, {15, 15, 15}, {3, 9, 1},
		} {
			checkGEMMAllTypes(t, mnk[0], mnk[1], mnk[2], mode[0], mode[1], 1, 1, 6, tun)
		}
	}
}

func TestGEMMAlphaBeta(t *testing.T) {
	tun := DefaultTuning()
	// Real alpha/beta on all types.
	checkGEMMAllTypes(t, 5, 4, 3, matrix.NoTrans, matrix.NoTrans, 2.5, 1, 3, tun)
	checkGEMMAllTypes(t, 5, 4, 3, matrix.NoTrans, matrix.NoTrans, 1, 0.5, 3, tun)
	checkGEMMAllTypes(t, 5, 4, 3, matrix.NoTrans, matrix.NoTrans, -1, 0, 3, tun)
	// Complex alpha/beta on complex types.
	p := GEMMProblem{DT: vec.C, M: 4, N: 4, K: 4, Alpha: 1 + 2i, Beta: 2 - 1i, Count: 5}
	checkGEMM[complex64, float32](t, vec.C, p, tun)
	p.DT = vec.Z
	checkGEMM[complex128, float64](t, vec.Z, p, tun)
}

func TestGEMMBatchCountsAndPadding(t *testing.T) {
	tun := DefaultTuning()
	// Counts around the interleave factor: padding lanes must not leak.
	for _, count := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 33} {
		p := GEMMProblem{DT: vec.S, M: 3, N: 3, K: 3, Alpha: 1, Beta: 1, Count: count}
		checkGEMM[float32, float32](t, vec.S, p, tun)
	}
}

func TestGEMMPlanDecisions(t *testing.T) {
	tun := DefaultTuning()
	// NN with M ≤ 4: A no-pack fast path.
	pl, err := NewGEMMPlan(GEMMProblem{DT: vec.S, M: 3, N: 8, K: 5, Alpha: 1, Beta: 1, Count: 64}, tun)
	if err != nil {
		t.Fatal(err)
	}
	if pl.PackA {
		t.Error("NN M=3 must use the A no-packing fast path")
	}
	// Transposed A always packs.
	pl, err = NewGEMMPlan(GEMMProblem{DT: vec.S, M: 3, N: 8, K: 5, TransA: matrix.Transpose, Alpha: 1, Beta: 1, Count: 64}, tun)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.PackA {
		t.Error("TN must pack A")
	}
	// M > 4 packs.
	pl, err = NewGEMMPlan(GEMMProblem{DT: vec.S, M: 5, N: 8, K: 5, Alpha: 1, Beta: 1, Count: 64}, tun)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.PackA {
		t.Error("M=5 must pack A")
	}
	// Tiling: 15 → 4+4+4+3 (Figure 4b).
	pl, err = NewGEMMPlan(GEMMProblem{DT: vec.S, M: 15, N: 15, K: 15, Alpha: 1, Beta: 1, Count: 64}, tun)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.MTiles) != 4 || pl.MTiles[0] != 4 || pl.MTiles[3] != 3 {
		t.Errorf("MTiles = %v", pl.MTiles)
	}
	if len(pl.tiles) != 16 {
		t.Errorf("15x15 plan has %d tiles, want 16", len(pl.tiles))
	}
}

func TestBatchCounterRespectsL1(t *testing.T) {
	tun := DefaultTuning()
	// dgemm 16×16: per group = (256+256+256) blocks × 2 lanes × 8 B = 12 KB
	// → 5 groups in 64 KB.
	pl, err := NewGEMMPlan(GEMMProblem{DT: vec.D, M: 16, N: 16, K: 16, Alpha: 1, Beta: 1, Count: 4096}, tun)
	if err != nil {
		t.Fatal(err)
	}
	if pl.GroupsPerBatch != 5 {
		t.Errorf("GroupsPerBatch = %d, want 5", pl.GroupsPerBatch)
	}
	// Tiny problems cap at the group count.
	pl, err = NewGEMMPlan(GEMMProblem{DT: vec.D, M: 2, N: 2, K: 2, Alpha: 1, Beta: 1, Count: 4}, tun)
	if err != nil {
		t.Fatal(err)
	}
	if pl.GroupsPerBatch != 2 {
		t.Errorf("GroupsPerBatch = %d, want 2 (capped at groups)", pl.GroupsPerBatch)
	}
	// Ablation override.
	tun.ForceGroupsPerBatch = 3
	pl, err = NewGEMMPlan(GEMMProblem{DT: vec.D, M: 16, N: 16, K: 16, Alpha: 1, Beta: 1, Count: 4096}, tun)
	if err != nil {
		t.Fatal(err)
	}
	if pl.GroupsPerBatch != 3 {
		t.Errorf("forced GroupsPerBatch = %d", pl.GroupsPerBatch)
	}
}

func TestGEMMAblationTunings(t *testing.T) {
	// Correctness must hold with the optimizer and prefetch disabled and
	// with forced packing.
	tun := DefaultTuning()
	tun.DisableOptimizer = true
	checkGEMMAllTypes(t, 6, 5, 4, matrix.NoTrans, matrix.NoTrans, 1, 1, 5, tun)
	tun = DefaultTuning()
	tun.DisablePrefetch = true
	tun.ForcePackA = true
	checkGEMMAllTypes(t, 3, 5, 4, matrix.NoTrans, matrix.NoTrans, 1, 1, 5, tun)
	tun = DefaultTuning()
	tun.ForceGroupsPerBatch = 1
	checkGEMMAllTypes(t, 6, 5, 4, matrix.NoTrans, matrix.NoTrans, 1, 1, 9, tun)
}

func TestGEMMInvalidProblems(t *testing.T) {
	tun := DefaultTuning()
	if _, err := NewGEMMPlan(GEMMProblem{DT: vec.S, M: 0, N: 1, K: 1, Count: 1}, tun); err == nil {
		t.Error("M=0 accepted")
	}
	if _, err := NewGEMMPlan(GEMMProblem{DT: vec.S, M: 1, N: 1, K: 1, Count: 0}, tun); err == nil {
		t.Error("count=0 accepted")
	}
	// Shape mismatch at exec time.
	pl, _ := NewGEMMPlan(GEMMProblem{DT: vec.S, M: 2, N: 2, K: 2, Alpha: 1, Beta: 1, Count: 4}, tun)
	a := layout.NewCompact[float32](vec.S, 4, 3, 2)
	b := layout.NewCompact[float32](vec.S, 4, 2, 2)
	c := layout.NewCompact[float32](vec.S, 4, 2, 2)
	if err := ExecGEMM(pl, a, b, c, nil); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestGEMMProblemDerived(t *testing.T) {
	p := GEMMProblem{DT: vec.C, M: 2, N: 3, K: 4, TransA: matrix.Transpose, Count: 10}
	if p.Mode() != "TN" {
		t.Errorf("Mode = %s", p.Mode())
	}
	if p.FLOPs() != 8*2*3*4*10 {
		t.Errorf("FLOPs = %v", p.FLOPs())
	}
}

func TestNewGEMMPlanWithKernel(t *testing.T) {
	tun := DefaultTuning()
	p := GEMMProblem{DT: vec.D, M: 16, N: 16, K: 8, Alpha: 1, Beta: 1, Count: 8}
	pl, err := NewGEMMPlanWithKernel(p, tun, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, mt := range pl.MTiles {
		if mt > 2 {
			t.Errorf("forced 2x2 plan has tile height %d", mt)
		}
	}
	if pl.Instructions() <= 0 {
		t.Error("Instructions must be positive")
	}
	// Forced plans stay correct.
	rng := rand.New(rand.NewSource(51))
	a := randCompact[float64](rng, vec.D, p.Count, 16, 8)
	b := randCompact[float64](rng, vec.D, p.Count, 8, 16)
	c := randCompact[float64](rng, vec.D, p.Count, 16, 16)
	want := c.Clone()
	def, _ := NewGEMMPlan(p, tun)
	if err := ExecGEMMNative(def, a, b, want); err != nil {
		t.Fatal(err)
	}
	if err := ExecGEMMNative(pl, a, b, c); err != nil {
		t.Fatal(err)
	}
	for i := range c.Data {
		if c.Data[i] != want.Data[i] {
			t.Fatalf("forced-kernel plan diverges at %d", i)
		}
	}
	// Oversized forced kernel is rejected.
	if _, err := NewGEMMPlanWithKernel(p, tun, 5, 5); err == nil {
		t.Error("5x5 forced kernel accepted")
	}
}

func TestExecFactorNativeDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	a := randCompact[float64](rng, vec.D, 9, 5, 5)
	for v := 0; v < 9; v++ {
		for i := 0; i < 5; i++ {
			re, im := a.At(v, i, i)
			a.Set(v, i, i, re+6, im)
		}
	}
	infoSeq, err := ExecFactorNative(nil, LUKind, a.Clone(), 1)
	if err != nil {
		t.Fatal(err)
	}
	infoPar, err := ExecFactorNative(nil, LUKind, a.Clone(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(infoSeq) != 9 || len(infoPar) != 9 {
		t.Fatalf("info lengths %d/%d", len(infoSeq), len(infoPar))
	}
	for i := range infoSeq {
		if infoSeq[i] != 0 || infoPar[i] != 0 {
			t.Errorf("matrix %d flagged singular", i)
		}
	}
	// Rectangular and complex-Cholesky rejections.
	rect := layout.NewCompact[float64](vec.D, 2, 3, 4)
	if _, err := ExecFactorNative(nil, LUKind, rect, 1); err == nil {
		t.Error("rectangular factorization accepted")
	}
	cplx := layout.NewCompact[float64](vec.Z, 2, 3, 3)
	if _, err := ExecFactorNative(nil, CholeskyKind, cplx, 1); err == nil {
		t.Error("complex Cholesky accepted")
	}
}

func TestTRSMParallelMatchesSequentialCore(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	tun := DefaultTuning()
	p := TRSMProblem{DT: vec.S, M: 6, N: 4, Side: matrix.Left, Uplo: matrix.Upper,
		TransA: matrix.NoTrans, Diag: matrix.NonUnit, Alpha: 1, Count: 90}
	pl, err := NewTRSMPlan(p, tun)
	if err != nil {
		t.Fatal(err)
	}
	a := randCompact[float32](rng, vec.S, p.Count, 6, 6)
	for v := 0; v < p.Count; v++ {
		for i := 0; i < 6; i++ {
			re, im := a.At(v, i, i)
			a.Set(v, i, i, re+2, im)
		}
	}
	b := randCompact[float32](rng, vec.S, p.Count, 6, 4)
	b1, b4 := b.Clone(), b.Clone()
	if err := ExecTRSMNativeParallel(pl, a, b1, 1); err != nil {
		t.Fatal(err)
	}
	if err := ExecTRSMNativeParallel(pl, a, b4, 5); err != nil {
		t.Fatal(err)
	}
	for i := range b1.Data {
		if b1.Data[i] != b4.Data[i] {
			t.Fatalf("TRSM parallel diverges at %d", i)
		}
	}
}

// Reductions beyond the kernel-length cap must split into exact
// accumulating chunks (K-chunking).
func TestGEMMLargeKChunking(t *testing.T) {
	tun := DefaultTuning()
	p := GEMMProblem{DT: vec.D, M: 4, N: 4, K: 300, Alpha: 1, Beta: 1, Count: 5}
	pl, err := NewGEMMPlan(p, tun)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.KChunks) < 2 {
		t.Fatalf("K=300 produced %v chunks", pl.KChunks)
	}
	sum := 0
	for _, kc := range pl.KChunks {
		sum += kc
	}
	if sum != 300 {
		t.Fatalf("KChunks %v sum to %d", pl.KChunks, sum)
	}
	checkGEMM[float64, float64](t, vec.D, p, tun)
	// Also with beta=0 (overwrite first chunk only) and the no-pack path.
	p2 := GEMMProblem{DT: vec.S, M: 3, N: 5, K: 120, Alpha: 2, Beta: 0, Count: 6}
	checkGEMM[float32, float32](t, vec.S, p2, tun)
	// And complex.
	p3 := GEMMProblem{DT: vec.C, M: 3, N: 2, K: 97, Alpha: 1, Beta: 1, Count: 5}
	checkGEMM[complex64, float32](t, vec.C, p3, tun)
}

func TestTRSMDimGuard(t *testing.T) {
	tun := DefaultTuning()
	if _, err := NewTRSMPlan(TRSMProblem{DT: vec.S, M: 200, N: 4, Alpha: 1, Count: 1}, tun); err == nil {
		t.Error("M=200 TRSM accepted")
	}
	if _, err := NewTRMMPlan(TRMMProblem{DT: vec.S, M: 4, N: 300, Alpha: 1, Count: 1}, tun); err == nil {
		t.Error("N=300 TRMM accepted")
	}
}

func TestPreinstall(t *testing.T) {
	n, err := Preinstall(DefaultTuning(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// 16 real sizes × 2 types × 2 Ks + 6 complex sizes × 2 × 2, at least.
	if n < (16*2+6*2)*2 {
		t.Errorf("cache holds %d kernels after Preinstall", n)
	}
	// Idempotent.
	n2, err := Preinstall(DefaultTuning(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if n2 < n {
		t.Errorf("cache shrank: %d -> %d", n, n2)
	}
}

func TestTuningL1BudgetOverride(t *testing.T) {
	tun := DefaultTuning()
	tun.L1Budget = 4 << 10 // 4 KB: dgemm 16³ groups (12 KB) no longer fit
	pl, err := NewGEMMPlan(GEMMProblem{DT: vec.D, M: 16, N: 16, K: 16, Alpha: 1, Beta: 1, Count: 4096}, tun)
	if err != nil {
		t.Fatal(err)
	}
	if pl.GroupsPerBatch != 1 {
		t.Errorf("GroupsPerBatch = %d with a 4KB budget, want 1", pl.GroupsPerBatch)
	}
	// Empty cache config falls back to 64 KB.
	tun2 := Tuning{Prof: machine.Profile{FreqGHz: 1, VectorBits: 128, MemPorts: 1, FPPorts32: 1, FPPorts64: 1, IntPorts: 1, LatFMA: 4, LatMul: 4, LatAdd: 4}}
	if tun2.l1() != 64<<10 {
		t.Errorf("default l1 = %d", tun2.l1())
	}
}
