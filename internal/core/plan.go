// Package core implements the IATF run-time stage (paper §5): given the
// input matrix properties — size, data type, transposition, side, triangle,
// diagonal — it generates an execution plan:
//
//   - the Batch Counter picks how many interleave groups to pack per
//     super-batch so the packed working set stays inside the L1 data cache;
//   - the Pack Selector chooses packing kernels, or the no-packing fast
//     path when the computing kernel can already walk the operand
//     sequentially;
//   - the Execution Plan Generator tiles the problem over the Table 1
//     kernel sizes, instantiates the install-time kernel templates for the
//     concrete K, and schedules them through the kernel optimizer.
//
// Plans are data: the executors in this package run them functionally on
// the asm VM and, optionally, through the machine pipeline model in the
// same pass.
package core

import (
	"context"
	"fmt"

	"iatf/internal/asm"
	"iatf/internal/kopt"
	"iatf/internal/ktmpl"
	"iatf/internal/machine"
	"iatf/internal/matrix"
	"iatf/internal/vec"
)

// Tuning holds the machine parameters the run-time stage tunes against.
type Tuning struct {
	Prof machine.Profile
	// L1Budget is the packed-working-set budget in bytes per super-batch
	// (the Batch Counter's bound). Zero selects the profile's L1 size.
	L1Budget int
	// DisableOptimizer skips the instruction scheduler (ablation).
	DisableOptimizer bool
	// DisablePrefetch skips PRFM insertion (ablation).
	DisablePrefetch bool
	// ForceGroupsPerBatch overrides the batch counter (ablation); 0 = auto.
	ForceGroupsPerBatch int
	// ForcePackA disables the A no-packing fast path (ablation).
	ForcePackA bool
	// VL overrides the vector lane count (the MKL-compact model); 0 = native.
	VL int
}

// DefaultTuning targets the Kunpeng 920 model.
func DefaultTuning() Tuning {
	return Tuning{Prof: machine.Kunpeng920()}
}

func (t Tuning) l1() int {
	if t.L1Budget > 0 {
		return t.L1Budget
	}
	if len(t.Prof.Cache.Levels) > 0 {
		return t.Prof.Cache.Levels[0].SizeBytes
	}
	return 64 << 10
}

func (t Tuning) lanes(dt vec.DType) int {
	if t.VL > 0 {
		return t.VL
	}
	return t.Prof.Lanes(dt.ElemBytes())
}

func (t Tuning) optimize(p asm.Prog, dt vec.DType) asm.Prog {
	if t.DisableOptimizer {
		return p
	}
	return kopt.Optimize(p, kopt.Options{
		Prof:      t.Prof,
		ElemBytes: dt.ElemBytes(),
		Prefetch:  !t.DisablePrefetch,
	})
}

// kernelMemo memoizes generated+scheduled kernels across plans. The
// install-time stage of the paper generates kernels ahead of time; the
// memo is this reproduction's equivalent, keyed by the full parameter
// tuple (specs are comparable structs) plus the scheduling machine's
// fingerprint — list schedules depend on the profile's ports and
// latencies, so engines tuned for different machines never share them.
// The memo is exportable/importable (kopt.Memo), which is what the
// persistent autotune store serializes.
type kernelKey struct {
	spec any
	opt  bool
	pf   bool
	prof string // machine-profile fingerprint
}

var kernelMemo = kopt.NewMemo()

func (t Tuning) cached(spec any, gen func() (asm.Prog, error), dt vec.DType) (asm.Prog, error) {
	prof := machine.Fingerprint(t.Prof)
	key := kernelKey{spec: spec, opt: !t.DisableOptimizer, pf: !t.DisablePrefetch, prof: prof}
	mk := func() kopt.MemoKey {
		return kopt.MemoKey{Spec: fmt.Sprintf("%T%+v", spec, spec), Opt: key.opt, Pf: key.pf, Prof: prof}
	}
	if p, ok := kernelMemo.Get(key, mk); ok {
		return p, nil
	}
	raw, err := gen()
	if err != nil {
		return nil, err
	}
	p := t.optimize(raw, dt)
	kernelMemo.Put(key, mk(), p)
	return p, nil
}

// ExportKernels returns the memoized kernel schedules whose key matches
// the machine-profile fingerprint (empty = all) for store serialization.
func ExportKernels(prof string) []kopt.MemoEntry { return kernelMemo.Export(prof) }

// ImportKernels merges stored kernel schedules into the process memo and
// reports how many were new.
func ImportKernels(entries []kopt.MemoEntry) int { return kernelMemo.Import(entries) }

// KernelMemoStats returns the process kernel memo's lookup counters.
func KernelMemoStats() (hits, misses, importHits uint64) { return kernelMemo.Stats() }

// SwapKernelMemo replaces the process kernel memo and returns the
// previous one — a test hook for simulating a cold process in-process.
func SwapKernelMemo(m *kopt.Memo) *kopt.Memo {
	old := kernelMemo
	kernelMemo = m
	return old
}

// GEMMProblem describes a compact batched GEMM: C = alpha·op(A)·op(B) + beta·C
// over Count matrices.
type GEMMProblem struct {
	DT             vec.DType
	M, N, K        int
	TransA, TransB matrix.Trans
	Alpha, Beta    complex128
	Count          int
}

// Mode returns the two-letter mode string ("NN", "NT", ...).
func (p GEMMProblem) Mode() string { return p.TransA.String() + p.TransB.String() }

// FLOPs returns the useful floating-point work of the whole batch.
func (p GEMMProblem) FLOPs() float64 {
	return p.DT.FlopsPerElem() * float64(p.M) * float64(p.N) * float64(p.K) * float64(p.Count)
}

// maxKernelK caps the reduction length of one generated straight-line
// kernel; longer reductions are split into sequential accumulating chunks
// (the kernels accumulate into C, so chunking is exact). The cap bounds
// both kernel length and the optimizer's O(n²) dependence analysis.
const maxKernelK = 48

// maxTriDim bounds the triangular routines' matrix dimension: their
// packed-triangle kernels have K = panel offset, which is not chunked.
// The paper's domain is small matrices (1–33); 128 leaves generous room.
const maxTriDim = 128

// splitK returns the K-chunk lengths.
func splitK(k int) []int {
	var out []int
	for k > maxKernelK {
		out = append(out, maxKernelK)
		k -= maxKernelK
	}
	return append(out, k)
}

// tile is one kernel invocation footprint within the M×N tiling. A tile
// runs one program per K chunk, each consuming the next packed K range.
type tile struct {
	i0, mc int
	j0, nc int
	progs  []asm.Prog // one per K chunk
}

// GEMMPlan is a generated execution plan for a GEMMProblem.
type GEMMPlan struct {
	P   GEMMProblem
	Tun Tuning

	MTiles, NTiles []int
	KChunks        []int // reduction split into bounded kernel lengths
	PackA          bool  // false = no-packing fast path for A (§4.4)
	PackB          bool  // false = no-packing fast path for B (native executor)
	GroupsPerBatch int   // Batch Counter decision, in interleave groups

	// Labels is an optional pprof label context adopted by pool workers
	// executing this plan. Never set on cached plans — only on the
	// per-call stack copy the engine splices scalars into.
	Labels context.Context

	// RT is the dispatching engine's Runtime (worker pool + buffer
	// pools); nil falls back to the process default. Like Labels, it is
	// stamped onto the per-call stack copy only, never the cached plan.
	RT *Runtime

	tiles []tile
}

// NewGEMMPlan runs the run-time stage for a GEMM problem.
func NewGEMMPlan(p GEMMProblem, tun Tuning) (*GEMMPlan, error) {
	return newGEMMPlan(p, tun, ktmpl.MTiles(p.DT), ktmpl.NTiles(p.DT))
}

// NewGEMMPlanWithKernel builds a plan whose tiling leads with a forced
// main kernel size instead of the CMAR-optimal one — the kernel-size
// ablation that validates Eq. 2/3.
func NewGEMMPlanWithKernel(p GEMMProblem, tun Tuning, mc, nc int) (*GEMMPlan, error) {
	if ktmpl.RegistersNeeded(p.DT, mc, nc) > 32 {
		return nil, fmt.Errorf("core: forced kernel %dx%d exceeds the register file", mc, nc)
	}
	msizes := descending(mc)
	nsizes := descending(nc)
	return newGEMMPlan(p, tun, msizes, nsizes)
}

func descending(n int) []int {
	out := make([]int, 0, n)
	for s := n; s >= 1; s-- {
		out = append(out, s)
	}
	return out
}

func newGEMMPlan(p GEMMProblem, tun Tuning, msizes, nsizes []int) (*GEMMPlan, error) {
	if p.M < 1 || p.N < 1 || p.K < 1 || p.Count < 1 {
		return nil, fmt.Errorf("core: invalid GEMM problem %dx%dx%d count %d", p.M, p.N, p.K, p.Count)
	}
	pl := &GEMMPlan{P: p, Tun: tun}
	pl.MTiles = ktmpl.SplitDim(p.M, msizes)
	pl.NTiles = ktmpl.SplitDim(p.N, nsizes)

	// Pack Selector: A skips packing in non-transposed mode when a single
	// row panel covers M — the native compact order already is the
	// N-shaped panel.
	mainMC := msizes[0]
	pl.PackA = tun.ForcePackA || !(p.TransA == matrix.NoTrans && p.M <= mainMC)

	// B skips packing in transposed mode when a single column panel covers
	// N: B is stored N×K, so block (l, cc) sits at (l·N+cc)·bl — exactly
	// the Z-shaped panel order with j0 = 0 — and the kernels can walk the
	// operand in place. The cycle-model backend keeps packing B (its arena
	// layout predates the fast path); the copy is exact, so both backends
	// stay bit-identical.
	pl.PackB = tun.ForcePackA || !(p.TransB == matrix.Transpose && len(pl.NTiles) == 1)

	// Batch Counter: packed A + packed B + the C tile per group must fit
	// the L1 budget.
	bl := blockLen(p.DT, tun.lanes(p.DT))
	perGroup := (p.M*p.K + p.K*p.N + p.M*p.N) * bl * p.DT.ElemBytes()
	gb := tun.l1() / perGroup
	if gb < 1 {
		gb = 1
	}
	if tun.ForceGroupsPerBatch > 0 {
		gb = tun.ForceGroupsPerBatch
	}
	maxGroups := (p.Count + p.DT.Pack() - 1) / p.DT.Pack()
	if tun.VL > 0 {
		maxGroups = (p.Count + tun.VL - 1) / tun.VL
	}
	if gb > maxGroups {
		gb = maxGroups
	}
	pl.GroupsPerBatch = gb

	// Execution Plan Generator: one optimized kernel per tile and K chunk.
	pl.KChunks = splitK(p.K)
	i0 := 0
	for _, mc := range pl.MTiles {
		j0 := 0
		for _, nc := range pl.NTiles {
			t := tile{i0: i0, mc: mc, j0: j0, nc: nc}
			for _, kc := range pl.KChunks {
				spec := ktmpl.GEMMSpec{DT: p.DT, MC: mc, NC: nc, K: kc, StrideC: p.M, VL: tun.VL}
				prog, err := tun.cached(spec, func() (asm.Prog, error) { return ktmpl.GenGEMM(spec) }, p.DT)
				if err != nil {
					return nil, err
				}
				t.progs = append(t.progs, prog)
			}
			pl.tiles = append(pl.tiles, t)
			j0 += nc
		}
		i0 += mc
	}
	return pl, nil
}

// blockLen returns the element footprint of one compact block.
func blockLen(dt vec.DType, vl int) int {
	if dt.IsComplex() {
		return 2 * vl
	}
	return vl
}

// Instructions returns the total instruction count of all tile kernels —
// a cheap proxy used by tests and the info tool.
func (pl *GEMMPlan) Instructions() int {
	n := 0
	for _, t := range pl.tiles {
		for _, p := range t.progs {
			n += len(p)
		}
	}
	return n
}

// TRSMProblem describes a compact batched TRSM: solve
// op(A)·X = alpha·B (Left) or X·op(A) = alpha·B (Right), overwriting B.
type TRSMProblem struct {
	DT     vec.DType
	M, N   int // B is M×N; A is M×M (Left) or N×N (Right)
	Side   matrix.Side
	Uplo   matrix.Uplo
	TransA matrix.Trans
	Diag   matrix.Diag
	Alpha  complex128
	Count  int
}

// Mode returns the four-letter mode string the paper uses (e.g. "LNLN":
// Left, Non-transposed, Lower, Non-unit).
func (p TRSMProblem) Mode() string {
	return p.Side.String() + p.TransA.String() + p.Uplo.String() + p.Diag.String()
}

// FLOPs returns the useful floating-point work of the whole batch
// (triangular solve: M²·N multiply-adds for Left, N²·M for Right).
func (p TRSMProblem) FLOPs() float64 {
	dim := float64(p.M)
	other := float64(p.N)
	if p.Side == matrix.Right {
		dim, other = other, dim
	}
	return p.DT.FlopsPerElem() / 2 * dim * dim * other * float64(p.Count)
}

// trsmStep is one panel's kernel pair within a column tile.
type trsmStep struct {
	r0, q   int              // panel rows
	rectOff int              // element offset of the panel's rectangular part in the packed triangle
	triOff  int              // element offset of the panel's triangular part
	rect    map[int]asm.Prog // keyed by column-tile width
	tri     map[int]asm.Prog
}

// TRSMPlan is a generated execution plan for a TRSMProblem.
type TRSMPlan struct {
	P   TRSMProblem
	Tun Tuning

	// Canonicalized geometry: the solver always runs Left/Lower/NoTrans.
	MEff, NEff     int  // triangle dim and B width after side reduction
	TransposeB     bool // Right side: solve against Bᵀ
	ReverseB       bool // effective-upper: index-reversed
	PackB          bool // B copied into a canonical buffer
	Panels         []int
	ColTiles       []int
	GroupsPerBatch int

	// Labels: optional pprof label context; see GEMMPlan.Labels.
	Labels context.Context

	// RT: the dispatching engine's Runtime; see GEMMPlan.RT.
	RT *Runtime

	steps []trsmStep
}

// NewTRSMPlan runs the run-time stage for a TRSM problem.
func NewTRSMPlan(p TRSMProblem, tun Tuning) (*TRSMPlan, error) {
	if p.M < 1 || p.N < 1 || p.Count < 1 {
		return nil, fmt.Errorf("core: invalid TRSM problem %dx%d count %d", p.M, p.N, p.Count)
	}
	if p.M > maxTriDim || p.N > maxTriDim {
		return nil, fmt.Errorf("core: TRSM supports dimensions up to %d (got %dx%d); this is a small-matrix library", maxTriDim, p.M, p.N)
	}
	pl := &TRSMPlan{P: p, Tun: tun}

	// Side reduction: X·op(A) = αB  ⇔  op(A)ᵀ·Xᵀ = αBᵀ.
	transA := p.TransA == matrix.Transpose
	pl.MEff, pl.NEff = p.M, p.N
	if p.Side == matrix.Right {
		pl.MEff, pl.NEff = p.N, p.M
		pl.TransposeB = true
		transA = !transA
	}
	upper := p.Uplo == matrix.Upper
	pl.ReverseB = upper != transA // effective triangle is upper

	// Pack Selector: B needs the canonical buffer only when its row order
	// or orientation changes; the plain lower solve runs in place
	// (§4.4's no-packing strategy for LNLN).
	pl.PackB = pl.TransposeB || pl.ReverseB

	// Panels: whole triangle in registers when it fits (M ≤ 5 real,
	// M ≤ 3 complex); otherwise main-kernel-height panels.
	if pl.MEff <= ktmpl.MaxTriM(p.DT) {
		pl.Panels = []int{pl.MEff}
	} else {
		q := ktmpl.TRSMPanel(p.DT)
		sizes := make([]int, 0, q)
		for s := q; s >= 1; s-- {
			sizes = append(sizes, s)
		}
		pl.Panels = ktmpl.SplitDim(pl.MEff, sizes)
	}
	ncSizes := make([]int, 0, 4)
	for s := ktmpl.MainTRSMKernel(p.DT).NC; s >= 1; s-- {
		ncSizes = append(ncSizes, s)
	}
	pl.ColTiles = ktmpl.SplitDim(pl.NEff, ncSizes)

	// Batch Counter: packed triangle + B per group within L1.
	vl := tun.lanes(p.DT)
	bl := blockLen(p.DT, vl)
	triElems := (pl.MEff * (pl.MEff + 1) / 2) * bl
	perGroup := (triElems + pl.MEff*pl.NEff*bl) * p.DT.ElemBytes()
	gb := tun.l1() / perGroup
	if gb < 1 {
		gb = 1
	}
	if tun.ForceGroupsPerBatch > 0 {
		gb = tun.ForceGroupsPerBatch
	}
	pack := p.DT.Pack()
	if tun.VL > 0 {
		pack = tun.VL
	}
	maxGroups := (p.Count + pack - 1) / pack
	if gb > maxGroups {
		gb = maxGroups
	}
	pl.GroupsPerBatch = gb

	// Kernels per panel × column-tile width.
	r0, off := 0, 0
	for _, q := range pl.Panels {
		st := trsmStep{r0: r0, q: q, rectOff: off, triOff: off + q*r0*bl,
			rect: map[int]asm.Prog{}, tri: map[int]asm.Prog{}}
		for _, ct := range dedupe(pl.ColTiles) {
			if r0 > 0 {
				spec := ktmpl.RectSpec{DT: p.DT, MC: q, NC: ct, K: r0,
					StrideC: pl.MEff, StrideX: pl.MEff, VL: tun.VL}
				prog, err := tun.cached(spec, func() (asm.Prog, error) { return ktmpl.GenTRSMRect(spec) }, p.DT)
				if err != nil {
					return nil, err
				}
				st.rect[ct] = prog
			}
			spec := ktmpl.TriSpec{DT: p.DT, M: q, NCols: ct, StrideB: pl.MEff, VL: tun.VL}
			prog, err := tun.cached(spec, func() (asm.Prog, error) { return ktmpl.GenTRSMTri(spec) }, p.DT)
			if err != nil {
				return nil, err
			}
			st.tri[ct] = prog
		}
		pl.steps = append(pl.steps, st)
		off += (q*r0 + q*(q+1)/2) * bl
		r0 += q
	}
	return pl, nil
}

func dedupe(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// Preinstall runs the install-time stage eagerly: it generates and
// schedule-optimizes every Table 1 computing kernel for reductions up to
// maxK, populating the process-wide kernel cache so later plans pay no
// generation latency — the paper's ahead-of-time install-time stage made
// explicit. It returns the number of kernels now cached.
func Preinstall(tun Tuning, maxK int) (int, error) {
	if maxK < 1 {
		maxK = 1
	}
	for _, dt := range vec.DTypes {
		for _, sz := range ktmpl.GEMMKernelSizes(dt) {
			for k := 1; k <= maxK && k <= maxKernelK; k++ {
				spec := ktmpl.GEMMSpec{DT: dt, MC: sz.MC, NC: sz.NC, K: k, StrideC: sz.MC, VL: tun.VL}
				if _, err := tun.cached(spec, func() (asm.Prog, error) { return ktmpl.GenGEMM(spec) }, dt); err != nil {
					return 0, err
				}
			}
		}
	}
	return kernelMemo.Len(), nil
}
