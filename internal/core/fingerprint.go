package core

import (
	"fmt"
	"hash/fnv"

	"iatf/internal/layout"
	"iatf/internal/machine"
	"iatf/internal/vec"
)

// Fingerprint condenses every input that shapes this tuning's kernels
// and plans into one stable, filesystem-safe identifier: the machine-
// profile fingerprint, the tuning and ablation knobs (L1 budget,
// optimizer/prefetch switches, forced batch/pack decisions, lane
// override), the compact-layout format version and the dtype interleave
// table. It keys the persistent autotune store — a store written under
// one fingerprint is only ever replayed by an engine whose tuning
// hashes to the same value.
func (t Tuning) Fingerprint() string {
	prof := machine.Fingerprint(t.Prof)
	h := fnv.New64a()
	fmt.Fprintf(h, "tun1|%s|l1:%d|opt:%t|pf:%t|fg:%d|fpa:%t|vl:%d|layout:%d",
		prof, t.L1Budget, !t.DisableOptimizer, !t.DisablePrefetch,
		t.ForceGroupsPerBatch, t.ForcePackA, t.VL, layout.Version)
	for _, dt := range vec.DTypes {
		fmt.Fprintf(h, "|%s:%d:%d", dt, dt.Pack(), dt.ElemBytes())
	}
	return fmt.Sprintf("%s-t%016x", prof, h.Sum64())
}
