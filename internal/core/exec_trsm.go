package core

import (
	"fmt"

	"iatf/internal/asm"
	"iatf/internal/layout"
	"iatf/internal/machine"
	"iatf/internal/matrix"
	"iatf/internal/pack"
	"iatf/internal/vec"
)

// trsmOffsets lays out the TRSM arena. Lengths are per group (operands)
// or per super-batch slot (packing buffers).
type trsmOffsets struct {
	a, b       int
	lenA, lenB int
	packTri    int
	lenTri     int
	packB      int
	lenPB      int
	total      int
}

func trsmLayout(pl *TRSMPlan, groups int) trsmOffsets {
	p := pl.P
	bl := blockLen(p.DT, pl.Tun.lanes(p.DT))
	var o trsmOffsets
	o.lenA = pl.MEff * pl.MEff * bl
	o.lenB = p.M * p.N * bl
	o.a = 0
	o.b = o.a + groups*o.lenA
	o.packTri = o.b + groups*o.lenB
	o.lenTri = pack.TriLen(bl, pl.Panels)
	o.packB = o.packTri + pl.GroupsPerBatch*o.lenTri
	if pl.PackB {
		o.lenPB = pl.MEff * pl.NEff * bl
	}
	o.total = o.packB + pl.GroupsPerBatch*o.lenPB
	return o
}

// runTRSM executes the plan over an arena holding `groups` groups.
func runTRSM[E vec.Float](pl *TRSMPlan, ar *arena[E], o trsmOffsets, sim *machine.Sim) error {
	p := pl.P
	vm := &asm.VM[E]{Mem: ar.mem}
	if sim != nil {
		vm.Trace = func(in asm.Instr, addr int) { sim.Exec(in, addr) }
	}
	var rec *pack.Recorder
	if sim != nil {
		rec = &pack.Recorder{}
	}
	ctx := &pack.Ctx[E]{Mem: ar.mem, DT: p.DT, VL: ar.vl, Rec: rec}

	transAEff := p.TransA == matrix.Transpose
	if p.Side == matrix.Right {
		transAEff = !transAEff
	}
	tm := pack.NewTriMap(pl.MEff, p.Uplo == matrix.Upper, transAEff, p.Diag == matrix.Unit)

	bl := ar.bl
	gb := pl.GroupsPerBatch
	for sb := 0; sb < ar.groups; sb += gb {
		end := sb + gb
		if end > ar.groups {
			end = ar.groups
		}
		// Packing pass: triangle (reciprocal diagonal) and, for
		// non-canonical modes, the B buffer; then the alpha pre-scale.
		for g := sb; g < end; g++ {
			slot := g - sb
			srcA := pack.Geom{Off: o.a + g*o.lenA, Rows: pl.MEff, Cols: pl.MEff, BlockLen: bl}
			pack.Tri(ctx, srcA, tm, pl.Panels, o.packTri+slot*o.lenTri)

			geomB := pack.Geom{Off: o.b + g*o.lenB, Rows: p.M, Cols: p.N, BlockLen: bl}
			target := geomB
			if pl.PackB {
				pack.BCopy(ctx, geomB, pl.ReverseB, pl.TransposeB, o.packB+slot*o.lenPB)
				target = pack.Geom{Off: o.packB + slot*o.lenPB, Rows: pl.MEff, Cols: pl.NEff, BlockLen: bl}
			}
			if p.Alpha != 1 {
				pack.Scale(ctx, target, real(p.Alpha), imag(p.Alpha))
			}
		}
		replayPacking(sim, rec, ar.vl)

		// Solve pass.
		for g := sb; g < end; g++ {
			slot := g - sb
			triBase := o.packTri + slot*o.lenTri
			targetOff := o.b + g*o.lenB
			if pl.PackB {
				targetOff = o.packB + slot*o.lenPB
			}
			j0 := 0
			for _, ct := range pl.ColTiles {
				colBase := targetOff + j0*pl.MEff*bl
				for _, st := range pl.steps {
					if sim != nil {
						sim.AddCycles(kernelDispatchCycles)
					}
					if st.r0 > 0 {
						vm.P[asm.PA] = triBase + st.rectOff
						vm.P[asm.PX] = colBase
						vm.P[asm.PC] = colBase + st.r0*bl
						if err := vm.Run(st.rect[ct]); err != nil {
							return fmt.Errorf("core: trsm rect panel r0=%d: %w", st.r0, err)
						}
					}
					vm.P[asm.PA] = triBase + st.triOff
					vm.P[asm.PB] = colBase + st.r0*bl
					if err := vm.Run(st.tri[ct]); err != nil {
						return fmt.Errorf("core: trsm tri panel r0=%d: %w", st.r0, err)
					}
				}
				j0 += ct
			}
		}
		// Write back canonical buffers.
		if pl.PackB {
			for g := sb; g < end; g++ {
				slot := g - sb
				geomB := pack.Geom{Off: o.b + g*o.lenB, Rows: p.M, Cols: p.N, BlockLen: bl}
				pack.BUncopy(ctx, geomB, pl.ReverseB, pl.TransposeB, o.packB+slot*o.lenPB)
			}
			replayPacking(sim, rec, ar.vl)
		}
	}
	return nil
}

// ExecTRSM runs the plan functionally (and through the pipeline model
// when sim is non-nil) on compact operands, overwriting B with the
// solution X.
func ExecTRSM[E vec.Float](pl *TRSMPlan, a, b *layout.Compact[E], sim *machine.Sim) error {
	p := pl.P
	if a.Type != p.DT || b.Type != p.DT {
		return fmt.Errorf("core: dtype mismatch")
	}
	if a.Count != p.Count || b.Count != p.Count {
		return fmt.Errorf("core: batch count mismatch")
	}
	if a.Rows != pl.MEff || a.Cols != pl.MEff || b.Rows != p.M || b.Cols != p.N {
		return fmt.Errorf("core: shape mismatch A=%dx%d B=%dx%d for %s %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, p.Mode(), p.M, p.N)
	}
	if pl.Tun.VL != 0 && pl.Tun.VL != p.DT.Pack() {
		return fmt.Errorf("core: ExecTRSM requires the native lane count; use SimTRSM for the %d-lane model", pl.Tun.VL)
	}
	groups := a.Groups()
	o := trsmLayout(pl, groups)
	ar := &arena[E]{mem: make([]E, o.total), vl: p.DT.Pack(), bl: blockLen(p.DT, p.DT.Pack()), groups: groups}
	copy(ar.mem[o.a:], a.Data)
	copy(ar.mem[o.b:], b.Data)
	if err := runTRSM(pl, ar, o, sim); err != nil {
		return err
	}
	copy(b.Data, ar.mem[o.b:o.b+groups*o.lenB])
	return nil
}

// SimTRSM executes the plan on a synthetic arena purely for timing.
func SimTRSM(pl *TRSMPlan, groups int, sim *machine.Sim) (int64, error) {
	p := pl.P
	o := trsmLayout(pl, groups)
	vl := pl.Tun.lanes(p.DT)
	var err error
	if p.DT.ElemBytes() == 8 {
		ar := &arena[float64]{mem: make([]float64, o.total), vl: vl, bl: blockLen(p.DT, vl), groups: groups}
		fillArena(ar.mem)
		err = runTRSM(pl, ar, o, sim)
	} else {
		ar := &arena[float32]{mem: make([]float32, o.total), vl: vl, bl: blockLen(p.DT, vl), groups: groups}
		fillArena(ar.mem)
		err = runTRSM(pl, ar, o, sim)
	}
	if err != nil {
		return 0, err
	}
	return sim.Cycles(), nil
}
