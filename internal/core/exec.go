package core

import (
	"fmt"

	"iatf/internal/asm"
	"iatf/internal/layout"
	"iatf/internal/machine"
	"iatf/internal/matrix"
	"iatf/internal/pack"
	"iatf/internal/vec"
)

// arena is the flat memory one plan execution runs against: the compact
// operands followed by the packing buffers and the scalar parameter block.
// Element offsets double as the simulated address space, so the cycle
// model sees the same spatial locality the plan creates.
type arena[E vec.Float] struct {
	mem    []E
	vl, bl int
	groups int
}

// replayPacking charges the recorded packing traffic to the pipeline
// model: one vector load + one vector store per block copied (the
// "memcpy" packing kernels of §4.4), plus the reciprocal divisions of
// triangle packing.
func replayPacking(sim *machine.Sim, rec *pack.Recorder, vl int) {
	if sim == nil || rec == nil {
		return
	}
	// Issue in waves of eight loads then eight stores so outstanding
	// misses overlap (the memcpy packing loop has full memory-level
	// parallelism).
	type chunk struct{ src, dst int }
	var wave [8]chunk
	n := 0
	flush := func() {
		for i := 0; i < n; i++ {
			sim.Exec(asm.Instr{Op: asm.LDR, D: uint8(i), P: asm.P5}, wave[i].src)
		}
		for i := 0; i < n; i++ {
			sim.Exec(asm.Instr{Op: asm.STR, D: uint8(i), P: asm.P6}, wave[i].dst)
		}
		n = 0
	}
	for _, op := range rec.Ops {
		for off := 0; off < op.Len; off += vl {
			wave[n] = chunk{op.Src + off, op.Dst + off}
			n++
			if n == len(wave) {
				flush()
			}
		}
	}
	flush()
	reg := uint8(0)
	for n := 0; n < rec.Divs; n += vl {
		sim.Exec(asm.Instr{Op: asm.FDIV, D: reg, A: reg, B: reg}, -1)
		reg = (reg + 1) % 8
	}
	rec.Ops = rec.Ops[:0]
	rec.Divs = 0
}

// kernelDispatchCycles models the plan executor's per-kernel-invocation
// bookkeeping (loop control, pointer setup) in the cycle model. The native
// backend pays the real Go equivalent; the paper's generated code pays a
// branch and a handful of scalar ops.
const kernelDispatchCycles = 12

// gemmOffsets lays out the GEMM arena. Lengths are per group.
type gemmOffsets struct {
	a, b, c          int
	lenA, lenB, lenC int
	packA, packB     int
	alpha            int
	total            int
}

func gemmLayout(pl *GEMMPlan, groups int) gemmOffsets {
	p := pl.P
	bl := blockLen(p.DT, pl.Tun.lanes(p.DT))
	var o gemmOffsets
	o.lenA = p.M * p.K * bl
	o.lenB = p.K * p.N * bl
	o.lenC = p.M * p.N * bl
	o.a = 0
	o.b = o.a + groups*o.lenA
	o.c = o.b + groups*o.lenB
	o.packA = o.c + groups*o.lenC
	pa := 0
	if pl.PackA {
		pa = pl.GroupsPerBatch * o.lenA
	}
	o.packB = o.packA + pa
	o.alpha = o.packB + pl.GroupsPerBatch*o.lenB
	o.total = o.alpha + 2
	return o
}

// runGEMM executes the plan over an arena holding `groups` groups,
// optionally feeding every instruction to the pipeline model.
func runGEMM[E vec.Float](pl *GEMMPlan, ar *arena[E], o gemmOffsets, sim *machine.Sim) error {
	p := pl.P
	vm := &asm.VM[E]{Mem: ar.mem}
	if sim != nil {
		vm.Trace = func(in asm.Instr, addr int) { sim.Exec(in, addr) }
	}
	var rec *pack.Recorder
	if sim != nil {
		rec = &pack.Recorder{}
	}
	ctx := &pack.Ctx[E]{Mem: ar.mem, DT: p.DT, VL: ar.vl, Rec: rec}

	// Scalar parameter block.
	ar.mem[o.alpha] = E(real(p.Alpha))
	ar.mem[o.alpha+1] = E(imag(p.Alpha))

	transA := p.TransA == matrix.Transpose
	transB := p.TransB == matrix.Transpose
	aRows, aCols := p.M, p.K
	if transA {
		aRows, aCols = p.K, p.M
	}
	bRows, bCols := p.K, p.N
	if transB {
		bRows, bCols = p.N, p.K
	}

	gb := pl.GroupsPerBatch
	for sb := 0; sb < ar.groups; sb += gb {
		end := sb + gb
		if end > ar.groups {
			end = ar.groups
		}
		// Packing pass for the super-batch.
		for g := sb; g < end; g++ {
			slot := g - sb
			if pl.PackA {
				srcA := pack.Geom{Off: o.a + g*o.lenA, Rows: aRows, Cols: aCols, BlockLen: ar.bl}
				dst := o.packA + slot*o.lenA
				i0 := 0
				for _, mc := range pl.MTiles {
					dst += pack.GEMMA(ctx, srcA, transA, i0, mc, dst)
					i0 += mc
				}
			}
			srcB := pack.Geom{Off: o.b + g*o.lenB, Rows: bRows, Cols: bCols, BlockLen: ar.bl}
			dst := o.packB + slot*o.lenB
			j0 := 0
			for _, nc := range pl.NTiles {
				dst += pack.GEMMB(ctx, srcB, transB, j0, nc, dst)
				j0 += nc
			}
		}
		replayPacking(sim, rec, ar.vl)

		// Compute pass.
		for g := sb; g < end; g++ {
			slot := g - sb
			if p.Beta != 1 {
				geomC := pack.Geom{Off: o.c + g*o.lenC, Rows: p.M, Cols: p.N, BlockLen: ar.bl}
				pack.Scale(ctx, geomC, real(p.Beta), imag(p.Beta))
				replayPacking(sim, rec, ar.vl)
			}
			for _, t := range pl.tiles {
				kOff := 0
				for ci, kc := range pl.KChunks {
					if sim != nil {
						sim.AddCycles(kernelDispatchCycles)
					}
					if pl.PackA {
						vm.P[asm.PA] = o.packA + slot*o.lenA + (t.i0*p.K+kOff*t.mc)*ar.bl
					} else {
						vm.P[asm.PA] = o.a + g*o.lenA + kOff*p.M*ar.bl
					}
					vm.P[asm.PB] = o.packB + slot*o.lenB + (t.j0*p.K+kOff*t.nc)*ar.bl
					vm.P[asm.PC] = o.c + g*o.lenC + (t.j0*p.M+t.i0)*ar.bl
					vm.P[asm.PAlpha] = o.alpha
					if err := vm.Run(t.progs[ci]); err != nil {
						return fmt.Errorf("core: tile (%d,%d) chunk %d: %w", t.i0, t.j0, ci, err)
					}
					kOff += kc
				}
			}
		}
	}
	return nil
}

// ExecGEMM runs the plan functionally (and, when sim is non-nil, through
// the pipeline model) on compact operands with the native interleave
// factor. C is updated in place.
func ExecGEMM[E vec.Float](pl *GEMMPlan, a, b, c *layout.Compact[E], sim *machine.Sim) error {
	p := pl.P
	if a.Type != p.DT || b.Type != p.DT || c.Type != p.DT {
		return fmt.Errorf("core: dtype mismatch")
	}
	if a.Count != p.Count || b.Count != p.Count || c.Count != p.Count {
		return fmt.Errorf("core: batch count mismatch")
	}
	wantAR, wantAC := p.M, p.K
	if p.TransA == matrix.Transpose {
		wantAR, wantAC = p.K, p.M
	}
	wantBR, wantBC := p.K, p.N
	if p.TransB == matrix.Transpose {
		wantBR, wantBC = p.N, p.K
	}
	if a.Rows != wantAR || a.Cols != wantAC || b.Rows != wantBR || b.Cols != wantBC ||
		c.Rows != p.M || c.Cols != p.N {
		return fmt.Errorf("core: shape mismatch A=%dx%d B=%dx%d C=%dx%d for %dx%dx%d %s",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols, p.M, p.N, p.K, p.Mode())
	}
	if pl.Tun.VL != 0 && pl.Tun.VL != p.DT.Pack() {
		return fmt.Errorf("core: ExecGEMM requires the native lane count; use SimGEMM for the %d-lane model", pl.Tun.VL)
	}

	groups := a.Groups()
	o := gemmLayout(pl, groups)
	ar := &arena[E]{mem: make([]E, o.total), vl: p.DT.Pack(), bl: blockLen(p.DT, p.DT.Pack()), groups: groups}
	copy(ar.mem[o.a:], a.Data)
	copy(ar.mem[o.b:], b.Data)
	copy(ar.mem[o.c:], c.Data)
	if err := runGEMM(pl, ar, o, sim); err != nil {
		return err
	}
	copy(c.Data, ar.mem[o.c:o.c+groups*o.lenC])
	return nil
}

// SimGEMM executes the plan on a synthetic random arena purely for
// timing, returning the pipeline model's cycles. It supports lane-count
// overrides (the MKL-compact AVX-512 model) and simulates `groups`
// interleave groups.
func SimGEMM(pl *GEMMPlan, groups int, sim *machine.Sim) (int64, error) {
	p := pl.P
	o := gemmLayout(pl, groups)
	vl := pl.Tun.lanes(p.DT)
	run := func(mem64 bool) error {
		if mem64 {
			ar := &arena[float64]{mem: make([]float64, o.total), vl: vl, bl: blockLen(p.DT, vl), groups: groups}
			fillArena(ar.mem)
			return runGEMM(pl, ar, o, sim)
		}
		ar := &arena[float32]{mem: make([]float32, o.total), vl: vl, bl: blockLen(p.DT, vl), groups: groups}
		fillArena(ar.mem)
		return runGEMM(pl, ar, o, sim)
	}
	if err := run(p.DT.ElemBytes() == 8); err != nil {
		return 0, err
	}
	return sim.Cycles(), nil
}

// fillArena writes a cheap nonzero pattern (values in (0,1)) so simulated
// kernels never divide by zero or denormal-trap.
func fillArena[E vec.Float](mem []E) {
	x := 0.5
	for i := range mem {
		x = x*0.9 + 0.05
		if x > 0.95 {
			x = 0.3
		}
		mem[i] = E(x)
	}
}
