package core

import (
	"fmt"

	"iatf/internal/layout"
	"iatf/internal/matrix"
	"iatf/internal/pack"
	"iatf/internal/vec"
)

// Pack-once operand reuse: the packed image an operand takes inside a
// super-batch slot is a pure function of (operand contents, plan
// geometry) — per-group, the slot layouts written by npackA/npackB/
// npackTri are identical for every slot. A prepacked buffer therefore
// simply stores every group's packed image back to back, indexed by the
// group number instead of the slot number, and the executors jump
// straight to the kernel loop. Scalars never enter the packed data
// (alpha/beta apply to B/C at compute time; the reciprocal diagonal is a
// plan property, chosen by which Prepack* routine ran), so one prepacked
// image serves any scalar combination.

// PrepackALen returns the element length of a full prepacked A for
// `groups` interleave groups, or 0 when the plan's A no-packing fast
// path makes prepacking pointless.
func (pl *GEMMPlan) PrepackALen(groups int) int {
	if !pl.PackA {
		return 0
	}
	bl := blockLen(pl.P.DT, pl.P.DT.Pack())
	return groups * pl.P.M * pl.P.K * bl
}

// PrepackBLen is PrepackALen for the B operand.
func (pl *GEMMPlan) PrepackBLen(groups int) int {
	if !pl.PackB {
		return 0
	}
	bl := blockLen(pl.P.DT, pl.P.DT.Pack())
	return groups * pl.P.K * pl.P.N * bl
}

// PrepackGEMMA packs every group of A into dst in the executor's
// N-shaped row-panel order. dst must hold PrepackALen(a.Groups())
// elements.
func PrepackGEMMA[E vec.Float](pl *GEMMPlan, a *layout.Compact[E], dst []E) error {
	p := pl.P
	if !pl.PackA {
		return fmt.Errorf("core: plan uses the A no-packing fast path; nothing to prepack")
	}
	want := pl.PrepackALen(a.Groups())
	if len(dst) < want {
		return fmt.Errorf("core: prepack A buffer has %d elements, need %d", len(dst), want)
	}
	bl := blockLen(p.DT, p.DT.Pack())
	lenA := p.M * p.K * bl
	trans := p.TransA == matrix.Transpose
	for g := 0; g < a.Groups(); g++ {
		npackA(a.Data[g*lenA:(g+1)*lenA], a.Rows, trans, pl.MTiles, p.K, bl, dst[g*lenA:])
	}
	return nil
}

// PrepackGEMMB packs every group of B into dst in the executor's
// Z-shaped column-panel order. dst must hold PrepackBLen(b.Groups())
// elements.
func PrepackGEMMB[E vec.Float](pl *GEMMPlan, b *layout.Compact[E], dst []E) error {
	p := pl.P
	if !pl.PackB {
		return fmt.Errorf("core: plan uses the B no-packing fast path; nothing to prepack")
	}
	want := pl.PrepackBLen(b.Groups())
	if len(dst) < want {
		return fmt.Errorf("core: prepack B buffer has %d elements, need %d", len(dst), want)
	}
	bl := blockLen(p.DT, p.DT.Pack())
	lenB := p.K * p.N * bl
	trans := p.TransB == matrix.Transpose
	for g := 0; g < b.Groups(); g++ {
		npackB(b.Data[g*lenB:(g+1)*lenB], b.Rows, trans, pl.NTiles, p.K, bl, dst[g*lenB:])
	}
	return nil
}

// PrepackTriLen returns the element length of a full prepacked triangle
// for `groups` interleave groups.
func (pl *TRSMPlan) PrepackTriLen(groups int) int {
	bl := blockLen(pl.P.DT, pl.P.DT.Pack())
	return groups * pack.TriLen(bl, pl.Panels)
}

// PrepackTRSMTri packs every group of the triangle into dst with the
// reciprocal diagonal the TRSM solve kernels consume. dst must hold
// PrepackTriLen(a.Groups()) elements.
func PrepackTRSMTri[E vec.Float](pl *TRSMPlan, a *layout.Compact[E], dst []E) error {
	p := pl.P
	want := pl.PrepackTriLen(a.Groups())
	if len(dst) < want {
		return fmt.Errorf("core: prepack tri buffer has %d elements, need %d", len(dst), want)
	}
	vl := p.DT.Pack()
	bl := blockLen(p.DT, vl)
	lenA := pl.MEff * pl.MEff * bl
	lenTri := pack.TriLen(bl, pl.Panels)
	transAEff := p.TransA == matrix.Transpose
	if p.Side == matrix.Right {
		transAEff = !transAEff
	}
	effUpper := (p.Uplo == matrix.Upper) != transAEff
	for g := 0; g < a.Groups(); g++ {
		npackTri(a.Data[g*lenA:(g+1)*lenA], pl.MEff, effUpper, transAEff,
			p.Diag == matrix.Unit, true, pl.Panels, p.DT.IsComplex(), vl, bl, dst[g*lenTri:])
	}
	return nil
}

// PrepackTriLen is the TRMM twin of TRSMPlan.PrepackTriLen.
func (pl *TRMMPlan) PrepackTriLen(groups int) int {
	bl := blockLen(pl.P.DT, pl.P.DT.Pack())
	return groups * pack.TriLen(bl, pl.Panels)
}

// PrepackTRMMTri packs every group of the triangle into dst with the
// true diagonal the TRMM multiply kernels consume.
func PrepackTRMMTri[E vec.Float](pl *TRMMPlan, a *layout.Compact[E], dst []E) error {
	p := pl.P
	want := pl.PrepackTriLen(a.Groups())
	if len(dst) < want {
		return fmt.Errorf("core: prepack tri buffer has %d elements, need %d", len(dst), want)
	}
	vl := p.DT.Pack()
	bl := blockLen(p.DT, vl)
	lenA := pl.MEff * pl.MEff * bl
	lenTri := pack.TriLen(bl, pl.Panels)
	transAEff := p.TransA == matrix.Transpose
	if p.Side == matrix.Right {
		transAEff = !transAEff
	}
	effUpper := (p.Uplo == matrix.Upper) != transAEff
	for g := 0; g < a.Groups(); g++ {
		npackTri(a.Data[g*lenA:(g+1)*lenA], pl.MEff, effUpper, transAEff,
			p.Diag == matrix.Unit, false, pl.Panels, p.DT.IsComplex(), vl, bl, dst[g*lenTri:])
	}
	return nil
}
