package core

import (
	"fmt"

	"iatf/internal/kernels"
	"iatf/internal/layout"
	"iatf/internal/vec"
)

// Compact batched factorizations: every matrix of the batch is factored
// in place, vectorized across interleave lanes. Unlike the level-3
// routines these need no packing or tiling plan — the matrices are
// L1-resident and each group is one kernel call — so the "plan" is just
// the worker split.

// factorKind selects the factorization.
type factorKind int

const (
	factorLU factorKind = iota
	factorCholesky
)

// ExecFactorNative factors every matrix of the compact batch in place
// and returns per-matrix info codes (0 = success; k+1 = first failing
// pivot column, as in LAPACK). Cholesky is real-only and uses the lower
// triangle. workers <= 0 means auto (GOMAXPROCS). rt selects the worker
// pool the split fans out on; nil uses the process default — the factor
// executors take no plan, so the Runtime rides as a parameter instead of
// a stamped field.
func ExecFactorNative[E vec.Float](rt *Runtime, kind factorKind, a *layout.Compact[E], workers int) ([]int, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("core: factorization requires square matrices, got %dx%d", a.Rows, a.Cols)
	}
	if kind == factorCholesky && a.Type.IsComplex() {
		return nil, fmt.Errorf("core: compact Cholesky supports real types only")
	}
	n := a.Rows
	vl := a.Type.Pack()
	groups := a.Groups()
	groupLen := a.GroupLen()
	cplx := a.Type.IsComplex()
	info := make([]int, groups*vl)

	worker := func(lo, hi int) {
		for g := lo; g < hi; g++ {
			grp := a.Data[g*groupLen : (g+1)*groupLen]
			gi := info[g*vl : (g+1)*vl]
			switch {
			case kind == factorCholesky:
				kernels.Cholesky(grp, n, vl, gi)
			case cplx:
				kernels.LUCplx(grp, n, vl, gi)
			default:
				kernels.LU(grp, n, vl, gi)
			}
		}
	}
	rt.or().Sched.Run(groups, workers, 0, worker)
	return info[:a.Count], nil
}

// LUKind and CholeskyKind expose the factor kinds to the public API.
const (
	LUKind       = factorLU
	CholeskyKind = factorCholesky
)

// Pivots holds the partial-pivoting record of a pivoted LU factorization:
// for matrix lane v and column k, row Data[g·n·vl + k·vl + lane] was
// swapped into position k.
type Pivots struct {
	N      int
	VL     int
	Groups int
	Data   []int32
}

// ExecLUPivNative factors every matrix with partial pivoting, returning
// the pivot record and per-matrix info codes. rt: see ExecFactorNative.
func ExecLUPivNative[E vec.Float](rt *Runtime, a *layout.Compact[E], workers int) (*Pivots, []int, error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("core: LU requires square matrices, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	vl := a.Type.Pack()
	groups := a.Groups()
	groupLen := a.GroupLen()
	cplx := a.Type.IsComplex()
	info := make([]int, groups*vl)
	piv := &Pivots{N: n, VL: vl, Groups: groups, Data: make([]int32, groups*n*vl)}

	worker := func(lo, hi int) {
		for g := lo; g < hi; g++ {
			kernels.LUPiv(a.Data[g*groupLen:(g+1)*groupLen], n, vl, cplx,
				piv.Data[g*n*vl:(g+1)*n*vl], info[g*vl:(g+1)*vl])
		}
	}
	rt.or().Sched.Run(groups, workers, 0, worker)
	return piv, info[:a.Count], nil
}

// ExecLUPivSolveNative applies the pivot permutation to B and solves
// L·U·X = P·B in place using the native triangular kernels via TRSM plans.
// rt: see ExecFactorNative.
func ExecLUPivSolveNative[E vec.Float](rt *Runtime, a *layout.Compact[E], piv *Pivots, b *layout.Compact[E], workers int) error {
	if piv == nil || piv.N != a.Rows || piv.Groups != a.Groups() {
		return fmt.Errorf("core: pivot record does not match the factorization")
	}
	if b.Rows != a.Rows || b.Count != a.Count {
		return fmt.Errorf("core: B shape mismatch")
	}
	vl := a.Type.Pack()
	cplx := a.Type.IsComplex()
	groupLen := b.GroupLen()
	worker := func(lo, hi int) {
		for g := lo; g < hi; g++ {
			kernels.ApplyPivots(b.Data[g*groupLen:(g+1)*groupLen], b.Rows, b.Cols, vl, cplx,
				piv.Data[g*piv.N*vl:(g+1)*piv.N*vl])
		}
	}
	rt.or().Sched.Run(b.Groups(), workers, 0, worker)
	return nil
}
