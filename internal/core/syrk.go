package core

import (
	"context"
	"fmt"

	"iatf/internal/bufpool"
	"iatf/internal/kernels"
	"iatf/internal/ktmpl"
	"iatf/internal/layout"
	"iatf/internal/matrix"
	"iatf/internal/vec"
)

// Compact batched SYRK — C := alpha·op(A)·op(A)ᵀ + beta·C touching only
// one triangle of C — completes the level-3 story alongside GEMM, TRSM
// and TRMM. It reuses the GEMM machinery wholesale: the A operand is
// packed once as row panels (N-shape) and once transposed as column
// panels (Z-shape), the off-diagonal triangle tiles run the plain GEMM
// kernels, and square diagonal tiles compute into a scratch tile whose
// triangle is merged. Native backend.

// SYRKProblem describes a compact batched SYRK.
type SYRKProblem struct {
	DT          vec.DType
	N, K        int // C is N×N; op(A) is N×K
	Uplo        matrix.Uplo
	Trans       matrix.Trans
	Alpha, Beta complex128
	Count       int
}

// FLOPs returns the useful floating-point work of the whole batch
// (half a GEMM: only one triangle is produced).
func (p SYRKProblem) FLOPs() float64 {
	return p.DT.FlopsPerElem() / 2 * float64(p.N) * float64(p.N+1) * float64(p.K) * float64(p.Count)
}

// SYRKPlan is the generated execution plan.
type SYRKPlan struct {
	P   SYRKProblem
	Tun Tuning

	Tiles          []int // symmetric tile grid on both C dimensions
	KChunks        []int
	GroupsPerBatch int

	// Labels: optional pprof label context; see GEMMPlan.Labels.
	Labels context.Context

	// RT: per-engine execution resources; see GEMMPlan.RT.
	RT *Runtime
}

// syrkTileGrid returns the symmetric tile sizes: the largest kernel size
// valid as both mc and nc for the type.
func syrkTileGrid(dt vec.DType) []int {
	m := ktmpl.MainGEMMKernel(dt)
	q := m.MC
	if m.NC < q {
		q = m.NC
	}
	return descending(q)
}

// NewSYRKPlan runs the run-time stage for a SYRK problem.
func NewSYRKPlan(p SYRKProblem, tun Tuning) (*SYRKPlan, error) {
	if p.N < 1 || p.K < 1 || p.Count < 1 {
		return nil, fmt.Errorf("core: invalid SYRK problem N=%d K=%d count %d", p.N, p.K, p.Count)
	}
	pl := &SYRKPlan{P: p, Tun: tun}
	pl.Tiles = ktmpl.SplitDim(p.N, syrkTileGrid(p.DT))
	pl.KChunks = splitK(p.K)

	bl := blockLen(p.DT, tun.lanes(p.DT))
	perGroup := (2*p.N*p.K + p.N*p.N) * bl * p.DT.ElemBytes()
	gb := tun.l1() / perGroup
	if gb < 1 {
		gb = 1
	}
	if tun.ForceGroupsPerBatch > 0 {
		gb = tun.ForceGroupsPerBatch
	}
	maxGroups := (p.Count + p.DT.Pack() - 1) / p.DT.Pack()
	if gb > maxGroups {
		gb = maxGroups
	}
	pl.GroupsPerBatch = gb
	return pl, nil
}

// ExecSYRKNative runs the plan with the native kernels, updating the
// requested triangle of C in place.
func ExecSYRKNative[E vec.Float](pl *SYRKPlan, a, c *layout.Compact[E]) error {
	return ExecSYRKNativeParallel(pl, a, c, 1)
}

// ExecSYRKNativeParallel is ExecSYRKNative with worker-parallel groups.
// workers <= 0 means auto (GOMAXPROCS).
func ExecSYRKNativeParallel[E vec.Float](pl *SYRKPlan, a, c *layout.Compact[E], workers int) error {
	p := pl.P
	if pl.Tun.VL != 0 && pl.Tun.VL != p.DT.Pack() {
		return fmt.Errorf("core: native execution requires the native lane count")
	}
	if a.Count != p.Count || c.Count != p.Count {
		return fmt.Errorf("core: batch count mismatch")
	}
	wantAR, wantAC := p.N, p.K
	if p.Trans == matrix.Transpose {
		wantAR, wantAC = p.K, p.N
	}
	if a.Rows != wantAR || a.Cols != wantAC || c.Rows != p.N || c.Cols != p.N {
		return fmt.Errorf("core: shape mismatch A=%dx%d C=%dx%d", a.Rows, a.Cols, c.Rows, c.Cols)
	}
	pl.RT.or().Sched.RunLabeled(pl.Labels, a.Groups(), workers, pl.GroupsPerBatch, func(lo, hi int) {
		syrkWorker(pl, a, c, lo, hi)
	})
	return nil
}

func syrkWorker[E vec.Float](pl *SYRKPlan, a, c *layout.Compact[E], gLo, gHi int) {
	p := pl.P
	vl := p.DT.Pack()
	bl := blockLen(p.DT, vl)
	cplx := p.DT.IsComplex()
	lenA := p.N * p.K * bl
	lenC := p.N * p.N * bl
	trans := p.Trans == matrix.Transpose
	aRows := a.Rows

	gb := pl.GroupsPerBatch
	rt := pl.RT.or()
	bufA := bufpool.Get[E](rt.Bufs, gb*lenA)  // N-shape row panels
	bufAT := bufpool.Get[E](rt.Bufs, gb*lenA) // Z-shape column panels of op(A)ᵀ
	bufS := bufpool.Get[E](rt.Bufs, 4*4*bl)   // one diagonal tile
	defer bufpool.Put(rt.Bufs, bufA)
	defer bufpool.Put(rt.Bufs, bufAT)
	defer bufpool.Put(rt.Bufs, bufS)
	packA, packAT, scratch := bufA.Slice(), bufAT.Slice(), bufS.Slice()
	alphaRe, alphaIm := E(real(p.Alpha)), E(imag(p.Alpha))
	upper := p.Uplo == matrix.Upper

	for sb := gLo; sb < gHi; sb += gb {
		end := sb + gb
		if end > gHi {
			end = gHi
		}
		for g := sb; g < end; g++ {
			slot := g - sb
			src := a.Data[g*a.GroupLen():]
			// op(A) row panels (N-shape) and op(A)ᵀ column panels
			// (Z-shape): for op(A)ᵀ the packed "B" operand reads op(A)
			// with the opposite transposition.
			dstA := packA[slot*lenA:]
			dstT := packAT[slot*lenA:]
			i0, offA, offT := 0, 0, 0
			for _, q := range pl.Tiles {
				npackAPanel(src, aRows, trans, i0, q, p.K, bl, dstA[offA:])
				offA += q * p.K * bl
				npackBPanel(src, aRows, !trans, i0, q, p.K, bl, dstT[offT:])
				offT += q * p.K * bl
				i0 += q
			}
		}
		for g := sb; g < end; g++ {
			slot := g - sb
			cg := c.Data[g*lenC : (g+1)*lenC]
			// Beta pass over the requested triangle only.
			scaleTriangle(cg, p.N, upper, cplx, vl, real(p.Beta), imag(p.Beta))

			i0 := 0
			for ti, mc := range pl.Tiles {
				j0 := 0
				for tj, nc := range pl.Tiles {
					lowerTile := j0 < i0
					upperTile := j0 > i0
					diag := ti == tj
					want := diag || (upper && upperTile) || (!upper && lowerTile)
					if !want {
						j0 += nc
						continue
					}
					kOff := 0
					for _, kc := range pl.KChunks {
						pa := packA[slot*lenA+(i0*p.K+kOff*mc)*bl:]
						pb := packAT[slot*lenA+(j0*p.K+kOff*nc)*bl:]
						if diag {
							// Compute the full square tile into scratch,
							// then merge its triangle.
							first := kOff == 0
							if cplx {
								kernels.GEMMCplx(pa, pb, scratch, mc, nc, kc, mc, vl, alphaRe, alphaIm, first)
							} else {
								kernels.GEMM(pa, pb, scratch, mc, nc, kc, mc, vl, alphaRe, first)
							}
						} else {
							cb := cg[(j0*p.N+i0)*bl:]
							if cplx {
								kernels.GEMMCplx(pa, pb, cb, mc, nc, kc, p.N, vl, alphaRe, alphaIm, false)
							} else {
								kernels.GEMM(pa, pb, cb, mc, nc, kc, p.N, vl, alphaRe, false)
							}
						}
						kOff += kc
					}
					if diag {
						mergeTriangle(cg, scratch, p.N, i0, mc, upper, cplx, vl)
					}
					j0 += nc
				}
				i0 += mc
			}
		}
	}
}

// npackAPanel packs a single N-shape panel at row offset i0.
func npackAPanel[E vec.Float](src []E, rows int, trans bool, i0, mc, k, bl int, dst []E) {
	cur := 0
	if !trans {
		run := mc * bl
		s := i0 * bl
		for l := 0; l < k; l++ {
			copy(dst[cur:cur+run], src[s:s+run])
			s += rows * bl
			cur += run
		}
		return
	}
	colStride := rows * bl
	base := i0 * colStride
	for l := 0; l < k; l++ {
		s := base + l*bl
		for r := 0; r < mc; r++ {
			copy(dst[cur:cur+bl], src[s:s+bl])
			s += colStride
			cur += bl
		}
	}
}

// npackBPanel packs a single Z-shape panel at column offset j0.
func npackBPanel[E vec.Float](src []E, rows int, trans bool, j0, nc, k, bl int, dst []E) {
	cur := 0
	if !trans {
		colStride := rows * bl
		base := j0 * colStride
		for l := 0; l < k; l++ {
			s := base + l*bl
			for cc := 0; cc < nc; cc++ {
				copy(dst[cur:cur+bl], src[s:s+bl])
				s += colStride
				cur += bl
			}
		}
		return
	}
	run := nc * bl
	s := j0 * bl
	for l := 0; l < k; l++ {
		copy(dst[cur:cur+run], src[s:s+run])
		s += rows * bl
		cur += run
	}
}

// scaleTriangle scales the uplo triangle (with diagonal) of an N×N group
// by a scalar.
func scaleTriangle[E vec.Float](cg []E, n int, upper, cplx bool, vl int, re, im float64) {
	if re == 1 && im == 0 {
		return
	}
	bl := vl
	if cplx {
		bl = 2 * vl
	}
	for j := 0; j < n; j++ {
		lo, hi := j, n // lower: rows j..n-1
		if upper {
			lo, hi = 0, j+1
		}
		off := (j*n + lo) * bl
		nscale(cg[off:], hi-lo, cplx, vl, re, im)
	}
}

// mergeTriangle adds the triangle of a computed diagonal scratch tile
// into C (the scratch already carries alpha; C already carries beta·C).
func mergeTriangle[E vec.Float](cg, scratch []E, n, i0, q int, upper, cplx bool, vl int) {
	bl := vl
	if cplx {
		bl = 2 * vl
	}
	for cc := 0; cc < q; cc++ {
		for r := 0; r < q; r++ {
			inTri := r >= cc
			if upper {
				inTri = r <= cc
			}
			if !inTri {
				continue
			}
			dst := ((i0+cc)*n + i0 + r) * bl
			src := (cc*q + r) * bl
			for e := 0; e < bl; e++ {
				cg[dst+e] += scratch[src+e]
			}
		}
	}
}
