package core

import (
	"math/rand"
	"testing"

	"iatf/internal/matrix"
	"iatf/internal/vec"
)

// Prepacked operands and the streaming pack/compute pipeline are pure
// reorderings of the same packing kernels: their results must match the
// always-packing, never-pipelining VM backend bit for bit, for every
// worker count.

func TestPrepackedGEMMParity(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	for _, dt := range vec.DTypes {
		for _, mnk := range [][3]int{{4, 4, 4}, {7, 6, 5}, {15, 15, 15}} {
			for _, mode := range [][2]matrix.Trans{
				{matrix.NoTrans, matrix.NoTrans},
				// NT drives the B no-packing fast path when N fits one tile.
				{matrix.NoTrans, matrix.Transpose},
				{matrix.Transpose, matrix.Transpose},
			} {
				p := GEMMProblem{DT: dt, M: mnk[0], N: mnk[1], K: mnk[2],
					TransA: mode[0], TransB: mode[1], Alpha: 1.5, Beta: 1, Count: 21}
				if dt.Real() == vec.S {
					prepackedGEMMParity[float32](t, rng, p)
				} else {
					prepackedGEMMParity[float64](t, rng, p)
				}
			}
		}
	}
}

func prepackedGEMMParity[E vec.Float](t *testing.T, rng *rand.Rand, p GEMMProblem) {
	t.Helper()
	// ForceGroupsPerBatch=1 maximizes the chunk count so every worker
	// split takes the double-buffered pipeline, not the sync fallback.
	tun := DefaultTuning()
	tun.ForceGroupsPerBatch = 1
	pl, err := NewGEMMPlan(p, tun)
	if err != nil {
		t.Fatal(err)
	}
	ar, ac := p.M, p.K
	if p.TransA == matrix.Transpose {
		ar, ac = p.K, p.M
	}
	br, bc := p.K, p.N
	if p.TransB == matrix.Transpose {
		br, bc = p.N, p.K
	}
	a := randCompact[E](rng, p.DT, p.Count, ar, ac)
	b := randCompact[E](rng, p.DT, p.Count, br, bc)
	c := randCompact[E](rng, p.DT, p.Count, p.M, p.N)
	want := c.Clone()
	if err := ExecGEMM(pl, a, b, want, nil); err != nil {
		t.Fatal(err)
	}

	preA := make([]E, pl.PrepackALen(a.Groups()))
	preB := make([]E, pl.PrepackBLen(b.Groups()))
	if len(preA) > 0 {
		if err := PrepackGEMMA(pl, a, preA); err != nil {
			t.Fatal(err)
		}
	} else {
		preA = nil
	}
	if len(preB) > 0 {
		if err := PrepackGEMMB(pl, b, preB); err != nil {
			t.Fatal(err)
		}
	} else {
		preB = nil
	}

	for _, workers := range []int{1, 3} {
		// Pipelined pack-per-call path.
		got := c.Clone()
		if err := ExecGEMMNativeParallel(pl, a, b, got, workers); err != nil {
			t.Fatal(err)
		}
		diffCompact(t, "pipelined", p.Mode(), workers, want.Data, got.Data)

		// Prepacked path: the pack phase is skipped entirely.
		got = c.Clone()
		if err := ExecGEMMNativePrepacked(pl, a, b, got, preA, preB, workers); err != nil {
			t.Fatal(err)
		}
		diffCompact(t, "prepacked", p.Mode(), workers, want.Data, got.Data)
	}
}

func diffCompact[E vec.Float](t *testing.T, variant, mode string, workers int, want, got []E) {
	t.Helper()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s %s workers=%d: diverges at element %d: want %v got %v",
				variant, mode, workers, i, want[i], got[i])
		}
	}
}

func TestPrepackedTRSMParity(t *testing.T) {
	rng := rand.New(rand.NewSource(312))
	for _, dt := range vec.DTypes {
		for _, mode := range []struct {
			side matrix.Side
			uplo matrix.Uplo
			ta   matrix.Trans
			diag matrix.Diag
		}{
			{matrix.Left, matrix.Lower, matrix.NoTrans, matrix.NonUnit},
			{matrix.Left, matrix.Upper, matrix.NoTrans, matrix.NonUnit},
			{matrix.Right, matrix.Lower, matrix.Transpose, matrix.Unit},
		} {
			p := TRSMProblem{DT: dt, M: 9, N: 6, Side: mode.side,
				Uplo: mode.uplo, TransA: mode.ta, Diag: mode.diag, Alpha: 1, Count: 17}
			if dt.Real() == vec.S {
				prepackedTRSMParity[float32](t, rng, p)
			} else {
				prepackedTRSMParity[float64](t, rng, p)
			}
		}
	}
}

func prepackedTRSMParity[E vec.Float](t *testing.T, rng *rand.Rand, p TRSMProblem) {
	t.Helper()
	tun := DefaultTuning()
	tun.ForceGroupsPerBatch = 1
	pl, err := NewTRSMPlan(p, tun)
	if err != nil {
		t.Fatal(err)
	}
	a := randCompact[E](rng, p.DT, p.Count, pl.MEff, pl.MEff)
	for v := 0; v < p.Count; v++ {
		for i := 0; i < pl.MEff; i++ {
			re, im := a.At(v, i, i)
			a.Set(v, i, i, re+2, im)
		}
	}
	b := randCompact[E](rng, p.DT, p.Count, p.M, p.N)
	want := b.Clone()
	if err := ExecTRSM(pl, a, want, nil); err != nil {
		t.Fatal(err)
	}

	preTri := make([]E, pl.PrepackTriLen(a.Groups()))
	if err := PrepackTRSMTri(pl, a, preTri); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 3} {
		got := b.Clone()
		if err := ExecTRSMNativeParallel(pl, a, got, workers); err != nil {
			t.Fatal(err)
		}
		diffCompact(t, "pipelined", p.Mode(), workers, want.Data, got.Data)

		got = b.Clone()
		if err := ExecTRSMNativePrepacked(pl, a, got, preTri, workers); err != nil {
			t.Fatal(err)
		}
		diffCompact(t, "prepacked", p.Mode(), workers, want.Data, got.Data)
	}
}

func TestPrepackedTRMMParity(t *testing.T) {
	rng := rand.New(rand.NewSource(313))
	for _, dt := range vec.DTypes {
		for _, mode := range []struct {
			side matrix.Side
			uplo matrix.Uplo
			ta   matrix.Trans
			diag matrix.Diag
		}{
			{matrix.Left, matrix.Lower, matrix.NoTrans, matrix.NonUnit},
			{matrix.Left, matrix.Upper, matrix.Transpose, matrix.Unit},
		} {
			p := TRMMProblem{DT: dt, M: 9, N: 6, Side: mode.side,
				Uplo: mode.uplo, TransA: mode.ta, Diag: mode.diag, Alpha: 2, Count: 17}
			if dt.Real() == vec.S {
				prepackedTRMMParity[float32](t, rng, p)
			} else {
				prepackedTRMMParity[float64](t, rng, p)
			}
		}
	}
}

func prepackedTRMMParity[E vec.Float](t *testing.T, rng *rand.Rand, p TRMMProblem) {
	t.Helper()
	tun := DefaultTuning()
	tun.ForceGroupsPerBatch = 1
	pl, err := NewTRMMPlan(p, tun)
	if err != nil {
		t.Fatal(err)
	}
	a := randCompact[E](rng, p.DT, p.Count, pl.MEff, pl.MEff)
	b := randCompact[E](rng, p.DT, p.Count, p.M, p.N)
	want := b.Clone()
	if err := ExecTRMM(pl, a, want, nil); err != nil {
		t.Fatal(err)
	}

	preTri := make([]E, pl.PrepackTriLen(a.Groups()))
	if err := PrepackTRMMTri(pl, a, preTri); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 3} {
		got := b.Clone()
		if err := ExecTRMMNativeParallel(pl, a, got, workers); err != nil {
			t.Fatal(err)
		}
		diffCompact(t, "pipelined", p.Mode(), workers, want.Data, got.Data)

		got = b.Clone()
		if err := ExecTRMMNativePrepacked(pl, a, got, preTri, workers); err != nil {
			t.Fatal(err)
		}
		diffCompact(t, "prepacked", p.Mode(), workers, want.Data, got.Data)
	}
}

// A stale prepacked image must never be served: prepacking, mutating the
// operand, then re-prepacking has to reflect the new contents.
func TestPrepackReflectsOperandContents(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	p := GEMMProblem{DT: vec.S, M: 6, N: 6, K: 6, Alpha: 1, Beta: 0, Count: 9}
	pl, err := NewGEMMPlan(p, DefaultTuning())
	if err != nil {
		t.Fatal(err)
	}
	a := randCompact[float32](rng, vec.S, p.Count, 6, 6)
	b := randCompact[float32](rng, vec.S, p.Count, 6, 6)
	c := randCompact[float32](rng, vec.S, p.Count, 6, 6)

	preA := make([]float32, pl.PrepackALen(a.Groups()))
	preB := make([]float32, pl.PrepackBLen(b.Groups()))
	pack := func() {
		if len(preA) > 0 {
			if err := PrepackGEMMA(pl, a, preA); err != nil {
				t.Fatal(err)
			}
		}
		if len(preB) > 0 {
			if err := PrepackGEMMB(pl, b, preB); err != nil {
				t.Fatal(err)
			}
		}
	}
	run := func() []float32 { // returns a copy of C's data
		got := c.Clone()
		pA, pB := preA, preB
		if len(pA) == 0 {
			pA = nil
		}
		if len(pB) == 0 {
			pB = nil
		}
		if err := ExecGEMMNativePrepacked(pl, a, b, got, pA, pB, 1); err != nil {
			t.Fatal(err)
		}
		return append([]float32(nil), got.Data...)
	}
	pack()
	before := run()

	// Mutate both operands and re-prepack: results must change in step.
	for i := range a.Data {
		a.Data[i] *= 3
	}
	for i := range b.Data {
		b.Data[i] += 1
	}
	pack()
	after := run()

	want := c.Clone()
	if err := ExecGEMM(pl, a, b, want, nil); err != nil {
		t.Fatal(err)
	}
	diffCompact(t, "after-mutation", p.Mode(), 1, want.Data, after)
	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("mutating the operands did not change the prepacked result")
	}
}

// Every bufpool.Get in the native executors is paired with a Put on all
// paths (pipelined, prepacked, sync fallback): after a quiescent sweep
// over the op/mode matrix the in-use gauge must return to its baseline
// and no double-returns may have been counted.
func TestNativeExecutorsReturnAllBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(315))
	// Plans without a stamped Runtime fall back to the process default pool.
	before := DefaultRuntime().Bufs.Snapshot()

	for _, force := range []int{0, 1} { // default chunking and max pipelining
		tun := DefaultTuning()
		tun.ForceGroupsPerBatch = force
		for _, workers := range []int{1, 3} {
			p := GEMMProblem{DT: vec.S, M: 8, N: 8, K: 8, Alpha: 1, Beta: 1, Count: 25}
			pl, err := NewGEMMPlan(p, tun)
			if err != nil {
				t.Fatal(err)
			}
			a := randCompact[float32](rng, vec.S, p.Count, 8, 8)
			b := randCompact[float32](rng, vec.S, p.Count, 8, 8)
			c := randCompact[float32](rng, vec.S, p.Count, 8, 8)
			if err := ExecGEMMNativeParallel(pl, a, b, c, workers); err != nil {
				t.Fatal(err)
			}
			preA := make([]float32, pl.PrepackALen(a.Groups()))
			if len(preA) > 0 {
				if err := PrepackGEMMA(pl, a, preA); err != nil {
					t.Fatal(err)
				}
			} else {
				preA = nil
			}
			if err := ExecGEMMNativePrepacked(pl, a, b, c, preA, nil, workers); err != nil {
				t.Fatal(err)
			}

			tp := TRSMProblem{DT: vec.S, M: 9, N: 6, Side: matrix.Left, Uplo: matrix.Lower,
				TransA: matrix.NoTrans, Diag: matrix.NonUnit, Alpha: 2, Count: 25}
			tpl, err := NewTRSMPlan(tp, tun)
			if err != nil {
				t.Fatal(err)
			}
			ta := randCompact[float32](rng, vec.S, tp.Count, tpl.MEff, tpl.MEff)
			for v := 0; v < tp.Count; v++ {
				for i := 0; i < tpl.MEff; i++ {
					re, im := ta.At(v, i, i)
					ta.Set(v, i, i, re+2, im)
				}
			}
			tb := randCompact[float32](rng, vec.S, tp.Count, tp.M, tp.N)
			if err := ExecTRSMNativeParallel(tpl, ta, tb, workers); err != nil {
				t.Fatal(err)
			}

			mp := TRMMProblem{DT: vec.S, M: 9, N: 6, Side: matrix.Left, Uplo: matrix.Lower,
				TransA: matrix.NoTrans, Diag: matrix.NonUnit, Alpha: 2, Count: 25}
			mpl, err := NewTRMMPlan(mp, tun)
			if err != nil {
				t.Fatal(err)
			}
			if err := ExecTRMMNativeParallel(mpl, ta, tb, workers); err != nil {
				t.Fatal(err)
			}
		}
	}

	after := DefaultRuntime().Bufs.Snapshot()
	if after.InUse != before.InUse {
		t.Errorf("executors leaked buffers: in-use %d -> %d", before.InUse, after.InUse)
	}
	if after.DoublePuts != before.DoublePuts {
		t.Errorf("executors double-returned buffers: %d -> %d", before.DoublePuts, after.DoublePuts)
	}
	if after.Gets == before.Gets {
		t.Error("sweep exercised no pooled buffers; assertion is vacuous")
	}
}
