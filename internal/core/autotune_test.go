package core

import (
	"math/rand"
	"testing"

	"iatf/internal/machine"
	"iatf/internal/vec"
)

// The autotuned plan must never model more cycles than the analytic
// default (the default is always among the candidates).
func TestAutotuneNeverWorseThanDefault(t *testing.T) {
	tun := DefaultTuning()
	for _, dt := range []vec.DType{vec.S, vec.Z} {
		for _, n := range []int{3, 6, 7, 11, 15} {
			p := GEMMProblem{DT: dt, M: n, N: n, K: n, Alpha: 1, Beta: 1, Count: 64}
			def, err := NewGEMMPlan(p, tun)
			if err != nil {
				t.Fatal(err)
			}
			tuned, err := AutotuneGEMM(p, tun)
			if err != nil {
				t.Fatal(err)
			}
			measure := func(pl *GEMMPlan) int64 {
				sim := machine.NewSim(tun.Prof, dt.ElemBytes())
				c, err := SimGEMM(pl, 4, sim)
				if err != nil {
					t.Fatal(err)
				}
				return c
			}
			if td, dd := measure(tuned), measure(def); td > dd {
				t.Errorf("%v n=%d: tuned %d cycles > default %d", dt, n, td, dd)
			}
		}
	}
}

// Tuning decisions must be memoized and reusable across differing
// alpha/beta/count.
func TestAutotuneCacheAndReuse(t *testing.T) {
	tun := DefaultTuning()
	p := GEMMProblem{DT: vec.S, M: 13, N: 13, K: 13, Alpha: 1, Beta: 1, Count: 64}
	before := TuneCacheSize()
	pl1, err := AutotuneGEMM(p, tun)
	if err != nil {
		t.Fatal(err)
	}
	if TuneCacheSize() <= before {
		t.Error("tuning decision not cached")
	}
	p2 := p
	p2.Alpha, p2.Beta, p2.Count = 2, 0, 999
	pl2, err := AutotuneGEMM(p2, tun)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl2.MTiles) != len(pl1.MTiles) {
		t.Error("cached tiling not reused")
	}
	if pl2.P.Count != 999 || pl2.P.Alpha != 2 {
		t.Error("cached plan not re-instantiated for the caller's problem")
	}
}

// Autotuned plans must stay functionally correct.
func TestAutotunedPlanCorrect(t *testing.T) {
	tun := DefaultTuning()
	rng := rand.New(rand.NewSource(31))
	p := GEMMProblem{DT: vec.D, M: 7, N: 7, K: 7, Alpha: 1.5, Beta: 1, Count: 9}
	pl, err := AutotuneGEMM(p, tun)
	if err != nil {
		t.Fatal(err)
	}
	a := randCompact[float64](rng, vec.D, p.Count, 7, 7)
	b := randCompact[float64](rng, vec.D, p.Count, 7, 7)
	c := randCompact[float64](rng, vec.D, p.Count, 7, 7)
	cRef := c.Clone()
	if err := ExecGEMMNative(pl, a, b, c); err != nil {
		t.Fatal(err)
	}
	def, err := NewGEMMPlan(p, tun)
	if err != nil {
		t.Fatal(err)
	}
	if err := ExecGEMMNative(def, a, b, cRef); err != nil {
		t.Fatal(err)
	}
	// Different tilings may round differently only if decompositions
	// differ; the accumulation order per element is identical (same K
	// loop), so results must match exactly.
	for i := range c.Data {
		if c.Data[i] != cRef.Data[i] {
			t.Fatalf("autotuned result diverges at %d", i)
		}
	}
}
