package core

import (
	"context"
	"fmt"

	"iatf/internal/asm"
	"iatf/internal/bufpool"
	"iatf/internal/kernels"
	"iatf/internal/ktmpl"
	"iatf/internal/layout"
	"iatf/internal/machine"
	"iatf/internal/matrix"
	"iatf/internal/pack"
	"iatf/internal/vec"
)

// Compact batched TRMM — B := alpha·op(A)·B (Left) or alpha·B·op(A)
// (Right) with triangular A — is this library's extension of the IATF
// framework to a further level-3 routine (the paper's future work). It
// reuses the whole run-time machinery of TRSM: side reduction, triangle
// canonicalization, panel decomposition, column tiling and L1 batching;
// the dataflow runs bottom-up instead of top-down and the kernels are the
// multiplying forms (TriMul, RectAdd), on both the native and the VM/cycle
// backends.

// TRMMProblem describes a compact batched TRMM.
type TRMMProblem struct {
	DT     vec.DType
	M, N   int // B is M×N; A is M×M (Left) or N×N (Right)
	Side   matrix.Side
	Uplo   matrix.Uplo
	TransA matrix.Trans
	Diag   matrix.Diag
	Alpha  complex128
	Count  int
}

// Mode returns the four-letter mode string.
func (p TRMMProblem) Mode() string {
	return p.Side.String() + p.TransA.String() + p.Uplo.String() + p.Diag.String()
}

// FLOPs returns the useful floating-point work of the whole batch.
func (p TRMMProblem) FLOPs() float64 {
	dim := float64(p.M)
	other := float64(p.N)
	if p.Side == matrix.Right {
		dim, other = other, dim
	}
	return p.DT.FlopsPerElem() / 2 * dim * dim * other * float64(p.Count)
}

// TRMMPlan is the generated execution plan; the geometry fields have the
// same meaning as in TRSMPlan.
type TRMMPlan struct {
	P   TRMMProblem
	Tun Tuning

	MEff, NEff     int
	TransposeB     bool
	ReverseB       bool
	PackB          bool
	Panels         []int
	ColTiles       []int
	GroupsPerBatch int

	// Labels: optional pprof label context; see GEMMPlan.Labels.
	Labels context.Context

	// RT: per-engine execution resources; see GEMMPlan.RT.
	RT *Runtime

	steps []trmmStep
}

type trmmStep struct {
	r0, q   int
	rectOff int
	triOff  int
	rect    map[int]asm.Prog // IR kernels for the VM/cycle backend
	tri     map[int]asm.Prog
}

// distinct cache-key wrappers: TriSpec/RectSpec are shared with TRSM but
// generate different programs here.
type trmmTriKey struct{ s ktmpl.TriSpec }
type trmmRectKey struct{ s ktmpl.RectSpec }

// NewTRMMPlan runs the run-time stage for a TRMM problem.
func NewTRMMPlan(p TRMMProblem, tun Tuning) (*TRMMPlan, error) {
	if p.M < 1 || p.N < 1 || p.Count < 1 {
		return nil, fmt.Errorf("core: invalid TRMM problem %dx%d count %d", p.M, p.N, p.Count)
	}
	if p.M > maxTriDim || p.N > maxTriDim {
		return nil, fmt.Errorf("core: TRMM supports dimensions up to %d (got %dx%d)", maxTriDim, p.M, p.N)
	}
	pl := &TRMMPlan{P: p, Tun: tun}

	transA := p.TransA == matrix.Transpose
	pl.MEff, pl.NEff = p.M, p.N
	if p.Side == matrix.Right {
		pl.MEff, pl.NEff = p.N, p.M
		pl.TransposeB = true
		transA = !transA
	}
	upper := p.Uplo == matrix.Upper
	pl.ReverseB = upper != transA
	pl.PackB = pl.TransposeB || pl.ReverseB

	if pl.MEff <= ktmpl.MaxTriM(p.DT) {
		pl.Panels = []int{pl.MEff}
	} else {
		q := ktmpl.TRSMPanel(p.DT)
		pl.Panels = ktmpl.SplitDim(pl.MEff, descending(q))
	}
	pl.ColTiles = ktmpl.SplitDim(pl.NEff, descending(ktmpl.MainTRSMKernel(p.DT).NC))

	vl := tun.lanes(p.DT)
	bl := blockLen(p.DT, vl)
	triElems := (pl.MEff * (pl.MEff + 1) / 2) * bl
	perGroup := (triElems + pl.MEff*pl.NEff*bl) * p.DT.ElemBytes()
	gb := tun.l1() / perGroup
	if gb < 1 {
		gb = 1
	}
	if tun.ForceGroupsPerBatch > 0 {
		gb = tun.ForceGroupsPerBatch
	}
	maxGroups := (p.Count + p.DT.Pack() - 1) / p.DT.Pack()
	if gb > maxGroups {
		gb = maxGroups
	}
	pl.GroupsPerBatch = gb

	r0, off := 0, 0
	for _, q := range pl.Panels {
		st := trmmStep{r0: r0, q: q, rectOff: off, triOff: off + q*r0*bl,
			rect: map[int]asm.Prog{}, tri: map[int]asm.Prog{}}
		for _, ct := range dedupe(pl.ColTiles) {
			if r0 > 0 {
				spec := ktmpl.RectSpec{DT: p.DT, MC: q, NC: ct, K: r0,
					StrideC: pl.MEff, StrideX: pl.MEff, VL: tun.VL}
				prog, err := tun.cached(trmmRectKey{spec}, func() (asm.Prog, error) { return ktmpl.GenTRMMRect(spec) }, p.DT)
				if err != nil {
					return nil, err
				}
				st.rect[ct] = prog
			}
			spec := ktmpl.TriSpec{DT: p.DT, M: q, NCols: ct, StrideB: pl.MEff, VL: tun.VL}
			prog, err := tun.cached(trmmTriKey{spec}, func() (asm.Prog, error) { return ktmpl.GenTRMMTri(spec) }, p.DT)
			if err != nil {
				return nil, err
			}
			st.tri[ct] = prog
		}
		pl.steps = append(pl.steps, st)
		off += (q*r0 + q*(q+1)/2) * bl
		r0 += q
	}
	return pl, nil
}

// ExecTRMMNative runs the plan with the native kernels, overwriting B.
func ExecTRMMNative[E vec.Float](pl *TRMMPlan, a, b *layout.Compact[E]) error {
	return ExecTRMMNativeParallel(pl, a, b, 1)
}

// ExecTRMMNativeParallel is ExecTRMMNative with worker-parallel groups.
// workers <= 0 means auto (GOMAXPROCS).
func ExecTRMMNativeParallel[E vec.Float](pl *TRMMPlan, a, b *layout.Compact[E], workers int) error {
	return ExecTRMMNativePrepacked(pl, a, b, nil, workers)
}

// ExecTRMMNativePrepacked is ExecTRMMNativeParallel consuming a
// prepacked triangle: preTri, when non-nil, must hold the output of
// PrepackTRMMTri for this plan (group-indexed, per PrepackTriLen), and
// the per-call triangle pack is skipped. nil falls back to packing per
// call.
func ExecTRMMNativePrepacked[E vec.Float](pl *TRMMPlan, a, b *layout.Compact[E], preTri []E, workers int) error {
	p := pl.P
	if pl.Tun.VL != 0 && pl.Tun.VL != p.DT.Pack() {
		return fmt.Errorf("core: native execution requires the native lane count")
	}
	if a.Count != p.Count || b.Count != p.Count {
		return fmt.Errorf("core: batch count mismatch")
	}
	if a.Rows != pl.MEff || a.Cols != pl.MEff || b.Rows != p.M || b.Cols != p.N {
		return fmt.Errorf("core: shape mismatch A=%dx%d B=%dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if preTri != nil && len(preTri) < pl.PrepackTriLen(a.Groups()) {
		return fmt.Errorf("core: prepacked tri has %d elements, need %d", len(preTri), pl.PrepackTriLen(a.Groups()))
	}
	pl.RT.or().Sched.RunLabeled(pl.Labels, a.Groups(), workers, pl.GroupsPerBatch, func(lo, hi int) {
		trmmWorker(pl, a, b, preTri, lo, hi)
	})
	return nil
}

func trmmWorker[E vec.Float](pl *TRMMPlan, a, b *layout.Compact[E], preTri []E, gLo, gHi int) {
	p := pl.P
	vl := p.DT.Pack()
	bl := blockLen(p.DT, vl)
	cplx := p.DT.IsComplex()
	lenA := pl.MEff * pl.MEff * bl
	lenB := p.M * p.N * bl
	lenTri := pack.TriLen(bl, pl.Panels)
	transAEff := p.TransA == matrix.Transpose
	if p.Side == matrix.Right {
		transAEff = !transAEff
	}
	effUpper := (p.Uplo == matrix.Upper) != transAEff

	gb := pl.GroupsPerBatch
	needTri := preTri == nil
	needScale := p.Alpha != 1
	needPack := needTri || pl.PackB || needScale

	pipelined := needPack && gHi-gLo > gb
	nBuf := 1
	if pipelined {
		nBuf = 2
	}
	rt := pl.RT.or()
	var packTri []E
	if needTri {
		bufTri := bufpool.Get[E](rt.Bufs, nBuf*gb*lenTri)
		defer bufpool.Put(rt.Bufs, bufTri)
		packTri = bufTri.Slice()
	}
	var packB []E
	lenPB := 0
	if pl.PackB {
		lenPB = pl.MEff * pl.NEff * bl
		bufB := bufpool.Get[E](rt.Bufs, nBuf*gb*lenPB)
		defer bufpool.Put(rt.Bufs, bufB)
		packB = bufB.Slice()
	}

	args := triPackArgs[E]{
		a: a, b: b, panels: pl.Panels, packTri: packTri, packB: packB,
		mEff: pl.MEff, nEff: pl.NEff,
		lenA: lenA, lenB: lenB, lenTri: lenTri, lenPB: lenPB,
		effUpper: effUpper, transAEff: transAEff,
		unit: p.Diag == matrix.Unit, recip: false,
		reverseB: pl.ReverseB, transposeB: pl.TransposeB,
		alphaRe: real(p.Alpha), alphaIm: imag(p.Alpha), scale: needScale,
		cplx: cplx, vl: vl, bl: bl, gb: gb,
	}

	var pipe *triPipe[E]
	if pipelined {
		pipe = getTriPipe[E]()
		pipe.args = args
		pipe.gLo, pipe.gHi = gLo, gHi
		pipe.free <- 0
		pipe.free <- 1
		if !submitPipe(pipe) {
			<-pipe.free
			<-pipe.free
			putTriPipe(pipe)
			pipe, pipelined = nil, false
			pipeFallbacks.Add(1)
		}
	}

	nChunks := (gHi - gLo + gb - 1) / gb
	ci := 0
	for sb := gLo; sb < gHi; sb += gb {
		end := sb + gb
		if end > gHi {
			end = gHi
		}
		slotBase := 0
		if pipelined {
			var par int
			select {
			case par = <-pipe.ready:
			default:
				pipeStalls.Add(1)
				par = <-pipe.ready
			}
			slotBase = par * gb
		} else if needPack {
			args.packChunk(sb, end, 0)
		}
		for g := sb; g < end; g++ {
			slot := slotBase + (g - sb)
			var tri []E
			if needTri {
				tri = packTri[slot*lenTri:]
			} else {
				tri = preTri[g*lenTri:]
			}
			var target []E
			if pl.PackB {
				target = packB[slot*lenPB:]
			} else {
				target = b.Data[g*lenB:]
			}
			j0 := 0
			for _, ct := range pl.ColTiles {
				colBase := j0 * pl.MEff * bl
				// Bottom-up: each panel multiplies its own rows before
				// any panel above it is touched, so the rectangular
				// accumulation always reads original values.
				for s := len(pl.steps) - 1; s >= 0; s-- {
					st := pl.steps[s]
					if cplx {
						kernels.TriMulCplx(tri[st.triOff:], target[colBase+st.r0*bl:], st.q, ct, pl.MEff, vl)
					} else {
						kernels.TriMul(tri[st.triOff:], target[colBase+st.r0*bl:], st.q, ct, pl.MEff, vl)
					}
					if st.r0 > 0 {
						if cplx {
							kernels.RectAddCplx(tri[st.rectOff:], target[colBase:],
								target[colBase+st.r0*bl:], st.q, ct, st.r0, pl.MEff, pl.MEff, vl)
						} else {
							kernels.RectAdd(tri[st.rectOff:], target[colBase:],
								target[colBase+st.r0*bl:], st.q, ct, st.r0, pl.MEff, pl.MEff, vl)
						}
					}
				}
				j0 += ct
			}
		}
		if pl.PackB {
			for g := sb; g < end; g++ {
				slot := slotBase + (g - sb)
				nBUncopy(b.Data[g*lenB:(g+1)*lenB], p.M, p.N, pl.ReverseB, pl.TransposeB, bl, packB[slot*lenPB:])
			}
		}
		if pipelined && ci+2 < nChunks {
			pipe.free <- slotBase / gb
		}
		ci++
	}
	if pipelined {
		putTriPipe(pipe)
	}
}

// trmmLayout lays out the VM arena for the TRMM sim/VM backend (same
// scheme as trsmLayout).
func trmmLayout(pl *TRMMPlan, groups int) trsmOffsets {
	p := pl.P
	bl := blockLen(p.DT, pl.Tun.lanes(p.DT))
	var o trsmOffsets
	o.lenA = pl.MEff * pl.MEff * bl
	o.lenB = p.M * p.N * bl
	o.a = 0
	o.b = o.a + groups*o.lenA
	o.packTri = o.b + groups*o.lenB
	o.lenTri = pack.TriLen(bl, pl.Panels)
	o.packB = o.packTri + pl.GroupsPerBatch*o.lenTri
	if pl.PackB {
		o.lenPB = pl.MEff * pl.NEff * bl
	}
	o.total = o.packB + pl.GroupsPerBatch*o.lenPB
	return o
}

// runTRMM executes the plan on the VM backend, optionally feeding the
// pipeline model — the cycle-model twin of trmmWorker.
func runTRMM[E vec.Float](pl *TRMMPlan, ar *arena[E], o trsmOffsets, sim *machine.Sim) error {
	p := pl.P
	vm := &asm.VM[E]{Mem: ar.mem}
	if sim != nil {
		vm.Trace = func(in asm.Instr, addr int) { sim.Exec(in, addr) }
	}
	var rec *pack.Recorder
	if sim != nil {
		rec = &pack.Recorder{}
	}
	ctx := &pack.Ctx[E]{Mem: ar.mem, DT: p.DT, VL: ar.vl, Rec: rec}

	transAEff := p.TransA == matrix.Transpose
	if p.Side == matrix.Right {
		transAEff = !transAEff
	}
	tm := pack.NewTriMap(pl.MEff, p.Uplo == matrix.Upper, transAEff, p.Diag == matrix.Unit)
	tm.Recip = false

	bl := ar.bl
	gb := pl.GroupsPerBatch
	for sb := 0; sb < ar.groups; sb += gb {
		end := sb + gb
		if end > ar.groups {
			end = ar.groups
		}
		for g := sb; g < end; g++ {
			slot := g - sb
			srcA := pack.Geom{Off: o.a + g*o.lenA, Rows: pl.MEff, Cols: pl.MEff, BlockLen: bl}
			pack.Tri(ctx, srcA, tm, pl.Panels, o.packTri+slot*o.lenTri)
			geomB := pack.Geom{Off: o.b + g*o.lenB, Rows: p.M, Cols: p.N, BlockLen: bl}
			target := geomB
			if pl.PackB {
				pack.BCopy(ctx, geomB, pl.ReverseB, pl.TransposeB, o.packB+slot*o.lenPB)
				target = pack.Geom{Off: o.packB + slot*o.lenPB, Rows: pl.MEff, Cols: pl.NEff, BlockLen: bl}
			}
			if p.Alpha != 1 {
				pack.Scale(ctx, target, real(p.Alpha), imag(p.Alpha))
			}
		}
		replayPacking(sim, rec, ar.vl)

		for g := sb; g < end; g++ {
			slot := g - sb
			triBase := o.packTri + slot*o.lenTri
			targetOff := o.b + g*o.lenB
			if pl.PackB {
				targetOff = o.packB + slot*o.lenPB
			}
			j0 := 0
			for _, ct := range pl.ColTiles {
				colBase := targetOff + j0*pl.MEff*bl
				for s := len(pl.steps) - 1; s >= 0; s-- {
					st := pl.steps[s]
					if sim != nil {
						sim.AddCycles(kernelDispatchCycles)
					}
					vm.P[asm.PA] = triBase + st.triOff
					vm.P[asm.PB] = colBase + st.r0*bl
					if err := vm.Run(st.tri[ct]); err != nil {
						return fmt.Errorf("core: trmm tri panel r0=%d: %w", st.r0, err)
					}
					if st.r0 > 0 {
						vm.P[asm.PA] = triBase + st.rectOff
						vm.P[asm.PX] = colBase
						vm.P[asm.PC] = colBase + st.r0*bl
						if err := vm.Run(st.rect[ct]); err != nil {
							return fmt.Errorf("core: trmm rect panel r0=%d: %w", st.r0, err)
						}
					}
				}
				j0 += ct
			}
		}
		if pl.PackB {
			for g := sb; g < end; g++ {
				slot := g - sb
				geomB := pack.Geom{Off: o.b + g*o.lenB, Rows: p.M, Cols: p.N, BlockLen: bl}
				pack.BUncopy(ctx, geomB, pl.ReverseB, pl.TransposeB, o.packB+slot*o.lenPB)
			}
			replayPacking(sim, rec, ar.vl)
		}
	}
	return nil
}

// ExecTRMM runs the plan on the VM backend (and through the pipeline
// model when sim is non-nil), overwriting B.
func ExecTRMM[E vec.Float](pl *TRMMPlan, a, b *layout.Compact[E], sim *machine.Sim) error {
	p := pl.P
	if a.Count != p.Count || b.Count != p.Count {
		return fmt.Errorf("core: batch count mismatch")
	}
	if a.Rows != pl.MEff || a.Cols != pl.MEff || b.Rows != p.M || b.Cols != p.N {
		return fmt.Errorf("core: shape mismatch A=%dx%d B=%dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if pl.Tun.VL != 0 && pl.Tun.VL != p.DT.Pack() {
		return fmt.Errorf("core: ExecTRMM requires the native lane count; use SimTRMM for the %d-lane model", pl.Tun.VL)
	}
	groups := a.Groups()
	o := trmmLayout(pl, groups)
	ar := &arena[E]{mem: make([]E, o.total), vl: p.DT.Pack(), bl: blockLen(p.DT, p.DT.Pack()), groups: groups}
	copy(ar.mem[o.a:], a.Data)
	copy(ar.mem[o.b:], b.Data)
	if err := runTRMM(pl, ar, o, sim); err != nil {
		return err
	}
	copy(b.Data, ar.mem[o.b:o.b+groups*o.lenB])
	return nil
}

// SimTRMM executes the plan on a synthetic arena purely for timing.
func SimTRMM(pl *TRMMPlan, groups int, sim *machine.Sim) (int64, error) {
	p := pl.P
	o := trmmLayout(pl, groups)
	vl := pl.Tun.lanes(p.DT)
	var err error
	if p.DT.ElemBytes() == 8 {
		ar := &arena[float64]{mem: make([]float64, o.total), vl: vl, bl: blockLen(p.DT, vl), groups: groups}
		fillArena(ar.mem)
		err = runTRMM(pl, ar, o, sim)
	} else {
		ar := &arena[float32]{mem: make([]float32, o.total), vl: vl, bl: blockLen(p.DT, vl), groups: groups}
		fillArena(ar.mem)
		err = runTRMM(pl, ar, o, sim)
	}
	if err != nil {
		return 0, err
	}
	return sim.Cycles(), nil
}
