package core

import (
	"math/rand"
	"testing"

	"iatf/internal/layout"
	"iatf/internal/matrix"
	"iatf/internal/vec"
)

// The native Go backend and the IR/VM backend execute the same plan with
// the same lane arithmetic, so their results must agree bit for bit.
func TestNativeMatchesVMBackendGEMM(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, dt := range vec.DTypes {
		for _, mnk := range [][3]int{{3, 3, 3}, {7, 6, 5}, {15, 15, 15}} {
			for _, mode := range [][2]matrix.Trans{
				{matrix.NoTrans, matrix.NoTrans}, {matrix.Transpose, matrix.Transpose},
			} {
				p := GEMMProblem{DT: dt, M: mnk[0], N: mnk[1], K: mnk[2],
					TransA: mode[0], TransB: mode[1], Alpha: 1.5, Beta: 1, Count: 6}
				if dt.Real() == vec.S {
					compareBackendsGEMM[float32](t, rng, p)
				} else {
					compareBackendsGEMM[float64](t, rng, p)
				}
			}
		}
	}
}

func compareBackendsGEMM[E vec.Float](t *testing.T, rng *rand.Rand, p GEMMProblem) {
	t.Helper()
	pl, err := NewGEMMPlan(p, DefaultTuning())
	if err != nil {
		t.Fatal(err)
	}
	ar, ac := p.M, p.K
	if p.TransA == matrix.Transpose {
		ar, ac = p.K, p.M
	}
	br, bc := p.K, p.N
	if p.TransB == matrix.Transpose {
		br, bc = p.N, p.K
	}
	a := randCompact[E](rng, p.DT, p.Count, ar, ac)
	b := randCompact[E](rng, p.DT, p.Count, br, bc)
	c := randCompact[E](rng, p.DT, p.Count, p.M, p.N)
	cVM := c.Clone()
	if err := ExecGEMM(pl, a, b, cVM, nil); err != nil {
		t.Fatal(err)
	}
	cNat := c.Clone()
	if err := ExecGEMMNative(pl, a, b, cNat); err != nil {
		t.Fatal(err)
	}
	for i := range cVM.Data {
		if cVM.Data[i] != cNat.Data[i] {
			t.Fatalf("%v %s %dx%dx%d: backends diverge at element %d: %v vs %v",
				p.DT, p.Mode(), p.M, p.N, p.K, i, cVM.Data[i], cNat.Data[i])
		}
	}
}

func randCompact[E vec.Float](rng *rand.Rand, dt vec.DType, count, rows, cols int) *layout.Compact[E] {
	c := layout.NewCompact[E](dt, count, rows, cols)
	for v := 0; v < count; v++ {
		for j := 0; j < cols; j++ {
			for i := 0; i < rows; i++ {
				c.Set(v, i, j, E(rng.Float64()), E(rng.Float64()))
			}
		}
	}
	return c
}

func TestNativeMatchesVMBackendTRSM(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for _, dt := range vec.DTypes {
		for _, mode := range []struct {
			side matrix.Side
			uplo matrix.Uplo
			ta   matrix.Trans
			diag matrix.Diag
		}{
			{matrix.Left, matrix.Lower, matrix.NoTrans, matrix.NonUnit},
			{matrix.Left, matrix.Upper, matrix.NoTrans, matrix.NonUnit},
			{matrix.Right, matrix.Lower, matrix.Transpose, matrix.Unit},
		} {
			for _, mn := range [][2]int{{4, 3}, {9, 6}} {
				p := TRSMProblem{DT: dt, M: mn[0], N: mn[1], Side: mode.side,
					Uplo: mode.uplo, TransA: mode.ta, Diag: mode.diag, Alpha: 1, Count: 5}
				if dt.Real() == vec.S {
					compareBackendsTRSM[float32](t, rng, p)
				} else {
					compareBackendsTRSM[float64](t, rng, p)
				}
			}
		}
	}
}

func compareBackendsTRSM[E vec.Float](t *testing.T, rng *rand.Rand, p TRSMProblem) {
	t.Helper()
	pl, err := NewTRSMPlan(p, DefaultTuning())
	if err != nil {
		t.Fatal(err)
	}
	a := randCompact[E](rng, p.DT, p.Count, pl.MEff, pl.MEff)
	// Bound the diagonal away from zero so the solve is well-conditioned.
	for v := 0; v < p.Count; v++ {
		for i := 0; i < pl.MEff; i++ {
			re, im := a.At(v, i, i)
			a.Set(v, i, i, re+2, im)
		}
	}
	b := randCompact[E](rng, p.DT, p.Count, p.M, p.N)
	bVM := b.Clone()
	if err := ExecTRSM(pl, a, bVM, nil); err != nil {
		t.Fatal(err)
	}
	bNat := b.Clone()
	if err := ExecTRSMNative(pl, a, bNat); err != nil {
		t.Fatal(err)
	}
	for i := range bVM.Data {
		if bVM.Data[i] != bNat.Data[i] {
			t.Fatalf("%v %s M=%d N=%d: backends diverge at element %d: %v vs %v",
				p.DT, p.Mode(), p.M, p.N, i, bVM.Data[i], bNat.Data[i])
		}
	}
}

// K-chunking through the native backend, including the beta=0 overwrite
// that must apply to the first chunk only.
func TestNativeLargeKChunking(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for _, beta := range []complex128{0, 1} {
		p := GEMMProblem{DT: vec.S, M: 5, N: 4, K: 150, Alpha: 1.5, Beta: beta, Count: 6}
		pl, err := NewGEMMPlan(p, DefaultTuning())
		if err != nil {
			t.Fatal(err)
		}
		a := randCompact[float32](rng, vec.S, p.Count, 5, 150)
		b := randCompact[float32](rng, vec.S, p.Count, 150, 4)
		c := randCompact[float32](rng, vec.S, p.Count, 5, 4)
		got := c.Clone()
		if err := ExecGEMMNative(pl, a, b, got); err != nil {
			t.Fatal(err)
		}
		// Scalar oracle per matrix element.
		for v := 0; v < p.Count; v++ {
			for i := 0; i < 5; i++ {
				for j := 0; j < 4; j++ {
					sum := 0.0
					for k := 0; k < 150; k++ {
						ar, _ := a.At(v, i, k)
						br, _ := b.At(v, k, j)
						sum += float64(ar) * float64(br)
					}
					c0, _ := c.At(v, i, j)
					want := 1.5*sum + real(beta)*float64(c0)
					gr, _ := got.At(v, i, j)
					if d := float64(gr) - want; d > 2e-3 || d < -2e-3 {
						t.Fatalf("beta=%v v=%d (%d,%d): got %v want %v", beta, v, i, j, gr, want)
					}
				}
			}
		}
	}
}
