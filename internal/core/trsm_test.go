package core

import (
	"math/rand"
	"testing"

	"iatf/internal/layout"
	"iatf/internal/matrix"
	"iatf/internal/vec"
)

func checkTRSM[T matrix.Scalar, E vec.Float](t *testing.T, dt vec.DType, p TRSMProblem, tun Tuning) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(p.M*1000+p.N*100) + int64(p.Side)*7 + int64(p.Uplo)*13 + int64(p.TransA)*17 + int64(p.Diag)*19))
	adim := p.M
	if p.Side == matrix.Right {
		adim = p.N
	}
	a := matrix.RandTriangularBatch[T](rng, p.Count, adim)
	b := matrix.RandBatch[T](rng, p.Count, p.M, p.N)

	want := b.Clone()
	matrix.RefTRSMBatch(p.Side, p.Uplo, p.TransA, p.Diag, scalarOf[T](p.Alpha), a, want)

	ca := toCompact[T, E](dt, a)
	cb := toCompact[T, E](dt, b)
	pl, err := NewTRSMPlan(p, tun)
	if err != nil {
		t.Fatalf("%v %s M=%d N=%d: %v", dt, p.Mode(), p.M, p.N, err)
	}
	if err := ExecTRSM(pl, ca, cb, nil); err != nil {
		t.Fatalf("%v %s M=%d N=%d: %v", dt, p.Mode(), p.M, p.N, err)
	}
	got := fromCompact[T, E](cb)
	// Triangular solves amplify rounding; scale tolerance with the
	// substitution depth.
	dim := p.M
	if p.Side == matrix.Right {
		dim = p.N
	}
	if !matrix.WithinTol(got.Data, want.Data, matrix.Tol[T](4*dim+8)) {
		t.Errorf("%v %s M=%d N=%d count=%d: max diff %g",
			dt, p.Mode(), p.M, p.N, p.Count, matrix.MaxAbsDiff(got.Data, want.Data))
	}
}

func checkTRSMAllTypes(t *testing.T, p TRSMProblem, tun Tuning) {
	t.Helper()
	p.DT = vec.S
	checkTRSM[float32, float32](t, vec.S, p, tun)
	p.DT = vec.D
	checkTRSM[float64, float64](t, vec.D, p, tun)
	p.DT = vec.C
	checkTRSM[complex64, float32](t, vec.C, p, tun)
	p.DT = vec.Z
	checkTRSM[complex128, float64](t, vec.Z, p, tun)
}

// All 16 mode combinations × a size grid covering register-resident and
// blocked paths, edge panels and column tails.
func TestTRSMAllModes(t *testing.T) {
	tun := DefaultTuning()
	for _, side := range []matrix.Side{matrix.Left, matrix.Right} {
		for _, uplo := range []matrix.Uplo{matrix.Lower, matrix.Upper} {
			for _, ta := range []matrix.Trans{matrix.NoTrans, matrix.Transpose} {
				for _, diag := range []matrix.Diag{matrix.NonUnit, matrix.Unit} {
					for _, mn := range [][2]int{{1, 1}, {3, 2}, {4, 4}, {5, 3}, {6, 5}, {9, 7}} {
						p := TRSMProblem{M: mn[0], N: mn[1], Side: side, Uplo: uplo,
							TransA: ta, Diag: diag, Alpha: 1, Count: 5}
						checkTRSMAllTypes(t, p, tun)
					}
				}
			}
		}
	}
}

func TestTRSMLargerSizes(t *testing.T) {
	tun := DefaultTuning()
	// Exercises multiple panels, rect K accumulation and column tails at
	// the paper's evaluation scale.
	for _, mn := range [][2]int{{12, 12}, {15, 15}, {17, 9}, {33, 5}} {
		p := TRSMProblem{M: mn[0], N: mn[1], Side: matrix.Left, Uplo: matrix.Lower,
			TransA: matrix.NoTrans, Diag: matrix.NonUnit, Alpha: 1, Count: 4}
		checkTRSMAllTypes(t, p, tun)
	}
}

func TestTRSMAlpha(t *testing.T) {
	tun := DefaultTuning()
	p := TRSMProblem{M: 6, N: 4, Side: matrix.Left, Uplo: matrix.Lower,
		TransA: matrix.NoTrans, Diag: matrix.NonUnit, Alpha: 2.5, Count: 3}
	checkTRSMAllTypes(t, p, tun)
	// Complex alpha.
	p.Alpha = 1 - 2i
	p.DT = vec.Z
	checkTRSM[complex128, float64](t, vec.Z, p, tun)
}

func TestTRSMPlanDecisions(t *testing.T) {
	tun := DefaultTuning()
	// Canonical LNLN solves in place — the no-packing strategy.
	pl, err := NewTRSMPlan(TRSMProblem{DT: vec.D, M: 4, N: 8, Side: matrix.Left,
		Uplo: matrix.Lower, Alpha: 1, Count: 32}, tun)
	if err != nil {
		t.Fatal(err)
	}
	if pl.PackB {
		t.Error("LNLN must not pack B")
	}
	if len(pl.Panels) != 1 || pl.Panels[0] != 4 {
		t.Errorf("M=4 panels = %v, want [4]", pl.Panels)
	}
	// M=5 still fits the register-resident triangular kernel.
	pl, err = NewTRSMPlan(TRSMProblem{DT: vec.D, M: 5, N: 8, Side: matrix.Left,
		Uplo: matrix.Lower, Alpha: 1, Count: 32}, tun)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Panels) != 1 || pl.Panels[0] != 5 {
		t.Errorf("M=5 panels = %v, want [5]", pl.Panels)
	}
	// M=9 blocks into panels of the main kernel height.
	pl, err = NewTRSMPlan(TRSMProblem{DT: vec.D, M: 9, N: 8, Side: matrix.Left,
		Uplo: matrix.Lower, Alpha: 1, Count: 32}, tun)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Panels) < 2 || pl.Panels[0] != 4 {
		t.Errorf("M=9 panels = %v", pl.Panels)
	}
	// Upper mode canonicalizes through the packed-B buffer.
	pl, err = NewTRSMPlan(TRSMProblem{DT: vec.D, M: 4, N: 8, Side: matrix.Left,
		Uplo: matrix.Upper, Alpha: 1, Count: 32}, tun)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.PackB || !pl.ReverseB {
		t.Error("LNUN must reverse-pack B")
	}
	// Lower+Trans is effectively upper too.
	pl, err = NewTRSMPlan(TRSMProblem{DT: vec.D, M: 4, N: 8, Side: matrix.Left,
		Uplo: matrix.Lower, TransA: matrix.Transpose, Alpha: 1, Count: 32}, tun)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.ReverseB {
		t.Error("LTLN must reverse")
	}
	// Upper+Trans is effectively lower: in-place again.
	pl, err = NewTRSMPlan(TRSMProblem{DT: vec.D, M: 4, N: 8, Side: matrix.Left,
		Uplo: matrix.Upper, TransA: matrix.Transpose, Alpha: 1, Count: 32}, tun)
	if err != nil {
		t.Fatal(err)
	}
	if pl.PackB || pl.ReverseB {
		t.Error("LTUN must solve in place")
	}
	// Right side transposes B and swaps dims.
	pl, err = NewTRSMPlan(TRSMProblem{DT: vec.D, M: 6, N: 3, Side: matrix.Right,
		Uplo: matrix.Lower, Alpha: 1, Count: 32}, tun)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.TransposeB || pl.MEff != 3 || pl.NEff != 6 {
		t.Errorf("right-side reduction wrong: %+v", pl)
	}
	// Complex panel heights come from the 2×2 main kernel.
	pl, err = NewTRSMPlan(TRSMProblem{DT: vec.Z, M: 7, N: 4, Side: matrix.Left,
		Uplo: matrix.Lower, Alpha: 1, Count: 32}, tun)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range pl.Panels {
		if q > 2 {
			t.Errorf("complex panel %d exceeds kernel height 2", q)
		}
	}
}

func TestTRSMProblemDerived(t *testing.T) {
	p := TRSMProblem{DT: vec.S, M: 4, N: 8, Side: matrix.Left, Uplo: matrix.Lower,
		TransA: matrix.NoTrans, Diag: matrix.NonUnit, Count: 10}
	if p.Mode() != "LNLN" {
		t.Errorf("Mode = %s, want LNLN", p.Mode())
	}
	if p.FLOPs() != 2.0/2*4*4*8*10 {
		t.Errorf("FLOPs = %v", p.FLOPs())
	}
	r := TRSMProblem{DT: vec.S, M: 4, N: 8, Side: matrix.Right, Count: 10}
	if r.FLOPs() != 1*8*8*4*10 {
		t.Errorf("right FLOPs = %v", r.FLOPs())
	}
}

func TestTRSMInvalid(t *testing.T) {
	tun := DefaultTuning()
	if _, err := NewTRSMPlan(TRSMProblem{DT: vec.S, M: 0, N: 1, Count: 1}, tun); err == nil {
		t.Error("M=0 accepted")
	}
	pl, _ := NewTRSMPlan(TRSMProblem{DT: vec.S, M: 2, N: 2, Alpha: 1, Count: 4}, tun)
	a := layout.NewCompact[float32](vec.S, 4, 3, 3)
	b := layout.NewCompact[float32](vec.S, 4, 2, 2)
	if err := ExecTRSM(pl, a, b, nil); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestTRSMPaddingAndCounts(t *testing.T) {
	tun := DefaultTuning()
	for _, count := range []int{1, 2, 3, 5, 8, 11} {
		p := TRSMProblem{M: 6, N: 4, Side: matrix.Left, Uplo: matrix.Lower,
			TransA: matrix.NoTrans, Diag: matrix.NonUnit, Alpha: 1, Count: count}
		p.DT = vec.D
		checkTRSM[float64, float64](t, vec.D, p, tun)
		p.DT = vec.C
		checkTRSM[complex64, float32](t, vec.C, p, tun)
	}
}
