package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"iatf/internal/matrix"
	"iatf/internal/vec"
)

// Property: a random GEMM problem (dims 1..20, any mode, random
// alpha/beta, random count) matches the reference oracle through the full
// plan + VM pipeline.
func TestGEMMPropertyRandomProblems(t *testing.T) {
	tun := DefaultTuning()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := GEMMProblem{
			DT:     vec.DTypes[rng.Intn(4)],
			M:      1 + rng.Intn(20),
			N:      1 + rng.Intn(20),
			K:      1 + rng.Intn(20),
			TransA: matrix.Trans(rng.Intn(2)),
			TransB: matrix.Trans(rng.Intn(2)),
			Alpha:  complex(1+rng.Float64(), 0),
			Beta:   complex(rng.Float64(), 0),
			Count:  1 + rng.Intn(10),
		}
		if p.DT.IsComplex() {
			p.Alpha = complex(real(p.Alpha), rng.Float64())
		}
		ok := true
		runProp := func() {
			defer func() {
				if r := recover(); r != nil {
					t.Logf("seed=%d panicked: %v (%+v)", seed, r, p)
					ok = false
				}
			}()
			switch p.DT {
			case vec.S:
				checkGEMM[float32, float32](t, vec.S, p, tun)
			case vec.D:
				checkGEMM[float64, float64](t, vec.D, p, tun)
			case vec.C:
				checkGEMM[complex64, float32](t, vec.C, p, tun)
			case vec.Z:
				checkGEMM[complex128, float64](t, vec.Z, p, tun)
			}
		}
		runProp()
		return ok && !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: a random TRSM problem matches the oracle.
func TestTRSMPropertyRandomProblems(t *testing.T) {
	tun := DefaultTuning()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := TRSMProblem{
			DT:     vec.DTypes[rng.Intn(4)],
			M:      1 + rng.Intn(16),
			N:      1 + rng.Intn(16),
			Side:   matrix.Side(rng.Intn(2)),
			Uplo:   matrix.Uplo(rng.Intn(2)),
			TransA: matrix.Trans(rng.Intn(2)),
			Diag:   matrix.Diag(rng.Intn(2)),
			Alpha:  complex(0.5+rng.Float64(), 0),
			Count:  1 + rng.Intn(8),
		}
		switch p.DT {
		case vec.S:
			checkTRSM[float32, float32](t, vec.S, p, tun)
		case vec.D:
			checkTRSM[float64, float64](t, vec.D, p, tun)
		case vec.C:
			checkTRSM[complex64, float32](t, vec.C, p, tun)
		case vec.Z:
			checkTRSM[complex128, float64](t, vec.Z, p, tun)
		}
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the tiling in every generated plan covers M×N exactly, with
// every tile a registered kernel size.
func TestPlanTilingProperty(t *testing.T) {
	tun := DefaultTuning()
	f := func(m8, n8, k8 uint8, dtSel uint8) bool {
		m, n, k := 1+int(m8)%33, 1+int(n8)%33, 1+int(k8)%33
		dt := vec.DTypes[int(dtSel)%4]
		pl, err := NewGEMMPlan(GEMMProblem{DT: dt, M: m, N: n, K: k, Alpha: 1, Beta: 1, Count: 64}, tun)
		if err != nil {
			return false
		}
		covered := make(map[[2]int]bool)
		for _, tl := range pl.tiles {
			for i := tl.i0; i < tl.i0+tl.mc; i++ {
				for j := tl.j0; j < tl.j0+tl.nc; j++ {
					if covered[[2]int{i, j}] {
						t.Logf("dt=%v %dx%d: cell (%d,%d) covered twice", dt, m, n, i, j)
						return false
					}
					covered[[2]int{i, j}] = true
				}
			}
		}
		return len(covered) == m*n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: TRSM plan panels cover MEff exactly and never exceed the
// register-resident triangle bound.
func TestTRSMPanelProperty(t *testing.T) {
	tun := DefaultTuning()
	f := func(m8 uint8, dtSel uint8, right bool) bool {
		m := 1 + int(m8)%33
		dt := vec.DTypes[int(dtSel)%4]
		side := matrix.Left
		if right {
			side = matrix.Right
		}
		pl, err := NewTRSMPlan(TRSMProblem{DT: dt, M: m, N: m, Side: side,
			Uplo: matrix.Lower, Alpha: 1, Count: 16}, tun)
		if err != nil {
			return false
		}
		sum := 0
		maxTri := 5
		if dt.IsComplex() {
			maxTri = 3
		}
		for _, q := range pl.Panels {
			if q < 1 || q > maxTri {
				return false
			}
			sum += q
		}
		csum := 0
		for _, ct := range pl.ColTiles {
			csum += ct
		}
		return sum == pl.MEff && csum == pl.NEff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: native parallel execution with a random worker count matches
// single-worker execution exactly.
func TestParallelWorkersProperty(t *testing.T) {
	tun := DefaultTuning()
	f := func(seed int64, w8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		workers := 1 + int(w8)%7
		p := GEMMProblem{DT: vec.S, M: 1 + rng.Intn(10), N: 1 + rng.Intn(10),
			K: 1 + rng.Intn(10), Alpha: 1, Beta: 1, Count: 1 + rng.Intn(100)}
		pl, err := NewGEMMPlan(p, tun)
		if err != nil {
			return false
		}
		ar, br := p.M, p.K
		a := randCompact[float32](rng, vec.S, p.Count, ar, p.K)
		b := randCompact[float32](rng, vec.S, p.Count, br, p.N)
		c := randCompact[float32](rng, vec.S, p.Count, p.M, p.N)
		c1 := c.Clone()
		if err := ExecGEMMNativeParallel(pl, a, b, c1, 1); err != nil {
			t.Log(err)
			return false
		}
		cw := c.Clone()
		if err := ExecGEMMNativeParallel(pl, a, b, cw, workers); err != nil {
			t.Log(err)
			return false
		}
		for i := range c1.Data {
			if c1.Data[i] != cw.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
