package core

import (
	"sync"

	"iatf/internal/ktmpl"
	"iatf/internal/machine"
)

// Empirical autotuning. The paper's run-time stage selects kernels
// analytically (CMAR-optimal main kernel, greedy edge tiling). The
// analytic choice is usually right, but edge-heavy shapes sometimes favor
// a different decomposition (e.g. leading with 3-wide tiles when
// M mod 4 == 3). AutotuneGEMM evaluates a small set of candidate tilings
// on the cycle model — the machine-in-a-library that install-time tuning
// frameworks use in place of hardware measurements — and caches the
// winner per problem shape. This realizes the "Auto-tune" keyword of the
// paper beyond its analytic selection.

// tuneKey identifies a tuning decision.
type tuneKey struct {
	dt      int
	m, n, k int
	prof    string
}

var (
	tuneMu    sync.Mutex
	tuneCache = map[tuneKey]*GEMMPlan{}
)

// candidateTilings returns the tile-size preference lists to try: the
// analytic default first, then alternatives that lead with each smaller
// kernel height/width.
func candidateTilings(p GEMMProblem) [][2][]int {
	mt := ktmpl.MTiles(p.DT)
	nt := ktmpl.NTiles(p.DT)
	cands := [][2][]int{{mt, nt}}
	// Lead with smaller main kernels (still padded out by the full edge
	// set, so coverage is guaranteed).
	for lead := mt[0] - 1; lead >= 2; lead-- {
		cands = append(cands, [2][]int{descending(lead), nt})
	}
	for lead := nt[0] - 1; lead >= 2; lead-- {
		cands = append(cands, [2][]int{mt, descending(lead)})
	}
	return cands
}

// AutotuneGEMM returns the lowest-modeled-cycle plan among the candidate
// tilings for the problem, memoized per (dtype, M, N, K, machine).
// Candidates are evaluated on a small steady-state batch of the tuning
// profile's machine model.
func AutotuneGEMM(p GEMMProblem, tun Tuning) (*GEMMPlan, error) {
	key := tuneKey{dt: int(p.DT), m: p.M, n: p.N, k: p.K, prof: tun.Prof.Name}
	tuneMu.Lock()
	if pl, ok := tuneCache[key]; ok {
		tuneMu.Unlock()
		// Re-plan with the cached tiling but the caller's exact problem
		// (alpha/beta/count differ without affecting kernel choice).
		return newGEMMPlan(p, tun, pl.MTiles, pl.NTiles)
	}
	tuneMu.Unlock()

	var best *GEMMPlan
	var bestCycles int64 = -1
	const tuneGroups = 4
	for _, cand := range candidateTilings(p) {
		pl, err := newGEMMPlan(p, tun, cand[0], cand[1])
		if err != nil {
			return nil, err
		}
		sim := machine.NewSim(tun.Prof, p.DT.ElemBytes())
		cycles, err := SimGEMM(pl, tuneGroups, sim)
		if err != nil {
			return nil, err
		}
		if bestCycles < 0 || cycles < bestCycles {
			best, bestCycles = pl, cycles
		}
	}
	tuneMu.Lock()
	tuneCache[key] = best
	tuneMu.Unlock()
	return best, nil
}

// TuneCacheSize reports the number of memoized tuning decisions (for
// tests and the info tool).
func TuneCacheSize() int {
	tuneMu.Lock()
	defer tuneMu.Unlock()
	return len(tuneCache)
}
