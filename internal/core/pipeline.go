package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"iatf/internal/layout"
	"iatf/internal/vec"
)

// Streaming pack/compute pipeline: within one worker's chunk of the
// group range, the super-batch slot arrays are double-buffered and the
// pack pass runs on a packer goroutine one super-batch ahead of the
// compute pass, so the memcpy-bound packing kernels overlap the
// FMA-bound computing kernels instead of serializing with them.
//
// Everything on this path is recycled: pipe structs (with their two
// handoff channels) come from sync.Pools, packer goroutines are
// persistent and fed through a job channel, and the double buffers are
// ordinary bufpool buffers at twice the super-batch size — a warm
// pipelined call allocates nothing.
//
// The handoff protocol is a two-token ring: the worker primes `free`
// with parities 0 and 1, the packer takes a parity, packs the next
// super-batch chunk into that half of the slot arrays and returns it on
// `ready`; the worker computes from the half it receives and recycles
// the parity once the half's last consumer (compute, or the B
// write-back for TRSM/TRMM) is done. Both channels have capacity 2, so
// neither side blocks spuriously and the channels are empty again when
// the chunk range is drained — which is what makes the pipe poolable.

// pipeJob is one worker-chunk packing assignment handed to a packer.
type pipeJob interface{ run() }

var (
	packJobs    = make(chan pipeJob, 256)
	packerCount atomic.Int32
	packerIdle  atomic.Int32

	pipeChunks    atomic.Uint64 // super-batch chunks packed ahead
	pipeStalls    atomic.Uint64 // compute passes that waited on packing
	pipeFallbacks atomic.Uint64 // pipeline declined: packers saturated
)

// maxPackers bounds the packer goroutines: one per processor is enough,
// since a packer only has work while its paired compute worker runs.
func maxPackers() int { return runtime.GOMAXPROCS(0) }

// submitPipe hands a job to an idle packer, spawning a new persistent
// packer if none is idle and the bound allows. Returns false when the
// packer fleet is saturated — the caller packs synchronously.
func submitPipe(j pipeJob) bool {
	for {
		if idle := packerIdle.Load(); idle > 0 {
			if !packerIdle.CompareAndSwap(idle, idle-1) {
				continue
			}
			packJobs <- j
			return true
		}
		n := packerCount.Load()
		if int(n) >= maxPackers() {
			return false
		}
		if packerCount.CompareAndSwap(n, n+1) {
			go packerLoop()
			packJobs <- j
			return true
		}
	}
}

func packerLoop() {
	for j := range packJobs {
		j.run()
		packerIdle.Add(1)
	}
}

// PipelineStats is a snapshot of the process-wide pipeline counters.
type PipelineStats struct {
	Chunks    uint64 `json:"chunks"`    // super-batch chunks packed ahead of compute
	Stalls    uint64 `json:"stalls"`    // compute passes that blocked waiting for packing
	Fallbacks uint64 `json:"fallbacks"` // pipeline requests declined (packers saturated)
	Packers   int    `json:"packers"`   // persistent packer goroutines alive
}

// PipelineSnapshot returns the current pipeline counters.
func PipelineSnapshot() PipelineStats {
	return PipelineStats{
		Chunks:    pipeChunks.Load(),
		Stalls:    pipeStalls.Load(),
		Fallbacks: pipeFallbacks.Load(),
		Packers:   int(packerCount.Load()),
	}
}

// gemmPipe carries one GEMM worker chunk's pack state to a packer.
type gemmPipe[E vec.Float] struct {
	pl           *GEMMPlan
	a, b         *layout.Compact[E]
	packA, packB []E // double-buffered slot arrays (2·gb·len); nil = not packed
	gLo, gHi     int
	ready, free  chan int
}

func (p *gemmPipe[E]) run() {
	// Hoist every field into locals: after the final ready send the
	// worker may recycle the pipe, so the loop tail must not touch p.
	pl, a, b := p.pl, p.a, p.b
	packA, packB := p.packA, p.packB
	gLo, gHi := p.gLo, p.gHi
	ready, free := p.ready, p.free
	gb := pl.GroupsPerBatch
	for sb := gLo; sb < gHi; sb += gb {
		par := <-free
		end := sb + gb
		if end > gHi {
			end = gHi
		}
		gemmPackChunk(pl, a, b, packA, packB, sb, end, par*gb)
		pipeChunks.Add(1)
		ready <- par
	}
}

var (
	gemmPipeF32 sync.Pool
	gemmPipeF64 sync.Pool
	triPipeF32  sync.Pool
	triPipeF64  sync.Pool
)

func isF32[E vec.Float]() bool {
	var z E
	_, ok := any(z).(float32)
	return ok
}

func getGEMMPipe[E vec.Float]() *gemmPipe[E] {
	pool := &gemmPipeF64
	if isF32[E]() {
		pool = &gemmPipeF32
	}
	if v := pool.Get(); v != nil {
		return v.(*gemmPipe[E])
	}
	return &gemmPipe[E]{ready: make(chan int, 2), free: make(chan int, 2)}
}

func putGEMMPipe[E vec.Float](p *gemmPipe[E]) {
	p.pl, p.a, p.b, p.packA, p.packB = nil, nil, nil, nil, nil
	pool := &gemmPipeF64
	if isF32[E]() {
		pool = &gemmPipeF32
	}
	pool.Put(p)
}

// triPackArgs is the pack-pass state shared by TRSM and TRMM: triangle
// packing (reciprocal diagonal for TRSM, true diagonal for TRMM),
// optional B canonicalization and optional alpha scaling.
type triPackArgs[E vec.Float] struct {
	a, b                             *layout.Compact[E]
	panels                           []int
	packTri, packB                   []E // nil = that pack step is skipped
	mEff, nEff                       int
	lenA, lenB, lenTri, lenPB        int
	effUpper, transAEff, unit, recip bool
	reverseB, transposeB             bool
	alphaRe, alphaIm                 float64
	scale                            bool
	cplx                             bool
	vl, bl, gb                       int
}

// packChunk packs groups [sb, end) into slots starting at slotBase.
func (ar *triPackArgs[E]) packChunk(sb, end, slotBase int) {
	for g := sb; g < end; g++ {
		slot := slotBase + (g - sb)
		if ar.packTri != nil {
			npackTri(ar.a.Data[g*ar.lenA:(g+1)*ar.lenA], ar.mEff, ar.effUpper, ar.transAEff,
				ar.unit, ar.recip, ar.panels, ar.cplx, ar.vl, ar.bl, ar.packTri[slot*ar.lenTri:])
		}
		var target []E
		if ar.packB != nil {
			nBCopy(ar.b.Data[g*ar.lenB:(g+1)*ar.lenB], ar.b.Rows, ar.b.Cols,
				ar.reverseB, ar.transposeB, ar.bl, ar.packB[slot*ar.lenPB:])
			target = ar.packB[slot*ar.lenPB : (slot+1)*ar.lenPB]
		} else {
			target = ar.b.Data[g*ar.lenB : (g+1)*ar.lenB]
		}
		if ar.scale {
			nscale(target, ar.mEff*ar.nEff, ar.cplx, ar.vl, ar.alphaRe, ar.alphaIm)
		}
	}
}

// triPipe carries one TRSM/TRMM worker chunk's pack state to a packer.
type triPipe[E vec.Float] struct {
	args        triPackArgs[E]
	gLo, gHi    int
	ready, free chan int
}

func (p *triPipe[E]) run() {
	args := p.args // value copy: the loop tail must not touch p
	gLo, gHi := p.gLo, p.gHi
	ready, free := p.ready, p.free
	gb := args.gb
	for sb := gLo; sb < gHi; sb += gb {
		par := <-free
		end := sb + gb
		if end > gHi {
			end = gHi
		}
		args.packChunk(sb, end, par*gb)
		pipeChunks.Add(1)
		ready <- par
	}
}

func getTriPipe[E vec.Float]() *triPipe[E] {
	pool := &triPipeF64
	if isF32[E]() {
		pool = &triPipeF32
	}
	if v := pool.Get(); v != nil {
		return v.(*triPipe[E])
	}
	return &triPipe[E]{ready: make(chan int, 2), free: make(chan int, 2)}
}

func putTriPipe[E vec.Float](p *triPipe[E]) {
	p.args = triPackArgs[E]{}
	pool := &triPipeF64
	if isF32[E]() {
		pool = &triPipeF32
	}
	pool.Put(p)
}
