// Package store is the persistent autotune store: the on-disk form of
// the install-time stage's products. A store file holds the memoized
// kernel-schedule set (kopt.MemoEntry: generator spec → list-scheduled
// program) and the plan descriptors an engine resolved, keyed by a
// machine-profile/tuning fingerprint. A cold process whose engine hashes
// to the same fingerprint loads the file and starts warm — no kernel
// generation, no list scheduling, no run-time planning for stored
// shapes.
//
// Staleness handling is deliberately forgiving, because the store is a
// cache, never a source of truth:
//
//   - fingerprint mismatch → the file is ignored (ErrMismatch) and the
//     engine falls back to live tuning;
//   - format-version mismatch → same;
//   - corrupt or truncated file → ErrCorrupt, caller rebuilds;
//   - concurrent writers → each writes a private temp file in the target
//     directory and atomically renames it over the destination, so
//     readers always observe a complete file (last writer wins;
//     iatf-tune merges with the existing store before writing, so
//     concurrent tuners converge on the union).
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"iatf/internal/kopt"
)

// FormatVersion is the on-disk schema version. Files written under a
// different version are ignored, not migrated: the store can always be
// rebuilt from scratch by re-tuning.
const FormatVersion = 1

// ErrMismatch reports a structurally valid store file whose fingerprint
// or format version does not match the reader — stale relative to this
// engine, to be ignored.
var ErrMismatch = errors.New("autotune store fingerprint mismatch")

// ErrCorrupt reports a store file that could not be decoded — truncated,
// overwritten, or not a store file at all. Callers rebuild.
var ErrCorrupt = errors.New("autotune store corrupt")

// PlanDesc is the serializable identity of one cached plan: exactly the
// engine's plan-cache key. Mode flags travel as their internal integer
// encodings; the fingerprint pins the encoding's meaning.
type PlanDesc struct {
	Kind        int `json:"kind"`
	DType       int `json:"dtype"`
	M           int `json:"m"`
	N           int `json:"n,omitempty"`
	K           int `json:"k,omitempty"`
	TransA      int `json:"trans_a,omitempty"`
	TransB      int `json:"trans_b,omitempty"`
	Side        int `json:"side,omitempty"`
	Uplo        int `json:"uplo,omitempty"`
	Diag        int `json:"diag,omitempty"`
	CountBucket int `json:"count_bucket"`
}

// File is one decoded store.
type File struct {
	Version     int              `json:"version"`
	Fingerprint string           `json:"fingerprint"`
	CreatedUnix int64            `json:"created_unix"`
	Tool        string           `json:"tool,omitempty"`
	Kernels     []kopt.MemoEntry `json:"kernels"`
	Plans       []PlanDesc       `json:"plans"`
}

// New returns an empty store for a fingerprint, stamped now.
func New(fingerprint, tool string) *File {
	return &File{
		Version:     FormatVersion,
		Fingerprint: fingerprint,
		CreatedUnix: time.Now().Unix(),
		Tool:        tool,
	}
}

// DefaultDir returns the store directory: $IATF_STORE_DIR when set, else
// <user cache dir>/iatf (~/.cache/iatf on Linux), else os.TempDir()/iatf
// when no cache dir resolves.
func DefaultDir() string {
	if d := os.Getenv("IATF_STORE_DIR"); d != "" {
		return d
	}
	if d, err := os.UserCacheDir(); err == nil {
		return filepath.Join(d, "iatf")
	}
	return filepath.Join(os.TempDir(), "iatf")
}

// PathFor returns the store file path for a fingerprint under dir. The
// fingerprint is already filesystem-safe (see core.Tuning.Fingerprint).
func PathFor(dir, fingerprint string) string {
	return filepath.Join(dir, fingerprint+".json")
}

// Load reads and validates the store at path. It returns:
//
//   - (file, nil) on a valid store matching wantFingerprint;
//   - (nil, fs.ErrNotExist-wrapping error) when the file is absent;
//   - (nil, ErrCorrupt-wrapping error) when it cannot be decoded;
//   - (nil, ErrMismatch-wrapping error) on version or fingerprint skew.
//
// An empty wantFingerprint skips the fingerprint check (inspection
// tools).
func Load(path, wantFingerprint string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
	}
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("%w: %s: format v%d, want v%d", ErrMismatch, path, f.Version, FormatVersion)
	}
	if wantFingerprint != "" && f.Fingerprint != wantFingerprint {
		return nil, fmt.Errorf("%w: %s: store is %q, engine is %q", ErrMismatch, path, f.Fingerprint, wantFingerprint)
	}
	return &f, nil
}

// WriteAtomic serializes the store to path via a same-directory temp
// file and rename, creating the directory as needed. Concurrent writers
// never interleave: each rename installs one complete file.
func (f *File) WriteAtomic(path string) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(f)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// Merge folds other's kernels and plans into f, skipping duplicates.
// Used by iatf-tune to union with an existing store before writing.
func (f *File) Merge(other *File) {
	if other == nil {
		return
	}
	seenK := make(map[kopt.MemoKey]bool, len(f.Kernels))
	for _, k := range f.Kernels {
		seenK[k.Key] = true
	}
	for _, k := range other.Kernels {
		if !seenK[k.Key] {
			seenK[k.Key] = true
			f.Kernels = append(f.Kernels, k)
		}
	}
	seenP := make(map[PlanDesc]bool, len(f.Plans))
	for _, p := range f.Plans {
		seenP[p] = true
	}
	for _, p := range other.Plans {
		if !seenP[p] {
			seenP[p] = true
			f.Plans = append(f.Plans, p)
		}
	}
}
