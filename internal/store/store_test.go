package store

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"iatf/internal/asm"
	"iatf/internal/kopt"
)

func sampleFile(fp string) *File {
	f := New(fp, "test")
	f.Kernels = []kopt.MemoEntry{
		{Key: kopt.MemoKey{Spec: "spec-a", Opt: true, Prof: "p"}, Prog: asm.Prog{{Op: 1, D: 2}}},
		{Key: kopt.MemoKey{Spec: "spec-b", Pf: true, Prof: "p"}, Prog: asm.Prog{{Op: 3, A: 1, B: 2}}},
	}
	f.Plans = []PlanDesc{
		{Kind: 0, DType: 1, M: 8, N: 8, K: 8, CountBucket: 64},
		{Kind: 1, DType: 0, M: 4, N: 2, CountBucket: 1},
	}
	return f
}

func TestRoundTrip(t *testing.T) {
	path := PathFor(t.TempDir(), "fp-1")
	f := sampleFile("fp-1")
	if err := f.WriteAtomic(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, f)
	}
	// Empty wantFingerprint skips the check (inspection tools).
	if _, err := Load(path, ""); err != nil {
		t.Fatalf("inspection load: %v", err)
	}
}

func TestLoadAbsent(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "nope.json"), "fp")
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err = %v, want fs.ErrNotExist", err)
	}
}

func TestLoadFingerprintMismatch(t *testing.T) {
	path := PathFor(t.TempDir(), "fp-a")
	if err := sampleFile("fp-a").WriteAtomic(path); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path, "fp-b")
	if !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v, want ErrMismatch", err)
	}
}

func TestLoadVersionMismatch(t *testing.T) {
	path := PathFor(t.TempDir(), "fp-a")
	f := sampleFile("fp-a")
	f.Version = FormatVersion + 1
	if err := f.WriteAtomic(path); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path, "fp-a")
	if !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v, want ErrMismatch", err)
	}
}

func TestLoadCorrupt(t *testing.T) {
	dir := t.TempDir()
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("not a store at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(garbage, "fp"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage: err = %v, want ErrCorrupt", err)
	}

	// Truncation mid-document must also read as corrupt, not crash.
	whole := PathFor(dir, "fp-t")
	if err := sampleFile("fp-t").WriteAtomic(whole); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(whole)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(whole, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(whole, "fp-t"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated: err = %v, want ErrCorrupt", err)
	}
}

func TestWriteAtomicReplacesAndLeavesNoTemps(t *testing.T) {
	dir := t.TempDir()
	path := PathFor(dir, "fp-r")
	if err := sampleFile("fp-r").WriteAtomic(path); err != nil {
		t.Fatal(err)
	}
	f2 := New("fp-r", "test2")
	f2.Plans = []PlanDesc{{Kind: 3, DType: 1, M: 16, K: 16, CountBucket: 2}}
	if err := f2.WriteAtomic(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, "fp-r")
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "test2" || len(got.Plans) != 1 {
		t.Fatalf("replacement not observed: %+v", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestMergeDedups(t *testing.T) {
	a := sampleFile("fp-m")
	b := sampleFile("fp-m") // identical: merge must add nothing
	b.Plans = append(b.Plans, PlanDesc{Kind: 2, DType: 1, M: 3, N: 3, CountBucket: 1})
	b.Kernels = append(b.Kernels, kopt.MemoEntry{
		Key: kopt.MemoKey{Spec: "spec-c", Prof: "p"}, Prog: asm.Prog{{Op: 9}}})
	a.Merge(b)
	if len(a.Plans) != 3 {
		t.Fatalf("plans after merge = %d, want 3 (2 original + 1 new)", len(a.Plans))
	}
	if len(a.Kernels) != 3 {
		t.Fatalf("kernels after merge = %d, want 3", len(a.Kernels))
	}
	a.Merge(nil) // nil other is a no-op
	if len(a.Plans) != 3 {
		t.Fatalf("nil merge changed plans: %d", len(a.Plans))
	}
}

// TestConcurrentWriters hammers one path with load-merge-write cycles —
// the concurrent-iatf-tune scenario — while readers continuously load.
// Readers must never observe a torn file: every load is either a fully
// valid store or fs.ErrNotExist.
func TestConcurrentWriters(t *testing.T) {
	path := PathFor(t.TempDir(), "fp-c")
	const writers, rounds = 4, 8
	var wg, readerWG sync.WaitGroup
	stop := make(chan struct{})

	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, err := Load(path, "fp-c")
			if err != nil && !errors.Is(err, fs.ErrNotExist) {
				t.Errorf("reader observed %v", err)
				return
			}
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				f := New("fp-c", "tuner")
				f.Plans = []PlanDesc{{Kind: 0, DType: 1, M: 10*w + r, N: 1, K: 1, CountBucket: 1}}
				if prev, err := Load(path, "fp-c"); err == nil {
					f.Merge(prev)
				}
				if err := f.WriteAtomic(path); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	final, err := Load(path, "fp-c")
	if err != nil {
		t.Fatal(err)
	}
	// Last writer's final round merged what it saw, so the union is at
	// least its own entries; every entry must be one some writer produced.
	if len(final.Plans) == 0 {
		t.Fatal("final store empty")
	}
	for _, p := range final.Plans {
		if p.M < 0 || p.M >= 10*writers+rounds || p.N != 1 || p.K != 1 {
			t.Fatalf("foreign plan in final store: %+v", p)
		}
	}
}

func TestDefaultDirEnvOverride(t *testing.T) {
	t.Setenv("IATF_STORE_DIR", "/tmp/iatf-env-test")
	if got := DefaultDir(); got != "/tmp/iatf-env-test" {
		t.Fatalf("DefaultDir = %q, want env override", got)
	}
	t.Setenv("IATF_STORE_DIR", "")
	if got := DefaultDir(); got == "" || got == "/tmp/iatf-env-test" {
		t.Fatalf("DefaultDir without env = %q", got)
	}
}
