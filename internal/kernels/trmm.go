package kernels

import "iatf/internal/vec"

// TRMM kernels — the compact triangular matrix multiply, this library's
// extension of the IATF framework to a further level-3 routine (the
// paper's stated future work). The blocked algorithm mirrors TRSM with
// the dataflow reversed: panels are processed bottom-up so each panel's
// update reads only still-original rows.
//
//	B_i := Tri(i,i)·B_i            (TriMul, register-resident triangle)
//	B_i += L(i, j<i)·B_j           (RectAdd, FMLA form of the Eq. 4 kernel)
//
// The packed triangle stores true diagonal values (ones for Unit); alpha
// is pre-scaled into B exactly as in TRSM.

// TriMul multiplies ncols columns of B in place by the register-resident
// lower triangle (m ≤ 5 real). Rows are processed bottom-up so x_j
// (j < i) is still the original value when row i consumes it.
func TriMul[E vec.Float](pa, b []E, m, ncols, strideB, vl int) {
	if vl == 4 {
		triMul4(pa, b, m, ncols, strideB)
		return
	}
	if vl == 2 {
		triMul2(pa, b, m, ncols, strideB)
		return
	}
	var a [15]vec.V[E]
	n := m * (m + 1) / 2
	for i := 0; i < n; i++ {
		a[i] = vec.Load(pa[i*vl:], vl)
	}
	var x [5]vec.V[E]
	for l := 0; l < ncols; l++ {
		off := l * strideB * vl
		for i := 0; i < m; i++ {
			x[i] = vec.Load(b[off+i*vl:], vl)
		}
		for i := m - 1; i >= 0; i-- {
			row := i * (i + 1) / 2
			acc := vec.Mul(x[i], a[row+i])
			for j := 0; j < i; j++ {
				acc = vec.FMA(acc, a[row+j], x[j])
			}
			x[i] = acc
		}
		for i := 0; i < m; i++ {
			vec.Store(b[off+i*vl:], x[i], vl)
		}
	}
}

func triMul4[E vec.Float](pa, b []E, m, ncols, strideB int) {
	var a [15]*[4]E
	n := m * (m + 1) / 2
	for i := 0; i < n; i++ {
		a[i] = (*[4]E)(pa[i*4:])
	}
	var x [5][4]E
	for l := 0; l < ncols; l++ {
		off := l * strideB * 4
		for i := 0; i < m; i++ {
			x[i] = *(*[4]E)(b[off+i*4:])
		}
		for i := m - 1; i >= 0; i-- {
			row := i * (i + 1) / 2
			d := a[row+i]
			var acc [4]E
			acc[0] = x[i][0] * d[0]
			acc[1] = x[i][1] * d[1]
			acc[2] = x[i][2] * d[2]
			acc[3] = x[i][3] * d[3]
			for j := 0; j < i; j++ {
				fma4(&acc, a[row+j], &x[j])
			}
			x[i] = acc
		}
		for i := 0; i < m; i++ {
			*(*[4]E)(b[off+i*4:]) = x[i]
		}
	}
}

func triMul2[E vec.Float](pa, b []E, m, ncols, strideB int) {
	var a [15]*[2]E
	n := m * (m + 1) / 2
	for i := 0; i < n; i++ {
		a[i] = (*[2]E)(pa[i*2:])
	}
	var x [5][2]E
	for l := 0; l < ncols; l++ {
		off := l * strideB * 2
		for i := 0; i < m; i++ {
			x[i] = *(*[2]E)(b[off+i*2:])
		}
		for i := m - 1; i >= 0; i-- {
			row := i * (i + 1) / 2
			d := a[row+i]
			var acc [2]E
			acc[0] = x[i][0] * d[0]
			acc[1] = x[i][1] * d[1]
			for j := 0; j < i; j++ {
				fma2(&acc, a[row+j], &x[j])
			}
			x[i] = acc
		}
		for i := 0; i < m; i++ {
			*(*[2]E)(b[off+i*2:]) = x[i]
		}
	}
}

// TriMulCplx is the complex form of TriMul (m ≤ 3).
func TriMulCplx[E vec.Float](pa, b []E, m, ncols, strideB, vl int) {
	bl := 2 * vl
	var aRe, aIm [6]vec.V[E]
	n := m * (m + 1) / 2
	for i := 0; i < n; i++ {
		aRe[i] = vec.Load(pa[i*bl:], vl)
		aIm[i] = vec.Load(pa[i*bl+vl:], vl)
	}
	var xRe, xIm [3]vec.V[E]
	for l := 0; l < ncols; l++ {
		off := l * strideB * bl
		for i := 0; i < m; i++ {
			xRe[i] = vec.Load(b[off+i*bl:], vl)
			xIm[i] = vec.Load(b[off+i*bl+vl:], vl)
		}
		for i := m - 1; i >= 0; i-- {
			row := i * (i + 1) / 2
			dRe, dIm := aRe[row+i], aIm[row+i]
			accRe := vec.Sub(vec.Mul(xRe[i], dRe), vec.Mul(xIm[i], dIm))
			accIm := vec.Add(vec.Mul(xRe[i], dIm), vec.Mul(xIm[i], dRe))
			for j := 0; j < i; j++ {
				accRe = vec.FMA(accRe, aRe[row+j], xRe[j])
				accRe = vec.FMS(accRe, aIm[row+j], xIm[j])
				accIm = vec.FMA(accIm, aRe[row+j], xIm[j])
				accIm = vec.FMA(accIm, aIm[row+j], xRe[j])
			}
			xRe[i], xIm[i] = accRe, accIm
		}
		for i := 0; i < m; i++ {
			vec.Store(b[off+i*bl:], xRe[i], vl)
			vec.Store(b[off+i*bl+vl:], xIm[i], vl)
		}
	}
}

// RectAdd applies B_tile += L·X — the accumulating (FMLA) form of the
// TRSM rectangular kernel, used by the blocked TRMM.
func RectAdd[E vec.Float](pa, x, c []E, mc, nc, k, strideC, strideX, vl int) {
	if vl == 4 {
		rectAdd4(pa, x, c, mc, nc, k, strideC, strideX)
		return
	}
	if vl == 2 {
		rectAdd2(pa, x, c, mc, nc, k, strideC, strideX)
		return
	}
	var acc [4][4]vec.V[E]
	for cc := 0; cc < nc; cc++ {
		for r := 0; r < mc; r++ {
			acc[r][cc] = vec.Load(c[(cc*strideC+r)*vl:], vl)
		}
	}
	ao := 0
	for l := 0; l < k; l++ {
		var av, xv [4]vec.V[E]
		for r := 0; r < mc; r++ {
			av[r] = vec.Load(pa[ao:], vl)
			ao += vl
		}
		for cc := 0; cc < nc; cc++ {
			xv[cc] = vec.Load(x[(cc*strideX+l)*vl:], vl)
		}
		for cc := 0; cc < nc; cc++ {
			for r := 0; r < mc; r++ {
				acc[r][cc] = vec.FMA(acc[r][cc], av[r], xv[cc])
			}
		}
	}
	for cc := 0; cc < nc; cc++ {
		for r := 0; r < mc; r++ {
			vec.Store(c[(cc*strideC+r)*vl:], acc[r][cc], vl)
		}
	}
}

func rectAdd4[E vec.Float](pa, x, c []E, mc, nc, k, strideC, strideX int) {
	var acc [16][4]E
	for cc := 0; cc < nc; cc++ {
		for r := 0; r < mc; r++ {
			acc[cc*4+r] = *(*[4]E)(c[(cc*strideC+r)*4:])
		}
	}
	ao := 0
	for l := 0; l < k; l++ {
		var av, xv [4]*[4]E
		for r := 0; r < mc; r++ {
			av[r] = (*[4]E)(pa[ao:])
			ao += 4
		}
		for cc := 0; cc < nc; cc++ {
			xv[cc] = (*[4]E)(x[(cc*strideX+l)*4:])
		}
		for cc := 0; cc < nc; cc++ {
			for r := 0; r < mc; r++ {
				fma4(&acc[cc*4+r], av[r], xv[cc])
			}
		}
	}
	for cc := 0; cc < nc; cc++ {
		for r := 0; r < mc; r++ {
			*(*[4]E)(c[(cc*strideC+r)*4:]) = acc[cc*4+r]
		}
	}
}

func rectAdd2[E vec.Float](pa, x, c []E, mc, nc, k, strideC, strideX int) {
	var acc [16][2]E
	for cc := 0; cc < nc; cc++ {
		for r := 0; r < mc; r++ {
			acc[cc*4+r] = *(*[2]E)(c[(cc*strideC+r)*2:])
		}
	}
	ao := 0
	for l := 0; l < k; l++ {
		var av, xv [4]*[2]E
		for r := 0; r < mc; r++ {
			av[r] = (*[2]E)(pa[ao:])
			ao += 2
		}
		for cc := 0; cc < nc; cc++ {
			xv[cc] = (*[2]E)(x[(cc*strideX+l)*2:])
		}
		for cc := 0; cc < nc; cc++ {
			for r := 0; r < mc; r++ {
				fma2(&acc[cc*4+r], av[r], xv[cc])
			}
		}
	}
	for cc := 0; cc < nc; cc++ {
		for r := 0; r < mc; r++ {
			*(*[2]E)(c[(cc*strideC+r)*2:]) = acc[cc*4+r]
		}
	}
}

// RectAddCplx is the complex form of RectAdd (mc, nc ≤ 2).
func RectAddCplx[E vec.Float](pa, x, c []E, mc, nc, k, strideC, strideX, vl int) {
	bl := 2 * vl
	var accRe, accIm [2][2]vec.V[E]
	for cc := 0; cc < nc; cc++ {
		for r := 0; r < mc; r++ {
			off := (cc*strideC + r) * bl
			accRe[r][cc] = vec.Load(c[off:], vl)
			accIm[r][cc] = vec.Load(c[off+vl:], vl)
		}
	}
	ao := 0
	for l := 0; l < k; l++ {
		var aRe, aIm, xRe, xIm [2]vec.V[E]
		for r := 0; r < mc; r++ {
			aRe[r] = vec.Load(pa[ao:], vl)
			aIm[r] = vec.Load(pa[ao+vl:], vl)
			ao += bl
		}
		for cc := 0; cc < nc; cc++ {
			off := (cc*strideX + l) * bl
			xRe[cc] = vec.Load(x[off:], vl)
			xIm[cc] = vec.Load(x[off+vl:], vl)
		}
		for cc := 0; cc < nc; cc++ {
			for r := 0; r < mc; r++ {
				accRe[r][cc] = vec.FMA(accRe[r][cc], aRe[r], xRe[cc])
				accRe[r][cc] = vec.FMS(accRe[r][cc], aIm[r], xIm[cc])
				accIm[r][cc] = vec.FMA(accIm[r][cc], aRe[r], xIm[cc])
				accIm[r][cc] = vec.FMA(accIm[r][cc], aIm[r], xRe[cc])
			}
		}
	}
	for cc := 0; cc < nc; cc++ {
		for r := 0; r < mc; r++ {
			off := (cc*strideC + r) * bl
			vec.Store(c[off:], accRe[r][cc], vl)
			vec.Store(c[off+vl:], accIm[r][cc], vl)
		}
	}
}
