package kernels

import (
	"math"
	"math/rand"
	"testing"
)

// buildGroup fills a compact group of count lanes of n×n matrices with
// per-lane values from gen.
func buildGroup(n, vl int, gen func(lane, i, j int) float64) []float64 {
	a := make([]float64, n*n*vl)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			for l := 0; l < vl; l++ {
				a[(j*n+i)*vl+l] = gen(l, i, j)
			}
		}
	}
	return a
}

// LU factors must reconstruct the original matrix per lane.
func TestLUKernelReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n, vl = 5, 2
	orig := make([][5][5]float64, vl)
	a := buildGroup(n, vl, func(l, i, j int) float64 {
		v := rng.Float64()
		if i == j {
			v += float64(n)
		}
		orig[l][i][j] = v
		return v
	})
	info := make([]int, vl)
	LU(a, n, vl, info)
	for l := 0; l < vl; l++ {
		if info[l] != 0 {
			t.Fatalf("lane %d flagged singular", l)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				sum := 0.0
				for k := 0; k <= i && k <= j; k++ {
					lv := a[(k*n+i)*vl+l]
					if k == i {
						lv = 1
					}
					uv := a[(j*n+k)*vl+l]
					sum += lv * uv
				}
				if math.Abs(sum-orig[l][i][j]) > 1e-10 {
					t.Fatalf("lane %d (%d,%d): L·U=%v want %v", l, i, j, sum, orig[l][i][j])
				}
			}
		}
	}
}

// Cholesky factors must reconstruct per lane; non-SPD lanes are flagged.
func TestCholeskyKernelReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n, vl = 4, 2
	// Lane 0: SPD (MᵀM + nI); lane 1: indefinite (flagged).
	var m [4][4]float64
	for i := range m {
		for j := range m {
			m[i][j] = rng.Float64()
		}
	}
	var spd [4][4]float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				spd[i][j] += m[k][i] * m[k][j]
			}
		}
		spd[i][i] += float64(n)
	}
	a := buildGroup(n, vl, func(l, i, j int) float64 {
		if l == 0 {
			return spd[i][j]
		}
		if i == j {
			return -1 // negative diagonal: not SPD
		}
		return 0
	})
	info := make([]int, vl)
	Cholesky(a, n, vl, info)
	if info[0] != 0 {
		t.Fatalf("SPD lane flagged: %v", info)
	}
	if info[1] != 1 {
		t.Fatalf("indefinite lane not flagged at column 0: %v", info)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := 0.0
			for k := 0; k <= j; k++ {
				sum += a[(k*n+i)*vl] * a[(k*n+j)*vl]
			}
			if math.Abs(sum-spd[i][j]) > 1e-10 {
				t.Fatalf("(%d,%d): L·Lᵀ=%v want %v", i, j, sum, spd[i][j])
			}
		}
	}
}

// LUPiv must factor a permutation-requiring matrix and record pivots that
// reproduce P·A = L·U per lane.
func TestLUPivKernel(t *testing.T) {
	const n, vl = 3, 2
	// Lane 0 needs a swap at column 0; lane 1 is already fine.
	src := [2][3][3]float64{
		{{0, 1, 2}, {1, 1, 1}, {2, 0, 1}},
		{{3, 1, 0}, {1, 2, 1}, {0, 1, 2}},
	}
	a := buildGroup(n, vl, func(l, i, j int) float64 { return src[l][i][j] })
	piv := make([]int32, n*vl)
	info := make([]int, vl)
	LUPiv(a, n, vl, false, piv, info)
	for l := 0; l < vl; l++ {
		if info[l] != 0 {
			t.Fatalf("lane %d flagged singular", l)
		}
		// Apply the recorded pivots to the original and compare L·U.
		var pa [3][3]float64
		pa = src[l]
		for k := 0; k < n; k++ {
			r := int(piv[k*vl+l])
			pa[k], pa[r] = pa[r], pa[k]
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				sum := 0.0
				for k := 0; k <= i && k <= j; k++ {
					lv := a[(k*n+i)*vl+l]
					if k == i {
						lv = 1
					}
					sum += lv * a[(j*n+k)*vl+l]
				}
				if math.Abs(sum-pa[i][j]) > 1e-12 {
					t.Fatalf("lane %d (%d,%d): L·U=%v want %v", l, i, j, sum, pa[i][j])
				}
			}
		}
	}
	if piv[0] == 0 && piv[1] == 0 {
		t.Error("no pivot recorded for the zero-leading lane")
	}
}

// ApplyPivots must permute B rows per lane exactly as recorded.
func TestApplyPivotsKernel(t *testing.T) {
	const rows, cols, vl = 3, 2, 2
	b := make([]float64, rows*cols*vl)
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			for l := 0; l < vl; l++ {
				b[(j*rows+i)*vl+l] = float64(100*l + 10*i + j)
			}
		}
	}
	// Lane 0: swap rows 0↔2 at step 0; lane 1: identity.
	piv := []int32{2, 0, 1, 1, 2, 2}
	ApplyPivots(b, rows, cols, vl, false, piv)
	// Lane 0 row 0 now holds old row 2; lane 1 untouched.
	if b[0] != 20 || b[(0*rows+2)*vl] != 0 {
		t.Errorf("lane 0 swap wrong: %v", b)
	}
	if b[1] != 100 {
		t.Errorf("lane 1 modified: %v", b)
	}
}

// Complex LU via the kernel: verify on a lane against complex128 math.
func TestLUCplxKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, vl = 4, 2
	orig := make([][4][4]complex128, vl)
	a := make([]float64, n*n*2*vl)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			for l := 0; l < vl; l++ {
				v := complex(rng.Float64(), rng.Float64())
				if i == j {
					v += complex(float64(n), 0)
				}
				orig[l][i][j] = v
				off := (j*n + i) * 2 * vl
				a[off+l] = real(v)
				a[off+vl+l] = imag(v)
			}
		}
	}
	info := make([]int, vl)
	LUCplx(a, n, vl, info)
	for l := 0; l < vl; l++ {
		if info[l] != 0 {
			t.Fatalf("lane %d flagged", l)
		}
		at := func(i, j int) complex128 {
			off := (j*n + i) * 2 * vl
			return complex(a[off+l], a[off+vl+l])
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				sum := complex(0, 0)
				for k := 0; k <= i && k <= j; k++ {
					lv := at(i, k)
					if k == i {
						lv = 1
					}
					sum += lv * at(k, j)
				}
				if d := sum - orig[l][i][j]; math.Hypot(real(d), imag(d)) > 1e-10 {
					t.Fatalf("lane %d (%d,%d): %v want %v", l, i, j, sum, orig[l][i][j])
				}
			}
		}
	}
}
