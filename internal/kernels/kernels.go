// Package kernels contains the native Go realizations of the IATF
// computing kernels — the same tile shapes, packing contracts and
// algorithms as the generated IR kernels, executed directly on compact
// buffers with the vec SIMD substrate. This is the wall-clock execution
// backend of the public API; the IR + VM path in internal/asm exists to
// validate the install-time generator/optimizer and to drive the cycle
// model.
//
// All kernels operate on slices of the real component type; complex data
// uses the split-plane block format of the compact layout.
package kernels

import "iatf/internal/vec"

// GEMM computes one C tile update: C += alpha·A·B over an interleave
// group, consuming a packed mc×K A panel (N-shape) and a packed K×nc B
// panel (Z-shape). C blocks live at (col·strideC + row)·vl relative to c.
// mc and nc are at most 4 (the Table 1 main kernel).
// ovw selects the overwrite save (C = alpha·A·B, the beta = 0 case) so the
// caller can skip both the beta pre-scale pass and the C read.
func GEMM[E vec.Float](pa, pb, c []E, mc, nc, k, strideC, vl int, alpha E, ovw bool) {
	switch {
	case vl == 4 && mc == 4 && nc == 4:
		gemm44x4(pa, pb, c, k, strideC, alpha, ovw)
		return
	case vl == 2 && mc == 4 && nc == 4:
		gemm44x2(pa, pb, c, k, strideC, alpha, ovw)
		return
	case vl == 4:
		gemm4(pa, pb, c, mc, nc, k, strideC, alpha, ovw)
		return
	case vl == 2:
		gemm2(pa, pb, c, mc, nc, k, strideC, alpha, ovw)
		return
	}
	gemmGeneric(pa, pb, c, mc, nc, k, strideC, vl, alpha, ovw)
}

// gemmGeneric is the portable reference form of GEMM for any lane count.
func gemmGeneric[E vec.Float](pa, pb, c []E, mc, nc, k, strideC, vl int, alpha E, ovw bool) {
	var acc [4][4]vec.V[E]
	ao, bo := 0, 0
	for l := 0; l < k; l++ {
		var av, bv [4]vec.V[E]
		for r := 0; r < mc; r++ {
			av[r] = vec.Load(pa[ao:], vl)
			ao += vl
		}
		for cc := 0; cc < nc; cc++ {
			bv[cc] = vec.Load(pb[bo:], vl)
			bo += vl
		}
		for cc := 0; cc < nc; cc++ {
			for r := 0; r < mc; r++ {
				acc[r][cc] = vec.FMA(acc[r][cc], av[r], bv[cc])
			}
		}
	}
	va := vec.Dup(alpha)
	for cc := 0; cc < nc; cc++ {
		for r := 0; r < mc; r++ {
			off := (cc*strideC + r) * vl
			var cur vec.V[E]
			if !ovw {
				cur = vec.Load(c[off:], vl)
			}
			cur = vec.FMA(cur, acc[r][cc], va)
			vec.Store(c[off:], cur, vl)
		}
	}
}

// GEMMCplx is the complex form of GEMM: blocks are [re|im] pairs and the
// multiply-accumulate expands to the four-instruction complex pattern.
// mc ≤ 3, nc ≤ 2 (Table 1).
func GEMMCplx[E vec.Float](pa, pb, c []E, mc, nc, k, strideC, vl int, alphaRe, alphaIm E, ovw bool) {
	switch vl {
	case 4:
		gemmCplx4(pa, pb, c, mc, nc, k, strideC, alphaRe, alphaIm, ovw)
		return
	case 2:
		gemmCplx2(pa, pb, c, mc, nc, k, strideC, alphaRe, alphaIm, ovw)
		return
	}
	gemmCplxGeneric(pa, pb, c, mc, nc, k, strideC, vl, alphaRe, alphaIm, ovw)
}

// gemmCplxGeneric is the portable reference form of GEMMCplx.
func gemmCplxGeneric[E vec.Float](pa, pb, c []E, mc, nc, k, strideC, vl int, alphaRe, alphaIm E, ovw bool) {
	var accRe, accIm [3][2]vec.V[E]
	bl := 2 * vl
	ao, bo := 0, 0
	for l := 0; l < k; l++ {
		var aRe, aIm [3]vec.V[E]
		var bRe, bIm [2]vec.V[E]
		for r := 0; r < mc; r++ {
			aRe[r] = vec.Load(pa[ao:], vl)
			aIm[r] = vec.Load(pa[ao+vl:], vl)
			ao += bl
		}
		for cc := 0; cc < nc; cc++ {
			bRe[cc] = vec.Load(pb[bo:], vl)
			bIm[cc] = vec.Load(pb[bo+vl:], vl)
			bo += bl
		}
		for cc := 0; cc < nc; cc++ {
			for r := 0; r < mc; r++ {
				accRe[r][cc] = vec.FMA(accRe[r][cc], aRe[r], bRe[cc])
				accRe[r][cc] = vec.FMS(accRe[r][cc], aIm[r], bIm[cc])
				accIm[r][cc] = vec.FMA(accIm[r][cc], aRe[r], bIm[cc])
				accIm[r][cc] = vec.FMA(accIm[r][cc], aIm[r], bRe[cc])
			}
		}
	}
	vaRe, vaIm := vec.Dup(alphaRe), vec.Dup(alphaIm)
	for cc := 0; cc < nc; cc++ {
		for r := 0; r < mc; r++ {
			off := (cc*strideC + r) * bl
			var curRe, curIm vec.V[E]
			if !ovw {
				curRe = vec.Load(c[off:], vl)
				curIm = vec.Load(c[off+vl:], vl)
			}
			curRe = vec.FMA(curRe, accRe[r][cc], vaRe)
			curRe = vec.FMS(curRe, accIm[r][cc], vaIm)
			curIm = vec.FMA(curIm, accIm[r][cc], vaRe)
			curIm = vec.FMA(curIm, accRe[r][cc], vaIm)
			vec.Store(c[off:], curRe, vl)
			vec.Store(c[off+vl:], curIm, vl)
		}
	}
}

// Tri solves the canonical lower triangular system for ncols columns of B
// in place (Algorithm 4): the packed triangle pa holds row-wise blocks
// with reciprocal diagonals; column c of B lives at c·strideB·vl.
// m ≤ 5 (real register budget).
func Tri[E vec.Float](pa, b []E, m, ncols, strideB, vl int) {
	switch vl {
	case 4:
		tri4(pa, b, m, ncols, strideB)
		return
	case 2:
		tri2(pa, b, m, ncols, strideB)
		return
	}
	triGeneric(pa, b, m, ncols, strideB, vl)
}

// triGeneric is the portable reference form of Tri.
func triGeneric[E vec.Float](pa, b []E, m, ncols, strideB, vl int) {
	var a [15]vec.V[E] // m(m+1)/2 ≤ 15
	n := m * (m + 1) / 2
	for i := 0; i < n; i++ {
		a[i] = vec.Load(pa[i*vl:], vl)
	}
	var x [5]vec.V[E]
	for l := 0; l < ncols; l++ {
		off := l * strideB * vl
		for i := 0; i < m; i++ {
			x[i] = vec.Load(b[off+i*vl:], vl)
		}
		for i := 0; i < m; i++ {
			row := i * (i + 1) / 2
			for j := 0; j < i; j++ {
				x[i] = vec.FMS(x[i], a[row+j], x[j])
			}
			x[i] = vec.Mul(x[i], a[row+i])
		}
		for i := 0; i < m; i++ {
			vec.Store(b[off+i*vl:], x[i], vl)
		}
	}
}

// TriCplx is the complex form of Tri; m ≤ 3.
func TriCplx[E vec.Float](pa, b []E, m, ncols, strideB, vl int) {
	bl := 2 * vl
	var aRe, aIm [6]vec.V[E] // m(m+1)/2 ≤ 6
	n := m * (m + 1) / 2
	for i := 0; i < n; i++ {
		aRe[i] = vec.Load(pa[i*bl:], vl)
		aIm[i] = vec.Load(pa[i*bl+vl:], vl)
	}
	var xRe, xIm [3]vec.V[E]
	for l := 0; l < ncols; l++ {
		off := l * strideB * bl
		for i := 0; i < m; i++ {
			xRe[i] = vec.Load(b[off+i*bl:], vl)
			xIm[i] = vec.Load(b[off+i*bl+vl:], vl)
		}
		for i := 0; i < m; i++ {
			row := i * (i + 1) / 2
			for j := 0; j < i; j++ {
				// x_i -= a(i,j)·x_j
				xRe[i] = vec.FMS(xRe[i], aRe[row+j], xRe[j])
				xRe[i] = vec.FMA(xRe[i], aIm[row+j], xIm[j])
				xIm[i] = vec.FMS(xIm[i], aRe[row+j], xIm[j])
				xIm[i] = vec.FMS(xIm[i], aIm[row+j], xRe[j])
			}
			// x_i *= recip(a_ii)
			re := vec.Sub(vec.Mul(xRe[i], aRe[row+i]), vec.Mul(xIm[i], aIm[row+i]))
			im := vec.Add(vec.Mul(xRe[i], aIm[row+i]), vec.Mul(xIm[i], aRe[row+i]))
			xRe[i], xIm[i] = re, im
		}
		for i := 0; i < m; i++ {
			vec.Store(b[off+i*bl:], xRe[i], vl)
			vec.Store(b[off+i*bl+vl:], xIm[i], vl)
		}
	}
}

// Rect applies the TRSM rectangular update (Eq. 4) to a B tile in place:
// B -= L·X, with L packed column-major (mc blocks per reduction step) and
// X read strided from the solved rows.
func Rect[E vec.Float](pa, x, c []E, mc, nc, k, strideC, strideX, vl int) {
	switch vl {
	case 4:
		rect4(pa, x, c, mc, nc, k, strideC, strideX)
		return
	case 2:
		rect2(pa, x, c, mc, nc, k, strideC, strideX)
		return
	}
	rectGeneric(pa, x, c, mc, nc, k, strideC, strideX, vl)
}

// rectGeneric is the portable reference form of Rect.
func rectGeneric[E vec.Float](pa, x, c []E, mc, nc, k, strideC, strideX, vl int) {
	var acc [4][4]vec.V[E]
	for cc := 0; cc < nc; cc++ {
		for r := 0; r < mc; r++ {
			acc[r][cc] = vec.Load(c[(cc*strideC+r)*vl:], vl)
		}
	}
	ao := 0
	for l := 0; l < k; l++ {
		var av, xv [4]vec.V[E]
		for r := 0; r < mc; r++ {
			av[r] = vec.Load(pa[ao:], vl)
			ao += vl
		}
		for cc := 0; cc < nc; cc++ {
			xv[cc] = vec.Load(x[(cc*strideX+l)*vl:], vl)
		}
		for cc := 0; cc < nc; cc++ {
			for r := 0; r < mc; r++ {
				acc[r][cc] = vec.FMS(acc[r][cc], av[r], xv[cc])
			}
		}
	}
	for cc := 0; cc < nc; cc++ {
		for r := 0; r < mc; r++ {
			vec.Store(c[(cc*strideC+r)*vl:], acc[r][cc], vl)
		}
	}
}

// RectCplx is the complex form of Rect; mc, nc ≤ 2.
func RectCplx[E vec.Float](pa, x, c []E, mc, nc, k, strideC, strideX, vl int) {
	bl := 2 * vl
	var accRe, accIm [2][2]vec.V[E]
	for cc := 0; cc < nc; cc++ {
		for r := 0; r < mc; r++ {
			off := (cc*strideC + r) * bl
			accRe[r][cc] = vec.Load(c[off:], vl)
			accIm[r][cc] = vec.Load(c[off+vl:], vl)
		}
	}
	ao := 0
	for l := 0; l < k; l++ {
		var aRe, aIm, xRe, xIm [2]vec.V[E]
		for r := 0; r < mc; r++ {
			aRe[r] = vec.Load(pa[ao:], vl)
			aIm[r] = vec.Load(pa[ao+vl:], vl)
			ao += bl
		}
		for cc := 0; cc < nc; cc++ {
			off := (cc*strideX + l) * bl
			xRe[cc] = vec.Load(x[off:], vl)
			xIm[cc] = vec.Load(x[off+vl:], vl)
		}
		for cc := 0; cc < nc; cc++ {
			for r := 0; r < mc; r++ {
				accRe[r][cc] = vec.FMS(accRe[r][cc], aRe[r], xRe[cc])
				accRe[r][cc] = vec.FMA(accRe[r][cc], aIm[r], xIm[cc])
				accIm[r][cc] = vec.FMS(accIm[r][cc], aRe[r], xIm[cc])
				accIm[r][cc] = vec.FMS(accIm[r][cc], aIm[r], xRe[cc])
			}
		}
	}
	for cc := 0; cc < nc; cc++ {
		for r := 0; r < mc; r++ {
			off := (cc*strideC + r) * bl
			vec.Store(c[off:], accRe[r][cc], vl)
			vec.Store(c[off+vl:], accIm[r][cc], vl)
		}
	}
}
