package kernels

import "iatf/internal/vec"

// Width-specialized kernel bodies. The portable vec-based forms in
// kernels.go are the readable reference; these unrolled variants use
// slice-to-array-pointer conversions so the compiler emits direct loads
// and keeps the hot block arithmetic free of per-lane bounds checks. The
// package tests assert both forms agree exactly.

func fma4[E vec.Float](acc *[4]E, a, b *[4]E) {
	acc[0] += a[0] * b[0]
	acc[1] += a[1] * b[1]
	acc[2] += a[2] * b[2]
	acc[3] += a[3] * b[3]
}

func fms4[E vec.Float](acc *[4]E, a, b *[4]E) {
	acc[0] -= a[0] * b[0]
	acc[1] -= a[1] * b[1]
	acc[2] -= a[2] * b[2]
	acc[3] -= a[3] * b[3]
}

func fma2[E vec.Float](acc *[2]E, a, b *[2]E) {
	acc[0] += a[0] * b[0]
	acc[1] += a[1] * b[1]
}

func fms2[E vec.Float](acc *[2]E, a, b *[2]E) {
	acc[0] -= a[0] * b[0]
	acc[1] -= a[1] * b[1]
}

// gemm4 is GEMM for 4-lane blocks (single-precision types).
func gemm4[E vec.Float](pa, pb, c []E, mc, nc, k, strideC int, alpha E, ovw bool) {
	var acc [16][4]E
	ao, bo := 0, 0
	for l := 0; l < k; l++ {
		var av, bv [4]*[4]E
		for r := 0; r < mc; r++ {
			av[r] = (*[4]E)(pa[ao:])
			ao += 4
		}
		for cc := 0; cc < nc; cc++ {
			bv[cc] = (*[4]E)(pb[bo:])
			bo += 4
		}
		for cc := 0; cc < nc; cc++ {
			b := bv[cc]
			for r := 0; r < mc; r++ {
				fma4(&acc[cc*4+r], av[r], b)
			}
		}
	}
	for cc := 0; cc < nc; cc++ {
		for r := 0; r < mc; r++ {
			dst := (*[4]E)(c[(cc*strideC+r)*4:])
			a := &acc[cc*4+r]
			if ovw {
				dst[0] = alpha * a[0]
				dst[1] = alpha * a[1]
				dst[2] = alpha * a[2]
				dst[3] = alpha * a[3]
			} else {
				dst[0] += alpha * a[0]
				dst[1] += alpha * a[1]
				dst[2] += alpha * a[2]
				dst[3] += alpha * a[3]
			}
		}
	}
}

// gemm2 is GEMM for 2-lane blocks (double-precision types).
func gemm2[E vec.Float](pa, pb, c []E, mc, nc, k, strideC int, alpha E, ovw bool) {
	var acc [16][2]E
	ao, bo := 0, 0
	for l := 0; l < k; l++ {
		var av, bv [4]*[2]E
		for r := 0; r < mc; r++ {
			av[r] = (*[2]E)(pa[ao:])
			ao += 2
		}
		for cc := 0; cc < nc; cc++ {
			bv[cc] = (*[2]E)(pb[bo:])
			bo += 2
		}
		for cc := 0; cc < nc; cc++ {
			b := bv[cc]
			for r := 0; r < mc; r++ {
				fma2(&acc[cc*4+r], av[r], b)
			}
		}
	}
	for cc := 0; cc < nc; cc++ {
		for r := 0; r < mc; r++ {
			dst := (*[2]E)(c[(cc*strideC+r)*2:])
			a := &acc[cc*4+r]
			if ovw {
				dst[0] = alpha * a[0]
				dst[1] = alpha * a[1]
			} else {
				dst[0] += alpha * a[0]
				dst[1] += alpha * a[1]
			}
		}
	}
}

// gemmCplx4 is GEMMCplx for 4-lane blocks (cgemm).
func gemmCplx4[E vec.Float](pa, pb, c []E, mc, nc, k, strideC int, alphaRe, alphaIm E, ovw bool) {
	var accRe, accIm [6][4]E
	ao, bo := 0, 0
	for l := 0; l < k; l++ {
		var aRe, aIm [3]*[4]E
		var bRe, bIm [2]*[4]E
		for r := 0; r < mc; r++ {
			aRe[r] = (*[4]E)(pa[ao:])
			aIm[r] = (*[4]E)(pa[ao+4:])
			ao += 8
		}
		for cc := 0; cc < nc; cc++ {
			bRe[cc] = (*[4]E)(pb[bo:])
			bIm[cc] = (*[4]E)(pb[bo+4:])
			bo += 8
		}
		for cc := 0; cc < nc; cc++ {
			for r := 0; r < mc; r++ {
				i := cc*3 + r
				fma4(&accRe[i], aRe[r], bRe[cc])
				fms4(&accRe[i], aIm[r], bIm[cc])
				fma4(&accIm[i], aRe[r], bIm[cc])
				fma4(&accIm[i], aIm[r], bRe[cc])
			}
		}
	}
	for cc := 0; cc < nc; cc++ {
		for r := 0; r < mc; r++ {
			i := cc*3 + r
			off := (cc*strideC + r) * 8
			dRe := (*[4]E)(c[off:])
			dIm := (*[4]E)(c[off+4:])
			// Two rounding steps per component, matching the generic
			// (and generated-IR) FMLA/FMLS sequence bit for bit.
			if ovw {
				for lane := 0; lane < 4; lane++ {
					dRe[lane] = alphaRe * accRe[i][lane]
					dRe[lane] -= alphaIm * accIm[i][lane]
					dIm[lane] = alphaRe * accIm[i][lane]
					dIm[lane] += alphaIm * accRe[i][lane]
				}
			} else {
				for lane := 0; lane < 4; lane++ {
					dRe[lane] += alphaRe * accRe[i][lane]
					dRe[lane] -= alphaIm * accIm[i][lane]
					dIm[lane] += alphaRe * accIm[i][lane]
					dIm[lane] += alphaIm * accRe[i][lane]
				}
			}
		}
	}
}

// gemmCplx2 is GEMMCplx for 2-lane blocks (zgemm).
func gemmCplx2[E vec.Float](pa, pb, c []E, mc, nc, k, strideC int, alphaRe, alphaIm E, ovw bool) {
	var accRe, accIm [6][2]E
	ao, bo := 0, 0
	for l := 0; l < k; l++ {
		var aRe, aIm [3]*[2]E
		var bRe, bIm [2]*[2]E
		for r := 0; r < mc; r++ {
			aRe[r] = (*[2]E)(pa[ao:])
			aIm[r] = (*[2]E)(pa[ao+2:])
			ao += 4
		}
		for cc := 0; cc < nc; cc++ {
			bRe[cc] = (*[2]E)(pb[bo:])
			bIm[cc] = (*[2]E)(pb[bo+2:])
			bo += 4
		}
		for cc := 0; cc < nc; cc++ {
			for r := 0; r < mc; r++ {
				i := cc*3 + r
				fma2(&accRe[i], aRe[r], bRe[cc])
				fms2(&accRe[i], aIm[r], bIm[cc])
				fma2(&accIm[i], aRe[r], bIm[cc])
				fma2(&accIm[i], aIm[r], bRe[cc])
			}
		}
	}
	for cc := 0; cc < nc; cc++ {
		for r := 0; r < mc; r++ {
			i := cc*3 + r
			off := (cc*strideC + r) * 4
			dRe := (*[2]E)(c[off:])
			dIm := (*[2]E)(c[off+2:])
			// Two rounding steps per component, matching the generic
			// (and generated-IR) FMLA/FMLS sequence bit for bit.
			if ovw {
				for lane := 0; lane < 2; lane++ {
					dRe[lane] = alphaRe * accRe[i][lane]
					dRe[lane] -= alphaIm * accIm[i][lane]
					dIm[lane] = alphaRe * accIm[i][lane]
					dIm[lane] += alphaIm * accRe[i][lane]
				}
			} else {
				for lane := 0; lane < 2; lane++ {
					dRe[lane] += alphaRe * accRe[i][lane]
					dRe[lane] -= alphaIm * accIm[i][lane]
					dIm[lane] += alphaRe * accIm[i][lane]
					dIm[lane] += alphaIm * accRe[i][lane]
				}
			}
		}
	}
}

// rect4 is Rect for 4-lane blocks.
func rect4[E vec.Float](pa, x, c []E, mc, nc, k, strideC, strideX int) {
	var acc [16][4]E
	for cc := 0; cc < nc; cc++ {
		for r := 0; r < mc; r++ {
			acc[cc*4+r] = *(*[4]E)(c[(cc*strideC+r)*4:])
		}
	}
	ao := 0
	for l := 0; l < k; l++ {
		var av, xv [4]*[4]E
		for r := 0; r < mc; r++ {
			av[r] = (*[4]E)(pa[ao:])
			ao += 4
		}
		for cc := 0; cc < nc; cc++ {
			xv[cc] = (*[4]E)(x[(cc*strideX+l)*4:])
		}
		for cc := 0; cc < nc; cc++ {
			for r := 0; r < mc; r++ {
				fms4(&acc[cc*4+r], av[r], xv[cc])
			}
		}
	}
	for cc := 0; cc < nc; cc++ {
		for r := 0; r < mc; r++ {
			*(*[4]E)(c[(cc*strideC+r)*4:]) = acc[cc*4+r]
		}
	}
}

// rect2 is Rect for 2-lane blocks.
func rect2[E vec.Float](pa, x, c []E, mc, nc, k, strideC, strideX int) {
	var acc [16][2]E
	for cc := 0; cc < nc; cc++ {
		for r := 0; r < mc; r++ {
			acc[cc*4+r] = *(*[2]E)(c[(cc*strideC+r)*2:])
		}
	}
	ao := 0
	for l := 0; l < k; l++ {
		var av, xv [4]*[2]E
		for r := 0; r < mc; r++ {
			av[r] = (*[2]E)(pa[ao:])
			ao += 2
		}
		for cc := 0; cc < nc; cc++ {
			xv[cc] = (*[2]E)(x[(cc*strideX+l)*2:])
		}
		for cc := 0; cc < nc; cc++ {
			for r := 0; r < mc; r++ {
				fms2(&acc[cc*4+r], av[r], xv[cc])
			}
		}
	}
	for cc := 0; cc < nc; cc++ {
		for r := 0; r < mc; r++ {
			*(*[2]E)(c[(cc*strideC+r)*2:]) = acc[cc*4+r]
		}
	}
}

// tri4 is Tri for 4-lane blocks.
func tri4[E vec.Float](pa, b []E, m, ncols, strideB int) {
	var a [15]*[4]E
	n := m * (m + 1) / 2
	for i := 0; i < n; i++ {
		a[i] = (*[4]E)(pa[i*4:])
	}
	var x [5][4]E
	for l := 0; l < ncols; l++ {
		off := l * strideB * 4
		for i := 0; i < m; i++ {
			x[i] = *(*[4]E)(b[off+i*4:])
		}
		for i := 0; i < m; i++ {
			row := i * (i + 1) / 2
			for j := 0; j < i; j++ {
				fms4(&x[i], a[row+j], &x[j])
			}
			d := a[row+i]
			x[i][0] *= d[0]
			x[i][1] *= d[1]
			x[i][2] *= d[2]
			x[i][3] *= d[3]
		}
		for i := 0; i < m; i++ {
			*(*[4]E)(b[off+i*4:]) = x[i]
		}
	}
}

// tri2 is Tri for 2-lane blocks.
func tri2[E vec.Float](pa, b []E, m, ncols, strideB int) {
	var a [15]*[2]E
	n := m * (m + 1) / 2
	for i := 0; i < n; i++ {
		a[i] = (*[2]E)(pa[i*2:])
	}
	var x [5][2]E
	for l := 0; l < ncols; l++ {
		off := l * strideB * 2
		for i := 0; i < m; i++ {
			x[i] = *(*[2]E)(b[off+i*2:])
		}
		for i := 0; i < m; i++ {
			row := i * (i + 1) / 2
			for j := 0; j < i; j++ {
				fms2(&x[i], a[row+j], &x[j])
			}
			d := a[row+i]
			x[i][0] *= d[0]
			x[i][1] *= d[1]
		}
		for i := 0; i < m; i++ {
			*(*[2]E)(b[off+i*2:]) = x[i]
		}
	}
}

// gemm44x4 is the fully unrolled 4-lane main kernel (mc = nc = 4) — the
// hottest code path; accumulators live in named locals.
func gemm44x4[E vec.Float](pa, pb, c []E, k, strideC int, alpha E, ovw bool) {
	var c00, c10, c20, c30 [4]E
	var c01, c11, c21, c31 [4]E
	var c02, c12, c22, c32 [4]E
	var c03, c13, c23, c33 [4]E
	o := 0
	for l := 0; l < k; l++ {
		a0 := (*[4]E)(pa[o:])
		a1 := (*[4]E)(pa[o+4:])
		a2 := (*[4]E)(pa[o+8:])
		a3 := (*[4]E)(pa[o+12:])
		b0 := (*[4]E)(pb[o:])
		b1 := (*[4]E)(pb[o+4:])
		b2 := (*[4]E)(pb[o+8:])
		b3 := (*[4]E)(pb[o+12:])
		o += 16
		fma4(&c00, a0, b0)
		fma4(&c10, a1, b0)
		fma4(&c20, a2, b0)
		fma4(&c30, a3, b0)
		fma4(&c01, a0, b1)
		fma4(&c11, a1, b1)
		fma4(&c21, a2, b1)
		fma4(&c31, a3, b1)
		fma4(&c02, a0, b2)
		fma4(&c12, a1, b2)
		fma4(&c22, a2, b2)
		fma4(&c32, a3, b2)
		fma4(&c03, a0, b3)
		fma4(&c13, a1, b3)
		fma4(&c23, a2, b3)
		fma4(&c33, a3, b3)
	}
	save := func(off int, acc *[4]E) {
		dst := (*[4]E)(c[off:])
		if ovw {
			dst[0] = alpha * acc[0]
			dst[1] = alpha * acc[1]
			dst[2] = alpha * acc[2]
			dst[3] = alpha * acc[3]
			return
		}
		dst[0] += alpha * acc[0]
		dst[1] += alpha * acc[1]
		dst[2] += alpha * acc[2]
		dst[3] += alpha * acc[3]
	}
	s := strideC * 4
	save(0, &c00)
	save(4, &c10)
	save(8, &c20)
	save(12, &c30)
	save(s, &c01)
	save(s+4, &c11)
	save(s+8, &c21)
	save(s+12, &c31)
	save(2*s, &c02)
	save(2*s+4, &c12)
	save(2*s+8, &c22)
	save(2*s+12, &c32)
	save(3*s, &c03)
	save(3*s+4, &c13)
	save(3*s+8, &c23)
	save(3*s+12, &c33)
}

// gemm44x2 is the fully unrolled 2-lane main kernel (mc = nc = 4).
func gemm44x2[E vec.Float](pa, pb, c []E, k, strideC int, alpha E, ovw bool) {
	var c00, c10, c20, c30 [2]E
	var c01, c11, c21, c31 [2]E
	var c02, c12, c22, c32 [2]E
	var c03, c13, c23, c33 [2]E
	o := 0
	for l := 0; l < k; l++ {
		a0 := (*[2]E)(pa[o:])
		a1 := (*[2]E)(pa[o+2:])
		a2 := (*[2]E)(pa[o+4:])
		a3 := (*[2]E)(pa[o+6:])
		b0 := (*[2]E)(pb[o:])
		b1 := (*[2]E)(pb[o+2:])
		b2 := (*[2]E)(pb[o+4:])
		b3 := (*[2]E)(pb[o+6:])
		o += 8
		fma2(&c00, a0, b0)
		fma2(&c10, a1, b0)
		fma2(&c20, a2, b0)
		fma2(&c30, a3, b0)
		fma2(&c01, a0, b1)
		fma2(&c11, a1, b1)
		fma2(&c21, a2, b1)
		fma2(&c31, a3, b1)
		fma2(&c02, a0, b2)
		fma2(&c12, a1, b2)
		fma2(&c22, a2, b2)
		fma2(&c32, a3, b2)
		fma2(&c03, a0, b3)
		fma2(&c13, a1, b3)
		fma2(&c23, a2, b3)
		fma2(&c33, a3, b3)
	}
	save := func(off int, acc *[2]E) {
		dst := (*[2]E)(c[off:])
		if ovw {
			dst[0] = alpha * acc[0]
			dst[1] = alpha * acc[1]
			return
		}
		dst[0] += alpha * acc[0]
		dst[1] += alpha * acc[1]
	}
	s := strideC * 2
	save(0, &c00)
	save(2, &c10)
	save(4, &c20)
	save(6, &c30)
	save(s, &c01)
	save(s+2, &c11)
	save(s+4, &c21)
	save(s+6, &c31)
	save(2*s, &c02)
	save(2*s+2, &c12)
	save(2*s+4, &c22)
	save(2*s+6, &c32)
	save(3*s, &c03)
	save(3*s+2, &c13)
	save(3*s+4, &c23)
	save(3*s+6, &c33)
}
