package kernels

import "iatf/internal/vec"

// Compact batched in-place factorizations — the LAPACK-style compact
// kernels of the Kim et al. lineage the paper builds on, and this
// library's second extension beyond the paper's GEMM/TRSM. Both operate
// on one interleave group of n×n matrices in compact storage (block
// (i,j) at (j·n+i)·vl, complex as split planes) and vectorize across the
// P lanes exactly like the level-3 kernels.
//
// Padding lanes are guarded: a zero pivot in a padding lane factors to
// zero instead of Inf, so padded groups never produce NaNs.

// LU factors each lane's matrix in place into L\U (Doolittle, unit lower
// triangle, no pivoting — the matrices small solvers feed this are
// diagonally dominant blocks). info[lane] is set to k+1 for the first
// exactly-zero pivot encountered in that lane, 0 otherwise.
func LU[E vec.Float](a []E, n, vl int, info []int) {
	for k := 0; k < n; k++ {
		pivOff := (k*n + k) * vl
		var recip vec.V[E]
		for lane := 0; lane < vl; lane++ {
			p := a[pivOff+lane]
			if p == 0 {
				if info[lane] == 0 {
					info[lane] = k + 1
				}
				recip[lane] = 0
			} else {
				recip[lane] = 1 / p
			}
		}
		// Column scale below the pivot.
		for i := k + 1; i < n; i++ {
			off := (k*n + i) * vl
			v := vec.Load(a[off:], vl)
			vec.Store(a[off:], vec.Mul(v, recip), vl)
		}
		// Trailing rank-1 update.
		for j := k + 1; j < n; j++ {
			ukj := vec.Load(a[(j*n+k)*vl:], vl)
			for i := k + 1; i < n; i++ {
				off := (j*n + i) * vl
				lik := vec.Load(a[(k*n+i)*vl:], vl)
				v := vec.Load(a[off:], vl)
				vec.Store(a[off:], vec.FMS(v, lik, ukj), vl)
			}
		}
	}
}

// LUCplx is the complex form of LU on split-plane storage.
func LUCplx[E vec.Float](a []E, n, vl int, info []int) {
	bl := 2 * vl
	for k := 0; k < n; k++ {
		pivOff := (k*n + k) * bl
		var recRe, recIm vec.V[E]
		for lane := 0; lane < vl; lane++ {
			re := float64(a[pivOff+lane])
			im := float64(a[pivOff+vl+lane])
			den := re*re + im*im
			if den == 0 {
				if info[lane] == 0 {
					info[lane] = k + 1
				}
				continue
			}
			recRe[lane] = E(re / den)
			recIm[lane] = E(-im / den)
		}
		for i := k + 1; i < n; i++ {
			off := (k*n + i) * bl
			xr := vec.Load(a[off:], vl)
			xi := vec.Load(a[off+vl:], vl)
			re := vec.Sub(vec.Mul(xr, recRe), vec.Mul(xi, recIm))
			im := vec.Add(vec.Mul(xr, recIm), vec.Mul(xi, recRe))
			vec.Store(a[off:], re, vl)
			vec.Store(a[off+vl:], im, vl)
		}
		for j := k + 1; j < n; j++ {
			ur := vec.Load(a[(j*n+k)*bl:], vl)
			ui := vec.Load(a[(j*n+k)*bl+vl:], vl)
			for i := k + 1; i < n; i++ {
				off := (j*n + i) * bl
				lr := vec.Load(a[(k*n+i)*bl:], vl)
				li := vec.Load(a[(k*n+i)*bl+vl:], vl)
				vr := vec.Load(a[off:], vl)
				vi := vec.Load(a[off+vl:], vl)
				// v -= l·u (complex)
				vr = vec.FMS(vr, lr, ur)
				vr = vec.FMA(vr, li, ui)
				vi = vec.FMS(vi, lr, ui)
				vi = vec.FMS(vi, li, ur)
				vec.Store(a[off:], vr, vl)
				vec.Store(a[off+vl:], vi, vl)
			}
		}
	}
}

// Cholesky factors each lane's symmetric positive definite matrix in
// place into its lower Cholesky factor (upper triangle left untouched).
// Real types only. info[lane] is set to k+1 at the first non-positive
// pivot, and that lane's factorization is zeroed from that column on.
func Cholesky[E vec.Float](a []E, n, vl int, info []int) {
	for k := 0; k < n; k++ {
		// d = sqrt(a_kk), guarded per lane.
		dOff := (k*n + k) * vl
		var d, recip vec.V[E]
		for lane := 0; lane < vl; lane++ {
			p := a[dOff+lane]
			if p <= 0 {
				// Non-positive pivot: not positive definite (padding
				// lanes hit this with p == 0; callers ignore their info).
				if info[lane] == 0 {
					info[lane] = k + 1
				}
				d[lane], recip[lane] = 0, 0
				continue
			}
			s := vec.Sqrt(vec.V[E]{p})
			d[lane] = s[0]
			recip[lane] = 1 / s[0]
		}
		for lane := 0; lane < vl; lane++ {
			a[dOff+lane] = d[lane]
		}
		for i := k + 1; i < n; i++ {
			off := (k*n + i) * vl
			v := vec.Load(a[off:], vl)
			vec.Store(a[off:], vec.Mul(v, recip), vl)
		}
		for j := k + 1; j < n; j++ {
			ljk := vec.Load(a[(k*n+j)*vl:], vl)
			for i := j; i < n; i++ {
				off := (j*n + i) * vl
				lik := vec.Load(a[(k*n+i)*vl:], vl)
				v := vec.Load(a[off:], vl)
				vec.Store(a[off:], vec.FMS(v, lik, ljk), vl)
			}
		}
	}
}

// absLane returns the pivot magnitude of a real or complex entry: |x| for
// real, |re|+|im| for complex (the standard cheap pivot metric).
func absLane[E vec.Float](re, im E) E {
	if re < 0 {
		re = -re
	}
	if im < 0 {
		im = -im
	}
	return re + im
}

// LUPiv factors each lane's matrix in place with partial pivoting:
// piv[k*vl+lane] records the row swapped into position k at step k.
// info[lane] is set to k+1 when no nonzero pivot exists in column k.
// cplx selects split-plane complex arithmetic.
func LUPiv[E vec.Float](a []E, n, vl int, cplx bool, piv []int32, info []int) {
	bl := vl
	if cplx {
		bl = 2 * vl
	}
	at := func(i, j, lane int) (E, E) {
		off := (j*n + i) * bl
		re := a[off+lane]
		var im E
		if cplx {
			im = a[off+vl+lane]
		}
		return re, im
	}
	swapRows := func(r1, r2, lane int) {
		if r1 == r2 {
			return
		}
		for j := 0; j < n; j++ {
			o1 := (j*n + r1) * bl
			o2 := (j*n + r2) * bl
			a[o1+lane], a[o2+lane] = a[o2+lane], a[o1+lane]
			if cplx {
				a[o1+vl+lane], a[o2+vl+lane] = a[o2+vl+lane], a[o1+vl+lane]
			}
		}
	}
	for k := 0; k < n; k++ {
		// Per-lane pivot search and row swap (lane control flow diverges,
		// so this part is scalar; the update below stays vectorized).
		for lane := 0; lane < vl; lane++ {
			best, bestMag := k, absLane(at(k, k, lane))
			for i := k + 1; i < n; i++ {
				if m := absLane(at(i, k, lane)); m > bestMag {
					best, bestMag = i, m
				}
			}
			piv[k*vl+lane] = int32(best)
			if bestMag == 0 {
				if info[lane] == 0 {
					info[lane] = k + 1
				}
				continue
			}
			swapRows(k, best, lane)
		}
		// Column scale and rank-1 update, vectorized across lanes with the
		// guarded reciprocal.
		pivOff := (k*n + k) * bl
		if !cplx {
			var recip vec.V[E]
			for lane := 0; lane < vl; lane++ {
				if p := a[pivOff+lane]; p != 0 {
					recip[lane] = 1 / p
				}
			}
			for i := k + 1; i < n; i++ {
				off := (k*n + i) * bl
				v := vec.Load(a[off:], vl)
				vec.Store(a[off:], vec.Mul(v, recip), vl)
			}
			for j := k + 1; j < n; j++ {
				ukj := vec.Load(a[(j*n+k)*bl:], vl)
				for i := k + 1; i < n; i++ {
					off := (j*n + i) * bl
					lik := vec.Load(a[(k*n+i)*bl:], vl)
					v := vec.Load(a[off:], vl)
					vec.Store(a[off:], vec.FMS(v, lik, ukj), vl)
				}
			}
			continue
		}
		var recRe, recIm vec.V[E]
		for lane := 0; lane < vl; lane++ {
			re := float64(a[pivOff+lane])
			im := float64(a[pivOff+vl+lane])
			den := re*re + im*im
			if den != 0 {
				recRe[lane] = E(re / den)
				recIm[lane] = E(-im / den)
			}
		}
		for i := k + 1; i < n; i++ {
			off := (k*n + i) * bl
			xr := vec.Load(a[off:], vl)
			xi := vec.Load(a[off+vl:], vl)
			re := vec.Sub(vec.Mul(xr, recRe), vec.Mul(xi, recIm))
			im := vec.Add(vec.Mul(xr, recIm), vec.Mul(xi, recRe))
			vec.Store(a[off:], re, vl)
			vec.Store(a[off+vl:], im, vl)
		}
		for j := k + 1; j < n; j++ {
			ur := vec.Load(a[(j*n+k)*bl:], vl)
			ui := vec.Load(a[(j*n+k)*bl+vl:], vl)
			for i := k + 1; i < n; i++ {
				off := (j*n + i) * bl
				lr := vec.Load(a[(k*n+i)*bl:], vl)
				li := vec.Load(a[(k*n+i)*bl+vl:], vl)
				vr := vec.Load(a[off:], vl)
				vi := vec.Load(a[off+vl:], vl)
				vr = vec.FMS(vr, lr, ur)
				vr = vec.FMA(vr, li, ui)
				vi = vec.FMS(vi, lr, ui)
				vi = vec.FMS(vi, li, ur)
				vec.Store(a[off:], vr, vl)
				vec.Store(a[off+vl:], vi, vl)
			}
		}
	}
}

// ApplyPivots permutes the rows of a group's right-hand sides according
// to the recorded pivots (the P in P·A = L·U, applied to B before the
// forward solve). rows is the B row count (= n of the factorization) and
// cols the number of right-hand sides.
func ApplyPivots[E vec.Float](b []E, rows, cols, vl int, cplx bool, piv []int32) {
	bl := vl
	if cplx {
		bl = 2 * vl
	}
	for k := 0; k < rows; k++ {
		for lane := 0; lane < vl; lane++ {
			r := int(piv[k*vl+lane])
			if r == k {
				continue
			}
			for j := 0; j < cols; j++ {
				o1 := (j*rows + k) * bl
				o2 := (j*rows + r) * bl
				b[o1+lane], b[o2+lane] = b[o2+lane], b[o1+lane]
				if cplx {
					b[o1+vl+lane], b[o2+vl+lane] = b[o2+vl+lane], b[o1+vl+lane]
				}
			}
		}
	}
}
