package kernels

import (
	"math/rand"
	"testing"
)

// The width-specialized fast paths and the portable vec-based reference
// forms must agree bit for bit on every kernel shape.

func fill64(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.Float64()
	}
	return s
}

func fill32(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = rng.Float32()
	}
	return s
}

func TestGEMMFastMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, vl := range []int{2, 4} {
		for mc := 1; mc <= 4; mc++ {
			for nc := 1; nc <= 4; nc++ {
				for _, k := range []int{1, 3, 8} {
					for _, ovw := range []bool{false, true} {
						strideC := mc + 1
						pa := fill64(rng, k*mc*vl)
						pb := fill64(rng, k*nc*vl)
						c := fill64(rng, nc*strideC*vl)
						cGen := append([]float64(nil), c...)
						GEMM(pa, pb, c, mc, nc, k, strideC, vl, 1.5, ovw)
						gemmGeneric(pa, pb, cGen, mc, nc, k, strideC, vl, 1.5, ovw)
						for i := range c {
							if c[i] != cGen[i] {
								t.Fatalf("vl=%d %dx%d k=%d ovw=%v: fast/generic diverge at %d", vl, mc, nc, k, ovw, i)
							}
						}
					}
				}
			}
		}
	}
}

func TestGEMMCplxFastMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, vl := range []int{2, 4} {
		for mc := 1; mc <= 3; mc++ {
			for nc := 1; nc <= 2; nc++ {
				for _, k := range []int{1, 5} {
					for _, ovw := range []bool{false, true} {
						bl := 2 * vl
						strideC := mc + 1
						pa := fill32(rng, k*mc*bl)
						pb := fill32(rng, k*nc*bl)
						c := fill32(rng, nc*strideC*bl)
						cGen := append([]float32(nil), c...)
						GEMMCplx(pa, pb, c, mc, nc, k, strideC, vl, 1.5, -0.5, ovw)
						gemmCplxGeneric(pa, pb, cGen, mc, nc, k, strideC, vl, 1.5, -0.5, ovw)
						for i := range c {
							if c[i] != cGen[i] {
								t.Fatalf("vl=%d %dx%d k=%d ovw=%v: complex fast/generic diverge at %d", vl, mc, nc, k, ovw, i)
							}
						}
					}
				}
			}
		}
	}
}

func TestTriFastMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, vl := range []int{2, 4} {
		for m := 1; m <= 5; m++ {
			for _, ncols := range []int{1, 3} {
				strideB := m + 2
				tri := m * (m + 1) / 2
				pa := fill64(rng, tri*vl)
				// Reciprocal-style diagonal values are already arbitrary
				// multipliers for the equivalence check.
				b := fill64(rng, ncols*strideB*vl)
				bGen := append([]float64(nil), b...)
				Tri(pa, b, m, ncols, strideB, vl)
				triGeneric(pa, bGen, m, ncols, strideB, vl)
				for i := range b {
					if b[i] != bGen[i] {
						t.Fatalf("vl=%d m=%d ncols=%d: tri fast/generic diverge at %d", vl, m, ncols, i)
					}
				}
			}
		}
	}
}

func TestRectFastMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, vl := range []int{2, 4} {
		for mc := 1; mc <= 4; mc++ {
			for nc := 1; nc <= 4; nc++ {
				const k = 6
				strideC, strideX := mc+1, k+1
				pa := fill64(rng, k*mc*vl)
				x := fill64(rng, nc*strideX*vl)
				c := fill64(rng, nc*strideC*vl)
				cGen := append([]float64(nil), c...)
				Rect(pa, x, c, mc, nc, k, strideC, strideX, vl)
				rectGeneric(pa, x, cGen, mc, nc, k, strideC, strideX, vl)
				for i := range c {
					if c[i] != cGen[i] {
						t.Fatalf("vl=%d %dx%d: rect fast/generic diverge at %d", vl, mc, nc, i)
					}
				}
			}
		}
	}
}

func TestOverwriteSave(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const mc, nc, k, vl = 4, 4, 3, 4
	pa := fill32(rng, k*mc*vl)
	pb := fill32(rng, k*nc*vl)
	c := fill32(rng, nc*mc*vl)
	acc := append([]float32(nil), c...)
	GEMM(pa, pb, c, mc, nc, k, mc, vl, 2.0, true) // overwrite
	GEMM(pa, pb, acc, mc, nc, k, mc, vl, 2.0, false)
	// acc = orig + 2AB; c = 2AB; they must differ by exactly orig.
	for i := range c {
		if acc[i] == c[i] {
			t.Fatalf("overwrite ignored prior C at %d", i)
		}
	}
	// A second overwrite run is idempotent.
	c2 := append([]float32(nil), c...)
	GEMM(pa, pb, c2, mc, nc, k, mc, vl, 2.0, true)
	for i := range c {
		if c[i] != c2[i] {
			t.Fatalf("overwrite not idempotent at %d", i)
		}
	}
}
