package kernels

import (
	"math"
	"math/rand"
	"testing"
)

// TriMul against a scalar bottom-up multiply, all widths.
func TestTriMulDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, vl := range []int{2, 4, 3} { // 3 exercises the generic path
		for m := 1; m <= 5; m++ {
			const ncols, pad = 3, 1
			strideB := m + pad
			tri := m * (m + 1) / 2
			pa := make([]float64, tri*vl)
			for i := range pa {
				pa[i] = rng.Float64()
			}
			b := make([]float64, ncols*strideB*vl)
			for i := range b {
				b[i] = rng.Float64()
			}
			orig := append([]float64(nil), b...)
			TriMul(pa, b, m, ncols, strideB, vl)
			for lane := 0; lane < vl; lane++ {
				for l := 0; l < ncols; l++ {
					for i := 0; i < m; i++ {
						row := i * (i + 1) / 2
						want := orig[(l*strideB+i)*vl+lane] * pa[(row+i)*vl+lane]
						for j := 0; j < i; j++ {
							want += pa[(row+j)*vl+lane] * orig[(l*strideB+j)*vl+lane]
						}
						got := b[(l*strideB+i)*vl+lane]
						if math.Abs(got-want) > 1e-12 {
							t.Fatalf("vl=%d m=%d col %d row %d lane %d: %v want %v",
								vl, m, l, i, lane, got, want)
						}
					}
				}
			}
		}
	}
}

// RectAdd must accumulate +L·X, all widths.
func TestRectAddDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, vl := range []int{2, 4, 3} {
		const mc, nc, k, strideC, strideX = 3, 2, 4, 4, 5
		pa := make([]float64, k*mc*vl)
		x := make([]float64, nc*strideX*vl)
		c := make([]float64, nc*strideC*vl)
		for i := range pa {
			pa[i] = rng.Float64()
		}
		for i := range x {
			x[i] = rng.Float64()
		}
		for i := range c {
			c[i] = rng.Float64()
		}
		orig := append([]float64(nil), c...)
		RectAdd(pa, x, c, mc, nc, k, strideC, strideX, vl)
		for lane := 0; lane < vl; lane++ {
			for r := 0; r < mc; r++ {
				for cc := 0; cc < nc; cc++ {
					want := orig[(cc*strideC+r)*vl+lane]
					for l := 0; l < k; l++ {
						want += pa[(l*mc+r)*vl+lane] * x[(cc*strideX+l)*vl+lane]
					}
					got := c[(cc*strideC+r)*vl+lane]
					if math.Abs(got-want) > 1e-12 {
						t.Fatalf("vl=%d (%d,%d) lane %d: %v want %v", vl, r, cc, lane, got, want)
					}
				}
			}
		}
	}
}

// TriMulCplx and RectAddCplx against complex128 scalar math.
func TestTRMMCplxKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const m, ncols, vl, strideB = 3, 2, 2, 4
	bl := 2 * vl
	tri := m * (m + 1) / 2
	pa := make([]float64, tri*bl)
	for i := range pa {
		pa[i] = rng.Float64()
	}
	b := make([]float64, ncols*strideB*bl)
	for i := range b {
		b[i] = rng.Float64()
	}
	orig := append([]float64(nil), b...)
	TriMulCplx(pa, b, m, ncols, strideB, vl)
	cAt := func(s []float64, blockOff, lane int) complex128 {
		return complex(s[blockOff*bl+lane], s[blockOff*bl+vl+lane])
	}
	for lane := 0; lane < vl; lane++ {
		for l := 0; l < ncols; l++ {
			for i := 0; i < m; i++ {
				row := i * (i + 1) / 2
				want := cAt(orig, l*strideB+i, lane) * cAt(pa, row+i, lane)
				for j := 0; j < i; j++ {
					want += cAt(pa, row+j, lane) * cAt(orig, l*strideB+j, lane)
				}
				got := cAt(b, l*strideB+i, lane)
				if d := got - want; math.Hypot(real(d), imag(d)) > 1e-12 {
					t.Fatalf("tri col %d row %d lane %d: %v want %v", l, i, lane, got, want)
				}
			}
		}
	}

	const mc, nc, k, sC, sX = 2, 2, 3, 3, 4
	rpa := make([]float64, k*mc*bl)
	rx := make([]float64, nc*sX*bl)
	rc := make([]float64, nc*sC*bl)
	for i := range rpa {
		rpa[i] = rng.Float64()
	}
	for i := range rx {
		rx[i] = rng.Float64()
	}
	for i := range rc {
		rc[i] = rng.Float64()
	}
	rorig := append([]float64(nil), rc...)
	RectAddCplx(rpa, rx, rc, mc, nc, k, sC, sX, vl)
	for lane := 0; lane < vl; lane++ {
		for r := 0; r < mc; r++ {
			for cc := 0; cc < nc; cc++ {
				want := cAt(rorig, cc*sC+r, lane)
				for l := 0; l < k; l++ {
					want += cAt(rpa, l*mc+r, lane) * cAt(rx, cc*sX+l, lane)
				}
				got := cAt(rc, cc*sC+r, lane)
				if d := got - want; math.Hypot(real(d), imag(d)) > 1e-12 {
					t.Fatalf("rect (%d,%d) lane %d: %v want %v", r, cc, lane, got, want)
				}
			}
		}
	}
}
