package kernels

import (
	"math"
	"math/rand"
	"testing"
)

// TestGEMMDirect checks the real micro-kernel against a scalar loop on a
// hand-packed group.
func TestGEMMDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const mc, nc, k, vl, strideC = 4, 4, 6, 2, 5
	pa := make([]float64, k*mc*vl)
	pb := make([]float64, k*nc*vl)
	c := make([]float64, nc*strideC*vl)
	for i := range pa {
		pa[i] = rng.Float64()
	}
	for i := range pb {
		pb[i] = rng.Float64()
	}
	for i := range c {
		c[i] = rng.Float64()
	}
	orig := append([]float64(nil), c...)
	const alpha = 1.5
	GEMM(pa, pb, c, mc, nc, k, strideC, vl, alpha, false)
	for lane := 0; lane < vl; lane++ {
		for r := 0; r < mc; r++ {
			for cc := 0; cc < nc; cc++ {
				sum := 0.0
				for l := 0; l < k; l++ {
					sum += pa[(l*mc+r)*vl+lane] * pb[(l*nc+cc)*vl+lane]
				}
				off := (cc*strideC+r)*vl + lane
				want := orig[off] + alpha*sum
				if math.Abs(c[off]-want) > 1e-12 {
					t.Fatalf("C(%d,%d) lane %d = %v, want %v", r, cc, lane, c[off], want)
				}
			}
		}
	}
}

func TestGEMMCplxDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const mc, nc, k, vl, strideC = 3, 2, 4, 4, 3
	bl := 2 * vl
	pa := make([]float32, k*mc*bl)
	pb := make([]float32, k*nc*bl)
	c := make([]float32, nc*strideC*bl)
	for i := range pa {
		pa[i] = rng.Float32()
	}
	for i := range pb {
		pb[i] = rng.Float32()
	}
	for i := range c {
		c[i] = rng.Float32()
	}
	orig := append([]float32(nil), c...)
	alpha := complex(float32(1.5), float32(-0.5))
	GEMMCplx(pa, pb, c, mc, nc, k, strideC, vl, real(alpha), imag(alpha), false)
	for lane := 0; lane < vl; lane++ {
		for r := 0; r < mc; r++ {
			for cc := 0; cc < nc; cc++ {
				sum := complex64(0)
				for l := 0; l < k; l++ {
					av := complex(pa[(l*mc+r)*bl+lane], pa[(l*mc+r)*bl+vl+lane])
					bv := complex(pb[(l*nc+cc)*bl+lane], pb[(l*nc+cc)*bl+vl+lane])
					sum += av * bv
				}
				off := (cc*strideC + r) * bl
				got := complex(c[off+lane], c[off+vl+lane])
				want := complex(orig[off+lane], orig[off+vl+lane]) + alpha*sum
				if d := got - want; math.Hypot(float64(real(d)), float64(imag(d))) > 1e-4 {
					t.Fatalf("C(%d,%d) lane %d = %v, want %v", r, cc, lane, got, want)
				}
			}
		}
	}
}

func TestTriDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const m, ncols, vl, strideB = 5, 3, 2, 6
	tri := m * (m + 1) / 2
	// Logical lower triangle with conditioned diagonal.
	a := make([]float64, tri*vl)
	for i := range a {
		a[i] = rng.Float64()
	}
	pa := make([]float64, tri*vl) // packed: reciprocal diagonal
	copy(pa, a)
	for i := 0; i < m; i++ {
		d := i*(i+1)/2 + i
		for lane := 0; lane < vl; lane++ {
			a[d*vl+lane] += 2
			pa[d*vl+lane] = 1 / a[d*vl+lane]
		}
	}
	b := make([]float64, ncols*strideB*vl)
	for i := range b {
		b[i] = rng.Float64()
	}
	orig := append([]float64(nil), b...)
	Tri(pa, b, m, ncols, strideB, vl)
	for lane := 0; lane < vl; lane++ {
		for l := 0; l < ncols; l++ {
			x := make([]float64, m)
			for i := 0; i < m; i++ {
				v := orig[(l*strideB+i)*vl+lane]
				for j := 0; j < i; j++ {
					v -= a[(i*(i+1)/2+j)*vl+lane] * x[j]
				}
				x[i] = v * (1 / a[(i*(i+1)/2+i)*vl+lane])
			}
			for i := 0; i < m; i++ {
				got := b[(l*strideB+i)*vl+lane]
				if math.Abs(got-x[i]) > 1e-10 {
					t.Fatalf("col %d row %d lane %d = %v, want %v", l, i, lane, got, x[i])
				}
			}
		}
	}
}

func TestRectDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const mc, nc, k, vl, strideC, strideX = 4, 3, 5, 2, 7, 9
	pa := make([]float64, k*mc*vl)
	x := make([]float64, nc*strideX*vl)
	c := make([]float64, nc*strideC*vl)
	for i := range pa {
		pa[i] = rng.Float64()
	}
	for i := range x {
		x[i] = rng.Float64()
	}
	for i := range c {
		c[i] = rng.Float64()
	}
	orig := append([]float64(nil), c...)
	Rect(pa, x, c, mc, nc, k, strideC, strideX, vl)
	for lane := 0; lane < vl; lane++ {
		for r := 0; r < mc; r++ {
			for cc := 0; cc < nc; cc++ {
				want := orig[(cc*strideC+r)*vl+lane]
				for l := 0; l < k; l++ {
					want -= pa[(l*mc+r)*vl+lane] * x[(cc*strideX+l)*vl+lane]
				}
				got := c[(cc*strideC+r)*vl+lane]
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("B(%d,%d) lane %d = %v, want %v", r, cc, lane, got, want)
				}
			}
		}
	}
}

func TestTriCplxAndRectCplxDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const m, ncols, vl, strideB = 3, 2, 2, 4
	bl := 2 * vl
	tri := m * (m + 1) / 2
	aRe := make([]float64, tri*vl)
	aIm := make([]float64, tri*vl)
	pa := make([]float64, tri*bl)
	for i := 0; i < tri; i++ {
		for lane := 0; lane < vl; lane++ {
			aRe[i*vl+lane] = rng.Float64()
			aIm[i*vl+lane] = rng.Float64()
		}
	}
	for i := 0; i < m; i++ {
		d := i*(i+1)/2 + i
		for lane := 0; lane < vl; lane++ {
			aRe[d*vl+lane] += 2
		}
	}
	for i := 0; i < tri; i++ {
		for lane := 0; lane < vl; lane++ {
			re, im := aRe[i*vl+lane], aIm[i*vl+lane]
			onDiag := false
			for r := 0; r < m; r++ {
				if i == r*(r+1)/2+r {
					onDiag = true
				}
			}
			if onDiag {
				den := re*re + im*im
				pa[i*bl+lane] = re / den
				pa[i*bl+vl+lane] = -im / den
			} else {
				pa[i*bl+lane] = re
				pa[i*bl+vl+lane] = im
			}
		}
	}
	b := make([]float64, ncols*strideB*bl)
	for i := range b {
		b[i] = rng.Float64()
	}
	orig := append([]float64(nil), b...)
	TriCplx(pa, b, m, ncols, strideB, vl)
	for lane := 0; lane < vl; lane++ {
		for l := 0; l < ncols; l++ {
			x := make([]complex128, m)
			for i := 0; i < m; i++ {
				off := (l*strideB + i) * bl
				v := complex(orig[off+lane], orig[off+vl+lane])
				for j := 0; j < i; j++ {
					t := i*(i+1)/2 + j
					v -= complex(aRe[t*vl+lane], aIm[t*vl+lane]) * x[j]
				}
				d := i*(i+1)/2 + i
				x[i] = v * complex(pa[d*bl+lane], pa[d*bl+vl+lane])
			}
			for i := 0; i < m; i++ {
				off := (l*strideB + i) * bl
				got := complex(b[off+lane], b[off+vl+lane])
				if dd := got - x[i]; math.Hypot(real(dd), imag(dd)) > 1e-10 {
					t.Fatalf("col %d row %d lane %d = %v, want %v", l, i, lane, got, x[i])
				}
			}
		}
	}

	// RectCplx: B -= L·X.
	const rmc, rnc, rk, rsC, rsX = 2, 2, 3, 3, 4
	rpa := make([]float64, rk*rmc*bl)
	rx := make([]float64, rnc*rsX*bl)
	rc := make([]float64, rnc*rsC*bl)
	for i := range rpa {
		rpa[i] = rng.Float64()
	}
	for i := range rx {
		rx[i] = rng.Float64()
	}
	for i := range rc {
		rc[i] = rng.Float64()
	}
	rorig := append([]float64(nil), rc...)
	RectCplx(rpa, rx, rc, rmc, rnc, rk, rsC, rsX, vl)
	for lane := 0; lane < vl; lane++ {
		for r := 0; r < rmc; r++ {
			for cc := 0; cc < rnc; cc++ {
				off := (cc*rsC + r) * bl
				want := complex(rorig[off+lane], rorig[off+vl+lane])
				for l := 0; l < rk; l++ {
					av := complex(rpa[(l*rmc+r)*bl+lane], rpa[(l*rmc+r)*bl+vl+lane])
					xv := complex(rx[(cc*rsX+l)*bl+lane], rx[(cc*rsX+l)*bl+vl+lane])
					want -= av * xv
				}
				got := complex(rc[off+lane], rc[off+vl+lane])
				if dd := got - want; math.Hypot(real(dd), imag(dd)) > 1e-10 {
					t.Fatalf("B(%d,%d) lane %d = %v, want %v", r, cc, lane, got, want)
				}
			}
		}
	}
}
