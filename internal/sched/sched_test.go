package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// testPool is shared by the tests that don't care about isolation; tests
// asserting counter deltas build their own.
var testPool = NewPool()

// TestRunCoversRange checks every index is visited exactly once for a grid
// of sizes, worker counts and chunk sizes.
func TestRunCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 3, 17, 256, 1001} {
		for _, workers := range []int{-1, 0, 1, 2, 7, 64} {
			for _, chunk := range []int{0, 1, 5, 1024} {
				var hits sync.Map
				var count atomic.Int64
				testPool.Run(n, workers, chunk, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("bad range [%d,%d) for n=%d", lo, hi, n)
					}
					for i := lo; i < hi; i++ {
						if _, dup := hits.LoadOrStore(i, true); dup {
							t.Errorf("index %d visited twice (n=%d w=%d c=%d)", i, n, workers, chunk)
						}
						count.Add(1)
					}
				})
				if int(count.Load()) != n {
					t.Fatalf("n=%d workers=%d chunk=%d: visited %d indices", n, workers, chunk, count.Load())
				}
			}
		}
	}
}

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS", got)
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Resolve(5); got != 5 {
		t.Errorf("Resolve(5) = %d", got)
	}
}

// TestRunConcurrent hammers the pool from many goroutines at once — the
// saturation/overflow path — and checks every call still completes fully.
func TestRunConcurrent(t *testing.T) {
	const callers = 32
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				var sum atomic.Int64
				testPool.Run(100, 4, 7, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						sum.Add(int64(i))
					}
				})
				if sum.Load() != 100*99/2 {
					t.Errorf("partial run: sum %d", sum.Load())
				}
			}
		}()
	}
	wg.Wait()
}

// TestPoolResize changes GOMAXPROCS between parallel calls and checks the
// pool follows it instead of staying pinned to the first-seen value.
func TestPoolResize(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)

	p := NewPool()
	parallel := func() {
		var sum atomic.Int64
		// workers=0 (auto) with chunk 1 forces a fan-out sized to the
		// current GOMAXPROCS whenever it is > 1.
		p.Run(64, 0, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sum.Add(int64(i))
			}
		})
		if sum.Load() != 64*63/2 {
			t.Errorf("partial run after resize: sum %d", sum.Load())
		}
	}

	// Targets stay >= 2: at GOMAXPROCS 1 auto calls run inline and never
	// touch the pool, so there is nothing for it to follow.
	for _, target := range []int{4, 2, 6} {
		runtime.GOMAXPROCS(target)
		parallel()
		if got := p.Snapshot().Workers; got != target {
			t.Errorf("after GOMAXPROCS(%d): pool has %d workers", target, got)
		}
	}
	if p.Snapshot().Resizes == 0 {
		t.Error("resizes not counted")
	}
}

func TestSnapshotCounters(t *testing.T) {
	p := NewPool()
	before := p.Snapshot()
	p.Run(10, 1, 0, func(lo, hi int) {})
	p.Run(100, 4, 1, func(lo, hi int) {})
	after := p.Snapshot()
	if after.InlineCalls <= before.InlineCalls {
		t.Error("inline call not counted")
	}
	if after.ParallelCalls <= before.ParallelCalls {
		t.Error("parallel call not counted")
	}
	if after.Chunks < before.Chunks+100 {
		t.Errorf("chunks: %d -> %d, want +100", before.Chunks, after.Chunks)
	}
}

// TestSetMaxWorkers checks the cap bounds both the fleet size and the
// effective fan-out of a call — the per-shard core budget EngineSet sets.
func TestSetMaxWorkers(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	runtime.GOMAXPROCS(4)

	p := NewPool()
	p.SetMaxWorkers(2)
	if got := p.MaxWorkers(); got != 2 {
		t.Fatalf("MaxWorkers = %d, want 2", got)
	}
	var sum atomic.Int64
	p.Run(64, 0, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum.Add(int64(i))
		}
	})
	if sum.Load() != 64*63/2 {
		t.Fatalf("capped run incomplete: sum %d", sum.Load())
	}
	if got := p.Snapshot().Workers; got > 2 {
		t.Errorf("fleet size %d exceeds cap 2", got)
	}
	p.SetMaxWorkers(0)
	p.Run(64, 0, 1, func(lo, hi int) {})
	if got := p.Snapshot().Workers; got != 4 {
		t.Errorf("after uncapping, fleet is %d, want GOMAXPROCS=4", got)
	}
}

// Two pools are independent fleets: counters never bleed across.
func TestPoolIsolation(t *testing.T) {
	p1, p2 := NewPool(), NewPool()
	p1.Run(100, 4, 1, func(lo, hi int) {})
	if s := p2.Snapshot(); s.ParallelCalls != 0 && s.Workers != 0 {
		t.Fatalf("pool 2 saw pool 1 traffic: %+v", s)
	}
}
