// Package sched is the process-wide persistent worker pool behind every
// parallel entry point of the library. The paper's run-time stage assumes
// dispatch is near-free; spawning goroutines per call is not, so a fixed
// set of workers (one per GOMAXPROCS) is started once and parallel calls
// are split into super-batch-sized chunks that idle workers pull off a
// shared index — dynamic self-scheduling, so a slow worker never strands
// work the way a static split does.
//
// The workers convention, shared by every public *Parallel function:
// workers <= 0 means "auto", i.e. one worker per GOMAXPROCS; workers == 1
// runs inline on the caller with zero goroutine traffic.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

var (
	startOnce sync.Once
	jobs      chan func()
	poolSize  int

	parallelCalls atomic.Uint64
	inlineCalls   atomic.Uint64
	chunksRun     atomic.Uint64
	poolShares    atomic.Uint64
	overflowRuns  atomic.Uint64
)

// Stats is a snapshot of the pool's lifetime counters.
type Stats struct {
	Workers       int    // persistent pool size (0 until first parallel call)
	ParallelCalls uint64 // Run invocations that fanned out to the pool
	InlineCalls   uint64 // Run invocations executed entirely on the caller
	Chunks        uint64 // work chunks executed across all parallel calls
	PoolShares    uint64 // worker shares executed by pool goroutines
	OverflowRuns  uint64 // shares run on overflow goroutines (pool saturated)
}

// Snapshot returns the current pool counters.
func Snapshot() Stats {
	return Stats{
		Workers:       poolSize,
		ParallelCalls: parallelCalls.Load(),
		InlineCalls:   inlineCalls.Load(),
		Chunks:        chunksRun.Load(),
		PoolShares:    poolShares.Load(),
		OverflowRuns:  overflowRuns.Load(),
	}
}

func start() {
	poolSize = runtime.GOMAXPROCS(0)
	jobs = make(chan func(), 4*poolSize)
	for i := 0; i < poolSize; i++ {
		go func() {
			for f := range jobs {
				f()
			}
		}()
	}
}

// Resolve maps the public workers convention onto a concrete count:
// workers <= 0 means auto (GOMAXPROCS).
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Run executes fn over every index range of [0, n), split into chunks of
// `chunk` indices (<= 0 picks one proportional to n and the worker count).
// Up to `workers` participants (caller included) pull chunks dynamically;
// Run returns when all of [0, n) has been processed. fn must be safe for
// concurrent invocation on disjoint ranges.
func Run(n, workers, chunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers)
	if chunk <= 0 {
		chunk = n / (4 * workers)
		if chunk < 1 {
			chunk = 1
		}
	}
	nchunks := (n + chunk - 1) / chunk
	if workers > nchunks {
		workers = nchunks
	}
	if workers == 1 {
		inlineCalls.Add(1)
		fn(0, n)
		return
	}
	startOnce.Do(start)
	parallelCalls.Add(1)
	var next atomic.Int64
	body := func() {
		for {
			lo := int(next.Add(int64(chunk))) - chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			chunksRun.Add(1)
			fn(lo, hi)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < workers-1; i++ {
		wg.Add(1)
		share := func() {
			defer wg.Done()
			body()
		}
		select {
		case jobs <- func() { poolShares.Add(1); share() }:
		default:
			// Pool saturated (e.g. nested or highly concurrent calls):
			// fall back to a plain goroutine rather than queue behind
			// long-running shares.
			overflowRuns.Add(1)
			go share()
		}
	}
	// The caller is always a participant, so the call makes progress even
	// if every pool worker is busy elsewhere.
	body()
	wg.Wait()
}
