// Package sched is the process-wide persistent worker pool behind every
// parallel entry point of the library. The paper's run-time stage assumes
// dispatch is near-free; spawning goroutines per call is not, so a fixed
// set of workers (one per GOMAXPROCS) is started once and parallel calls
// are split into super-batch-sized chunks that idle workers pull off a
// shared index — dynamic self-scheduling, so a slow worker never strands
// work the way a static split does.
//
// The pool tracks GOMAXPROCS: every parallel call re-reads it and, when
// it changed (cgroup resize, runtime.GOMAXPROCS call), grows the pool
// with fresh workers or retires the surplus — the pool never stays
// permanently mis-sized for the machine it is running on.
//
// The workers convention, shared by every public *Parallel function:
// workers <= 0 means "auto", i.e. one worker per GOMAXPROCS; workers == 1
// runs inline on the caller with zero goroutine traffic.
package sched

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
)

var (
	poolMu   sync.Mutex
	jobs     chan func()
	poolSize atomic.Int64 // current (intended) worker count; 0 before first use

	parallelCalls atomic.Uint64
	inlineCalls   atomic.Uint64
	chunksRun     atomic.Uint64
	poolShares    atomic.Uint64
	overflowRuns  atomic.Uint64
	poolResizes   atomic.Uint64
)

// Stats is a snapshot of the pool's lifetime counters.
type Stats struct {
	// Workers is the persistent pool size (0 until the first parallel
	// call). It follows GOMAXPROCS: the pool re-reads it on every
	// parallel call and resizes when it changed, so a long-lived process
	// whose CPU allotment shrinks or grows is re-sized at its next
	// parallel call rather than pinned to the first-seen value.
	Workers       int
	Resizes       uint64 // pool resizes after a GOMAXPROCS change
	ParallelCalls uint64 // Run invocations that fanned out to the pool
	InlineCalls   uint64 // Run invocations executed entirely on the caller
	Chunks        uint64 // work chunks executed across all parallel calls
	PoolShares    uint64 // worker shares executed by pool goroutines
	OverflowRuns  uint64 // shares run on overflow goroutines (pool saturated)
}

// Snapshot returns the current pool counters.
func Snapshot() Stats {
	return Stats{
		Workers:       int(poolSize.Load()),
		Resizes:       poolResizes.Load(),
		ParallelCalls: parallelCalls.Load(),
		InlineCalls:   inlineCalls.Load(),
		Chunks:        chunksRun.Load(),
		PoolShares:    poolShares.Load(),
		OverflowRuns:  overflowRuns.Load(),
	}
}

// worker drains the shared queue; a nil job is a retire token consumed by
// exactly one worker when the pool shrinks.
func worker(jobs chan func()) {
	for f := range jobs {
		if f == nil {
			return
		}
		f()
	}
}

// ensurePool sizes the pool to the current GOMAXPROCS and returns the job
// queue. The fast path — size already matches — is one atomic load.
func ensurePool() chan func() {
	target := runtime.GOMAXPROCS(0)
	if int(poolSize.Load()) == target {
		// The release store below orders the channel write before the
		// size becomes visible, so this read of jobs is safe.
		return jobs
	}
	poolMu.Lock()
	defer poolMu.Unlock()
	cur := int(poolSize.Load())
	if cur == target {
		return jobs
	}
	if jobs == nil {
		jobs = make(chan func(), 4*target)
	}
	if cur > 0 {
		poolResizes.Add(1)
	}
	for ; cur < target; cur++ {
		go worker(jobs)
	}
	for ; cur > target; cur-- {
		jobs <- nil // retire one worker
	}
	poolSize.Store(int64(target))
	return jobs
}

// Resolve maps the public workers convention onto a concrete count:
// workers <= 0 means auto (GOMAXPROCS).
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Run executes fn over every index range of [0, n), split into chunks of
// `chunk` indices (<= 0 picks one proportional to n and the worker count).
// Up to `workers` participants (caller included) pull chunks dynamically;
// Run returns when all of [0, n) has been processed. fn must be safe for
// concurrent invocation on disjoint ranges.
func Run(n, workers, chunk int, fn func(lo, hi int)) {
	RunLabeled(nil, n, workers, chunk, fn)
}

// RunLabeled is Run with an optional pprof label context: persistent pool
// workers adopt labels for the duration of their share, so CPU profiles
// attribute kernel samples to the dispatching call (op/dtype/shape).
// Overflow goroutines and the caller's own share need no handling — new
// goroutines inherit the spawner's labels, and the engine labels the
// caller before dispatch. labels == nil (the Run path) costs nothing.
func RunLabeled(labels context.Context, n, workers, chunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers)
	if chunk <= 0 {
		chunk = n / (4 * workers)
		if chunk < 1 {
			chunk = 1
		}
	}
	nchunks := (n + chunk - 1) / chunk
	if workers > nchunks {
		workers = nchunks
	}
	if workers == 1 {
		inlineCalls.Add(1)
		fn(0, n)
		return
	}
	queue := ensurePool()
	parallelCalls.Add(1)
	var next atomic.Int64
	body := func() {
		for {
			lo := int(next.Add(int64(chunk))) - chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			chunksRun.Add(1)
			fn(lo, hi)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < workers-1; i++ {
		wg.Add(1)
		share := func() {
			defer wg.Done()
			body()
		}
		pooled := func() { poolShares.Add(1); share() }
		if labels != nil {
			pooled = func() {
				poolShares.Add(1)
				pprof.SetGoroutineLabels(labels)
				share()
				pprof.SetGoroutineLabels(context.Background())
			}
		}
		select {
		case queue <- pooled:
		default:
			// Pool saturated (e.g. nested or highly concurrent calls):
			// fall back to a plain goroutine rather than queue behind
			// long-running shares.
			overflowRuns.Add(1)
			go share()
		}
	}
	// The caller is always a participant, so the call makes progress even
	// if every pool worker is busy elsewhere.
	body()
	wg.Wait()
}
