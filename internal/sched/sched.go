// Package sched provides persistent worker pools behind every parallel
// entry point of the library. The paper's run-time stage assumes
// dispatch is near-free; spawning goroutines per call is not, so a fixed
// set of workers is started once per Pool and parallel calls are split
// into super-batch-sized chunks that idle workers pull off a shared
// index — dynamic self-scheduling, so a slow worker never strands work
// the way a static split does.
//
// All state lives in Pool instances — the package has no globals. Each
// engine owns one Pool (via core.Runtime): a sharded EngineSet therefore
// gets strictly isolated worker fleets, and SetMaxWorkers lets the set
// place shards NUMA-style by capping each shard's fleet at its core
// budget instead of letting every shard claim the whole machine.
//
// A pool tracks GOMAXPROCS: every parallel call re-reads it and, when
// it changed (cgroup resize, runtime.GOMAXPROCS call), grows the pool
// with fresh workers or retires the surplus — the pool never stays
// permanently mis-sized for the machine it is running on.
//
// The workers convention, shared by every public *Parallel function:
// workers <= 0 means "auto", i.e. one worker per GOMAXPROCS; workers == 1
// runs inline on the caller with zero goroutine traffic.
package sched

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
)

// Pool is one persistent worker pool. The zero value is ready to use;
// all methods are safe for concurrent use.
type Pool struct {
	mu       sync.Mutex
	jobs     chan func()
	poolSize atomic.Int64 // current (intended) worker count; 0 before first use
	maxSize  atomic.Int64 // SetMaxWorkers cap; 0 = uncapped (GOMAXPROCS)

	parallelCalls atomic.Uint64
	inlineCalls   atomic.Uint64
	chunksRun     atomic.Uint64
	poolShares    atomic.Uint64
	overflowRuns  atomic.Uint64
	poolResizes   atomic.Uint64
}

// NewPool returns an empty, independent worker pool. Workers are started
// lazily by the first parallel Run.
func NewPool() *Pool { return &Pool{} }

// SetMaxWorkers caps the pool's worker fleet at n (n <= 0 removes the
// cap). The cap bounds both the persistent fleet size and the effective
// worker count of each Run — an EngineSet uses it to give every shard a
// cores-per-shard budget instead of GOMAXPROCS. Takes effect on the next
// parallel call.
func (p *Pool) SetMaxWorkers(n int) {
	if n < 0 {
		n = 0
	}
	p.maxSize.Store(int64(n))
}

// MaxWorkers returns the SetMaxWorkers cap (0 = uncapped).
func (p *Pool) MaxWorkers() int { return int(p.maxSize.Load()) }

// target returns the intended fleet size: GOMAXPROCS clamped by the cap.
func (p *Pool) target() int {
	t := runtime.GOMAXPROCS(0)
	if max := int(p.maxSize.Load()); max > 0 && max < t {
		t = max
	}
	return t
}

// Stats is a snapshot of one pool's lifetime counters.
type Stats struct {
	// Workers is the persistent pool size (0 until the first parallel
	// call). It follows GOMAXPROCS (clamped by SetMaxWorkers): the pool
	// re-reads it on every parallel call and resizes when it changed, so
	// a long-lived process whose CPU allotment shrinks or grows is
	// re-sized at its next parallel call rather than pinned to the
	// first-seen value.
	Workers       int
	MaxWorkers    int    // SetMaxWorkers cap (0 = uncapped)
	Resizes       uint64 // pool resizes after a GOMAXPROCS/cap change
	ParallelCalls uint64 // Run invocations that fanned out to the pool
	InlineCalls   uint64 // Run invocations executed entirely on the caller
	Chunks        uint64 // work chunks executed across all parallel calls
	PoolShares    uint64 // worker shares executed by pool goroutines
	OverflowRuns  uint64 // shares run on overflow goroutines (pool saturated)
}

// Add accumulates another pool's counters into s — the cross-shard
// aggregate view of an EngineSet. Workers sum (they are distinct
// fleets); MaxWorkers keeps the first non-zero cap seen.
func (s *Stats) Add(o Stats) {
	s.Workers += o.Workers
	if s.MaxWorkers == 0 {
		s.MaxWorkers = o.MaxWorkers
	}
	s.Resizes += o.Resizes
	s.ParallelCalls += o.ParallelCalls
	s.InlineCalls += o.InlineCalls
	s.Chunks += o.Chunks
	s.PoolShares += o.PoolShares
	s.OverflowRuns += o.OverflowRuns
}

// Snapshot returns the pool's current counters.
func (p *Pool) Snapshot() Stats {
	return Stats{
		Workers:       int(p.poolSize.Load()),
		MaxWorkers:    int(p.maxSize.Load()),
		Resizes:       p.poolResizes.Load(),
		ParallelCalls: p.parallelCalls.Load(),
		InlineCalls:   p.inlineCalls.Load(),
		Chunks:        p.chunksRun.Load(),
		PoolShares:    p.poolShares.Load(),
		OverflowRuns:  p.overflowRuns.Load(),
	}
}

// worker drains the shared queue; a nil job is a retire token consumed by
// exactly one worker when the pool shrinks.
func worker(jobs chan func()) {
	for f := range jobs {
		if f == nil {
			return
		}
		f()
	}
}

// ensurePool sizes the pool to the current target and returns the job
// queue. The fast path — size already matches — is one atomic load.
func (p *Pool) ensurePool() chan func() {
	target := p.target()
	if int(p.poolSize.Load()) == target {
		// The release store below orders the channel write before the
		// size becomes visible, so this read of jobs is safe.
		return p.jobs
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	cur := int(p.poolSize.Load())
	if cur == target {
		return p.jobs
	}
	if p.jobs == nil {
		p.jobs = make(chan func(), 4*runtime.GOMAXPROCS(0))
	}
	if cur > 0 {
		p.poolResizes.Add(1)
	}
	for ; cur < target; cur++ {
		go worker(p.jobs)
	}
	for ; cur > target; cur-- {
		p.jobs <- nil // retire one worker
	}
	p.poolSize.Store(int64(target))
	return p.jobs
}

// Resolve maps the public workers convention onto a concrete count:
// workers <= 0 means auto (GOMAXPROCS).
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Run executes fn over every index range of [0, n), split into chunks of
// `chunk` indices (<= 0 picks one proportional to n and the worker count).
// Up to `workers` participants (caller included) pull chunks dynamically;
// Run returns when all of [0, n) has been processed. fn must be safe for
// concurrent invocation on disjoint ranges.
func (p *Pool) Run(n, workers, chunk int, fn func(lo, hi int)) {
	p.RunLabeled(nil, n, workers, chunk, fn)
}

// RunLabeled is Run with an optional pprof label context: persistent pool
// workers adopt labels for the duration of their share, so CPU profiles
// attribute kernel samples to the dispatching call (op/dtype/shape).
// Overflow goroutines and the caller's own share need no handling — new
// goroutines inherit the spawner's labels, and the engine labels the
// caller before dispatch. labels == nil (the Run path) costs nothing.
func (p *Pool) RunLabeled(labels context.Context, n, workers, chunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers)
	if max := int(p.maxSize.Load()); max > 0 && workers > max {
		workers = max
	}
	if chunk <= 0 {
		chunk = n / (4 * workers)
		if chunk < 1 {
			chunk = 1
		}
	}
	nchunks := (n + chunk - 1) / chunk
	if workers > nchunks {
		workers = nchunks
	}
	if workers == 1 {
		p.inlineCalls.Add(1)
		fn(0, n)
		return
	}
	queue := p.ensurePool()
	p.parallelCalls.Add(1)
	var next atomic.Int64
	body := func() {
		for {
			lo := int(next.Add(int64(chunk))) - chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			p.chunksRun.Add(1)
			fn(lo, hi)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < workers-1; i++ {
		wg.Add(1)
		share := func() {
			defer wg.Done()
			body()
		}
		pooled := func() { p.poolShares.Add(1); share() }
		if labels != nil {
			pooled = func() {
				p.poolShares.Add(1)
				pprof.SetGoroutineLabels(labels)
				share()
				pprof.SetGoroutineLabels(context.Background())
			}
		}
		select {
		case queue <- pooled:
		default:
			// Pool saturated (e.g. nested or highly concurrent calls):
			// fall back to a plain goroutine rather than queue behind
			// long-running shares.
			p.overflowRuns.Add(1)
			go share()
		}
	}
	// The caller is always a participant, so the call makes progress even
	// if every pool worker is busy elsewhere.
	body()
	wg.Wait()
}
