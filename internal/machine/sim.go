package machine

import (
	"iatf/internal/asm"
	"iatf/internal/cache"
)

// Sim is an in-order dual-issue pipeline scoreboard. Instructions are fed
// in program order (Exec); the simulator advances a cycle counter under the
// profile's issue-port constraints and register-dependency latencies, with
// load latencies supplied by the cache hierarchy.
//
// One Sim instance models one element width (4 or 8 bytes), which fixes
// the FP port count and the byte scaling of trace addresses.
type Sim struct {
	Prof      Profile
	Cache     *cache.Hierarchy
	ElemBytes int

	// regReady[r] is the cycle at which register r's value is available;
	// indices 0–31 are V registers, 32–39 pointer registers.
	regReady [40]int64

	cycle   int64 // current issue cycle
	slotMem int   // memory instructions issued in the current cycle
	slotFP  int
	slotInt int

	// Statistics.
	Instrs      int64
	MemInstrs   int64
	FPInstrs    int64
	StallCycles int64
	fpPorts     int

	// OnIssue, when non-nil, observes every issued instruction with its
	// issue cycle and completion latency — the hook behind the pipeline
	// trace tool.
	OnIssue func(cycle int64, in asm.Instr, lat int)
}

// NewSim builds a simulator for one kernel-execution experiment.
func NewSim(p Profile, elemBytes int) *Sim {
	return &Sim{
		Prof:      p,
		Cache:     cache.New(p.Cache),
		ElemBytes: elemBytes,
		fpPorts:   p.FPPorts(elemBytes),
	}
}

// Reset clears pipeline state and statistics but keeps cache contents, so
// repeated kernel invocations see a warm cache — matching the paper's
// measurement of 100 repetitions.
func (s *Sim) Reset() {
	s.regReady = [40]int64{}
	s.cycle = 0
	s.slotMem, s.slotFP, s.slotInt = 0, 0, 0
	s.Instrs, s.MemInstrs, s.FPInstrs, s.StallCycles = 0, 0, 0, 0
}

func (s *Sim) advance(to int64) {
	if to > s.cycle {
		s.cycle = to
		s.slotMem, s.slotFP, s.slotInt = 0, 0, 0
	}
}

func regIndexes(m asm.RegMask, out []int) []int {
	for r := 0; m != 0 && r < 40; r++ {
		if m&1 != 0 {
			out = append(out, r)
		}
		m >>= 1
	}
	return out
}

// Exec issues one instruction. elemAddr is the element offset the
// instruction touches (from the VM trace; ignored for non-memory ops).
// The corresponding modeled byte address is elemAddr·ElemBytes.
func (s *Sim) Exec(in asm.Instr, elemAddr int) {
	s.Instrs++

	// Operand readiness (registers are read at issue).
	var idxbuf [8]int
	ready := s.cycle
	for _, r := range regIndexes(in.Reads(), idxbuf[:0]) {
		if s.regReady[r] > ready {
			ready = s.regReady[r]
		}
	}
	if ready > s.cycle {
		s.StallCycles += ready - s.cycle
	}
	s.advance(ready)

	// Port allocation.
	isMem := in.Op.IsMem()
	isFP := in.Op.IsFP()
	for {
		memOK := !isMem || s.slotMem < s.Prof.MemPorts
		fpOK := !isFP || s.slotFP < s.fpPorts
		groupOK := true
		if s.Prof.GroupWidth > 0 && (isMem || isFP) {
			groupOK = s.slotMem+s.slotFP < s.Prof.GroupWidth
		}
		intOK := isMem || isFP || s.slotInt < s.Prof.IntPorts
		if memOK && fpOK && groupOK && intOK {
			break
		}
		s.advance(s.cycle + 1)
	}
	switch {
	case isMem:
		s.slotMem++
		s.MemInstrs++
	case isFP:
		s.slotFP++
		s.FPInstrs++
	default:
		s.slotInt++
	}

	// Completion latency.
	lat := 1
	switch {
	case in.Op == asm.PRFM:
		s.Cache.Prefetch(uint64(elemAddr) * uint64(s.ElemBytes))
		lat = 1
	case in.Op.IsLoad():
		size := s.Prof.VectorBits / 8
		if in.Op == asm.LDP {
			size *= 2
		}
		if in.Op == asm.LD1R {
			size = s.ElemBytes
		}
		lat = s.Cache.Access(uint64(elemAddr)*uint64(s.ElemBytes), size, false)
	case in.Op.IsStore():
		size := s.Prof.VectorBits / 8
		if in.Op == asm.STP {
			size *= 2
		}
		// Stores retire through a write buffer; they charge the cache
		// (allocation) but do not stall dependents.
		s.Cache.Access(uint64(elemAddr)*uint64(s.ElemBytes), size, true)
		lat = 1
	case in.Op == asm.FDIV:
		if s.ElemBytes == 4 {
			lat = s.Prof.LatDiv32
		} else {
			lat = s.Prof.LatDiv64
		}
	case in.Op == asm.FMLA, in.Op == asm.FMLS, in.Op == asm.FMLAe, in.Op == asm.FMLSe:
		lat = s.Prof.LatFMA
	case in.Op == asm.FMUL, in.Op == asm.FMULe:
		lat = s.Prof.LatMul
	case in.Op == asm.FADD, in.Op == asm.FSUB:
		lat = s.Prof.LatAdd
	}
	done := s.cycle + int64(lat)
	for _, r := range regIndexes(in.Writes(), idxbuf[:0]) {
		s.regReady[r] = done
	}
	if s.OnIssue != nil {
		s.OnIssue(s.cycle, in, lat)
	}
}

// AddCycles charges flat overhead cycles (library call setup, dispatch) —
// used by the baseline models, which pay per-call costs IATF's execution
// plan amortizes.
func (s *Sim) AddCycles(n int64) {
	s.advance(s.cycle + n)
}

// Cycles returns the total cycle count: the issue cursor advanced past the
// latest in-flight result.
func (s *Sim) Cycles() int64 {
	c := s.cycle + 1
	for _, r := range s.regReady {
		if r > c {
			c = r
		}
	}
	return c
}

// Seconds converts the current cycle count to seconds at the profile
// frequency.
func (s *Sim) Seconds() float64 {
	return float64(s.Cycles()) / (s.Prof.FreqGHz * 1e9)
}
