// Package machine provides cycle-level in-order pipeline models of the two
// processors in the paper's evaluation (Table 2): the Kunpeng 920
// (ARMv8.2, 128-bit SIMD) and the Intel Xeon Gold 6240 (Cascade Lake,
// 512-bit SIMD). A model consumes the instruction stream a kernel executes
// (via the asm.VM trace hook or a synthetic stream from a baseline
// generator) and reports cycles, from which the benchmark harness derives
// GFLOPS and percent-of-peak exactly as the paper plots them.
//
// The Kunpeng profile encodes the dual-issue constraint the paper calls
// out explicitly in §6.3: one memory access and one calculation
// instruction per cycle, or two calculation instructions for
// single-precision — which is why IATF's single-precision advantage is
// smaller there.
package machine

import (
	"iatf/internal/cache"
	"iatf/internal/vec"
)

// Profile describes one modeled core.
type Profile struct {
	Name       string
	FreqGHz    float64
	VectorBits int

	// Issue constraints per cycle.
	MemPorts  int // memory instructions per cycle
	FPPorts32 int // FP vector instructions per cycle at 32-bit element width
	FPPorts64 int // FP vector instructions per cycle at 64-bit element width
	// GroupWidth, when nonzero, caps mem+FP instructions issued together
	// per cycle — the Kunpeng dual-issue coupling. Zero means the ports
	// are independent.
	GroupWidth int
	IntPorts   int // pointer-arithmetic instructions per cycle

	// Latencies in cycles. Loads take the cache-simulated latency.
	LatFMA   int
	LatMul   int
	LatAdd   int
	LatDiv32 int
	LatDiv64 int

	Cache cache.Config
}

// Lanes returns the vector lane count for a real element width.
func (p Profile) Lanes(elemBytes int) int { return p.VectorBits / 8 / elemBytes }

// FPPorts returns FP issue ports for a real element width.
func (p Profile) FPPorts(elemBytes int) int {
	if elemBytes == 4 {
		return p.FPPorts32
	}
	return p.FPPorts64
}

// PeakGFLOPS returns the theoretical peak for a data type: ports × lanes ×
// 2 flops (FMA) × frequency. Complex types share the peak of their real
// component type, as the paper's percent-of-peak plots assume.
func (p Profile) PeakGFLOPS(dt vec.DType) float64 {
	eb := dt.ElemBytes()
	return p.FreqGHz * float64(p.FPPorts(eb)) * float64(p.Lanes(eb)) * 2
}

// Kunpeng920 models the ARM platform of Table 2: 2.6 GHz, 128-bit SIMD,
// 64 KB L1D, 512 KB L2, FP64 peak 10.4 GFLOPS, FP32 peak 41.6 GFLOPS.
func Kunpeng920() Profile {
	return Profile{
		Name:       "Kunpeng 920",
		FreqGHz:    2.6,
		VectorBits: 128,
		MemPorts:   1,
		FPPorts32:  2,
		FPPorts64:  1,
		GroupWidth: 2,
		IntPorts:   2,
		LatFMA:     4,
		LatMul:     4,
		LatAdd:     4,
		LatDiv32:   13,
		LatDiv64:   22,
		Cache: cache.Config{
			Levels: []cache.LevelConfig{
				{Name: "L1D", SizeBytes: 64 << 10, LineBytes: 64, Ways: 4, HitCycles: 4},
				{Name: "L2", SizeBytes: 512 << 10, LineBytes: 64, Ways: 8, HitCycles: 14},
			},
			MemoryCycles: 120,
			StreamSlots:  16,
		},
	}
}

// XeonGold6240 models the Intel platform of Table 2 at its 2.6 GHz base
// frequency (the paper pins the clock there): AVX-512, two FMA units, two
// load ports, 32 KB L1D, 1 MB L2, FP64 peak 83.2 GFLOPS, FP32 peak
// 166.4 GFLOPS.
func XeonGold6240() Profile {
	return Profile{
		Name:       "Intel Xeon Gold 6240",
		FreqGHz:    2.6,
		VectorBits: 512,
		MemPorts:   2,
		FPPorts32:  2,
		FPPorts64:  2,
		GroupWidth: 0,
		IntPorts:   2,
		LatFMA:     4,
		LatMul:     4,
		LatAdd:     4,
		LatDiv32:   11,
		LatDiv64:   14,
		Cache: cache.Config{
			Levels: []cache.LevelConfig{
				{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, HitCycles: 5},
				{Name: "L2", SizeBytes: 1 << 20, LineBytes: 64, Ways: 16, HitCycles: 14},
			},
			MemoryCycles: 150,
			StreamSlots:  24,
		},
	}
}

// Graviton2 models an AWS Graviton2 (Neoverse N1) core — a second real
// ARMv8 target demonstrating the input-aware framework's portability:
// unlike the Kunpeng 920 it has two 128-bit FP pipes for both widths and
// two load/store ports with no mem/FP issue coupling, so FP64 peak is
// 20 GFLOPS @2.5 GHz and the dual-issue asymmetry the paper reports on
// Kunpeng disappears.
func Graviton2() Profile {
	return Profile{
		Name:       "Graviton2 (Neoverse N1)",
		FreqGHz:    2.5,
		VectorBits: 128,
		MemPorts:   2,
		FPPorts32:  2,
		FPPorts64:  2,
		GroupWidth: 0,
		IntPorts:   3,
		LatFMA:     4,
		LatMul:     3,
		LatAdd:     2,
		LatDiv32:   10,
		LatDiv64:   15,
		Cache: cache.Config{
			Levels: []cache.LevelConfig{
				{Name: "L1D", SizeBytes: 64 << 10, LineBytes: 64, Ways: 4, HitCycles: 4},
				{Name: "L2", SizeBytes: 1 << 20, LineBytes: 64, Ways: 8, HitCycles: 11},
			},
			MemoryCycles: 100,
			StreamSlots:  16,
		},
	}
}
