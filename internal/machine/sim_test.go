package machine

import (
	"math"
	"testing"

	"iatf/internal/asm"
	"iatf/internal/vec"
)

func TestProfilePeaks(t *testing.T) {
	kp := Kunpeng920()
	// Table 2: FP64 10.4, FP32 41.6 GFLOPS.
	if g := kp.PeakGFLOPS(vec.D); math.Abs(g-10.4) > 1e-9 {
		t.Errorf("Kunpeng FP64 peak = %v, want 10.4", g)
	}
	if g := kp.PeakGFLOPS(vec.S); math.Abs(g-41.6) > 1e-9 {
		t.Errorf("Kunpeng FP32 peak = %v, want 41.6", g)
	}
	if g := kp.PeakGFLOPS(vec.Z); math.Abs(g-10.4) > 1e-9 {
		t.Errorf("Kunpeng Z peak = %v, want 10.4", g)
	}
	xe := XeonGold6240()
	// Table 2: FP64 83.2, FP32 166.4 GFLOPS.
	if g := xe.PeakGFLOPS(vec.D); math.Abs(g-83.2) > 1e-9 {
		t.Errorf("Xeon FP64 peak = %v, want 83.2", g)
	}
	if g := xe.PeakGFLOPS(vec.S); math.Abs(g-166.4) > 1e-9 {
		t.Errorf("Xeon FP32 peak = %v, want 166.4", g)
	}
	if kp.Lanes(4) != 4 || kp.Lanes(8) != 2 || xe.Lanes(4) != 16 || xe.Lanes(8) != 8 {
		t.Error("lane counts wrong")
	}
}

// A long stream of independent FP64 FMAs must sustain 1 per cycle on the
// Kunpeng model (its FP64 port count), i.e. reach model peak.
func TestSustainedFMAThroughputFP64(t *testing.T) {
	s := NewSim(Kunpeng920(), 8)
	const n = 1000
	for i := 0; i < n; i++ {
		// Round-robin over 8 accumulators so latency is hidden.
		s.Exec(asm.Instr{Op: asm.FMLA, D: uint8(16 + i%8), A: 0, B: 1}, -1)
	}
	if c := s.Cycles(); c > n+10 {
		t.Errorf("cycles = %d for %d independent FMAs, want ≈%d", c, n, n)
	}
}

// FP32 can dual-issue calculation instructions on Kunpeng (paper §6.3).
func TestFP32DualIssue(t *testing.T) {
	s := NewSim(Kunpeng920(), 4)
	const n = 1000
	for i := 0; i < n; i++ {
		s.Exec(asm.Instr{Op: asm.FMLA, D: uint8(8 + i%16), A: 0, B: 1}, -1)
	}
	if c := s.Cycles(); c > n/2+10 {
		t.Errorf("cycles = %d for %d FP32 FMAs, want ≈%d", c, n, n/2)
	}
}

// The Kunpeng coupling constraint: a load and two FP32 ops cannot all
// issue in one cycle, so a 1:2 load:fma mix runs at ≥1.5 instr classes
// ... i.e. 1000 (load+fma+fma) triples need ≥1500 cycles, not 1000.
func TestKunpengMemFPCoupling(t *testing.T) {
	s := NewSim(Kunpeng920(), 4)
	// Warm one line so loads are uniform L1 hits.
	s.Exec(asm.Instr{Op: asm.LDR, D: 0, P: asm.PA}, 0)
	s.Reset()
	const n = 500
	for i := 0; i < n; i++ {
		s.Exec(asm.Instr{Op: asm.LDR, D: uint8(i % 4), P: asm.PA}, 0)
		s.Exec(asm.Instr{Op: asm.FMLA, D: uint8(8 + (2*i)%16), A: 4, B: 5}, -1)
		s.Exec(asm.Instr{Op: asm.FMLA, D: uint8(8 + (2*i+1)%16), A: 4, B: 5}, -1)
	}
	c := s.Cycles()
	if c < 3*n/2 {
		t.Errorf("cycles = %d, want ≥ %d (mem+2FP cannot co-issue)", c, 3*n/2)
	}
	// On the Xeon model the same mix issues in ~n cycles (2 FP + 2 mem ports).
	x := NewSim(XeonGold6240(), 4)
	x.Exec(asm.Instr{Op: asm.LDR, D: 0, P: asm.PA}, 0)
	x.Reset()
	for i := 0; i < n; i++ {
		x.Exec(asm.Instr{Op: asm.LDR, D: uint8(i % 4), P: asm.PA}, 0)
		x.Exec(asm.Instr{Op: asm.FMLA, D: uint8(8 + (2*i)%16), A: 4, B: 5}, -1)
		x.Exec(asm.Instr{Op: asm.FMLA, D: uint8(8 + (2*i+1)%16), A: 4, B: 5}, -1)
	}
	if xc := x.Cycles(); xc > n+20 {
		t.Errorf("Xeon cycles = %d, want ≈%d", xc, n)
	}
}

// A dependent FMA chain pays the FMA latency per link.
func TestDependencyChainLatency(t *testing.T) {
	s := NewSim(Kunpeng920(), 8)
	const n = 100
	for i := 0; i < n; i++ {
		s.Exec(asm.Instr{Op: asm.FMLA, D: 16, A: 0, B: 1}, -1) // same accumulator
	}
	c := s.Cycles()
	want := int64(n * Kunpeng920().LatFMA)
	if c < want {
		t.Errorf("chain cycles = %d, want ≥ %d", c, want)
	}
	if s.StallCycles == 0 {
		t.Error("dependent chain must record stalls")
	}
}

// A dependent consumer of a load stalls for the L1 latency; an independent
// one does not.
func TestLoadUseStall(t *testing.T) {
	prof := Kunpeng920()
	s := NewSim(prof, 8)
	s.Exec(asm.Instr{Op: asm.LDR, D: 0, P: asm.PA}, 0) // cold: memory latency
	s.Exec(asm.Instr{Op: asm.LDR, D: 1, P: asm.PA}, 0) // warm: L1
	s.Reset()
	s.Exec(asm.Instr{Op: asm.LDR, D: 0, P: asm.PA}, 0)
	s.Exec(asm.Instr{Op: asm.FMUL, D: 16, A: 0, B: 0}, -1) // dependent
	c := s.Cycles()
	if c < int64(prof.Cache.Levels[0].HitCycles) {
		t.Errorf("dependent fmul did not wait for load: %d cycles", c)
	}
}

// Pointer arithmetic (ADDI) must not consume mem/FP slots.
func TestIntOpsDoNotStealPorts(t *testing.T) {
	s := NewSim(Kunpeng920(), 8)
	s.Exec(asm.Instr{Op: asm.LDR, D: 0, P: asm.PA}, 0)
	s.Reset()
	const n = 300
	for i := 0; i < n; i++ {
		s.Exec(asm.Instr{Op: asm.LDR, D: uint8(i % 4), P: asm.PA}, 0)
		s.Exec(asm.Instr{Op: asm.FMLA, D: uint8(8 + i%8), A: 4, B: 5}, -1)
		s.Exec(asm.Instr{Op: asm.ADDI, P: asm.PA, Off: 0}, -1)
	}
	if c := s.Cycles(); c > n+20 {
		t.Errorf("cycles = %d, want ≈%d (ldr+fmla+add per cycle)", c, n)
	}
}

func TestPrefetchWarmsCacheInSim(t *testing.T) {
	s := NewSim(Kunpeng920(), 8)
	s.Exec(asm.Instr{Op: asm.PRFM, P: asm.PC}, 100)
	s.Exec(asm.Instr{Op: asm.LDR, D: 0, P: asm.PC}, 100)
	s.Exec(asm.Instr{Op: asm.FMUL, D: 16, A: 0, B: 0}, -1)
	c := s.Cycles()
	if c > 12 {
		t.Errorf("prefetched load chain took %d cycles", c)
	}
}

func TestAddCyclesAndSeconds(t *testing.T) {
	s := NewSim(Kunpeng920(), 8)
	s.AddCycles(259)
	if c := s.Cycles(); c != 260 {
		t.Errorf("Cycles = %d, want 260", c)
	}
	wantSec := 260.0 / 2.6e9
	if sec := s.Seconds(); math.Abs(sec-wantSec) > 1e-15 {
		t.Errorf("Seconds = %v, want %v", sec, wantSec)
	}
}

func TestStatsCounting(t *testing.T) {
	s := NewSim(Kunpeng920(), 8)
	s.Exec(asm.Instr{Op: asm.LDR, D: 0, P: asm.PA}, 0)
	s.Exec(asm.Instr{Op: asm.FMLA, D: 16, A: 0, B: 1}, -1)
	s.Exec(asm.Instr{Op: asm.ADDI, P: asm.PA, Off: 1}, -1)
	if s.Instrs != 3 || s.MemInstrs != 1 || s.FPInstrs != 1 {
		t.Errorf("stats = %d/%d/%d", s.Instrs, s.MemInstrs, s.FPInstrs)
	}
}

func TestLatencyClasses(t *testing.T) {
	prof := Kunpeng920()
	// FDIV latency differs by element width.
	s64 := NewSim(prof, 8)
	s64.Exec(asm.Instr{Op: asm.FDIV, D: 1, A: 0, B: 0}, -1)
	s64.Exec(asm.Instr{Op: asm.FMUL, D: 2, A: 1, B: 1}, -1) // dependent
	if c := s64.Cycles(); c < int64(prof.LatDiv64) {
		t.Errorf("FP64 div chain = %d cycles, want ≥ %d", c, prof.LatDiv64)
	}
	s32 := NewSim(prof, 4)
	s32.Exec(asm.Instr{Op: asm.FDIV, D: 1, A: 0, B: 0}, -1)
	s32.Exec(asm.Instr{Op: asm.FMUL, D: 2, A: 1, B: 1}, -1)
	if c := s32.Cycles(); c >= s64.Cycles() {
		t.Errorf("FP32 div chain (%d) should be shorter than FP64 (%d)", c, s64.Cycles())
	}
	// FADD/FSUB use the add latency.
	sa := NewSim(prof, 8)
	sa.Exec(asm.Instr{Op: asm.FADD, D: 1, A: 0, B: 0}, -1)
	sa.Exec(asm.Instr{Op: asm.FSUB, D: 2, A: 1, B: 1}, -1)
	if c := sa.Cycles(); c < int64(2*prof.LatAdd) {
		t.Errorf("add chain = %d cycles, want ≥ %d", c, 2*prof.LatAdd)
	}
}

func TestLD1RAndStoreClasses(t *testing.T) {
	s := NewSim(Kunpeng920(), 8)
	s.Exec(asm.Instr{Op: asm.LD1R, D: 0, P: asm.PAlpha}, 5)
	s.Exec(asm.Instr{Op: asm.STP, D: 0, D2: 1, P: asm.PC}, 64)
	s.Exec(asm.Instr{Op: asm.STR, D: 0, P: asm.PC}, 128)
	if s.MemInstrs != 3 {
		t.Errorf("mem instrs = %d, want 3", s.MemInstrs)
	}
	// Stores retire through the write buffer: an independent FP op after
	// a store must not stall.
	s2 := NewSim(Kunpeng920(), 8)
	s2.Exec(asm.Instr{Op: asm.STR, D: 0, P: asm.PC}, 0) // cold line
	s2.Exec(asm.Instr{Op: asm.FMUL, D: 1, A: 2, B: 3}, -1)
	// Both issue in cycle 0 (mem + FP dual issue); total time is just the
	// FMUL's own latency, not the store's cold-miss latency.
	if c := s2.Cycles(); c > int64(Kunpeng920().LatMul)+1 {
		t.Errorf("store+independent fmul = %d cycles, want ≤ %d", c, Kunpeng920().LatMul+1)
	}
}

func TestXeonDualLoadPorts(t *testing.T) {
	x := NewSim(XeonGold6240(), 8)
	x.Exec(asm.Instr{Op: asm.LDR, D: 0, P: asm.PA}, 0)
	x.Reset()
	const n = 400
	for i := 0; i < n; i++ {
		x.Exec(asm.Instr{Op: asm.LDR, D: uint8(i % 8), P: asm.PA}, 0)
	}
	if c := x.Cycles(); c > n/2+20 {
		t.Errorf("Xeon streamed %d loads in %d cycles, want ≈%d (2 ports)", n, c, n/2)
	}
	k := NewSim(Kunpeng920(), 8)
	k.Exec(asm.Instr{Op: asm.LDR, D: 0, P: asm.PA}, 0)
	k.Reset()
	for i := 0; i < n; i++ {
		k.Exec(asm.Instr{Op: asm.LDR, D: uint8(i % 8), P: asm.PA}, 0)
	}
	if c := k.Cycles(); c < n {
		t.Errorf("Kunpeng streamed %d loads in %d cycles, want ≥ %d (1 port)", n, c, n)
	}
}

func TestMOVIAndMOVVIssueOnFPPipe(t *testing.T) {
	s := NewSim(Kunpeng920(), 8)
	s.Exec(asm.Instr{Op: asm.MOVI, D: 0}, -1)
	s.Exec(asm.Instr{Op: asm.MOVV, D: 1, A: 0}, -1)
	if s.FPInstrs != 2 {
		t.Errorf("FP instrs = %d, want 2", s.FPInstrs)
	}
}

func TestOnIssueHook(t *testing.T) {
	s := NewSim(Kunpeng920(), 8)
	var cycles []int64
	var lats []int
	s.OnIssue = func(c int64, in asm.Instr, lat int) {
		cycles = append(cycles, c)
		lats = append(lats, lat)
	}
	s.Exec(asm.Instr{Op: asm.LDR, D: 0, P: asm.PA}, 0) // cold miss
	s.Exec(asm.Instr{Op: asm.FMLA, D: 16, A: 0, B: 1}, -1)
	if len(cycles) != 2 {
		t.Fatalf("observed %d issues", len(cycles))
	}
	if lats[0] != Kunpeng920().Cache.MemoryCycles {
		t.Errorf("cold load latency = %d", lats[0])
	}
	if lats[1] != Kunpeng920().LatFMA {
		t.Errorf("FMA latency = %d", lats[1])
	}
	if cycles[1] <= cycles[0] {
		t.Errorf("dependent FMA issued at %d, load at %d", cycles[1], cycles[0])
	}
}

// Graviton2: FP64 peak 20 GFLOPS, no mem/FP coupling — the same load+2FMA
// mix that throttles the Kunpeng model runs at full rate.
func TestGraviton2Profile(t *testing.T) {
	g := Graviton2()
	if p := g.PeakGFLOPS(vec.D); math.Abs(p-20) > 1e-9 {
		t.Errorf("Graviton2 FP64 peak = %v, want 20", p)
	}
	if p := g.PeakGFLOPS(vec.S); math.Abs(p-40) > 1e-9 {
		t.Errorf("Graviton2 FP32 peak = %v, want 40", p)
	}
	s := NewSim(g, 8)
	s.Exec(asm.Instr{Op: asm.LDR, D: 0, P: asm.PA}, 0)
	s.Reset()
	const n = 400
	for i := 0; i < n; i++ {
		s.Exec(asm.Instr{Op: asm.LDR, D: uint8(i % 4), P: asm.PA}, 0)
		s.Exec(asm.Instr{Op: asm.FMLA, D: uint8(8 + (2*i)%16), A: 4, B: 5}, -1)
		s.Exec(asm.Instr{Op: asm.FMLA, D: uint8(8 + (2*i+1)%16), A: 4, B: 5}, -1)
	}
	if c := s.Cycles(); c > n+20 {
		t.Errorf("Graviton2 mixed stream = %d cycles, want ≈%d (uncoupled issue)", c, n)
	}
}
