// Profile fingerprinting for the persistent autotune store: a stable,
// human-prefixed hash of every field that influences install-time kernel
// selection and instruction scheduling. Two processes agree on a
// fingerprint if and only if they model the same machine, so on-disk
// kernel schedules and plan sets keyed by it are safe to reuse across
// processes (and meaningless to any other machine model, which simply
// ignores them).
package machine

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// fingerprintVersion is folded into every fingerprint so a change to the
// hashed field set invalidates all previously written stores instead of
// silently colliding with them.
const fingerprintVersion = 1

// Fingerprint returns a stable identifier of the profile: a slug of the
// profile name followed by a 64-bit FNV-1a hash over every modeled
// field — issue ports, latencies, vector width, frequency and the full
// cache configuration. The text form is filesystem-safe.
func Fingerprint(p Profile) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "fpv%d|%s|%g|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d",
		fingerprintVersion, p.Name, p.FreqGHz, p.VectorBits,
		p.MemPorts, p.FPPorts32, p.FPPorts64, p.GroupWidth, p.IntPorts,
		p.LatFMA, p.LatMul, p.LatAdd, p.LatDiv32, p.LatDiv64)
	for _, lv := range p.Cache.Levels {
		fmt.Fprintf(h, "|%s:%d:%d:%d:%d", lv.Name, lv.SizeBytes, lv.LineBytes, lv.Ways, lv.HitCycles)
	}
	fmt.Fprintf(h, "|mem%d|ss%d", p.Cache.MemoryCycles, p.Cache.StreamSlots)
	return fmt.Sprintf("%s-%016x", slug(p.Name), h.Sum64())
}

// slug lowercases the profile name and maps every non-alphanumeric run
// to one dash, producing a stable filesystem- and label-safe prefix.
func slug(name string) string {
	var b strings.Builder
	dash := false
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			if dash && b.Len() > 0 {
				b.WriteByte('-')
			}
			dash = false
			b.WriteRune(r)
		default:
			dash = true
		}
	}
	if b.Len() == 0 {
		return "profile"
	}
	return b.String()
}
