package pack

import (
	"math"
	"math/rand"
	"testing"

	"iatf/internal/vec"
)

// mkGroup builds an arena holding one compact group of a rows×cols matrix
// batch whose block (i,j), lane l has value base + 100·i + 10·j + l.
func mkGroup(rows, cols, vl int, base float64) ([]float64, Geom) {
	bl := vl
	mem := make([]float64, rows*cols*bl)
	g := Geom{Off: 0, Rows: rows, Cols: cols, BlockLen: bl}
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			for l := 0; l < vl; l++ {
				mem[g.Block(i, j)+l] = base + 100*float64(i) + 10*float64(j) + float64(l)
			}
		}
	}
	return mem, g
}

func ctx64(mem []float64, rec *Recorder) *Ctx[float64] {
	return &Ctx[float64]{Mem: mem, DT: vec.D, VL: 2, Rec: rec}
}

func TestGeomBlockAndBounds(t *testing.T) {
	g := Geom{Off: 10, Rows: 3, Cols: 2, BlockLen: 4}
	if g.Block(1, 1) != 10+(1*3+1)*4 {
		t.Errorf("Block(1,1) = %d", g.Block(1, 1))
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range block did not panic")
		}
	}()
	g.Block(3, 0)
}

// N-shape: packed A panel must be, per reduction step, the panel's blocks
// top to bottom.
func TestGEMMAPanelOrder(t *testing.T) {
	mem, g := mkGroup(5, 3, 2, 0) // M=5, K=3
	dst := len(mem)
	mem = append(mem, make([]float64, 2*3*2)...) // panel mc=2, K=3
	c := ctx64(mem, nil)
	n := GEMMA(c, g, false, 2, 2, dst) // rows 2..3
	if n != 12 {
		t.Fatalf("wrote %d elements, want 12", n)
	}
	// Expected order: (2,0),(3,0),(2,1),(3,1),(2,2),(3,2); lane 0 values.
	want := []float64{200, 300, 210, 310, 220, 320}
	for i, w := range want {
		if got := c.Mem[dst+2*i]; got != w {
			t.Errorf("packed block %d lane0 = %v, want %v", i, got, w)
		}
	}
}

// Transposed A: source stored K×M; packing must produce the same panel as
// packing the materialized transpose.
func TestGEMMATransposed(t *testing.T) {
	mem, g := mkGroup(3, 5, 2, 0) // stored K=3 rows, M=5 cols
	dst := len(mem)
	mem = append(mem, make([]float64, 2*3*2)...)
	c := ctx64(mem, nil)
	GEMMA(c, g, true, 2, 2, dst)
	// Logical A(r,l) = stored(l, r+2): A(2,0)=stored(0,4)? no: rows i0=2 →
	// logical rows 2,3 = stored columns 2,3. Order: l=0: stored(0,2),(0,3); ...
	want := []float64{20, 30, 120, 130, 220, 230}
	for i, w := range want {
		if got := c.Mem[dst+2*i]; got != w {
			t.Errorf("packed block %d lane0 = %v, want %v", i, got, w)
		}
	}
}

// Z-shape: packed B panel must be, per reduction step, the row's blocks
// left to right.
func TestGEMMBPanelOrder(t *testing.T) {
	mem, g := mkGroup(3, 5, 2, 0) // K=3, N=5
	dst := len(mem)
	mem = append(mem, make([]float64, 3*2*2)...)
	c := ctx64(mem, nil)
	n := GEMMB(c, g, false, 1, 2, dst) // cols 1..2
	if n != 12 {
		t.Fatalf("wrote %d, want 12", n)
	}
	// Order: (0,1),(0,2),(1,1),(1,2),(2,1),(2,2).
	want := []float64{10, 20, 110, 120, 210, 220}
	for i, w := range want {
		if got := c.Mem[dst+2*i]; got != w {
			t.Errorf("packed block %d lane0 = %v, want %v", i, got, w)
		}
	}
}

func TestGEMMBTransposed(t *testing.T) {
	mem, g := mkGroup(5, 3, 2, 0) // stored N=5 rows, K=3 cols
	dst := len(mem)
	mem = append(mem, make([]float64, 3*2*2)...)
	c := ctx64(mem, nil)
	GEMMB(c, g, true, 1, 2, dst)
	// Logical B(l,c) = stored(c+1, l): l=0: stored(1,0),(2,0); l=1: ...
	want := []float64{100, 200, 110, 210, 120, 220}
	for i, w := range want {
		if got := c.Mem[dst+2*i]; got != w {
			t.Errorf("packed block %d lane0 = %v, want %v", i, got, w)
		}
	}
}

// The no-pack fast path: for NN with one row panel the native layout must
// equal the packed panel byte-for-byte.
func TestANoPackEquivalence(t *testing.T) {
	if !ANoPackOK(false, 3, 4) || ANoPackOK(true, 3, 4) || ANoPackOK(false, 5, 4) {
		t.Fatal("ANoPackOK conditions wrong")
	}
	mem, g := mkGroup(3, 6, 2, 0) // M=3 ≤ mc=4, K=6
	dst := len(mem)
	mem = append(mem, make([]float64, 3*6*2)...)
	c := ctx64(mem, nil)
	n := GEMMA(c, g, false, 0, 3, dst)
	for i := 0; i < n; i++ {
		if c.Mem[dst+i] != c.Mem[g.Off+i] {
			t.Fatalf("native layout diverges from packed panel at %d", i)
		}
	}
}

func TestRecorderCountsTraffic(t *testing.T) {
	mem, g := mkGroup(4, 4, 2, 0)
	dst := len(mem)
	mem = append(mem, make([]float64, 4*4*2)...)
	rec := &Recorder{}
	c := ctx64(mem, rec)
	GEMMA(c, g, false, 0, 4, dst)
	total := 0
	for _, op := range rec.Ops {
		total += op.Len
	}
	// 4×4 blocks of 2 elements = 32 elements of traffic, however chunked.
	if total != 32 {
		t.Errorf("recorded %d elements of traffic, want 32", total)
	}
}

func TestTriMapCanonicalization(t *testing.T) {
	// Lower NoTrans: identity.
	tm := NewTriMap(4, false, false, false)
	if si, sj := tm.Src(2, 1); si != 2 || sj != 1 {
		t.Errorf("LN Src = (%d,%d)", si, sj)
	}
	// Upper NoTrans: reversal.
	tm = NewTriMap(4, true, false, false)
	if si, sj := tm.Src(2, 1); si != 1 || sj != 2 {
		t.Errorf("UN Src = (%d,%d), want (1,2)", si, sj)
	}
	// Lower Trans: effective upper → reverse + swap.
	tm = NewTriMap(4, false, true, false)
	if si, sj := tm.Src(2, 1); si != 2 || sj != 1 {
		t.Errorf("LT Src = (%d,%d), want (2,1)", si, sj)
	}
	// Upper Trans: effective lower → swap only.
	tm = NewTriMap(4, true, true, false)
	if si, sj := tm.Src(2, 1); si != 1 || sj != 2 {
		t.Errorf("UT Src = (%d,%d), want (1,2)", si, sj)
	}
	// Canonical source must always hit the stored triangle: upper flags
	// read col ≥ row, lower flags read col ≤ row.
	for _, upper := range []bool{false, true} {
		for _, trans := range []bool{false, true} {
			tm := NewTriMap(5, upper, trans, false)
			for i := 0; i < 5; i++ {
				for j := 0; j <= i; j++ {
					si, sj := tm.Src(i, j)
					if upper && si > sj {
						t.Fatalf("upper=%v trans=%v reads (%d,%d) below diagonal", upper, trans, si, sj)
					}
					if !upper && si < sj {
						t.Fatalf("upper=%v trans=%v reads (%d,%d) above diagonal", upper, trans, si, sj)
					}
				}
			}
		}
	}
}

func TestTriPackingLowerPanels(t *testing.T) {
	mem, g := mkGroup(5, 5, 2, 1000)
	dst := len(mem)
	panels := []int{3, 2}
	mem = append(mem, make([]float64, TriLen(2, panels))...)
	c := ctx64(mem, nil)
	tm := NewTriMap(5, false, false, false)
	n := Tri(c, g, tm, panels, dst)
	if n != TriLen(2, panels) {
		t.Fatalf("Tri wrote %d, want %d", n, TriLen(2, panels))
	}
	// Panel 0 (rows 0-2): triangle rows: (0,0)ʳ, (1,0), (1,1)ʳ, (2,0), (2,1), (2,2)ʳ.
	at := func(i int) float64 { return c.Mem[dst+2*i] }
	val := func(i, j int) float64 { return 1000 + 100*float64(i) + 10*float64(j) }
	recip := func(i int) float64 { return 1 / val(i, i) }
	want := []float64{recip(0), val(1, 0), recip(1), val(2, 0), val(2, 1), recip(2)}
	// Panel 1 (rows 3-4): rect part K=3 col-major: (3,0),(4,0),(3,1),(4,1),(3,2),(4,2)
	want = append(want, val(3, 0), val(4, 0), val(3, 1), val(4, 1), val(3, 2), val(4, 2))
	// then triangle: (3,3)ʳ, (4,3), (4,4)ʳ.
	want = append(want, recip(3), val(4, 3), recip(4))
	for i, w := range want {
		if math.Abs(at(i)-w) > 1e-12 {
			t.Errorf("packed block %d lane0 = %v, want %v", i, at(i), w)
		}
	}
}

func TestTriPackingUnitDiag(t *testing.T) {
	mem, g := mkGroup(3, 3, 2, 5)
	dst := len(mem)
	mem = append(mem, make([]float64, TriLen(2, []int{3}))...)
	c := ctx64(mem, nil)
	Tri(c, g, NewTriMap(3, false, false, true), []int{3}, dst)
	// Diagonal blocks (indices 0, 2, 5 in row-wise triangle) must be 1.
	for _, idx := range []int{0, 2, 5} {
		for l := 0; l < 2; l++ {
			if c.Mem[dst+2*idx+l] != 1 {
				t.Errorf("unit diag block %d lane %d = %v", idx, l, c.Mem[dst+2*idx+l])
			}
		}
	}
}

func TestComplexReciprocal(t *testing.T) {
	// One 1×1 complex group: block = [re×4 | im×4].
	mem := make([]float64, 0)
	_ = mem
	vl := 2
	arena := make([]float64, 4*vl)
	// a = 3+4i on lane 0, 1+0i on lane 1.
	arena[0], arena[vl] = 3, 4
	arena[1], arena[vl+1] = 1, 0
	c := &Ctx[float64]{Mem: arena, DT: vec.Z, VL: vl, Rec: &Recorder{}}
	g := Geom{Off: 0, Rows: 1, Cols: 1, BlockLen: 2 * vl}
	Tri(c, g, NewTriMap(1, false, false, false), []int{1}, 2*vl)
	// 1/(3+4i) = (3-4i)/25.
	if math.Abs(arena[2*vl]-0.12) > 1e-12 || math.Abs(arena[3*vl]+0.16) > 1e-12 {
		t.Errorf("recip lane0 = (%v,%v), want (0.12,-0.16)", arena[2*vl], arena[3*vl])
	}
	if arena[2*vl+1] != 1 || arena[3*vl+1] != 0 {
		t.Errorf("recip lane1 = (%v,%v), want (1,0)", arena[2*vl+1], arena[3*vl+1])
	}
	if c.Rec.Divs != vl {
		t.Errorf("recorded %d divs, want %d", c.Rec.Divs, vl)
	}
}

func TestZeroDiagonalPadding(t *testing.T) {
	arena := make([]float64, 2*2)
	arena[0] = 2 // lane 1 is zero padding
	c := ctx64(arena, nil)
	g := Geom{Off: 0, Rows: 1, Cols: 1, BlockLen: 2}
	Tri(c, g, NewTriMap(1, false, false, false), []int{1}, 2)
	if arena[2] != 0.5 || arena[3] != 0 {
		t.Errorf("recip = %v, want [0.5 0]", arena[2:4])
	}
}

func TestBCopyRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, reverse := range []bool{false, true} {
		for _, transpose := range []bool{false, true} {
			mem, g := mkGroup(4, 3, 2, 0)
			for i := range mem {
				mem[i] = rng.Float64()
			}
			orig := append([]float64(nil), mem...)
			buf := len(mem)
			mem = append(mem, make([]float64, len(mem))...)
			c := ctx64(mem, nil)
			n := BCopy(c, g, reverse, transpose, buf)
			if n != 4*3*2 {
				t.Fatalf("BCopy wrote %d", n)
			}
			BUncopy(c, g, reverse, transpose, buf)
			for i := range orig {
				if c.Mem[i] != orig[i] {
					t.Fatalf("reverse=%v transpose=%v: round trip diverges at %d", reverse, transpose, i)
				}
			}
		}
	}
}

func TestBCopyTransposePlacement(t *testing.T) {
	mem, g := mkGroup(2, 3, 2, 0) // 2×3
	buf := len(mem)
	mem = append(mem, make([]float64, len(mem))...)
	c := ctx64(mem, nil)
	BCopy(c, g, false, true, buf)
	// Transposed buffer is 3×2: block (i,j) = source (j,i).
	bt := Geom{Off: buf, Rows: 3, Cols: 2, BlockLen: 2}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if c.Mem[bt.Block(i, j)] != c.Mem[g.Block(j, i)] {
				t.Errorf("transposed block (%d,%d) wrong", i, j)
			}
		}
	}
}

func TestScaleRealAndComplex(t *testing.T) {
	// Real scale by 3.
	mem, g := mkGroup(2, 2, 2, 1)
	c := ctx64(mem, nil)
	orig := append([]float64(nil), mem...)
	Scale(c, g, 3, 0)
	for i := range mem {
		if mem[i] != 3*orig[i] {
			t.Fatalf("real scale wrong at %d", i)
		}
	}
	// Complex scale by i: (re,im) → (-im, re).
	arena := make([]float64, 4)
	arena[0], arena[2] = 2, 5 // 2+5i on lane 0
	cz := &Ctx[float64]{Mem: arena, DT: vec.Z, VL: 2}
	gz := Geom{Off: 0, Rows: 1, Cols: 1, BlockLen: 4}
	Scale(cz, gz, 0, 1)
	if arena[0] != -5 || arena[2] != 2 {
		t.Errorf("complex scale = (%v,%v), want (-5,2)", arena[0], arena[2])
	}
}

func TestTriLen(t *testing.T) {
	// panels [3,2] on M=5: 6 + (6+3) = 15 blocks = full triangle 5·6/2.
	if TriLen(2, []int{3, 2}) != 15*2 {
		t.Errorf("TriLen = %d, want 30", TriLen(2, []int{3, 2}))
	}
	if TriLen(4, []int{5}) != 15*4 {
		t.Errorf("single panel TriLen = %d", TriLen(4, []int{5}))
	}
}

func TestTriPackingTrueDiagonal(t *testing.T) {
	mem, g := mkGroup(3, 3, 2, 100)
	dst := len(mem)
	mem = append(mem, make([]float64, TriLen(2, []int{3}))...)
	c := ctx64(mem, nil)
	tm := NewTriMap(3, false, false, false)
	tm.Recip = false // TRMM packing keeps true values
	Tri(c, g, tm, []int{3}, dst)
	// Diagonal blocks at triangle indices 0, 2, 5 must hold the source
	// values, not reciprocals.
	for _, d := range []struct{ idx, row int }{{0, 0}, {2, 1}, {5, 2}} {
		want := 100 + 110*float64(d.row)
		if got := c.Mem[dst+2*d.idx]; got != want {
			t.Errorf("diag block %d lane0 = %v, want %v", d.idx, got, want)
		}
	}
}
