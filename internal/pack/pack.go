// Package pack implements the IATF data-packing kernels (paper §4.4).
// Under the SIMD-friendly layout a packing kernel rearranges whole element
// blocks (one vector register's worth at a time, "memcpy"-style) so the
// computing kernel's memory walk is purely sequential:
//
//   - GEMM packs A panels N-shaped (down each column of the panel) and B
//     panels Z-shaped (across each row of the panel);
//   - TRSM packs only the triangle of A, row-panel-wise, storing diagonal
//     blocks as reciprocals so the computing kernel multiplies instead of
//     dividing (ARM division latency, §4.4);
//   - upper/transposed/right-side TRSM modes are canonicalized to the
//     single lower-non-transposed kernel form by index-reversed and
//     transposed packing, which is how one computing kernel serves every
//     mode (§5.2).
//
// Every function operates on a flat arena of real components (the same
// memory the asm VM executes kernels against) and optionally records its
// block copies so the cycle model can charge packing its true cost.
package pack

import (
	"fmt"

	"iatf/internal/vec"
)

// CopyOp is one recorded block copy (element offsets into the arena).
type CopyOp struct {
	Src, Dst, Len int
}

// Recorder accumulates the memory traffic of packing for the cycle model.
type Recorder struct {
	Ops  []CopyOp
	Divs int // scalar reciprocal computations (diagonal packing)
}

func (r *Recorder) record(src, dst, n int) {
	if r != nil {
		r.Ops = append(r.Ops, CopyOp{Src: src, Dst: dst, Len: n})
	}
}

// Ctx carries the arena and element geometry shared by the packing
// kernels. E is the real component type; complex data occupies 2·VL
// elements per block ([re lanes | im lanes]).
type Ctx[E vec.Float] struct {
	Mem []E
	DT  vec.DType
	VL  int // lanes of the real component type
	Rec *Recorder
}

// BlockLen returns the element footprint of one block.
func (c *Ctx[E]) BlockLen() int {
	if c.DT.IsComplex() {
		return 2 * c.VL
	}
	return c.VL
}

func (c *Ctx[E]) copyBlock(src, dst int) {
	n := c.BlockLen()
	copy(c.Mem[dst:dst+n], c.Mem[src:src+n])
	c.Rec.record(src, dst, n)
}

// Geom describes compact-layout storage of one matrix group: block (i, j)
// lives at Off + (j·Rows + i)·BlockLen.
type Geom struct {
	Off        int // element offset of the group base in the arena
	Rows, Cols int
	BlockLen   int
}

// Block returns the element offset of block (i, j).
func (g Geom) Block(i, j int) int {
	if i < 0 || i >= g.Rows || j < 0 || j >= g.Cols {
		panic(fmt.Sprintf("pack: block (%d,%d) outside %dx%d", i, j, g.Rows, g.Cols))
	}
	return g.Off + (j*g.Rows+i)*g.BlockLen
}

// GEMMA packs one row panel of A (rows i0..i0+mc-1, all K columns)
// N-shaped: for each reduction step l, the mc blocks of column l are
// contiguous — exactly the computing kernel's A walk. trans reads the
// transposed source (TN/TT modes), which is how every mode funnels into
// one kernel. Returns the element length written.
func GEMMA[E vec.Float](c *Ctx[E], src Geom, trans bool, i0, mc, dst int) int {
	bl := c.BlockLen()
	cur := dst
	if !trans {
		// Blocks (i0..i0+mc-1, l) are contiguous in the source column:
		// one run copy per reduction step.
		k := src.Cols
		run := mc * bl
		s := src.Block(i0, 0)
		for l := 0; l < k; l++ {
			copy(c.Mem[cur:cur+run], c.Mem[s:s+run])
			c.Rec.record(s, cur, run)
			s += src.Rows * bl
			cur += run
		}
		return cur - dst
	}
	// Transposed source: block (l, i0+r) walks down column i0+r.
	k := src.Rows
	colStride := src.Rows * bl
	base := src.Block(0, i0)
	for l := 0; l < k; l++ {
		s := base + l*bl
		for r := 0; r < mc; r++ {
			copy(c.Mem[cur:cur+bl], c.Mem[s:s+bl])
			c.Rec.record(s, cur, bl)
			s += colStride
			cur += bl
		}
	}
	return cur - dst
}

// GEMMB packs one column panel of B (columns j0..j0+nc-1, all K rows)
// Z-shaped: for each reduction step l, the nc blocks of row l are
// contiguous. trans reads the transposed source (NT/TT modes).
func GEMMB[E vec.Float](c *Ctx[E], src Geom, trans bool, j0, nc, dst int) int {
	bl := c.BlockLen()
	cur := dst
	if !trans {
		// Block (l, j0+cc) strides one source column per cc.
		k := src.Rows
		colStride := src.Rows * bl
		base := src.Block(0, j0)
		for l := 0; l < k; l++ {
			s := base + l*bl
			for cc := 0; cc < nc; cc++ {
				copy(c.Mem[cur:cur+bl], c.Mem[s:s+bl])
				c.Rec.record(s, cur, bl)
				s += colStride
				cur += bl
			}
		}
		return cur - dst
	}
	// Transposed source: blocks (j0..j0+nc-1, l) are contiguous in the
	// source column: one run copy per reduction step.
	k := src.Cols
	run := nc * bl
	s := src.Block(j0, 0)
	for l := 0; l < k; l++ {
		copy(c.Mem[cur:cur+run], c.Mem[s:s+run])
		c.Rec.record(s, cur, run)
		s += src.Rows * bl
		cur += run
	}
	return cur - dst
}

// ANoPackOK reports whether the A operand can skip packing: in
// non-transposed mode with a single row panel (M ≤ mc) the native compact
// order — column-major blocks — is already the N-shaped panel order
// (§4.4's no-packing strategy for GEMM NN).
func ANoPackOK(trans bool, m, mc int) bool {
	return !trans && m <= mc
}

// recipBlock writes the element-wise reciprocal of the src block to dst
// (complex reciprocal for complex types). Used for TRSM diagonals.
func recipBlock[E vec.Float](c *Ctx[E], src, dst int) {
	vl := c.VL
	if !c.DT.IsComplex() {
		for lane := 0; lane < vl; lane++ {
			v := c.Mem[src+lane]
			if v != 0 {
				c.Mem[dst+lane] = 1 / v
			} else {
				c.Mem[dst+lane] = 0 // padding lane
			}
		}
	} else {
		for lane := 0; lane < vl; lane++ {
			re := float64(c.Mem[src+lane])
			im := float64(c.Mem[src+vl+lane])
			den := re*re + im*im
			if den != 0 {
				c.Mem[dst+lane] = E(re / den)
				c.Mem[dst+vl+lane] = E(-im / den)
			} else {
				c.Mem[dst+lane] = 0
				c.Mem[dst+vl+lane] = 0
			}
		}
	}
	c.Rec.record(src, dst, c.BlockLen())
	if c.Rec != nil {
		c.Rec.Divs += vl
	}
}

// onesBlock writes a unit block (1 + 0i on every lane) for Unit-diagonal
// packing.
func onesBlock[E vec.Float](c *Ctx[E], dst int) {
	vl := c.VL
	for lane := 0; lane < vl; lane++ {
		c.Mem[dst+lane] = 1
		if c.DT.IsComplex() {
			c.Mem[dst+vl+lane] = 0
		}
	}
	c.Rec.record(dst, dst, c.BlockLen())
}

// TriMap canonicalizes a Left-side triangular read: the solver always runs
// the lower-non-transposed forward substitution, so upper triangles are
// index-reversed and transposed reads swap indices. Lower+Trans is an
// upper system, hence also reversed.
type TriMap struct {
	M       int
	Reverse bool // upper-effective triangle: ρ(i) = M-1-i
	Swap    bool // transposed source: read (j, i)
	Unit    bool
	// Recip stores diagonal blocks as reciprocals (the TRSM packing);
	// clear it for multiplying routines (TRMM) that need true values.
	Recip bool
}

// NewTriMap builds the canonical mapping for a mode. upper/trans are the
// BLAS flags of the stored matrix A.
func NewTriMap(m int, upper, trans, unit bool) TriMap {
	effUpper := upper != trans // transposing flips the triangle
	return TriMap{M: m, Reverse: effUpper, Swap: trans, Unit: unit, Recip: true}
}

// Src returns the source block coordinates of canonical lower element
// (i, j), j ≤ i.
func (t TriMap) Src(i, j int) (si, sj int) {
	if t.Reverse {
		i, j = t.M-1-i, t.M-1-j
	}
	if t.Swap {
		i, j = j, i
	}
	return i, j
}

// Tri packs the triangle of A for the blocked solver: for each row panel
// (heights from panels, summing to M) it emits the rectangular part — the
// panel's rows against all previously solved rows, column-major by blocks,
// K = r0 — followed by the panel's own triangle row-wise with reciprocal
// diagonal blocks. This is the N-shaped order of §4.4: when panel p is
// consumed, everything it references has already been packed (and solved).
// Returns the element length written.
func Tri[E vec.Float](c *Ctx[E], src Geom, tm TriMap, panels []int, dst int) int {
	cur := dst
	r0 := 0
	for _, q := range panels {
		// Rectangular part: q × r0 blocks, column-major.
		for l := 0; l < r0; l++ {
			for r := 0; r < q; r++ {
				si, sj := tm.Src(r0+r, l)
				c.copyBlock(src.Block(si, sj), cur)
				cur += c.BlockLen()
			}
		}
		// Triangular part: row-wise, diagonal as reciprocal.
		for i := 0; i < q; i++ {
			for j := 0; j <= i; j++ {
				si, sj := tm.Src(r0+i, r0+j)
				switch {
				case i == j && tm.Unit:
					onesBlock(c, cur)
				case i == j && tm.Recip:
					recipBlock(c, src.Block(si, sj), cur)
				default:
					c.copyBlock(src.Block(si, sj), cur)
				}
				cur += c.BlockLen()
			}
		}
		r0 += q
	}
	return cur - dst
}

// TriLen returns the element length Tri writes for the given panels.
func TriLen(blockLen int, panels []int) int {
	n, r0 := 0, 0
	for _, q := range panels {
		n += q*r0 + q*(q+1)/2
		r0 += q
	}
	return n * blockLen
}

// BCopy packs B into a buffer, optionally reversing row order (upper-mode
// canonicalization) and/or transposing (right-side reduction). The
// destination is a dense rows'×cols' compact group (rows' = cols when
// transposing). Returns the element length written.
func BCopy[E vec.Float](c *Ctx[E], src Geom, reverse, transpose bool, dst int) int {
	bl := c.BlockLen()
	dr, dc := src.Rows, src.Cols
	if transpose {
		dr, dc = dc, dr
	}
	for j := 0; j < dc; j++ {
		for i := 0; i < dr; i++ {
			si, sj := srcCoord(src, i, j, reverse, transpose)
			c.copyBlock(src.Block(si, sj), dst+(j*dr+i)*bl)
		}
	}
	return dr * dc * bl
}

// srcCoord maps canonical buffer coordinates (i, j) to source block
// coordinates. Reversal applies to the canonical row index — which is the
// source column when transposing.
func srcCoord(src Geom, i, j int, reverse, transpose bool) (si, sj int) {
	si, sj = i, j
	if transpose {
		si, sj = j, i
	}
	if reverse {
		if transpose {
			sj = src.Cols - 1 - sj
		} else {
			si = src.Rows - 1 - si
		}
	}
	return si, sj
}

// BUncopy writes a packed/solved B buffer back into its source group,
// inverting BCopy's permutation.
func BUncopy[E vec.Float](c *Ctx[E], dstGeom Geom, reverse, transpose bool, srcBuf int) {
	bl := c.BlockLen()
	dr, dc := dstGeom.Rows, dstGeom.Cols
	if transpose {
		dr, dc = dc, dr
	}
	for j := 0; j < dc; j++ {
		for i := 0; i < dr; i++ {
			si, sj := srcCoord(dstGeom, i, j, reverse, transpose)
			c.copyBlock(srcBuf+(j*dr+i)*bl, dstGeom.Block(si, sj))
		}
	}
}

// Scale multiplies every element of a dense group region by a scalar
// (alpha pre-scaling for TRSM, beta scaling for GEMM). Complex scaling
// uses the split planes.
func Scale[E vec.Float](c *Ctx[E], g Geom, re, im float64) {
	bl := c.BlockLen()
	vl := c.VL
	for j := 0; j < g.Cols; j++ {
		for i := 0; i < g.Rows; i++ {
			off := g.Block(i, j)
			if !c.DT.IsComplex() {
				for lane := 0; lane < vl; lane++ {
					c.Mem[off+lane] = E(float64(c.Mem[off+lane]) * re)
				}
			} else {
				for lane := 0; lane < vl; lane++ {
					r := float64(c.Mem[off+lane])
					m := float64(c.Mem[off+vl+lane])
					c.Mem[off+lane] = E(r*re - m*im)
					c.Mem[off+vl+lane] = E(r*im + m*re)
				}
			}
			c.Rec.record(off, off, bl)
		}
	}
}
