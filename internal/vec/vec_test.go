package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLanes(t *testing.T) {
	if got := Lanes[float32](); got != 4 {
		t.Errorf("Lanes[float32] = %d, want 4", got)
	}
	if got := Lanes[float64](); got != 2 {
		t.Errorf("Lanes[float64] = %d, want 2", got)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	src := []float64{1.5, -2.25, 3, 4}
	for n := 0; n <= 2; n++ {
		v := Load(src, n)
		dst := make([]float64, 2)
		Store(dst, v, n)
		for i := 0; i < n; i++ {
			if dst[i] != src[i] {
				t.Errorf("n=%d lane %d: got %v want %v", n, i, dst[i], src[i])
			}
		}
		for i := n; i < 2; i++ {
			if dst[i] != 0 {
				t.Errorf("n=%d lane %d: got %v want untouched 0", n, i, dst[i])
			}
		}
	}
}

func TestLoadDoesNotReadPastN(t *testing.T) {
	src := []float32{7}
	v := Load(src, 1)
	if v[0] != 7 || v[1] != 0 || v[2] != 0 || v[3] != 0 {
		t.Errorf("Load short slice = %v, want [7 0 0 0]", v)
	}
}

func TestDup(t *testing.T) {
	v := Dup[float32](3.5)
	for i, x := range v {
		if x != 3.5 {
			t.Errorf("lane %d = %v, want 3.5", i, x)
		}
	}
}

func TestArithmeticLanewise(t *testing.T) {
	a := V[float64]{1, 2, 3, 4}
	b := V[float64]{10, 20, 30, 40}
	c := V[float64]{100, 200, 300, 400}

	if got := Add(a, b); got != (V[float64]{11, 22, 33, 44}) {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(b, a); got != (V[float64]{9, 18, 27, 36}) {
		t.Errorf("Sub = %v", got)
	}
	if got := Mul(a, b); got != (V[float64]{10, 40, 90, 160}) {
		t.Errorf("Mul = %v", got)
	}
	if got := Div(b, a); got != (V[float64]{10, 10, 10, 10}) {
		t.Errorf("Div = %v", got)
	}
	if got := FMA(c, a, b); got != (V[float64]{110, 240, 390, 560}) {
		t.Errorf("FMA = %v", got)
	}
	if got := FMS(c, a, b); got != (V[float64]{90, 160, 210, 240}) {
		t.Errorf("FMS = %v", got)
	}
	if got := Neg(a); got != (V[float64]{-1, -2, -3, -4}) {
		t.Errorf("Neg = %v", got)
	}
	if got := Zero[float64](); got != (V[float64]{}) {
		t.Errorf("Zero = %v", got)
	}
}

// Property: FMA(acc,a,b) == Add(acc, Mul(a,b)) exactly, because the model
// performs a separate multiply and add per lane (no fused rounding).
func TestFMAEqualsMulAdd(t *testing.T) {
	f := func(acc, a, b V[float64]) bool {
		return FMA(acc, a, b) == Add(acc, Mul(a, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FMS(acc,a,b) == Sub(acc, Mul(a,b)).
func TestFMSEqualsMulSub(t *testing.T) {
	f := func(acc, a, b V[float64]) bool {
		return FMS(acc, a, b) == Sub(acc, Mul(a, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDTypeProperties(t *testing.T) {
	cases := []struct {
		t          DType
		str        string
		complex    bool
		real       DType
		elemBytes  int
		valueBytes int
		pack       int
		flops      float64
	}{
		{S, "s", false, S, 4, 4, 4, 2},
		{D, "d", false, D, 8, 8, 2, 2},
		{C, "c", true, S, 4, 8, 4, 8},
		{Z, "z", true, D, 8, 16, 2, 8},
	}
	for _, c := range cases {
		if c.t.String() != c.str {
			t.Errorf("%v String = %q want %q", c.t, c.t.String(), c.str)
		}
		if c.t.IsComplex() != c.complex {
			t.Errorf("%v IsComplex = %v", c.t, c.t.IsComplex())
		}
		if c.t.Real() != c.real {
			t.Errorf("%v Real = %v want %v", c.t, c.t.Real(), c.real)
		}
		if c.t.ElemBytes() != c.elemBytes {
			t.Errorf("%v ElemBytes = %d want %d", c.t, c.t.ElemBytes(), c.elemBytes)
		}
		if c.t.ValueBytes() != c.valueBytes {
			t.Errorf("%v ValueBytes = %d want %d", c.t, c.t.ValueBytes(), c.valueBytes)
		}
		if c.t.Pack() != c.pack {
			t.Errorf("%v Pack = %d want %d", c.t, c.t.Pack(), c.pack)
		}
		if c.t.FlopsPerElem() != c.flops {
			t.Errorf("%v FlopsPerElem = %v want %v", c.t, c.t.FlopsPerElem(), c.flops)
		}
	}
}

func TestParseDType(t *testing.T) {
	for _, dt := range DTypes {
		got, err := ParseDType(dt.String())
		if err != nil || got != dt {
			t.Errorf("ParseDType(%q) = %v, %v", dt.String(), got, err)
		}
	}
	if _, err := ParseDType("q"); err == nil {
		t.Error("ParseDType(q) succeeded, want error")
	}
}

func TestDTypesOrder(t *testing.T) {
	want := []DType{S, D, C, Z}
	if len(DTypes) != len(want) {
		t.Fatalf("DTypes = %v", DTypes)
	}
	for i := range want {
		if DTypes[i] != want[i] {
			t.Errorf("DTypes[%d] = %v want %v", i, DTypes[i], want[i])
		}
	}
}

func TestDivByZeroIsInf(t *testing.T) {
	got := Div(Dup[float64](1), Zero[float64]())
	for i := 0; i < 2; i++ {
		if !math.IsInf(got[i], 1) {
			t.Errorf("lane %d = %v, want +Inf", i, got[i])
		}
	}
}

func TestSqrt(t *testing.T) {
	got := Sqrt(V[float64]{4, 9, 16, 25})
	if got != (V[float64]{2, 3, 4, 5}) {
		t.Errorf("Sqrt = %v", got)
	}
	g32 := Sqrt(V[float32]{2.25})
	if g32[0] != 1.5 {
		t.Errorf("float32 Sqrt = %v", g32[0])
	}
	if !math.IsNaN(float64(Sqrt(V[float64]{-1})[0])) {
		t.Error("Sqrt(-1) must be NaN")
	}
}
