// Package vec provides the 128-bit SIMD vector substrate the rest of the
// library is built on. It models ARMv8 NEON quad registers: a vector holds
// up to four lanes of a real floating-point element type, and operations
// mirror the NEON instructions the IATF kernel generator emits (FMUL, FMLA,
// FMLS, DUP). Complex data is handled above this layer as separate
// real/imaginary planes, exactly as the compact layout stores it.
package vec

import "math"

// Float is the set of real element types a NEON vector lane can hold.
type Float interface {
	~float32 | ~float64
}

// Width is the modeled SIMD register width in bytes (128-bit NEON).
const Width = 16

// V is one SIMD register: up to four lanes of E. For float32 all four
// lanes are active (P=4); for float64 only the first two are (P=2).
// Inactive lanes hold zero and are ignored by Store.
type V[E Float] [4]E

// Lanes reports the number of active lanes for element type E in a 128-bit
// register: 4 for float32, 2 for float64.
func Lanes[E Float]() int {
	var e E
	switch any(e).(type) {
	case float32:
		return 4
	default:
		return 2
	}
}

// Load fills the first n lanes of a vector from s[:n].
func Load[E Float](s []E, n int) V[E] {
	var v V[E]
	copy(v[:n], s[:n])
	return v
}

// Store writes the first n lanes of v to s[:n].
func Store[E Float](s []E, v V[E], n int) {
	copy(s[:n], v[:n])
}

// Dup broadcasts a scalar to all lanes (NEON DUP).
func Dup[E Float](x E) V[E] {
	return V[E]{x, x, x, x}
}

// Add returns a + b lane-wise (FADD).
func Add[E Float](a, b V[E]) V[E] {
	return V[E]{a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]}
}

// Sub returns a - b lane-wise (FSUB).
func Sub[E Float](a, b V[E]) V[E] {
	return V[E]{a[0] - b[0], a[1] - b[1], a[2] - b[2], a[3] - b[3]}
}

// Mul returns a * b lane-wise (FMUL).
func Mul[E Float](a, b V[E]) V[E] {
	return V[E]{a[0] * b[0], a[1] * b[1], a[2] * b[2], a[3] * b[3]}
}

// Div returns a / b lane-wise (FDIV). The IATF packing kernels store
// reciprocals of TRSM diagonals precisely to keep this long-latency
// operation out of computing kernels; it exists here for the baselines
// and for packing itself.
func Div[E Float](a, b V[E]) V[E] {
	return V[E]{a[0] / b[0], a[1] / b[1], a[2] / b[2], a[3] / b[3]}
}

// FMA returns acc + a*b lane-wise (FMLA).
func FMA[E Float](acc, a, b V[E]) V[E] {
	return V[E]{acc[0] + a[0]*b[0], acc[1] + a[1]*b[1], acc[2] + a[2]*b[2], acc[3] + a[3]*b[3]}
}

// FMS returns acc - a*b lane-wise (FMLS). The TRSM rectangular kernel is
// built on FMLS so the -1 GEMM alpha costs no extra multiplies (paper Eq. 4).
func FMS[E Float](acc, a, b V[E]) V[E] {
	return V[E]{acc[0] - a[0]*b[0], acc[1] - a[1]*b[1], acc[2] - a[2]*b[2], acc[3] - a[3]*b[3]}
}

// Neg returns -a lane-wise (FNEG).
func Neg[E Float](a V[E]) V[E] {
	return V[E]{-a[0], -a[1], -a[2], -a[3]}
}

// Zero returns the all-zero vector (MOVI #0).
func Zero[E Float]() V[E] {
	return V[E]{}
}

// Sqrt returns the lane-wise square root (FSQRT). Like FDIV it is a
// long-latency operation; the compact Cholesky keeps it to one use per
// diagonal element.
func Sqrt[E Float](a V[E]) V[E] {
	return V[E]{sqrtE(a[0]), sqrtE(a[1]), sqrtE(a[2]), sqrtE(a[3])}
}

func sqrtE[E Float](x E) E {
	return E(math.Sqrt(float64(x)))
}
