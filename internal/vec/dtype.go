package vec

import "fmt"

// DType identifies one of the four BLAS data types IATF generates kernels
// for. Naming follows BLAS convention: S/D are single/double precision real,
// C/Z single/double precision complex.
type DType int

const (
	S DType = iota // float32
	D              // float64
	C              // complex64 (stored as split float32 re/im planes)
	Z              // complex128 (stored as split float64 re/im planes)
)

// DTypes lists every data type in evaluation order (sgemm, dgemm, cgemm,
// zgemm — the order the paper's figures use).
var DTypes = []DType{S, D, C, Z}

// String returns the BLAS prefix letter ("s", "d", "c", "z").
func (t DType) String() string {
	switch t {
	case S:
		return "s"
	case D:
		return "d"
	case C:
		return "c"
	case Z:
		return "z"
	}
	return fmt.Sprintf("DType(%d)", int(t))
}

// IsComplex reports whether the type is complex.
func (t DType) IsComplex() bool { return t == C || t == Z }

// Real returns the underlying real component type (S for C, D for Z).
func (t DType) Real() DType {
	switch t {
	case C:
		return S
	case Z:
		return D
	}
	return t
}

// ElemBytes returns the size in bytes of one real component element
// (4 for S/C, 8 for D/Z).
func (t DType) ElemBytes() int {
	if t.Real() == S {
		return 4
	}
	return 8
}

// ValueBytes returns the size in bytes of one full matrix element
// (8 for C, 16 for Z, else ElemBytes).
func (t DType) ValueBytes() int {
	if t.IsComplex() {
		return 2 * t.ElemBytes()
	}
	return t.ElemBytes()
}

// Pack returns P, the interleave factor of the SIMD-friendly layout: the
// number of matrices whose identical element fills one 128-bit register.
// P=4 for S and C (split planes of float32), P=2 for D and Z.
func (t DType) Pack() int {
	return Width / t.ElemBytes()
}

// FlopsPerElem returns the number of real floating-point operations one
// multiply-add of this type performs per matrix element: 2 for real
// (mul+add), 8 for complex (4 muls + 4 adds).
func (t DType) FlopsPerElem() float64 {
	if t.IsComplex() {
		return 8
	}
	return 2
}

// ParseDType converts a BLAS prefix letter into a DType.
func ParseDType(s string) (DType, error) {
	switch s {
	case "s", "S":
		return S, nil
	case "d", "D":
		return D, nil
	case "c", "C":
		return C, nil
	case "z", "Z":
		return Z, nil
	}
	return 0, fmt.Errorf("vec: unknown dtype %q (want s, d, c or z)", s)
}
