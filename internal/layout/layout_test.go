package layout

import (
	"math/rand"
	"testing"
	"testing/quick"

	"iatf/internal/matrix"
	"iatf/internal/vec"
)

func TestSizesAndGroups(t *testing.T) {
	cases := []struct {
		dt                       vec.DType
		count, rows, cols        int
		p, comps, groups, blkLen int
	}{
		{vec.S, 9, 3, 3, 4, 1, 3, 4},
		{vec.D, 9, 3, 3, 2, 1, 5, 2},
		{vec.C, 4, 2, 5, 4, 2, 1, 8},
		{vec.Z, 5, 2, 2, 2, 2, 3, 4},
	}
	for _, cse := range cases {
		var got interface {
			P() int
			Comps() int
			Groups() int
			BlockLen() int
			GroupLen() int
		}
		if cse.dt.Real() == vec.S {
			got = NewCompact[float32](cse.dt, cse.count, cse.rows, cse.cols)
		} else {
			got = NewCompact[float64](cse.dt, cse.count, cse.rows, cse.cols)
		}
		if got.P() != cse.p || got.Comps() != cse.comps || got.Groups() != cse.groups || got.BlockLen() != cse.blkLen {
			t.Errorf("%v: P=%d comps=%d groups=%d blk=%d, want %+v",
				cse.dt, got.P(), got.Comps(), got.Groups(), got.BlockLen(), cse)
		}
		if got.GroupLen() != cse.rows*cse.cols*cse.blkLen {
			t.Errorf("%v GroupLen = %d", cse.dt, got.GroupLen())
		}
	}
}

func TestElementTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("float32 storage for D dtype did not panic")
		}
	}()
	NewCompact[float32](vec.D, 1, 1, 1)
}

// Figure 3 of the paper: for 3×3 float32 matrices, the first vector block
// must contain element (0,0) of matrices 0..3, the next block element (1,0)
// of matrices 0..3 (column-major within the group).
func TestFigure3LayoutOrder(t *testing.T) {
	b := matrix.NewBatch[float32](8, 3, 3)
	for v := 0; v < 8; v++ {
		m := b.Mat(v)
		for j := 0; j < 3; j++ {
			for i := 0; i < 3; i++ {
				m.Set(i, j, float32(100*v+10*i+j))
			}
		}
	}
	c := FromBatch(vec.S, b)
	// Block 0: element (0,0) of matrices 0..3.
	want := []float32{0, 100, 200, 300}
	for lane, w := range want {
		if c.Data[lane] != w {
			t.Errorf("block0 lane %d = %v want %v", lane, c.Data[lane], w)
		}
	}
	// Block 1: element (1,0) of matrices 0..3.
	want = []float32{10, 110, 210, 310}
	for lane, w := range want {
		if c.Data[4+lane] != w {
			t.Errorf("block1 lane %d = %v want %v", lane, c.Data[4+lane], w)
		}
	}
	// Second group starts with element (0,0) of matrices 4..7.
	g1 := c.Index(1, 0, 0)
	want = []float32{400, 500, 600, 700}
	for lane, w := range want {
		if c.Data[g1+lane] != w {
			t.Errorf("group1 block0 lane %d = %v want %v", lane, c.Data[g1+lane], w)
		}
	}
}

func TestComplexSplitPlanes(t *testing.T) {
	b := matrix.NewBatch[complex64](2, 1, 1)
	b.Mat(0).Set(0, 0, 1+2i)
	b.Mat(1).Set(0, 0, 3+4i)
	c := FromBatchComplex[complex64, float32](vec.C, b)
	// One block: [re0 re1 pad pad | im0 im1 pad pad].
	want := []float32{1, 3, 0, 0, 2, 4, 0, 0}
	if len(c.Data) != len(want) {
		t.Fatalf("data len %d want %d", len(c.Data), len(want))
	}
	for i, w := range want {
		if c.Data[i] != w {
			t.Errorf("data[%d] = %v want %v", i, c.Data[i], w)
		}
	}
}

func TestPaddingLanesAreZero(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := matrix.RandBatch[float64](rng, 3, 4, 2) // P=2 → 2 groups, 1 padding lane
	c := FromBatch(vec.D, b)
	for j := 0; j < 2; j++ {
		for i := 0; i < 4; i++ {
			off := c.Index(1, i, j) + 1 // lane 1 of group 1 = matrix 3 = padding
			if c.Data[off] != 0 {
				t.Errorf("padding lane (%d,%d) = %v, want 0", i, j, c.Data[off])
			}
		}
	}
}

func TestRoundTripReal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, dt := range []vec.DType{vec.S, vec.D} {
		for _, count := range []int{1, 2, 3, 4, 5, 8, 9} {
			if dt == vec.S {
				b := matrix.RandBatch[float32](rng, count, 3, 5)
				got := ToBatch(FromBatch(dt, b))
				if matrix.MaxAbsDiff(got.Data, b.Data) != 0 {
					t.Errorf("%v count=%d round trip failed", dt, count)
				}
			} else {
				b := matrix.RandBatch[float64](rng, count, 3, 5)
				got := ToBatch(FromBatch(dt, b))
				if matrix.MaxAbsDiff(got.Data, b.Data) != 0 {
					t.Errorf("%v count=%d round trip failed", dt, count)
				}
			}
		}
	}
}

func TestRoundTripComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, count := range []int{1, 3, 4, 7} {
		bc := matrix.RandBatch[complex64](rng, count, 2, 3)
		gotC := ToBatchComplex[complex64](FromBatchComplex[complex64, float32](vec.C, bc))
		if matrix.MaxAbsDiff(gotC.Data, bc.Data) != 0 {
			t.Errorf("C count=%d round trip failed", count)
		}
		bz := matrix.RandBatch[complex128](rng, count, 2, 3)
		gotZ := ToBatchComplex[complex128](FromBatchComplex[complex128, float64](vec.Z, bz))
		if matrix.MaxAbsDiff(gotZ.Data, bz.Data) != 0 {
			t.Errorf("Z count=%d round trip failed", count)
		}
	}
}

// Property: At/Set are mutually consistent at random coordinates.
func TestAtSetProperty(t *testing.T) {
	c := NewCompact[float64](vec.Z, 5, 4, 3)
	f := func(v, i, j uint8, re, im float64) bool {
		vi, ii, ji := int(v)%5, int(i)%4, int(j)%3
		c.Set(vi, ii, ji, re, im)
		gre, gim := c.At(vi, ii, ji)
		return gre == re && gim == im
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := NewCompact[float32](vec.S, 4, 2, 2)
	c.Set(0, 0, 0, 1, 0)
	d := c.Clone()
	d.Set(0, 0, 0, 2, 0)
	if re, _ := c.At(0, 0, 0); re != 1 {
		t.Error("Clone shares storage")
	}
}

func TestDTypeGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("FromBatch with complex dtype", func() {
		FromBatch(vec.C, matrix.NewBatch[float32](1, 1, 1))
	})
	mustPanic("ToBatch with complex dtype", func() {
		ToBatch(NewCompact[float32](vec.C, 1, 1, 1))
	})
	mustPanic("FromBatchComplex with real dtype", func() {
		FromBatchComplex[complex64, float32](vec.S, matrix.NewBatch[complex64](1, 1, 1))
	})
	mustPanic("ToBatchComplex with real dtype", func() {
		ToBatchComplex[complex64](NewCompact[float32](vec.S, 1, 1, 1))
	})
}

func TestReplicateReal(t *testing.T) {
	src := []float64{1, 2, 3, 4, 5, 6} // 2×3 column-major
	c := ReplicateReal(vec.D, src, 2, 3, 5)
	if c.Count != 5 || c.Rows != 2 || c.Cols != 3 {
		t.Fatalf("dims: %+v", c)
	}
	for v := 0; v < 5; v++ {
		for j := 0; j < 3; j++ {
			for i := 0; i < 2; i++ {
				re, _ := c.At(v, i, j)
				if re != src[j*2+i] {
					t.Fatalf("matrix %d (%d,%d) = %v", v, i, j, re)
				}
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("complex dtype accepted by ReplicateReal")
		}
	}()
	ReplicateReal(vec.C, []float32{1}, 1, 1, 1)
}

func TestReplicateComplex(t *testing.T) {
	src := []complex64{1 + 2i, 3, 4i, 5 - 1i} // 2×2
	c := ReplicateComplex[complex64, float32](vec.C, src, 2, 2, 6)
	for v := 0; v < 6; v++ {
		for j := 0; j < 2; j++ {
			for i := 0; i < 2; i++ {
				re, im := c.At(v, i, j)
				want := src[j*2+i]
				if re != real(want) || im != imag(want) {
					t.Fatalf("matrix %d (%d,%d) = (%v,%v)", v, i, j, re, im)
				}
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("real dtype accepted by ReplicateComplex")
		}
	}()
	ReplicateComplex[complex64, float32](vec.S, src, 2, 2, 1)
}
