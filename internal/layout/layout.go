// Package layout implements the SIMD-friendly data layout (Kim et al.,
// SC'17) that IATF builds on: element (i,j) of P consecutive matrices is
// stored contiguously, so a single 128-bit vector load fills a register with
// the same element of P matrices (Figure 3 of the paper). P is the
// interleave factor of the data type: 4 for single precision, 2 for double.
//
// Complex matrices are stored as split planes: for each (i,j) the P real
// components are followed by the P imaginary components, so a complex
// element block occupies 2P real elements and the kernels consume one
// re-register and one im-register per load pair.
package layout

import (
	"fmt"
	"sync/atomic"

	"iatf/internal/matrix"
	"iatf/internal/vec"
)

// Version identifies the compact storage layout (interleave order, split
// complex planes, padding rules). It is folded into the autotune-store
// fingerprint so a layout change invalidates persisted kernels and
// plans instead of replaying them against a format they were not built
// for.
const Version = 1

// Compact is a batch of Count equally sized matrices in SIMD-friendly
// layout. E is the real component type (float32 for S/C, float64 for D/Z).
//
// Storage order: matrices are split into ceil(Count/P) groups of P. Within a
// group the matrix is column-major by element block, and each element block
// holds the P interleaved lanes (re plane then im plane for complex types):
//
//	offset(g, i, j, lane) = g·GroupLen + ((j·Rows + i)·comps)·P + lane
//
// Lanes of the final group beyond Count are zero padding, as in the paper.
type Compact[E vec.Float] struct {
	Type       vec.DType
	Count      int // number of real (non-padding) matrices
	Rows, Cols int
	Data       []E

	// prepackID/prepackGen are the reuse identity for the engine's
	// packed-operand cache: id 0 means the batch has not opted into pack
	// reuse; a nonzero id plus the current generation key cached packed
	// images of this batch. Plain words manipulated through sync/atomic
	// (not atomic.Uint64) so Clone's struct copy stays legal under vet.
	prepackID  uint64
	prepackGen uint64
}

// prepackIDs hands out process-unique reuse identities.
var prepackIDs uint64

// EnablePrepack opts the batch into packed-operand reuse, assigning a
// process-unique identity on first call. Safe for concurrent use;
// idempotent.
func (c *Compact[E]) EnablePrepack() {
	if atomic.LoadUint64(&c.prepackID) != 0 {
		return
	}
	id := atomic.AddUint64(&prepackIDs, 1)
	atomic.CompareAndSwapUint64(&c.prepackID, 0, id)
}

// PrepackState returns the batch's reuse identity and current
// generation. id 0 means reuse is not enabled.
func (c *Compact[E]) PrepackState() (id, gen uint64) {
	return atomic.LoadUint64(&c.prepackID), atomic.LoadUint64(&c.prepackGen)
}

// Invalidate bumps the generation after the caller mutated Data, so
// cached packed images of the previous contents stop matching. A no-op
// until EnablePrepack.
func (c *Compact[E]) Invalidate() {
	if atomic.LoadUint64(&c.prepackID) != 0 {
		atomic.AddUint64(&c.prepackGen, 1)
	}
}

// NewCompact allocates a zeroed compact batch. It panics if E does not
// match the real component type of dt, since that mismatch is always a
// programming error.
func NewCompact[E vec.Float](dt vec.DType, count, rows, cols int) *Compact[E] {
	var e E
	_, isF32 := any(e).(float32)
	if isF32 != (dt.Real() == vec.S) {
		panic(fmt.Sprintf("layout: element type %T does not match dtype %v", e, dt))
	}
	if count < 0 || rows < 0 || cols < 0 {
		panic("layout: negative dimension")
	}
	c := &Compact[E]{Type: dt, Count: count, Rows: rows, Cols: cols}
	c.Data = make([]E, c.Groups()*c.GroupLen())
	return c
}

// P returns the interleave factor (matrices per vector register).
func (c *Compact[E]) P() int { return c.Type.Pack() }

// Comps returns the number of real components per element (2 for complex).
func (c *Compact[E]) Comps() int {
	if c.Type.IsComplex() {
		return 2
	}
	return 1
}

// BlockLen returns the storage footprint in E elements of one matrix
// element across the group: P·Comps.
func (c *Compact[E]) BlockLen() int { return c.P() * c.Comps() }

// Groups returns the number of P-matrix groups, including the padded tail.
func (c *Compact[E]) Groups() int { return (c.Count + c.P() - 1) / c.P() }

// GroupLen returns the number of E elements one group occupies.
func (c *Compact[E]) GroupLen() int { return c.Rows * c.Cols * c.BlockLen() }

// Index returns the offset of the real-plane lane 0 of element (i, j) in
// group g. The imaginary plane, when present, starts P elements later.
func (c *Compact[E]) Index(g, i, j int) int {
	return g*c.GroupLen() + (j*c.Rows+i)*c.BlockLen()
}

// Group returns the storage slice of group g.
func (c *Compact[E]) Group(g int) []E {
	return c.Data[g*c.GroupLen() : (g+1)*c.GroupLen()]
}

// At returns the (re, im) components of element (i, j) of matrix v. im is
// zero for real types.
func (c *Compact[E]) At(v, i, j int) (re, im E) {
	g, lane := v/c.P(), v%c.P()
	off := c.Index(g, i, j) + lane
	re = c.Data[off]
	if c.Type.IsComplex() {
		im = c.Data[off+c.P()]
	}
	return re, im
}

// Set assigns the (re, im) components of element (i, j) of matrix v.
func (c *Compact[E]) Set(v, i, j int, re, im E) {
	g, lane := v/c.P(), v%c.P()
	off := c.Index(g, i, j) + lane
	c.Data[off] = re
	if c.Type.IsComplex() {
		c.Data[off+c.P()] = im
	}
}

// Clone returns a deep copy. The copy does not inherit the reuse
// identity: it is a distinct value that may diverge from the original.
func (c *Compact[E]) Clone() *Compact[E] {
	out := *c
	out.prepackID, out.prepackGen = 0, 0
	out.Data = make([]E, len(c.Data))
	copy(out.Data, c.Data)
	return &out
}

// FromBatch converts a conventional real-typed batch into compact layout.
// The conversion is an interleaving transpose done with direct index
// arithmetic — it runs at memory speed, since packing a large batch is on
// the application's critical path.
func FromBatch[E vec.Float](dt vec.DType, b *matrix.Batch[E]) *Compact[E] {
	if dt.IsComplex() {
		panic("layout: FromBatch requires a real dtype; use FromBatchComplex")
	}
	c := NewCompact[E](dt, b.Count, b.Rows, b.Cols)
	p := c.P()
	ml := b.Rows * b.Cols
	for g := 0; g < c.Groups(); g++ {
		lanes := b.Count - g*p
		if lanes > p {
			lanes = p
		}
		dst := c.Data[g*c.GroupLen():]
		for lane := 0; lane < lanes; lane++ {
			src := b.Data[(g*p+lane)*ml : (g*p+lane+1)*ml]
			for e, x := range src {
				dst[e*p+lane] = x
			}
		}
	}
	return c
}

// ToBatch converts a real-typed compact batch back to conventional layout,
// dropping padding lanes.
func ToBatch[E vec.Float](c *Compact[E]) *matrix.Batch[E] {
	if c.Type.IsComplex() {
		panic("layout: ToBatch requires a real dtype; use ToBatchComplex")
	}
	b := matrix.NewBatch[E](c.Count, c.Rows, c.Cols)
	p := c.P()
	ml := c.Rows * c.Cols
	for g := 0; g < c.Groups(); g++ {
		lanes := c.Count - g*p
		if lanes > p {
			lanes = p
		}
		src := c.Data[g*c.GroupLen():]
		for lane := 0; lane < lanes; lane++ {
			dst := b.Data[(g*p+lane)*ml : (g*p+lane+1)*ml]
			for e := range dst {
				dst[e] = src[e*p+lane]
			}
		}
	}
	return b
}

// Complex is the set of complex scalar types.
type Complex interface {
	~complex64 | ~complex128
}

// splitComplex returns the components of a complex scalar as float64
// (real/imag do not yet operate on type parameters, go.dev/issue/50937).
func splitComplex[T Complex](x T) (re, im float64) {
	switch v := any(x).(type) {
	case complex64:
		return float64(real(v)), float64(imag(v))
	case complex128:
		return real(v), imag(v)
	}
	return 0, 0
}

// FromBatchComplex converts a conventional complex batch into split-plane
// compact layout. T and E must correspond (complex64↔float32,
// complex128↔float64); dt selects which.
func FromBatchComplex[T Complex, E vec.Float](dt vec.DType, b *matrix.Batch[T]) *Compact[E] {
	if !dt.IsComplex() {
		panic("layout: FromBatchComplex requires a complex dtype")
	}
	c := NewCompact[E](dt, b.Count, b.Rows, b.Cols)
	p := c.P()
	ml := b.Rows * b.Cols
	for g := 0; g < c.Groups(); g++ {
		lanes := b.Count - g*p
		if lanes > p {
			lanes = p
		}
		dst := c.Data[g*c.GroupLen():]
		for lane := 0; lane < lanes; lane++ {
			src := b.Data[(g*p+lane)*ml : (g*p+lane+1)*ml]
			for e, x := range src {
				re, im := splitComplex(x)
				dst[e*2*p+lane] = E(re)
				dst[e*2*p+p+lane] = E(im)
			}
		}
	}
	return c
}

// ToBatchComplex converts a split-plane compact batch back to a
// conventional complex batch, dropping padding lanes.
func ToBatchComplex[T Complex, E vec.Float](c *Compact[E]) *matrix.Batch[T] {
	if !c.Type.IsComplex() {
		panic("layout: ToBatchComplex requires a complex dtype")
	}
	b := matrix.NewBatch[T](c.Count, c.Rows, c.Cols)
	p := c.P()
	ml := c.Rows * c.Cols
	for g := 0; g < c.Groups(); g++ {
		lanes := c.Count - g*p
		if lanes > p {
			lanes = p
		}
		src := c.Data[g*c.GroupLen():]
		for lane := 0; lane < lanes; lane++ {
			dst := b.Data[(g*p+lane)*ml : (g*p+lane+1)*ml]
			for e := range dst {
				dst[e] = T(complex(float64(src[e*2*p+lane]), float64(src[e*2*p+p+lane])))
			}
		}
	}
	return b
}

// ReplicateReal builds a compact batch whose every matrix equals the
// given rows×cols column-major source — the shared-operator pattern
// (e.g. one differentiation matrix applied to thousands of elements) —
// without materializing count conventional copies. Padding lanes carry
// the same value; they are never unpacked.
func ReplicateReal[E vec.Float](dt vec.DType, src []E, rows, cols, count int) *Compact[E] {
	if dt.IsComplex() {
		panic("layout: ReplicateReal requires a real dtype")
	}
	c := NewCompact[E](dt, count, rows, cols)
	p := c.P()
	g0 := c.Data[:c.GroupLen()]
	for e, x := range src[:rows*cols] {
		for lane := 0; lane < p; lane++ {
			g0[e*p+lane] = x
		}
	}
	for g := 1; g < c.Groups(); g++ {
		copy(c.Data[g*c.GroupLen():(g+1)*c.GroupLen()], g0)
	}
	return c
}

// ReplicateComplex is ReplicateReal for complex sources.
func ReplicateComplex[T Complex, E vec.Float](dt vec.DType, src []T, rows, cols, count int) *Compact[E] {
	if !dt.IsComplex() {
		panic("layout: ReplicateComplex requires a complex dtype")
	}
	c := NewCompact[E](dt, count, rows, cols)
	p := c.P()
	g0 := c.Data[:c.GroupLen()]
	for e, x := range src[:rows*cols] {
		re, im := splitComplex(x)
		for lane := 0; lane < p; lane++ {
			g0[e*2*p+lane] = E(re)
			g0[e*2*p+p+lane] = E(im)
		}
	}
	for g := 1; g < c.Groups(); g++ {
		copy(c.Data[g*c.GroupLen():(g+1)*c.GroupLen()], g0)
	}
	return c
}
