package layout

import (
	"testing"

	"iatf/internal/matrix"
	"iatf/internal/vec"
)

// FuzzRoundTrip drives the pack/unpack pair with arbitrary shapes and
// data, asserting the round trip is lossless and never panics for valid
// dimensions.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(3), uint8(4), uint8(5), int64(1))
	f.Add(uint8(1), uint8(1), uint8(1), int64(2))
	f.Add(uint8(16), uint8(2), uint8(33), int64(3))
	f.Fuzz(func(t *testing.T, count8, rows8, cols8 uint8, seed int64) {
		count := 1 + int(count8)%40
		rows := 1 + int(rows8)%12
		cols := 1 + int(cols8)%12
		b := matrix.NewBatch[float32](count, rows, cols)
		x := float32(seed%97) + 0.5
		for i := range b.Data {
			x = x*1.37 + 0.11
			if x > 1e6 {
				x = 0.25
			}
			b.Data[i] = x
		}
		got := ToBatch(FromBatch(vec.S, b))
		for i := range b.Data {
			if got.Data[i] != b.Data[i] {
				t.Fatalf("round trip diverges at %d", i)
			}
		}
		// Complex too.
		bc := matrix.NewBatch[complex128](count, rows, cols)
		for i := range bc.Data {
			x = x*1.37 + 0.11
			if x > 1e6 {
				x = 0.25
			}
			bc.Data[i] = complex(float64(x), float64(-x))
		}
		gotC := ToBatchComplex[complex128](FromBatchComplex[complex128, float64](vec.Z, bc))
		for i := range bc.Data {
			if gotC.Data[i] != bc.Data[i] {
				t.Fatalf("complex round trip diverges at %d", i)
			}
		}
	})
}
