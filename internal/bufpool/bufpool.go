// Package bufpool provides size-class pooled scratch buffers for the
// packing arenas of the native executors. The run-time stage packs
// operands into L1-sized super-batch buffers on every call; allocating
// those per call dominates the steady-state allocation profile, so they
// are recycled here through per-type, per-size-class sync.Pools.
//
// Buffers are returned uncleared: callers must fully overwrite the region
// they read (every packing routine in internal/core does).
package bufpool

import (
	"sync"
	"sync/atomic"

	"iatf/internal/vec"
)

const (
	// minClassBits..maxClassBits bound the pooled size classes
	// (powers of two, in elements). Requests above the top class are
	// served by plain make and never pooled — they would pin too much
	// memory for too rare a shape.
	minClassBits = 8
	maxClassBits = 24
	numClasses   = maxClassBits - minClassBits + 1
)

// Buf is a pooled scratch buffer. Obtain with Get, release with Put.
// The pool stores *Buf so recycling does not re-box the slice header.
type Buf[E vec.Float] struct {
	data  []E
	class int
	// state guards the Get/Put pairing: 1 while checked out, 0 once
	// returned. A second Put of the same buffer would let two later Gets
	// share storage — the CAS in Put rejects it and counts it instead.
	state atomic.Int32
}

// Slice returns the buffer's storage, sized to the Get request.
func (b *Buf[E]) Slice() []E { return b.data }

type classPools struct {
	classes [numClasses]sync.Pool
}

// classCounters are the per-size-class observability counters, shared by
// both element types (classes are element counts, not bytes).
type classCounters struct {
	gets   atomic.Uint64
	reuses atomic.Uint64
	puts   atomic.Uint64
}

var (
	f32Pools classPools
	f64Pools classPools

	gets       atomic.Uint64
	reuses     atomic.Uint64
	news       atomic.Uint64
	puts       atomic.Uint64
	oversize   atomic.Uint64
	doublePuts atomic.Uint64
	inUse      atomic.Int64 // pooled buffers currently checked out

	perClass [numClasses]classCounters
)

// ClassStats is a snapshot of one active size class.
type ClassStats struct {
	SizeElems int    `json:"size_elems"` // class capacity in elements
	Gets      uint64 `json:"gets"`
	Reuses    uint64 `json:"reuses"`
	Puts      uint64 `json:"puts"`
}

// Stats is a snapshot of the pool's lifetime counters.
type Stats struct {
	Gets     uint64 // Get calls
	Reuses   uint64 // Gets served from the pool without allocating
	Allocs   uint64 // Gets that had to allocate a fresh buffer
	Puts     uint64 // buffers returned
	Oversize uint64 // requests above the top size class (never pooled)

	// DoublePuts counts Put calls rejected because the buffer was already
	// returned; InUse is the live gauge of checked-out pooled buffers.
	// InUse > 0 at quiescence means a Get leaked without its Put.
	DoublePuts uint64
	InUse      int64

	// Classes lists the size classes that have seen traffic, smallest
	// first — the per-class view of where packing-buffer demand lands.
	Classes []ClassStats
}

// Snapshot returns the current pool counters.
func Snapshot() Stats {
	s := Stats{
		Gets:       gets.Load(),
		Reuses:     reuses.Load(),
		Allocs:     news.Load(),
		Puts:       puts.Load(),
		Oversize:   oversize.Load(),
		DoublePuts: doublePuts.Load(),
		InUse:      inUse.Load(),
	}
	for cl := range perClass {
		g := perClass[cl].gets.Load()
		if g == 0 {
			continue
		}
		s.Classes = append(s.Classes, ClassStats{
			SizeElems: 1 << (cl + minClassBits),
			Gets:      g,
			Reuses:    perClass[cl].reuses.Load(),
			Puts:      perClass[cl].puts.Load(),
		})
	}
	return s
}

func poolsFor[E vec.Float]() *classPools {
	var z E
	if _, ok := any(z).(float32); ok {
		return &f32Pools
	}
	return &f64Pools
}

// classFor returns the smallest size class holding n elements.
func classFor(n int) int {
	bits := minClassBits
	for n > 1<<bits {
		bits++
	}
	return bits - minClassBits
}

// Get returns a buffer of exactly n elements, recycled from the pool when
// a same-class buffer is available. Contents are unspecified.
func Get[E vec.Float](n int) *Buf[E] {
	gets.Add(1)
	if n > 1<<maxClassBits {
		oversize.Add(1)
		return &Buf[E]{data: make([]E, n), class: -1}
	}
	cl := classFor(n)
	perClass[cl].gets.Add(1)
	inUse.Add(1)
	if v := poolsFor[E]().classes[cl].Get(); v != nil {
		b := v.(*Buf[E])
		b.data = b.data[:n]
		b.state.Store(1)
		reuses.Add(1)
		perClass[cl].reuses.Add(1)
		return b
	}
	news.Add(1)
	b := &Buf[E]{data: make([]E, n, 1<<(cl+minClassBits)), class: cl}
	b.state.Store(1)
	return b
}

// Put recycles a buffer obtained from Get. The caller must not use the
// buffer afterwards. A repeated Put of the same buffer is rejected (and
// counted) instead of corrupting the pool.
func Put[E vec.Float](b *Buf[E]) {
	if b == nil || b.class < 0 {
		return
	}
	if !b.state.CompareAndSwap(1, 0) {
		doublePuts.Add(1)
		return
	}
	inUse.Add(-1)
	puts.Add(1)
	perClass[b.class].puts.Add(1)
	b.data = b.data[:cap(b.data)]
	poolsFor[E]().classes[b.class].Put(b)
}
