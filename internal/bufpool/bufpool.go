// Package bufpool provides size-class pooled scratch buffers for the
// packing arenas of the native executors. The run-time stage packs
// operands into L1-sized super-batch buffers on every call; allocating
// those per call dominates the steady-state allocation profile, so they
// are recycled through per-type, per-size-class sync.Pools.
//
// All state lives in Pool instances — the package has no globals. Each
// engine owns one Pool (via core.Runtime), so a sharded EngineSet gets
// strict per-shard buffer isolation: one shard's churn never evicts or
// pins another shard's warm buffers, and the per-pool counters attribute
// demand to the shard that generated it.
//
// Buffers are returned uncleared: callers must fully overwrite the region
// they read (every packing routine in internal/core does).
package bufpool

import (
	"sync"
	"sync/atomic"

	"iatf/internal/vec"
)

const (
	// minClassBits..maxClassBits bound the pooled size classes
	// (powers of two, in elements). Requests above the top class are
	// served by plain make and never pooled — they would pin too much
	// memory for too rare a shape.
	minClassBits = 8
	maxClassBits = 24
	numClasses   = maxClassBits - minClassBits + 1
)

// Buf is a pooled scratch buffer. Obtain with Get, release with Put.
// The pool stores *Buf so recycling does not re-box the slice header.
type Buf[E vec.Float] struct {
	data  []E
	class int
	// state guards the Get/Put pairing: 1 while checked out, 0 once
	// returned. A second Put of the same buffer would let two later Gets
	// share storage — the CAS in Put rejects it and counts it instead.
	state atomic.Int32
}

// Slice returns the buffer's storage, sized to the Get request.
func (b *Buf[E]) Slice() []E { return b.data }

type classPools struct {
	classes [numClasses]sync.Pool
}

// classCounters are the per-size-class observability counters, shared by
// both element types (classes are element counts, not bytes).
type classCounters struct {
	gets   atomic.Uint64
	reuses atomic.Uint64
	puts   atomic.Uint64
}

// Pool is one isolated set of size-class buffer pools plus its
// counters. The zero value is ready to use; all methods and the
// package-level Get/Put are safe for concurrent use.
type Pool struct {
	f32Pools classPools
	f64Pools classPools

	gets       atomic.Uint64
	reuses     atomic.Uint64
	news       atomic.Uint64
	puts       atomic.Uint64
	oversize   atomic.Uint64
	doublePuts atomic.Uint64
	inUse      atomic.Int64 // pooled buffers currently checked out

	perClass [numClasses]classCounters
}

// NewPool returns an empty, independent buffer pool.
func NewPool() *Pool { return &Pool{} }

// ClassStats is a snapshot of one active size class.
type ClassStats struct {
	SizeElems int    `json:"size_elems"` // class capacity in elements
	Gets      uint64 `json:"gets"`
	Reuses    uint64 `json:"reuses"`
	Puts      uint64 `json:"puts"`
}

// Stats is a snapshot of one pool's lifetime counters.
type Stats struct {
	Gets     uint64 // Get calls
	Reuses   uint64 // Gets served from the pool without allocating
	Allocs   uint64 // Gets that had to allocate a fresh buffer
	Puts     uint64 // buffers returned
	Oversize uint64 // requests above the top size class (never pooled)

	// DoublePuts counts Put calls rejected because the buffer was already
	// returned; InUse is the live gauge of checked-out pooled buffers.
	// InUse > 0 at quiescence means a Get leaked without its Put.
	DoublePuts uint64
	InUse      int64

	// Classes lists the size classes that have seen traffic, smallest
	// first — the per-class view of where packing-buffer demand lands.
	Classes []ClassStats
}

// Add accumulates another pool's counters into s — the cross-shard
// aggregate view of an EngineSet. Classes are merged by size.
func (s *Stats) Add(o Stats) {
	s.Gets += o.Gets
	s.Reuses += o.Reuses
	s.Allocs += o.Allocs
	s.Puts += o.Puts
	s.Oversize += o.Oversize
	s.DoublePuts += o.DoublePuts
	s.InUse += o.InUse
	for _, oc := range o.Classes {
		merged := false
		for i := range s.Classes {
			if s.Classes[i].SizeElems == oc.SizeElems {
				s.Classes[i].Gets += oc.Gets
				s.Classes[i].Reuses += oc.Reuses
				s.Classes[i].Puts += oc.Puts
				merged = true
				break
			}
		}
		if !merged {
			s.Classes = append(s.Classes, oc)
		}
	}
	for i := 1; i < len(s.Classes); i++ {
		for j := i; j > 0 && s.Classes[j].SizeElems < s.Classes[j-1].SizeElems; j-- {
			s.Classes[j], s.Classes[j-1] = s.Classes[j-1], s.Classes[j]
		}
	}
}

// Snapshot returns the pool's current counters.
func (p *Pool) Snapshot() Stats {
	s := Stats{
		Gets:       p.gets.Load(),
		Reuses:     p.reuses.Load(),
		Allocs:     p.news.Load(),
		Puts:       p.puts.Load(),
		Oversize:   p.oversize.Load(),
		DoublePuts: p.doublePuts.Load(),
		InUse:      p.inUse.Load(),
	}
	for cl := range p.perClass {
		g := p.perClass[cl].gets.Load()
		if g == 0 {
			continue
		}
		s.Classes = append(s.Classes, ClassStats{
			SizeElems: 1 << (cl + minClassBits),
			Gets:      g,
			Reuses:    p.perClass[cl].reuses.Load(),
			Puts:      p.perClass[cl].puts.Load(),
		})
	}
	return s
}

func poolsFor[E vec.Float](p *Pool) *classPools {
	var z E
	if _, ok := any(z).(float32); ok {
		return &p.f32Pools
	}
	return &p.f64Pools
}

// classFor returns the smallest size class holding n elements.
func classFor(n int) int {
	bits := minClassBits
	for n > 1<<bits {
		bits++
	}
	return bits - minClassBits
}

// Get returns a buffer of exactly n elements from p, recycled when a
// same-class buffer is available. Contents are unspecified.
func Get[E vec.Float](p *Pool, n int) *Buf[E] {
	p.gets.Add(1)
	if n > 1<<maxClassBits {
		p.oversize.Add(1)
		return &Buf[E]{data: make([]E, n), class: -1}
	}
	cl := classFor(n)
	p.perClass[cl].gets.Add(1)
	p.inUse.Add(1)
	if v := poolsFor[E](p).classes[cl].Get(); v != nil {
		b := v.(*Buf[E])
		b.data = b.data[:n]
		b.state.Store(1)
		p.reuses.Add(1)
		p.perClass[cl].reuses.Add(1)
		return b
	}
	p.news.Add(1)
	b := &Buf[E]{data: make([]E, n, 1<<(cl+minClassBits)), class: cl}
	b.state.Store(1)
	return b
}

// Put recycles a buffer obtained from Get on the same pool. The caller
// must not use the buffer afterwards. A repeated Put of the same buffer
// is rejected (and counted) instead of corrupting the pool.
func Put[E vec.Float](p *Pool, b *Buf[E]) {
	if b == nil || b.class < 0 {
		return
	}
	if !b.state.CompareAndSwap(1, 0) {
		p.doublePuts.Add(1)
		return
	}
	p.inUse.Add(-1)
	p.puts.Add(1)
	p.perClass[b.class].puts.Add(1)
	b.data = b.data[:cap(b.data)]
	poolsFor[E](p).classes[b.class].Put(b)
}
