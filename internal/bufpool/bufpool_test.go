package bufpool

import "testing"

func TestClassRounding(t *testing.T) {
	cases := []struct{ n, capWant int }{
		{1, 256}, {255, 256}, {256, 256}, {257, 512}, {1000, 1024},
	}
	for _, c := range cases {
		b := Get[float64](c.n)
		if len(b.Slice()) != c.n {
			t.Errorf("Get(%d): len %d", c.n, len(b.Slice()))
		}
		if cap(b.Slice()) != c.capWant {
			t.Errorf("Get(%d): cap %d, want %d", c.n, cap(b.Slice()), c.capWant)
		}
		Put(b)
	}
}

func TestReuse(t *testing.T) {
	b := Get[float32](300)
	s := b.Slice()
	for i := range s {
		s[i] = float32(i)
	}
	Put(b)
	before := Snapshot()
	b2 := Get[float32](400) // same 512-class: should come back from the pool
	after := Snapshot()
	if after.Reuses == before.Reuses && after.Allocs > before.Allocs {
		// sync.Pool may drop buffers under GC pressure; only fail when the
		// pool allocated *and* nothing else explains it.
		t.Log("pool did not reuse (possible GC); counters:", after)
	}
	if len(b2.Slice()) != 400 {
		t.Errorf("reused len %d", len(b2.Slice()))
	}
	Put(b2)
}

func TestTypeSeparation(t *testing.T) {
	b32 := Get[float32](256)
	b64 := Get[float64](256)
	Put(b32)
	Put(b64)
	// A float64 Get after a float32 Put must never alias float32 storage;
	// the type assertion in Get would panic if pools were shared.
	b := Get[float64](256)
	b.Slice()[0] = 1
	Put(b)
}

func TestOversize(t *testing.T) {
	before := Snapshot()
	b := Get[float32]((1 << maxClassBits) + 1)
	if len(b.Slice()) != (1<<maxClassBits)+1 {
		t.Fatal("oversize length")
	}
	Put(b) // must be a no-op, not a pool insert
	after := Snapshot()
	if after.Oversize != before.Oversize+1 {
		t.Errorf("oversize not counted")
	}
	if after.Puts != before.Puts {
		t.Errorf("oversize buffer was pooled")
	}
}

// The in-use gauge pairs every Get with its Put: a nonzero value at
// quiescence is a leak, and a second Put of the same buffer is counted
// (and dropped) rather than corrupting the pool.
func TestLeakCounters(t *testing.T) {
	base := Snapshot()
	b1 := Get[float32](512)
	b2 := Get[float64](512)
	if d := Snapshot().InUse - base.InUse; d != 2 {
		t.Fatalf("after 2 Gets, InUse moved by %d, want 2", d)
	}
	Put(b1)
	Put(b2)
	if d := Snapshot().InUse - base.InUse; d != 0 {
		t.Fatalf("after paired Puts, InUse moved by %d, want 0 (leak)", d)
	}

	Put(b1) // double return: must be dropped, not recycled twice
	after := Snapshot()
	if after.DoublePuts != base.DoublePuts+1 {
		t.Errorf("double Put not counted: %d -> %d", base.DoublePuts, after.DoublePuts)
	}
	if after.InUse != base.InUse {
		t.Errorf("double Put corrupted the in-use gauge: %d vs %d", after.InUse, base.InUse)
	}

	// Oversize buffers bypass the pool and must not touch the gauge.
	ov := Get[float32]((1 << maxClassBits) + 1)
	if d := Snapshot().InUse - after.InUse; d != 0 {
		t.Errorf("oversize Get moved InUse by %d", d)
	}
	Put(ov)
	if d := Snapshot().InUse - after.InUse; d != 0 {
		t.Errorf("oversize Put moved InUse by %d", d)
	}
}
