package bufpool

import "testing"

func TestClassRounding(t *testing.T) {
	p := NewPool()
	cases := []struct{ n, capWant int }{
		{1, 256}, {255, 256}, {256, 256}, {257, 512}, {1000, 1024},
	}
	for _, c := range cases {
		b := Get[float64](p, c.n)
		if len(b.Slice()) != c.n {
			t.Errorf("Get(%d): len %d", c.n, len(b.Slice()))
		}
		if cap(b.Slice()) != c.capWant {
			t.Errorf("Get(%d): cap %d, want %d", c.n, cap(b.Slice()), c.capWant)
		}
		Put(p, b)
	}
}

func TestReuse(t *testing.T) {
	p := NewPool()
	b := Get[float32](p, 300)
	s := b.Slice()
	for i := range s {
		s[i] = float32(i)
	}
	Put(p, b)
	before := p.Snapshot()
	b2 := Get[float32](p, 400) // same 512-class: should come back from the pool
	after := p.Snapshot()
	if after.Reuses == before.Reuses && after.Allocs > before.Allocs {
		// sync.Pool may drop buffers under GC pressure; only fail when the
		// pool allocated *and* nothing else explains it.
		t.Log("pool did not reuse (possible GC); counters:", after)
	}
	if len(b2.Slice()) != 400 {
		t.Errorf("reused len %d", len(b2.Slice()))
	}
	Put(p, b2)
}

func TestTypeSeparation(t *testing.T) {
	p := NewPool()
	b32 := Get[float32](p, 256)
	b64 := Get[float64](p, 256)
	Put(p, b32)
	Put(p, b64)
	// A float64 Get after a float32 Put must never alias float32 storage;
	// the type assertion in Get would panic if pools were shared.
	b := Get[float64](p, 256)
	b.Slice()[0] = 1
	Put(p, b)
}

func TestOversize(t *testing.T) {
	p := NewPool()
	before := p.Snapshot()
	b := Get[float32](p, (1<<maxClassBits)+1)
	if len(b.Slice()) != (1<<maxClassBits)+1 {
		t.Fatal("oversize length")
	}
	Put(p, b) // must be a no-op, not a pool insert
	after := p.Snapshot()
	if after.Oversize != before.Oversize+1 {
		t.Errorf("oversize not counted")
	}
	if after.Puts != before.Puts {
		t.Errorf("oversize buffer was pooled")
	}
}

// The in-use gauge pairs every Get with its Put: a nonzero value at
// quiescence is a leak, and a second Put of the same buffer is counted
// (and dropped) rather than corrupting the pool.
func TestLeakCounters(t *testing.T) {
	p := NewPool()
	base := p.Snapshot()
	b1 := Get[float32](p, 512)
	b2 := Get[float64](p, 512)
	if d := p.Snapshot().InUse - base.InUse; d != 2 {
		t.Fatalf("after 2 Gets, InUse moved by %d, want 2", d)
	}
	Put(p, b1)
	Put(p, b2)
	if d := p.Snapshot().InUse - base.InUse; d != 0 {
		t.Fatalf("after paired Puts, InUse moved by %d, want 0 (leak)", d)
	}

	Put(p, b1) // double return: must be dropped, not recycled twice
	after := p.Snapshot()
	if after.DoublePuts != base.DoublePuts+1 {
		t.Errorf("double Put not counted: %d -> %d", base.DoublePuts, after.DoublePuts)
	}
	if after.InUse != base.InUse {
		t.Errorf("double Put corrupted the in-use gauge: %d vs %d", after.InUse, base.InUse)
	}

	// Oversize buffers bypass the pool and must not touch the gauge.
	ov := Get[float32](p, (1<<maxClassBits)+1)
	if d := p.Snapshot().InUse - after.InUse; d != 0 {
		t.Errorf("oversize Get moved InUse by %d", d)
	}
	Put(p, ov)
	if d := p.Snapshot().InUse - after.InUse; d != 0 {
		t.Errorf("oversize Put moved InUse by %d", d)
	}
}

// Two pools must be fully isolated: traffic on one never shows up in the
// other's counters or storage — the per-shard invariant EngineSet relies on.
func TestPoolIsolation(t *testing.T) {
	p1, p2 := NewPool(), NewPool()
	b := Get[float32](p1, 512)
	Put(p1, b)
	if s := p2.Snapshot(); s.Gets != 0 || s.Puts != 0 {
		t.Fatalf("pool 2 saw pool 1 traffic: %+v", s)
	}
	if s := p1.Snapshot(); s.Gets != 1 || s.Puts != 1 {
		t.Fatalf("pool 1 counters wrong: %+v", s)
	}
}

// Stats.Add merges per-class rows by size and keeps them sorted — the
// aggregate view an EngineSet exposes.
func TestStatsAdd(t *testing.T) {
	p1, p2 := NewPool(), NewPool()
	Put(p1, Get[float32](p1, 256))
	Put(p2, Get[float32](p2, 256))
	Put(p2, Get[float64](p2, 4096))
	s := p1.Snapshot()
	s.Add(p2.Snapshot())
	if s.Gets != 3 || s.Puts != 3 {
		t.Fatalf("aggregate totals wrong: %+v", s)
	}
	if len(s.Classes) != 2 || s.Classes[0].SizeElems != 256 || s.Classes[1].SizeElems != 4096 {
		t.Fatalf("aggregate classes wrong: %+v", s.Classes)
	}
	if s.Classes[0].Gets != 2 {
		t.Fatalf("256-class not merged: %+v", s.Classes[0])
	}
}
