package ktmpl

import (
	"fmt"

	"iatf/internal/asm"
)

// Register allocation of the GEMM templates (paper §4.2.1/§4.2.2).
//
// Real types (2mc + 2nc + mc·nc registers):
//
//	A ping-pong buffer b (0,1), block r:  V[b·mc + r]
//	B ping-pong buffer b, block c:        V[2mc + b·nc + c]
//	C accumulator (r, c):                 V[2(mc+nc) + c·mc + r]
//
// Complex types use register pairs (re, im) in the same arrangement
// (4mc + 4nc + 2mc·nc registers). For the 4×4 double-precision kernel this
// reproduces Figure 5 exactly: A in v0–v7, B in v8–v15, C in v16–v31.
type gemmGen struct {
	s    GEMMSpec
	prog asm.Prog
	// xStride, when nonzero, redirects the B-operand loads to the TRSM
	// rectangular form: X is read in place from pX with a per-column
	// stride instead of from a packed pB panel.
	xStride int
}

func (g *gemmGen) emit(in asm.Instr) { g.prog = append(g.prog, in) }

// aReg returns the register(s base index) of A buffer b, block r.
func (g *gemmGen) aReg(b, r, comp int) uint8 {
	if g.s.DT.IsComplex() {
		return uint8(2*(b*g.s.MC+r) + comp)
	}
	return uint8(b*g.s.MC + r)
}

func (g *gemmGen) bReg(b, c, comp int) uint8 {
	if g.s.DT.IsComplex() {
		return uint8(4*g.s.MC + 2*(b*g.s.NC+c) + comp)
	}
	return uint8(2*g.s.MC + b*g.s.NC + c)
}

func (g *gemmGen) cReg(r, c, comp int) uint8 {
	if g.s.DT.IsComplex() {
		return uint8(4*(g.s.MC+g.s.NC) + 2*(c*g.s.MC+r) + comp)
	}
	return uint8(2*(g.s.MC+g.s.NC) + c*g.s.MC + r)
}

// loadSeq loads nregs consecutive vector registers starting at reg from
// pointer p, advancing the pointer — the "ldp/add" idiom of Figure 5.
func (g *gemmGen) loadSeq(p asm.PReg, reg, nregs int, cmt string) {
	vl := g.s.vl()
	i := 0
	for ; i+1 < nregs; i += 2 {
		g.emit(asm.Instr{Op: asm.LDP, D: uint8(reg + i), D2: uint8(reg + i + 1), P: p, Comment: cmt})
		cmt = ""
		g.emit(asm.Instr{Op: asm.ADDI, P: p, Off: int32(2 * vl)})
	}
	if i < nregs {
		g.emit(asm.Instr{Op: asm.LDR, D: uint8(reg + i), P: p, Comment: cmt})
		g.emit(asm.Instr{Op: asm.ADDI, P: p, Off: int32(vl)})
	}
}

// loadA loads one K-step of A (mc blocks) into buffer b.
func (g *gemmGen) loadA(b int, cmt string) {
	g.loadSeq(asm.PA, int(g.aReg(b, 0, 0)), g.s.MC*g.s.comps(), cmt)
}

// loadB loads one K-step of B (nc blocks) into buffer b. In the TRSM
// rectangular form the operand is the unpacked X panel: one block per
// column at stride xStride, advancing one block row afterwards.
func (g *gemmGen) loadB(b int, cmt string) {
	if g.xStride == 0 {
		g.loadSeq(asm.PB, int(g.bReg(b, 0, 0)), g.s.NC*g.s.comps(), cmt)
		return
	}
	bl := g.s.blockLen()
	for c := 0; c < g.s.NC; c++ {
		off := int32(c * g.xStride * bl)
		if g.s.DT.IsComplex() {
			g.emit(asm.Instr{Op: asm.LDP, D: g.bReg(b, c, 0), D2: g.bReg(b, c, 1), P: asm.PX, Off: off, Comment: cmt})
		} else {
			g.emit(asm.Instr{Op: asm.LDR, D: g.bReg(b, c, 0), P: asm.PX, Off: off, Comment: cmt})
		}
		cmt = ""
	}
	g.emit(asm.Instr{Op: asm.ADDI, P: asm.PX, Off: int32(bl)})
}

// accMode selects the accumulation flavour of the templates: the normal
// GEMM form (TEMPLATE_I overwrites with FMUL, the rest accumulate), the
// FMLS form of the TRSM rectangular kernel (Eq. 4), or the FMLA form of
// the TRMM rectangular kernel — both latter forms preload the C registers
// and never FMUL.
type accMode int

const (
	modeNormal accMode = iota
	modeSub
	modeAdd
)

// compute emits the mc×nc (complex: 4·mc·nc) multiply-accumulate body for
// ping-pong buffer b.
func (g *gemmGen) compute(b int, first bool, mode accMode) {
	for c := 0; c < g.s.NC; c++ {
		for r := 0; r < g.s.MC; r++ {
			if g.s.DT.IsComplex() {
				g.computeComplex(b, r, c, first, mode)
				continue
			}
			op := asm.FMLA
			switch {
			case mode == modeSub:
				op = asm.FMLS
			case mode == modeNormal && first:
				op = asm.FMUL
			}
			g.emit(asm.Instr{Op: op, D: g.cReg(r, c, 0), A: g.aReg(b, r, 0), B: g.bReg(b, c, 0)})
		}
	}
}

// computeComplex emits the four-instruction complex multiply-accumulate:
//
//	Cre ±= Are·Bre ∓ Aim·Bim
//	Cim ±= Are·Bim ± Aim·Bre
func (g *gemmGen) computeComplex(b, r, c int, first bool, mode accMode) {
	ar, ai := g.aReg(b, r, 0), g.aReg(b, r, 1)
	br, bi := g.bReg(b, c, 0), g.bReg(b, c, 1)
	cr, ci := g.cReg(r, c, 0), g.cReg(r, c, 1)
	acc, inv := asm.FMLA, asm.FMLS
	if mode == modeSub {
		acc, inv = asm.FMLS, asm.FMLA
	}
	if first && mode == modeNormal {
		g.emit(asm.Instr{Op: asm.FMUL, D: cr, A: ar, B: br})
		g.emit(asm.Instr{Op: asm.FMLS, D: cr, A: ai, B: bi})
		g.emit(asm.Instr{Op: asm.FMUL, D: ci, A: ar, B: bi})
		g.emit(asm.Instr{Op: asm.FMLA, D: ci, A: ai, B: br})
		return
	}
	g.emit(asm.Instr{Op: acc, D: cr, A: ar, B: br})
	g.emit(asm.Instr{Op: inv, D: cr, A: ai, B: bi})
	g.emit(asm.Instr{Op: acc, D: ci, A: ar, B: bi})
	g.emit(asm.Instr{Op: acc, D: ci, A: ai, B: br})
}

// template emits one of the K-loop templates of Algorithm 2.
func (g *gemmGen) template(t TemplateID, mode accMode) {
	switch t {
	case TplI:
		g.loadA(0, "For I")
		g.loadA(1, "For M2")
		g.loadB(0, "For I")
		g.loadB(1, "For M2")
		g.compute(0, true, mode)
	case TplM1:
		g.loadA(1, "For M2")
		g.loadB(1, "For M2")
		g.compute(0, false, mode)
	case TplM2:
		g.loadA(0, "For M1")
		g.loadB(0, "For M1")
		g.compute(1, false, mode)
	case TplE:
		g.compute(1, false, mode)
	case TplSUB:
		g.loadA(0, "For SUB")
		g.loadB(0, "For SUB")
		g.compute(0, false, mode)
	case TplSAVE:
		g.save()
	}
}

// zeroC emits MOVI for every accumulator (the K==1 entry of Algorithm 3).
func (g *gemmGen) zeroC() {
	n := g.s.MC * g.s.NC * g.s.comps()
	base := int(g.cReg(0, 0, 0))
	for i := 0; i < n; i++ {
		g.emit(asm.Instr{Op: asm.MOVI, D: uint8(base + i)})
	}
}

// storeSeq writes nregs consecutive registers starting at reg to p at an
// immediate element offset.
func (g *gemmGen) storeSeq(p asm.PReg, reg, nregs, elemOff int) {
	vl := g.s.vl()
	i := 0
	for ; i+1 < nregs; i += 2 {
		g.emit(asm.Instr{Op: asm.STP, D: uint8(reg + i), D2: uint8(reg + i + 1), P: p, Off: int32(elemOff + i*vl)})
	}
	if i < nregs {
		g.emit(asm.Instr{Op: asm.STR, D: uint8(reg + i), P: p, Off: int32(elemOff + i*vl)})
	}
}

func (g *gemmGen) loadSeqAt(p asm.PReg, reg, nregs, elemOff int, cmt string) {
	vl := g.s.vl()
	i := 0
	for ; i+1 < nregs; i += 2 {
		g.emit(asm.Instr{Op: asm.LDP, D: uint8(reg + i), D2: uint8(reg + i + 1), P: p, Off: int32(elemOff + i*vl), Comment: cmt})
		cmt = ""
	}
	if i < nregs {
		g.emit(asm.Instr{Op: asm.LDR, D: uint8(reg + i), P: p, Off: int32(elemOff + i*vl), Comment: cmt})
	}
}

// save emits TEMPLATE_SAVE: originC ← originC + alpha·acc, column by
// column, reusing the (now dead) A/B registers for alpha and the loaded C
// values. Alpha lives at [pAl] (real) or [pAl], [pAl,#1] (complex re, im).
func (g *gemmGen) save() {
	mc, nc := g.s.MC, g.s.NC
	if !g.s.DT.IsComplex() {
		const valpha = 0
		g.emit(asm.Instr{Op: asm.LD1R, D: valpha, P: asm.PAlpha, Comment: "For SAVE: alpha"})
		for c := 0; c < nc; c++ {
			off := c * g.s.StrideC * g.s.blockLen()
			g.loadSeqAt(asm.PC, 1, mc, off, "originC")
			for r := 0; r < mc; r++ {
				g.emit(asm.Instr{Op: asm.FMLA, D: uint8(1 + r), A: g.cReg(r, c, 0), B: valpha})
			}
			g.storeSeq(asm.PC, 1, mc, off)
		}
		return
	}
	const valR, valI = 0, 1
	g.emit(asm.Instr{Op: asm.LD1R, D: valR, P: asm.PAlpha, Comment: "For SAVE: alpha.re"})
	g.emit(asm.Instr{Op: asm.LD1R, D: valI, P: asm.PAlpha, Off: 1, Comment: "For SAVE: alpha.im"})
	for c := 0; c < nc; c++ {
		off := c * g.s.StrideC * g.s.blockLen()
		g.loadSeqAt(asm.PC, 2, 2*mc, off, "originC")
		for r := 0; r < mc; r++ {
			or, oi := uint8(2+2*r), uint8(2+2*r+1)
			cr, ci := g.cReg(r, c, 0), g.cReg(r, c, 1)
			g.emit(asm.Instr{Op: asm.FMLA, D: or, A: cr, B: valR})
			g.emit(asm.Instr{Op: asm.FMLS, D: or, A: ci, B: valI})
			g.emit(asm.Instr{Op: asm.FMLA, D: oi, A: ci, B: valR})
			g.emit(asm.Instr{Op: asm.FMLA, D: oi, A: cr, B: valI})
		}
		g.storeSeq(asm.PC, 2, 2*mc, off)
	}
}

// body emits the K-loop template sequence of Algorithm 3. sub selects the
// TRSM rectangular variant: FMLS accumulation onto preloaded C registers
// and no TEMPLATE_SAVE scaling.
//
// For odd K ≥ 5 the paper's pseudo-code ends with SUB directly after M2,
// which would re-advance pA/pB past data M2 already consumed; the
// generator instead ends M1, E, SUB, which computes the same K steps with
// each packed element loaded exactly once.
func (g *gemmGen) body(mode accMode) {
	k := g.s.K
	switch {
	case k == 1:
		if mode == modeNormal {
			g.zeroC()
		}
		g.template(TplSUB, mode)
	case k == 2:
		g.template(TplI, mode)
		g.template(TplE, mode)
	case k == 3:
		g.template(TplI, mode)
		g.template(TplE, mode)
		g.template(TplSUB, mode)
	default:
		g.template(TplI, mode)
		g.template(TplM2, mode)
		k -= 2
		for k > 3 {
			g.template(TplM1, mode)
			g.template(TplM2, mode)
			k -= 2
		}
		g.template(TplM1, mode)
		g.template(TplE, mode)
		if k == 3 {
			g.template(TplSUB, mode)
		}
	}
}

// GenGEMM generates the complete compact GEMM computing kernel for the
// spec: the Algorithm 3 template composition followed by TEMPLATE_SAVE.
// Calling convention: pA → packed A panel (N-shape), pB → packed B panel
// (Z-shape), pC → C tile, pAl → alpha.
func GenGEMM(s GEMMSpec) (asm.Prog, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g := &gemmGen{s: s}
	g.body(modeNormal)
	g.template(TplSAVE, modeNormal)
	return g.prog, nil
}

// GenGEMMNoPingPong generates the kernel without the ping-pong double
// buffering: every K step is a TEMPLATE_SUB (load what you need, compute).
// This is the ablation baseline for the paper's pipeline-bubble argument —
// each step's computation directly depends on the loads just issued.
func GenGEMMNoPingPong(s GEMMSpec) (asm.Prog, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g := &gemmGen{s: s}
	g.zeroC()
	for l := 0; l < s.K; l++ {
		g.template(TplSUB, modeNormal)
	}
	g.template(TplSAVE, modeNormal)
	return g.prog, nil
}

// GenGEMMTemplate generates a single template in isolation — the form the
// paper's Figure 5 displays (TEMPLATE_I of the 4×4 DGEMM kernel).
func GenGEMMTemplate(s GEMMSpec, t TemplateID) (asm.Prog, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g := &gemmGen{s: s}
	g.template(t, modeNormal)
	return g.prog, nil
}

// GEMMFirstIsFirstK reports K-step accounting used by tests: total A
// blocks loaded by a generated kernel must equal MC·K.
func GEMMFirstIsFirstK(s GEMMSpec, p asm.Prog) error {
	wantA := s.MC * s.comps() * s.K
	got := 0
	for _, in := range p {
		if in.Op == asm.LDP && in.P == asm.PA {
			got += 2
		}
		if in.Op == asm.LDR && in.P == asm.PA {
			got++
		}
	}
	if got != wantA {
		return fmt.Errorf("ktmpl: kernel loads %d A registers, want %d", got, wantA)
	}
	return nil
}
