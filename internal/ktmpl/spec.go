// Package ktmpl implements the install-time kernel machinery of IATF: the
// six abstract GEMM computing-kernel templates (paper Algorithm 2), the
// computing-kernel generator that composes them by K (Algorithm 3), the
// register-resident TRSM triangular kernel (Algorithm 4), the FMLS-based
// TRSM rectangular kernel (Eq. 4), the compute-to-memory-access-ratio
// (CMAR) analysis that fixes the optimal kernel sizes (Eq. 2/3), and the
// Table 1 kernel-size registry.
//
// Kernels are emitted as asm.Prog instruction sequences. Because the IR is
// straight-line (real IATF kernels carry their K-loop in generated
// assembly), a kernel is generated per concrete parameter tuple and cached
// by the run-time stage.
package ktmpl

import (
	"fmt"

	"iatf/internal/vec"
)

// Op distinguishes the two level-3 routines IATF generates kernels for.
type Op int

const (
	GEMM Op = iota
	TRSM
)

func (o Op) String() string {
	if o == TRSM {
		return "trsm"
	}
	return "gemm"
}

// GEMMSpec fully determines one generated compact GEMM kernel.
type GEMMSpec struct {
	DT vec.DType
	MC int // C-tile rows (in element blocks)
	NC int // C-tile columns
	K  int // reduction length
	// StrideC is the distance in element blocks between consecutive
	// columns of the C tile inside the compact batch (the matrix row
	// count M).
	StrideC int
	// VL is the vector lane count of the real component type. Zero means
	// the native 128-bit value (4 for S/C, 2 for D/Z); the MKL-compact
	// model generates the same kernels at AVX-512 widths.
	VL int
}

func (s GEMMSpec) vl() int {
	if s.VL != 0 {
		return s.VL
	}
	return s.DT.Pack()
}

// comps is the number of vector registers one element block occupies
// (2 for complex: re and im planes).
func (s GEMMSpec) comps() int {
	if s.DT.IsComplex() {
		return 2
	}
	return 1
}

// blockLen is the element footprint of one block: VL·comps.
func (s GEMMSpec) blockLen() int { return s.vl() * s.comps() }

// Validate checks the register budget the templates assume.
func (s GEMMSpec) Validate() error {
	if s.MC < 1 || s.NC < 1 {
		return fmt.Errorf("ktmpl: kernel size %dx%d invalid", s.MC, s.NC)
	}
	if s.K < 1 {
		return fmt.Errorf("ktmpl: K=%d invalid", s.K)
	}
	if s.StrideC < s.MC {
		return fmt.Errorf("ktmpl: StrideC=%d smaller than MC=%d", s.StrideC, s.MC)
	}
	need := RegistersNeeded(s.DT, s.MC, s.NC)
	if need > 32 {
		return fmt.Errorf("ktmpl: %v %dx%d kernel needs %d vector registers (max 32)", s.DT, s.MC, s.NC, need)
	}
	return nil
}

// RegistersNeeded returns the vector-register demand of an mc×nc kernel
// with ping-pong double buffering: 2mc+2nc+mc·nc for real types (paper
// §4.2.1) and 4mc+4nc+2mc·nc for complex (paper §4.2.2).
func RegistersNeeded(dt vec.DType, mc, nc int) int {
	if dt.IsComplex() {
		return 4*mc + 4*nc + 2*mc*nc
	}
	return 2*mc + 2*nc + mc*nc
}

// CMAR returns the compute-to-memory-access ratio of an mc×nc kernel:
// Eq. 2 (mc·nc/(mc+nc)) for real types and Eq. 3 (4mc·nc/2(mc+nc)) for
// complex.
func CMAR(dt vec.DType, mc, nc int) float64 {
	m, n := float64(mc), float64(nc)
	if dt.IsComplex() {
		return 4 * m * n / (2 * (m + n))
	}
	return m * n / (m + n)
}

// OptimalKernel returns the (mc, nc) maximizing CMAR under the 32-register
// budget — the paper's install-time kernel-size analysis. Ties prefer the
// larger mc (the paper picks 3×2 over 2×3 for complex).
func OptimalKernel(dt vec.DType) (mc, nc int) {
	best := -1.0
	for m := 1; m <= 8; m++ {
		for n := 1; n <= 8; n++ {
			if RegistersNeeded(dt, m, n) > 32 {
				continue
			}
			r := CMAR(dt, m, n)
			if r > best || (r == best && m > mc) {
				best, mc, nc = r, m, n
			}
		}
	}
	return mc, nc
}

// TemplateID names the six abstract templates of Algorithm 2.
type TemplateID int

const (
	TplI TemplateID = iota
	TplM1
	TplM2
	TplE
	TplSUB
	TplSAVE
)

var tplNames = [...]string{"TEMPLATE_I", "TEMPLATE_M1", "TEMPLATE_M2", "TEMPLATE_E", "TEMPLATE_SUB", "TEMPLATE_SAVE"}

func (t TemplateID) String() string {
	if int(t) < len(tplNames) {
		return tplNames[t]
	}
	return fmt.Sprintf("TEMPLATE(%d)", int(t))
}
