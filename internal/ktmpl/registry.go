package ktmpl

import "iatf/internal/vec"

// Size is a kernel tile size (rows × columns in element blocks).
type Size struct{ MC, NC int }

// MainGEMMKernel returns the CMAR-optimal main kernel size of Table 1:
// 4×4 for s/d, 3×2 for c/z.
func MainGEMMKernel(dt vec.DType) Size {
	if dt.IsComplex() {
		return Size{3, 2}
	}
	return Size{4, 4}
}

// GEMMKernelSizes returns every generated compact GEMM kernel size for a
// data type — the main kernel plus all edge kernels of Table 1.
func GEMMKernelSizes(dt vec.DType) []Size {
	var out []Size
	if dt.IsComplex() {
		// Main 3×2; edge 3×1, 2×{1,2}, 1×{1,2}.
		for mc := 3; mc >= 1; mc-- {
			for nc := 2; nc >= 1; nc-- {
				if RegistersNeeded(dt, mc, nc) <= 32 {
					out = append(out, Size{mc, nc})
				}
			}
		}
		return out
	}
	// Main 4×4; edge 4×{1,2,3}, 3×{1..4}, 2×{1..4}, 1×{1..4}.
	for mc := 4; mc >= 1; mc-- {
		for nc := 4; nc >= 1; nc-- {
			out = append(out, Size{mc, nc})
		}
	}
	return out
}

// MainTRSMKernel returns the main rectangular TRSM kernel size of
// Table 1: 4×4 for s/d, 2×2 for c/z.
func MainTRSMKernel(dt vec.DType) Size {
	if dt.IsComplex() {
		return Size{2, 2}
	}
	return Size{4, 4}
}

// TRSMPanel returns the triangular panel width the blocked TRSM uses —
// equal to the main rectangular kernel height.
func TRSMPanel(dt vec.DType) int { return MainTRSMKernel(dt).MC }

// TRSMRectSizes returns every generated TRSM rectangular kernel size:
// Table 1 lists {4,3,2,1}×4 for s/d and {2,1}×2 for c/z; narrower column
// tails reuse the same row heights with nc < main.
func TRSMRectSizes(dt vec.DType) []Size {
	var out []Size
	main := MainTRSMKernel(dt)
	for mc := main.MC; mc >= 1; mc-- {
		for nc := main.NC; nc >= 1; nc-- {
			out = append(out, Size{mc, nc})
		}
	}
	return out
}

// MTiles returns the row-panel heights available when tiling the M
// dimension of a compact GEMM (the mc values of Table 1).
func MTiles(dt vec.DType) []int {
	if dt.IsComplex() {
		return []int{3, 2, 1}
	}
	return []int{4, 3, 2, 1}
}

// NTiles returns the column-panel widths available when tiling N.
func NTiles(dt vec.DType) []int {
	if dt.IsComplex() {
		return []int{2, 1}
	}
	return []int{4, 3, 2, 1}
}

// SplitDim partitions a dimension of size n into tiles drawn from the
// allowed sizes, minimizing first the number of tiles and then the number
// of unit-width tiles — e.g. 15 with {4,3,2,1} becomes [4 4 4 3], the
// decomposition Figure 4(b) shows for 15×15 SGEMM, and 4 with {3,2,1}
// becomes [2 2] rather than [3 1].
func SplitDim(n int, sizes []int) []int {
	if n <= 0 {
		return nil
	}
	const inf = int(1e9)
	type st struct{ tiles, units, first int }
	dp := make([]st, n+1)
	for i := 1; i <= n; i++ {
		dp[i] = st{inf, inf, 0}
		for _, sz := range sizes {
			if sz > i {
				continue
			}
			cand := st{dp[i-sz].tiles + 1, dp[i-sz].units, sz}
			if sz == 1 {
				cand.units++
			}
			if cand.tiles < dp[i].tiles ||
				(cand.tiles == dp[i].tiles && cand.units < dp[i].units) ||
				(cand.tiles == dp[i].tiles && cand.units == dp[i].units && sz > dp[i].first) {
				dp[i] = cand
			}
		}
	}
	if dp[n].tiles >= inf {
		return nil
	}
	var out []int
	for i := n; i > 0; i -= dp[i].first {
		out = append(out, dp[i].first)
	}
	return out
}
