package ktmpl

import (
	"math/rand"
	"strings"
	"testing"

	"iatf/internal/asm"
	"iatf/internal/vec"
)

// packedGEMMData synthesizes the packed operand buffers one kernel
// invocation consumes, for one interleave group of P matrices:
//
//	pA: K steps × mc blocks (N-shape panel)
//	pB: K steps × nc blocks (Z-shape panel)
//	pC: C tile, column c at StrideC blocks
//
// Complex blocks are [re lanes | im lanes].
type packedGEMMData[E vec.Float] struct {
	mem                []E
	pa, pb, pc, palpha int
	a, b, c            [][][]complex128 // [lane][row][col] logical values
	alpha              complex128
}

func buildGEMM[E vec.Float](rng *rand.Rand, s GEMMSpec) *packedGEMMData[E] {
	vl := s.vl()
	comps := s.comps()
	bl := s.blockLen()
	d := &packedGEMMData[E]{alpha: complex(1.5, 0)}
	if s.DT.IsComplex() {
		d.alpha = complex(1.5, -0.5)
	}
	randVal := func() complex128 {
		if s.DT.IsComplex() {
			return complex(rng.Float64(), rng.Float64())
		}
		return complex(rng.Float64(), 0)
	}
	alloc3 := func(rows, cols int) [][][]complex128 {
		out := make([][][]complex128, vl)
		for l := range out {
			out[l] = make([][]complex128, rows)
			for r := range out[l] {
				out[l][r] = make([]complex128, cols)
				for c := range out[l][r] {
					out[l][r][c] = randVal()
				}
			}
		}
		return out
	}
	d.a = alloc3(s.MC, s.K)
	d.b = alloc3(s.K, s.NC)
	d.c = alloc3(s.MC, s.NC)

	writeBlock := func(mem []E, off int, vals func(lane int) complex128) {
		for lane := 0; lane < vl; lane++ {
			v := vals(lane)
			mem[off+lane] = E(real(v))
			if comps == 2 {
				mem[off+vl+lane] = E(imag(v))
			}
		}
	}

	lenA := s.K * s.MC * bl
	lenB := s.K * s.NC * bl
	lenC := s.NC * s.StrideC * bl
	d.pa, d.pb, d.pc = 0, lenA, lenA+lenB
	d.palpha = d.pc + lenC
	d.mem = make([]E, d.palpha+2)

	for k := 0; k < s.K; k++ {
		for r := 0; r < s.MC; r++ {
			writeBlock(d.mem, d.pa+(k*s.MC+r)*bl, func(l int) complex128 { return d.a[l][r][k] })
		}
		for c := 0; c < s.NC; c++ {
			writeBlock(d.mem, d.pb+(k*s.NC+c)*bl, func(l int) complex128 { return d.b[l][k][c] })
		}
	}
	for c := 0; c < s.NC; c++ {
		for r := 0; r < s.MC; r++ {
			writeBlock(d.mem, d.pc+(c*s.StrideC+r)*bl, func(l int) complex128 { return d.c[l][r][c] })
		}
	}
	d.mem[d.palpha] = E(real(d.alpha))
	d.mem[d.palpha+1] = E(imag(d.alpha))
	return d
}

// want returns the expected C value: C + alpha·A·B.
func (d *packedGEMMData[E]) want(s GEMMSpec, lane, r, c int) complex128 {
	sum := complex(0, 0)
	for k := 0; k < s.K; k++ {
		sum += d.a[lane][r][k] * d.b[lane][k][c]
	}
	return d.c[lane][r][c] + d.alpha*sum
}

// got reads back the computed C value from packed memory.
func (d *packedGEMMData[E]) got(s GEMMSpec, lane, r, c int) complex128 {
	off := d.pc + (c*s.StrideC+r)*s.blockLen() + lane
	re := float64(d.mem[off])
	im := 0.0
	if s.comps() == 2 {
		im = float64(d.mem[off+s.vl()])
	}
	return complex(re, im)
}

func runGEMMKernel[E vec.Float](t *testing.T, s GEMMSpec, prog asm.Prog) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(1000*s.MC + 100*s.NC + s.K)))
	d := buildGEMM[E](rng, s)
	vm := &asm.VM[E]{Mem: d.mem}
	vm.P[asm.PA] = d.pa
	vm.P[asm.PB] = d.pb
	vm.P[asm.PC] = d.pc
	vm.P[asm.PAlpha] = d.palpha
	if err := vm.Run(prog); err != nil {
		t.Fatalf("%v %dx%d K=%d: %v", s.DT, s.MC, s.NC, s.K, err)
	}
	tol := 1e-12 * float64(s.K+1)
	var e E
	if _, ok := any(e).(float32); ok {
		tol = 1e-4 * float64(s.K+1)
	}
	for lane := 0; lane < s.vl(); lane++ {
		for r := 0; r < s.MC; r++ {
			for c := 0; c < s.NC; c++ {
				w, g := d.want(s, lane, r, c), d.got(s, lane, r, c)
				if dabs(real(w)-real(g)) > tol || dabs(imag(w)-imag(g)) > tol {
					t.Fatalf("%v %dx%d K=%d lane=%d C(%d,%d) = %v, want %v",
						s.DT, s.MC, s.NC, s.K, lane, r, c, g, w)
				}
			}
		}
	}
}

func dabs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Every Table 1 kernel size × every K composition path must compute
// C + alpha·A·B exactly, for all four data types.
func TestGenGEMMCorrectAllSizes(t *testing.T) {
	ks := []int{1, 2, 3, 4, 5, 6, 7, 8, 13}
	for _, dt := range vec.DTypes {
		for _, sz := range GEMMKernelSizes(dt) {
			for _, k := range ks {
				s := GEMMSpec{DT: dt, MC: sz.MC, NC: sz.NC, K: k, StrideC: sz.MC + 2}
				prog, err := GenGEMM(s)
				if err != nil {
					t.Fatalf("%v %dx%d K=%d: %v", dt, sz.MC, sz.NC, k, err)
				}
				if err := GEMMFirstIsFirstK(s, prog); err != nil {
					t.Fatal(err)
				}
				switch dt.Real() {
				case vec.S:
					runGEMMKernel[float32](t, s, prog)
				default:
					runGEMMKernel[float64](t, s, prog)
				}
			}
		}
	}
}

// No generated kernel may reference a vector register beyond V31 or leave
// the defined pointer set.
func TestGeneratedKernelsRespectRegisterFile(t *testing.T) {
	for _, dt := range vec.DTypes {
		for _, sz := range GEMMKernelSizes(dt) {
			s := GEMMSpec{DT: dt, MC: sz.MC, NC: sz.NC, K: 9, StrideC: sz.MC}
			prog, err := GenGEMM(s)
			if err != nil {
				t.Fatal(err)
			}
			for i, in := range prog {
				for _, r := range []uint8{in.D, in.D2, in.A, in.B} {
					if r >= asm.NumVRegs {
						t.Fatalf("%v %dx%d instr %d uses V%d", dt, sz.MC, sz.NC, i, r)
					}
				}
				if in.P >= asm.NumPRegs {
					t.Fatalf("%v %dx%d instr %d uses pointer %d", dt, sz.MC, sz.NC, i, in.P)
				}
			}
		}
	}
}

// The generated TEMPLATE_I of the 4×4 DGEMM kernel must match the
// "original code" column of Figure 5: A into q0–q7, B into q8–q15 with
// interleaved pointer bumps, then the 16 FMULs v16–v31 in column order.
func TestFigure5OriginalTemplateI(t *testing.T) {
	s := GEMMSpec{DT: vec.D, MC: 4, NC: 4, K: 4, StrideC: 4}
	prog, err := GenGEMMTemplate(s, TplI)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	syn := asm.SyntaxFor(8)
	for _, in := range prog {
		f := syn.Format(in)
		if i := strings.Index(f, "//"); i >= 0 {
			f = strings.TrimSpace(f[:i])
		}
		lines = append(lines, f)
	}
	want := []string{
		"ldp q0, q1, [pA]",
		"add pA, pA, #32",
		"ldp q2, q3, [pA]",
		"add pA, pA, #32",
		"ldp q4, q5, [pA]",
		"add pA, pA, #32",
		"ldp q6, q7, [pA]",
		"add pA, pA, #32",
		"ldp q8, q9, [pB]",
		"add pB, pB, #32",
		"ldp q10, q11, [pB]",
		"add pB, pB, #32",
		"ldp q12, q13, [pB]",
		"add pB, pB, #32",
		"ldp q14, q15, [pB]",
		"add pB, pB, #32",
		"fmul v16.2d, v0.2d, v8.2d",
		"fmul v17.2d, v1.2d, v8.2d",
		"fmul v18.2d, v2.2d, v8.2d",
		"fmul v19.2d, v3.2d, v8.2d",
		"fmul v20.2d, v0.2d, v9.2d",
		"fmul v21.2d, v1.2d, v9.2d",
		"fmul v22.2d, v2.2d, v9.2d",
		"fmul v23.2d, v3.2d, v9.2d",
		"fmul v24.2d, v0.2d, v10.2d",
		"fmul v25.2d, v1.2d, v10.2d",
		"fmul v26.2d, v2.2d, v10.2d",
		"fmul v27.2d, v3.2d, v10.2d",
		"fmul v28.2d, v0.2d, v11.2d",
		"fmul v29.2d, v1.2d, v11.2d",
		"fmul v30.2d, v2.2d, v11.2d",
		"fmul v31.2d, v3.2d, v11.2d",
	}
	if len(lines) != len(want) {
		t.Fatalf("TEMPLATE_I has %d instructions, want %d:\n%s", len(lines), len(want), strings.Join(lines, "\n"))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

// The per-K-step instruction counts of the templates must match
// Algorithm 2: M1/M2/SUB load mc+nc blocks and compute mc·nc FMAs; E only
// computes.
func TestTemplateShape(t *testing.T) {
	s := GEMMSpec{DT: vec.S, MC: 4, NC: 4, K: 8, StrideC: 4}
	counts := func(tpl TemplateID) (mem, fp int) {
		p, err := GenGEMMTemplate(s, tpl)
		if err != nil {
			t.Fatal(err)
		}
		return p.Counts()
	}
	if mem, fp := counts(TplI); mem != 8 || fp != 16 { // 2 steps of (4+4) = 8 LDPs
		t.Errorf("I: mem=%d fp=%d, want 8/16", mem, fp)
	}
	for _, tpl := range []TemplateID{TplM1, TplM2, TplSUB} {
		if mem, fp := counts(tpl); mem != 4 || fp != 16 {
			t.Errorf("%v: mem=%d fp=%d, want 4/16", tpl, mem, fp)
		}
	}
	if mem, fp := counts(TplE); mem != 0 || fp != 16 {
		t.Errorf("E: mem=%d fp=%d, want 0/16", mem, fp)
	}
	// SAVE: per column 2 LDPs + 4 FMAs + 2 STPs, plus the alpha ld1r.
	if mem, fp := counts(TplSAVE); mem != 4*4+1 || fp != 16 {
		t.Errorf("SAVE: mem=%d fp=%d, want 17/16", mem, fp)
	}
}

// Complex kernels must carry 4 FP instructions per element per K step —
// the numerator of Eq. 3.
func TestComplexTemplateShape(t *testing.T) {
	s := GEMMSpec{DT: vec.Z, MC: 3, NC: 2, K: 8, StrideC: 3}
	p, err := GenGEMMTemplate(s, TplM1)
	if err != nil {
		t.Fatal(err)
	}
	mem, fp := p.Counts()
	if fp != 4*3*2 {
		t.Errorf("complex M1 fp = %d, want 24", fp)
	}
	// Loads: (mc+nc)·2 registers = 10 regs = 5 LDPs.
	if mem != 5 {
		t.Errorf("complex M1 mem = %d, want 5", mem)
	}
}

// Kernels generated at AVX-512 lane widths (the MKL-compact model) must
// still compute correctly at NEON widths ≤ 4 and scale their offsets.
func TestVLOverrideScalesOffsets(t *testing.T) {
	s2 := GEMMSpec{DT: vec.D, MC: 2, NC: 2, K: 2, StrideC: 2, VL: 2}
	s8 := GEMMSpec{DT: vec.D, MC: 2, NC: 2, K: 2, StrideC: 2, VL: 8}
	p2, err := GenGEMM(s2)
	if err != nil {
		t.Fatal(err)
	}
	p8, err := GenGEMM(s8)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2) != len(p8) {
		t.Fatalf("instruction counts differ: %d vs %d", len(p2), len(p8))
	}
	for i := range p2 {
		if p2[i].Op == asm.ADDI && p8[i].Off != 4*p2[i].Off {
			t.Errorf("instr %d: VL=8 offset %d, want %d", i, p8[i].Off, 4*p2[i].Off)
		}
	}
}
