package ktmpl

import (
	"fmt"

	"iatf/internal/asm"
	"iatf/internal/vec"
)

// MaxTriM returns the largest triangular-block size whose A triangle fits
// in registers alongside a ping-pong pair of B columns (paper §4.2.2):
// 2M + M(M+1)/2 ≤ 32 gives M ≤ 5 for real types; the complex equivalent
// 4M + M(M+1) ≤ 32 gives M ≤ 3.
func MaxTriM(dt vec.DType) int {
	if dt.IsComplex() {
		return 3
	}
	return 5
}

// TriRegistersNeeded returns the vector-register demand of the triangular
// kernel for block size m.
func TriRegistersNeeded(dt vec.DType, m int) int {
	if dt.IsComplex() {
		return 4*m + m*(m+1)
	}
	return 2*m + m*(m+1)/2
}

// TriSpec determines one generated compact TRSM triangular kernel
// (Algorithm 4). The kernel solves the canonical form — lower triangular,
// non-transposed — against NCols columns of B in place; the packing stage
// canonicalizes every Side/Uplo/Trans/Diag mode into this form, with the
// diagonal stored as reciprocals so the kernel multiplies instead of
// dividing.
//
// Calling convention: pA → packed triangle (row-wise, M(M+1)/2 blocks),
// pB → first B column of the tile. Column c of B lives at element offset
// c·StrideB·blockLen from pB.
type TriSpec struct {
	DT      vec.DType
	M       int // triangle size, 1..MaxTriM
	NCols   int // columns of B solved by this kernel
	StrideB int // blocks between consecutive B columns in storage
	VL      int // lane override (0 = native)
	// DivDiag emits FDIV by the (non-reciprocal) diagonal instead of FMUL
	// by the packed reciprocal — the ablation for the reciprocal-diagonal
	// packing design (§4.4). Real types only.
	DivDiag bool
}

func (s TriSpec) vl() int {
	if s.VL != 0 {
		return s.VL
	}
	return s.DT.Pack()
}

func (s TriSpec) comps() int {
	if s.DT.IsComplex() {
		return 2
	}
	return 1
}

func (s TriSpec) blockLen() int { return s.vl() * s.comps() }

// Validate checks the register budget of Algorithm 4.
func (s TriSpec) Validate() error {
	if s.M < 1 || s.M > MaxTriM(s.DT) {
		return fmt.Errorf("ktmpl: triangular kernel M=%d outside 1..%d for %v", s.M, MaxTriM(s.DT), s.DT)
	}
	if s.NCols < 1 {
		return fmt.Errorf("ktmpl: triangular kernel NCols=%d invalid", s.NCols)
	}
	if s.StrideB < s.M {
		return fmt.Errorf("ktmpl: StrideB=%d smaller than M=%d", s.StrideB, s.M)
	}
	if s.DivDiag && s.DT.IsComplex() {
		return fmt.Errorf("ktmpl: DivDiag ablation is real-only")
	}
	return nil
}

type triGen struct {
	s    TriSpec
	prog asm.Prog
}

func (g *triGen) emit(in asm.Instr) { g.prog = append(g.prog, in) }

// bReg returns the register of B row i in ping-pong buffer b.
func (g *triGen) bReg(b, i, comp int) uint8 {
	return uint8((b*g.s.M+i)*g.s.comps() + comp)
}

// aReg returns the register of triangle block (i, j), j ≤ i, stored
// row-wise after the B buffers.
func (g *triGen) aReg(i, j, comp int) uint8 {
	base := 2 * g.s.M * g.s.comps()
	return uint8(base + (i*(i+1)/2+j)*g.s.comps() + comp)
}

// scratch registers for the in-place complex diagonal multiply; the
// register budget proof (TriRegistersNeeded ≤ 24 for complex M ≤ 3)
// guarantees V30/V31 are free.
const (
	triScratch0 = 30
	triScratch1 = 31
)

// loadCol loads B column c into buffer b at its storage offset.
func (g *triGen) loadCol(b, c int, cmt string) {
	off := c * g.s.StrideB * g.s.blockLen()
	n := g.s.M * g.s.comps()
	reg := int(g.bReg(b, 0, 0))
	vl := g.s.vl()
	i := 0
	for ; i+1 < n; i += 2 {
		g.emit(asm.Instr{Op: asm.LDP, D: uint8(reg + i), D2: uint8(reg + i + 1), P: asm.PB, Off: int32(off + i*vl), Comment: cmt})
		cmt = ""
	}
	if i < n {
		g.emit(asm.Instr{Op: asm.LDR, D: uint8(reg + i), P: asm.PB, Off: int32(off + i*vl), Comment: cmt})
	}
}

// storeCol writes buffer b back to B column c.
func (g *triGen) storeCol(b, c int) {
	off := c * g.s.StrideB * g.s.blockLen()
	n := g.s.M * g.s.comps()
	reg := int(g.bReg(b, 0, 0))
	vl := g.s.vl()
	i := 0
	for ; i+1 < n; i += 2 {
		g.emit(asm.Instr{Op: asm.STP, D: uint8(reg + i), D2: uint8(reg + i + 1), P: asm.PB, Off: int32(off + i*vl)})
	}
	if i < n {
		g.emit(asm.Instr{Op: asm.STR, D: uint8(reg + i), P: asm.PB, Off: int32(off + i*vl)})
	}
}

// solveCol emits the forward substitution of Algorithm 4 lines 6–9 for the
// column in buffer b: for each row i, subtract the already-solved rows and
// multiply by the reciprocal diagonal.
func (g *triGen) solveCol(b int) {
	for i := 0; i < g.s.M; i++ {
		for j := 0; j < i; j++ {
			if g.s.DT.IsComplex() {
				// B[i] -= A(i,j)·B[j], complex.
				bir, bii := g.bReg(b, i, 0), g.bReg(b, i, 1)
				ar, ai := g.aReg(i, j, 0), g.aReg(i, j, 1)
				xr, xi := g.bReg(b, j, 0), g.bReg(b, j, 1)
				g.emit(asm.Instr{Op: asm.FMLS, D: bir, A: ar, B: xr})
				g.emit(asm.Instr{Op: asm.FMLA, D: bir, A: ai, B: xi})
				g.emit(asm.Instr{Op: asm.FMLS, D: bii, A: ar, B: xi})
				g.emit(asm.Instr{Op: asm.FMLS, D: bii, A: ai, B: xr})
				continue
			}
			g.emit(asm.Instr{Op: asm.FMLS, D: g.bReg(b, i, 0), A: g.aReg(i, j, 0), B: g.bReg(b, j, 0)})
		}
		// Multiply by the reciprocal diagonal (packing stored 1/a_ii).
		if g.s.DT.IsComplex() {
			br, bi := g.bReg(b, i, 0), g.bReg(b, i, 1)
			dr, di := g.aReg(i, i, 0), g.aReg(i, i, 1)
			g.emit(asm.Instr{Op: asm.MOVV, D: triScratch0, A: br})
			g.emit(asm.Instr{Op: asm.MOVV, D: triScratch1, A: bi})
			g.emit(asm.Instr{Op: asm.FMUL, D: br, A: triScratch0, B: dr})
			g.emit(asm.Instr{Op: asm.FMLS, D: br, A: triScratch1, B: di})
			g.emit(asm.Instr{Op: asm.FMUL, D: bi, A: triScratch0, B: di})
			g.emit(asm.Instr{Op: asm.FMLA, D: bi, A: triScratch1, B: dr})
			continue
		}
		r := g.bReg(b, i, 0)
		op := asm.FMUL
		if g.s.DivDiag {
			op = asm.FDIV
		}
		g.emit(asm.Instr{Op: op, D: r, A: r, B: g.aReg(i, i, 0)})
	}
}

// GenTRSMTri generates the triangular computing kernel: load the whole
// triangle into registers once (Algorithm 4 lines 1–3), then solve the B
// columns with ping-pong double buffering — while column l is being
// solved, column l+1 is already loading.
func GenTRSMTri(s TriSpec) (asm.Prog, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g := &triGen{s: s}
	// Load the packed triangle: M(M+1)/2 blocks, contiguous from pA.
	nregs := (s.M * (s.M + 1) / 2) * s.comps()
	base := int(g.aReg(0, 0, 0))
	vl := s.vl()
	cmt := "load triangle of A"
	i := 0
	for ; i+1 < nregs; i += 2 {
		g.emit(asm.Instr{Op: asm.LDP, D: uint8(base + i), D2: uint8(base + i + 1), P: asm.PA, Off: int32(i * vl), Comment: cmt})
		cmt = ""
	}
	if i < nregs {
		g.emit(asm.Instr{Op: asm.LDR, D: uint8(base + i), P: asm.PA, Off: int32(i * vl), Comment: cmt})
	}

	g.loadCol(0, 0, "For column 0")
	for l := 0; l < s.NCols; l++ {
		buf := l % 2
		if l+1 < s.NCols {
			g.loadCol(1-buf, l+1, fmt.Sprintf("For column %d", l+1))
		}
		g.solveCol(buf)
		g.storeCol(buf, l)
	}
	return g.prog, nil
}

// RectSpec determines one generated TRSM rectangular kernel — the
// fixed-format GEMM of Eq. 4 (alpha = −1, beta = 1) realized with FMLS so
// that the mc·nc extra multiplies of a general GEMM SAVE are not paid. The
// kernel updates a B tile in place:
//
//	B[tile] -= L(panel, 0..K-1) · X(0..K-1, tile)
//
// Calling convention: pA → packed L row panel (column-major blocks,
// contiguous), pX → solved X rows (column c at offset c·StrideX blocks),
// pC → B tile being updated (column c at offset c·StrideC blocks).
type RectSpec struct {
	DT      vec.DType
	MC      int // tile rows (panel height)
	NC      int // tile columns
	K       int // rows already solved above this panel
	StrideC int // blocks between B-tile columns (the matrix row count)
	StrideX int // blocks between X columns (the matrix row count)
	VL      int
}

func (s RectSpec) gemm() GEMMSpec {
	return GEMMSpec{DT: s.DT, MC: s.MC, NC: s.NC, K: s.K, StrideC: s.StrideC, VL: s.VL}
}

// Validate checks the register budget (same as the GEMM templates).
func (s RectSpec) Validate() error {
	if s.StrideX < 1 {
		return fmt.Errorf("ktmpl: StrideX=%d invalid", s.StrideX)
	}
	return s.gemm().Validate()
}

// GenTRSMRect generates the rectangular update kernel: preload the B tile
// into the accumulator registers, run the Algorithm 3 template sequence in
// FMLS form reading X with per-column strides, and store the tile back.
func GenTRSMRect(s RectSpec) (asm.Prog, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g := &gemmGen{s: s.gemm()}
	g.xStride = s.StrideX

	// Preload the B tile into the C accumulators.
	comps := g.s.comps()
	for c := 0; c < s.NC; c++ {
		off := c * s.StrideC * g.s.blockLen()
		cmt := ""
		if c == 0 {
			cmt = "preload B tile"
		}
		g.loadSeqAt(asm.PC, int(g.cReg(0, c, 0)), s.MC*comps, off, cmt)
	}
	g.body(modeSub)
	for c := 0; c < s.NC; c++ {
		off := c * s.StrideC * g.s.blockLen()
		g.storeSeq(asm.PC, int(g.cReg(0, c, 0)), s.MC*comps, off)
	}
	return g.prog, nil
}
