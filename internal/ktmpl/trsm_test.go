package ktmpl

import (
	"math/rand"
	"testing"

	"iatf/internal/asm"
	"iatf/internal/vec"
)

// buildTri synthesizes a packed triangle (row-wise, reciprocal diagonal)
// and a B tile, returning per-lane logical values for reference.
func runTriKernel[E vec.Float](t *testing.T, s TriSpec) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(100*s.M + s.NCols)))
	vl := s.vl()
	comps := s.comps()
	bl := s.blockLen()
	cplx := s.DT.IsComplex()

	randVal := func() complex128 {
		if cplx {
			return complex(rng.Float64(), rng.Float64())
		}
		return complex(rng.Float64(), 0)
	}
	// Logical lower-triangular A (diagonal bounded away from zero) and B.
	a := make([][][]complex128, vl)
	b := make([][][]complex128, vl)
	for l := 0; l < vl; l++ {
		a[l] = make([][]complex128, s.M)
		b[l] = make([][]complex128, s.M)
		for i := 0; i < s.M; i++ {
			a[l][i] = make([]complex128, s.M)
			b[l][i] = make([]complex128, s.NCols)
			for j := 0; j <= i; j++ {
				a[l][i][j] = randVal()
			}
			a[l][i][i] += 2 // condition the diagonal
			for c := 0; c < s.NCols; c++ {
				b[l][i][c] = randVal()
			}
		}
	}

	triBlocks := s.M * (s.M + 1) / 2
	lenA := triBlocks * bl
	lenB := s.NCols * s.StrideB * bl
	mem := make([]E, lenA+lenB)
	write := func(off int, vals func(lane int) complex128) {
		for l := 0; l < vl; l++ {
			v := vals(l)
			mem[off+l] = E(real(v))
			if comps == 2 {
				mem[off+vl+l] = E(imag(v))
			}
		}
	}
	// Packed triangle: row i blocks (i,0..i); diagonal stored reciprocal.
	idx := 0
	for i := 0; i < s.M; i++ {
		for j := 0; j <= i; j++ {
			i, j := i, j
			write(idx*bl, func(l int) complex128 {
				if i == j {
					return 1 / a[l][i][i]
				}
				return a[l][i][j]
			})
			idx++
		}
	}
	for c := 0; c < s.NCols; c++ {
		for i := 0; i < s.M; i++ {
			c, i := c, i
			write(lenA+(c*s.StrideB+i)*bl, func(l int) complex128 { return b[l][i][c] })
		}
	}

	prog, err := GenTRSMTri(s)
	if err != nil {
		t.Fatalf("%v M=%d N=%d: %v", s.DT, s.M, s.NCols, err)
	}
	vm := &asm.VM[E]{Mem: mem}
	vm.P[asm.PA] = 0
	vm.P[asm.PB] = lenA
	if err := vm.Run(prog); err != nil {
		t.Fatalf("%v M=%d N=%d: %v", s.DT, s.M, s.NCols, err)
	}

	// Reference forward substitution per lane; note the kernel multiplies
	// by the packed reciprocal, so the reference must too (a separate
	// rounding from division).
	tol := 1e-12
	var e E
	if _, ok := any(e).(float32); ok {
		tol = 1e-4
	}
	for l := 0; l < vl; l++ {
		for c := 0; c < s.NCols; c++ {
			x := make([]complex128, s.M)
			for i := 0; i < s.M; i++ {
				v := b[l][i][c]
				for j := 0; j < i; j++ {
					v -= a[l][i][j] * x[j]
				}
				x[i] = v * (1 / a[l][i][i])
			}
			for i := 0; i < s.M; i++ {
				off := lenA + (c*s.StrideB+i)*bl + l
				gre := float64(mem[off])
				gim := 0.0
				if comps == 2 {
					gim = float64(mem[off+vl])
				}
				if dabs(gre-real(x[i])) > tol || dabs(gim-imag(x[i])) > tol {
					t.Fatalf("%v M=%d N=%d lane=%d X(%d,%d) = (%g,%g), want %v",
						s.DT, s.M, s.NCols, l, i, c, gre, gim, x[i])
				}
			}
		}
	}
}

func TestGenTRSMTriCorrect(t *testing.T) {
	for _, dt := range vec.DTypes {
		for m := 1; m <= MaxTriM(dt); m++ {
			for _, n := range []int{1, 2, 3, 4, 7} {
				s := TriSpec{DT: dt, M: m, NCols: n, StrideB: m + 1}
				if dt.Real() == vec.S {
					runTriKernel[float32](t, s)
				} else {
					runTriKernel[float64](t, s)
				}
			}
		}
	}
}

func TestTriSpecValidate(t *testing.T) {
	bad := []TriSpec{
		{DT: vec.D, M: 6, NCols: 1, StrideB: 6},
		{DT: vec.Z, M: 4, NCols: 1, StrideB: 4},
		{DT: vec.D, M: 0, NCols: 1, StrideB: 1},
		{DT: vec.D, M: 3, NCols: 0, StrideB: 3},
		{DT: vec.D, M: 3, NCols: 2, StrideB: 2},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad tri spec %d accepted", i)
		}
	}
}

// Triangular kernels must stay within the register file, including the
// complex scratch registers.
func TestTriKernelRegisterBudget(t *testing.T) {
	for _, dt := range vec.DTypes {
		for m := 1; m <= MaxTriM(dt); m++ {
			prog, err := GenTRSMTri(TriSpec{DT: dt, M: m, NCols: 4, StrideB: m})
			if err != nil {
				t.Fatal(err)
			}
			for i, in := range prog {
				for _, r := range []uint8{in.D, in.D2, in.A, in.B} {
					if r >= asm.NumVRegs {
						t.Fatalf("%v M=%d instr %d uses V%d", dt, m, i, r)
					}
				}
			}
		}
	}
}

// runRectKernel validates B_tile -= L·X with strided X reads.
func runRectKernel[E vec.Float](t *testing.T, s RectSpec) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(10000*s.MC + 100*s.NC + s.K)))
	vl := s.gemm().vl()
	comps := s.gemm().comps()
	bl := s.gemm().blockLen()
	cplx := s.DT.IsComplex()

	randVal := func() complex128 {
		if cplx {
			return complex(rng.Float64(), rng.Float64())
		}
		return complex(rng.Float64(), 0)
	}
	alloc3 := func(rows, cols int) [][][]complex128 {
		out := make([][][]complex128, vl)
		for l := range out {
			out[l] = make([][]complex128, rows)
			for r := range out[l] {
				out[l][r] = make([]complex128, cols)
				for c := range out[l][r] {
					out[l][r][c] = randVal()
				}
			}
		}
		return out
	}
	lmat := alloc3(s.MC, s.K) // L panel
	x := alloc3(s.K, s.NC)    // solved X rows
	btile := alloc3(s.MC, s.NC)

	lenA := s.K * s.MC * bl
	lenX := s.NC * s.StrideX * bl
	lenC := s.NC * s.StrideC * bl
	mem := make([]E, lenA+lenX+lenC)
	pa, px, pc := 0, lenA, lenA+lenX
	write := func(off int, vals func(lane int) complex128) {
		for l := 0; l < vl; l++ {
			v := vals(l)
			mem[off+l] = E(real(v))
			if comps == 2 {
				mem[off+vl+l] = E(imag(v))
			}
		}
	}
	for k := 0; k < s.K; k++ {
		for r := 0; r < s.MC; r++ {
			k, r := k, r
			write(pa+(k*s.MC+r)*bl, func(l int) complex128 { return lmat[l][r][k] })
		}
		for c := 0; c < s.NC; c++ {
			k, c := k, c
			write(px+(c*s.StrideX+k)*bl, func(l int) complex128 { return x[l][k][c] })
		}
	}
	for c := 0; c < s.NC; c++ {
		for r := 0; r < s.MC; r++ {
			c, r := c, r
			write(pc+(c*s.StrideC+r)*bl, func(l int) complex128 { return btile[l][r][c] })
		}
	}

	prog, err := GenTRSMRect(s)
	if err != nil {
		t.Fatalf("%v %dx%d K=%d: %v", s.DT, s.MC, s.NC, s.K, err)
	}
	vm := &asm.VM[E]{Mem: mem}
	vm.P[asm.PA] = pa
	vm.P[asm.PX] = px
	vm.P[asm.PC] = pc
	if err := vm.Run(prog); err != nil {
		t.Fatalf("%v %dx%d K=%d: %v", s.DT, s.MC, s.NC, s.K, err)
	}

	tol := 1e-12 * float64(s.K+1)
	var e E
	if _, ok := any(e).(float32); ok {
		tol = 1e-4 * float64(s.K+1)
	}
	for l := 0; l < vl; l++ {
		for r := 0; r < s.MC; r++ {
			for c := 0; c < s.NC; c++ {
				want := btile[l][r][c]
				for k := 0; k < s.K; k++ {
					want -= lmat[l][r][k] * x[l][k][c]
				}
				off := pc + (c*s.StrideC+r)*bl + l
				gre := float64(mem[off])
				gim := 0.0
				if comps == 2 {
					gim = float64(mem[off+vl])
				}
				if dabs(gre-real(want)) > tol || dabs(gim-imag(want)) > tol {
					t.Fatalf("%v %dx%d K=%d lane=%d B(%d,%d) = (%g,%g), want %v",
						s.DT, s.MC, s.NC, s.K, l, r, c, gre, gim, want)
				}
			}
		}
	}
}

func TestGenTRSMRectCorrect(t *testing.T) {
	for _, dt := range vec.DTypes {
		for _, sz := range TRSMRectSizes(dt) {
			for _, k := range []int{1, 2, 3, 4, 5, 8, 9} {
				s := RectSpec{DT: dt, MC: sz.MC, NC: sz.NC, K: k,
					StrideC: sz.MC + 1, StrideX: k + 2}
				if dt.Real() == vec.S {
					runRectKernel[float32](t, s)
				} else {
					runRectKernel[float64](t, s)
				}
			}
		}
	}
}

// Eq. 4's claim: the FMLS rectangular kernel must contain no FMUL scaling
// pass and no alpha load — only the preload, the FMLS body and the store.
func TestRectKernelSavesMultiplies(t *testing.T) {
	s := RectSpec{DT: vec.D, MC: 4, NC: 4, K: 8, StrideC: 4, StrideX: 8}
	prog, err := GenTRSMRect(s)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range prog {
		if in.Op == asm.FMUL || in.Op == asm.FMULe {
			t.Errorf("instr %d is an FMUL; rect kernel must be pure FMLS", i)
		}
		if in.Op == asm.LD1R {
			t.Errorf("instr %d loads alpha; rect kernel has no SAVE scaling", i)
		}
	}
	fma, other := prog.FlopCount()
	if fma != 4*4*8 || other != 0 {
		t.Errorf("rect kernel flops = %d fma + %d other, want 128 + 0", fma, other)
	}
	// Compared against a direct GEMM call (alpha=-1), the rect kernel
	// saves exactly MC·NC multiply instructions.
	gs := GEMMSpec{DT: vec.D, MC: 4, NC: 4, K: 8, StrideC: 4}
	gp, err := GenGEMM(gs)
	if err != nil {
		t.Fatal(err)
	}
	gfma, gother := gp.FlopCount()
	if gfma+gother != fma+4*4 {
		t.Errorf("GEMM kernel has %d flops, rect %d: want a %d-instruction saving",
			gfma+gother, fma, 4*4)
	}
}

func TestRectSpecValidate(t *testing.T) {
	if err := (RectSpec{DT: vec.D, MC: 4, NC: 4, K: 4, StrideC: 4, StrideX: 0}).Validate(); err == nil {
		t.Error("StrideX=0 accepted")
	}
	if err := (RectSpec{DT: vec.D, MC: 5, NC: 5, K: 4, StrideC: 5, StrideX: 4}).Validate(); err == nil {
		t.Error("oversized rect kernel accepted")
	}
}
