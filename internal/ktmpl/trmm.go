package ktmpl

import (
	"fmt"

	"iatf/internal/asm"
)

// TRMM kernel generation — the IR twins of the native TRMM kernels, so
// the extension routine runs on the VM/cycle-model backend exactly like
// GEMM and TRSM.

// GenTRMMTri generates the triangular multiply kernel: the register-
// resident triangle (true diagonal values, ones for Unit handled by
// packing) multiplies NCols columns of B in place, rows bottom-up so
// still-original values feed each row's accumulation. The TriSpec calling
// convention matches GenTRSMTri; DivDiag is rejected.
func GenTRMMTri(s TriSpec) (asm.Prog, error) {
	if s.DivDiag {
		return nil, fmt.Errorf("ktmpl: TRMM has no division to ablate")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g := &triGen{s: s}
	// Load the packed triangle.
	nregs := (s.M * (s.M + 1) / 2) * s.comps()
	base := int(g.aReg(0, 0, 0))
	vl := s.vl()
	cmt := "load triangle of A"
	i := 0
	for ; i+1 < nregs; i += 2 {
		g.emit(asm.Instr{Op: asm.LDP, D: uint8(base + i), D2: uint8(base + i + 1), P: asm.PA, Off: int32(i * vl), Comment: cmt})
		cmt = ""
	}
	if i < nregs {
		g.emit(asm.Instr{Op: asm.LDR, D: uint8(base + i), P: asm.PA, Off: int32(i * vl), Comment: cmt})
	}

	g.loadCol(0, 0, "For column 0")
	for l := 0; l < s.NCols; l++ {
		buf := l % 2
		if l+1 < s.NCols {
			g.loadCol(1-buf, l+1, fmt.Sprintf("For column %d", l+1))
		}
		g.mulCol(buf)
		g.storeCol(buf, l)
	}
	return g.prog, nil
}

// mulCol emits the bottom-up triangular multiply for the column in
// buffer b: x_i = Σ_{j<i} a(i,j)·x_j + a(i,i)·x_i, rows descending.
func (g *triGen) mulCol(b int) {
	for i := g.s.M - 1; i >= 0; i-- {
		if g.s.DT.IsComplex() {
			g.mulColComplexRow(b, i)
			continue
		}
		r := g.bReg(b, i, 0)
		// x_i *= a_ii first (x_i's old value is only needed here), then
		// accumulate the sub-diagonal terms from still-original rows.
		g.emit(asm.Instr{Op: asm.FMUL, D: r, A: r, B: g.aReg(i, i, 0)})
		for j := 0; j < i; j++ {
			g.emit(asm.Instr{Op: asm.FMLA, D: r, A: g.aReg(i, j, 0), B: g.bReg(b, j, 0)})
		}
	}
}

// mulColComplexRow emits one complex row of the bottom-up multiply using
// the two scratch registers for the in-place complex product.
func (g *triGen) mulColComplexRow(b, i int) {
	br, bi := g.bReg(b, i, 0), g.bReg(b, i, 1)
	dr, di := g.aReg(i, i, 0), g.aReg(i, i, 1)
	// (br, bi) := (br, bi)·(dr, di), via scratch copies of the old value.
	g.emit(asm.Instr{Op: asm.MOVV, D: triScratch0, A: br})
	g.emit(asm.Instr{Op: asm.MOVV, D: triScratch1, A: bi})
	g.emit(asm.Instr{Op: asm.FMUL, D: br, A: triScratch0, B: dr})
	g.emit(asm.Instr{Op: asm.FMLS, D: br, A: triScratch1, B: di})
	g.emit(asm.Instr{Op: asm.FMUL, D: bi, A: triScratch0, B: di})
	g.emit(asm.Instr{Op: asm.FMLA, D: bi, A: triScratch1, B: dr})
	// += a(i,j)·x_j for the still-original rows.
	for j := 0; j < i; j++ {
		ar, ai := g.aReg(i, j, 0), g.aReg(i, j, 1)
		xr, xi := g.bReg(b, j, 0), g.bReg(b, j, 1)
		g.emit(asm.Instr{Op: asm.FMLA, D: br, A: ar, B: xr})
		g.emit(asm.Instr{Op: asm.FMLS, D: br, A: ai, B: xi})
		g.emit(asm.Instr{Op: asm.FMLA, D: bi, A: ar, B: xi})
		g.emit(asm.Instr{Op: asm.FMLA, D: bi, A: ai, B: xr})
	}
}

// GenTRMMRect generates the rectangular accumulation kernel of the
// blocked TRMM: B_tile += L·X — the FMLA twin of the TRSM rectangular
// kernel, with the same calling convention.
func GenTRMMRect(s RectSpec) (asm.Prog, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g := &gemmGen{s: s.gemm()}
	g.xStride = s.StrideX

	comps := g.s.comps()
	for c := 0; c < s.NC; c++ {
		off := c * s.StrideC * g.s.blockLen()
		cmt := ""
		if c == 0 {
			cmt = "preload B tile"
		}
		g.loadSeqAt(asm.PC, int(g.cReg(0, c, 0)), s.MC*comps, off, cmt)
	}
	g.body(modeAdd)
	for c := 0; c < s.NC; c++ {
		off := c * s.StrideC * g.s.blockLen()
		g.storeSeq(asm.PC, int(g.cReg(0, c, 0)), s.MC*comps, off)
	}
	return g.prog, nil
}
