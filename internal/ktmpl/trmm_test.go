package ktmpl

import (
	"math/rand"
	"testing"

	"iatf/internal/asm"
	"iatf/internal/vec"
)

// runTriMulKernel validates the generated TRMM triangular kernel on the
// VM against a scalar bottom-up multiply.
func runTriMulKernel[E vec.Float](t *testing.T, s TriSpec) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(500*s.M + s.NCols)))
	vl := s.vl()
	comps := s.comps()
	bl := s.blockLen()
	cplx := s.DT.IsComplex()

	randVal := func() complex128 {
		if cplx {
			return complex(rng.Float64(), rng.Float64())
		}
		return complex(rng.Float64(), 0)
	}
	a := make([][][]complex128, vl) // [lane][i][j], lower triangle
	b := make([][][]complex128, vl)
	for l := 0; l < vl; l++ {
		a[l] = make([][]complex128, s.M)
		b[l] = make([][]complex128, s.M)
		for i := 0; i < s.M; i++ {
			a[l][i] = make([]complex128, s.M)
			b[l][i] = make([]complex128, s.NCols)
			for j := 0; j <= i; j++ {
				a[l][i][j] = randVal()
			}
			for c := 0; c < s.NCols; c++ {
				b[l][i][c] = randVal()
			}
		}
	}

	triBlocks := s.M * (s.M + 1) / 2
	lenA := triBlocks * bl
	lenB := s.NCols * s.StrideB * bl
	mem := make([]E, lenA+lenB)
	write := func(off int, vals func(lane int) complex128) {
		for l := 0; l < vl; l++ {
			v := vals(l)
			mem[off+l] = E(real(v))
			if comps == 2 {
				mem[off+vl+l] = E(imag(v))
			}
		}
	}
	idx := 0
	for i := 0; i < s.M; i++ {
		for j := 0; j <= i; j++ {
			i, j := i, j
			write(idx*bl, func(l int) complex128 { return a[l][i][j] }) // true diagonal
			idx++
		}
	}
	for c := 0; c < s.NCols; c++ {
		for i := 0; i < s.M; i++ {
			c, i := c, i
			write(lenA+(c*s.StrideB+i)*bl, func(l int) complex128 { return b[l][i][c] })
		}
	}

	prog, err := GenTRMMTri(s)
	if err != nil {
		t.Fatalf("%v M=%d N=%d: %v", s.DT, s.M, s.NCols, err)
	}
	vm := &asm.VM[E]{Mem: mem}
	vm.P[asm.PA] = 0
	vm.P[asm.PB] = lenA
	if err := vm.Run(prog); err != nil {
		t.Fatalf("%v M=%d N=%d: %v", s.DT, s.M, s.NCols, err)
	}

	tol := 1e-12
	var e E
	if _, ok := any(e).(float32); ok {
		tol = 1e-4
	}
	for l := 0; l < vl; l++ {
		for c := 0; c < s.NCols; c++ {
			for i := 0; i < s.M; i++ {
				want := a[l][i][i] * b[l][i][c]
				for j := 0; j < i; j++ {
					want += a[l][i][j] * b[l][j][c]
				}
				off := lenA + (c*s.StrideB+i)*bl + l
				gre := float64(mem[off])
				gim := 0.0
				if comps == 2 {
					gim = float64(mem[off+vl])
				}
				if dabs(gre-real(want)) > tol || dabs(gim-imag(want)) > tol {
					t.Fatalf("%v M=%d lane=%d (%d,%d) = (%g,%g), want %v",
						s.DT, s.M, l, i, c, gre, gim, want)
				}
			}
		}
	}
}

func TestGenTRMMTriCorrect(t *testing.T) {
	for _, dt := range vec.DTypes {
		for m := 1; m <= MaxTriM(dt); m++ {
			for _, n := range []int{1, 3, 5} {
				s := TriSpec{DT: dt, M: m, NCols: n, StrideB: m + 1}
				if dt.Real() == vec.S {
					runTriMulKernel[float32](t, s)
				} else {
					runTriMulKernel[float64](t, s)
				}
			}
		}
	}
}

func TestGenTRMMTriRejectsDivDiag(t *testing.T) {
	if _, err := GenTRMMTri(TriSpec{DT: vec.D, M: 3, NCols: 2, StrideB: 3, DivDiag: true}); err == nil {
		t.Error("DivDiag accepted by TRMM")
	}
}

// The TRMM rectangular kernel is the FMLA twin of the TRSM one: no FMLS,
// no FMUL, and correct accumulation (validated against a scalar check).
func TestGenTRMMRectCorrect(t *testing.T) {
	for _, dt := range []vec.DType{vec.S, vec.Z} {
		sz := MainTRSMKernel(dt)
		s := RectSpec{DT: dt, MC: sz.MC, NC: sz.NC, K: 5, StrideC: sz.MC + 1, StrideX: 7}
		prog, err := GenTRMMRect(s)
		if err != nil {
			t.Fatal(err)
		}
		for i, in := range prog {
			if in.Op == asm.FMUL && !dt.IsComplex() {
				t.Errorf("%v instr %d: FMUL in the accumulating rect kernel", dt, i)
			}
		}
		if dt.Real() == vec.S {
			runRectAddKernel[float32](t, s, prog)
		} else {
			runRectAddKernel[float64](t, s, prog)
		}
	}
}

func runRectAddKernel[E vec.Float](t *testing.T, s RectSpec, prog asm.Prog) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	g := s.gemm()
	vl := g.vl()
	comps := g.comps()
	bl := g.blockLen()
	cplx := s.DT.IsComplex()

	randVal := func() complex128 {
		if cplx {
			return complex(rng.Float64(), rng.Float64())
		}
		return complex(rng.Float64(), 0)
	}
	alloc3 := func(rows, cols int) [][][]complex128 {
		out := make([][][]complex128, vl)
		for l := range out {
			out[l] = make([][]complex128, rows)
			for r := range out[l] {
				out[l][r] = make([]complex128, cols)
				for c := range out[l][r] {
					out[l][r][c] = randVal()
				}
			}
		}
		return out
	}
	lmat := alloc3(s.MC, s.K)
	x := alloc3(s.K, s.NC)
	btile := alloc3(s.MC, s.NC)

	lenA := s.K * s.MC * bl
	lenX := s.NC * s.StrideX * bl
	lenC := s.NC * s.StrideC * bl
	mem := make([]E, lenA+lenX+lenC)
	write := func(off int, vals func(lane int) complex128) {
		for l := 0; l < vl; l++ {
			v := vals(l)
			mem[off+l] = E(real(v))
			if comps == 2 {
				mem[off+vl+l] = E(imag(v))
			}
		}
	}
	for k := 0; k < s.K; k++ {
		for r := 0; r < s.MC; r++ {
			k, r := k, r
			write((k*s.MC+r)*bl, func(l int) complex128 { return lmat[l][r][k] })
		}
		for c := 0; c < s.NC; c++ {
			k, c := k, c
			write(lenA+(c*s.StrideX+k)*bl, func(l int) complex128 { return x[l][k][c] })
		}
	}
	for c := 0; c < s.NC; c++ {
		for r := 0; r < s.MC; r++ {
			c, r := c, r
			write(lenA+lenX+(c*s.StrideC+r)*bl, func(l int) complex128 { return btile[l][r][c] })
		}
	}

	vm := &asm.VM[E]{Mem: mem}
	vm.P[asm.PA] = 0
	vm.P[asm.PX] = lenA
	vm.P[asm.PC] = lenA + lenX
	if err := vm.Run(prog); err != nil {
		t.Fatal(err)
	}
	tol := 1e-12
	var e E
	if _, ok := any(e).(float32); ok {
		tol = 1e-4
	}
	for l := 0; l < vl; l++ {
		for r := 0; r < s.MC; r++ {
			for c := 0; c < s.NC; c++ {
				want := btile[l][r][c]
				for k := 0; k < s.K; k++ {
					want += lmat[l][r][k] * x[l][k][c]
				}
				off := lenA + lenX + (c*s.StrideC+r)*bl + l
				gre := float64(mem[off])
				gim := 0.0
				if comps == 2 {
					gim = float64(mem[off+vl])
				}
				if dabs(gre-real(want)) > tol || dabs(gim-imag(want)) > tol {
					t.Fatalf("%v (%d,%d) lane %d = (%g,%g), want %v", s.DT, r, c, l, gre, gim, want)
				}
			}
		}
	}
}
