package ktmpl

import (
	"testing"

	"iatf/internal/vec"
)

// Eq. 2/3 with the 32-register budget must yield the paper's optimal
// kernel sizes: 4×4 for real, 3×2 for complex.
func TestOptimalKernelMatchesPaper(t *testing.T) {
	for _, dt := range []vec.DType{vec.S, vec.D} {
		if mc, nc := OptimalKernel(dt); mc != 4 || nc != 4 {
			t.Errorf("%v optimal = %dx%d, want 4x4", dt, mc, nc)
		}
	}
	for _, dt := range []vec.DType{vec.C, vec.Z} {
		if mc, nc := OptimalKernel(dt); mc != 3 || nc != 2 {
			t.Errorf("%v optimal = %dx%d, want 3x2", dt, mc, nc)
		}
	}
}

func TestRegistersNeeded(t *testing.T) {
	// 4×4 real: 2·4+2·4+16 = 32 — exactly the register file.
	if n := RegistersNeeded(vec.D, 4, 4); n != 32 {
		t.Errorf("real 4x4 needs %d, want 32", n)
	}
	// 3×2 complex: 12+8+12 = 32.
	if n := RegistersNeeded(vec.Z, 3, 2); n != 32 {
		t.Errorf("complex 3x2 needs %d, want 32", n)
	}
	// 4×5 real would exceed.
	if n := RegistersNeeded(vec.S, 4, 5); n <= 32 {
		t.Errorf("real 4x5 needs %d, want >32", n)
	}
}

func TestCMARValues(t *testing.T) {
	if r := CMAR(vec.D, 4, 4); r != 2.0 {
		t.Errorf("CMAR(4,4) = %v, want 2", r)
	}
	if r := CMAR(vec.C, 3, 2); r != 2.4 {
		t.Errorf("complex CMAR(3,2) = %v, want 2.4", r)
	}
	// Symmetry of Eq. 3: 3×2 and 2×3 tie.
	if CMAR(vec.C, 3, 2) != CMAR(vec.C, 2, 3) {
		t.Error("complex CMAR must be symmetric")
	}
}

func TestValidate(t *testing.T) {
	good := GEMMSpec{DT: vec.D, MC: 4, NC: 4, K: 8, StrideC: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []GEMMSpec{
		{DT: vec.D, MC: 0, NC: 4, K: 8, StrideC: 4},
		{DT: vec.D, MC: 4, NC: 4, K: 0, StrideC: 4},
		{DT: vec.D, MC: 4, NC: 4, K: 8, StrideC: 3},
		{DT: vec.D, MC: 5, NC: 5, K: 8, StrideC: 5},
		{DT: vec.Z, MC: 3, NC: 3, K: 8, StrideC: 3},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestTemplateNames(t *testing.T) {
	want := []string{"TEMPLATE_I", "TEMPLATE_M1", "TEMPLATE_M2", "TEMPLATE_E", "TEMPLATE_SUB", "TEMPLATE_SAVE"}
	for i, w := range want {
		if TemplateID(i).String() != w {
			t.Errorf("TemplateID(%d) = %q want %q", i, TemplateID(i), w)
		}
	}
}

func TestRegistryMatchesTable1(t *testing.T) {
	// Main kernels.
	for _, dt := range []vec.DType{vec.S, vec.D} {
		if MainGEMMKernel(dt) != (Size{4, 4}) || MainTRSMKernel(dt) != (Size{4, 4}) {
			t.Errorf("%v main kernels wrong", dt)
		}
	}
	for _, dt := range []vec.DType{vec.C, vec.Z} {
		if MainGEMMKernel(dt) != (Size{3, 2}) || MainTRSMKernel(dt) != (Size{2, 2}) {
			t.Errorf("%v main kernels wrong", dt)
		}
	}
	// Real GEMM: all 16 sizes 4×4 … 1×1.
	sizes := GEMMKernelSizes(vec.S)
	if len(sizes) != 16 {
		t.Errorf("real GEMM kernel count = %d, want 16", len(sizes))
	}
	has := func(list []Size, s Size) bool {
		for _, x := range list {
			if x == s {
				return true
			}
		}
		return false
	}
	for mc := 1; mc <= 4; mc++ {
		for nc := 1; nc <= 4; nc++ {
			if !has(sizes, Size{mc, nc}) {
				t.Errorf("real GEMM registry missing %dx%d", mc, nc)
			}
		}
	}
	// Complex GEMM: exactly Table 1's six sizes.
	csizes := GEMMKernelSizes(vec.Z)
	wantC := []Size{{3, 2}, {3, 1}, {2, 2}, {2, 1}, {1, 2}, {1, 1}}
	if len(csizes) != len(wantC) {
		t.Errorf("complex GEMM kernel count = %d, want %d (%v)", len(csizes), len(wantC), csizes)
	}
	for _, s := range wantC {
		if !has(csizes, s) {
			t.Errorf("complex GEMM registry missing %dx%d", s.MC, s.NC)
		}
	}
	// Every registered size must fit the register file.
	for _, dt := range vec.DTypes {
		for _, s := range GEMMKernelSizes(dt) {
			if RegistersNeeded(dt, s.MC, s.NC) > 32 {
				t.Errorf("%v %dx%d exceeds 32 registers", dt, s.MC, s.NC)
			}
		}
	}
	// TRSM rectangular kernels include Table 1's {4,3,2,1}×4 (s/d) and
	// {2,1}×2 (c/z).
	rs := TRSMRectSizes(vec.D)
	for mc := 1; mc <= 4; mc++ {
		if !has(rs, Size{mc, 4}) {
			t.Errorf("TRSM rect registry missing %dx4", mc)
		}
	}
	rc := TRSMRectSizes(vec.C)
	for mc := 1; mc <= 2; mc++ {
		if !has(rc, Size{mc, 2}) {
			t.Errorf("complex TRSM rect registry missing %dx2", mc)
		}
	}
}

func TestMaxTriM(t *testing.T) {
	// Paper §4.2.2: 2M + M(M+1)/2 ≤ 32 ⇒ M ≤ 5.
	if MaxTriM(vec.S) != 5 || MaxTriM(vec.D) != 5 {
		t.Error("real MaxTriM != 5")
	}
	if MaxTriM(vec.C) != 3 || MaxTriM(vec.Z) != 3 {
		t.Error("complex MaxTriM != 3")
	}
	if TriRegistersNeeded(vec.D, 5) > 32 {
		t.Error("M=5 real triangle must fit")
	}
	if TriRegistersNeeded(vec.D, 6) <= 32 {
		t.Error("M=6 real triangle must not fit")
	}
	if TriRegistersNeeded(vec.Z, 3) > 32 {
		t.Error("M=3 complex triangle must fit")
	}
	if TriRegistersNeeded(vec.Z, 4) <= 32 {
		t.Error("M=4 complex triangle must not fit")
	}
}

func TestSplitDim(t *testing.T) {
	cases := []struct {
		n     int
		sizes []int
		want  []int
	}{
		{15, []int{4, 3, 2, 1}, []int{4, 4, 4, 3}}, // Figure 4(b)
		{16, []int{4, 3, 2, 1}, []int{4, 4, 4, 4}},
		{5, []int{4, 3, 2, 1}, []int{3, 2}}, // avoid a 1-wide tile
		{4, []int{3, 2, 1}, []int{2, 2}},    // avoid 3+1
		{1, []int{4, 3, 2, 1}, []int{1}},
		{3, []int{2, 1}, []int{2, 1}},
		{0, []int{4}, nil},
	}
	for _, c := range cases {
		got := SplitDim(c.n, c.sizes)
		if len(got) != len(c.want) {
			t.Errorf("SplitDim(%d, %v) = %v, want %v", c.n, c.sizes, got, c.want)
			continue
		}
		sum := 0
		for i := range got {
			sum += got[i]
			if got[i] != c.want[i] {
				t.Errorf("SplitDim(%d, %v) = %v, want %v", c.n, c.sizes, got, c.want)
				break
			}
		}
		if c.n > 0 && sum != c.n {
			t.Errorf("SplitDim(%d) sums to %d", c.n, sum)
		}
	}
	// Property: every n from 1 to 64 is exactly covered for both tile sets.
	for _, sizes := range [][]int{{4, 3, 2, 1}, {3, 2, 1}, {2, 1}} {
		for n := 1; n <= 64; n++ {
			sum := 0
			for _, s := range SplitDim(n, sizes) {
				sum += s
			}
			if sum != n {
				t.Fatalf("SplitDim(%d, %v) does not cover: %d", n, sizes, sum)
			}
		}
	}
}
