package ktmpl

import (
	"testing"

	"iatf/internal/vec"
)

// FuzzSplitDim asserts the tiler always covers the dimension exactly with
// registered tile sizes, for every data type's tile sets.
func FuzzSplitDim(f *testing.F) {
	f.Add(uint8(15), uint8(0))
	f.Add(uint8(33), uint8(3))
	f.Add(uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, n8, dtSel uint8) {
		n := 1 + int(n8)%128
		dt := vec.DTypes[int(dtSel)%4]
		for _, sizes := range [][]int{MTiles(dt), NTiles(dt)} {
			tiles := SplitDim(n, sizes)
			sum := 0
			for _, tl := range tiles {
				sum += tl
				ok := false
				for _, s := range sizes {
					if tl == s {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("tile %d not in allowed sizes %v", tl, sizes)
				}
			}
			if sum != n {
				t.Fatalf("SplitDim(%d, %v) covers %d", n, sizes, sum)
			}
		}
	})
}

// FuzzGenGEMM asserts generation never panics and always passes the
// instruction-count audit for arbitrary valid specs.
func FuzzGenGEMM(f *testing.F) {
	f.Add(uint8(0), uint8(4), uint8(4), uint8(8))
	f.Add(uint8(3), uint8(3), uint8(2), uint8(1))
	f.Fuzz(func(t *testing.T, dtSel, mc8, nc8, k8 uint8) {
		dt := vec.DTypes[int(dtSel)%4]
		sizes := GEMMKernelSizes(dt)
		sz := sizes[int(mc8)%len(sizes)]
		k := 1 + int(k8)%40
		s := GEMMSpec{DT: dt, MC: sz.MC, NC: sz.NC, K: k, StrideC: sz.MC + int(nc8)%3}
		prog, err := GenGEMM(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := GEMMFirstIsFirstK(s, prog); err != nil {
			t.Fatal(err)
		}
	})
}
