package matrix

import "math"

// absOf returns |x| as float64 for any supported scalar (modulus for
// complex).
func absOf[T Scalar](x T) float64 {
	switch v := any(x).(type) {
	case float32:
		return math.Abs(float64(v))
	case float64:
		return math.Abs(v)
	case complex64:
		return math.Hypot(float64(real(v)), float64(imag(v)))
	case complex128:
		return math.Hypot(real(v), imag(v))
	}
	return 0
}

// MaxAbs returns the largest element magnitude in s (0 for empty).
func MaxAbs[T Scalar](s []T) float64 {
	max := 0.0
	for _, x := range s {
		if a := absOf(x); a > max {
			max = a
		}
	}
	return max
}

// MaxAbsDiff returns the largest element-wise |a[i]-b[i]|. It panics if the
// lengths differ, because a silent truncation would hide a layout bug.
func MaxAbsDiff[T Scalar](a, b []T) float64 {
	if len(a) != len(b) {
		panic("matrix: MaxAbsDiff length mismatch")
	}
	max := 0.0
	for i := range a {
		if d := absOf(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

// WithinTol reports whether every element of got is within tol of want,
// relative to the magnitude of want (absolute when want is tiny). This is
// the acceptance test used to validate kernels against the reference
// oracle.
func WithinTol[T Scalar](got, want []T, tol float64) bool {
	if len(got) != len(want) {
		return false
	}
	scale := MaxAbs(want)
	if scale < 1 {
		scale = 1
	}
	return MaxAbsDiff(got, want) <= tol*scale
}

// Tol returns a validation tolerance appropriate for the element type and
// the reduction length k: single precision needs a looser bound, and the
// error of a k-term accumulation grows with k.
func Tol[T Scalar](k int) float64 {
	var x T
	base := 1e-13
	switch any(x).(type) {
	case float32, complex64:
		base = 1e-5
	}
	if k < 1 {
		k = 1
	}
	return base * float64(k)
}
