package matrix

import "fmt"

// RefGEMM computes C = alpha*op(A)*op(B) + beta*C with straightforward
// triple loops. It is the correctness oracle for every generated kernel and
// the computational core of the loop-call baselines.
func RefGEMM[T Scalar](ta, tb Trans, alpha T, a, b *Mat[T], beta T, c *Mat[T]) {
	oa, ob := a.Op(ta), b.Op(tb)
	if oa.Rows != c.Rows || ob.Cols != c.Cols || oa.Cols != ob.Rows {
		panic(fmt.Sprintf("matrix: GEMM shape mismatch op(A)=%d×%d op(B)=%d×%d C=%d×%d",
			oa.Rows, oa.Cols, ob.Rows, ob.Cols, c.Rows, c.Cols))
	}
	k := oa.Cols
	for j := 0; j < c.Cols; j++ {
		for i := 0; i < c.Rows; i++ {
			var sum T
			for l := 0; l < k; l++ {
				sum += oa.At(i, l) * ob.At(l, j)
			}
			c.Set(i, j, alpha*sum+beta*c.At(i, j))
		}
	}
}

// RefTRSM overwrites B with the solution X of op(A)·X = alpha·B (Left) or
// X·op(A) = alpha·B (Right), where A is triangular per uplo/diag. A is
// m×m for Left and n×n for Right, B is m×n.
func RefTRSM[T Scalar](side Side, uplo Uplo, ta Trans, diag Diag, alpha T, a, b *Mat[T]) {
	if side == Right {
		// X·op(A) = αB  ⇔  op(A)ᵀ·Xᵀ = αBᵀ. Transposing A flips the
		// triangle and the trans flag.
		bt := b.T()
		RefTRSM(Left, uplo, flipTrans(ta), diag, alpha, a, bt)
		for j := 0; j < b.Cols; j++ {
			for i := 0; i < b.Rows; i++ {
				b.Set(i, j, bt.At(j, i))
			}
		}
		return
	}
	if a.Rows != a.Cols || a.Rows != b.Rows {
		panic(fmt.Sprintf("matrix: TRSM shape mismatch A=%d×%d B=%d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	t := a
	u := uplo
	if ta == Transpose {
		t = a.T()
		u = uplo.Flip()
	}
	m, n := b.Rows, b.Cols
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			b.Set(i, j, alpha*b.At(i, j))
		}
		if u == Lower {
			for i := 0; i < m; i++ {
				x := b.At(i, j)
				for kk := 0; kk < i; kk++ {
					x -= t.At(i, kk) * b.At(kk, j)
				}
				if diag == NonUnit {
					x /= t.At(i, i)
				}
				b.Set(i, j, x)
			}
		} else {
			for i := m - 1; i >= 0; i-- {
				x := b.At(i, j)
				for kk := i + 1; kk < m; kk++ {
					x -= t.At(i, kk) * b.At(kk, j)
				}
				if diag == NonUnit {
					x /= t.At(i, i)
				}
				b.Set(i, j, x)
			}
		}
	}
}

func flipTrans(t Trans) Trans {
	if t == NoTrans {
		return Transpose
	}
	return NoTrans
}

// RefGEMMBatch applies RefGEMM to every matrix triple of three batches —
// the semantics of "loop around library GEMM calls".
func RefGEMMBatch[T Scalar](ta, tb Trans, alpha T, a, b *Batch[T], beta T, c *Batch[T]) {
	if a.Count != b.Count || a.Count != c.Count {
		panic("matrix: batch count mismatch")
	}
	for v := 0; v < a.Count; v++ {
		RefGEMM(ta, tb, alpha, a.Mat(v), b.Mat(v), beta, c.Mat(v))
	}
}

// RefTRSMBatch applies RefTRSM to every matrix pair of two batches.
func RefTRSMBatch[T Scalar](side Side, uplo Uplo, ta Trans, diag Diag, alpha T, a, b *Batch[T]) {
	if a.Count != b.Count {
		panic("matrix: batch count mismatch")
	}
	for v := 0; v < a.Count; v++ {
		RefTRSM(side, uplo, ta, diag, alpha, a.Mat(v), b.Mat(v))
	}
}

// RefTRMM overwrites B with alpha·op(A)·B (Left) or alpha·B·op(A)
// (Right), where A is triangular per uplo/diag — the triangular matrix
// multiply, the natural companion of RefTRSM.
func RefTRMM[T Scalar](side Side, uplo Uplo, ta Trans, diag Diag, alpha T, a, b *Mat[T]) {
	n := a.Rows
	if a.Cols != n {
		panic("matrix: TRMM A must be square")
	}
	// Materialize the effective triangle and multiply.
	tri := New[T](n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			keep := (uplo == Lower && i >= j) || (uplo == Upper && i <= j)
			if keep {
				tri.Set(i, j, a.At(i, j))
			}
		}
	}
	if diag == Unit {
		for i := 0; i < n; i++ {
			tri.Set(i, i, T(1))
		}
	}
	out := New[T](b.Rows, b.Cols)
	if side == Left {
		RefGEMM(ta, NoTrans, alpha, tri, b, T(0), out)
	} else {
		RefGEMM(NoTrans, ta, alpha, b, tri, T(0), out)
	}
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < b.Rows; i++ {
			b.Set(i, j, out.At(i, j))
		}
	}
}

// RefTRMMBatch applies RefTRMM to every matrix pair of two batches.
func RefTRMMBatch[T Scalar](side Side, uplo Uplo, ta Trans, diag Diag, alpha T, a, b *Batch[T]) {
	if a.Count != b.Count {
		panic("matrix: batch count mismatch")
	}
	for v := 0; v < a.Count; v++ {
		RefTRMM(side, uplo, ta, diag, alpha, a.Mat(v), b.Mat(v))
	}
}

// RefSYRK computes the symmetric rank-k update C := alpha·A·Aᵀ + beta·C
// (NoTrans) or C := alpha·Aᵀ·A + beta·C (Transpose), touching only the
// uplo triangle of C (including the diagonal).
func RefSYRK[T Scalar](uplo Uplo, trans Trans, alpha T, a *Mat[T], beta T, c *Mat[T]) {
	oa := a.Op(trans)
	n, k := oa.Rows, oa.Cols
	if c.Rows != n || c.Cols != n {
		panic(fmt.Sprintf("matrix: SYRK shape mismatch op(A)=%dx%d C=%dx%d", n, k, c.Rows, c.Cols))
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			inTri := (uplo == Lower && i >= j) || (uplo == Upper && i <= j)
			if !inTri {
				continue
			}
			var sum T
			for l := 0; l < k; l++ {
				sum += oa.At(i, l) * oa.At(j, l)
			}
			c.Set(i, j, alpha*sum+beta*c.At(i, j))
		}
	}
}

// RefSYRKBatch applies RefSYRK to every matrix pair of two batches.
func RefSYRKBatch[T Scalar](uplo Uplo, trans Trans, alpha T, a *Batch[T], beta T, c *Batch[T]) {
	if a.Count != c.Count {
		panic("matrix: batch count mismatch")
	}
	for v := 0; v < a.Count; v++ {
		RefSYRK(uplo, trans, alpha, a.Mat(v), beta, c.Mat(v))
	}
}
