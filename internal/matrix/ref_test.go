package matrix

import (
	"math/rand"
	"testing"
)

// handGEMM is an independently coded check for RefGEMM on a worked example.
func TestRefGEMMWorkedExample(t *testing.T) {
	// A = [1 2; 3 4] (column-major), B = [5 6; 7 8], C0 = [1 1; 1 1].
	a := &Mat[float64]{Rows: 2, Cols: 2, Stride: 2, Data: []float64{1, 3, 2, 4}}
	b := &Mat[float64]{Rows: 2, Cols: 2, Stride: 2, Data: []float64{5, 7, 6, 8}}
	c := &Mat[float64]{Rows: 2, Cols: 2, Stride: 2, Data: []float64{1, 1, 1, 1}}
	RefGEMM(NoTrans, NoTrans, 2.0, a, b, 3.0, c)
	// AB = [19 22; 43 50]; 2AB+3C = [41 47; 89 103].
	want := []float64{41, 89, 47, 103}
	if MaxAbsDiff(c.Data, want) != 0 {
		t.Errorf("GEMM = %v want %v", c.Data, want)
	}
}

// Transposed modes must agree with explicitly materialized transposes fed
// through the NN path.
func TestRefGEMMTransModes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const m, n, k = 5, 4, 6
	for _, ta := range []Trans{NoTrans, Transpose} {
		for _, tb := range []Trans{NoTrans, Transpose} {
			ar, ac := dims(ta, m, k)
			br, bc := dims(tb, k, n)
			a := RandMat[float64](rng, ar, ac)
			b := RandMat[float64](rng, br, bc)
			c := RandMat[float64](rng, m, n)
			want := c.Clone()
			RefGEMM(NoTrans, NoTrans, 1.5, a.Op(ta), b.Op(tb), 0.5, want)
			RefGEMM(ta, tb, 1.5, a, b, 0.5, c)
			if !WithinTol(c.Data, want.Data, 1e-14) {
				t.Errorf("mode %v%v mismatch", ta, tb)
			}
		}
	}
}

func dims(tr Trans, r, c int) (int, int) {
	if tr == Transpose {
		return c, r
	}
	return r, c
}

func TestRefGEMMShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	RefGEMM(NoTrans, NoTrans, 1.0, New[float64](2, 3), New[float64](4, 2), 0.0, New[float64](2, 2))
}

// TRSM property: multiplying the solution back must recover alpha*B for
// every side/uplo/trans/diag combination and every scalar type.
func TestRefTRSMSolveMultiplyRoundTrip(t *testing.T) {
	testTRSMRoundTrip[float32](t, 1e-3)
	testTRSMRoundTrip[float64](t, 1e-10)
	testTRSMRoundTrip[complex64](t, 1e-3)
	testTRSMRoundTrip[complex128](t, 1e-10)
}

func testTRSMRoundTrip[T Scalar](t *testing.T, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	alpha := T(2)
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Lower, Upper} {
			for _, ta := range []Trans{NoTrans, Transpose} {
				for _, diag := range []Diag{NonUnit, Unit} {
					for _, mn := range [][2]int{{1, 1}, {3, 2}, {5, 7}, {8, 8}} {
						m, n := mn[0], mn[1]
						adim := m
						if side == Right {
							adim = n
						}
						a := RandTriangular[T](rng, adim)
						b := RandMat[T](rng, m, n)
						x := b.Clone()
						RefTRSM(side, uplo, ta, diag, alpha, a, x)

						// Build the effective triangular matrix and multiply back.
						tri := triangularize(a, uplo, diag)
						check := New[T](m, n)
						if side == Left {
							RefGEMM(ta, NoTrans, T(1), tri, x, T(0), check)
						} else {
							RefGEMM(NoTrans, ta, T(1), x, tri, T(0), check)
						}
						want := b.Clone()
						for i := range want.Data {
							want.Data[i] *= alpha
						}
						if !WithinTol(check.Data, want.Data, tol) {
							t.Errorf("%T %v%v%v%v m=%d n=%d: residual %g", alpha,
								side, ta, uplo, diag, m, n, MaxAbsDiff(check.Data, want.Data))
						}
					}
				}
			}
		}
	}
}

// triangularize extracts the triangle TRSM actually uses, applying the
// implicit unit diagonal.
func triangularize[T Scalar](a *Mat[T], uplo Uplo, diag Diag) *Mat[T] {
	n := a.Rows
	out := New[T](n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			keep := (uplo == Lower && i >= j) || (uplo == Upper && i <= j)
			if keep {
				out.Set(i, j, a.At(i, j))
			}
		}
	}
	if diag == Unit {
		for i := 0; i < n; i++ {
			out.Set(i, i, T(1))
		}
	}
	return out
}

func TestRefTRSMUnitDiagIgnoresStoredDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := RandTriangular[float64](rng, 4)
	b := RandMat[float64](rng, 4, 3)
	x1 := b.Clone()
	RefTRSM(Left, Lower, NoTrans, Unit, 1.0, a, x1)
	for i := 0; i < 4; i++ {
		a.Set(i, i, 1e9) // must not matter
	}
	x2 := b.Clone()
	RefTRSM(Left, Lower, NoTrans, Unit, 1.0, a, x2)
	if MaxAbsDiff(x1.Data, x2.Data) != 0 {
		t.Error("Unit diag TRSM read the stored diagonal")
	}
}

func TestRefBatchOpsMatchPerMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const count, m, n, k = 6, 4, 3, 5
	a := RandBatch[float64](rng, count, m, k)
	b := RandBatch[float64](rng, count, k, n)
	c := RandBatch[float64](rng, count, m, n)
	want := c.Clone()
	for v := 0; v < count; v++ {
		RefGEMM(NoTrans, NoTrans, 1.0, a.Mat(v), b.Mat(v), 2.0, want.Mat(v))
	}
	RefGEMMBatch(NoTrans, NoTrans, 1.0, a, b, 2.0, c)
	if MaxAbsDiff(c.Data, want.Data) != 0 {
		t.Error("RefGEMMBatch != per-matrix RefGEMM")
	}

	ta := RandTriangularBatch[float64](rng, count, m)
	tb := RandBatch[float64](rng, count, m, n)
	wantB := tb.Clone()
	for v := 0; v < count; v++ {
		RefTRSM(Left, Lower, NoTrans, NonUnit, 1.0, ta.Mat(v), wantB.Mat(v))
	}
	RefTRSMBatch(Left, Lower, NoTrans, NonUnit, 1.0, ta, tb)
	if MaxAbsDiff(tb.Data, wantB.Data) != 0 {
		t.Error("RefTRSMBatch != per-matrix RefTRSM")
	}
}

func TestNormHelpers(t *testing.T) {
	if MaxAbs([]float64{}) != 0 {
		t.Error("MaxAbs empty")
	}
	if MaxAbs([]float64{-3, 2}) != 3 {
		t.Error("MaxAbs sign")
	}
	if MaxAbs([]complex128{3 + 4i}) != 5 {
		t.Error("MaxAbs complex modulus")
	}
	if MaxAbsDiff([]float32{1, 2}, []float32{1, 4}) != 2 {
		t.Error("MaxAbsDiff")
	}
	if !WithinTol([]float64{100.000001}, []float64{100}, 1e-6) {
		t.Error("WithinTol relative scaling")
	}
	if WithinTol([]float64{1}, []float64{1, 2}, 1) {
		t.Error("WithinTol length mismatch should be false")
	}
	if Tol[float32](1) >= 1e-3 || Tol[float64](1) >= 1e-10 {
		t.Error("Tol magnitudes")
	}
	if Tol[float64](100) <= Tol[float64](1) {
		t.Error("Tol must grow with k")
	}
}

func TestMaxAbsDiffLengthPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	MaxAbsDiff([]float64{1}, []float64{1, 2})
}

// TRMM oracle: must equal materialized triangle × B.
func TestRefTRMMAgainstGEMM(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Lower, Upper} {
			for _, ta := range []Trans{NoTrans, Transpose} {
				for _, diag := range []Diag{NonUnit, Unit} {
					const m, n = 5, 4
					adim := m
					if side == Right {
						adim = n
					}
					a := RandMat[float64](rng, adim, adim)
					b := RandMat[float64](rng, m, n)
					got := b.Clone()
					RefTRMM(side, uplo, ta, diag, 2.0, a, got)

					tri := triangularize(a, uplo, diag)
					want := New[float64](m, n)
					if side == Left {
						RefGEMM(ta, NoTrans, 2.0, tri, b, 0.0, want)
					} else {
						RefGEMM(NoTrans, ta, 2.0, b, tri, 0.0, want)
					}
					if !WithinTol(got.Data, want.Data, 1e-13) {
						t.Errorf("%v%v%v%v: max diff %g", side, ta, uplo, diag,
							MaxAbsDiff(got.Data, want.Data))
					}
				}
			}
		}
	}
}

func TestRefTRMMBatchAndPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	a := RandBatch[float32](rng, 3, 4, 4)
	b := RandBatch[float32](rng, 3, 4, 2)
	want := b.Clone()
	for v := 0; v < 3; v++ {
		RefTRMM(Left, Lower, NoTrans, NonUnit, float32(1), a.Mat(v), want.Mat(v))
	}
	RefTRMMBatch(Left, Lower, NoTrans, NonUnit, float32(1), a, b)
	if MaxAbsDiff(b.Data, want.Data) != 0 {
		t.Error("batch TRMM != per-matrix")
	}
	mustPanic := func(f func()) {
		defer func() { _ = recover() }()
		f()
		t.Error("expected panic")
	}
	mustPanic(func() {
		RefTRMM(Left, Lower, NoTrans, NonUnit, float32(1), RandMat[float32](rng, 2, 3), b.Mat(0))
	})
}

// SYRK oracle: C triangle = alpha·op(A)op(A)ᵀ + beta·C; other triangle
// untouched.
func TestRefSYRK(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, uplo := range []Uplo{Lower, Upper} {
		for _, trans := range []Trans{NoTrans, Transpose} {
			const n, k = 5, 3
			ar, ac := n, k
			if trans == Transpose {
				ar, ac = k, n
			}
			a := RandMat[float64](rng, ar, ac)
			c := RandMat[float64](rng, n, n)
			orig := c.Clone()
			RefSYRK(uplo, trans, 2.0, a, 0.5, c)
			oa := a.Op(trans)
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					inTri := (uplo == Lower && i >= j) || (uplo == Upper && i <= j)
					if !inTri {
						if c.At(i, j) != orig.At(i, j) {
							t.Fatalf("%v %v: (%d,%d) outside triangle modified", uplo, trans, i, j)
						}
						continue
					}
					sum := 0.0
					for l := 0; l < k; l++ {
						sum += oa.At(i, l) * oa.At(j, l)
					}
					want := 2*sum + 0.5*orig.At(i, j)
					if d := c.At(i, j) - want; d > 1e-12 || d < -1e-12 {
						t.Fatalf("%v %v (%d,%d): %v want %v", uplo, trans, i, j, c.At(i, j), want)
					}
				}
			}
		}
	}
	// Batch variant.
	a := RandBatch[float64](rand.New(rand.NewSource(22)), 2, 3, 2)
	c := RandBatch[float64](rand.New(rand.NewSource(23)), 2, 3, 3)
	want := c.Clone()
	for v := 0; v < 2; v++ {
		RefSYRK(Lower, NoTrans, 1.0, a.Mat(v), 1.0, want.Mat(v))
	}
	RefSYRKBatch(Lower, NoTrans, 1.0, a, 1.0, c)
	if MaxAbsDiff(c.Data, want.Data) != 0 {
		t.Error("batch SYRK != per-matrix")
	}
}
