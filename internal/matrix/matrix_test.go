package matrix

import (
	"math/rand"
	"testing"
)

func TestNewAndAccessors(t *testing.T) {
	m := New[float64](3, 2)
	if m.Rows != 3 || m.Cols != 2 || m.Stride != 3 || len(m.Data) != 6 {
		t.Fatalf("New shape: %+v", m)
	}
	m.Set(2, 1, 7.5)
	if m.At(2, 1) != 7.5 {
		t.Errorf("At(2,1) = %v", m.At(2, 1))
	}
	// Column-major: (2,1) is element 1*3+2 = 5.
	if m.Data[5] != 7.5 {
		t.Errorf("column-major placement wrong: %v", m.Data)
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1, 2) did not panic")
		}
	}()
	New[float32](-1, 2)
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := RandMat[float32](rng, 4, 5)
	c := m.Clone()
	c.Set(0, 0, -99)
	if m.At(0, 0) == -99 {
		t.Error("Clone shares storage with original")
	}
	c.Set(0, 0, m.At(0, 0))
	if MaxAbsDiff(m.Data, c.Data) != 0 {
		t.Error("Clone differs from original")
	}
}

func TestTranspose(t *testing.T) {
	m := New[float64](2, 3)
	for j := 0; j < 3; j++ {
		for i := 0; i < 2; i++ {
			m.Set(i, j, float64(10*i+j))
		}
	}
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("T shape %d×%d", tr.Rows, tr.Cols)
	}
	for j := 0; j < 3; j++ {
		for i := 0; i < 2; i++ {
			if tr.At(j, i) != m.At(i, j) {
				t.Errorf("T(%d,%d) = %v want %v", j, i, tr.At(j, i), m.At(i, j))
			}
		}
	}
	// Double transpose is identity.
	if MaxAbsDiff(tr.T().Data, m.Data) != 0 {
		t.Error("T(T(m)) != m")
	}
}

func TestOp(t *testing.T) {
	m := New[float64](2, 3)
	if m.Op(NoTrans) != m {
		t.Error("Op(NoTrans) should return the receiver")
	}
	if o := m.Op(Transpose); o.Rows != 3 || o.Cols != 2 {
		t.Error("Op(Transpose) wrong shape")
	}
}

func TestBatchMatViews(t *testing.T) {
	b := NewBatch[float64](3, 2, 2)
	b.Mat(1).Set(1, 1, 42)
	if b.Data[1*4+3] != 42 {
		t.Errorf("batch view did not write through: %v", b.Data)
	}
	if b.MatLen() != 4 {
		t.Errorf("MatLen = %d", b.MatLen())
	}
	c := b.Clone()
	c.Mat(0).Set(0, 0, -1)
	if b.Mat(0).At(0, 0) == -1 {
		t.Error("Batch.Clone shares storage")
	}
}

func TestModeStrings(t *testing.T) {
	if NoTrans.String() != "N" || Transpose.String() != "T" {
		t.Error("Trans strings")
	}
	if Left.String() != "L" || Right.String() != "R" {
		t.Error("Side strings")
	}
	if Lower.String() != "L" || Upper.String() != "U" {
		t.Error("Uplo strings")
	}
	if NonUnit.String() != "N" || Unit.String() != "U" {
		t.Error("Diag strings")
	}
	if Lower.Flip() != Upper || Upper.Flip() != Lower {
		t.Error("Uplo.Flip")
	}
}

func TestFillRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := make([]float64, 1000)
	Fill(rng, s)
	for _, x := range s {
		if x < 0 || x >= 1 {
			t.Fatalf("Fill out of range: %v", x)
		}
	}
	c := make([]complex128, 100)
	Fill(rng, c)
	for _, x := range c {
		if real(x) < 0 || real(x) >= 1 || imag(x) < 0 || imag(x) >= 1 {
			t.Fatalf("complex Fill out of range: %v", x)
		}
	}
}

func TestRandTriangularDiagonalBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := RandTriangular[float64](rng, 20)
	for i := 0; i < 20; i++ {
		if d := m.At(i, i); d < 1.5 || d >= 2.5 {
			t.Errorf("diag[%d] = %v outside [1.5, 2.5)", i, d)
		}
	}
	bc := RandTriangularBatch[complex64](rng, 5, 7)
	for v := 0; v < 5; v++ {
		for i := 0; i < 7; i++ {
			if re := real(bc.Mat(v).At(i, i)); re < 1.5 || re >= 2.5 {
				t.Errorf("batch %d diag[%d] real = %v", v, i, re)
			}
		}
	}
}
