package matrix

import "math/rand"

// Fill populates the slice with uniform random values in (0, 1), the
// initialization scheme the paper adopts from Jia et al. for benchmarking.
// Complex elements get independent random real and imaginary parts.
func Fill[T Scalar](rng *rand.Rand, s []T) {
	switch d := any(s).(type) {
	case []float32:
		for i := range d {
			d[i] = rng.Float32()
		}
	case []float64:
		for i := range d {
			d[i] = rng.Float64()
		}
	case []complex64:
		for i := range d {
			d[i] = complex(rng.Float32(), rng.Float32())
		}
	case []complex128:
		for i := range d {
			d[i] = complex(rng.Float64(), rng.Float64())
		}
	}
}

// RandMat returns a rows×cols matrix filled by Fill.
func RandMat[T Scalar](rng *rand.Rand, rows, cols int) *Mat[T] {
	m := New[T](rows, cols)
	Fill(rng, m.Data)
	return m
}

// RandBatch returns a batch of count matrices filled by Fill.
func RandBatch[T Scalar](rng *rand.Rand, count, rows, cols int) *Batch[T] {
	b := NewBatch[T](count, rows, cols)
	Fill(rng, b.Data)
	return b
}

// conditionDiag replaces a diagonal element with a value of magnitude in
// [1.5, 2.5). The paper fills TRSM inputs with uniform (0,1) values, but a
// random (0,1) diagonal makes triangular systems arbitrarily ill-conditioned
// as M grows; bounding the diagonal away from zero keeps solve-and-verify
// tests meaningful without changing the instruction stream the benchmarks
// measure. The deviation is recorded in EXPERIMENTS.md.
func conditionDiag[T Scalar](rng *rand.Rand, m *Mat[T], i int) {
	switch d := any(m.Data).(type) {
	case []float32:
		d[i*m.Stride+i] = 1.5 + rng.Float32()
	case []float64:
		d[i*m.Stride+i] = 1.5 + rng.Float64()
	case []complex64:
		d[i*m.Stride+i] = complex(1.5+rng.Float32(), rng.Float32())
	case []complex128:
		d[i*m.Stride+i] = complex(1.5+rng.Float64(), rng.Float64())
	}
}

// RandTriangular returns an n×n matrix filled by Fill whose diagonal is
// bounded away from zero (see conditionDiag). The full square is populated;
// TRSM implementations must honor uplo/diag and ignore the other triangle.
func RandTriangular[T Scalar](rng *rand.Rand, n int) *Mat[T] {
	m := RandMat[T](rng, n, n)
	for i := 0; i < n; i++ {
		conditionDiag(rng, m, i)
	}
	return m
}

// RandTriangularBatch returns a batch of count n×n matrices per
// RandTriangular.
func RandTriangularBatch[T Scalar](rng *rand.Rand, count, n int) *Batch[T] {
	b := RandBatch[T](rng, count, n, n)
	for v := 0; v < count; v++ {
		m := b.Mat(v)
		for i := 0; i < n; i++ {
			conditionDiag(rng, m, i)
		}
	}
	return b
}
