// Package matrix provides the conventional (column-major) small-matrix
// substrate: matrix and batch containers, the BLAS mode parameters, random
// workload initialization following the paper's test scheme, and a reference
// GEMM/TRSM oracle that every generated kernel is validated against.
package matrix

import "fmt"

// Scalar is the set of element types the library supports: the BLAS s, d,
// c, z types.
type Scalar interface {
	~float32 | ~float64 | ~complex64 | ~complex128
}

// Trans selects op(A) in GEMM and TRSM.
type Trans int

const (
	NoTrans Trans = iota
	Transpose
)

func (t Trans) String() string {
	if t == Transpose {
		return "T"
	}
	return "N"
}

// Side selects whether the triangular matrix appears on the left (AX = αB)
// or the right (XA = αB) in TRSM.
type Side int

const (
	Left Side = iota
	Right
)

func (s Side) String() string {
	if s == Right {
		return "R"
	}
	return "L"
}

// Uplo selects whether the triangular matrix is lower or upper triangular.
type Uplo int

const (
	Lower Uplo = iota
	Upper
)

func (u Uplo) String() string {
	if u == Upper {
		return "U"
	}
	return "L"
}

// Flip returns the opposite triangle; transposing a triangular matrix flips
// its uplo.
func (u Uplo) Flip() Uplo {
	if u == Upper {
		return Lower
	}
	return Upper
}

// Diag reports whether the triangular matrix has an implicit unit diagonal.
type Diag int

const (
	NonUnit Diag = iota
	Unit
)

func (d Diag) String() string {
	if d == Unit {
		return "U"
	}
	return "N"
}

// Mat is a dense column-major matrix, the conventional BLAS storage every
// baseline consumes and the compact layout converts from.
type Mat[T Scalar] struct {
	Rows, Cols int
	Stride     int // column stride (leading dimension); >= Rows
	Data       []T
}

// New allocates a zeroed rows×cols column-major matrix with minimal stride.
func New[T Scalar](rows, cols int) *Mat[T] {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %d×%d", rows, cols))
	}
	return &Mat[T]{Rows: rows, Cols: cols, Stride: rows, Data: make([]T, rows*cols)}
}

// At returns element (i, j).
func (m *Mat[T]) At(i, j int) T { return m.Data[j*m.Stride+i] }

// Set assigns element (i, j).
func (m *Mat[T]) Set(i, j int, x T) { m.Data[j*m.Stride+i] = x }

// Clone returns a deep copy with compact stride.
func (m *Mat[T]) Clone() *Mat[T] {
	c := New[T](m.Rows, m.Cols)
	for j := 0; j < m.Cols; j++ {
		copy(c.Data[j*c.Stride:j*c.Stride+m.Rows], m.Data[j*m.Stride:j*m.Stride+m.Rows])
	}
	return c
}

// T returns a newly allocated transpose.
func (m *Mat[T]) T() *Mat[T] {
	t := New[T](m.Cols, m.Rows)
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Op returns op(m): m itself for NoTrans, a fresh transpose for Transpose.
func (m *Mat[T]) Op(tr Trans) *Mat[T] {
	if tr == Transpose {
		return m.T()
	}
	return m
}

// Batch is a group of equally sized matrices stored back to back in
// conventional column-major order — the input format of every batched BLAS
// interface the paper compares against, and the source format the IATF
// packing kernels read.
type Batch[T Scalar] struct {
	Count      int
	Rows, Cols int
	Data       []T // Count contiguous Rows×Cols column-major matrices
}

// NewBatch allocates a zeroed batch of count rows×cols matrices.
func NewBatch[T Scalar](count, rows, cols int) *Batch[T] {
	if count < 0 {
		panic("matrix: negative batch count")
	}
	return &Batch[T]{Count: count, Rows: rows, Cols: cols, Data: make([]T, count*rows*cols)}
}

// MatLen returns the number of elements of one matrix in the batch.
func (b *Batch[T]) MatLen() int { return b.Rows * b.Cols }

// Mat returns a view of matrix v; mutating the view mutates the batch.
func (b *Batch[T]) Mat(v int) *Mat[T] {
	off := v * b.MatLen()
	return &Mat[T]{Rows: b.Rows, Cols: b.Cols, Stride: b.Rows, Data: b.Data[off : off+b.MatLen()]}
}

// Clone returns a deep copy.
func (b *Batch[T]) Clone() *Batch[T] {
	c := NewBatch[T](b.Count, b.Rows, b.Cols)
	copy(c.Data, b.Data)
	return c
}
