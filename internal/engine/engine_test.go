package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"iatf/internal/core"
	"iatf/internal/layout"
	"iatf/internal/matrix"
	"iatf/internal/vec"
)

func randCompact(rng *rand.Rand, count, rows, cols int) *layout.Compact[float32] {
	b := matrix.NewBatch[float32](count, rows, cols)
	matrix.Fill(rng, b.Data)
	return layout.FromBatch(vec.S, b)
}

func op32(c *layout.Compact[float32]) Operand { return Operand{DT: vec.S, F32: c} }

func TestCountBucket(t *testing.T) {
	cases := [][2]int{{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}, {1024, 1024}, {1025, 2048}}
	for _, c := range cases {
		if got := countBucket(c[0]); got != c[1] {
			t.Errorf("countBucket(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestPlanCacheHitMiss(t *testing.T) {
	e := New(core.DefaultTuning())
	rng := rand.New(rand.NewSource(1))
	a := randCompact(rng, 100, 4, 6)
	b := randCompact(rng, 100, 6, 5)
	c := randCompact(rng, 100, 4, 5)
	op := OpDesc{Kind: OpGEMM, Alpha: 1, Beta: 0, Workers: 1}

	if err := e.Run(op, op32(a), op32(b), op32(c)); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.PlanMisses != 1 || s.PlanHits != 0 || s.PlanEntries != 1 {
		t.Fatalf("after first call: %+v", s)
	}
	for i := 0; i < 5; i++ {
		if err := e.Run(op, op32(a), op32(b), op32(c)); err != nil {
			t.Fatal(err)
		}
	}
	s = e.Stats()
	if s.PlanMisses != 1 || s.PlanHits != 5 {
		t.Fatalf("warm calls must hit the cache: %+v", s)
	}
}

// TestScalarsAndCountShareAPlan checks that alpha/beta and nearby batch
// counts are excluded from the cache key but still honored by execution.
func TestScalarsAndCountShareAPlan(t *testing.T) {
	e := New(core.DefaultTuning())
	rng := rand.New(rand.NewSource(2))
	run := func(count int, alpha, beta complex128) *layout.Compact[float32] {
		rng := rand.New(rand.NewSource(3)) // same operand data every time
		a := randCompact(rng, count, 4, 4)
		b := randCompact(rng, count, 4, 4)
		c := randCompact(rng, count, 4, 4)
		op := OpDesc{Kind: OpGEMM, Alpha: alpha, Beta: beta, Workers: 1}
		if err := e.Run(op, op32(a), op32(b), op32(c)); err != nil {
			t.Fatal(err)
		}
		return c
	}
	_ = rng
	c1 := run(100, 1, 0)
	if got := e.Stats(); got.PlanMisses != 1 {
		t.Fatalf("first call: %+v", got)
	}
	// Different scalars, counts within the same power-of-two bucket and at
	// its edges: all hits.
	run(100, 2.5, 1)
	run(65, 1, 0)
	run(128, 1, 0)
	if got := e.Stats(); got.PlanMisses != 1 {
		t.Fatalf("scalar/count variants must share the plan: %+v", got)
	}
	run(129, 1, 0) // next bucket: one more miss
	if got := e.Stats(); got.PlanMisses != 2 {
		t.Fatalf("bucket boundary: %+v", got)
	}

	// Scalars must still take effect: alpha=2 doubles the alpha=1 result.
	c2 := run(100, 2, 0)
	for i := range c1.Data {
		if c2.Data[i] != 2*c1.Data[i] {
			t.Fatalf("alpha not honored at %d: %g vs %g", i, c2.Data[i], c1.Data[i])
		}
	}
}

func TestPlanCacheBounded(t *testing.T) {
	e := New(core.DefaultTuning())
	// Fake builds: exercise the bound without generating thousands of real
	// plans.
	total := planShards*planShardCap + 500
	for i := 0; i < total; i++ {
		key := planKey{kind: OpGEMM, m: i + 1, n: 1, k: 1, countBucket: 1}
		if _, _, err := e.plan(key, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	if s.PlanEntries > planShards*planShardCap {
		t.Errorf("cache unbounded: %d entries", s.PlanEntries)
	}
	if s.PlanEvictions == 0 {
		t.Error("no evictions recorded past the bound")
	}
	if s.PlanMisses != uint64(total) {
		t.Errorf("misses %d, want %d", s.PlanMisses, total)
	}
}

// checkTypedErr asserts an engine validation error wraps the expected
// taxonomy sentinel and names the op and operand.
func checkTypedErr(t *testing.T, err error, sentinel error, wantSubstrs ...string) {
	t.Helper()
	if err == nil {
		t.Error("expected a validation error, got nil")
		return
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("error %q does not match sentinel %q", err, sentinel)
	}
	for _, w := range wantSubstrs {
		if !strings.Contains(err.Error(), w) {
			t.Errorf("error %q missing %q", err, w)
		}
	}
}

func TestOperandValidation(t *testing.T) {
	e := New(core.DefaultTuning())
	rng := rand.New(rand.NewSource(4))
	a := randCompact(rng, 10, 4, 4)
	op := OpDesc{Kind: OpGEMM, Alpha: 1, Beta: 1, Workers: 1}

	checkTypedErr(t, e.Run(op, op32(a), op32(a), Operand{}), ErrOperand, "GEMM", "C", "nil or empty")
	checkTypedErr(t, e.Run(op, op32(a), op32(a)), ErrOperand, "GEMM", "takes 3 operands")

	bad := randCompact(rng, 10, 3, 5)
	checkTypedErr(t, e.Run(op, op32(a), op32(bad), op32(a)), ErrShape, "GEMM", "B", "shape mismatch")

	b64 := matrix.NewBatch[float64](10, 4, 4)
	o64 := Operand{DT: vec.D, F64: layout.FromBatch(vec.D, b64)}
	checkTypedErr(t, e.Run(op, op32(a), o64, op32(a)), ErrDType, "GEMM", "B", "mismatched element type")

	tri := OpDesc{Kind: OpTRSM, Alpha: 1, Workers: 1}
	checkTypedErr(t, e.Run(tri, op32(bad), op32(a)), ErrShape, "TRSM", "A", "must be square")
}

// TestTriAndSYRKValidation covers the checks that used to tunnel into
// internal/core and die there without op context: batch-count agreement
// for the two-operand ops, and A's dimension against the side.
func TestTriAndSYRKValidation(t *testing.T) {
	e := New(core.DefaultTuning())
	rng := rand.New(rand.NewSource(6))

	a4 := randCompact(rng, 10, 4, 4)   // square 4x4, count 10
	b45 := randCompact(rng, 10, 4, 5)  // B 4x5, count 10
	b45c := randCompact(rng, 12, 4, 5) // B 4x5, count 12

	for _, kind := range []OpKind{OpTRSM, OpTRMM} {
		op := OpDesc{Kind: kind, Side: matrix.Left, Uplo: matrix.Lower, Alpha: 1, Workers: 1}
		// Count mismatch must be caught at the boundary with op context.
		checkTypedErr(t, e.Run(op, op32(a4), op32(b45c)), ErrCount, kind.String(), "A has 10", "B has 12")
		// Left side with a 4x5 B needs a 4x4 A; a 5x5 A must be named.
		a5 := randCompact(rng, 10, 5, 5)
		checkTypedErr(t, e.Run(op, op32(a5), op32(b45)), ErrShape, kind.String(), "A", "side L")
		// Right side with a 4x5 B needs a 5x5 A.
		opR := OpDesc{Kind: kind, Side: matrix.Right, Uplo: matrix.Lower, Alpha: 1, Workers: 1}
		checkTypedErr(t, e.Run(opR, op32(a4), op32(b45)), ErrShape, kind.String(), "A", "side R")
		// Valid right-side call still passes.
		if err := e.Run(opR, op32(a5), op32(b45)); err != nil {
			t.Errorf("%v valid Right call rejected: %v", kind, err)
		}
	}

	// SYRK: count agreement and op(A) rows vs C's dimension.
	c4 := randCompact(rng, 10, 4, 4)
	aT := randCompact(rng, 10, 4, 3) // op(A) 4x3: valid for NoTrans
	syrk := OpDesc{Kind: OpSYRK, Uplo: matrix.Lower, Alpha: 1, Beta: 1, Workers: 1}
	if err := e.Run(syrk, op32(aT), op32(c4)); err != nil {
		t.Errorf("valid SYRK rejected: %v", err)
	}
	aBadC := randCompact(rng, 12, 4, 3)
	checkTypedErr(t, e.Run(syrk, op32(aBadC), op32(c4)), ErrCount, "SYRK", "A has 12", "C has 10")
	aBadR := randCompact(rng, 10, 5, 3)
	checkTypedErr(t, e.Run(syrk, op32(aBadR), op32(c4)), ErrShape, "SYRK", "A")
	cRect := randCompact(rng, 10, 4, 5)
	checkTypedErr(t, e.Run(syrk, op32(aT), op32(cRect)), ErrShape, "SYRK", "C", "square")
}

// TestPlanSingleFlight: concurrent cold-start misses on one key build the
// plan exactly once; the losers wait and share the winner's plan, counted
// as PlanShared, not as extra misses.
func TestPlanSingleFlight(t *testing.T) {
	e := New(core.DefaultTuning())
	key := planKey{kind: OpGEMM, m: 7, n: 7, k: 7, countBucket: 8}
	var builds atomic.Int32
	const callers = 16
	start := make(chan struct{})
	vals := make(chan any, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, _, err := e.plan(key, func() (any, error) {
				builds.Add(1)
				time.Sleep(20 * time.Millisecond)
				return new(int), nil
			})
			if err != nil {
				t.Error(err)
			}
			vals <- v
		}()
	}
	close(start)
	wg.Wait()
	close(vals)
	if b := builds.Load(); b != 1 {
		t.Errorf("build ran %d times, want 1", b)
	}
	var first any
	for v := range vals {
		if first == nil {
			first = v
		} else if v != first {
			t.Error("callers received different plans")
		}
	}
	s := e.Stats()
	if s.PlanMisses != 1 {
		t.Errorf("misses %d, want exactly 1", s.PlanMisses)
	}
	if s.PlanHits+s.PlanShared != callers-1 {
		t.Errorf("hits %d + shared %d, want %d", s.PlanHits, s.PlanShared, callers-1)
	}

	// A failed build is not cached and does not poison the key.
	bad := planKey{kind: OpGEMM, m: 9, n: 9, k: 9, countBucket: 8}
	if _, _, err := e.plan(bad, func() (any, error) { return nil, errors.New("boom") }); err == nil {
		t.Error("build error not propagated")
	}
	if v, _, err := e.plan(bad, func() (any, error) { return 42, nil }); err != nil || v != 42 {
		t.Errorf("key poisoned after failed build: %v %v", v, err)
	}
}

// TestEngineMatchesCore pins the engine dispatch path to the direct core
// path bit for bit, across ops and worker counts.
func TestEngineMatchesCore(t *testing.T) {
	e := New(core.DefaultTuning())
	rng := rand.New(rand.NewSource(5))
	const count, m, n, k = 70, 6, 5, 7
	a := randCompact(rng, count, m, k)
	b := randCompact(rng, count, k, n)
	c0 := randCompact(rng, count, m, n)

	// Direct core path.
	p := core.GEMMProblem{DT: vec.S, M: m, N: n, K: k, Alpha: complex(1.5, 0), Beta: complex(0.5, 0), Count: count}
	pl, err := core.NewGEMMPlan(p, core.DefaultTuning())
	if err != nil {
		t.Fatal(err)
	}
	cRef := c0.Clone()
	if err := core.ExecGEMMNative(pl, a, b, cRef); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 0, 3} {
		cc := c0.Clone()
		op := OpDesc{Kind: OpGEMM, Alpha: complex(1.5, 0), Beta: complex(0.5, 0), Workers: workers}
		if err := e.Run(op, op32(a), op32(b), op32(cc)); err != nil {
			t.Fatal(err)
		}
		for i := range cRef.Data {
			if cc.Data[i] != cRef.Data[i] {
				t.Fatalf("workers=%d: engine diverges from core at %d", workers, i)
			}
		}
	}
}

func TestOpKindString(t *testing.T) {
	for _, k := range []OpKind{OpGEMM, OpTRSM, OpTRMM, OpSYRK} {
		if s := k.String(); strings.HasPrefix(s, "OpKind(") {
			t.Errorf("missing name for %d", int(k))
		}
	}
	if s := OpKind(99).String(); s != fmt.Sprintf("OpKind(%d)", 99) {
		t.Errorf("fallback: %s", s)
	}
}
