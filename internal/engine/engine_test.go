package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"iatf/internal/core"
	"iatf/internal/layout"
	"iatf/internal/matrix"
	"iatf/internal/vec"
)

func randCompact(rng *rand.Rand, count, rows, cols int) *layout.Compact[float32] {
	b := matrix.NewBatch[float32](count, rows, cols)
	matrix.Fill(rng, b.Data)
	return layout.FromBatch(vec.S, b)
}

func op32(c *layout.Compact[float32]) Operand { return Operand{DT: vec.S, F32: c} }

func TestCountBucket(t *testing.T) {
	cases := [][2]int{{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}, {1024, 1024}, {1025, 2048}}
	for _, c := range cases {
		if got := countBucket(c[0]); got != c[1] {
			t.Errorf("countBucket(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestPlanCacheHitMiss(t *testing.T) {
	e := New(core.DefaultTuning())
	rng := rand.New(rand.NewSource(1))
	a := randCompact(rng, 100, 4, 6)
	b := randCompact(rng, 100, 6, 5)
	c := randCompact(rng, 100, 4, 5)
	op := OpDesc{Kind: OpGEMM, Alpha: 1, Beta: 0, Workers: 1}

	if err := e.Run(op, op32(a), op32(b), op32(c)); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.PlanMisses != 1 || s.PlanHits != 0 || s.PlanEntries != 1 {
		t.Fatalf("after first call: %+v", s)
	}
	for i := 0; i < 5; i++ {
		if err := e.Run(op, op32(a), op32(b), op32(c)); err != nil {
			t.Fatal(err)
		}
	}
	s = e.Stats()
	if s.PlanMisses != 1 || s.PlanHits != 5 {
		t.Fatalf("warm calls must hit the cache: %+v", s)
	}
}

// TestScalarsAndCountShareAPlan checks that alpha/beta and nearby batch
// counts are excluded from the cache key but still honored by execution.
func TestScalarsAndCountShareAPlan(t *testing.T) {
	e := New(core.DefaultTuning())
	rng := rand.New(rand.NewSource(2))
	run := func(count int, alpha, beta complex128) *layout.Compact[float32] {
		rng := rand.New(rand.NewSource(3)) // same operand data every time
		a := randCompact(rng, count, 4, 4)
		b := randCompact(rng, count, 4, 4)
		c := randCompact(rng, count, 4, 4)
		op := OpDesc{Kind: OpGEMM, Alpha: alpha, Beta: beta, Workers: 1}
		if err := e.Run(op, op32(a), op32(b), op32(c)); err != nil {
			t.Fatal(err)
		}
		return c
	}
	_ = rng
	c1 := run(100, 1, 0)
	if got := e.Stats(); got.PlanMisses != 1 {
		t.Fatalf("first call: %+v", got)
	}
	// Different scalars, counts within the same power-of-two bucket and at
	// its edges: all hits.
	run(100, 2.5, 1)
	run(65, 1, 0)
	run(128, 1, 0)
	if got := e.Stats(); got.PlanMisses != 1 {
		t.Fatalf("scalar/count variants must share the plan: %+v", got)
	}
	run(129, 1, 0) // next bucket: one more miss
	if got := e.Stats(); got.PlanMisses != 2 {
		t.Fatalf("bucket boundary: %+v", got)
	}

	// Scalars must still take effect: alpha=2 doubles the alpha=1 result.
	c2 := run(100, 2, 0)
	for i := range c1.Data {
		if c2.Data[i] != 2*c1.Data[i] {
			t.Fatalf("alpha not honored at %d: %g vs %g", i, c2.Data[i], c1.Data[i])
		}
	}
}

func TestPlanCacheBounded(t *testing.T) {
	e := New(core.DefaultTuning())
	// Fake builds: exercise the bound without generating thousands of real
	// plans.
	total := planShards*planShardCap + 500
	for i := 0; i < total; i++ {
		key := planKey{kind: OpGEMM, m: i + 1, n: 1, k: 1, countBucket: 1}
		if _, err := e.plan(key, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	if s.PlanEntries > planShards*planShardCap {
		t.Errorf("cache unbounded: %d entries", s.PlanEntries)
	}
	if s.PlanEvictions == 0 {
		t.Error("no evictions recorded past the bound")
	}
	if s.PlanMisses != uint64(total) {
		t.Errorf("misses %d, want %d", s.PlanMisses, total)
	}
}

func TestOperandValidation(t *testing.T) {
	e := New(core.DefaultTuning())
	rng := rand.New(rand.NewSource(4))
	a := randCompact(rng, 10, 4, 4)
	op := OpDesc{Kind: OpGEMM, Alpha: 1, Beta: 1, Workers: 1}

	err := e.Run(op, op32(a), op32(a), Operand{})
	if err == nil || !strings.Contains(err.Error(), "C is nil or empty") {
		t.Errorf("nil C: %v", err)
	}
	err = e.Run(op, op32(a), op32(a))
	if err == nil || !strings.Contains(err.Error(), "takes 3 operands") {
		t.Errorf("arity: %v", err)
	}

	bad := randCompact(rng, 10, 3, 5)
	err = e.Run(op, op32(a), op32(bad), op32(a))
	if err == nil || !strings.Contains(err.Error(), "shape mismatch") {
		t.Errorf("shape: %v", err)
	}

	b64 := matrix.NewBatch[float64](10, 4, 4)
	o64 := Operand{DT: vec.D, F64: layout.FromBatch(vec.D, b64)}
	err = e.Run(op, op32(a), o64, op32(a))
	if err == nil || !strings.Contains(err.Error(), "mismatched element type") {
		t.Errorf("mixed types: %v", err)
	}

	tri := OpDesc{Kind: OpTRSM, Alpha: 1, Workers: 1}
	err = e.Run(tri, op32(bad), op32(a))
	if err == nil || !strings.Contains(err.Error(), "must be square") {
		t.Errorf("square: %v", err)
	}
}

// TestEngineMatchesCore pins the engine dispatch path to the direct core
// path bit for bit, across ops and worker counts.
func TestEngineMatchesCore(t *testing.T) {
	e := New(core.DefaultTuning())
	rng := rand.New(rand.NewSource(5))
	const count, m, n, k = 70, 6, 5, 7
	a := randCompact(rng, count, m, k)
	b := randCompact(rng, count, k, n)
	c0 := randCompact(rng, count, m, n)

	// Direct core path.
	p := core.GEMMProblem{DT: vec.S, M: m, N: n, K: k, Alpha: complex(1.5, 0), Beta: complex(0.5, 0), Count: count}
	pl, err := core.NewGEMMPlan(p, core.DefaultTuning())
	if err != nil {
		t.Fatal(err)
	}
	cRef := c0.Clone()
	if err := core.ExecGEMMNative(pl, a, b, cRef); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 0, 3} {
		cc := c0.Clone()
		op := OpDesc{Kind: OpGEMM, Alpha: complex(1.5, 0), Beta: complex(0.5, 0), Workers: workers}
		if err := e.Run(op, op32(a), op32(b), op32(cc)); err != nil {
			t.Fatal(err)
		}
		for i := range cRef.Data {
			if cc.Data[i] != cRef.Data[i] {
				t.Fatalf("workers=%d: engine diverges from core at %d", workers, i)
			}
		}
	}
}

func TestOpKindString(t *testing.T) {
	for _, k := range []OpKind{OpGEMM, OpTRSM, OpTRMM, OpSYRK} {
		if s := k.String(); strings.HasPrefix(s, "OpKind(") {
			t.Errorf("missing name for %d", int(k))
		}
	}
	if s := OpKind(99).String(); s != fmt.Sprintf("OpKind(%d)", 99) {
		t.Errorf("fallback: %s", s)
	}
}
