// Persistent autotune store attachment: the engine's plan cache and the
// process kernel memo serialized to disk (internal/store) and reloaded
// at construction, so a cold process starts with the install-time and
// run-time stages already paid for every stored shape.
//
// The store is keyed by the tuning fingerprint (machine profile +
// tuning knobs + layout/dtype version). Loading is forgiving by design:
// an absent file is a cold start, a fingerprint/version mismatch or a
// corrupt file is counted and ignored, and the engine falls back to
// live tuning — the store can never make a correct call incorrect,
// because hydration replays the exact plan constructors against kernel
// schedules that are bit-equal to what this process would build.
package engine

import (
	"errors"
	"io/fs"

	"iatf/internal/core"
	"iatf/internal/machine"
	"iatf/internal/matrix"
	"iatf/internal/store"
	"iatf/internal/vec"
)

// storeCounters is the engine's store-activity tally, guarded by storeMu.
type storeCounters struct {
	loads           uint64
	loadMismatches  uint64
	loadErrors      uint64
	saves           uint64
	saveErrors      uint64
	kernelsImported uint64
}

// StoreStats is the persistent-store slice of Stats.
type StoreStats struct {
	Path        string // attached store file ("" = no store)
	Fingerprint string // this engine's tuning fingerprint

	Loads           uint64 // successful store loads
	LoadMismatches  uint64 // files ignored for fingerprint/version skew
	LoadErrors      uint64 // corrupt or unreadable files (absent files are not errors)
	Saves           uint64 // successful store writes
	SaveErrors      uint64 // failed store writes
	KernelsImported uint64 // kernel schedules imported from loaded stores
}

// Add accumulates another engine's store counters (EngineSet aggregate).
// Path and Fingerprint are shared set-wide, so the first non-empty value
// wins.
func (s *StoreStats) Add(o StoreStats) {
	if s.Path == "" {
		s.Path = o.Path
	}
	if s.Fingerprint == "" {
		s.Fingerprint = o.Fingerprint
	}
	s.Loads += o.Loads
	s.LoadMismatches += o.LoadMismatches
	s.LoadErrors += o.LoadErrors
	s.Saves += o.Saves
	s.SaveErrors += o.SaveErrors
	s.KernelsImported += o.KernelsImported
}

func (e *Engine) storeStats() StoreStats {
	e.storeMu.Lock()
	defer e.storeMu.Unlock()
	return StoreStats{
		Path:            e.storePath,
		Fingerprint:     e.fp,
		Loads:           e.storeState.loads,
		LoadMismatches:  e.storeState.loadMismatches,
		LoadErrors:      e.storeState.loadErrors,
		Saves:           e.storeState.saves,
		SaveErrors:      e.storeState.saveErrors,
		KernelsImported: e.storeState.kernelsImported,
	}
}

// Fingerprint returns the engine tuning's store fingerprint.
func (e *Engine) Fingerprint() string { return e.fp }

// SetStorePath attaches a store file path to the engine. It does not
// load or save by itself — pair with LoadStore/SaveStore. An empty path
// detaches.
func (e *Engine) SetStorePath(path string) {
	e.storeMu.Lock()
	e.storePath = path
	e.storeMu.Unlock()
}

// StorePath returns the attached store file path ("" = none).
func (e *Engine) StorePath() string {
	e.storeMu.Lock()
	defer e.storeMu.Unlock()
	return e.storePath
}

// LoadStore reads the attached store file and hydrates the engine:
// stored kernel schedules join the process kernel memo, and every stored
// plan descriptor is replayed through the exact plan constructors into
// the plan cache (counted in Stats.PlanHydrated, never as misses).
//
// Staleness is not an error: an absent file, a fingerprint or format
// mismatch, and a corrupt file all leave the engine cold (counted in
// Stats.Store) and return nil. Only unexpected I/O failures are
// returned.
func (e *Engine) LoadStore() error {
	path := e.StorePath()
	if path == "" {
		return nil
	}
	f, err := store.Load(path, e.fp)
	if err != nil {
		e.storeMu.Lock()
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// Cold start: nothing to load, nothing to count.
		case errors.Is(err, store.ErrMismatch):
			e.storeState.loadMismatches++
		default:
			e.storeState.loadErrors++
		}
		e.storeMu.Unlock()
		if errors.Is(err, fs.ErrNotExist) || errors.Is(err, store.ErrMismatch) || errors.Is(err, store.ErrCorrupt) {
			return nil
		}
		return err
	}
	e.Hydrate(f)
	return nil
}

// Hydrate installs a decoded store file into the engine. The caller has
// already validated the fingerprint (store.Load does).
func (e *Engine) Hydrate(f *store.File) (plans, kernels int) {
	kernels = core.ImportKernels(f.Kernels)
	for _, d := range f.Plans {
		key, err := keyOfDesc(d)
		if err != nil {
			continue // unknown kind from a future writer: skip, don't fail
		}
		if e.hydratePlan(key) {
			plans++
		}
	}
	e.storeMu.Lock()
	e.storeState.loads++
	e.storeState.kernelsImported += uint64(kernels)
	e.storeMu.Unlock()
	return plans, kernels
}

// hydratePlan builds key's plan through the same constructor the live
// path uses and installs it marked hydrated, without touching the
// hit/miss counters. Returns false when the entry already exists, the
// kind is unknown, or the build fails (a stored descriptor this tuning
// rejects — e.g. a dimension over the triangular cap — is skipped).
func (e *Engine) hydratePlan(key planKey) bool {
	build := e.buildForKey(key)
	if build == nil {
		return false
	}
	sh := &e.shards[key.shard()]
	sh.mu.Lock()
	_, exists := sh.m[key]
	sh.mu.Unlock()
	if exists {
		return false
	}
	v, err := build()
	if err != nil {
		return false
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[key]; ok {
		return false // raced with a live build; the live plan wins
	}
	if len(sh.m) >= planShardCap {
		for k := range sh.m {
			delete(sh.m, k)
			delete(sh.hydrated, k)
			e.planEvictions.Add(1)
			break
		}
	}
	sh.m[key] = v
	sh.hydrated[key] = true
	e.planHydrated.Add(1)
	return true
}

// buildForKey returns the plan constructor closure for a cache key —
// the exact closure the live dispatch path passes to plan(), so a
// hydrated plan is bit-equal to a freshly tuned one. Nil for unknown
// kinds.
func (e *Engine) buildForKey(key planKey) func() (any, error) {
	switch key.kind {
	case OpGEMM:
		return func() (any, error) {
			return core.NewGEMMPlan(core.GEMMProblem{
				DT: key.dt, M: key.m, N: key.n, K: key.k, TransA: key.transA, TransB: key.transB,
				Alpha: 1, Beta: 1, Count: key.countBucket,
			}, e.tun)
		}
	case OpTRSM:
		return func() (any, error) {
			return core.NewTRSMPlan(core.TRSMProblem{
				DT: key.dt, M: key.m, N: key.n, Side: key.side, Uplo: key.uplo,
				TransA: key.transA, Diag: key.diag, Alpha: 1, Count: key.countBucket,
			}, e.tun)
		}
	case OpTRMM:
		return func() (any, error) {
			return core.NewTRMMPlan(core.TRMMProblem{
				DT: key.dt, M: key.m, N: key.n, Side: key.side, Uplo: key.uplo,
				TransA: key.transA, Diag: key.diag, Alpha: 1, Count: key.countBucket,
			}, e.tun)
		}
	case OpSYRK:
		return func() (any, error) {
			return core.NewSYRKPlan(core.SYRKProblem{
				DT: key.dt, N: key.m, K: key.k, Uplo: key.uplo, Trans: key.transA,
				Alpha: 1, Beta: 1, Count: key.countBucket,
			}, e.tun)
		}
	case OpLU, OpCholesky, OpLUPiv:
		return func() (any, error) {
			return &factorPlan{flopsPerMatrix: factorFLOPs(key.kind, key.m)}, nil
		}
	}
	return nil
}

// Warm resolves the plan for one problem descriptor through the regular
// cache path (building it on miss) — the pre-baking primitive behind
// iatf-tune. The build error, if any, is returned so tuners can report
// shapes the tuning rejects.
func (e *Engine) Warm(d store.PlanDesc) error {
	key, err := keyOfDesc(d)
	if err != nil {
		return err
	}
	build := e.buildForKey(key)
	if build == nil {
		return opErr(key.kind, "", ErrOperand, "not a plannable kind")
	}
	_, _, err = e.plan(key, build)
	return err
}

// Export snapshots the engine's tuned state as a store file: every plan
// key in the cache plus the process kernel memo's entries for this
// engine's machine profile.
func (e *Engine) Export(tool string) *store.File {
	f := store.New(e.fp, tool)
	f.Kernels = core.ExportKernels(machine.Fingerprint(e.tun.Prof))
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for key := range sh.m {
			f.Plans = append(f.Plans, descOfKey(key))
		}
		sh.mu.Unlock()
	}
	return f
}

// SaveStore serializes the engine's tuned state to the attached store
// path (atomically, merge-free: the engine's current view wins). No-op
// without an attached path.
func (e *Engine) SaveStore() error {
	path := e.StorePath()
	if path == "" {
		return nil
	}
	err := e.Export("engine-flush").WriteAtomic(path)
	e.storeMu.Lock()
	if err != nil {
		e.storeState.saveErrors++
	} else {
		e.storeState.saves++
	}
	e.storeMu.Unlock()
	return err
}

// descOfKey converts a plan-cache key to its serializable form.
func descOfKey(k planKey) store.PlanDesc {
	return store.PlanDesc{
		Kind: int(k.kind), DType: int(k.dt), M: k.m, N: k.n, K: k.k,
		TransA: int(k.transA), TransB: int(k.transB),
		Side: int(k.side), Uplo: int(k.uplo), Diag: int(k.diag),
		CountBucket: k.countBucket,
	}
}

// keyOfDesc converts a stored descriptor back to a cache key, rejecting
// kinds this build does not know (a store written by a newer version).
func keyOfDesc(d store.PlanDesc) (planKey, error) {
	if d.Kind < int(OpGEMM) || d.Kind > int(OpLUPiv) {
		return planKey{}, opErr(OpKind(d.Kind), "", ErrOperand, "unknown op kind %d in store", d.Kind)
	}
	cb := d.CountBucket
	if cb < 1 {
		cb = 1
	}
	return planKey{
		kind: OpKind(d.Kind), dt: vec.DType(d.DType), m: d.M, n: d.N, k: d.K,
		transA: matrix.Trans(d.TransA), transB: matrix.Trans(d.TransB),
		side: matrix.Side(d.Side), uplo: matrix.Uplo(d.Uplo), diag: matrix.Diag(d.Diag),
		countBucket: cb,
	}, nil
}

// routeHashKey reconstructs the identity-affine routing hash of a plan
// key — the same fold routeHash performs over a live call's descriptor
// and operands, with the stored operand dimensions derived from the
// key's problem dimensions. Set.LoadStore uses it to hydrate each plan
// into the shard that live traffic for that identity routes to, keeping
// the store's cache-affinity benefit intact under sharding.
func routeHashKey(k planKey) uint64 {
	type dim struct{ r, c int }
	var dims [3]dim
	n := 0
	switch k.kind {
	case OpGEMM:
		a := dim{k.m, k.k}
		if k.transA == matrix.Transpose {
			a = dim{k.k, k.m}
		}
		b := dim{k.k, k.n}
		if k.transB == matrix.Transpose {
			b = dim{k.n, k.k}
		}
		dims, n = [3]dim{a, b, {k.m, k.n}}, 3
	case OpTRSM, OpTRMM:
		d := k.m
		if k.side == matrix.Right {
			d = k.n
		}
		dims, n = [3]dim{{d, d}, {k.m, k.n}}, 2
	case OpSYRK:
		a := dim{k.m, k.k}
		if k.transA == matrix.Transpose {
			a = dim{k.k, k.m}
		}
		dims, n = [3]dim{a, {k.m, k.m}}, 2
	default: // factorizations: one square operand
		dims, n = [3]dim{{k.m, k.m}}, 1
	}
	h := uint64(0xcbf29ce484222325)
	h = mix64(h, uint64(k.kind))
	h = mix64(h, uint64(k.transA))
	h = mix64(h, uint64(k.transB))
	h = mix64(h, uint64(k.side))
	h = mix64(h, uint64(k.uplo))
	h = mix64(h, uint64(k.diag))
	h = mix64(h, uint64(n))
	for i := 0; i < n; i++ {
		h = mix64(h, uint64(k.dt))
		h = mix64(h, uint64(dims[i].r))
		h = mix64(h, uint64(dims[i].c))
	}
	return h
}

// SetStorePath attaches a store path to the whole set. Shard 0 carries
// the path for stats; loading and saving are set-level operations.
func (s *Set) SetStorePath(path string) { s.engines[0].SetStorePath(path) }

// StorePath returns the set's attached store path.
func (s *Set) StorePath() string { return s.engines[0].StorePath() }

// Fingerprint returns the set's tuning fingerprint (all shards share
// one tuning).
func (s *Set) Fingerprint() string { return s.engines[0].fp }

// LoadStore reads the set's attached store and hydrates every stored
// plan into its identity's home shard — the same shard live traffic
// routes to. Kernel schedules are imported into the process memo once.
// Staleness semantics match Engine.LoadStore.
func (s *Set) LoadStore() error {
	e0 := s.engines[0]
	path := e0.StorePath()
	if path == "" {
		return nil
	}
	f, err := store.Load(path, e0.fp)
	if err != nil {
		e0.storeMu.Lock()
		switch {
		case errors.Is(err, fs.ErrNotExist):
		case errors.Is(err, store.ErrMismatch):
			e0.storeState.loadMismatches++
		default:
			e0.storeState.loadErrors++
		}
		e0.storeMu.Unlock()
		if errors.Is(err, fs.ErrNotExist) || errors.Is(err, store.ErrMismatch) || errors.Is(err, store.ErrCorrupt) {
			return nil
		}
		return err
	}
	kernels := core.ImportKernels(f.Kernels)
	for _, d := range f.Plans {
		key, err := keyOfDesc(d)
		if err != nil {
			continue
		}
		sh := jumpHash(routeHashKey(key), len(s.engines))
		s.engines[sh].hydratePlan(key)
	}
	e0.storeMu.Lock()
	e0.storeState.loads++
	e0.storeState.kernelsImported += uint64(kernels)
	e0.storeMu.Unlock()
	return nil
}

// SaveStore writes the union of every shard's plan cache (plus the
// kernel memo) to the set's attached store path. No-op without a path.
func (s *Set) SaveStore() error {
	e0 := s.engines[0]
	path := e0.StorePath()
	if path == "" {
		return nil
	}
	f := e0.Export("engineset-flush")
	for _, e := range s.engines[1:] {
		other := e.Export("")
		f.Merge(other)
	}
	err := f.WriteAtomic(path)
	e0.storeMu.Lock()
	if err != nil {
		e0.storeState.saveErrors++
	} else {
		e0.storeState.saves++
	}
	e0.storeMu.Unlock()
	return err
}
