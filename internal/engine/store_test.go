package engine

import (
	"math/rand"
	"os"
	"reflect"
	"sync"
	"testing"

	"iatf/internal/core"
	"iatf/internal/kopt"
	"iatf/internal/layout"
	"iatf/internal/matrix"
	"iatf/internal/store"
	"iatf/internal/vec"
)

// plansOf snapshots an engine's whole plan cache.
func plansOf(e *Engine) map[planKey]any {
	out := make(map[planKey]any)
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for k, v := range sh.m {
			out[k] = v
		}
		sh.mu.Unlock()
	}
	return out
}

// coldKernelMemo swaps in an empty process kernel memo for the test's
// duration, simulating a process that never generated any kernels.
func coldKernelMemo(t *testing.T) {
	t.Helper()
	old := core.SwapKernelMemo(kopt.NewMemo())
	t.Cleanup(func() { core.SwapKernelMemo(old) })
}

// TestStoreRoundTripBitExact is the core persistence guarantee: plans
// hydrated from disk by a cold process are bit-identical to the plans
// the original process tuned live.
func TestStoreRoundTripBitExact(t *testing.T) {
	tun := core.DefaultTuning()
	e1 := New(tun)
	path := store.PathFor(t.TempDir(), e1.Fingerprint())

	// Tune live: one real dispatch plus a Warm sweep over every op family.
	rng := rand.New(rand.NewSource(7))
	a := randCompact(rng, 64, 8, 6)
	b := randCompact(rng, 64, 6, 5)
	c := randCompact(rng, 64, 8, 5)
	if err := e1.Run(OpDesc{Kind: OpGEMM, Alpha: 1, Beta: 0, Workers: 1}, op32(a), op32(b), op32(c)); err != nil {
		t.Fatal(err)
	}
	warm := []store.PlanDesc{
		{Kind: int(OpGEMM), DType: int(vec.D), M: 8, N: 8, K: 8, TransA: 1, CountBucket: 16},
		{Kind: int(OpTRSM), DType: int(vec.S), M: 8, N: 4, CountBucket: 1},
		{Kind: int(OpTRMM), DType: int(vec.D), M: 6, N: 6, Side: 1, Uplo: 1, CountBucket: 4},
		{Kind: int(OpSYRK), DType: int(vec.S), M: 8, K: 4, TransA: 1, CountBucket: 2},
		{Kind: int(OpCholesky), DType: int(vec.D), M: 12, CountBucket: 1},
	}
	for _, d := range warm {
		if err := e1.Warm(d); err != nil {
			t.Fatalf("warm %+v: %v", d, err)
		}
	}
	e1.SetStorePath(path)
	if err := e1.SaveStore(); err != nil {
		t.Fatal(err)
	}
	if st := e1.Stats().Store; st.Saves != 1 || st.Path != path {
		t.Fatalf("save counters: %+v", st)
	}

	// Cold process: fresh kernel memo, fresh engine, same tuning.
	coldKernelMemo(t)
	e2 := New(tun)
	e2.SetStorePath(path)
	if err := e2.LoadStore(); err != nil {
		t.Fatal(err)
	}
	s2 := e2.Stats()
	if s2.Store.Loads != 1 || s2.Store.KernelsImported == 0 {
		t.Fatalf("load counters: %+v", s2.Store)
	}
	want := plansOf(e1)
	got := plansOf(e2)
	if len(got) != len(want) || s2.PlanHydrated != uint64(len(want)) {
		t.Fatalf("hydrated %d plans (counter %d), want %d", len(got), s2.PlanHydrated, len(want))
	}
	for k, v := range want {
		if !reflect.DeepEqual(got[k], v) {
			t.Errorf("plan %+v differs after disk round trip:\ngot  %+v\nwant %+v", k, got[k], v)
		}
	}
}

// TestStoreHydrationIsNotAMiss pins satellite semantics: the warm
// process's first call on a stored shape is a hit (never a miss), the
// CMAR ceiling still lands in the per-shape series, and the numeric
// result matches the tuning process's.
func TestStoreHydrationIsNotAMiss(t *testing.T) {
	tun := core.DefaultTuning()
	e1 := New(tun)
	path := store.PathFor(t.TempDir(), e1.Fingerprint())

	run := func(e *Engine) *layout.Compact[float32] {
		rng := rand.New(rand.NewSource(11)) // identical data both processes
		a := randCompact(rng, 32, 6, 6)
		b := randCompact(rng, 32, 6, 6)
		c := randCompact(rng, 32, 6, 6)
		if err := e.Run(OpDesc{Kind: OpGEMM, Alpha: 1, Beta: 0, Workers: 1}, op32(a), op32(b), op32(c)); err != nil {
			t.Fatal(err)
		}
		return c
	}
	want := run(e1)
	e1.SetStorePath(path)
	if err := e1.SaveStore(); err != nil {
		t.Fatal(err)
	}

	coldKernelMemo(t)
	e2 := New(tun)
	e2.SetStorePath(path)
	if err := e2.LoadStore(); err != nil {
		t.Fatal(err)
	}
	got := run(e2)

	s := e2.Stats()
	if s.PlanMisses != 0 {
		t.Fatalf("hydrated first call counted as a miss: %+v", s)
	}
	if s.PlanHits != 1 || s.PlanHydrated != 1 {
		t.Fatalf("hydrated first call: hits %d hydrated %d", s.PlanHits, s.PlanHydrated)
	}
	if len(s.Shapes) != 1 {
		t.Fatalf("shapes = %d, want 1", len(s.Shapes))
	}
	sh := s.Shapes[0]
	if sh.PlanHydrated != 1 || sh.PlanMisses != 0 {
		t.Fatalf("shape outcome: %+v", sh)
	}
	if sh.CeilingGFLOPS <= 0 {
		t.Fatalf("hydrated first call must still record the CMAR ceiling, got %g", sh.CeilingGFLOPS)
	}
	if !reflect.DeepEqual(got.Data, want.Data) {
		t.Fatal("warm-process result differs from tuning-process result")
	}

	// Second call: plain hit, hydrated marker consumed.
	run(e2)
	s = e2.Stats()
	if s.PlanHits != 2 || s.PlanMisses != 0 || s.Shapes[0].PlanHydrated != 1 {
		t.Fatalf("second warm call: %+v", s)
	}
}

// TestStoreFingerprintMismatchFallsBack: a store for another tuning is
// ignored without error and the engine tunes live.
func TestStoreFingerprintMismatchFallsBack(t *testing.T) {
	tun := core.DefaultTuning()
	e := New(tun)
	path := store.PathFor(t.TempDir(), e.Fingerprint())
	other := store.New("some-other-machine-t0123", "test")
	other.Plans = []store.PlanDesc{{Kind: int(OpGEMM), DType: int(vec.S), M: 4, N: 4, K: 4, CountBucket: 1}}
	if err := other.WriteAtomic(path); err != nil {
		t.Fatal(err)
	}
	e.SetStorePath(path)
	if err := e.LoadStore(); err != nil {
		t.Fatalf("mismatch must not be an error, got %v", err)
	}
	s := e.Stats()
	if s.Store.LoadMismatches != 1 || s.Store.Loads != 0 || s.PlanHydrated != 0 {
		t.Fatalf("mismatch accounting: %+v", s.Store)
	}
	// Live tuning still works.
	rng := rand.New(rand.NewSource(3))
	a := randCompact(rng, 8, 4, 4)
	b := randCompact(rng, 8, 4, 4)
	c := randCompact(rng, 8, 4, 4)
	if err := e.Run(OpDesc{Kind: OpGEMM, Alpha: 1, Beta: 0, Workers: 1}, op32(a), op32(b), op32(c)); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.PlanMisses != 1 {
		t.Fatalf("live fallback: %+v", s)
	}
}

// TestStoreCorruptFallsBack: truncated/garbage stores are counted and
// ignored; absent stores are silent.
func TestStoreCorruptFallsBack(t *testing.T) {
	tun := core.DefaultTuning()
	e := New(tun)
	path := store.PathFor(t.TempDir(), e.Fingerprint())
	e.SetStorePath(path)

	// Absent: no error, no counters.
	if err := e.LoadStore(); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats().Store; s.Loads != 0 || s.LoadErrors != 0 {
		t.Fatalf("absent store counted: %+v", s)
	}

	if err := os.WriteFile(path, []byte(`{"version":1,"fing`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadStore(); err != nil {
		t.Fatalf("corrupt must not be an error, got %v", err)
	}
	if s := e.Stats().Store; s.LoadErrors != 1 || s.Loads != 0 {
		t.Fatalf("corrupt accounting: %+v", s)
	}

	// A rebuild (SaveStore) repairs the file in place.
	if err := e.Warm(store.PlanDesc{Kind: int(OpGEMM), DType: int(vec.S), M: 4, N: 4, K: 4, CountBucket: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveStore(); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadStore(); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats().Store; s.Loads != 1 {
		t.Fatalf("rebuild accounting: %+v", s)
	}
}

// TestSetStoreRoutesHydrationToHomeShard is the routing-parity check:
// hydrating a set must land every plan on exactly the shard live traffic
// routes to, so warm-start calls through the set are hits, not misses.
func TestSetStoreRoutesHydrationToHomeShard(t *testing.T) {
	tun := core.DefaultTuning()
	e1 := New(tun)
	path := store.PathFor(t.TempDir(), e1.Fingerprint())

	// A spread of identities across op kinds, transposes, sides and
	// dtypes so the route hash exercises every descriptor field.
	type call struct {
		op       OpDesc
		operands func(rng *rand.Rand) []Operand
	}
	calls := []call{
		{OpDesc{Kind: OpGEMM, Alpha: 1, Beta: 0, Workers: 1}, func(rng *rand.Rand) []Operand {
			return []Operand{op32(randCompact(rng, 16, 8, 6)), op32(randCompact(rng, 16, 6, 5)), op32(randCompact(rng, 16, 8, 5))}
		}},
		{OpDesc{Kind: OpGEMM, TransA: matrix.Transpose, Alpha: 1, Beta: 0, Workers: 1}, func(rng *rand.Rand) []Operand {
			return []Operand{op32(randCompact(rng, 16, 6, 8)), op32(randCompact(rng, 16, 6, 5)), op32(randCompact(rng, 16, 8, 5))}
		}},
		{OpDesc{Kind: OpGEMM, TransB: matrix.Transpose, Alpha: 1, Beta: 0, Workers: 1}, func(rng *rand.Rand) []Operand {
			return []Operand{op32(randCompact(rng, 16, 4, 7)), op32(randCompact(rng, 16, 3, 7)), op32(randCompact(rng, 16, 4, 3))}
		}},
		{OpDesc{Kind: OpTRSM, Side: matrix.Left, Uplo: matrix.Lower, Alpha: 1, Workers: 1}, func(rng *rand.Rand) []Operand {
			return []Operand{op32(triCompact(rng, 16, 6)), op32(randCompact(rng, 16, 6, 4))}
		}},
		{OpDesc{Kind: OpTRSM, Side: matrix.Right, Uplo: matrix.Upper, Alpha: 1, Workers: 1}, func(rng *rand.Rand) []Operand {
			return []Operand{op32(triCompact(rng, 16, 5)), op32(randCompact(rng, 16, 4, 5))}
		}},
		{OpDesc{Kind: OpTRMM, Side: matrix.Left, Uplo: matrix.Lower, Alpha: 1, Workers: 1}, func(rng *rand.Rand) []Operand {
			return []Operand{op32(triCompact(rng, 16, 4)), op32(randCompact(rng, 16, 4, 6))}
		}},
		{OpDesc{Kind: OpSYRK, Uplo: matrix.Lower, Alpha: 1, Beta: 0, Workers: 1}, func(rng *rand.Rand) []Operand {
			return []Operand{op32(randCompact(rng, 16, 6, 4)), op32(randCompact(rng, 16, 6, 6))}
		}},
		{OpDesc{Kind: OpSYRK, Uplo: matrix.Upper, TransA: matrix.Transpose, Alpha: 1, Beta: 0, Workers: 1}, func(rng *rand.Rand) []Operand {
			return []Operand{op32(randCompact(rng, 16, 4, 6)), op32(randCompact(rng, 16, 6, 6))}
		}},
	}
	rng := rand.New(rand.NewSource(21))
	for _, cl := range calls {
		if err := e1.Run(cl.op, cl.operands(rng)...); err != nil {
			t.Fatal(err)
		}
	}
	// One factorization (single-operand route arity).
	if _, err := e1.RunFactor(OpDesc{Kind: OpLU, Workers: 1}, op32(randCompact(rng, 16, 5, 5))); err != nil {
		t.Fatal(err)
	}
	total := len(calls) + 1

	e1.SetStorePath(path)
	if err := e1.SaveStore(); err != nil {
		t.Fatal(err)
	}

	coldKernelMemo(t)
	set := NewSet(tun, 3)
	set.SetStorePath(path)
	if err := set.LoadStore(); err != nil {
		t.Fatal(err)
	}
	agg := set.Stats().Aggregate
	if agg.PlanHydrated != uint64(total) {
		t.Fatalf("hydrated %d plans across shards, want %d", agg.PlanHydrated, total)
	}

	// Replay the identical traffic through the router: every call must
	// find its plan on its home shard — zero misses anywhere.
	rng = rand.New(rand.NewSource(21))
	for _, cl := range calls {
		if err := set.Run(cl.op, cl.operands(rng)...); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := set.RunFactor(OpDesc{Kind: OpLU, Workers: 1}, op32(randCompact(rng, 16, 5, 5))); err != nil {
		t.Fatal(err)
	}
	agg = set.Stats().Aggregate
	if agg.PlanMisses != 0 {
		t.Fatalf("routed warm-start missed: home-shard hydration diverged from routeHash (%+v)", agg)
	}
	if agg.PlanHits != uint64(total) {
		t.Fatalf("hits = %d, want %d", agg.PlanHits, total)
	}
}

// triCompact builds a batch of well-conditioned lower/upper-usable
// triangular operands: random with a dominant diagonal.
func triCompact(rng *rand.Rand, count, n int) *layout.Compact[float32] {
	b := matrix.NewBatch[float32](count, n, n)
	matrix.Fill(rng, b.Data)
	for m := 0; m < count; m++ {
		mat := b.Mat(m)
		for i := 0; i < n; i++ {
			mat.Set(i, i, 4+rng.Float32())
		}
	}
	return layout.FromBatch(vec.S, b)
}

// TestConcurrentTuners runs the concurrent-iatf-tune scenario in-process
// under the race detector: several tuners warm disjoint shape sets and
// load-merge-write one store path; a warm engine must then load the file
// cleanly and see at least the last writer's shapes.
func TestConcurrentTuners(t *testing.T) {
	tun := core.DefaultTuning()
	fp := New(tun).Fingerprint()
	path := store.PathFor(t.TempDir(), fp)
	const tuners = 4
	var wg sync.WaitGroup
	for w := 0; w < tuners; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e := New(tun)
			for i := 0; i < 2; i++ {
				d := store.PlanDesc{Kind: int(OpGEMM), DType: int(vec.S),
					M: 3 + w, N: 3 + i, K: 4, CountBucket: 1}
				if err := e.Warm(d); err != nil {
					t.Errorf("tuner %d: %v", w, err)
					return
				}
			}
			f := e.Export("test-tuner")
			if prev, err := store.Load(path, fp); err == nil {
				f.Merge(prev)
			}
			if err := f.WriteAtomic(path); err != nil {
				t.Errorf("tuner %d write: %v", w, err)
			}
		}(w)
	}
	wg.Wait()

	coldKernelMemo(t)
	e := New(tun)
	e.SetStorePath(path)
	if err := e.LoadStore(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Store.Loads != 1 || s.Store.LoadErrors != 0 {
		t.Fatalf("post-race load: %+v", s.Store)
	}
	// Atomicity guarantees at least one tuner's complete set (2 plans).
	if s.PlanHydrated < 2 {
		t.Fatalf("hydrated %d plans, want >= 2", s.PlanHydrated)
	}
}

// TestWarmRejectsNonsense: unknown kinds and undersized dims surface as
// errors from Warm (the iatf-tune reporting path) instead of poisoning
// the store.
func TestWarmRejectsNonsense(t *testing.T) {
	e := New(core.DefaultTuning())
	if err := e.Warm(store.PlanDesc{Kind: 99, DType: int(vec.S), M: 4, CountBucket: 1}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if err := e.Warm(store.PlanDesc{Kind: int(OpGEMM), DType: int(vec.S), M: 0, N: 4, K: 4, CountBucket: 1}); err == nil {
		t.Fatal("zero dimension accepted")
	}
}
